// Quickstart: the smallest complete qserv session.
//
// Builds a virtual-time testbed, starts a 2-thread parallel game server on
// an arena map, connects eight bots, simulates ten seconds of deathmatch,
// and prints the scoreboard and the server's execution-time breakdown.
//
//   ./quickstart
#include <cstdio>

#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/sim/game_rules.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/sim_platform.hpp"

using namespace qserv;

int main() {
  // 1. A simulated machine (2 cores here) and a virtual network.
  vt::SimPlatform::MachineConfig machine;
  machine.cores = 2;
  machine.ht_per_core = 1;
  vt::SimPlatform platform(machine);
  net::VirtualNetwork network(platform, {});

  // 2. A map and a server. LockPolicy::kOptimized is the paper's best
  //    configuration.
  const spatial::GameMap map = spatial::make_arena(1024);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.lock_policy = core::LockPolicy::kOptimized;
  core::ParallelServer server(platform, network, map, scfg);

  // 3. Eight automatic players.
  bots::ClientDriver::Config dcfg;
  dcfg.players = 8;
  bots::ClientDriver driver(platform, network, map, server, dcfg);

  server.start();
  driver.start();

  // 4. Simulate ten seconds of game time, then stop everything.
  platform.call_after(vt::seconds(10), [&] {
    server.request_stop();
    driver.request_stop();
  });
  platform.run();

  // 5. Results.
  std::printf("simulated 10 s in %llu events; %llu frames, %llu requests\n",
              static_cast<unsigned long long>(platform.events_processed()),
              static_cast<unsigned long long>(server.frames()),
              static_cast<unsigned long long>(server.total_requests()));
  std::printf("server breakdown: %s\n\n",
              core::format_breakdown(server.total_breakdown()).c_str());

  std::printf("%-12s %7s %7s\n", "player", "frags", "deaths");
  for (const auto& row : sim::scoreboard(server.world())) {
    std::printf("%-12s %7d %7u\n", row.name.c_str(), row.frags, row.deaths);
  }
  return 0;
}
