// Authoring and serving a custom map: generate a map from parameters,
// save it to the text format, reload and validate it, then host a short
// session on it. Demonstrates the spatial/ public API end-to-end.
//
//   ./custom_map_server [rooms] [out.map]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/sequential_server.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/sim_platform.hpp"

using namespace qserv;

int main(int argc, char** argv) {
  const int rooms = argc > 1 ? std::atoi(argv[1]) : 3;
  const char* path = argc > 2 ? argv[2] : "custom.map";

  // 1. Generate.
  spatial::MapGenParams params;
  params.rooms_x = rooms;
  params.rooms_y = rooms;
  params.room_size = 448.0f;
  params.pillars_per_room = 2;
  params.teleporter_pairs = 2;
  params.seed = 42;
  spatial::GameMap map = spatial::generate_map(params, "custom-arena");

  std::printf("generated '%s': %zu brushes, %zu spawns, %zu items, "
              "%zu teleporters, %zu waypoints\n",
              map.name.c_str(), map.brushes.size(), map.spawns.size(),
              map.items.size(), map.teleporters.size(), map.waypoints.size());

  // 2. Save, reload, validate — the round trip a map editor would do.
  {
    std::ofstream out(path);
    out << map.serialize();
  }
  spatial::GameMap loaded;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    if (!spatial::GameMap::parse(ss.str(), loaded)) {
      std::fprintf(stderr, "failed to parse %s\n", path);
      return 1;
    }
  }
  std::string err;
  if (!loaded.validate(&err)) {
    std::fprintf(stderr, "map failed validation: %s\n", err.c_str());
    return 1;
  }
  std::printf("round-tripped through %s and validated ok\n", path);

  // 3. Serve it (sequential server, a dozen bots, 15 simulated seconds).
  vt::SimPlatform platform;
  net::VirtualNetwork network(platform, {});
  core::ServerConfig scfg;
  core::SequentialServer server(platform, network, loaded, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 12;
  bots::ClientDriver driver(platform, network, loaded, server, dcfg);
  server.start();
  driver.start();
  platform.call_after(vt::seconds(15), [&] {
    server.request_stop();
    driver.request_stop();
  });
  platform.run();

  const auto agg = driver.aggregate(vt::seconds(15));
  std::printf("served %d bots for 15 s: %llu replies, mean response %.1f ms\n",
              dcfg.players, static_cast<unsigned long long>(agg.replies),
              agg.response_ms_mean);
  return 0;
}
