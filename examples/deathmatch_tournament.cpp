// A full deathmatch session on the large map: 48 players on a 4-thread
// server for a simulated minute, with live standings every 10 simulated
// seconds and a final report — the workload the paper's introduction
// motivates (one large shared world, many interacting players).
//
//   ./deathmatch_tournament [players] [threads]
#include <cstdio>
#include <cstdlib>

#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/sim/game_rules.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/sim_platform.hpp"

using namespace qserv;

int main(int argc, char** argv) {
  const int players = argc > 1 ? std::atoi(argv[1]) : 48;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;

  vt::SimPlatform platform;  // the paper's 4-core, 2-way-HT machine model
  net::VirtualNetwork network(platform, {});
  const spatial::GameMap map = spatial::make_large_deathmatch(7);

  core::ServerConfig scfg;
  scfg.threads = threads;
  scfg.lock_policy = core::LockPolicy::kOptimized;
  core::ParallelServer server(platform, network, map, scfg);

  bots::ClientDriver::Config dcfg;
  dcfg.players = players;
  dcfg.aggression = 0.9f;
  bots::ClientDriver driver(platform, network, map, server, dcfg);

  server.start();
  driver.start();

  // Periodic standings, scheduled in virtual time.
  for (int tick = 10; tick <= 60; tick += 10) {
    platform.call_after(vt::seconds(tick), [&, tick] {
      const auto board = sim::scoreboard(server.world());
      std::printf("[t=%2ds] leader board:", tick);
      for (size_t i = 0; i < board.size() && i < 3; ++i) {
        std::printf("  %s %d", board[i].name.c_str(), board[i].frags);
      }
      std::printf("   (frames=%llu)\n",
                  static_cast<unsigned long long>(server.frames()));
    });
  }
  platform.call_after(vt::seconds(60), [&] {
    server.request_stop();
    driver.request_stop();
  });
  platform.run();

  std::printf("\n=== final standings (%d players, %d threads) ===\n", players,
              threads);
  const auto board = sim::scoreboard(server.world());
  int shown = 0;
  for (const auto& row : board) {
    std::printf("%2d. %-10s frags %4d  deaths %4u\n", ++shown,
                row.name.c_str(), row.frags, row.deaths);
    if (shown >= 10) break;
  }

  const auto agg = driver.aggregate(vt::seconds(60));
  std::printf("\nserver: %llu requests, %llu frames | clients: %llu replies"
              " (%.0f/s)\n",
              static_cast<unsigned long long>(server.total_requests()),
              static_cast<unsigned long long>(server.frames()),
              static_cast<unsigned long long>(agg.replies),
              agg.response_rate);
  std::printf("breakdown: %s\n",
              core::format_breakdown(server.total_breakdown()).c_str());
  return 0;
}
