// Capacity planning with the experiment harness: for each server
// configuration, find how many players it can serve before response times
// degrade — the question an operator deploying game servers actually asks.
//
//   ./scaling_study [measure_seconds]
#include <cstdio>
#include <cstdlib>

#include "src/harness/experiment.hpp"
#include "src/harness/report.hpp"
#include "src/util/table.hpp"

using namespace qserv;
using namespace qserv::harness;

namespace {

// A configuration "holds" a player count if it answers >= 97% of the
// offered request rate with sane latency.
bool holds(const ExperimentResult& r, int players, double client_rate) {
  const double offered = players * client_rate;
  return r.response_rate >= 0.97 * offered && r.response_ms_mean < 60.0;
}

}  // namespace

int main(int argc, char** argv) {
  const double measure_s = argc > 1 ? std::atof(argv[1]) : 5.0;

  struct Candidate {
    const char* name;
    ServerMode mode;
    int threads;
    core::LockPolicy policy;
  };
  const Candidate candidates[] = {
      {"sequential", ServerMode::kSequential, 1, core::LockPolicy::kNone},
      {"2t conservative", ServerMode::kParallel, 2,
       core::LockPolicy::kConservative},
      {"4t conservative", ServerMode::kParallel, 4,
       core::LockPolicy::kConservative},
      {"8t conservative", ServerMode::kParallel, 8,
       core::LockPolicy::kConservative},
      {"4t optimized", ServerMode::kParallel, 4, core::LockPolicy::kOptimized},
      {"8t optimized", ServerMode::kParallel, 8, core::LockPolicy::kOptimized},
  };

  Table t("Supported players per server configuration");
  t.header({"server", "max players", "rate there", "resp (ms)"});
  for (const auto& c : candidates) {
    int best = 0;
    double best_rate = 0, best_ms = 0;
    for (int players = 64; players <= 224; players += 16) {
      auto cfg = paper_config(c.mode, c.threads, players, c.policy);
      cfg.measure = vt::seconds_d(measure_s);
      const auto r = run_experiment(cfg);
      const double client_rate = 1e9 / double(cfg.client_frame.ns);
      std::printf("  %-18s %3dp -> %6.0f replies/s, %5.1f ms %s\n", c.name,
                  players, r.response_rate, r.response_ms_mean,
                  holds(r, players, client_rate) ? "ok" : "degraded");
      std::fflush(stdout);
      if (holds(r, players, client_rate)) {
        best = players;
        best_rate = r.response_rate;
        best_ms = r.response_ms_mean;
      } else {
        break;  // past the knee; stop probing this config
      }
    }
    t.row({c.name, std::to_string(best), Table::num(best_rate, 0),
           Table::num(best_ms, 1)});
  }
  std::printf("\n");
  t.print();
  return 0;
}
