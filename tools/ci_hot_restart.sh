#!/usr/bin/env bash
# Scripted hot-restart check for CI: start qserv-serve, send SIGUSR2,
# and assert the handoff completed — the old generation exits 0 and a
# NEW pid is serving the same ports. The client-facing half of the
# guarantee (0 clients lost, 0 forced reconnects, bounded service gap)
# is asserted by bench_real_transport in the same job.
#
# Usage: tools/ci_hot_restart.sh [build-dir]
set -euo pipefail

BUILD=${1:-build}
SERVE="$BUILD/tools/qserv-serve"
[ -x "$SERVE" ] || { echo "missing $SERVE (build first)"; exit 2; }

TMP=$(mktemp -d)
cleanup() {
  [ -s "$TMP/qs.pid" ] && kill "$(cat "$TMP/qs.pid")" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

"$SERVE" --threads 2 --base-port 28700 \
  --pid-file "$TMP/qs.pid" --ready-file "$TMP/qs.ready" \
  --handoff-sock "$TMP/qs.handoff" &
GEN0=$!

for _ in $(seq 1 150); do [ -s "$TMP/qs.pid" ] && break; sleep 0.1; done
OLD=$(cat "$TMP/qs.pid")
[ -n "$OLD" ] || { echo "server never became ready"; exit 1; }
echo "generation 0: pid $OLD"

kill -USR2 "$OLD"

NEW=$OLD
for _ in $(seq 1 600); do
  NEW=$(cat "$TMP/qs.pid" 2>/dev/null || echo "$OLD")
  [ "$NEW" != "$OLD" ] && [ -n "$NEW" ] && break
  sleep 0.1
done
if [ "$NEW" = "$OLD" ]; then
  echo "FAIL: hot restart never completed (pid file still $OLD)"
  exit 1
fi

# The old generation must exit cleanly after the handoff...
if ! wait "$GEN0"; then
  echo "FAIL: generation 0 exited non-zero"
  exit 1
fi
# ...and the new one must actually be serving.
kill -0 "$NEW" || { echo "FAIL: new generation $NEW not running"; exit 1; }
echo "hot restart OK: $OLD -> $NEW"

kill -TERM "$NEW"
for _ in $(seq 1 100); do kill -0 "$NEW" 2>/dev/null || break; sleep 0.1; done
kill -0 "$NEW" 2>/dev/null && { echo "FAIL: new generation ignored SIGTERM"; exit 1; }
echo "clean shutdown OK"
