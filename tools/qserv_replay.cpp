// qserv-replay: offline digest-verified deterministic replay.
//
// Feed it the two artifacts a black-box dump (or a live server's
// recovery ring) produces — a checkpoint image and a journal — and it
// restores the world, re-executes every recorded frame, and cross-checks
// the FNV world digest after each one against the digest recorded live.
// On divergence it names the first offending frame and, when the journal
// carries per-entity digests, the first offending entity.
//
//   qserv-replay <dump-dir>                  # checkpoint.qckpt + journal.qjrnl
//   qserv-replay <checkpoint> <journal>      # explicit files
//   qserv-replay --selftest [min-frames] [--dump <dir>]
//       CI mode: record + verify a fresh simulated soak; with --dump,
//       also write the artifacts so the offline form can be chained.
//
// Exit codes: 0 = replay identical, 1 = diverged, 2 = setup error
// (unreadable file, corrupt image, journal gap, usage).
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/harness/experiment.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/recovery/journal.hpp"
#include "src/recovery/replay.hpp"
#include "src/vthread/sim_platform.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: qserv-replay <dump-dir>\n"
               "       qserv-replay <checkpoint.qckpt> <journal.qjrnl>\n"
               "       qserv-replay --selftest [min-frames] [--dump <dir>]\n");
  return 2;
}

bool read_file(const std::string& path, std::vector<uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

int report(const qserv::recovery::ReplayResult& r) {
  if (!r.error.empty()) {
    std::fprintf(stderr, "setup error: %s\n", r.error.c_str());
    return 2;
  }
  std::printf("%s\n", r.summary().c_str());
  if (r.diverged) {
    std::printf("  frame %" PRIu64 ": want digest %016" PRIx64
                ", got %016" PRIx64 "\n",
                r.divergent_frame, r.want_digest, r.got_digest);
    if (r.divergent_entity != 0)
      std::printf("  first divergent entity: %u\n", r.divergent_entity);
    if (!r.detail.empty()) std::printf("  %s\n", r.detail.c_str());
    return 1;
  }
  return r.ok ? 0 : 2;
}

// CI mode: run a short simulated soak with recovery on, capture a
// checkpoint mid-run, keep journaling past it, then verify the recorded
// tail replays bit-identically for at least `min_frames` frames. This
// exercises the same encode/decode path the offline mode uses.
bool write_file(const std::string& path, const std::vector<uint8_t>& buf) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  return static_cast<bool>(out);
}

int selftest(uint64_t min_frames, const std::string& dump_dir) {
  using namespace qserv;
  // ~360 frames/s form with 12 clients at 30 fps; pad the post-anchor
  // window so the ring holds at least min_frames beyond the checkpoint.
  const int64_t tail_s =
      static_cast<int64_t>(min_frames / 300 + 2);

  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = harness::default_map();
  core::ServerConfig scfg;
  scfg.threads = 4;
  scfg.recovery.enabled = true;
  scfg.recovery.checkpoint_interval = 64;
  scfg.recovery.journal_frames = 8192;
  core::ParallelServer server(p, net, *map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 12;
  bots::ClientDriver driver(p, net, *map, server, dcfg);

  std::vector<uint8_t> ckpt_bytes;
  server.start();
  driver.start();
  p.call_after(vt::seconds(2), [&] {
    ckpt_bytes = server.checkpoints()->latest();
  });
  p.call_after(vt::seconds(2 + tail_s), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();

  if (ckpt_bytes.empty()) {
    std::fprintf(stderr, "selftest: no checkpoint formed by 2s\n");
    return 2;
  }
  recovery::CheckpointData ckpt;
  if (recovery::decode_checkpoint(ckpt_bytes, ckpt) !=
      recovery::LoadError::kNone) {
    std::fprintf(stderr, "selftest: checkpoint image does not decode\n");
    return 2;
  }
  const std::vector<uint8_t> jrnl_bytes = server.recorder()->encode();
  recovery::JournalFile journal;
  if (recovery::decode_journal(jrnl_bytes, journal) !=
      recovery::LoadError::kNone) {
    std::fprintf(stderr, "selftest: journal does not decode\n");
    return 2;
  }
  if (!dump_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dump_dir, ec);
    if (!write_file(dump_dir + "/checkpoint.qckpt", ckpt_bytes) ||
        !write_file(dump_dir + "/journal.qjrnl", jrnl_bytes)) {
      std::fprintf(stderr, "selftest: cannot write artifacts to %s\n",
                   dump_dir.c_str());
      return 2;
    }
  }

  const auto r = recovery::replay_verify(ckpt, journal);
  const int rc = report(r);
  if (rc != 0) return rc;
  if (r.frames_checked < min_frames) {
    std::fprintf(stderr,
                 "selftest: only %" PRIu64 " frames checked, wanted >= %" PRIu64
                 "\n",
                 r.frames_checked, min_frames);
    return 2;
  }
  std::printf("selftest ok: %" PRIu64 " frames bit-identical\n",
              r.frames_checked);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();

  if (std::strcmp(argv[1], "--selftest") == 0) {
    uint64_t frames = 500;
    std::string dump_dir;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--dump") == 0 && i + 1 < argc) {
        dump_dir = argv[++i];
      } else {
        frames = std::strtoull(argv[i], nullptr, 10);
      }
    }
    return selftest(frames, dump_dir);
  }

  std::string ckpt_path, jrnl_path;
  if (argc == 2) {
    if (!std::filesystem::is_directory(argv[1])) {
      std::fprintf(stderr, "%s: not a dump directory\n", argv[1]);
      return 2;
    }
    ckpt_path = std::string(argv[1]) + "/checkpoint.qckpt";
    jrnl_path = std::string(argv[1]) + "/journal.qjrnl";
  } else if (argc == 3) {
    ckpt_path = argv[1];
    jrnl_path = argv[2];
  } else {
    return usage();
  }

  std::vector<uint8_t> ckpt_bytes, jrnl_bytes;
  if (!read_file(ckpt_path, ckpt_bytes)) {
    std::fprintf(stderr, "%s: cannot read\n", ckpt_path.c_str());
    return 2;
  }
  if (!read_file(jrnl_path, jrnl_bytes)) {
    std::fprintf(stderr, "%s: cannot read\n", jrnl_path.c_str());
    return 2;
  }

  qserv::recovery::CheckpointData ckpt;
  if (qserv::recovery::decode_checkpoint(ckpt_bytes, ckpt) !=
      qserv::recovery::LoadError::kNone) {
    std::fprintf(stderr, "%s: corrupt or unsupported checkpoint\n",
                 ckpt_path.c_str());
    return 2;
  }
  qserv::recovery::JournalFile journal;
  if (qserv::recovery::decode_journal(jrnl_bytes, journal) !=
      qserv::recovery::LoadError::kNone) {
    std::fprintf(stderr, "%s: corrupt or unsupported journal\n",
                 jrnl_path.c_str());
    return 2;
  }

  std::printf("checkpoint: frame %" PRIu64 ", %zu entities, %zu clients\n",
              ckpt.frame, ckpt.entities.size(), ckpt.clients.size());
  std::printf("journal: %zu frames\n", journal.frames.size());
  return report(qserv::recovery::replay_verify(ckpt, journal));
}
