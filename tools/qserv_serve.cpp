// qserv-serve: the real-socket server driver, with zero-downtime hot
// restart.
//
// Runs a ParallelServer over RealUdpTransport (kernel UDP on loopback,
// one listener port per worker thread) and supervises it from the main
// thread. On SIGUSR2 — or --restart-self-after-ms in tests — it performs
// an envoy-style hot restart into a freshly exec'd copy of itself:
//
//   1. bind the unix handoff socket, fork + exec /proc/self/exe with
//      --generation N+1 (the child's heavy init — map generation — runs
//      while the parent keeps serving);
//   2. on the child's HELLO, enter graceful drain (new connects get
//      kServerBusy; existing sessions keep playing);
//   3. stop the frame loop, wait for workers to quiesce, take the final
//      frame-aligned checkpoint;
//   4. pass the bound listener descriptors (SCM_RIGHTS) plus the
//      qserv-ckpt-v1 blob over the handoff socket. Client datagrams keep
//      landing in the kernel socket buffers during the gap — nothing is
//      lost;
//   5. the child adopts the descriptors, restores every session
//      (netchan sequences intact, forced full snapshot on next contact),
//      starts serving, rewrites the pid file and answers READY;
//   6. the parent exits 0.
//
// Failure containment: if the child never connects, dies before READY,
// or its restore fails (it exits without answering), the parent falls
// back — kills the child, rebuilds a server from the very checkpoint it
// tried to hand off, and resumes serving. The fallback path re-binds the
// ports (SO_REUSEADDR), so datagrams queued on the old sockets during
// the attempt are lost — the one path that trades loss for liveness.
#include <signal.h>
#include <stdio.h>
#include <string.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/parallel_server.hpp"
#include "src/net/fd_handoff.hpp"
#include "src/net/real_udp.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/real_platform.hpp"

namespace {

volatile sig_atomic_t g_restart = 0;
volatile sig_atomic_t g_stop = 0;

void on_sigusr2(int) { g_restart = 1; }
void on_sigterm(int) { g_stop = 1; }

struct Options {
  int threads = 4;
  uint16_t base_port = 27500;
  int max_clients = 512;
  uint64_t map_seed = 7;
  uint32_t checkpoint_interval = 16;
  std::string host = "127.0.0.1";
  std::string pid_file;
  std::string ready_file;
  std::string handoff_sock = "/tmp/qserv-serve.handoff";
  uint32_t generation = 0;
  int64_t restart_self_after_ms = 0;  // tests: restart without a signal
  int64_t run_ms = 0;                 // tests: exit after this long
};

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void write_file(const std::string& path, const std::string& text) {
  if (path.empty()) return;
  std::ofstream f(path + ".tmp", std::ios::trunc);
  f << text;
  f.close();
  ::rename((path + ".tmp").c_str(), path.c_str());
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--threads" && (v = next()))
      opt.threads = atoi(v);
    else if (a == "--base-port" && (v = next()))
      opt.base_port = static_cast<uint16_t>(atoi(v));
    else if (a == "--max-clients" && (v = next()))
      opt.max_clients = atoi(v);
    else if (a == "--map-seed" && (v = next()))
      opt.map_seed = strtoull(v, nullptr, 10);
    else if (a == "--checkpoint-interval" && (v = next()))
      opt.checkpoint_interval = static_cast<uint32_t>(atoi(v));
    else if (a == "--host" && (v = next()))
      opt.host = v;
    else if (a == "--pid-file" && (v = next()))
      opt.pid_file = v;
    else if (a == "--ready-file" && (v = next()))
      opt.ready_file = v;
    else if (a == "--handoff-sock" && (v = next()))
      opt.handoff_sock = v;
    else if (a == "--generation" && (v = next()))
      opt.generation = static_cast<uint32_t>(atoi(v));
    else if (a == "--restart-self-after-ms" && (v = next()))
      opt.restart_self_after_ms = atoll(v);
    else if (a == "--run-ms" && (v = next()))
      opt.run_ms = atoll(v);
    else {
      fprintf(stderr, "qserv-serve: unknown or incomplete flag %s\n",
              a.c_str());
      return false;
    }
  }
  return opt.threads >= 1;
}

// exec argv for the next generation: original flags, with --generation
// replaced and one-shot test flags dropped (the child must not restart
// itself again or exit on the parent's --run-ms schedule; the driving
// test re-arms what it needs).
std::vector<std::string> child_args(int argc, char** argv,
                                    uint32_t next_gen) {
  std::vector<std::string> out = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--generation" || a == "--restart-self-after-ms") {
      ++i;  // skip value
      continue;
    }
    out.push_back(a);
  }
  out.push_back("--generation");
  out.push_back(std::to_string(next_gen));
  return out;
}

pid_t spawn_next_generation(int argc, char** argv, uint32_t next_gen) {
  const std::vector<std::string> args = child_args(argc, argv, next_gen);
  const pid_t pid = fork();
  if (pid != 0) return pid;
  std::vector<char*> cargs;
  for (const auto& a : args) cargs.push_back(const_cast<char*>(a.c_str()));
  cargs.push_back(nullptr);
  execv("/proc/self/exe", cargs.data());
  _exit(127);
}

std::unique_ptr<qserv::core::ParallelServer> build_server(
    qserv::vt::RealPlatform& platform, qserv::net::RealUdpTransport& net,
    const qserv::spatial::GameMap& map, const Options& opt) {
  qserv::core::ServerConfig scfg;
  scfg.threads = opt.threads;
  scfg.base_port = opt.base_port;
  scfg.max_clients = opt.max_clients;
  scfg.lock_policy = qserv::core::LockPolicy::kOptimized;
  scfg.recovery.enabled = true;
  scfg.recovery.checkpoint_interval = opt.checkpoint_interval;
  return std::make_unique<qserv::core::ParallelServer>(platform, net, map,
                                                       scfg);
}

// The hot-restart sequence. Returns true when the next generation has
// confirmed READY — the caller should exit. On any failure the old
// generation is serving again (rebuilt from the handoff checkpoint if it
// had already stopped) and the caller continues its supervision loop.
bool hot_restart(int argc, char** argv, const Options& opt,
                 qserv::vt::RealPlatform& platform,
                 qserv::net::RealUdpTransport& net,
                 const qserv::spatial::GameMap& map,
                 std::unique_ptr<qserv::core::ParallelServer>& server) {
  fprintf(stderr, "qserv-serve[gen %u]: hot restart requested\n",
          opt.generation);
  qserv::net::HandoffServer handoff(opt.handoff_sock);
  if (!handoff.valid()) {
    fprintf(stderr, "qserv-serve: cannot bind handoff socket %s\n",
            opt.handoff_sock.c_str());
    return false;
  }
  const pid_t child = spawn_next_generation(argc, argv, opt.generation + 1);
  if (child < 0) return false;

  // Overlap window: the child generates its map while we keep serving.
  // Drain starts now so the population stops changing shape.
  server->enter_drain();
  if (!handoff.accept_child(/*timeout_ms=*/30'000)) {
    fprintf(stderr, "qserv-serve: next generation never connected\n");
    ::kill(child, SIGKILL);
    ::waitpid(child, nullptr, 0);
    server->leave_drain();
    return false;
  }

  // The child is up and asking: stop the frame loop and capture.
  server->request_stop();
  const int64_t quiesce_deadline = now_ms() + 10'000;
  while (server->active_workers() != 0 && now_ms() < quiesce_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  if (server->active_workers() != 0) {
    fprintf(stderr, "qserv-serve: workers failed to quiesce\n");
    ::kill(child, SIGKILL);
    ::waitpid(child, nullptr, 0);
    g_stop = 1;  // unrecoverable wedge: shut down rather than serve a zombie
    return false;
  }
  const std::vector<uint8_t> ckpt = server->encode_checkpoint_now();

  qserv::net::HandoffPackage pkg;
  pkg.sockets = net.bound_fds();
  pkg.checkpoint = ckpt;
  const bool confirmed =
      handoff.send_package(pkg) && handoff.wait_ready(/*timeout_ms=*/30'000);
  if (confirmed) {
    fprintf(stderr, "qserv-serve[gen %u]: handed off to pid %d, exiting\n",
            opt.generation, static_cast<int>(child));
    return true;
  }

  // Child died before confirming. Take back the ports and resume from the
  // checkpoint we just took.
  fprintf(stderr,
          "qserv-serve: next generation failed, restoring own state\n");
  ::kill(child, SIGKILL);
  ::waitpid(child, nullptr, 0);
  server.reset();  // releases the ports for the rebind below
  server = build_server(platform, net, map, opt);
  if (server->restore_from(ckpt) != qserv::recovery::LoadError::kNone) {
    fprintf(stderr, "qserv-serve: fallback restore failed, aborting\n");
    abort();  // state is gone either way; fail loudly
  }
  server->start();
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  struct sigaction sa {};
  sa.sa_handler = on_sigusr2;
  sigaction(SIGUSR2, &sa, nullptr);
  sa.sa_handler = on_sigterm;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  qserv::vt::RealPlatform platform;
  const auto map = qserv::spatial::make_large_deathmatch(opt.map_seed);

  // Next generations adopt the previous generation's listener sockets
  // (and state) over the handoff channel before serving.
  qserv::net::RealUdpTransport::Config ncfg;
  ncfg.host = opt.host;
  qserv::net::HandoffClient inherit;
  std::vector<uint8_t> inherited_ckpt;
  if (opt.generation > 0) {
    if (!inherit.connect_to(opt.handoff_sock, opt.generation,
                            /*timeout_ms=*/10'000)) {
      fprintf(stderr, "qserv-serve[gen %u]: handoff connect failed\n",
              opt.generation);
      return 3;
    }
    qserv::net::HandoffPackage pkg;
    if (!inherit.recv_package(pkg, /*timeout_ms=*/60'000)) {
      fprintf(stderr, "qserv-serve[gen %u]: handoff package failed\n",
              opt.generation);
      return 3;
    }
    for (const auto& [port, fd] : pkg.sockets) ncfg.adopted_fds[port] = fd;
    inherited_ckpt = std::move(pkg.checkpoint);
  }

  qserv::net::RealUdpTransport net(platform, ncfg);
  auto server = build_server(platform, net, map, opt);
  if (!inherited_ckpt.empty()) {
    const auto err = server->restore_from(inherited_ckpt);
    if (err != qserv::recovery::LoadError::kNone) {
      fprintf(stderr, "qserv-serve[gen %u]: restore failed: %s\n",
              opt.generation, qserv::recovery::load_error_name(err));
      return 4;  // exit without READY; the old generation falls back
    }
  }
  server->start();
  write_file(opt.pid_file, std::to_string(getpid()) + "\n");
  write_file(opt.ready_file,
             "generation " + std::to_string(opt.generation) + "\n");
  if (opt.generation > 0 && !inherit.send_ready()) {
    fprintf(stderr, "qserv-serve[gen %u]: READY send failed\n",
            opt.generation);
  }
  fprintf(stderr,
          "qserv-serve[gen %u]: pid %d serving %d threads on ports "
          "%u..%u\n",
          opt.generation, static_cast<int>(getpid()), opt.threads,
          opt.base_port, opt.base_port + opt.threads - 1);

  const int64_t started = now_ms();
  int64_t restart_at =
      opt.restart_self_after_ms > 0 ? started + opt.restart_self_after_ms : 0;
  bool handed_off = false;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (opt.run_ms > 0 && now_ms() - started >= opt.run_ms) break;
    if (g_restart || (restart_at > 0 && now_ms() >= restart_at)) {
      g_restart = 0;
      restart_at = 0;
      if (hot_restart(argc, argv, opt, platform, net, map, server)) {
        handed_off = true;
        break;
      }
    }
  }

  server->request_stop();
  server.reset();
  platform.join_all();
  if (!handed_off && !opt.pid_file.empty())
    ::unlink(opt.pid_file.c_str());
  return 0;
}
