// qserv-trend — perf-trend regression gate over committed BENCH_*.json
// files (qserv-bench-v1 schema).
//
// Modes:
//   qserv-trend --baseline OLD.json --candidate NEW.json [--threshold 0.10]
//     Match points across the two files by (bench, group, label) and
//     compare the keyed metrics. Exits 1 if any keyed metric regresses
//     past the threshold, 0 otherwise.
//   qserv-trend A.json B.json C.json ...
//     Trajectory mode: prints each keyed metric across the files in
//     order (oldest first) without gating. Two positional files behave
//     like --baseline/--candidate.
//
// Keyed metrics and their direction:
//   response.rate_per_s   higher is better (throughput)
//   response.ms_p95       lower is better (tail latency)
//   response.ms_mean      lower is better
//   response.connected    must not decrease at all (client survival)
//   pause_ms              lower is better (recovery pause, shard points)
//
// host_seconds is deliberately never gated: it measures the CI box, not
// the server. Exit codes: 0 pass, 1 regression, 2 usage/parse error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json_parse.hpp"

using qserv::obs::JsonValue;

namespace {

struct KeyedMetric {
  const char* path;  // dotted path inside a point object
  enum class Dir { kHigherBetter, kLowerBetter, kNonDecreasing } dir;
};

constexpr KeyedMetric kMetrics[] = {
    {"response.rate_per_s", KeyedMetric::Dir::kHigherBetter},
    {"response.ms_p95", KeyedMetric::Dir::kLowerBetter},
    {"response.ms_mean", KeyedMetric::Dir::kLowerBetter},
    {"response.connected", KeyedMetric::Dir::kNonDecreasing},
    {"pause_ms", KeyedMetric::Dir::kLowerBetter},
    // Reply hot path (DESIGN.md §15): the reply phase's share of
    // execution time and the steady-state allocation rate. Both keys are
    // only present on points whose bench exports them; absent keys are
    // skipped, so older BENCH files stay comparable.
    {"reply_share", KeyedMetric::Dir::kLowerBetter},
    {"allocs_per_frame", KeyedMetric::Dir::kLowerBetter},
};

struct BenchFile {
  std::string path;
  std::string bench;
  // (group/label) -> point object. Pointers into `doc`.
  std::map<std::string, const JsonValue*> points;
  JsonValue doc;
};

// Raw shard points (bench_shard_failover) carry "run" and "shard"
// instead of "label"; synthesize a stable label so they match across
// files.
std::string point_label(const JsonValue& pt) {
  if (const JsonValue* l = pt.find("label"); l != nullptr && l->is_string())
    return l->str;
  const JsonValue* run = pt.find("run");
  const JsonValue* sh = pt.find("shard");
  if (run != nullptr && run->is_string() && sh != nullptr && sh->is_number())
    return run->str + "/shard" + std::to_string(static_cast<int>(sh->number));
  return {};
}

bool load_bench_file(const std::string& path, BenchFile& out,
                     std::string& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::string perr;
  if (!qserv::obs::json_parse(text, out.doc, &perr)) {
    err = path + ": " + perr;
    return false;
  }
  const JsonValue* schema = out.doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      (schema->str != "qserv-bench-v1" && schema->str != "qserv-metrics-v1")) {
    err = path + ": not a qserv-bench-v1 file";
    return false;
  }
  out.path = path;
  if (const JsonValue* b = out.doc.find("bench"); b != nullptr)
    out.bench = b->string_or("");
  const JsonValue* groups = out.doc.find("groups");
  if (groups == nullptr || !groups->is_array()) {
    err = path + ": no groups array";
    return false;
  }
  for (const JsonValue& g : groups->items) {
    const JsonValue* gname = g.find("name");
    const JsonValue* pts = g.find("points");
    if (gname == nullptr || pts == nullptr || !pts->is_array()) continue;
    for (const JsonValue& pt : pts->items) {
      const std::string label = point_label(pt);
      if (label.empty()) continue;
      out.points.emplace(gname->string_or("") + "/" + label, &pt);
    }
  }
  return true;
}

struct Delta {
  std::string point;  // group/label
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel = 0.0;  // signed relative change, candidate vs baseline
  bool regressed = false;
};

// Relative change is computed so that positive means "moved the wrong
// way" for the metric's direction; the threshold applies uniformly.
std::vector<Delta> compare(const BenchFile& base, const BenchFile& cand,
                           double threshold) {
  std::vector<Delta> out;
  for (const auto& [key, bpt] : base.points) {
    const auto it = cand.points.find(key);
    if (it == cand.points.end()) continue;
    for (const KeyedMetric& m : kMetrics) {
      const JsonValue* bv = bpt->at_path(m.path);
      const JsonValue* cv = it->second->at_path(m.path);
      if (bv == nullptr || cv == nullptr || !bv->is_number() ||
          !cv->is_number())
        continue;
      Delta d;
      d.point = key;
      d.metric = m.path;
      d.baseline = bv->number;
      d.candidate = cv->number;
      const double denom = std::fabs(d.baseline) > 1e-12 ? d.baseline : 1.0;
      d.rel = (d.candidate - d.baseline) / denom;
      switch (m.dir) {
        case KeyedMetric::Dir::kHigherBetter:
          d.regressed = d.rel < -threshold;
          break;
        case KeyedMetric::Dir::kLowerBetter:
          d.regressed = d.rel > threshold;
          break;
        case KeyedMetric::Dir::kNonDecreasing:
          d.regressed = d.candidate < d.baseline;
          break;
      }
      out.push_back(d);
    }
  }
  return out;
}

int run_gate(const std::string& base_path, const std::string& cand_path,
             double threshold) {
  BenchFile base, cand;
  std::string err;
  if (!load_bench_file(base_path, base, err) ||
      !load_bench_file(cand_path, cand, err)) {
    std::fprintf(stderr, "qserv-trend: %s\n", err.c_str());
    return 2;
  }
  if (!base.bench.empty() && !cand.bench.empty() && base.bench != cand.bench) {
    std::fprintf(stderr,
                 "qserv-trend: bench mismatch (baseline \"%s\" vs candidate "
                 "\"%s\")\n",
                 base.bench.c_str(), cand.bench.c_str());
    return 2;
  }
  const std::vector<Delta> deltas = compare(base, cand, threshold);
  if (deltas.empty()) {
    std::fprintf(stderr,
                 "qserv-trend: no comparable points between %s and %s\n",
                 base_path.c_str(), cand_path.c_str());
    return 2;
  }

  std::printf("qserv-trend: %s -> %s (bench \"%s\", threshold %.0f%%)\n",
              base_path.c_str(), cand_path.c_str(), cand.bench.c_str(),
              threshold * 100.0);
  std::printf("  %-28s %-22s %12s %12s %8s\n", "point", "metric", "baseline",
              "candidate", "delta");
  int regressions = 0;
  for (const Delta& d : deltas) {
    const bool interesting = d.regressed || std::fabs(d.rel) > threshold / 2;
    if (!interesting) continue;
    std::printf("  %-28s %-22s %12.3f %12.3f %+7.1f%%%s\n", d.point.c_str(),
                d.metric.c_str(), d.baseline, d.candidate, d.rel * 100.0,
                d.regressed ? "  REGRESSION" : "");
  }
  for (const Delta& d : deltas)
    if (d.regressed) ++regressions;
  if (regressions > 0) {
    std::printf("FAIL: %d keyed-metric regression(s) past %.0f%% across %zu "
                "comparisons\n",
                regressions, threshold * 100.0, deltas.size());
    return 1;
  }
  std::printf("PASS: no keyed-metric regressions across %zu comparisons\n",
              deltas.size());
  return 0;
}

int run_trajectory(const std::vector<std::string>& paths) {
  std::vector<BenchFile> files(paths.size());
  std::string err;
  for (size_t i = 0; i < paths.size(); ++i) {
    if (!load_bench_file(paths[i], files[i], err)) {
      std::fprintf(stderr, "qserv-trend: %s\n", err.c_str());
      return 2;
    }
  }
  std::printf("qserv-trend: trajectory across %zu files (oldest first)\n",
              paths.size());
  for (const auto& [key, pt0] : files.front().points) {
    for (const KeyedMetric& m : kMetrics) {
      if (pt0->at_path(m.path) == nullptr) continue;
      std::printf("  %-28s %-22s", key.c_str(), m.path);
      for (const BenchFile& f : files) {
        const auto it = f.points.find(key);
        const JsonValue* v =
            it != f.points.end() ? it->second->at_path(m.path) : nullptr;
        if (v != nullptr && v->is_number())
          std::printf(" %10.3f", v->number);
        else
          std::printf(" %10s", "-");
      }
      std::printf("\n");
    }
  }
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: qserv-trend --baseline OLD.json --candidate NEW.json "
      "[--threshold 0.10]\n"
      "       qserv-trend A.json B.json [C.json ...]   (trajectory)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path, cand_path;
  std::vector<std::string> positional;
  double threshold = 0.10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage(), 2;
      base_path = v;
    } else if (arg == "--candidate") {
      const char* v = next();
      if (v == nullptr) return usage(), 2;
      cand_path = v;
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return usage(), 2;
      threshold = std::strtod(v, nullptr);
      if (!(threshold > 0.0) || threshold >= 1.0) {
        std::fprintf(stderr, "qserv-trend: bad threshold \"%s\"\n", v);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      return usage(), 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "qserv-trend: unknown flag \"%s\"\n", arg.c_str());
      return usage(), 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (!base_path.empty() && !cand_path.empty() && positional.empty())
    return run_gate(base_path, cand_path, threshold);
  if (base_path.empty() && cand_path.empty() && positional.size() == 2)
    return run_gate(positional[0], positional[1], threshold);
  if (base_path.empty() && cand_path.empty() && positional.size() > 2)
    return run_trajectory(positional);
  return usage(), 2;
}
