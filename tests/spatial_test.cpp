#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/spatial/areanode_tree.hpp"
#include "src/spatial/collision.hpp"
#include "src/spatial/map.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/util/rng.hpp"

namespace qserv::spatial {
namespace {

const Aabb kWorld{{-1024, -1024, 0}, {1024, 1024, 256}};

TEST(AreanodeTree, DefaultShapeMatchesQuake) {
  AreanodeTree t(kWorld, 4);
  EXPECT_EQ(t.node_count(), 31);  // the paper's default: 31 nodes
  EXPECT_EQ(t.leaf_count(), 16);  // ... 16 of which are leaves
  EXPECT_FALSE(t.is_leaf(0));
  EXPECT_TRUE(t.is_leaf(30));
  EXPECT_EQ(t.leaf_ordinal(15), 0);
  EXPECT_EQ(t.leaf_ordinal(30), 15);
}

TEST(AreanodeTree, SweepableSizes) {
  for (int depth : {1, 2, 3, 4, 5}) {
    AreanodeTree t(kWorld, depth);
    EXPECT_EQ(t.node_count(), (2 << depth) - 1);  // 3, 7, 15, 31, 63
    EXPECT_EQ(t.leaf_count(), 1 << depth);
  }
}

TEST(AreanodeTree, SplitsAlternateAxesAndHalveVolumes) {
  AreanodeTree t(kWorld, 4);
  const auto& root = t.node(0);
  EXPECT_GE(root.axis, 0);
  const auto& c = t.node(root.child_lo);
  EXPECT_NE(c.axis, root.axis);
  EXPECT_NEAR(c.bounds.volume() * 2.0f, root.bounds.volume(), 1.0f);
  // Every node spans the full world height (the tree is 2-D).
  for (int i = 0; i < t.node_count(); ++i) {
    EXPECT_FLOAT_EQ(t.node(i).bounds.mins.z, kWorld.mins.z);
    EXPECT_FLOAT_EQ(t.node(i).bounds.maxs.z, kWorld.maxs.z);
  }
}

TEST(AreanodeTree, LeavesPartitionTheWorld) {
  AreanodeTree t(kWorld, 4);
  float leaf_volume = 0.0f;
  for (int i = 0; i < t.node_count(); ++i) {
    if (t.is_leaf(i)) leaf_volume += t.node(i).bounds.volume();
  }
  EXPECT_NEAR(leaf_volume, kWorld.volume(), kWorld.volume() * 1e-5f);
}

TEST(AreanodeTree, LinkGoesToDeepestContainingNode) {
  AreanodeTree t(kWorld, 4);
  // A small box well inside one quadrant must land in a leaf.
  const Aabb small{{100, 100, 0}, {132, 132, 56}};
  const int leaf = t.link_node_for(small);
  EXPECT_TRUE(t.is_leaf(leaf));
  EXPECT_TRUE(t.node(leaf).bounds.contains(small));
  // A box straddling the root split plane links to the root.
  const auto& root = t.node(0);
  Aabb straddle = small;
  straddle.mins[root.axis] = root.dist - 10;
  straddle.maxs[root.axis] = root.dist + 10;
  EXPECT_EQ(t.link_node_for(straddle), 0);
}

TEST(AreanodeTree, LinkUnlinkMaintainsObjectLists) {
  AreanodeTree t(kWorld, 4);
  const Aabb box{{10, 10, 0}, {40, 40, 56}};
  const int node = t.link(7, box);
  EXPECT_EQ(t.total_linked(), 1u);
  const auto& objs = t.node(node).objects;
  EXPECT_EQ(objs, (std::vector<uint32_t>{7}));
  t.unlink(7, node);
  EXPECT_EQ(t.total_linked(), 0u);
}

TEST(AreanodeTree, LeavesForReturnsCanonicalOrder) {
  AreanodeTree t(kWorld, 4);
  std::vector<int> leaves;
  t.leaves_for(kWorld, leaves);  // whole world -> all 16 leaves
  EXPECT_EQ(leaves.size(), 16u);
  EXPECT_TRUE(std::is_sorted(leaves.begin(), leaves.end()));
  leaves.clear();
  t.leaves_for(Aabb{{10, 10, 0}, {20, 20, 56}}, leaves);
  EXPECT_EQ(leaves.size(), 1u);
}

TEST(AreanodeTree, BoxOnPlaneLocksBothSides) {
  AreanodeTree t(kWorld, 1);  // one split
  const auto& root = t.node(0);
  Aabb on_plane{{-5, -5, 0}, {5, 5, 56}};
  on_plane.mins[root.axis] = root.dist - 5;
  on_plane.maxs[root.axis] = root.dist + 5;
  std::vector<int> leaves;
  t.leaves_for(on_plane, leaves);
  EXPECT_EQ(leaves.size(), 2u);
}

// Property: for random entity placements and random query boxes, the
// traverse() visit set includes the node of every entity whose box
// intersects the query box.
TEST(AreanodeTree, TraverseFindsAllIntersectingEntities) {
  Rng rng(1234);
  AreanodeTree t(kWorld, 4);
  struct Placed {
    uint32_t id;
    Aabb box;
    int node;
  };
  std::vector<Placed> placed;
  for (uint32_t id = 0; id < 200; ++id) {
    const Vec3 c = rng.point_in(kWorld.mins + Vec3{40, 40, 0},
                                kWorld.maxs - Vec3{40, 40, 60});
    const float half = rng.uniform(4.0f, 30.0f);
    const Aabb box{{c.x - half, c.y - half, c.z},
                   {c.x + half, c.y + half, c.z + 56}};
    placed.push_back({id, box, t.link(id, box)});
  }
  for (int q = 0; q < 100; ++q) {
    const Vec3 c = rng.point_in(kWorld.mins, kWorld.maxs);
    const float half = rng.uniform(10.0f, 400.0f);
    const Aabb query{{c.x - half, c.y - half, kWorld.mins.z},
                     {c.x + half, c.y + half, kWorld.maxs.z}};
    std::set<int> visited;
    t.traverse(query, [&](int node) { visited.insert(node); });
    for (const auto& pl : placed) {
      if (pl.box.intersects(query)) {
        EXPECT_TRUE(visited.contains(pl.node))
            << "entity " << pl.id << " in node " << pl.node << " missed";
      }
    }
  }
}

// Property: traverse() visits exactly the leaves leaves_for() reports
// (plus interior nodes) — the lock manager relies on this agreement.
TEST(AreanodeTree, TraverseVisitsExactlyTheLockedLeaves) {
  Rng rng(99);
  AreanodeTree t(kWorld, 4);
  for (int q = 0; q < 200; ++q) {
    const Vec3 c = rng.point_in(kWorld.mins, kWorld.maxs);
    const float hx = rng.uniform(1.0f, 500.0f);
    const float hy = rng.uniform(1.0f, 500.0f);
    const Aabb query{{c.x - hx, c.y - hy, kWorld.mins.z},
                     {c.x + hx, c.y + hy, kWorld.maxs.z}};
    std::vector<int> locked;
    t.leaves_for(query, locked);
    std::vector<int> visited_leaves;
    t.traverse(query, [&](int node) {
      if (t.is_leaf(node)) visited_leaves.push_back(node);
    });
    std::sort(visited_leaves.begin(), visited_leaves.end());
    EXPECT_EQ(visited_leaves, locked);
  }
}

TEST(CollisionWorld, PointAndBoxSolid) {
  CollisionWorld w({Brush{{{0, 0, 0}, {100, 100, 100}}}});
  EXPECT_TRUE(w.point_solid({50, 50, 50}));
  EXPECT_FALSE(w.point_solid({150, 50, 50}));
  EXPECT_TRUE(w.box_solid({110, 50, 50}, {-20, -20, -20}, {20, 20, 20}));
  EXPECT_FALSE(w.box_solid({130, 50, 50}, {-20, -20, -20}, {20, 20, 20}));
  // Touching exactly is not solid (open intervals).
  EXPECT_FALSE(w.box_solid({120, 50, 50}, {-20, -20, -20}, {20, 20, 20}));
}

TEST(CollisionWorld, LineTraceHitsFirstSurface) {
  CollisionWorld w({Brush{{{100, -50, -50}, {120, 50, 50}}}});
  const auto tr = w.trace_line({0, 0, 0}, {200, 0, 0});
  EXPECT_TRUE(tr.hit());
  EXPECT_NEAR(tr.fraction, 0.5f, 0.01f);
  EXPECT_NEAR(tr.endpos.x, 100.0f, 0.1f);
  EXPECT_FLOAT_EQ(tr.normal.x, -1.0f);
}

TEST(CollisionWorld, MissedTraceRunsFull) {
  CollisionWorld w({Brush{{{100, 100, 0}, {120, 120, 50}}}});
  const auto tr = w.trace_line({0, 0, 10}, {200, 0, 10});
  EXPECT_FALSE(tr.hit());
  EXPECT_FLOAT_EQ(tr.fraction, 1.0f);
  EXPECT_EQ(tr.endpos, Vec3(200, 0, 10));
}

TEST(CollisionWorld, BoxTraceAccountsForExtents) {
  CollisionWorld w({Brush{{{100, -50, -50}, {120, 50, 50}}}});
  // A 32-wide box must stop 16 units earlier than a point.
  const auto tr = w.trace_box({0, 0, 0}, {200, 0, 0}, {-16, -16, -16},
                              {16, 16, 16});
  EXPECT_TRUE(tr.hit());
  EXPECT_NEAR(tr.endpos.x, 84.0f, 0.1f);
}

TEST(CollisionWorld, TraceFromInsideReportsStartSolid) {
  CollisionWorld w({Brush{{{0, 0, 0}, {100, 100, 100}}}});
  const auto tr = w.trace_line({50, 50, 50}, {200, 50, 50});
  EXPECT_TRUE(tr.start_solid);
  EXPECT_FLOAT_EQ(tr.fraction, 0.0f);
}

TEST(CollisionWorld, TraceEndpointNeverInsideSolid) {
  Rng rng(5);
  std::vector<Brush> brushes;
  for (int i = 0; i < 40; ++i) {
    const Vec3 c = rng.point_in({-500, -500, -500}, {500, 500, 500});
    const Vec3 half{rng.uniform(10, 80), rng.uniform(10, 80),
                    rng.uniform(10, 80)};
    brushes.push_back(Brush{{c - half, c + half}});
  }
  CollisionWorld w(brushes);
  const Vec3 mins{-16, -16, -24}, maxs{16, 16, 32};
  int traced = 0;
  for (int i = 0; i < 500; ++i) {
    const Vec3 start = rng.point_in({-600, -600, -600}, {600, 600, 600});
    if (w.box_solid(start, mins, maxs)) continue;
    const Vec3 end = rng.point_in({-600, -600, -600}, {600, 600, 600});
    const auto tr = w.trace_box(start, end, mins, maxs);
    ASSERT_FALSE(tr.start_solid);
    EXPECT_FALSE(w.box_solid(tr.endpos, mins, maxs))
        << "trace " << i << " ended inside solid at " << tr.endpos.str();
    ++traced;
  }
  EXPECT_GT(traced, 100);  // the property must actually have been exercised
}

TEST(CollisionWorld, QueryFindsIntersectingBrushes) {
  std::vector<Brush> brushes;
  for (int i = 0; i < 100; ++i) {
    const float x = static_cast<float>(i) * 50.0f;
    brushes.push_back(Brush{{{x, 0, 0}, {x + 20, 20, 20}}});
  }
  CollisionWorld w(brushes);
  std::vector<uint32_t> hits;
  w.query({{0, 0, 0}, {200, 20, 20}}, hits);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(MapGen, LargeDeathmatchIsValid) {
  const GameMap map = make_large_deathmatch(7);
  std::string err;
  EXPECT_TRUE(map.validate(&err)) << err;
  EXPECT_GT(map.brushes.size(), 50u);
  EXPECT_GE(map.spawns.size(), 200u);  // enough for 176+ players
  EXPECT_GT(map.items.size(), 50u);
  EXPECT_GE(map.teleporters.size(), 2u);
  EXPECT_GT(map.waypoints.size(), 36u);
}

TEST(MapGen, ArenaIsValidAndOpen) {
  const GameMap map = make_arena(1024);
  std::string err;
  EXPECT_TRUE(map.validate(&err)) << err;
  const CollisionWorld w = map.build_collision();
  // The arena interior is one open space: a trace between two spawn
  // points at standing height must not start solid.
  ASSERT_GE(map.spawns.size(), 2u);
  const auto tr =
      w.trace_line(map.spawns[0].origin, map.spawns[1].origin);
  EXPECT_FALSE(tr.start_solid);
}

TEST(MapGen, DeterministicForSeed) {
  const GameMap a = make_large_deathmatch(11);
  const GameMap b = make_large_deathmatch(11);
  const GameMap c = make_large_deathmatch(12);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_NE(a.serialize(), c.serialize());
}

TEST(MapGen, RoomsAreConnectedThroughDoors) {
  const GameMap map = make_large_deathmatch(7);
  // BFS over the waypoint graph must reach every room waypoint.
  std::vector<bool> seen(map.waypoints.size(), false);
  std::vector<int> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const int w = stack.back();
    stack.pop_back();
    for (const int n : map.waypoints[static_cast<size_t>(w)].neighbors) {
      if (!seen[static_cast<size_t>(n)]) {
        seen[static_cast<size_t>(n)] = true;
        stack.push_back(n);
      }
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(GameMapIo, SerializeParseRoundTrip) {
  const GameMap map = make_large_deathmatch(3);
  GameMap out;
  ASSERT_TRUE(GameMap::parse(map.serialize(), out));
  EXPECT_EQ(out.name, map.name);
  EXPECT_EQ(out.brushes.size(), map.brushes.size());
  EXPECT_EQ(out.spawns.size(), map.spawns.size());
  EXPECT_EQ(out.items.size(), map.items.size());
  EXPECT_EQ(out.teleporters.size(), map.teleporters.size());
  EXPECT_EQ(out.waypoints.size(), map.waypoints.size());
  std::string err;
  EXPECT_TRUE(out.validate(&err)) << err;
  // Numeric fidelity: re-serialization is a fixed point.
  EXPECT_EQ(out.serialize(), map.serialize());
}

TEST(GameMapIo, ParseRejectsGarbage) {
  GameMap out;
  EXPECT_FALSE(GameMap::parse("nonsense directive\n", out));
  EXPECT_FALSE(GameMap::parse("", out));              // no bounds
  EXPECT_FALSE(GameMap::parse("brush 1 2 3\n", out)); // short vector
  EXPECT_FALSE(GameMap::parse("bounds 0 0 0 1 1 1\nitem 99 0 0 0\n", out));
}

}  // namespace
}  // namespace qserv::spatial
