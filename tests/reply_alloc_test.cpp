// Reply hot-path allocation discipline (DESIGN.md §15): sealed event
// blocks make the per-frame reply-buffer fan-out a refcount bump instead
// of N event copies, and the arena/scratch reuse keeps the steady-state
// reply phase allocation-free. This binary includes the bench allocation
// counter (global operator new override) so the assertions count real
// heap traffic.
#include <gtest/gtest.h>

#include "bench/alloc_counter.hpp"
#include "src/core/global_state.hpp"
#include "src/harness/experiment.hpp"

namespace qserv::core {
namespace {

net::GameEvent ev(uint8_t kind) { return net::GameEvent{kind, 0, 0, {}}; }

// Sealed blocks flow through reply buffers by reference, oldest first,
// and null/empty blocks are dropped at the door.
TEST(ReplyAlloc, SealedBlocksDrainInOrder) {
  vt::SimPlatform p;
  GlobalStateBuffer gsb(p);
  ReplyBuffer rb(p);
  p.spawn("t", vt::Domain::kServer, [&] {
    gsb.emit(ev(1));
    gsb.emit(ev(2));
    const SealedEvents block = gsb.seal_frame();
    ASSERT_TRUE(block);
    EXPECT_EQ(block->size(), 2u);
    EXPECT_TRUE(gsb.snapshot().empty());  // live buffer left empty

    rb.append_block(block);
    rb.append({ev(3)});  // element-wise events land after the block
    rb.append_block(nullptr);
    rb.append_block(gsb.seal_frame());  // empty frame: dropped
    EXPECT_EQ(rb.size(), 3u);

    std::vector<net::GameEvent> out;
    rb.drain_into(out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].kind, 1);
    EXPECT_EQ(out[1].kind, 2);
    EXPECT_EQ(out[2].kind, 3);
    EXPECT_EQ(rb.size(), 0u);
  });
  p.run();
}

// Once the pool is warm and every frame's readers let go, sealing and
// fanning out a frame's events performs zero heap allocations.
TEST(ReplyAlloc, SealFrameSteadyStateAllocFree) {
  vt::SimPlatform p;
  GlobalStateBuffer gsb(p);
  ReplyBuffer rb0(p), rb1(p), rb2(p);
  p.spawn("t", vt::Domain::kServer, [&] {
    std::vector<net::GameEvent> drained;
    drained.reserve(64);
    SealedEvents held;  // the reply phase holds the frame's block too
    const auto frame = [&] {
      for (int i = 0; i < 8; ++i) gsb.emit(ev(uint8_t(1 + i)));
      held = gsb.seal_frame();
      rb0.append_block(held);
      rb1.append_block(held);
      rb2.append_block(held);
      drained.clear();
      rb0.drain_into(drained);
      rb1.drain_into(drained);
      rb2.drain_into(drained);
      EXPECT_EQ(drained.size(), 24u);
    };
    for (int warm = 0; warm < 4; ++warm) frame();
    const uint64_t before = bench::heap_allocs();
    for (int hot = 0; hot < 32; ++hot) frame();
    EXPECT_EQ(bench::heap_allocs() - before, 0u)
        << "sealing/fan-out must reuse pooled blocks and capacities";
  });
  p.run();
}

// End to end: with the shared-baseline reply path on, the server does not
// allocate more per frame than the legacy path (it should allocate less —
// no per-reply encode vectors), and the harness exports the metric.
TEST(ReplyAllocE2E, SharedPathAllocatesNoMoreThanLegacy) {
  auto cfg = harness::paper_config(harness::ServerMode::kSequential, 1, 32,
                                   LockPolicy::kNone);
  cfg.server.delta_snapshots = true;
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(3);
  const auto legacy = harness::run_experiment(cfg);

  cfg.server.reply.soa_view = true;
  cfg.server.reply.shared_baselines = true;
  const auto shared = harness::run_experiment(cfg);

  ASSERT_GE(legacy.allocs_per_frame, 0.0);  // probe registered and counting
  ASSERT_GE(shared.allocs_per_frame, 0.0);
  EXPECT_EQ(legacy.connected, 32);
  EXPECT_EQ(shared.connected, 32);
  // Whole-process counts (clients included), so allow a sliver of noise.
  EXPECT_LE(shared.allocs_per_frame, legacy.allocs_per_frame * 1.05 + 5.0)
      << "legacy " << legacy.allocs_per_frame << " shared "
      << shared.allocs_per_frame;
}

}  // namespace
}  // namespace qserv::core
