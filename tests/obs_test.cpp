// Observability layer tests: tracer ring semantics, JSON emission and
// escaping, Chrome trace export validity, metrics registry and histogram
// percentiles, multi-threaded span emission (TSan-clean by construction:
// one writer per track), and end-to-end harness integration.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/harness/json_export.hpp"
#include "src/obs/collect.hpp"
#include "src/obs/fleet.hpp"
#include "src/obs/json.hpp"
#include "src/obs/json_parse.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/slo.hpp"
#include "src/obs/trace.hpp"
#include "src/util/histogram.hpp"
#include "src/vthread/real_platform.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv {
namespace {

// ---- minimal JSON syntax checker (validation only, no DOM) ------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0)
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string_view l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---- JSON emission ----------------------------------------------------

TEST(JsonTest, EscapesSpecialCharacters) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, WriterEmitsWellFormedDocument) {
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("name", "qserv \"bench\"");
  w.kv("count", 42);
  w.kv("ratio", 0.5);
  w.kv("on", true);
  w.key("list");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.begin_object();
  w.kv("nested", "yes");
  w.end_object();
  w.end_array();
  w.key("nothing");
  w.null();
  w.end_object();

  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  EXPECT_NE(out.find("\"count\":42"), std::string::npos);
  EXPECT_NE(out.find("[1,2,{\"nested\":\"yes\"}]"), std::string::npos);
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  std::string out;
  obs::JsonWriter w(out);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(out, "[null,null]");
}

// ---- tracer ring semantics -------------------------------------------

TEST(TracerTest, RingKeepsNewestAndCountsDropped) {
  vt::SimPlatform platform;
  obs::Tracer::Config cfg;
  cfg.capacity_per_track = 8;
  obs::Tracer tracer(platform, cfg);
  const int t = tracer.make_track("t0");

  for (int i = 0; i < 20; ++i)
    tracer.record(t, "span", /*start_ns=*/i * 100, /*dur_ns=*/50, i);

  const auto events = tracer.events(t);
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.dropped(t), 12u);
  EXPECT_EQ(tracer.total_recorded(), 20u);
  // Oldest surviving span first: frames 12..19.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].frame, static_cast<int64_t>(12 + i));
    EXPECT_EQ(events[i].start_ns, static_cast<int64_t>((12 + i) * 100));
  }
}

TEST(TracerTest, DisabledAndNullTracersRecordNothing) {
  vt::SimPlatform platform;
  obs::Tracer tracer(platform);
  const int t = tracer.make_track("t0");

  tracer.set_enabled(false);
  { obs::TraceScope s(&tracer, t, "off"); }
  { obs::TraceScope s(nullptr, 0, "null"); }  // must not crash
  EXPECT_EQ(tracer.total_recorded(), 0u);

  tracer.set_enabled(true);
  { obs::TraceScope s(&tracer, t, "on"); }
#ifndef QSERV_OBS_NO_TRACING
  EXPECT_EQ(tracer.total_recorded(), 1u);
#endif
}

TEST(TracerTest, ChromeExportIsValidAndNamesTracks) {
  vt::SimPlatform platform;
  obs::Tracer tracer(platform);
  const int a = tracer.make_track("alpha");
  const int b = tracer.make_track("beta \"quoted\"");
  tracer.record(a, "world", 1000, 500, 3);
  tracer.record(b, "exec", 1500, 200);

  const std::string json = tracer.export_chrome_trace();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("alpha"), std::string::npos);
  EXPECT_NE(json.find("beta \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"world\""), std::string::npos);
  EXPECT_NE(json.find("\"frame\":3"), std::string::npos);
}

TEST(TracerTest, UnboundTracerBindsLater) {
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.bound());
  EXPECT_EQ(tracer.now_ns(), 0);
  vt::SimPlatform platform;
  tracer.bind(platform);
  EXPECT_TRUE(tracer.bound());
}

// One writer per track from concurrent OS threads: must be TSan-clean
// and lose nothing.
TEST(TracerTest, ConcurrentSingleWriterTracks) {
  vt::RealPlatform platform;
  obs::Tracer::Config cfg;
  cfg.capacity_per_track = 1 << 12;
  obs::Tracer tracer(platform, cfg);

  constexpr int kThreads = 4;
  constexpr int kSpans = 10000;
  std::vector<int> tracks;
  for (int i = 0; i < kThreads; ++i)
    tracks.push_back(tracer.make_track("w" + std::to_string(i)));

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int s = 0; s < kSpans; ++s) {
        obs::TraceScope scope(&tracer, tracks[static_cast<size_t>(i)],
                              "span");
      }
    });
  }
  for (auto& th : threads) th.join();

#ifndef QSERV_OBS_NO_TRACING
  EXPECT_EQ(tracer.total_recorded(),
            static_cast<uint64_t>(kThreads) * kSpans);
  for (const int t : tracks) {
    EXPECT_EQ(tracer.events(t).size(), cfg.capacity_per_track);
    EXPECT_EQ(tracer.dropped(t), static_cast<uint64_t>(kSpans) -
                                     cfg.capacity_per_track);
  }
#endif
}

// ---- fleet-mode tracer: pids, instants, flows, interning --------------

TEST(TracerTest, InstantAndFlowEventsExportWithProcessNames) {
  vt::SimPlatform platform;
  obs::Tracer tracer(platform);
  tracer.set_process_name(2, "shard-0");
  tracer.set_process_name(3, "shard-1");
  const int a = tracer.make_track("shard-0/handoff", /*pid=*/2);
  const int b = tracer.make_track("shard-1/handoff", /*pid=*/3);
  EXPECT_EQ(tracer.track_pid(a), 2);
  EXPECT_EQ(tracer.track_pid(b), 3);

  tracer.record_flow_span(a, "handoff-out", 1000, 100, /*frame=*/5,
                          /*flow=*/7, /*outgoing=*/true);
  tracer.record_flow_span(b, "handoff-in", 2000, 100, /*frame=*/-1,
                          /*flow=*/7, /*outgoing=*/false);
  tracer.record_instant(b, "quarantine:crash-flag");

  const std::string json = tracer.export_chrome_trace();
  ASSERT_TRUE(JsonChecker(json).valid()) << json;

  // Structural check through the DOM parser: the flow must appear as a
  // Chrome "s"/"f" pair sharing an id, crossing the two shard pids.
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(json, doc, &err)) << err;
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int flow_start = 0, flow_finish = 0, instants = 0, procs = 0;
  std::vector<double> flow_pids;
  for (const obs::JsonValue& e : events->items) {
    const std::string ph = e.find("ph")->string_or("");
    if (ph == "s" || ph == "f") {
      EXPECT_EQ(e.find("id")->number_or(-1), 7.0);
      EXPECT_EQ(e.find("name")->string_or(""), "session-handoff");
      flow_pids.push_back(e.find("pid")->number_or(-1));
      (ph == "s" ? flow_start : flow_finish)++;
    } else if (ph == "i") {
      EXPECT_EQ(e.find("name")->string_or(""), "quarantine:crash-flag");
      ++instants;
    } else if (ph == "M" &&
               e.find("name")->string_or("") == "process_name") {
      ++procs;
    }
  }
  EXPECT_EQ(flow_start, 1);
  EXPECT_EQ(flow_finish, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_GE(procs, 2);
  ASSERT_EQ(flow_pids.size(), 2u);
  EXPECT_NE(flow_pids[0], flow_pids[1]);  // the arrow crosses processes
}

TEST(TracerTest, InternedNamesAreStableAndDeduplicated) {
  obs::Tracer tracer;
  const char* a = tracer.intern("slo:frame_p99");
  const char* b = tracer.intern("slo:frame_p99");
  EXPECT_EQ(a, b);  // same string, same storage
  const char* c = tracer.intern("slo:lost_clients");
  EXPECT_NE(a, c);
  // Interning more names must not invalidate earlier pointers.
  for (int i = 0; i < 1000; ++i) tracer.intern("name-" + std::to_string(i));
  EXPECT_EQ(std::string(a), "slo:frame_p99");
}

// A supervisor-rebuilt engine registers fresh tracks while the rest of
// the fleet is recording: registration must be safe against concurrent
// writers (the track table never reallocates).
TEST(TracerTest, TrackRegistrationIsSafeUnderConcurrentRecording) {
  vt::RealPlatform platform;
  obs::Tracer::Config cfg;
  cfg.capacity_per_track = 1 << 10;
  cfg.max_tracks = 256;
  obs::Tracer tracer(platform, cfg);

  constexpr int kWriters = 3;
  constexpr int kSpans = 20000;
  std::vector<int> tracks;
  for (int i = 0; i < kWriters; ++i)
    tracks.push_back(tracer.make_track("w" + std::to_string(i)));

  std::vector<std::thread> threads;
  for (int i = 0; i < kWriters; ++i) {
    threads.emplace_back([&, i] {
      for (int s = 0; s < kSpans; ++s)
        tracer.record(tracks[static_cast<size_t>(i)], "span", s, 1);
    });
  }
  // Meanwhile: register new tracks (and write one event to each), as a
  // rebuilt shard generation would.
  threads.emplace_back([&] {
    for (int g = 0; g < 100; ++g) {
      const int t = tracer.make_track("g" + std::to_string(g), /*pid=*/g);
      tracer.record_instant(t, "restore");
    }
  });
  for (auto& th : threads) th.join();

  EXPECT_EQ(tracer.track_count(), kWriters + 100);
  EXPECT_EQ(tracer.total_recorded(),
            static_cast<uint64_t>(kWriters) * kSpans + 100);
  EXPECT_EQ(tracer.track_name(tracks[0]), "w0");
}

// ---- metrics ----------------------------------------------------------

TEST(MetricsTest, RegistryFindsOrCreatesAndSnapshots) {
  obs::MetricsRegistry reg;
  reg.counter("net.packets").inc(5);
  reg.counter("net.packets").inc(2);  // same instrument
  reg.gauge("server.clients").set(17.0);
  auto& h = reg.histogram("frame_ms");
  h.observe(10.0);
  h.observe(20.0);
  EXPECT_EQ(reg.size(), 3u);

  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  // Sorted by name: frame_ms, net.packets, server.clients.
  EXPECT_EQ(samples[0].name, "frame_ms");
  EXPECT_EQ(samples[0].count, 2u);
  EXPECT_NEAR(samples[0].value, 15.0, 2.0);  // mean, log-bucket tolerance
  EXPECT_EQ(samples[1].name, "net.packets");
  EXPECT_EQ(samples[1].value, 7.0);
  EXPECT_EQ(samples[2].name, "server.clients");
  EXPECT_EQ(samples[2].value, 17.0);

  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("qserv-metrics-v1"), std::string::npos);
}

TEST(MetricsTest, HistogramPercentilesAreAccurate) {
  Histogram h(/*smallest=*/0.5, /*base=*/1.25);
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  // Log buckets with base 1.25 bound each percentile within one bucket
  // (25% wide) before interpolation; 15% relative tolerance is safe.
  EXPECT_NEAR(h.percentile(50), 500.0, 75.0);
  EXPECT_NEAR(h.percentile(95), 950.0, 145.0);
  EXPECT_NEAR(h.percentile(99), 990.0, 150.0);
  EXPECT_EQ(h.count(), 1000u);
}

// ---- metrics federation ----------------------------------------------

TEST(FleetMetricsTest, FederatePrefixesSumsAndMergesBucketwise) {
  obs::MetricsRegistry a, b;
  a.counter("server.requests").inc(10);
  b.counter("server.requests").inc(32);
  a.gauge("server.clients").set(64.0);
  b.gauge("server.clients").set(60.0);
  auto& ha = a.histogram("server.frame_duration_ms", 1e-3);
  auto& hb = b.histogram("server.frame_duration_ms", 1e-3);
  for (int i = 0; i < 100; ++i) ha.observe(1.0);
  for (int i = 0; i < 100; ++i) hb.observe(20.0);

  const auto samples = obs::federate({{"shard0", &a}, {"shard1", &b}});
  auto find = [&](const std::string& name) -> const obs::MetricSample* {
    for (const auto& s : samples)
      if (s.name == name) return &s;
    return nullptr;
  };

  // Per-shard samples reappear prefixed.
  ASSERT_NE(find("shard0.server.requests"), nullptr);
  EXPECT_EQ(find("shard0.server.requests")->value, 10.0);
  ASSERT_NE(find("shard1.server.clients"), nullptr);
  EXPECT_EQ(find("shard1.server.clients")->value, 60.0);

  // Counters sum across shards.
  ASSERT_NE(find("fleet.server.requests"), nullptr);
  EXPECT_EQ(find("fleet.server.requests")->value, 42.0);

  // Histograms merge at the bucket level: the fleet p99 must see shard1's
  // slow tail (a mean-of-means or percentile-of-percentiles would not).
  const auto* fleet_frames = find("fleet.server.frame_duration_ms");
  ASSERT_NE(fleet_frames, nullptr);
  EXPECT_EQ(fleet_frames->count, 200u);
  EXPECT_GT(fleet_frames->p99, 15.0);
  EXPECT_LT(fleet_frames->p50, 3.0);

  // Gauges are not aggregated — a sum of last-written values means
  // nothing fleet-wide.
  EXPECT_EQ(find("fleet.server.clients"), nullptr);
}

// ---- SLO monitor ------------------------------------------------------

std::vector<obs::MetricSample> slo_samples(double p99, uint64_t count,
                                           double lost) {
  obs::MetricSample frames;
  frames.name = "server.frame_duration_ms";
  frames.kind = obs::MetricKind::kHistogram;
  frames.count = count;
  frames.p99 = p99;
  obs::MetricSample lost_g;
  lost_g.name = "fleet.clients.lost";
  lost_g.kind = obs::MetricKind::kGauge;
  lost_g.value = lost;
  return {frames, lost_g};
}

TEST(SloMonitorTest, DetectsBreachesSkipsAbsentAndUnderfilled) {
  obs::SloMonitor mon;  // default fleet SLOs
  // Healthy window: under budget, nothing lost.
  EXPECT_EQ(mon.evaluate(slo_samples(8.0, 100, 0.0), 1.0, "shard0"), 0);
  EXPECT_TRUE(mon.ok());
  // Frame budget breached.
  EXPECT_EQ(mon.evaluate(slo_samples(14.0, 100, 0.0), 2.0, "shard0"), 1);
  // Histogram below min_count: percentile noise must not trigger.
  EXPECT_EQ(mon.evaluate(slo_samples(99.0, 3, 0.0), 3.0, "shard1"), 0);
  // Lost clients (gauge, exact-zero bound).
  EXPECT_EQ(mon.evaluate(slo_samples(8.0, 100, 2.0), 4.0, "fleet"), 1);
  // Empty snapshot: every spec absent, every spec skipped.
  EXPECT_EQ(mon.evaluate({}, 5.0, "shard2"), 0);

  ASSERT_EQ(mon.breaches().size(), 2u);
  EXPECT_EQ(mon.breaches()[0].slo, "frame_p99");
  EXPECT_EQ(mon.breaches()[0].scope, "shard0");
  EXPECT_EQ(mon.breaches()[0].observed, 14.0);
  EXPECT_EQ(mon.breaches()[1].slo, "lost_clients");
  EXPECT_EQ(mon.breaches()[1].scope, "fleet");
  EXPECT_EQ(mon.evaluations(), 5u);
  EXPECT_FALSE(mon.ok());
  EXPECT_EQ(mon.exit_code(), 1);

  const std::string json = mon.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("qserv-slo-v1"), std::string::npos);
  EXPECT_NE(json.find("lost_clients"), std::string::npos);
}

TEST(SloMonitorTest, BreachEmitsTraceInstant) {
  vt::SimPlatform platform;
  obs::Tracer tracer(platform);
  const int track = tracer.make_track("fleet/slo");
  obs::SloMonitor mon;
  mon.evaluate(slo_samples(14.0, 100, 0.0), 1.0, "shard0", &tracer, track);
  const auto events = tracer.events(track);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::TraceEvent::Kind::kInstant);
  EXPECT_EQ(std::string(events[0].name), "slo:frame_p99");
}

// ---- JSON parser (the qserv-trend reader) -----------------------------

TEST(JsonParseTest, ParsesNestedDocumentsAndPaths) {
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(
      R"({"schema":"qserv-bench-v1","groups":[{"name":"g",
          "points":[{"label":"2t/64p","response":{"rate_per_s":1234.5,
          "connected":64},"ok":true,"note":"a\"bé"}]}]})",
      doc, &err))
      << err;
  const obs::JsonValue* pt = doc.at_path("groups");
  ASSERT_NE(pt, nullptr);
  ASSERT_TRUE(pt->is_array());
  const obs::JsonValue& point = pt->items[0].find("points")->items[0];
  EXPECT_EQ(point.at_path("response.rate_per_s")->number_or(0), 1234.5);
  EXPECT_EQ(point.at_path("response.connected")->number_or(0), 64.0);
  EXPECT_TRUE(point.find("ok")->boolean);
  EXPECT_EQ(point.find("note")->string_or(""), "a\"b\xc3\xa9");
  EXPECT_EQ(point.at_path("response.missing"), nullptr);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  obs::JsonValue v;
  std::string err;
  EXPECT_FALSE(obs::json_parse("{\"a\":1} trailing", v, &err));
  EXPECT_NE(err.find("trailing"), std::string::npos);
  EXPECT_FALSE(obs::json_parse("{\"a\":}", v, &err));
  EXPECT_FALSE(obs::json_parse("[1,2", v, &err));
  EXPECT_FALSE(obs::json_parse("\"unterminated", v, &err));
  EXPECT_FALSE(obs::json_parse("01x", v, &err));
  // Depth bomb: must fail cleanly, not overflow the stack.
  EXPECT_FALSE(obs::json_parse(std::string(5000, '['), v, &err));
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  // Everything the repo's writer emits must be readable by the parser.
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("name", "spän \"x\"\n");
  w.kv("neg", -12.75);
  w.key("arr");
  w.begin_array();
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::json_parse(out, v, &err)) << out << " -- " << err;
  EXPECT_EQ(v.find("name")->string_or(""), "spän \"x\"\n");
  EXPECT_EQ(v.find("neg")->number_or(0), -12.75);
  EXPECT_EQ(v.find("arr")->items.size(), 2u);
}

// ---- end-to-end through the harness ----------------------------------

harness::ExperimentConfig small_config() {
  auto cfg = harness::paper_config(harness::ServerMode::kParallel, 2, 16,
                                   core::LockPolicy::kConservative);
  cfg.warmup = vt::millis(500);
  cfg.measure = vt::seconds(1);
  return cfg;
}

TEST(ObsIntegrationTest, ExperimentEmitsSpansAndMetrics) {
  auto cfg = small_config();
  obs::Tracer tracer;  // unbound: the server binds it on attach
  obs::MetricsRegistry metrics;
  cfg.tracer = &tracer;
  cfg.metrics = &metrics;
  cfg.metrics_period = vt::millis(250);

  const auto r = harness::run_experiment(cfg);
  ASSERT_GT(r.frames, 0u);

#ifndef QSERV_OBS_NO_TRACING
  EXPECT_GT(tracer.total_recorded(), 0u);
  const std::string json = tracer.export_chrome_trace();
  EXPECT_TRUE(JsonChecker(json).valid());
  for (const char* phase : {"world", "exec", "reply", "frame"})
    EXPECT_NE(json.find("\"" + std::string(phase) + "\""),
              std::string::npos)
        << "missing phase span: " << phase;
#endif

  // Live instruments plus the end-of-run harvest.
  const auto samples = metrics.snapshot();
  auto find = [&](const std::string& name) -> const obs::MetricSample* {
    for (const auto& s : samples)
      if (s.name == name) return &s;
    return nullptr;
  };
  const auto* frames = find("server.frames");
  ASSERT_NE(frames, nullptr);
  EXPECT_EQ(frames->value, static_cast<double>(r.frames));
  ASSERT_NE(find("server.frame_duration_ms"), nullptr);
  EXPECT_GT(find("server.frame_duration_ms")->count, 0u);
  ASSERT_NE(find("net.packets_sent"), nullptr);
  EXPECT_GT(find("net.packets_sent")->value, 0.0);
  ASSERT_NE(find("netchan.packets_sent"), nullptr);
  EXPECT_GT(find("netchan.packets_sent")->value, 0.0);
  ASSERT_NE(find("lock.leaf_wait_us"), nullptr);

  // Periodic snapshots were captured on the virtual-time period.
  EXPECT_GE(r.metrics_series.size(), 4u);
  EXPECT_GT(r.metrics_series.back().t_seconds,
            r.metrics_series.front().t_seconds);
}

TEST(ObsIntegrationTest, TracingDoesNotPerturbVirtualTime) {
  auto base = small_config();
  const auto r0 = harness::run_experiment(base);

  auto traced = small_config();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  traced.tracer = &tracer;
  traced.metrics = &metrics;
  const auto r1 = harness::run_experiment(traced);

  EXPECT_EQ(r0.frames, r1.frames);
  EXPECT_EQ(r0.replies, r1.replies);
  EXPECT_EQ(r0.sim_events, r1.sim_events);
  EXPECT_EQ(r0.response_rate, r1.response_rate);
}

TEST(ObsIntegrationTest, FrameTraceRespectsCapAndCountsDrops) {
  auto cfg = small_config();
  cfg.frame_trace = true;
  cfg.server.frame_trace_limit = 4;
  const auto r = harness::run_experiment(cfg);

  ASSERT_FALSE(r.frame_traces.empty());
  for (const auto& trace : r.frame_traces)
    EXPECT_LE(trace.size(), 4u);
  EXPECT_GT(r.frame_trace_dropped, 0u);
}

TEST(ObsIntegrationTest, BenchJsonExportIsValid) {
  auto cfg = small_config();
  const auto r = harness::run_experiment(cfg);

  harness::BenchJsonWriter json("obs_test");
  json.add("g1", "2t/16p", cfg, r);
  json.add_raw("g2", "{\"label\":\"custom\"}");
  const std::string doc = json.to_json();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("qserv-bench-v1"), std::string::npos);
  EXPECT_NE(doc.find("\"mode\":\"parallel\""), std::string::npos);
  EXPECT_NE(doc.find("\"frame_trace_dropped\""), std::string::npos);
}

}  // namespace
}  // namespace qserv
