// Unit tests for the session layer (core/client_registry.hpp): slot reuse
// must not leak the previous occupant's delta baselines, evicted-port
// memory must answer exactly one kEvicted per port, migration must hand
// ownership (and the live channel) to the new thread, and the per-run
// counters must reset at the warmup boundary without losing the lifetime
// ones. Plus a Server-level regression test that reset_stats() actually
// reaches those counters — pre-refactor, reassignments survived the
// warmup boundary and leaked warmup work into the measurement window.
#include <gtest/gtest.h>

#include "src/core/client_registry.hpp"
#include "src/core/sequential_server.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::core {
namespace {

struct Fixture {
  Fixture() {
    cfg.max_clients = 4;
    cfg.recovery.enabled = true;  // evicted-port memory is gated on this
  }

  ClientRegistry& registry() {
    if (!reg) reg = std::make_unique<ClientRegistry>(platform, cfg);
    return *reg;
  }

  vt::SimPlatform platform;
  ServerConfig cfg;
  std::unique_ptr<ClientRegistry> reg;
};

TEST(ClientRegistry, SlotReuseClearsStaleDeltaState) {
  Fixture f;
  ClientRegistry& reg = f.registry();
  vt::LockGuard g(reg.mutex());

  const int slot = reg.find_free_locked();
  ASSERT_EQ(slot, 0);
  reg.init_pending_slot_locked(slot, 7001, 0, "first");
  ClientSlot& c = reg.slot(slot);
  // Simulate a session that accumulated delta baselines and sequencing.
  c.pending_spawn = false;
  c.last_seq = 941;
  c.client_baseline_frame = 1204;
  c.history.push_back({1204, {}});
  c.moves_since_scan = 9;

  reg.unbind_port_locked(c.remote_port);
  reg.release_slot_locked(c);
  EXPECT_FALSE(c.in_use);
  EXPECT_TRUE(c.history.empty());

  // The freed slot is found again and must come up clean: the new client
  // has reconstructed nothing, so any inherited baseline would make the
  // server send deltas against a snapshot the peer never saw.
  ASSERT_EQ(reg.find_free_locked(), slot);
  reg.init_pending_slot_locked(slot, 7002, 1, "second");
  EXPECT_TRUE(c.in_use);
  EXPECT_TRUE(c.pending_spawn);
  EXPECT_EQ(c.remote_port, 7002);
  EXPECT_EQ(c.name, "second");
  EXPECT_EQ(c.connect_tid, 1);
  EXPECT_EQ(c.last_seq, 0u);
  EXPECT_EQ(c.client_baseline_frame, 0u);
  EXPECT_TRUE(c.history.empty());
  EXPECT_EQ(c.moves_since_scan, 0u);
  EXPECT_EQ(reg.index_of_port_locked(7002), slot);
  EXPECT_EQ(reg.index_of_port_locked(7001), -1);
}

TEST(ClientRegistry, EvictedPortAnswersExactlyOnce) {
  Fixture f;
  ClientRegistry& reg = f.registry();
  {
    vt::LockGuard g(reg.mutex());
    reg.remember_evicted_locked(7001);
    reg.remember_evicted_locked(7001);  // idempotent while remembered
    ASSERT_EQ(reg.remembered_ports_locked().size(), 1u);
  }
  // One kEvicted per port: a straggler streaming moves must not turn the
  // memory into a reject storm.
  EXPECT_TRUE(reg.consume_remembered_eviction(7001));
  EXPECT_FALSE(reg.consume_remembered_eviction(7001));
  EXPECT_FALSE(reg.consume_remembered_eviction(7999));
}

TEST(ClientRegistry, EvictedPortMemoryInertWithoutRecovery) {
  Fixture f;
  f.cfg.recovery.enabled = false;
  ClientRegistry& reg = f.registry();
  {
    vt::LockGuard g(reg.mutex());
    reg.remember_evicted_locked(7001);
    EXPECT_TRUE(reg.remembered_ports_locked().empty());
  }
  EXPECT_FALSE(reg.consume_remembered_eviction(7001));
}

TEST(ClientRegistry, MigrationHandsOwnershipAndRebindsChannel) {
  Fixture f;
  net::VirtualNetwork net(f.platform, {});
  auto sock0 = net.open(5000);
  auto sock1 = net.open(5001);
  ClientRegistry& reg = f.registry();
  vt::LockGuard g(reg.mutex());

  reg.init_pending_slot_locked(0, 7001, 0, "mover");
  ClientSlot& c = reg.slot(0);
  c.pending_spawn = false;
  c.chan = std::make_unique<net::NetChannel>(*sock0, c.remote_port);

  reg.migrate_slot_locked(c, 1, *sock1);
  EXPECT_EQ(c.owner_thread, 1);
  // The next snapshot must re-teach the port even if the client has no
  // request pending on the new owner.
  EXPECT_TRUE(c.notify_port);
  // Same channel object: sequencing state survives the migration so the
  // peer sees one continuous stream.
  ASSERT_NE(c.chan, nullptr);
}

TEST(ClientRegistry, ResumeResetsSequencesAndBaselines) {
  Fixture f;
  net::VirtualNetwork net(f.platform, {});
  auto sock0 = net.open(5000);
  ClientRegistry& reg = f.registry();
  vt::LockGuard g(reg.mutex());

  reg.init_pending_slot_locked(0, 7001, 0, "resumer");
  ClientSlot& c = reg.slot(0);
  c.pending_spawn = false;
  c.awaiting_resume = true;
  c.last_seq = 500;
  c.client_baseline_frame = 77;
  c.history.push_back({77, {}});

  reg.resume_slot_locked(c, *sock0);
  EXPECT_FALSE(c.awaiting_resume);
  EXPECT_TRUE(c.notify_port);
  // The reconnected peer restarts its sequences and has reconstructed no
  // snapshot; stale state would reject all its fresh moves.
  EXPECT_EQ(c.last_seq, 0u);
  EXPECT_EQ(c.client_baseline_frame, 0u);
  EXPECT_TRUE(c.history.empty());
  ASSERT_NE(c.chan, nullptr);
  ASSERT_NE(c.buffer, nullptr);
}

TEST(ClientRegistry, ResetRunCountersKeepsLifetimeOnes) {
  Fixture f;
  ClientRegistry& reg = f.registry();
  reg.counters.evictions = 3;
  reg.counters.rejected_connects = 2;
  reg.counters.rejected_busy = 1;
  reg.counters.reassignments = 14;
  reg.counters.stall_reassignments = 5;
  reg.counters.governor_evictions = 1;
  reg.counters.resumed_clients = 4;

  reg.reset_run_counters();
  EXPECT_EQ(reg.counters.evictions, 0u);
  EXPECT_EQ(reg.counters.rejected_connects, 0u);
  EXPECT_EQ(reg.counters.rejected_busy, 0u);
  EXPECT_EQ(reg.counters.reassignments, 0u);
  EXPECT_EQ(reg.counters.stall_reassignments, 0u);
  EXPECT_EQ(reg.counters.governor_evictions, 0u);
  // restore/resume happens before the measurement window and is
  // inspected after it — the warmup boundary must not erase it.
  EXPECT_EQ(reg.counters.resumed_clients, 4u);
}

// Regression: reset_stats() (the warmup boundary) must zero the per-run
// session counters. Before the pipeline refactor, reassignments_ /
// stall_reassignments_ / evictions_ survived reset_stats, so a
// measurement window reported warmup-era migrations.
TEST(ServerResetStats, ZeroesPerRunSessionCounters) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_large_deathmatch(7);
  SequentialServer server(p, net, map, ServerConfig{});

  ClientRegistry& reg = server.registry();
  reg.counters.reassignments = 11;
  reg.counters.stall_reassignments = 7;
  reg.counters.evictions = 3;
  reg.counters.rejected_connects = 2;
  reg.counters.rejected_busy = 2;
  reg.counters.governor_evictions = 1;
  reg.counters.resumed_clients = 6;
  EXPECT_EQ(server.reassignments(), 11u);

  server.reset_stats();
  EXPECT_EQ(server.reassignments(), 0u);
  EXPECT_EQ(server.stall_reassignments(), 0u);
  EXPECT_EQ(server.evictions(), 0u);
  EXPECT_EQ(server.rejected_connects(), 0u);
  EXPECT_EQ(server.rejected_busy(), 0u);
  EXPECT_EQ(server.governor_evictions(), 0u);
  EXPECT_EQ(server.resumed_clients(), 6u);
}

}  // namespace
}  // namespace qserv::core
