// Harness tests: canonical configuration factory, sweep helpers, report
// formatting, and the experiment runner's accounting identities.
#include <gtest/gtest.h>

#include "src/harness/experiment.hpp"
#include "src/harness/report.hpp"
#include "src/harness/sweep.hpp"

namespace qserv::harness {
namespace {

TEST(PaperConfig, MatchesTable1Machine) {
  const auto cfg = paper_config(ServerMode::kParallel, 8, 128,
                                core::LockPolicy::kOptimized);
  EXPECT_EQ(cfg.machine.cores, 4);
  EXPECT_EQ(cfg.machine.ht_per_core, 2);
  EXPECT_DOUBLE_EQ(cfg.machine.ht_throughput, 1.25);
  EXPECT_EQ(cfg.server.threads, 8);
  EXPECT_EQ(cfg.players, 128);
  EXPECT_NE(cfg.map, nullptr);
}

TEST(DefaultMap, IsCachedPerSeed) {
  const auto a = default_map(7);
  const auto b = default_map(7);
  const auto c = default_map(8);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
}

TEST(PaperGrid, BuildsThreadByPlayerMatrix) {
  const auto grid =
      paper_grid({2, 4}, {64, 96, 128}, core::LockPolicy::kConservative);
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].label, "2t/64p");
  EXPECT_EQ(grid[5].label, "4t/128p");
  EXPECT_EQ(grid[3].config.server.threads, 4);
  EXPECT_EQ(grid[3].config.players, 64);
  // Thread count 0 encodes the sequential server.
  const auto seq = paper_grid({0}, {64}, core::LockPolicy::kConservative);
  EXPECT_EQ(seq[0].config.mode, ServerMode::kSequential);
  EXPECT_EQ(seq[0].config.server.lock_policy, core::LockPolicy::kNone);
}

TEST(SaturationHelper, FindsLastImprovingPoint) {
  std::vector<SweepPoint> pts(4);
  const std::vector<int> players{64, 96, 128, 160};
  pts[0].result.response_rate = 1000;
  pts[1].result.response_rate = 1500;
  pts[2].result.response_rate = 2000;
  pts[3].result.response_rate = 1900;  // declined
  EXPECT_EQ(saturation_players(pts, players), 128);
  // Monotonic growth all the way: saturation = last point.
  pts[3].result.response_rate = 2600;
  EXPECT_EQ(saturation_players(pts, players), 160);
  // Flat from the start: saturation = first point.
  for (auto& p : pts) p.result.response_rate = 1000;
  EXPECT_EQ(saturation_players(pts, players), 64);
}

TEST(Report, BreakdownRowsAreWellFormed) {
  ExperimentResult r;
  r.breakdown.exec = vt::millis(40);
  r.breakdown.reply = vt::millis(50);
  r.breakdown.idle = vt::millis(10);
  r.pct = core::to_percent(r.breakdown);
  const auto header = breakdown_header("cfg");
  const auto row = breakdown_row("x", r);
  EXPECT_EQ(header.size(), row.size());
  EXPECT_EQ(row[0], "x");
  EXPECT_EQ(row[1], "40.0%");  // exec share
}

TEST(Experiment, AccountingIdentitiesHold) {
  auto cfg = paper_config(ServerMode::kParallel, 2, 24,
                          core::LockPolicy::kConservative);
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(3);
  const auto r = run_experiment(cfg);
  // Breakdown totals the threads' wall time over the measured window
  // (within the slack of frames straddling the boundary).
  const double expected = 2.0 * 3.0;
  EXPECT_NEAR(r.breakdown.total().seconds(), expected, 0.25);
  // Percentages sum to 1.
  const auto& p = r.pct;
  EXPECT_NEAR(p.exec + p.lock() + p.receive + p.reply + p.world +
                  p.intra_wait + p.inter_wait() + p.idle,
              1.0, 1e-9);
  // Client replies match server replies sent (no loss configured),
  // modulo in-flight packets at the stop boundary.
  EXPECT_NEAR(static_cast<double>(r.replies),
              static_cast<double>(r.requests), r.requests * 0.25);
}

TEST(Experiment, MeasureWindowExcludesWarmup) {
  auto cfg = paper_config(ServerMode::kSequential, 1, 16,
                          core::LockPolicy::kNone);
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(2);
  const auto r = run_experiment(cfg);
  // 16 clients x ~30 replies/s x 2 s measured.
  EXPECT_NEAR(static_cast<double>(r.replies), 16 * 30.3 * 2, 120.0);
}

}  // namespace
}  // namespace qserv::harness
