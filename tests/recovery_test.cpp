// Crash-recovery suite: world digests, checkpoint encode/decode/restore
// round-trips, loader hardening against truncated and corrupt images,
// digest-verified deterministic replay on both platforms, black-box dumps
// on invariant violations, and the warm-restart choreography — kill a
// live server mid-soak, restore its checkpoint into a fresh instance, and
// watch every client resume.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/core/sequential_server.hpp"
#include "src/harness/experiment.hpp"
#include "src/recovery/blackbox.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/recovery/digest.hpp"
#include "src/recovery/journal.hpp"
#include "src/recovery/replay.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/real_platform.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv {
namespace {

constexpr vt::TimePoint t0 = vt::TimePoint::zero();

// --- world digests -------------------------------------------------------

TEST(Digest, IdenticalWorldsHashIdentically) {
  const auto map = spatial::make_arena(1024);
  sim::World a(map, {});
  sim::World b(map, {});
  a.spawn_player("p1");
  b.spawn_player("p1");
  EXPECT_EQ(recovery::world_digest(a), recovery::world_digest(b));
}

TEST(Digest, SensitiveToEntityStateAndAttributesTheEntity) {
  const auto map = spatial::make_arena(1024);
  sim::World a(map, {});
  sim::World b(map, {});
  auto& pa = a.spawn_player("p1");
  b.spawn_player("p1");

  std::vector<recovery::EntityDigest> da, db;
  ASSERT_EQ(recovery::world_digest(a, &da), recovery::world_digest(b, &db));
  ASSERT_EQ(da.size(), db.size());
  ASSERT_EQ(da.size(), a.active_entities());

  pa.origin.x += 0.25f;
  da.clear();
  EXPECT_NE(recovery::world_digest(a, &da), recovery::world_digest(b));
  // Exactly one per-entity hash moved: the mutated player.
  int changed = 0;
  uint32_t changed_id = 0;
  for (size_t i = 0; i < da.size(); ++i) {
    if (da[i].hash != db[i].hash) {
      ++changed;
      changed_id = da[i].id;
    }
  }
  EXPECT_EQ(changed, 1);
  EXPECT_EQ(changed_id, pa.id);
}

TEST(Digest, SensitiveToRngStateAndFreeList) {
  const auto map = spatial::make_arena(1024);
  sim::World a(map, {});
  sim::World b(map, {});
  const uint64_t base = recovery::world_digest(a);
  ASSERT_EQ(base, recovery::world_digest(b));

  // Allocator drift: spawn + remove leaves the entity set identical but
  // the free list (and thus future id assignment) different.
  const uint32_t id = a.spawn_player("ghost").id;
  a.remove_entity(id);
  EXPECT_NE(recovery::world_digest(a), base);

  // RNG drift alone must also show up the frame it happens.
  b.rng().next_u64();
  EXPECT_NE(recovery::world_digest(b), base);
}

// --- fixtures: short recorded runs ---------------------------------------

struct RecordedRun {
  std::vector<uint8_t> checkpoint;  // latest image at shutdown
  std::vector<uint8_t> journal;     // full ring at shutdown
};

// One short simulated soak with recovery enabled; returns the encoded
// artifacts the decode-hardening tests chew on.
const RecordedRun& sample_run() {
  static const RecordedRun run = [] {
    vt::SimPlatform p;
    net::VirtualNetwork net(p, {});
    const auto map = spatial::make_arena(1024);
    core::ServerConfig scfg;
    scfg.recovery.enabled = true;
    scfg.recovery.checkpoint_interval = 8;
    core::SequentialServer server(p, net, map, scfg);
    bots::ClientDriver::Config dcfg;
    dcfg.players = 4;
    bots::ClientDriver driver(p, net, map, server, dcfg);
    server.start();
    driver.start();
    p.call_after(vt::seconds(3), [&] {
      server.request_stop();
      driver.request_stop();
    });
    p.run();
    RecordedRun out;
    out.checkpoint = server.checkpoints()->latest();
    out.journal = server.recorder()->encode();
    return out;
  }();
  return run;
}

// --- checkpoint round-trip ------------------------------------------------

TEST(Checkpoint, DecodeEncodeRoundTripsByteForByte) {
  const auto& bytes = sample_run().checkpoint;
  ASSERT_FALSE(bytes.empty());

  recovery::CheckpointData c;
  ASSERT_EQ(recovery::decode_checkpoint(bytes, c), recovery::LoadError::kNone);
  EXPECT_GT(c.frame, 0u);
  EXPECT_EQ(c.clients.size(), 4u);
  EXPECT_FALSE(c.map_text.empty());

  // Canonical encoding: decode(encode(decode(x))) == decode(x), bytewise.
  EXPECT_EQ(recovery::encode_checkpoint(c), bytes);
}

TEST(Checkpoint, RestoredWorldReproducesTheCapturedDigest) {
  const auto& bytes = sample_run().checkpoint;
  recovery::CheckpointData c;
  ASSERT_EQ(recovery::decode_checkpoint(bytes, c), recovery::LoadError::kNone);

  const auto map = spatial::make_arena(1024);  // same map as sample_run()
  sim::World w(map, {c.areanode_depth, c.seed});
  recovery::restore_world(c, w);
  EXPECT_EQ(recovery::world_digest(w), c.digest);
  EXPECT_EQ(w.entity_storage_size(), c.entity_storage);
  EXPECT_EQ(w.free_ids(), c.free_ids);
}

// --- loader hardening -----------------------------------------------------

TEST(LoaderHardening, CheckpointTruncationAtEveryByteFailsCleanly) {
  const auto& bytes = sample_run().checkpoint;
  ASSERT_FALSE(bytes.empty());
  recovery::CheckpointData c;
  for (size_t n = 0; n < bytes.size(); ++n) {
    const auto err = recovery::decode_checkpoint(bytes.data(), n, c);
    ASSERT_NE(err, recovery::LoadError::kNone) << "prefix of " << n
                                               << " bytes decoded as valid";
  }
}

TEST(LoaderHardening, JournalTruncationAtEveryByteFailsCleanly) {
  const auto& bytes = sample_run().journal;
  ASSERT_FALSE(bytes.empty());
  recovery::JournalFile jf;
  for (size_t n = 0; n < bytes.size(); ++n) {
    const auto err = recovery::decode_journal(bytes.data(), n, jf);
    ASSERT_NE(err, recovery::LoadError::kNone) << "prefix of " << n
                                               << " bytes decoded as valid";
  }
}

// Every single-bit flip past the 8-byte magic/version header — body and
// trailing checksum words alike — must be rejected by the whole-file
// content checksum, with the typed kChecksum error (never a crash, never
// a silently-wrong decode). Flips inside the header are typed separately
// below.
TEST(LoaderHardening, EveryFlippedByteIsRejectedByTheContentChecksum) {
  const auto& bytes = sample_run().checkpoint;
  ASSERT_GT(bytes.size(), 16u);
  std::vector<uint8_t> buf;
  recovery::CheckpointData c;
  for (size_t at = 8; at < bytes.size(); ++at) {
    buf = bytes;
    buf[at] ^= static_cast<uint8_t>(1u << (at % 8));
    EXPECT_EQ(recovery::decode_checkpoint(buf, c),
              recovery::LoadError::kChecksum)
        << "flip at byte " << at;
  }
}

TEST(LoaderHardening, MagicAndVersionAreChecked) {
  auto ckpt = sample_run().checkpoint;
  recovery::CheckpointData c;
  ckpt[0] ^= 0xff;  // magic is the first u32
  EXPECT_EQ(recovery::decode_checkpoint(ckpt, c),
            recovery::LoadError::kBadMagic);
  ckpt[0] ^= 0xff;
  ckpt[4] ^= 0xff;  // version is the second u32
  EXPECT_EQ(recovery::decode_checkpoint(ckpt, c),
            recovery::LoadError::kBadVersion);

  auto jrnl = sample_run().journal;
  recovery::JournalFile jf;
  jrnl[0] ^= 0xff;
  EXPECT_EQ(recovery::decode_journal(jrnl, jf),
            recovery::LoadError::kBadMagic);
  jrnl[0] ^= 0xff;
  jrnl[4] ^= 0xff;
  EXPECT_EQ(recovery::decode_journal(jrnl, jf),
            recovery::LoadError::kBadVersion);
}

// Seeded random corruption: flipped bytes and length-lying counts must
// never crash the loaders — any return value is fine, returning is not.
TEST(LoaderHardening, RandomCorruptionNeverCrashesTheLoaders) {
  Rng rng(1234);
  const auto& ckpt = sample_run().checkpoint;
  const auto& jrnl = sample_run().journal;
  std::vector<uint8_t> buf;
  for (int iter = 0; iter < 1500; ++iter) {
    const bool journal = (iter & 1) != 0;
    buf = journal ? jrnl : ckpt;
    // Corrupt 1..4 random bytes; every few iterations plant a 0xffffffff
    // "count" instead, the classic length-lying attack on resize().
    if (iter % 5 == 0) {
      const size_t at = rng.next_u64() % (buf.size() - 4);
      std::memset(buf.data() + at, 0xff, 4);
    } else {
      const int flips = 1 + static_cast<int>(rng.next_u64() % 4);
      for (int i = 0; i < flips; ++i)
        buf[rng.next_u64() % buf.size()] ^= static_cast<uint8_t>(
            1u << (rng.next_u64() % 8));
    }
    if (journal) {
      recovery::JournalFile jf;
      (void)recovery::decode_journal(buf, jf);
    } else {
      recovery::CheckpointData c;
      (void)recovery::decode_checkpoint(buf, c);
    }
  }
}

// --- deterministic replay -------------------------------------------------

// Long recorded soak; the replay anchor is an *early* checkpoint (grabbed
// mid-run before the double buffer recycles it) so the verified stretch
// spans 500+ frames, per the acceptance criteria.
void replay_long_run(bool parallel) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = parallel ? 4 : 1;
  scfg.recovery.enabled = true;
  scfg.recovery.checkpoint_interval = 64;
  scfg.recovery.journal_frames = 8192;
  std::unique_ptr<core::Server> server;
  if (parallel) {
    server = std::make_unique<core::ParallelServer>(p, net, map, scfg);
  } else {
    server = std::make_unique<core::SequentialServer>(p, net, map, scfg);
  }
  bots::ClientDriver::Config dcfg;
  dcfg.players = 12;
  bots::ClientDriver driver(p, net, map, *server, dcfg);
  server->start();
  driver.start();

  recovery::CheckpointData anchor;
  bool grabbed = false;
  // Frames form at roughly the aggregate client wake rate (~360/s with
  // 12 clients at 30 fps), so anchor at 3s and stop at 8s keeps the
  // anchor inside the 8192-frame ring while still checking 1500+ frames.
  p.call_after(vt::seconds(3), [&] {
    ASSERT_TRUE(server->checkpoints()->has());
    ASSERT_EQ(recovery::decode_checkpoint(server->checkpoints()->latest(),
                                          anchor),
              recovery::LoadError::kNone);
    grabbed = true;
  });
  p.call_after(vt::seconds(8), [&] {
    server->request_stop();
    driver.request_stop();
  });
  p.run();
  ASSERT_TRUE(grabbed);

  recovery::JournalFile jf;
  ASSERT_EQ(recovery::decode_journal(server->recorder()->encode(), jf),
            recovery::LoadError::kNone);
  const auto rv = recovery::replay_verify(anchor, jf);
  EXPECT_TRUE(rv.ok) << rv.summary();
  EXPECT_FALSE(rv.diverged) << rv.summary();
  EXPECT_GE(rv.frames_checked, 500u);
  EXPECT_GT(rv.moves_applied, 0u);
}

TEST(Replay, SequentialSoakReplaysBitIdenticalOver500Frames) {
  replay_long_run(/*parallel=*/false);
}

TEST(Replay, ParallelSoakReplaysBitIdenticalOver500Frames) {
  replay_long_run(/*parallel=*/true);
}

// The harness-level hook: run_experiment(verify_replay) replays the tail
// of its own run and reports the verdict in the result (and from there in
// the qserv-bench-v1 JSON).
TEST(Replay, ExperimentHarnessVerifiesItsOwnRun) {
  auto cfg = harness::paper_config(harness::ServerMode::kParallel, 2, 16,
                                   core::LockPolicy::kConservative);
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(4);
  cfg.server.recovery.enabled = true;
  cfg.server.recovery.checkpoint_interval = 32;
  cfg.verify_replay = true;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.replay_ran);
  EXPECT_TRUE(r.replay_ok) << r.replay_summary;
  EXPECT_GT(r.checkpoints_taken, 0u);
  EXPECT_GT(r.checkpoint_bytes, 0u);
  EXPECT_GT(r.checkpoint_pause_ns, 0);
  EXPECT_GT(r.journal_frames, 0u);
  EXPECT_GT(r.journal_records, 0u);
  EXPECT_EQ(r.blackbox_dumps, 0u);
}

// --- determinism audit ----------------------------------------------------

// Two runs of the identical simulated configuration must seal identical
// (frame, digest) sequences — the named seed streams (util/rng.hpp) leave
// nothing drawing from shared or ad-hoc sequences.
std::vector<std::pair<uint64_t, uint64_t>> digest_sequence(int threads,
                                                           uint64_t seed) {
  vt::SimPlatform p;
  net::VirtualNetwork::Config ncfg;
  ncfg.seed = derive_seed(seed, streams::kNetwork);
  net::VirtualNetwork net(p, ncfg);
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = threads;
  scfg.seed = seed;
  scfg.recovery.enabled = true;
  scfg.recovery.journal_frames = 8192;
  std::unique_ptr<core::Server> server;
  if (threads > 1) {
    server = std::make_unique<core::ParallelServer>(p, net, map, scfg);
  } else {
    server = std::make_unique<core::SequentialServer>(p, net, map, scfg);
  }
  bots::ClientDriver::Config dcfg;
  dcfg.players = 10;
  dcfg.seed = derive_seed(seed, streams::kClientDriver);
  bots::ClientDriver driver(p, net, map, *server, dcfg);
  server->start();
  driver.start();
  p.call_after(vt::seconds(10), [&] {
    server->request_stop();
    driver.request_stop();
  });
  p.run();

  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (const auto& f : server->recorder()->frames())
    out.emplace_back(f.frame, f.digest);
  return out;
}

TEST(Determinism, TwoIdenticalSequentialRunsSealIdenticalDigests) {
  const auto a = digest_sequence(1, 42);
  const auto b = digest_sequence(1, 42);
  ASSERT_GT(a.size(), 50u);
  EXPECT_EQ(a, b);
}

TEST(Determinism, TwoIdenticalParallelRunsSealIdenticalDigests) {
  const auto a = digest_sequence(4, 42);
  const auto b = digest_sequence(4, 42);
  ASSERT_GT(a.size(), 50u);
  EXPECT_EQ(a, b);
}

// Real platform: live runs are not bit-reproducible across executions
// (frame formation follows real scheduling), so the acceptance is
// replay-vs-live identity — re-executing the journal from the latest
// checkpoint must reproduce the live digests exactly. Runs under TSan in
// CI.
TEST(Determinism, RealPlatformReplayMatchesLiveDigests) {
  vt::RealPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 4;
  scfg.recovery.enabled = true;
  scfg.recovery.checkpoint_interval = 16;
  core::ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 8;
  dcfg.frame_interval = vt::millis(10);  // faster clients, shorter test
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();
  p.call_after(vt::millis(1500), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.join_all();

  ASSERT_TRUE(server.checkpoints()->has());
  const auto rv =
      recovery::verify_recorded(*server.checkpoints(), *server.recorder());
  EXPECT_TRUE(rv.ok) << rv.summary();
  EXPECT_GT(rv.frames_checked, 0u);
}

// --- black box ------------------------------------------------------------

// Deliberate state corruption: delete a connected client's player entity
// out from under the registry. The next invariant audit must fail and
// write a black-box dump naming the trigger.
TEST(BlackBox, InvariantViolationTriggersADump) {
  const std::string dump_dir = "recovery_test_blackbox";
  std::filesystem::remove_all(dump_dir);

  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  core::ServerConfig scfg;
  scfg.check_invariants = true;
  scfg.recovery.enabled = true;
  scfg.recovery.checkpoint_interval = 8;
  scfg.recovery.dump_dir = dump_dir;
  core::SequentialServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 2;
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();

  p.call_after(vt::seconds(2), [&] {
    // Corrupt: remove the first connected player's entity directly.
    server.world().for_each_entity([&](sim::Entity& e) {
      static bool done = false;
      if (!done && e.type == sim::EntityType::kPlayer) {
        done = true;
        server.world().remove_entity(e.id);
      }
    });
  });
  p.call_after(vt::millis(2200), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();

  EXPECT_GT(server.invariant_violations(), 0u);
  ASSERT_NE(server.blackbox(), nullptr);
  EXPECT_GE(server.blackbox()->dumps(), 1u);
  const std::string& path = server.blackbox()->last_path();
  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(std::filesystem::exists(path + "/meta.txt"));
  EXPECT_TRUE(std::filesystem::exists(path + "/checkpoint.qckpt"));
  EXPECT_TRUE(std::filesystem::exists(path + "/journal.qjrnl"));
  std::filesystem::remove_all(dump_dir);
}

// --- warm restart under chaos ---------------------------------------------

// A minimal scripted client for the restart choreography: connects, sends
// moves at 30 fps, notices server silence, and re-connects until answered
// — the behavior of a real peer that never learns its server restarted.
struct RestartClient {
  std::unique_ptr<net::Socket> sock;
  std::unique_ptr<net::NetChannel> chan;
  std::string name;
  uint16_t base_port = 0;
  bool connected = false;
  uint32_t player_id = 0;
  uint32_t seq = 1;
  int64_t last_heard_ns = 0;
  int64_t last_connect_ns = -1'000'000'000;
  uint64_t snapshots = 0;
  uint64_t acks = 0;

  void step(vt::Platform& p) {
    const int64_t now = p.now().ns;
    net::Datagram d;
    while (sock->try_recv(d)) {
      net::NetChannel::Incoming info;
      net::ByteReader body(nullptr, 0);
      if (!chan->accept(d, info, body) || info.duplicate_or_old) continue;
      net::ServerMsgType t;
      if (!net::decode_server_type(body, t)) continue;
      last_heard_ns = now;
      if (t == net::ServerMsgType::kConnectAck) {
        net::ConnectAck ack;
        if (net::decode(body, ack)) {
          connected = true;
          player_id = ack.player_id;
          chan->set_remote(ack.assigned_port);
          ++acks;
        }
      } else if (t == net::ServerMsgType::kSnapshot ||
                 t == net::ServerMsgType::kDeltaSnapshot) {
        ++snapshots;
      } else if (t == net::ServerMsgType::kReject) {
        connected = false;
      }
    }
    if (connected && now - last_heard_ns > vt::seconds(1).ns) {
      // Server silent: assume the session is gone, start reconnecting
      // from a fresh channel (sequences restart, same local port).
      connected = false;
      chan = std::make_unique<net::NetChannel>(*sock, base_port);
    }
    if (connected) {
      net::MoveCmd cmd;
      cmd.sequence = seq++;
      cmd.client_time_ns = now;
      cmd.forward = 100.0f;
      chan->send(net::encode(cmd));
    } else if (now - last_connect_ns > vt::millis(400).ns) {
      last_connect_ns = now;
      chan->send(net::encode(net::ConnectMsg{name}));
    }
  }
};

// The satellite acceptance test: kill a live 2-thread server mid-soak,
// restore its latest checkpoint into a fresh instance on the same ports,
// and require every client to resume — zero lost, no duplicate player
// entities, invariants clean.
TEST(WarmRestart, KilledServerRestartsFromCheckpointWithZeroClientsLost) {
  constexpr int kClients = 6;
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(2048);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.client_timeout = vt::seconds(5);
  scfg.check_invariants = true;
  scfg.recovery.enabled = true;
  scfg.recovery.checkpoint_interval = 8;

  auto server = std::make_unique<core::ParallelServer>(p, net, map, scfg);
  server->start();

  std::vector<RestartClient> clients(kClients);
  bool stop_clients = false;
  for (int i = 0; i < kClients; ++i) {
    auto& c = clients[static_cast<size_t>(i)];
    c.sock = net.open(static_cast<uint16_t>(40000 + i));
    c.chan = std::make_unique<net::NetChannel>(*c.sock, scfg.base_port);
    c.name = "bot-" + std::to_string(i);
    c.base_port = scfg.base_port;
    p.spawn(c.name, vt::Domain::kClientFarm, [&p, &c, &stop_clients] {
      while (!stop_clients) {
        c.step(p);
        p.sleep_for(vt::millis(33));
      }
    });
  }

  // Phase 1: normal play.
  ASSERT_TRUE(p.run_until(t0 + vt::seconds(10)));
  for (const auto& c : clients) EXPECT_TRUE(c.connected);
  EXPECT_EQ(server->connected_clients(), kClients);

  // Phase 2: crash. Stop the server, give its fibers a moment to exit,
  // grab the last published checkpoint, and tear the instance down (which
  // unbinds its ports — the outage the clients now experience).
  server->request_stop();
  ASSERT_TRUE(p.run_until(t0 + vt::seconds(11)));
  ASSERT_TRUE(server->checkpoints()->has());
  const std::vector<uint8_t> image = server->checkpoints()->latest();
  ASSERT_FALSE(image.empty());
  server.reset();

  // Phase 3: the clients shout into the void for a second, notice the
  // silence, and fall back to connect retries.
  ASSERT_TRUE(p.run_until(t0 + vt::seconds(12)));

  // Phase 4: warm restart on the same ports from the checkpoint.
  server = std::make_unique<core::ParallelServer>(p, net, map, scfg);
  ASSERT_EQ(server->restore_from(image), recovery::LoadError::kNone);
  EXPECT_TRUE(server->restored());
  EXPECT_EQ(server->connected_clients(), kClients);  // slots await resume
  server->start();

  // Phase 5: everyone resumes and plays on.
  ASSERT_TRUE(p.run_until(t0 + vt::seconds(20)));
  stop_clients = true;
  server->request_stop();
  p.run();

  for (const auto& c : clients) {
    EXPECT_TRUE(c.connected) << c.name << " did not resume";
    EXPECT_GE(c.acks, 2u) << c.name;  // original connect + resume
    EXPECT_GT(c.snapshots, 0u) << c.name;
  }
  EXPECT_EQ(server->connected_clients(), kClients);
  EXPECT_EQ(server->resumed_clients(), static_cast<uint64_t>(kClients));
  EXPECT_EQ(server->evictions(), 0u);
  // No duplicate player entities: exactly one per client survived the
  // restart (resume re-adopts, never re-spawns).
  size_t players = 0;
  const core::Server& cs = *server;
  cs.world().for_each_entity([&](const sim::Entity& e) {
    if (e.type == sim::EntityType::kPlayer) ++players;
  });
  EXPECT_EQ(players, static_cast<size_t>(kClients));
  EXPECT_EQ(server->invariant_violations(), 0u);
}

// --- journal-tail restore (the shard supervisor's primary path) -----------

// Runs a recorded parallel soak to completion and leaves the testbed
// alive; the caller restores into fresh servers on the same ports.
struct RecordedSoak {
  vt::SimPlatform p;
  net::VirtualNetwork net{p, {}};
  spatial::GameMap map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  std::vector<uint8_t> image;    // last published checkpoint
  std::vector<uint8_t> journal;  // full journal ring at stop
  uint64_t live_digest = 0;      // world digest when the engine stopped
  uint64_t live_frames = 0;
  int live_clients = 0;

  RecordedSoak() {
    scfg.threads = 4;
    scfg.recovery.enabled = true;
    scfg.recovery.checkpoint_interval = 64;
    auto server = std::make_unique<core::ParallelServer>(p, net, map, scfg);
    bots::ClientDriver::Config dcfg;
    dcfg.players = 12;
    bots::ClientDriver driver(p, net, map, *server, dcfg);
    server->start();
    driver.start();
    p.call_after(vt::seconds(6), [&] {
      server->request_stop();
      driver.request_stop();
    });
    p.run();
    EXPECT_TRUE(server->checkpoints()->has());
    image = server->checkpoints()->latest();
    journal = server->recorder()->encode();
    live_digest = recovery::world_digest(server->world());
    live_frames = server->frames();
    live_clients = server->connected_clients();
    // Free the ports for the restored instance.
    server.reset();
  }
};

TEST(TailRestore, ReplaysTheJournalTailToTheFailureFrame) {
  RecordedSoak soak;
  auto restored = std::make_unique<core::ParallelServer>(soak.p, soak.net,
                                                         soak.map, soak.scfg);
  core::Server::RestoreStats stats{};
  ASSERT_EQ(restored->restore_from(soak.image, soak.journal, &stats),
            recovery::LoadError::kNone);
  // The checkpoint alone is stale: the tail re-executed the frames after
  // it, digest-checked per frame, up to the exact frame the engine died.
  EXPECT_GT(stats.tail_frames, 0u);
  EXPECT_TRUE(stats.digest_verified);
  EXPECT_EQ(stats.checkpoint_frame + stats.tail_frames, stats.resume_frame);
  EXPECT_EQ(stats.resume_frame, soak.live_frames);
  EXPECT_GT(stats.tail_moves, 0u);
  // Bit-identity with the live engine is asserted frame by frame inside
  // the restore (digest_verified above, against the sealed digests).
  // The final world digest is NOT compared directly: rebase_times() has
  // already shifted absolute-time fields onto the restart clock.
  EXPECT_EQ(restored->connected_clients(), soak.live_clients);
}

TEST(TailRestore, TamperedTailRecordIsRejectedAsDiverged) {
  RecordedSoak soak;
  recovery::CheckpointData c;
  ASSERT_EQ(recovery::decode_checkpoint(soak.image, c),
            recovery::LoadError::kNone);
  recovery::JournalFile jf;
  ASSERT_EQ(recovery::decode_journal(soak.journal, jf),
            recovery::LoadError::kNone);
  // Tamper with one executed move inside the tail: the replay now
  // computes a different world, and the per-frame digest check must
  // refuse the restore instead of resuming from silently wrong state.
  bool tampered = false;
  std::deque<recovery::FrameJournal> frames;
  for (auto& fj : jf.frames) {
    if (!tampered && fj.frame > c.frame) {
      for (auto& rec : fj.records) {
        if (rec.kind == recovery::RecordKind::kMoveExec) {
          rec.cmd.forward += 25.0f;
          tampered = true;
          break;
        }
      }
    }
    frames.push_back(std::move(fj));
  }
  ASSERT_TRUE(tampered);
  const auto bad = recovery::encode_journal(jf.seed, jf.threads, frames);

  auto victim = std::make_unique<core::ParallelServer>(soak.p, soak.net,
                                                       soak.map, soak.scfg);
  EXPECT_EQ(victim->restore_from(soak.image, bad, nullptr),
            recovery::LoadError::kReplayDiverged);
  victim.reset();

  // The same checkpoint with the authentic journal still restores.
  auto clean = std::make_unique<core::ParallelServer>(soak.p, soak.net,
                                                      soak.map, soak.scfg);
  EXPECT_EQ(clean->restore_from(soak.image, soak.journal, nullptr),
            recovery::LoadError::kNone);
}

TEST(TailRestore, GapInTheTailIsRejectedAsCorrupt) {
  RecordedSoak soak;
  recovery::CheckpointData c;
  ASSERT_EQ(recovery::decode_checkpoint(soak.image, c),
            recovery::LoadError::kNone);
  recovery::JournalFile jf;
  ASSERT_EQ(recovery::decode_journal(soak.journal, jf),
            recovery::LoadError::kNone);
  std::deque<recovery::FrameJournal> frames;
  bool dropped = false;
  for (auto& fj : jf.frames) {
    // Drop one frame strictly inside the tail (not the first, so the
    // contiguity check, not the anchor check, must catch it).
    if (!dropped && fj.frame > c.frame + 2) {
      dropped = true;
      continue;
    }
    frames.push_back(std::move(fj));
  }
  ASSERT_TRUE(dropped);
  const auto gappy = recovery::encode_journal(jf.seed, jf.threads, frames);
  auto victim = std::make_unique<core::ParallelServer>(soak.p, soak.net,
                                                       soak.map, soak.scfg);
  EXPECT_EQ(victim->restore_from(soak.image, gappy, nullptr),
            recovery::LoadError::kCorrupt);
}

// --- checkpoint publication vs worker stalls ------------------------------

// The double buffer's single release-store publication point means a
// reader (shard supervisor, signal dumper) can never observe a
// half-encoded image — even with chaos thread stalls landing on workers
// throughout the run, including inside checkpoint windows. Sample the
// published checkpoint from hub context (the supervisor's vantage) on a
// fast cadence and require every sample to decode cleanly.
TEST(CheckpointIntegrity, WorkerStallsNeverExposeATornCheckpoint) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  for (int i = 0; i < 12; ++i) {
    net.faults().add_thread_stall(t0 + vt::millis(300 + 400 * i),
                                  vt::millis(150), i % 4);
  }
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 4;
  scfg.recovery.enabled = true;
  scfg.recovery.checkpoint_interval = 8;  // publish often
  core::ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 12;
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();

  std::vector<std::vector<uint8_t>> samples;
  auto sample = std::make_shared<std::function<void()>>();
  *sample = [&, sample] {
    if (server.stop_requested()) return;
    if (server.checkpoints()->has())
      samples.push_back(server.checkpoints()->latest());
    p.call_after(vt::millis(100), *sample);
  };
  p.call_after(vt::millis(100), *sample);
  p.call_after(vt::seconds(6), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();

  EXPECT_GT(server.stalls_injected(), 0u);
  ASSERT_GT(samples.size(), 20u);
  uint64_t last_frame = 0;
  for (const auto& s : samples) {
    recovery::CheckpointData c;
    ASSERT_EQ(recovery::decode_checkpoint(s, c), recovery::LoadError::kNone);
    EXPECT_GE(c.frame, last_frame);  // publication is monotonic
    last_frame = c.frame;
  }
}

}  // namespace
}  // namespace qserv
