#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/global_state.hpp"
#include "src/core/lock_manager.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::core {
namespace {

using vt::Domain;
using vt::millis;
using vt::micros;

struct Fixture {
  Fixture() : tree(world_bounds, 4), lm(platform, tree, sim::CostModel{}) {}

  vt::SimPlatform platform;
  Aabb world_bounds{{-1024, -1024, 0}, {1024, 1024, 256}};
  spatial::AreanodeTree tree;
  LockManager lm;
};

sim::Entity player_at(const Vec3& origin) {
  sim::Entity e;
  e.id = 1;
  e.type = sim::EntityType::kPlayer;
  e.origin = origin;
  e.mins = sim::kPlayerMins;
  e.maxs = sim::kPlayerMaxs;
  e.health = 100;
  return e;
}

net::MoveCmd plain_move() {
  net::MoveCmd c;
  c.msec = 30;
  return c;
}

TEST(LockManagerPlan, NonePolicyLocksNothing) {
  Fixture f;
  std::vector<std::vector<int>> sets;
  const auto p = player_at({100, 100, 28});
  f.lm.plan_request(LockPolicy::kNone, p, plain_move(), sets);
  EXPECT_TRUE(sets.empty());
}

TEST(LockManagerPlan, ShortRangeMoveLocksLocalLeaves) {
  Fixture f;
  std::vector<std::vector<int>> sets;
  const auto p = player_at({500, 500, 28});  // well inside one quadrant
  f.lm.plan_request(LockPolicy::kConservative, p, plain_move(), sets);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_GE(sets[0].size(), 1u);
  EXPECT_LE(sets[0].size(), 4u);  // small region, not the whole map
}

TEST(LockManagerPlan, ConservativeAttackLocksWholeMap) {
  Fixture f;
  std::vector<std::vector<int>> sets;
  auto p = player_at({500, 500, 28});
  auto cmd = plain_move();
  cmd.buttons = net::kButtonAttack;
  f.lm.plan_request(LockPolicy::kConservative, p, cmd, sets);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(static_cast<int>(sets[1].size()), f.tree.leaf_count());
}

TEST(LockManagerPlan, OptimizedAttackLocksDirectionalSlice) {
  Fixture f;
  std::vector<std::vector<int>> sets;
  auto p = player_at({-900, -900, 28});  // corner, aiming +x
  p.yaw_deg = 0.0f;
  auto cmd = plain_move();
  cmd.yaw_deg = 0.0f;
  cmd.buttons = net::kButtonAttack;
  f.lm.plan_request(LockPolicy::kOptimized, p, cmd, sets);
  ASSERT_EQ(sets.size(), 2u);
  // A corner shot along an axis covers one row of leaves, far fewer than
  // the whole map.
  EXPECT_LT(static_cast<int>(sets[1].size()), f.tree.leaf_count());
  EXPECT_GE(sets[1].size(), 2u);
}

TEST(LockManagerPlan, OptimizedThrowLocksExpandedBox) {
  Fixture f;
  std::vector<std::vector<int>> sets;
  auto p = player_at({0, 0, 28});  // dead centre: expansion crosses planes
  auto cmd = plain_move();
  cmd.buttons = net::kButtonThrow;
  f.lm.plan_request(LockPolicy::kOptimized, p, cmd, sets);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_GE(sets[1].size(), 4u);  // crosses the central planes
  EXPECT_LT(static_cast<int>(sets[1].size()), f.tree.leaf_count());
}

TEST(LockManager, AcquireCountsDistinctAndRelocks) {
  Fixture f;
  ThreadStats st;
  f.platform.spawn("t", Domain::kServer, [&] {
    LockManager::Region r;
    // Two overlapping sets: {15,16,17} and {16,17,18}.
    f.lm.acquire({{15, 16, 17}, {16, 17, 18}}, 0, st, r);
    EXPECT_EQ(r.leaves().size(), 4u);
    f.lm.release(r);
  });
  f.platform.run();
  EXPECT_EQ(st.locks.lock_requests, 6u);
  EXPECT_EQ(st.locks.distinct_leaves, 4u);
  EXPECT_EQ(st.locks.relocks, 2u);
  EXPECT_EQ(st.locks.requests_locked, 1u);
}

TEST(LockManager, RegionsExcludeEachOther) {
  Fixture f;
  ThreadStats st0, st1;
  std::vector<int> order;
  f.platform.spawn("a", Domain::kServer, [&] {
    LockManager::Region r;
    f.lm.acquire({{15, 16}}, 0, st0, r);
    order.push_back(0);
    f.platform.compute(millis(5));
    order.push_back(1);
    f.lm.release(r);
  });
  f.platform.spawn("b", Domain::kServer, [&] {
    f.platform.sleep_for(millis(1));
    LockManager::Region r;
    f.lm.acquire({{16, 17}}, 1, st1, r);  // overlaps on leaf 16
    order.push_back(2);
    f.lm.release(r);
  });
  f.platform.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_GT(st1.breakdown.lock_leaf.ns, millis(3).ns);  // waited for a
  EXPECT_EQ(st0.breakdown.lock_leaf.ns, st0.breakdown.lock_leaf.ns);
}

TEST(LockManager, DisjointRegionsRunConcurrently) {
  Fixture f;
  ThreadStats st0, st1;
  vt::TimePoint done0{}, done1{};
  f.platform.spawn("a", Domain::kServer, [&] {
    LockManager::Region r;
    f.lm.acquire({{15, 16}}, 0, st0, r);
    f.platform.compute(millis(5));
    f.lm.release(r);
    done0 = f.platform.now();
  });
  f.platform.spawn("b", Domain::kServer, [&] {
    LockManager::Region r;
    f.lm.acquire({{20, 21}}, 1, st1, r);
    f.platform.compute(millis(5));
    f.lm.release(r);
    done1 = f.platform.now();
  });
  f.platform.run();
  // Both finish around 5 ms (4-core machine, no lock interference).
  EXPECT_LT(done0.ns, millis(7).ns);
  EXPECT_LT(done1.ns, millis(7).ns);
  // Lock time contains only the fixed acquisition overhead, no waiting.
  EXPECT_LT(st1.breakdown.lock_leaf.ns, micros(50).ns);
}

// Deadlock-freedom stress: many fibers locking random overlapping leaf
// sets; canonical ordering must prevent any deadlock (the run completing
// is the assertion — the platform aborts on deadlock).
TEST(LockManager, RandomOverlappingRegionsNeverDeadlock) {
  Fixture f;
  std::vector<ThreadStats> st(8);
  Rng seeds(42);
  for (int t = 0; t < 8; ++t) {
    const uint64_t seed = seeds.next_u64();
    f.platform.spawn("t" + std::to_string(t), Domain::kServer, [&f, &st, t, seed] {
      Rng rng(seed);
      for (int i = 0; i < 200; ++i) {
        // Random subset of the 16 leaves (node indices 15..30).
        std::vector<int> leaves;
        for (int leaf = 15; leaf <= 30; ++leaf) {
          if (rng.chance(0.25f)) leaves.push_back(leaf);
        }
        if (leaves.empty()) leaves.push_back(15 + static_cast<int>(rng.below(16)));
        LockManager::Region r;
        f.lm.acquire({leaves}, t, st[static_cast<size_t>(t)], r);
        f.platform.compute(micros(rng.range(5, 50)));
        f.lm.release(r);
      }
    });
  }
  f.platform.run();  // aborts on deadlock
  uint64_t total = 0;
  for (const auto& s : st) total += s.locks.requests_locked;
  EXPECT_EQ(total, 8u * 200u);
}

TEST(LockManager, FrameHarvestTracksSharing) {
  Fixture f;
  ThreadStats st0, st1;
  FrameLockStats fls;
  f.platform.spawn("a", Domain::kServer, [&] {
    LockManager::Region r;
    f.lm.acquire({{15, 16}}, 0, st0, r);
    f.platform.compute(millis(1));
    f.lm.release(r);
  });
  f.platform.spawn("b", Domain::kServer, [&] {
    f.platform.sleep_for(millis(2));
    LockManager::Region r;
    f.lm.acquire({{16, 17}}, 1, st1, r);
    f.lm.release(r);
  });
  f.platform.run();
  f.lm.frame_harvest(fls);
  // 3 of 16 leaves locked; 1 of 16 (leaf 16) by both threads.
  EXPECT_NEAR(fls.leaves_locked_pct.mean(), 3.0 / 16.0, 1e-9);
  EXPECT_NEAR(fls.leaves_shared_pct.mean(), 1.0 / 16.0, 1e-9);
  f.lm.frame_reset();
  FrameLockStats fls2;
  f.lm.frame_harvest(fls2);
  EXPECT_NEAR(fls2.leaves_locked_pct.mean(), 0.0, 1e-9);
}

TEST(LockManager, ListLocksAttributeWaitByNodeKind) {
  Fixture f;
  ThreadStats st0, st1;
  f.platform.spawn("a", Domain::kServer, [&] {
    LockManager::ListLockContext ctx(f.lm, st0);
    ctx.lock_list(0);  // root (parent)
    f.platform.compute(millis(2));
    ctx.unlock_list(0);
  });
  f.platform.spawn("b", Domain::kServer, [&] {
    f.platform.sleep_for(micros(100));
    LockManager::ListLockContext ctx(f.lm, st1);
    ctx.lock_list(0);
    ctx.unlock_list(0);
    ctx.lock_list(20);  // a leaf
    ctx.unlock_list(20);
  });
  f.platform.run();
  EXPECT_GT(st1.breakdown.lock_parent.ns, millis(1).ns);
  EXPECT_EQ(st1.locks.parent_list_locks, 2u);
  // The uncontended holder pays only the small list-lock overhead.
  EXPECT_LT(st0.breakdown.lock_parent.ns, micros(10).ns);
}

TEST(GlobalStateBuffer, EmitSnapshotClear) {
  vt::SimPlatform p;
  GlobalStateBuffer buf(p);
  p.spawn("t", Domain::kServer, [&] {
    buf.emit(net::GameEvent{1, 2, 3, {}});
    buf.emit(net::GameEvent{4, 5, 6, {}});
    auto events = buf.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].kind, 4);
    buf.clear();
    EXPECT_TRUE(buf.snapshot().empty());
  });
  p.run();
}

TEST(ReplyBuffer, AppendDrain) {
  vt::SimPlatform p;
  ReplyBuffer buf(p);
  p.spawn("t", Domain::kServer, [&] {
    buf.append({net::GameEvent{1, 0, 0, {}}});
    buf.append({net::GameEvent{2, 0, 0, {}}, net::GameEvent{3, 0, 0, {}}});
    EXPECT_EQ(buf.size(), 3u);
    std::vector<net::GameEvent> out{net::GameEvent{9, 0, 0, {}}};
    buf.drain_into(out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].kind, 9);  // existing contents preserved, order kept
    EXPECT_EQ(out[1].kind, 1);
    EXPECT_EQ(buf.size(), 0u);
  });
  p.run();
}

TEST(Config, PolicyNames) {
  EXPECT_STREQ(lock_policy_name(LockPolicy::kConservative), "conservative");
  EXPECT_STREQ(lock_policy_name(LockPolicy::kOptimized), "optimized");
  EXPECT_STREQ(assign_policy_name(AssignPolicy::kRegion), "region");
}

}  // namespace
}  // namespace qserv::core
