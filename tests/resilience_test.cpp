// Overload protection & self-healing (src/resilience/): token-bucket
// backpressure, connect-time admission control, the adaptive degradation
// governor, and the worker watchdog with stall recovery. Unit tests for
// each mechanism plus full-system runs on the simulated platform (fixed
// seeds, deterministic) and one watchdog run under real threads.
#include <gtest/gtest.h>

#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/core/sequential_server.hpp"
#include "src/harness/experiment.hpp"
#include "src/net/fault_scheduler.hpp"
#include "src/resilience/governor.hpp"
#include "src/resilience/token_bucket.hpp"
#include "src/resilience/watchdog.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/real_platform.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv {
namespace {

constexpr vt::TimePoint t0 = vt::TimePoint::zero();

// --- token bucket (GCRA) ---

TEST(TokenBucket, BurstThenSustainedRate) {
  resilience::TokenBucket tb;
  tb.configure(10.0, 5.0);  // 10 moves/s sustained, burst of 5
  ASSERT_TRUE(tb.enabled());

  // An idle bucket absorbs the whole burst at one instant...
  int took = 0;
  for (int i = 0; i < 20; ++i) took += tb.try_take(0) ? 1 : 0;
  EXPECT_GE(took, 5);
  EXPECT_LE(took, 6);  // GCRA admits burst+1 at the exact boundary

  // ...then refills at exactly the sustained rate: one token per 100 ms.
  int64_t now = 0;
  for (int step = 1; step <= 10; ++step) {
    now += 100'000'000;  // +100 ms
    int granted = 0;
    for (int i = 0; i < 5; ++i) granted += tb.try_take(now) ? 1 : 0;
    EXPECT_EQ(granted, 1) << "at step " << step;
  }

  // A long quiet period restores the full burst allowance.
  now += 10'000'000'000;  // +10 s
  int granted = 0;
  for (int i = 0; i < 20; ++i) granted += tb.try_take(now) ? 1 : 0;
  EXPECT_GE(granted, 5);
}

TEST(TokenBucket, ZeroRateDisablesLimiting) {
  resilience::TokenBucket tb;
  tb.configure(0.0, 5.0);
  EXPECT_FALSE(tb.enabled());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(tb.try_take(0));
}

// --- frame-budget governor ---

resilience::Config governor_cfg() {
  resilience::Config cfg;
  cfg.governor = true;
  cfg.tick_budget = vt::millis(10);
  cfg.window = 8;
  cfg.dwell = 4;
  cfg.enter_ratio = 1.0;
  cfg.exit_ratio = 0.6;
  return cfg;
}

TEST(FrameGovernor, StepsDownUnderOverloadAndBackUpWithHysteresis) {
  resilience::FrameGovernor gov(governor_cfg());
  EXPECT_EQ(gov.level(), resilience::kNormal);

  // Sustained 20 ms frames against a 10 ms budget: the ladder steps down
  // one rung per dwell period once the window has filled, then pins at
  // the deepest rung.
  for (int i = 0; i < 40; ++i) gov.on_frame(vt::millis(20));
  EXPECT_EQ(gov.level(), resilience::kEvictExpensive);
  EXPECT_EQ(gov.counters().steps_down, 4u);
  EXPECT_EQ(gov.max_level_reached(), resilience::kEvictExpensive);
  EXPECT_GT(gov.counters().frames_degraded, 0u);
  EXPECT_GT(gov.p95_ms(), 10.0);

  // Frames between exit (6 ms) and enter (10 ms) thresholds: hysteresis
  // holds the level — no chattering at the boundary.
  for (int i = 0; i < 40; ++i) gov.on_frame(vt::millis(8));
  EXPECT_EQ(gov.level(), resilience::kEvictExpensive);
  EXPECT_EQ(gov.counters().steps_up, 0u);

  // Recovery: fast frames walk the ladder back up to normal.
  for (int i = 0; i < 60; ++i) gov.on_frame(vt::millis(2));
  EXPECT_EQ(gov.level(), resilience::kNormal);
  EXPECT_EQ(gov.counters().steps_up, 4u);
}

TEST(FrameGovernor, RespectsMaxLevelCap) {
  auto cfg = governor_cfg();
  cfg.max_level = resilience::kCoalesceMoves;
  resilience::FrameGovernor gov(cfg);
  for (int i = 0; i < 100; ++i) gov.on_frame(vt::millis(50));
  EXPECT_EQ(gov.level(), resilience::kCoalesceMoves);
  EXPECT_TRUE(gov.at_least(resilience::kThinFarEntities));
  EXPECT_FALSE(gov.at_least(resilience::kShedDebugWork));
}

TEST(FrameGovernor, DisabledLadderStillFeedsAdmissionP95) {
  auto cfg = governor_cfg();
  cfg.governor = false;  // ladder off; admission control may still be on
  cfg.admission_ratio = 1.25;
  resilience::FrameGovernor gov(cfg);
  EXPECT_FALSE(gov.admission_overloaded());
  for (int i = 0; i < 40; ++i) gov.on_frame(vt::millis(20));
  EXPECT_EQ(gov.level(), resilience::kNormal);
  EXPECT_EQ(gov.counters().steps_down, 0u);
  EXPECT_GT(gov.p95_ms(), 12.5);  // 1.25 * 10 ms
  EXPECT_TRUE(gov.admission_overloaded());
}

TEST(FrameGovernor, LevelNamesCoverTheLadder) {
  EXPECT_STREQ(resilience::degrade_level_name(resilience::kNormal), "normal");
  for (int l = resilience::kNormal; l <= resilience::kEvictExpensive; ++l) {
    EXPECT_STRNE(resilience::degrade_level_name(l), "?");
  }
}

// --- worker watchdog ---

TEST(WorkerWatchdog, DetectsStallsAndRecoveries) {
  resilience::Config cfg;
  cfg.watchdog_timeout = vt::millis(100);
  resilience::WorkerWatchdog wd(cfg, 3);
  ASSERT_TRUE(wd.enabled());

  wd.heartbeat(0, t0);
  wd.heartbeat(1, t0);
  // Thread 2 never starts: it must never be declared stalled.

  EXPECT_FALSE(wd.check_due(t0 + vt::millis(50), 0));
  // Thread 1 goes quiet past the timeout; thread 0 (the asker) is exempt.
  EXPECT_TRUE(wd.check_due(t0 + vt::millis(150), 0));

  auto v = wd.master_check(t0 + vt::millis(150), 0);
  ASSERT_EQ(v.newly_stalled.size(), 1u);
  EXPECT_EQ(v.newly_stalled[0], 1);
  EXPECT_TRUE(v.recovered.empty());
  EXPECT_TRUE(wd.is_stalled(1));
  EXPECT_FALSE(wd.is_stalled(0));
  EXPECT_FALSE(wd.is_stalled(2));
  // Already adjudicated: no further maintenance cue for the same stall.
  EXPECT_FALSE(wd.check_due(t0 + vt::millis(200), 0));

  // The wedged worker comes back: its next heartbeat moves it to the live
  // set and counts a recovery.
  wd.heartbeat(1, t0 + vt::millis(250));
  v = wd.master_check(t0 + vt::millis(260), 0);
  EXPECT_TRUE(v.newly_stalled.empty());
  ASSERT_EQ(v.recovered.size(), 1u);
  EXPECT_EQ(v.recovered[0], 1);
  EXPECT_FALSE(wd.is_stalled(1));
  EXPECT_EQ(wd.counters().stalls_detected, 1u);
  EXPECT_EQ(wd.counters().stalls_recovered, 1u);
}

TEST(WorkerWatchdog, ZeroTimeoutIsInert) {
  resilience::Config cfg;  // watchdog_timeout stays 0
  resilience::WorkerWatchdog wd(cfg, 2);
  EXPECT_FALSE(wd.enabled());
  wd.heartbeat(0, t0);
  EXPECT_FALSE(wd.check_due(t0 + vt::seconds(100), -1));
  EXPECT_TRUE(wd.master_check(t0 + vt::seconds(100), -1).newly_stalled.empty());
}

// --- full-system: backpressure ---

// One flooding client (500 moves/s against a 35/s budget) next to honest
// 30 fps clients: the flooder's surplus is dropped at the receive phase,
// the honest clients play on undisturbed, and the flooder stays connected
// — rate limiting is backpressure, not punishment.
TEST(Resilience, FlooderIsRateLimitedWithoutStarvingHonestClients) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  core::ServerConfig scfg;
  scfg.resilience.move_rate_limit = 35.0;
  scfg.resilience.move_burst = 10.0;
  core::SequentialServer server(p, net, map, scfg);

  bots::ClientDriver::Config honest_cfg;
  honest_cfg.players = 3;
  bots::ClientDriver honest(p, net, map, server, honest_cfg);

  bots::ClientDriver::Config flood_cfg;
  flood_cfg.players = 1;
  flood_cfg.first_local_port = 50000;
  flood_cfg.frame_interval = vt::millis(2);  // ~500 moves/s
  bots::ClientDriver flooder(p, net, map, server, flood_cfg);

  server.start();
  honest.start();
  flooder.start();
  p.call_after(vt::seconds(8), [&] {
    server.request_stop();
    honest.request_stop();
    flooder.request_stop();
  });
  p.run();

  const auto& fm = flooder.clients()[0]->metrics();
  // The flood actually happened and was mostly clamped: at most
  // rate * time + burst of it can ever pass the bucket.
  EXPECT_GT(fm.moves_sent, 3000u);
  const uint64_t budget = 35 * 8 + 10 + 20;  // rate*run + burst + slack
  EXPECT_GE(server.total_moves_rate_limited() + budget, fm.moves_sent);
  EXPECT_GT(server.total_moves_rate_limited(), fm.moves_sent / 2);
  // Honest clients (under the budget) lost nothing...
  EXPECT_LE(server.total_moves_rate_limited(), fm.moves_sent);
  for (const auto& c : honest.clients()) {
    EXPECT_TRUE(c->connected());
    EXPECT_GT(c->metrics().replies, 100u);
  }
  // ...and the flooder is still connected and still answered at the
  // governed rate.
  EXPECT_TRUE(flooder.clients()[0]->connected());
  EXPECT_GT(fm.replies, 100u);
  EXPECT_EQ(server.connected_clients(), 4);
}

// Oversized datagrams are clamped before any parse work.
TEST(Resilience, OversizedPacketsAreDroppedBeforeParsing) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  core::ServerConfig scfg;
  scfg.resilience.max_packet_bytes = 1400;
  core::SequentialServer server(p, net, map, scfg);
  server.start();

  auto attacker = net.open(9999);
  p.spawn("attacker", vt::Domain::kClientFarm, [&] {
    std::vector<uint8_t> huge(8192, 0xAB);
    for (int i = 0; i < 50; ++i) {
      attacker->send(scfg.base_port, std::vector<uint8_t>(huge));
      p.sleep_for(vt::millis(10));
    }
    p.sleep_for(vt::millis(200));
    server.request_stop();
  });
  p.run();

  EXPECT_EQ(server.total_packets_oversized(), 50u);
  EXPECT_EQ(server.connected_clients(), 0);
}

// --- full-system: admission control ---

// Past the saturation knee, new connects are refused with kServerBusy and
// the refused clients back off (with retries) instead of hammering.
TEST(Resilience, AdmissionControlRefusesConnectsPastSaturation) {
  auto cfg = harness::paper_config(harness::ServerMode::kParallel, 4, 320,
                                   core::LockPolicy::kConservative);
  cfg.warmup = vt::seconds(2);
  cfg.measure = vt::seconds(6);
  cfg.server.resilience.admission_control = true;
  cfg.server.resilience.admission_ratio = 1.25;
  // The initial connect wave lands before the rolling frame-time window
  // has seen any overload, so it is admitted wholesale; graceful churn
  // makes clients rejoin *during* the overload they created, where the
  // admission gate is actually consulted.
  cfg.churn.enabled = true;
  cfg.churn.mean_session = vt::seconds(4);
  cfg.churn.crash_fraction = 0.0f;
  cfg.churn.rejoin_delay = vt::millis(250);
  const auto r = harness::run_experiment(cfg);

  // Rejoining clients past saturation were refused with kServerBusy and
  // kept retrying with backoff.
  EXPECT_GT(r.rejected_busy, 0u);
  EXPECT_LE(r.connected, 320);
  EXPECT_GT(r.connected, 64);
  EXPECT_GT(r.client_rejected_busy, 0u);
  EXPECT_GT(r.client_connect_retries, 0u);
  // Admission control alone never steps the degradation ladder.
  EXPECT_EQ(r.governor_steps_down, 0u);
  EXPECT_EQ(r.max_degrade_level, resilience::kNormal);
}

// --- full-system: degradation governor ---

// A server driven past capacity with the governor on: the ladder steps
// down, degraded-mode work actually happens (coalescing and/or thinning),
// and the run completes with the population still connected.
TEST(Resilience, GovernorDegradesInsteadOfCollapsing) {
  auto cfg = harness::paper_config(harness::ServerMode::kParallel, 4, 320,
                                   core::LockPolicy::kConservative);
  cfg.warmup = vt::seconds(2);
  cfg.measure = vt::seconds(4);
  cfg.server.resilience.governor = true;
  cfg.server.resilience.tick_budget = vt::millis(33);
  cfg.server.resilience.window = 16;
  cfg.server.resilience.dwell = 8;
  cfg.server.resilience.max_level = resilience::kShedDebugWork;  // no evictions
  const auto r = harness::run_experiment(cfg);

  EXPECT_GT(r.governor_steps_down, 0u);
  EXPECT_GT(r.frames_degraded, 0u);
  EXPECT_GE(r.max_degrade_level, resilience::kCoalesceMoves);
  EXPECT_GT(r.moves_coalesced, 0u);
  EXPECT_EQ(r.governor_evictions, 0u);  // capped below the evict rung
  EXPECT_GT(r.response_rate, 0.0);
}

// --- full-system: watchdog + stall recovery (simulated platform) ---

// A worker wedged for a full second (injected via the fault timeline's
// kThreadStall) is detected within the watchdog timeout — a handful of
// frames — its clients are migrated to live workers, and when it wakes it
// rejoins the live set. Nobody is disconnected or lost.
TEST(Resilience, WatchdogRecoversStalledWorkerWithZeroLostClients) {
  auto cfg = harness::paper_config(harness::ServerMode::kParallel, 4, 32,
                                   core::LockPolicy::kConservative);
  cfg.warmup = vt::seconds(2);
  cfg.measure = vt::seconds(6);
  cfg.server.resilience.watchdog_timeout = vt::millis(250);
  cfg.server.check_invariants = true;
  // Wedge worker 2 from t=4 s (mid-measurement) for one second.
  cfg.configure_network = [](net::VirtualNetwork& net) {
    net.faults().add_thread_stall(t0 + vt::seconds(4), vt::seconds(1), 2);
  };
  const auto r = harness::run_experiment(cfg);

  EXPECT_GE(r.stalls_injected, 1u);
  // Detected during the 1 s wedge (i.e. within the 250 ms timeout plus a
  // few frames — afterwards the resumed heartbeat would hide it forever).
  EXPECT_GE(r.stalls_detected, 1u);
  EXPECT_GE(r.stalls_recovered, 1u);
  // Its clients were migrated off (block assignment puts 8 of 32 there).
  EXPECT_GE(r.stall_reassignments, 1u);
  EXPECT_LE(r.stall_reassignments, 32u);
  // Zero lost clients: everyone still connected, nobody evicted, and the
  // registry/world/areanode audit stayed clean through the migration.
  EXPECT_EQ(r.connected, 32);
  EXPECT_EQ(r.evictions, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_GT(r.response_rate, 0.0);
}

// --- full-system: watchdog on real threads (TSan-clean) ---

// The same detection/recovery protocol under true concurrency: heartbeats
// are relaxed atomics, adjudication happens in the master window, and the
// RealPlatform timer only pokes selectors. Run under TSan in CI.
TEST(ResilienceReal, WatchdogDetectsAndRecoversOnRealThreads) {
  vt::RealPlatform platform;
  net::VirtualNetwork network(platform, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.resilience.watchdog_timeout = vt::millis(120);
  network.faults().add_thread_stall(platform.now() + vt::millis(300),
                                    vt::millis(400), 1);
  core::ParallelServer server(platform, network, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 6;
  dcfg.frame_interval = vt::millis(10);
  bots::ClientDriver driver(platform, network, map, server, dcfg);

  server.start();
  driver.start();
  platform.call_after(vt::millis(1500), [&] {
    server.request_stop();
    driver.request_stop();
  });
  platform.join_all();

  EXPECT_GE(server.stalls_injected(), 1u);
  ASSERT_NE(server.watchdog(), nullptr);
  EXPECT_GE(server.watchdog()->counters().stalls_detected, 1u);
  EXPECT_GE(server.watchdog()->counters().stalls_recovered, 1u);
  EXPECT_GE(server.stall_reassignments(), 1u);
  EXPECT_EQ(server.evictions(), 0u);
  int connected = 0;
  uint64_t replies = 0;
  for (const auto& c : driver.clients()) {
    connected += c->connected() ? 1 : 0;
    replies += c->metrics().replies;
  }
  EXPECT_EQ(connected, 6);
  EXPECT_GT(replies, 50u);
}

}  // namespace
}  // namespace qserv
