// Reply hot-path equivalence (DESIGN.md §15): the SoA view sweep must
// select exactly the entities the legacy per-client sweep selects, and
// the shared-baseline span encoders must produce byte-identical wire
// messages to net::encode / net::encode_delta — the legacy path is the
// oracle. Property-style: random worlds, random viewers, evolving
// baselines, both PVS and no-PVS (LOS) maps.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/harness/experiment.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/sim/snapshot.hpp"
#include "src/sim/snapshot_encode.hpp"
#include "src/sim/world.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/util/rng.hpp"

namespace qserv {
namespace {

struct TestWorld {
  spatial::GameMap map;
  sim::World world;
  std::vector<uint32_t> player_ids;

  // The no-PVS variant strips the arena's (trivial) PVS so the sweep
  // takes the LOS-trace fallback, matching maps without vis data.
  static spatial::GameMap make_map(bool with_pvs, uint64_t seed) {
    spatial::GameMap m = with_pvs ? spatial::make_large_deathmatch(seed)
                                  : spatial::make_arena(1024.0f, seed);
    if (!with_pvs) m.pvs = spatial::PvsData{};
    return m;
  }

  TestWorld(bool with_pvs, uint64_t seed)
      : map(make_map(with_pvs, seed)),
        world(map, sim::World::Config{4, seed}) {
    Rng rng(seed * 977 + 11);
    for (int i = 0; i < 24; ++i) {
      sim::Entity& p = world.spawn_player("p" + std::to_string(i));
      player_ids.push_back(p.id);
      scatter(p, rng);
    }
    for (int i = 0; i < 40; ++i) {
      sim::Entity& it = world.spawn_entity(sim::EntityType::kItem);
      it.origin = rng.point_in({-1200, -1200, 0}, {1200, 1200, 40});
      it.available = (i % 3) != 0;
      world.link(it);
    }
  }

  void scatter(sim::Entity& e, Rng& rng) {
    e.origin = rng.point_in({-1200, -1200, 0}, {1200, 1200, 40});
    e.yaw_deg = rng.uniform(0.0f, 360.0f);
    world.relink(e);
  }

  // One evolution step: move some entities, toggle some states.
  void mutate(Rng& rng) {
    world.for_each_entity([&](sim::Entity& e) {
      if (rng.chance(0.4f)) {
        e.origin += rng.point_in({-60, -60, 0}, {60, 60, 5});
        world.relink(e);
      }
      if (rng.chance(0.1f)) {
        if (e.type == sim::EntityType::kItem) e.available = !e.available;
        if (e.type == sim::EntityType::kPlayer)
          e.health = e.health > 0 ? 0 : 100;
      }
    });
  }
};

bool updates_equal(const net::EntityUpdate& a, const net::EntityUpdate& b) {
  return a.id == b.id && a.type == b.type && a.origin == b.origin &&
         a.yaw_deg == b.yaw_deg && a.state == b.state;
}

std::vector<net::GameEvent> some_events(Rng& rng) {
  std::vector<net::GameEvent> ev;
  const int n = static_cast<int>(rng.uniform(0.0f, 4.0f));
  for (int i = 0; i < n; ++i) {
    ev.push_back({static_cast<uint8_t>(1 + i), rng.next_u32(), rng.next_u32(),
                  rng.point_in({-10, -10, 0}, {10, 10, 10})});
  }
  return ev;
}

// The SoA sweep selects the same entities, in the same order, with the
// same fields, as the legacy per-entity sweep — on PVS maps and LOS
// (no-PVS) maps, with and without far-thinning.
TEST(ReplyEquivalence, ViewSweepMatchesLegacySweep) {
  for (const bool with_pvs : {true, false}) {
    TestWorld tw(with_pvs, 5);
    ASSERT_EQ(tw.map.pvs.empty(), !with_pvs);
    Rng rng(99);
    net::Snapshot legacy_snap, view_snap;
    std::vector<uint32_t> rows;
    for (uint32_t frame = 1; frame <= 8; ++frame) {
      tw.mutate(rng);
      tw.world.rebuild_frame_view(frame);
      const auto events = some_events(rng);
      for (const uint32_t pid : tw.player_ids) {
        const sim::Entity* viewer = tw.world.get(pid);
        ASSERT_NE(viewer, nullptr);
        const bool thin_far = (frame & 1) != 0;
        sim::build_snapshot(tw.world, *viewer, frame, 7, 123, events,
                            legacy_snap, thin_far);
        rows.clear();
        sim::ViewSweepArgs args;
        args.thin_far = thin_far;
        args.rows_out = &rows;
        sim::build_snapshot_view(tw.world, tw.world.frame_view(), *viewer,
                                 frame, 7, 123, events, view_snap, args);
        ASSERT_EQ(view_snap.entities.size(), legacy_snap.entities.size())
            << "pvs=" << with_pvs << " frame=" << frame << " viewer=" << pid;
        for (size_t i = 0; i < view_snap.entities.size(); ++i) {
          EXPECT_TRUE(
              updates_equal(view_snap.entities[i], legacy_snap.entities[i]));
        }
        ASSERT_EQ(rows.size(), view_snap.entities.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          EXPECT_EQ(tw.world.frame_view().ids[rows[i]],
                    view_snap.entities[i].id);
        }
      }
    }
  }
}

// A primed cluster row answers exactly what per-lookup pvs.can_see
// answers for every player row.
TEST(ReplyEquivalence, ClusterVisCacheMatchesPerLookup) {
  TestWorld tw(/*with_pvs=*/true, 11);
  tw.world.rebuild_frame_view(1);
  const sim::FrameView& view = tw.world.frame_view();
  sim::ClusterVisCache cache;
  cache.begin_frame();
  for (const uint32_t pid : tw.player_ids) {
    const sim::Entity* viewer = tw.world.get(pid);
    ASSERT_NE(viewer, nullptr);
    const auto* row = cache.prime(tw.world, view, viewer->cluster);
    ASSERT_EQ(row, cache.row_for(viewer->cluster));
    if (viewer->cluster < 0) {
      EXPECT_EQ(row, nullptr);
      continue;
    }
    ASSERT_NE(row, nullptr);
    ASSERT_EQ(row->size(), view.size());
    for (size_t i = 0; i < view.size(); ++i) {
      if (view.is_player[i] == 0) continue;
      EXPECT_EQ((*row)[i] != 0,
                tw.map.pvs.can_see(viewer->cluster, view.cluster[i]))
          << "cluster " << viewer->cluster << " row " << i;
    }
  }
  // No-PVS maps and clusterless viewers produce no rows.
  TestWorld arena(/*with_pvs=*/false, 11);
  arena.world.rebuild_frame_view(1);
  sim::ClusterVisCache none;
  none.begin_frame();
  EXPECT_EQ(none.prime(arena.world, arena.world.frame_view(), 0), nullptr);
  EXPECT_EQ(cache.prime(tw.world, view, -1), nullptr);
}

// Shared full encoding is byte-identical to net::encode over the same
// entity set.
TEST(ReplyEquivalence, FullEncodeByteIdentical) {
  TestWorld tw(/*with_pvs=*/true, 23);
  Rng rng(17);
  net::Snapshot snap;
  std::vector<uint32_t> rows;
  for (uint32_t frame = 1; frame <= 6; ++frame) {
    tw.mutate(rng);
    tw.world.rebuild_frame_view(frame);
    const auto events = some_events(rng);
    for (const uint32_t pid : tw.player_ids) {
      const sim::Entity* viewer = tw.world.get(pid);
      rows.clear();
      sim::ViewSweepArgs args;
      args.shared_encode = true;
      args.rows_out = &rows;
      sim::build_snapshot_view(tw.world, tw.world.frame_view(), *viewer,
                               frame, 42, 555, events, snap, args);
      snap.assigned_port = static_cast<uint16_t>(frame);  // exercise field
      const std::vector<uint8_t> oracle = net::encode(snap);
      net::ByteWriter w;
      sim::encode_full_from_view(snap, tw.world.frame_view(), rows, w);
      EXPECT_EQ(w.data(), oracle) << "frame " << frame << " viewer " << pid;
    }
  }
}

// Shared delta encoding is byte-identical to net::encode_delta against
// evolving baselines — including removals, new entities, slot-churned
// ids, and baselines in arbitrary order (the sort fallback).
TEST(ReplyEquivalence, DeltaEncodeByteIdentical) {
  TestWorld tw(/*with_pvs=*/true, 31);
  Rng rng(43);
  std::mt19937 shuffler(7);
  net::Snapshot snap;
  std::vector<uint32_t> rows;
  sim::SharedEncodeScratch scratch;
  // Per-viewer history of the last sweep, as the server keeps per client.
  std::vector<std::vector<net::EntityUpdate>> history(tw.player_ids.size());
  for (uint32_t frame = 1; frame <= 10; ++frame) {
    tw.mutate(rng);
    tw.world.rebuild_frame_view(frame);
    const auto events = some_events(rng);
    for (size_t vi = 0; vi < tw.player_ids.size(); ++vi) {
      const sim::Entity* viewer = tw.world.get(tw.player_ids[vi]);
      rows.clear();
      sim::ViewSweepArgs args;
      args.shared_encode = true;
      args.thin_far = (frame % 3) == 0;
      args.rows_out = &rows;
      sim::build_snapshot_view(tw.world, tw.world.frame_view(), *viewer,
                               frame, frame * 3, 999, events, snap, args);
      std::vector<net::EntityUpdate> baseline = history[vi];
      if (frame % 4 == 0) {
        // Arbitrary baseline order must not change the bytes (the
        // encoder normalizes through its sorted index).
        std::shuffle(baseline.begin(), baseline.end(), shuffler);
      }
      const uint32_t bf = frame - 1;
      int oracle_count = -1;
      const std::vector<uint8_t> oracle =
          net::encode_delta(snap, baseline, bf, &oracle_count);
      net::ByteWriter w;
      const int count = sim::encode_delta_from_view(
          snap, tw.world.frame_view(), rows, baseline, bf, scratch, w);
      EXPECT_EQ(count, oracle_count);
      EXPECT_EQ(w.data(), oracle) << "frame " << frame << " viewer " << vi;
      history[vi] = snap.entities;
    }
  }
}

harness::ExperimentConfig shared_cfg(int players) {
  auto cfg = harness::paper_config(harness::ServerMode::kParallel, 2, players,
                                   core::LockPolicy::kConservative);
  cfg.server.delta_snapshots = true;
  cfg.server.reply.soa_view = true;
  cfg.server.reply.shared_baselines = true;
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(4);
  return cfg;
}

// End to end: with the shared-baseline path on, real clients decode
// every snapshot (full and delta) into a playable game.
TEST(ReplyEquivalenceE2E, SharedPathGameWorks) {
  const auto r = harness::run_experiment(shared_cfg(48));
  EXPECT_EQ(r.connected, 48);
  EXPECT_GT(r.replies, 3000u);
  EXPECT_GT(r.response_rate, 0.9 * 48 * 30.0);
}

TEST(ReplyEquivalenceE2E, SharedPathDeltasDecodeLosslessly) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.delta_snapshots = true;
  scfg.reply.soa_view = true;
  scfg.reply.shared_baselines = true;
  core::ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 24;
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();
  p.call_after(vt::seconds(5), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();
  uint64_t full = 0, delta = 0, undecodable = 0;
  for (const auto& c : driver.clients()) {
    full += c->metrics().full_snapshots;
    delta += c->metrics().delta_snapshots;
    undecodable += c->metrics().undecodable_deltas;
  }
  EXPECT_GT(delta, full * 5);  // steady state is delta-encoded
  EXPECT_EQ(undecodable, 0u);  // every shared-encoded delta decodes
}

// Loss forces baseline misses, full-snapshot fallbacks, and client slot
// churn through reconnects — the shared path must stay decodable.
TEST(ReplyEquivalenceE2E, SharedPathSurvivesLossAndChurn) {
  vt::SimPlatform p;
  net::VirtualNetwork::Config nc;
  nc.loss = 0.15f;
  nc.seed = 3;
  net::VirtualNetwork net(p, nc);
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.delta_snapshots = true;
  scfg.reply.soa_view = true;
  scfg.reply.shared_baselines = true;
  core::ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 24;
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();
  p.call_after(vt::seconds(6), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();
  uint64_t replies = 0, undecodable = 0;
  for (const auto& c : driver.clients()) {
    replies += c->metrics().replies;
    undecodable += c->metrics().undecodable_deltas;
  }
  EXPECT_GT(replies, 2000u);
  EXPECT_LT(static_cast<double>(undecodable),
            static_cast<double>(replies) * 0.1);
}

}  // namespace
}  // namespace qserv
