#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/vthread/platform.hpp"
#include "src/vthread/real_platform.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::vt {
namespace {

SimPlatform::MachineConfig cores(int n, int ht = 1, double tp = 1.25) {
  SimPlatform::MachineConfig mc;
  mc.cores = n;
  mc.ht_per_core = ht;
  mc.ht_throughput = tp;
  return mc;
}

TEST(SimPlatform, TimeStartsAtZeroAndAdvancesWithSleep) {
  SimPlatform p;
  TimePoint woke{};
  p.spawn("t", Domain::kServer, [&] {
    EXPECT_EQ(p.now(), TimePoint::zero());
    p.sleep_for(millis(30));
    woke = p.now();
  });
  p.run();
  EXPECT_EQ(woke.ns, millis(30).ns);
}

TEST(SimPlatform, ComputeOccupiesOneCpuForItsDuration) {
  SimPlatform p(cores(1));
  TimePoint done{};
  p.spawn("t", Domain::kServer, [&] {
    p.compute(millis(5));
    done = p.now();
  });
  p.run();
  EXPECT_EQ(done.ns, millis(5).ns);
}

TEST(SimPlatform, IndependentCoresComputeInParallel) {
  SimPlatform p(cores(4));
  std::vector<TimePoint> done(4);
  for (int i = 0; i < 4; ++i) {
    p.spawn("t" + std::to_string(i), Domain::kServer, [&, i] {
      p.compute(millis(10));
      done[static_cast<size_t>(i)] = p.now();
    });
  }
  p.run();
  for (const auto& t : done) EXPECT_EQ(t.ns, millis(10).ns);
}

TEST(SimPlatform, OversubscribedCpuQueuesFifo) {
  SimPlatform p(cores(1));
  std::vector<std::pair<std::string, TimePoint>> finish;
  for (int i = 0; i < 3; ++i) {
    p.spawn("t" + std::to_string(i), Domain::kServer, [&, i] {
      p.compute(millis(10));
      finish.emplace_back("t" + std::to_string(i), p.now());
    });
  }
  p.run();
  ASSERT_EQ(finish.size(), 3u);
  // Spawn order = queue order on a single CPU.
  EXPECT_EQ(finish[0].first, "t0");
  EXPECT_EQ(finish[0].second.ns, millis(10).ns);
  EXPECT_EQ(finish[1].first, "t1");
  EXPECT_EQ(finish[1].second.ns, millis(20).ns);
  EXPECT_EQ(finish[2].second.ns, millis(30).ns);
}

TEST(SimPlatform, HyperThreadingSharesACore) {
  // 1 core x 2 HT, combined throughput 1.25: two equal 1 ms jobs started
  // together each run at 0.625x and finish at 1.6 ms.
  SimPlatform p(cores(1, 2, 1.25));
  std::vector<TimePoint> done(2);
  for (int i = 0; i < 2; ++i) {
    p.spawn("t" + std::to_string(i), Domain::kServer, [&, i] {
      p.compute(millis(1));
      done[static_cast<size_t>(i)] = p.now();
    });
  }
  p.run();
  EXPECT_NEAR(static_cast<double>(done[0].ns), 1.6e6, 2.0);
  EXPECT_NEAR(static_cast<double>(done[1].ns), 1.6e6, 2.0);
}

TEST(SimPlatform, HyperThreadSiblingSpeedsUpWhenFreed) {
  // A needs 2 ms, B needs 1 ms, same core. B finishes at 1.6 ms; A then has
  // 1 ms of work left at full speed -> 2.6 ms.
  SimPlatform p(cores(1, 2, 1.25));
  TimePoint done_a{}, done_b{};
  p.spawn("a", Domain::kServer, [&] {
    p.compute(millis(2));
    done_a = p.now();
  });
  p.spawn("b", Domain::kServer, [&] {
    p.compute(millis(1));
    done_b = p.now();
  });
  p.run();
  EXPECT_NEAR(static_cast<double>(done_b.ns), 1.6e6, 2.0);
  EXPECT_NEAR(static_cast<double>(done_a.ns), 2.6e6, 4.0);
}

TEST(SimPlatform, PrefersIdleCoresOverHyperThreadSiblings) {
  // 2 cores x 2 HT: two jobs must land on different cores and run at full
  // speed.
  SimPlatform p(cores(2, 2, 1.25));
  std::vector<TimePoint> done(2);
  for (int i = 0; i < 2; ++i) {
    p.spawn("t" + std::to_string(i), Domain::kServer, [&, i] {
      p.compute(millis(4));
      done[static_cast<size_t>(i)] = p.now();
    });
  }
  p.run();
  EXPECT_EQ(done[0].ns, millis(4).ns);
  EXPECT_EQ(done[1].ns, millis(4).ns);
}

TEST(SimPlatform, ClientFarmComputeDoesNotUseServerCpus) {
  SimPlatform p(cores(1));
  TimePoint server_done{}, client_done{};
  p.spawn("server", Domain::kServer, [&] {
    p.compute(millis(10));
    server_done = p.now();
  });
  p.spawn("client", Domain::kClientFarm, [&] {
    p.compute(millis(10));
    client_done = p.now();
  });
  p.run();
  // Both finish at 10 ms: the client never contends for the server CPU.
  EXPECT_EQ(server_done.ns, millis(10).ns);
  EXPECT_EQ(client_done.ns, millis(10).ns);
}

TEST(SimPlatform, MutexProvidesMutualExclusionAndFifoOrder) {
  SimPlatform p(cores(4));
  auto mu = p.make_mutex("m");
  std::vector<int> order;
  int in_critical = 0;
  for (int i = 0; i < 4; ++i) {
    p.spawn("t" + std::to_string(i), Domain::kServer, [&, i] {
      // Stagger arrivals so the FIFO order is well defined.
      p.sleep_for(micros(i * 10));
      mu->lock();
      EXPECT_EQ(++in_critical, 1);
      order.push_back(i);
      p.compute(millis(1));
      --in_critical;
      mu->unlock();
    });
  }
  p.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(mu->acquisitions(), 4u);
  EXPECT_EQ(mu->contended_acquisitions(), 3u);
  EXPECT_GT(mu->total_wait().ns, 0);
}

TEST(SimPlatform, MutexWaitTimeIsMeasuredInVirtualTime) {
  SimPlatform p(cores(2));
  auto mu = p.make_mutex("m");
  Duration waited{};
  p.spawn("holder", Domain::kServer, [&] {
    mu->lock();
    p.compute(millis(7));
    mu->unlock();
  });
  p.spawn("waiter", Domain::kServer, [&] {
    p.sleep_for(millis(1));
    const TimePoint t0 = p.now();
    mu->lock();
    waited = p.now() - t0;
    mu->unlock();
  });
  p.run();
  EXPECT_EQ(waited.ns, millis(6).ns);
  EXPECT_EQ(mu->total_wait().ns, millis(6).ns);
}

TEST(SimPlatform, TryLockNeverBlocks) {
  SimPlatform p(cores(1));
  auto mu = p.make_mutex("m");
  bool second_got = true;
  p.spawn("a", Domain::kServer, [&] {
    ASSERT_TRUE(mu->try_lock());
    p.sleep_for(millis(1));
    mu->unlock();
  });
  p.spawn("b", Domain::kServer, [&] {
    second_got = mu->try_lock();
    if (second_got) mu->unlock();
  });
  p.run();
  EXPECT_FALSE(second_got);
}

TEST(SimPlatform, CondVarSignalWakesInFifoOrder) {
  SimPlatform p(cores(4));
  auto mu = p.make_mutex("m");
  auto cv = p.make_condvar();
  std::vector<int> woke;
  int ready = 0;
  for (int i = 0; i < 3; ++i) {
    p.spawn("w" + std::to_string(i), Domain::kServer, [&, i] {
      p.sleep_for(micros(i));
      mu->lock();
      ++ready;
      cv->wait(*mu);
      woke.push_back(i);
      mu->unlock();
    });
  }
  p.spawn("signaller", Domain::kServer, [&] {
    p.sleep_for(millis(1));
    for (int i = 0; i < 3; ++i) {
      mu->lock();
      cv->signal();
      mu->unlock();
      p.sleep_for(millis(1));
    }
  });
  p.run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ready, 3);
}

TEST(SimPlatform, CondVarBroadcastWakesAll) {
  SimPlatform p(cores(4));
  auto mu = p.make_mutex("m");
  auto cv = p.make_condvar();
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    p.spawn("w" + std::to_string(i), Domain::kServer, [&] {
      mu->lock();
      cv->wait(*mu);
      ++woke;
      mu->unlock();
    });
  }
  p.spawn("b", Domain::kServer, [&] {
    p.sleep_for(millis(1));
    mu->lock();
    cv->broadcast();
    mu->unlock();
  });
  p.run();
  EXPECT_EQ(woke, 5);
}

TEST(SimPlatform, CondVarWaitUntilTimesOut) {
  SimPlatform p(cores(1));
  auto mu = p.make_mutex("m");
  auto cv = p.make_condvar();
  bool signaled = true;
  TimePoint woke{};
  p.spawn("w", Domain::kServer, [&] {
    mu->lock();
    signaled = cv->wait_until(*mu, TimePoint{} + millis(3));
    woke = p.now();
    mu->unlock();
  });
  p.run();
  EXPECT_FALSE(signaled);
  EXPECT_EQ(woke.ns, millis(3).ns);
}

TEST(SimPlatform, CondVarSignalBeatsLaterDeadline) {
  SimPlatform p(cores(2));
  auto mu = p.make_mutex("m");
  auto cv = p.make_condvar();
  bool signaled = false;
  TimePoint woke{};
  p.spawn("w", Domain::kServer, [&] {
    mu->lock();
    signaled = cv->wait_until(*mu, TimePoint{} + millis(100));
    woke = p.now();
    mu->unlock();
  });
  p.spawn("s", Domain::kServer, [&] {
    p.sleep_for(millis(2));
    mu->lock();
    cv->signal();
    mu->unlock();
  });
  p.run();
  EXPECT_TRUE(signaled);
  EXPECT_EQ(woke.ns, millis(2).ns);
}

TEST(SimPlatform, TimedOutWaiterDoesNotStealLaterSignal) {
  SimPlatform p(cores(2));
  auto mu = p.make_mutex("m");
  auto cv = p.make_condvar();
  bool late_waiter_signaled = false;
  p.spawn("timeout", Domain::kServer, [&] {
    mu->lock();
    EXPECT_FALSE(cv->wait_until(*mu, TimePoint{} + millis(1)));
    mu->unlock();
  });
  p.spawn("waiter", Domain::kServer, [&] {
    p.sleep_for(millis(2));
    mu->lock();
    late_waiter_signaled = cv->wait_until(*mu, TimePoint{} + millis(10));
    mu->unlock();
  });
  p.spawn("signaller", Domain::kServer, [&] {
    p.sleep_for(millis(5));
    mu->lock();
    cv->signal();
    mu->unlock();
  });
  p.run();
  EXPECT_TRUE(late_waiter_signaled);
}

TEST(SimPlatform, CallAfterRunsCallbackAtRequestedTime) {
  SimPlatform p;
  TimePoint fired{};
  p.call_after(millis(12), [&] { fired = p.now(); });
  p.spawn("t", Domain::kServer, [&] { p.sleep_for(millis(20)); });
  p.run();
  EXPECT_EQ(fired.ns, millis(12).ns);
}

TEST(SimPlatform, RunUntilStopsAtDeadline) {
  SimPlatform p(cores(1));
  int ticks = 0;
  p.spawn("t", Domain::kServer, [&] {
    for (int i = 0; i < 100; ++i) {
      p.sleep_for(millis(1));
      ++ticks;
    }
  });
  const bool more = p.run_until(TimePoint{} + millis(10) + micros(500));
  EXPECT_TRUE(more);
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(p.now().ns, (millis(10) + micros(500)).ns);
  p.run();  // drain the rest
  EXPECT_EQ(ticks, 100);
}

TEST(SimPlatform, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimPlatform p(cores(2, 2, 1.3));
    auto mu = p.make_mutex("m");
    std::vector<int64_t> trace;
    for (int i = 0; i < 6; ++i) {
      p.spawn("t" + std::to_string(i), Domain::kServer, [&, i] {
        for (int k = 0; k < 20; ++k) {
          p.compute(micros(100 + 37 * ((i + k) % 5)));
          mu->lock();
          trace.push_back(p.now().ns * 31 + i);
          p.compute(micros(10));
          mu->unlock();
          p.sleep_for(micros(50 * (i % 3)));
        }
      });
    }
    p.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimPlatform, YieldReordersEqualTimeFibers) {
  SimPlatform p(cores(1));
  std::vector<int> order;
  p.spawn("a", Domain::kServer, [&] {
    p.yield();
    order.push_back(1);
  });
  p.spawn("b", Domain::kServer, [&] { order.push_back(2); });
  p.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(SimPlatform, SpawnFromInsideAFiberWorks) {
  SimPlatform p(cores(2));
  TimePoint child_done{};
  p.spawn("parent", Domain::kServer, [&] {
    p.sleep_for(millis(1));
    p.spawn("child", Domain::kServer, [&] {
      p.compute(millis(2));
      child_done = p.now();
    });
    p.sleep_for(millis(5));
  });
  p.run();
  EXPECT_EQ(child_done.ns, millis(3).ns);
}

TEST(SimPlatform, EventCountIsStable) {
  // The processed-event count is part of the deterministic fingerprint.
  auto count = [] {
    SimPlatform p(cores(2));
    for (int i = 0; i < 4; ++i)
      p.spawn("t", Domain::kServer, [&] {
        for (int k = 0; k < 10; ++k) p.compute(micros(100));
      });
    p.run();
    return p.events_processed();
  };
  EXPECT_EQ(count(), count());
}

TEST(SimPlatformDeathTest, DeadlockIsDetectedAndReported) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimPlatform p;
        auto a = p.make_mutex("a");
        auto b = p.make_mutex("b");
        p.spawn("t1", Domain::kServer, [&] {
          a->lock();
          p.sleep_for(millis(1));
          b->lock();  // deadlock
          b->unlock();
          a->unlock();
        });
        p.spawn("t2", Domain::kServer, [&] {
          b->lock();
          p.sleep_for(millis(1));
          a->lock();
          a->unlock();
          b->unlock();
        });
        p.run();
      },
      "deadlock");
}

TEST(SimPlatformDeathTest, RecursiveLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimPlatform p;
        auto m = p.make_mutex("m");
        p.spawn("t", Domain::kServer, [&] {
          m->lock();
          m->lock();
        });
        p.run();
      },
      "recursive");
}

TEST(RealPlatform, BasicThreadingAndTime) {
  RealPlatform p;
  std::atomic<int> sum{0};
  for (int i = 0; i < 4; ++i)
    p.spawn("t", Domain::kServer, [&] { sum.fetch_add(1); });
  p.join_all();
  EXPECT_EQ(sum.load(), 4);
  EXPECT_GE(p.now().ns, 0);
}

TEST(RealPlatform, MutexAndCondVarInterop) {
  RealPlatform p;
  auto mu = p.make_mutex("m");
  auto cv = p.make_condvar();
  bool flag = false;
  int observed = -1;
  p.spawn("w", Domain::kServer, [&] {
    LockGuard g(*mu);
    while (!flag) cv->wait(*mu);
    observed = 1;
  });
  p.spawn("s", Domain::kServer, [&] {
    p.sleep_for(millis(5));
    LockGuard g(*mu);
    flag = true;
    cv->broadcast();
  });
  p.join_all();
  EXPECT_EQ(observed, 1);
  EXPECT_GE(mu->acquisitions(), 2u);
}

TEST(RealPlatform, WaitUntilTimesOut) {
  RealPlatform p;
  auto mu = p.make_mutex("m");
  auto cv = p.make_condvar();
  bool signaled = true;
  p.spawn("w", Domain::kServer, [&] {
    LockGuard g(*mu);
    signaled = cv->wait_until(*mu, p.now() + millis(10));
  });
  p.join_all();
  EXPECT_FALSE(signaled);
}

TEST(RealPlatform, CallAfterFires) {
  RealPlatform p;
  std::atomic<bool> fired{false};
  p.call_after(millis(5), [&] { fired = true; });
  p.spawn("t", Domain::kServer, [&] { p.sleep_for(millis(30)); });
  p.join_all();
  EXPECT_TRUE(fired.load());
}

}  // namespace
}  // namespace qserv::vt
