// Failure injection: the system must degrade gracefully — not crash,
// deadlock, or corrupt state — under packet loss, heavy jitter, tiny
// socket buffers, and overload.
#include <gtest/gtest.h>

#include "src/net/virtual_udp.hpp"
#include "src/harness/experiment.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/spatial/map_gen.hpp"

namespace qserv {
namespace {

using harness::ExperimentConfig;

// Builds a bespoke testbed so the network config can be injected (the
// harness uses LAN-quality defaults).
struct Testbed {
  explicit Testbed(net::VirtualNetwork::Config net_cfg, int threads,
                   int players)
      : platform(),
        network(platform, net_cfg),
        map(spatial::make_large_deathmatch(7)),
        server(platform, network,  map,
               [&] {
                 core::ServerConfig s;
                 s.threads = threads;
                 s.lock_policy = core::LockPolicy::kConservative;
                 return s;
               }()),
        driver(platform, network, map,  server, [&] {
          bots::ClientDriver::Config d;
          d.players = players;
          return d;
        }()) {}

  void run(vt::Duration duration) {
    server.start();
    driver.start();
    platform.call_after(duration, [&] {
      server.request_stop();
      driver.request_stop();
    });
    platform.run();
  }

  vt::SimPlatform platform;
  net::VirtualNetwork network;
  spatial::GameMap map;
  core::ParallelServer server;
  bots::ClientDriver driver;
};

class LossSweep : public ::testing::TestWithParam<float> {};

TEST_P(LossSweep, GameSurvivesPacketLoss) {
  net::VirtualNetwork::Config nc;
  nc.loss = GetParam();
  nc.seed = 11;
  Testbed tb(nc, 2, 24);
  tb.run(vt::seconds(5));

  // Everyone eventually connects (connect retries mask loss)...
  int connected = 0;
  uint64_t replies = 0, drops_detected = 0;
  for (const auto& c : tb.driver.clients()) {
    connected += c->connected() ? 1 : 0;
    replies += c->metrics().replies;
    drops_detected += c->metrics().drops_detected;
  }
  EXPECT_EQ(connected, 24);
  // ...and the game flows, with throughput roughly scaled by delivery
  // probability squared (request and reply both cross the wire).
  const double p_deliver = 1.0 - GetParam();
  const double expected = 24.0 * 30.0 * 5.0 * p_deliver * p_deliver;
  EXPECT_GT(static_cast<double>(replies), expected * 0.6);
  if (GetParam() > 0.0f) {
    EXPECT_GT(drops_detected, 0u);  // netchan noticed the gaps
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0f, 0.05f, 0.2f, 0.4f));

TEST(FailureInjection, HeavyJitterReordersButGameContinues) {
  net::VirtualNetwork::Config nc;
  nc.latency = vt::millis(30);
  nc.jitter = vt::millis(25);
  nc.seed = 13;
  Testbed tb(nc, 2, 16);
  tb.run(vt::seconds(5));
  uint64_t replies = 0;
  for (const auto& c : tb.driver.clients()) replies += c->metrics().replies;
  EXPECT_GT(replies, 1000u);
}

TEST(FailureInjection, TinySocketBuffersThrottleButDoNotWedge) {
  net::VirtualNetwork::Config nc;
  nc.socket_buffer = 4;
  Testbed tb(nc, 2, 48);
  tb.run(vt::seconds(4));
  EXPECT_GT(tb.network.packets_overflowed(), 0u);
  uint64_t replies = 0;
  for (const auto& c : tb.driver.clients()) replies += c->metrics().replies;
  EXPECT_GT(replies, 500u);  // degraded, alive
}

TEST(FailureInjection, OverloadShedsLoadGracefully) {
  // 2 threads, 240 players: far past capacity. Excess load is shed in
  // two ways — replies coalesce (one per client per frame, so the reply
  // rate drops below the request rate) and, deeper into overload, socket
  // buffers overflow. Either way the server keeps serving and never
  // wedges.
  net::VirtualNetwork::Config nc;
  Testbed tb(nc, 2, 240);
  tb.run(vt::seconds(5));
  uint64_t replies = 0;
  for (const auto& c : tb.driver.clients()) replies += c->metrics().replies;
  EXPECT_GT(replies, 8000u);  // still serving a sustainable rate...
  // ...but visibly below the offered ~7272 replies/s.
  EXPECT_LT(static_cast<double>(replies) / 5.0, 240 * 30.3 * 0.7);
  EXPECT_GT(tb.network.packets_overflowed(), 100u);  // kernel-style drops
}

TEST(FailureInjection, ZeroPlayersIsAQuietIdleServer) {
  net::VirtualNetwork::Config nc;
  Testbed tb(nc, 4, 0);
  tb.run(vt::seconds(2));
  EXPECT_EQ(tb.server.frames(), 0u);
  EXPECT_EQ(tb.server.total_requests(), 0u);
}

TEST(FailureInjection, SinglePlayerAloneIsServedPerfectly) {
  net::VirtualNetwork::Config nc;
  Testbed tb(nc, 8, 1);
  tb.run(vt::seconds(3));
  const auto& c = *tb.driver.clients()[0];
  EXPECT_TRUE(c.connected());
  // ~30 req/s for ~3 s, minus connect time.
  EXPECT_GT(c.metrics().replies, 60u);
  EXPECT_EQ(tb.network.packets_overflowed(), 0u);
}

}  // namespace
}  // namespace qserv
