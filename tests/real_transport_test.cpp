// RealUdpTransport: kernel UDP sockets behind the net::Transport seam.
// Everything runs on loopback with high ports; each test uses its own
// port range so parallel ctest shards cannot collide.
#include <gtest/gtest.h>

#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/net/netchan.hpp"
#include "src/net/protocol.hpp"
#include "src/net/real_udp.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/real_platform.hpp"

namespace qserv {
namespace {

TEST(RealUdp, LoopbackEchoAndCounters) {
  vt::RealPlatform p;
  net::RealUdpTransport net(p, {});
  auto a = net.open(36010);
  auto b = net.open(36011);
  auto sel = net.make_selector();
  sel->add(*b);

  ASSERT_TRUE(a->send(36011, {1, 2, 3, 4}));
  ASSERT_TRUE(sel->wait_until(p.now() + vt::seconds(2)));
  net::Datagram d;
  ASSERT_TRUE(b->try_recv(d));
  EXPECT_EQ(d.src_port, 36010);
  EXPECT_EQ(d.dst_port, 36011);
  EXPECT_EQ(d.payload, (std::vector<uint8_t>{1, 2, 3, 4}));

  // Echo back: b learned a's sockaddr from the datagram it received.
  ASSERT_TRUE(b->send(36010, {9, 8, 7}));
  auto sel_a = net.make_selector();
  sel_a->add(*a);
  ASSERT_TRUE(sel_a->wait_until(p.now() + vt::seconds(2)));
  ASSERT_TRUE(a->try_recv(d));
  EXPECT_EQ(d.payload, (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_EQ(d.src_port, 36011);

  const auto c = net.counters();
  EXPECT_EQ(c.packets_sent, 2u);
  EXPECT_EQ(c.bytes_sent, 7u);
  EXPECT_EQ(c.packets_truncated, 0u);
  EXPECT_EQ(b->received_count(), 1u);
  sel->remove(*b);
  sel_a->remove(*a);
}

TEST(RealUdp, PortCollisionIsTypedNotFatal) {
  vt::RealPlatform p;
  net::RealUdpTransport net(p, {});
  auto first = net.open(36020);
  net::OpenError err = net::OpenError::kNone;
  auto second = net.try_open(36020, &err);
  EXPECT_EQ(second, nullptr);
  EXPECT_EQ(err, net::OpenError::kPortInUse);
  // Releasing the first socket frees the port for a rebind.
  first.reset();
  auto third = net.try_open(36020, &err);
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(err, net::OpenError::kNone);
}

TEST(RealUdp, SelectorPokeAndTimeout) {
  vt::RealPlatform p;
  net::RealUdpTransport net(p, {});
  auto s = net.open(36030);
  auto sel = net.make_selector();
  sel->add(*s);
  // Timeout with no traffic.
  const auto t0 = p.now();
  EXPECT_FALSE(sel->wait_until(p.now() + vt::millis(30)));
  EXPECT_GE((p.now() - t0).ns, vt::millis(25).ns);
  // A pre-wait poke interrupts immediately.
  sel->poke();
  EXPECT_FALSE(sel->wait_until(p.now() + vt::seconds(10)));
}

// Oversized datagrams are clamped at recvfrom, counted, and the
// truncated bytes flow into the normal parse path without crashing it —
// the real-socket edge of the protocol-fuzz hardening.
TEST(RealUdp, TruncatedDatagramsClampAndParseSafely) {
  vt::RealPlatform p;
  net::RealUdpTransport::Config cfg;
  cfg.max_datagram = 96;  // tiny clamp so normal packets overrun it
  net::RealUdpTransport net(p, cfg);
  auto attacker = net.open(36040);
  auto victim = net.open(36041);
  auto sel = net.make_selector();
  sel->add(*victim);

  // A valid netchan-framed connect, then junk — both well past the clamp.
  net::NetChannel tx_chan(*attacker, 36041);
  net::ConnectMsg cm;
  cm.name = "trunc-bot";
  std::vector<uint8_t> framed = net::encode(cm);
  framed.resize(700, 0xAB);  // oversized tail
  tx_chan.send(framed);
  std::vector<uint8_t> junk(512, 0x5C);
  attacker->send(36041, junk);

  net::NetChannel rx_chan(*victim, 36040);
  int got = 0, parsed = 0;
  while (got < 2 && sel->wait_until(p.now() + vt::seconds(2))) {
    net::Datagram d;
    while (victim->try_recv(d)) {
      ++got;
      EXPECT_LE(d.payload.size(), cfg.max_datagram);
      net::NetChannel::Incoming info;
      net::ByteReader body(nullptr, 0);
      if (!rx_chan.accept(d, info, body)) continue;
      net::ClientMsgType type{};
      net::ConnectMsg decoded;
      if (net::decode_client_type(body, type) &&
          type == net::ClientMsgType::kConnect && net::decode(body, decoded))
        ++parsed;
    }
  }
  EXPECT_EQ(got, 2);
  EXPECT_EQ(net.counters().packets_truncated, 2u);
  // Clamped packets may parse (the cut hit padding) but must never
  // crash; the junk datagram must not survive the header checks.
  EXPECT_LE(parsed, 1);
  sel->remove(*victim);
}

// The full stack — ParallelServer, bots, netchan, protocol — over kernel
// sockets in one process: the same mini-session real_platform_e2e runs
// over the virtual segment.
TEST(RealUdp, EightClientMiniSession) {
  vt::RealPlatform platform;
  net::RealUdpTransport net(platform, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.base_port = 36100;
  scfg.lock_policy = core::LockPolicy::kOptimized;
  core::ParallelServer server(platform, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 8;
  dcfg.first_local_port = 36200;
  dcfg.frame_interval = vt::millis(10);
  bots::ClientDriver driver(platform, net, map, server, dcfg);

  server.start();
  driver.start();
  platform.call_after(vt::millis(1500), [&] {
    server.request_stop();
    driver.request_stop();
  });
  platform.join_all();

  int connected = 0;
  uint64_t replies = 0;
  for (const auto& c : driver.clients()) {
    connected += c->connected() ? 1 : 0;
    replies += c->metrics().replies;
  }
  EXPECT_EQ(connected, 8);
  EXPECT_GT(replies, 100u);
  EXPECT_GT(server.frames(), 20u);
  const auto c = net.counters();
  EXPECT_GT(c.packets_sent, 200u);
  EXPECT_GT(c.bytes_sent, 10'000u);
  EXPECT_EQ(c.packets_truncated, 0u);
}

}  // namespace
}  // namespace qserv
