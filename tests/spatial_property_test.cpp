// Property sweeps over the spatial substrate: areanode invariants across
// tree depths, collision-trace consistency laws, and map-generator
// validity across its parameter space.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/spatial/areanode_tree.hpp"
#include "src/spatial/collision.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/util/rng.hpp"

namespace qserv::spatial {
namespace {

const Aabb kWorld{{-2048, -2048, 0}, {2048, 2048, 512}};

class DepthSweep : public ::testing::TestWithParam<int> {};

// Invariant: link_node_for always returns the deepest node whose bounds
// contain the box; the node's bounds contain the box; no child of that
// node contains it.
TEST_P(DepthSweep, LinkNodeIsDeepestContainer) {
  AreanodeTree t(kWorld, GetParam());
  Rng rng(GetParam() * 131u + 7u);
  for (int i = 0; i < 500; ++i) {
    const Vec3 c = rng.point_in(kWorld.mins, kWorld.maxs);
    const float h = rng.uniform(1.0f, 200.0f);
    const Aabb box{{c.x - h, c.y - h, c.z}, {c.x + h, c.y + h, c.z + 10}};
    const int node = t.link_node_for(box);
    const auto& n = t.node(node);
    // Strictness: Quake links to the parent when the box touches the
    // plane, so containment is only guaranteed within the world bounds.
    const Aabb clipped = box.clipped(kWorld);
    EXPECT_TRUE(n.bounds.contains(clipped))
        << "node " << node << " does not contain its box";
    if (!t.is_leaf(node)) {
      // The box must straddle (or touch) this node's split plane.
      EXPECT_TRUE(box.mins[n.axis] <= n.dist && box.maxs[n.axis] >= n.dist);
    }
  }
}

// Invariant: leaves_for returns exactly the leaves whose bounds intersect
// the box (validated against brute force).
TEST_P(DepthSweep, LeavesForMatchesBruteForce) {
  AreanodeTree t(kWorld, GetParam());
  Rng rng(GetParam() * 733u + 3u);
  std::vector<int> got;
  for (int i = 0; i < 300; ++i) {
    const Vec3 c = rng.point_in(kWorld.mins, kWorld.maxs);
    const Vec3 h{rng.uniform(1, 800), rng.uniform(1, 800), 100};
    const Aabb box{c - h, c + h};
    got.clear();
    t.leaves_for(box, got);
    std::vector<int> expect;
    for (int n = 0; n < t.node_count(); ++n) {
      if (t.is_leaf(n) && t.node(n).bounds.intersects(box))
        expect.push_back(n);
    }
    EXPECT_EQ(got, expect);
  }
}

// Invariant: leaf ordinals form a dense [0, leaf_count) range.
TEST_P(DepthSweep, LeafOrdinalsAreDense) {
  AreanodeTree t(kWorld, GetParam());
  std::set<int> ordinals;
  for (int n = 0; n < t.node_count(); ++n) {
    if (t.is_leaf(n)) ordinals.insert(t.leaf_ordinal(n));
  }
  EXPECT_EQ(static_cast<int>(ordinals.size()), t.leaf_count());
  EXPECT_EQ(*ordinals.begin(), 0);
  EXPECT_EQ(*ordinals.rbegin(), t.leaf_count() - 1);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, ::testing::Values(0, 1, 2, 3, 4, 5, 6));

class TraceSeeds : public ::testing::TestWithParam<uint64_t> {};

// Law: endpos == start + delta * fraction, and tracing the already-clipped
// segment again hits nothing closer (stability under re-trace).
TEST_P(TraceSeeds, TraceIsConsistentAndStable) {
  Rng rng(GetParam());
  std::vector<Brush> brushes;
  for (int i = 0; i < 60; ++i) {
    const Vec3 c = rng.point_in({-800, -800, -800}, {800, 800, 800});
    const Vec3 h{rng.uniform(20, 150), rng.uniform(20, 150),
                 rng.uniform(20, 150)};
    brushes.push_back(Brush{{c - h, c + h}});
  }
  const CollisionWorld w(brushes);
  const Vec3 mins{-16, -16, -24}, maxs{16, 16, 32};
  for (int i = 0; i < 300; ++i) {
    const Vec3 start = rng.point_in({-900, -900, -900}, {900, 900, 900});
    const Vec3 end = rng.point_in({-900, -900, -900}, {900, 900, 900});
    const auto tr = w.trace_box(start, end, mins, maxs);
    if (tr.start_solid) continue;
    const Vec3 expect = start + (end - start) * tr.fraction;
    EXPECT_NEAR(tr.endpos.x, expect.x, 0.01f);
    EXPECT_NEAR(tr.endpos.y, expect.y, 0.01f);
    EXPECT_NEAR(tr.endpos.z, expect.z, 0.01f);
    // Re-trace along the clipped segment: must be (nearly) free.
    const auto re = w.trace_box(start, tr.endpos, mins, maxs);
    EXPECT_FALSE(re.start_solid);
    EXPECT_GT(re.fraction, 0.99f);
  }
}

// Law: a hit reported by a long trace is also reported by any longer
// trace through the same corridor (monotonicity).
TEST_P(TraceSeeds, HitsAreMonotonicInSegmentLength) {
  Rng rng(GetParam() * 17 + 5);
  std::vector<Brush> brushes;
  for (int i = 0; i < 40; ++i) {
    const Vec3 c = rng.point_in({-500, -500, -500}, {500, 500, 500});
    brushes.push_back(Brush{{c - Vec3{50, 50, 50}, c + Vec3{50, 50, 50}}});
  }
  const CollisionWorld w(brushes);
  for (int i = 0; i < 200; ++i) {
    const Vec3 start = rng.point_in({-600, -600, -600}, {600, 600, 600});
    const Vec3 dir = Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                          rng.uniform(-1, 1)}
                         .normalized();
    if (dir.length_sq() < 0.5f) continue;
    const auto short_tr = w.trace_line(start, start + dir * 200.0f);
    const auto long_tr = w.trace_line(start, start + dir * 400.0f);
    if (short_tr.start_solid) continue;
    if (short_tr.hit()) {
      ASSERT_TRUE(long_tr.hit());
      // Same absolute hit distance.
      EXPECT_NEAR(short_tr.fraction * 200.0f, long_tr.fraction * 400.0f,
                  0.5f);
    }
  }
}

// Law: ray_vs_aabb agrees with trace_line against a single brush.
TEST_P(TraceSeeds, RayVsAabbAgreesWithTrace) {
  Rng rng(GetParam() * 29 + 11);
  for (int i = 0; i < 300; ++i) {
    const Vec3 c = rng.point_in({-100, -100, -100}, {100, 100, 100});
    const Vec3 h{rng.uniform(10, 60), rng.uniform(10, 60), rng.uniform(10, 60)};
    const Aabb box{c - h, c + h};
    const CollisionWorld w({Brush{box}});
    const Vec3 start = rng.point_in({-300, -300, -300}, {300, 300, 300});
    const Vec3 end = rng.point_in({-300, -300, -300}, {300, 300, 300});
    const float f = ray_vs_aabb(start, end - start, box);
    const auto tr = w.trace_line(start, end);
    if (tr.start_solid) {
      EXPECT_FLOAT_EQ(f, 0.0f);
    } else if (tr.hit()) {
      ASSERT_GE(f, 0.0f);
      // trace backs off by kTraceEpsilon; ray reports the raw fraction.
      EXPECT_NEAR(f, tr.fraction, 0.01f + kTraceEpsilon);
    } else {
      EXPECT_LT(f, 0.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSeeds, ::testing::Values(1, 2, 3, 4, 5));

struct GenParams {
  int rooms;
  float room_size;
  int pillars;
  uint64_t seed;
};

class MapGenSweep : public ::testing::TestWithParam<GenParams> {};

TEST_P(MapGenSweep, GeneratedMapsAreAlwaysValid) {
  const auto gp = GetParam();
  MapGenParams p;
  p.rooms_x = gp.rooms;
  p.rooms_y = gp.rooms;
  p.room_size = gp.room_size;
  p.pillars_per_room = gp.pillars;
  p.seed = gp.seed;
  const GameMap map = generate_map(p, "sweep");
  std::string err;
  ASSERT_TRUE(map.validate(&err)) << err;
  // Round-trip fidelity for every generated map.
  GameMap loaded;
  ASSERT_TRUE(GameMap::parse(map.serialize(), loaded));
  EXPECT_EQ(loaded.serialize(), map.serialize());
  // Every room-center waypoint is reachable (graph is connected).
  std::vector<bool> seen(map.waypoints.size(), false);
  std::vector<int> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const int wpt = stack.back();
    stack.pop_back();
    for (const int n : map.waypoints[static_cast<size_t>(wpt)].neighbors) {
      if (!seen[static_cast<size_t>(n)]) {
        seen[static_cast<size_t>(n)] = true;
        stack.push_back(n);
      }
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MapGenSweep,
    ::testing::Values(GenParams{1, 384, 0, 1}, GenParams{2, 384, 1, 2},
                      GenParams{3, 448, 2, 3}, GenParams{4, 512, 1, 4},
                      GenParams{6, 512, 1, 5}, GenParams{8, 384, 0, 6},
                      GenParams{2, 1024, 3, 7}, GenParams{5, 640, 2, 8}));

TEST(Pvs, SingleRoomSeesItselfOnly) {
  const GameMap map = make_arena(512);
  ASSERT_EQ(map.pvs.cluster_count(), 1);
  EXPECT_TRUE(map.pvs.can_see(0, 0));
  const Vec3 inside = map.pvs.clusters[0].center();
  EXPECT_EQ(map.pvs.cluster_of(inside), 0);
  EXPECT_EQ(map.pvs.cluster_of(map.bounds.mins - Vec3{10, 10, 0}), -1);
}

TEST(Pvs, AdjacentRoomsSeeEachOtherThroughDoors) {
  MapGenParams p;
  p.rooms_x = 2;
  p.rooms_y = 1;
  p.seed = 3;
  const GameMap map = generate_map(p, "pair");
  ASSERT_EQ(map.pvs.cluster_count(), 2);
  EXPECT_TRUE(map.pvs.can_see(0, 1));
}

TEST(Pvs, LongCorridorEndsAreMutuallyInvisible) {
  // An 8-room corridor with narrow, randomly offset doors: the two end
  // rooms cannot possibly see each other.
  MapGenParams p;
  p.rooms_x = 8;
  p.rooms_y = 1;
  p.room_size = 280;
  p.door_width = 56;
  p.seed = 5;
  const GameMap map = generate_map(p, "corridor");
  ASSERT_EQ(map.pvs.cluster_count(), 8);
  EXPECT_FALSE(map.pvs.can_see(0, 7));
  // And visibility never skips a wall: if A sees C two rooms over, the
  // line must pass through B, so A-B and B-C hold too (corridor maps).
  for (int a = 0; a + 2 < 8; ++a) {
    if (map.pvs.can_see(a, a + 2)) {
      EXPECT_TRUE(map.pvs.can_see(a, a + 1));
      EXPECT_TRUE(map.pvs.can_see(a + 1, a + 2));
    }
  }
}

TEST(Pvs, MatrixIsConservativeAgainstSampledTraces) {
  // Soundness direction: if PVS says "not visible", no sampled sightline
  // between the clusters may be clear.
  MapGenParams p;
  p.rooms_x = 4;
  p.rooms_y = 4;
  p.door_width = 96;
  p.seed = 11;
  const GameMap map = generate_map(p, "grid");
  const CollisionWorld world = map.build_collision();
  Rng rng(17);
  const int n = map.pvs.cluster_count();
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (map.pvs.can_see(a, b)) continue;
      const auto& ca = map.pvs.clusters[static_cast<size_t>(a)];
      const auto& cb = map.pvs.clusters[static_cast<size_t>(b)];
      for (int trial = 0; trial < 20; ++trial) {
        Vec3 s = rng.point_in(ca.mins, ca.maxs);
        Vec3 t = rng.point_in(cb.mins, cb.maxs);
        s.z = ca.mins.z + 46.0f;
        t.z = cb.mins.z + 46.0f;
        EXPECT_TRUE(world.trace_line(s, t).hit())
            << "clusters " << a << "->" << b
            << " marked invisible but a sightline is clear";
      }
    }
  }
}

TEST(Pvs, SerializationRoundTripsTheMatrix) {
  MapGenParams p;
  p.rooms_x = 3;
  p.rooms_y = 3;
  p.seed = 9;
  const GameMap map = generate_map(p, "rt");
  GameMap loaded;
  ASSERT_TRUE(GameMap::parse(map.serialize(), loaded));
  ASSERT_EQ(loaded.pvs.cluster_count(), map.pvs.cluster_count());
  EXPECT_EQ(loaded.pvs.visible, map.pvs.visible);
  std::string err;
  EXPECT_TRUE(loaded.validate(&err)) << err;
}

TEST(Pvs, RejectsCorruptMatrices) {
  MapGenParams p;
  p.rooms_x = 2;
  p.rooms_y = 1;
  p.seed = 1;
  const GameMap map = generate_map(p, "bad");
  // Truncate one pvs row: matrix no longer square -> parse fails.
  std::string text = map.serialize();
  const auto pos = text.rfind("pvs ");
  text = text.substr(0, pos);
  GameMap out;
  EXPECT_FALSE(GameMap::parse(text, out));
}

}  // namespace
}  // namespace qserv::spatial
