#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/sim/combat.hpp"
#include "src/sim/game_rules.hpp"
#include "src/sim/items.hpp"
#include "src/sim/world.hpp"
#include "src/spatial/map_gen.hpp"

namespace qserv::sim {
namespace {

class CollectEvents : public EventSink {
 public:
  void emit(const net::GameEvent& e) override { events.push_back(e); }
  int count(EventKind k) const {
    int n = 0;
    for (const auto& e : events)
      if (e.kind == static_cast<uint8_t>(k)) ++n;
    return n;
  }
  std::vector<net::GameEvent> events;
};

World make_world(uint64_t seed = 1) {
  return World(spatial::make_arena(1024, 3), World::Config{4, seed});
}

TEST(World, MapEntitiesAreMaterialized) {
  const auto map = spatial::make_large_deathmatch(7);
  World w(map, {});
  size_t items = 0, teles = 0;
  w.for_each_entity([&](const Entity& e) {
    items += e.type == EntityType::kItem ? 1 : 0;
    teles += e.type == EntityType::kTeleporter ? 1 : 0;
  });
  EXPECT_EQ(items, map.items.size());
  EXPECT_EQ(teles, map.teleporters.size());
  EXPECT_EQ(w.active_entities(), items + teles);
  // Everything is linked into the areanode tree.
  EXPECT_EQ(w.tree().total_linked(), w.active_entities());
}

TEST(World, SpawnRemoveRecyclesIds) {
  World w = make_world();
  Entity& a = w.spawn_entity(EntityType::kProjectile);
  const uint32_t id = a.id;
  const size_t before = w.active_entities();
  w.remove_entity(id);
  EXPECT_EQ(w.get(id), nullptr);
  EXPECT_EQ(w.active_entities(), before - 1);
  Entity& b = w.spawn_entity(EntityType::kProjectile);
  EXPECT_EQ(b.id, id);  // slot reused
}

TEST(World, SpawnPlayerIsLinkedAliveAndInsideWorld) {
  World w = make_world();
  Entity& p = w.spawn_player("alice");
  EXPECT_TRUE(p.alive());
  EXPECT_EQ(p.health, kSpawnHealth);
  EXPECT_GE(p.areanode, 0);
  EXPECT_TRUE(w.map().bounds.contains(p.origin));
  EXPECT_FALSE(w.collision().box_solid(p.origin, p.mins, p.maxs));
}

TEST(World, GatherFindsEntitiesByRegion) {
  World w = make_world();
  Entity& p = w.spawn_player("a");
  std::vector<uint32_t> out;
  w.gather(p.bounds().expanded(10.0f), out);
  EXPECT_NE(std::find(out.begin(), out.end(), p.id), out.end());
  out.clear();
  // A box far away from the player must not contain it.
  const Vec3 far = p.origin + Vec3{400, 400, 0};
  w.gather({far, far}, out);
  EXPECT_EQ(std::find(out.begin(), out.end(), p.id), out.end());
}

TEST(World, RelinkTracksMovement) {
  const auto map = spatial::make_large_deathmatch(7);
  World w(map, {});
  Entity& p = w.spawn_player("a");
  // Move the player to the opposite corner of the world and relink.
  const int before = p.areanode;
  p.origin = Vec3{-p.origin.x, -p.origin.y, p.origin.z};
  w.relink(p);
  std::vector<uint32_t> out;
  w.gather(p.bounds(), out);
  EXPECT_NE(std::find(out.begin(), out.end(), p.id), out.end());
  EXPECT_EQ(w.tree().total_linked(), w.active_entities());
  (void)before;
}

// Invariant: every active entity is linked to exactly the node
// link_node_for() prescribes for its bounds.
TEST(World, LinkageInvariantHoldsAfterChurn) {
  World w = make_world(5);
  std::vector<uint32_t> players;
  for (int i = 0; i < 20; ++i)
    players.push_back(w.spawn_player("p" + std::to_string(i)).id);
  Rng rng(9);
  for (int step = 0; step < 500; ++step) {
    Entity* p = w.get(players[rng.below(players.size())]);
    ASSERT_NE(p, nullptr);
    p->origin = rng.point_in(w.map().bounds.mins + Vec3{40, 40, 24},
                             w.map().bounds.maxs - Vec3{40, 40, 100});
    w.relink(*p);
  }
  w.for_each_entity([&](const Entity& e) {
    EXPECT_EQ(e.areanode, w.tree().link_node_for(e.bounds()));
  });
  EXPECT_EQ(w.tree().total_linked(), w.active_entities());
}

TEST(GameRules, ArmorAbsorbsTwoThirds) {
  World w = make_world();
  Entity& p = w.spawn_player("a");
  p.armor = 100;
  CollectEvents ev;
  apply_damage(w, p, 0, 30, nullptr, &ev);
  EXPECT_EQ(p.health, kSpawnHealth - 10);
  EXPECT_EQ(p.armor, 80);
}

TEST(GameRules, DamageWithoutArmorIsFull) {
  World w = make_world();
  Entity& p = w.spawn_player("a");
  CollectEvents ev;
  apply_damage(w, p, 0, 30, nullptr, &ev);
  EXPECT_EQ(p.health, kSpawnHealth - 30);
}

TEST(GameRules, KillScoresFragAndRespawns) {
  World w = make_world();
  Entity& victim = w.spawn_player("v");
  Entity& attacker = w.spawn_player("a");
  CollectEvents ev;
  victim.health = 10;
  EXPECT_TRUE(apply_damage(w, victim, attacker.id, 50, nullptr, &ev));
  EXPECT_EQ(attacker.frags, 1);
  EXPECT_EQ(victim.deaths, 1u);
  EXPECT_EQ(victim.health, kSpawnHealth);  // respawned
  EXPECT_EQ(ev.count(EventKind::kFrag), 1);
  EXPECT_EQ(ev.count(EventKind::kSpawn), 1);
}

TEST(GameRules, SelfKillCostsAFrag) {
  World w = make_world();
  Entity& p = w.spawn_player("a");
  CollectEvents ev;
  p.health = 5;
  apply_damage(w, p, p.id, 50, nullptr, &ev);
  EXPECT_EQ(p.frags, -1);
}

TEST(GameRules, ScoreboardSortsByFrags) {
  World w = make_world();
  Entity& a = w.spawn_player("a");
  Entity& b = w.spawn_player("b");
  Entity& c = w.spawn_player("c");
  a.frags = 1;
  b.frags = 5;
  c.frags = 3;
  const auto board = scoreboard(w);
  ASSERT_EQ(board.size(), 3u);
  EXPECT_EQ(board[0].name, "b");
  EXPECT_EQ(board[1].name, "c");
  EXPECT_EQ(board[2].name, "a");
}

TEST(Items, PickupAppliesEffectAndSchedulesRespawn) {
  World w = make_world();
  Entity& p = w.spawn_player("a");
  p.health = 50;
  Entity& item = w.spawn_entity(EntityType::kItem);
  item.item = spatial::ItemType::kHealth;
  CollectEvents ev;
  const vt::TimePoint now{1000};
  EXPECT_TRUE(try_pickup(w, p, item, now, &ev));
  EXPECT_EQ(p.health, 75);
  EXPECT_FALSE(item.available);
  EXPECT_EQ(item.respawn_at.ns, (now + kItemRespawn).ns);
  EXPECT_EQ(ev.count(EventKind::kPickup), 1);
  // Unavailable items cannot be picked up again.
  EXPECT_FALSE(try_pickup(w, p, item, now, &ev));
}

TEST(Items, UselessPickupIsSkipped) {
  World w = make_world();
  Entity& p = w.spawn_player("a");  // full health
  Entity& item = w.spawn_entity(EntityType::kItem);
  item.item = spatial::ItemType::kHealth;
  CollectEvents ev;
  EXPECT_FALSE(try_pickup(w, p, item, {}, &ev));
  EXPECT_TRUE(item.available);
}

TEST(Items, WeaponAndAmmoPickups) {
  World w = make_world();
  Entity& p = w.spawn_player("a");
  Entity& weapon = w.spawn_entity(EntityType::kItem);
  weapon.item = spatial::ItemType::kWeapon;
  Entity& ammo = w.spawn_entity(EntityType::kItem);
  ammo.item = spatial::ItemType::kAmmo;
  EXPECT_TRUE(try_pickup(w, p, weapon, {}, nullptr));
  EXPECT_EQ(p.weapon, Weapon::kRailgun);
  EXPECT_FALSE(try_pickup(w, p, weapon, {}, nullptr));  // already have it
  EXPECT_TRUE(try_pickup(w, p, ammo, {}, nullptr));
  EXPECT_EQ(p.grenades, kStartGrenades + kAmmoGrenades);
}

TEST(Combat, HitscanHitsFacingTarget) {
  World w = make_world();
  Entity& shooter = w.spawn_player("s");
  Entity& target = w.spawn_player("t");
  // Line the target up 200 units east of the shooter.
  target.origin = shooter.origin + Vec3{200, 0, 0};
  w.relink(target);
  shooter.yaw_deg = 0.0f;  // facing +x
  CollectEvents ev;
  const auto r = fire_hitscan(w, shooter, 0.0f, {}, nullptr, &ev);
  EXPECT_TRUE(r.fired);
  EXPECT_TRUE(r.hit_player);
  EXPECT_EQ(r.victim, target.id);
  EXPECT_EQ(target.health, kSpawnHealth - kBlasterDamage);
}

TEST(Combat, HitscanMissesWhenFacingAway) {
  World w = make_world();
  Entity& shooter = w.spawn_player("s");
  Entity& target = w.spawn_player("t");
  target.origin = shooter.origin + Vec3{200, 0, 0};
  w.relink(target);
  shooter.yaw_deg = 180.0f;  // facing -x
  const auto r = fire_hitscan(w, shooter, 0.0f, {}, nullptr, nullptr);
  EXPECT_TRUE(r.fired);
  EXPECT_FALSE(r.hit_player);
  EXPECT_EQ(target.health, kSpawnHealth);
}

TEST(Combat, HitscanHitsNearestOfTwoTargets) {
  World w = make_world();
  Entity& shooter = w.spawn_player("s");
  Entity& near = w.spawn_player("near");
  Entity& far = w.spawn_player("far");
  near.origin = shooter.origin + Vec3{150, 0, 0};
  far.origin = shooter.origin + Vec3{300, 0, 0};
  w.relink(near);
  w.relink(far);
  shooter.yaw_deg = 0.0f;
  const auto r = fire_hitscan(w, shooter, 0.0f, {}, nullptr, nullptr);
  EXPECT_EQ(r.victim, near.id);
  EXPECT_EQ(far.health, kSpawnHealth);
}

TEST(Combat, CooldownPreventsRapidFire) {
  World w = make_world();
  Entity& shooter = w.spawn_player("s");
  EXPECT_TRUE(fire_hitscan(w, shooter, 0, {}, nullptr, nullptr).fired);
  EXPECT_FALSE(fire_hitscan(w, shooter, 0, {}, nullptr, nullptr).fired);
  const vt::TimePoint later = vt::TimePoint{} + kAttackCooldown;
  EXPECT_TRUE(fire_hitscan(w, shooter, 0, later, nullptr, nullptr).fired);
}

TEST(Combat, RailgunDoesMoreDamage) {
  World w = make_world();
  Entity& shooter = w.spawn_player("s");
  Entity& target = w.spawn_player("t");
  target.origin = shooter.origin + Vec3{200, 0, 0};
  w.relink(target);
  shooter.yaw_deg = 0.0f;
  shooter.weapon = Weapon::kRailgun;
  fire_hitscan(w, shooter, 0.0f, {}, nullptr, nullptr);
  EXPECT_EQ(target.health, kSpawnHealth - kRailgunDamage);
}

TEST(Combat, GrenadeConsumesAmmoAndQueuesProjectile) {
  World w = make_world();
  Entity& shooter = w.spawn_player("s");
  shooter.yaw_deg = 0.0f;
  // Fire into open space: the grenade should outlive the request-time
  // segment and be queued for the world phase.
  const auto r = throw_grenade(w, shooter, -10.0f, {}, nullptr, nullptr);
  EXPECT_TRUE(r.fired);
  EXPECT_EQ(shooter.grenades, kStartGrenades - 1);
  EXPECT_EQ(w.pending_projectiles(), 1u);
}

TEST(Combat, GrenadeOutOfAmmoDoesNotFire) {
  World w = make_world();
  Entity& shooter = w.spawn_player("s");
  shooter.grenades = 0;
  EXPECT_FALSE(throw_grenade(w, shooter, 0, {}, nullptr, nullptr).fired);
}

TEST(Combat, ExplosionDamagesByDistance) {
  World w = make_world();
  Entity& close = w.spawn_player("close");
  Entity& distant = w.spawn_player("far");
  const Vec3 at = close.origin + Vec3{10, 0, 0};
  distant.origin = close.origin + Vec3{90, 0, 0};
  w.relink(distant);
  CollectEvents ev;
  explode_at(w, 0, at, nullptr, &ev);
  EXPECT_LT(close.health, kSpawnHealth);
  EXPECT_LT(distant.health, kSpawnHealth);
  EXPECT_LT(kSpawnHealth - close.health + 0, 2 * (kSpawnHealth - distant.health) + 40);
  EXPECT_GT(kSpawnHealth - close.health, kSpawnHealth - distant.health);
  EXPECT_EQ(ev.count(EventKind::kExplosion), 1);
}

TEST(Combat, ExplosionOutOfRadiusIsHarmless) {
  World w = make_world();
  Entity& p = w.spawn_player("p");
  explode_at(w, 0, p.origin + Vec3{200, 0, 0}, nullptr, nullptr);
  EXPECT_EQ(p.health, kSpawnHealth);
}

TEST(WorldPhase, MaterializesAndFliesProjectiles) {
  World w = make_world();
  Entity& shooter = w.spawn_player("s");
  w.queue_projectile({shooter.id, shooter.origin + Vec3{0, 0, 10},
                      Vec3{1, 0, 0}, vt::TimePoint{} + vt::seconds(10)});
  CollectEvents ev;
  w.world_phase(vt::TimePoint{} + vt::millis(30), vt::millis(30), ev);
  EXPECT_EQ(w.pending_projectiles(), 0u);
  uint32_t proj_id = 0;
  w.for_each_entity([&](const Entity& e) {
    if (e.type == EntityType::kProjectile) proj_id = e.id;
  });
  ASSERT_NE(proj_id, 0u);
  const Vec3 first_pos = w.get(proj_id)->origin;
  w.world_phase(vt::TimePoint{} + vt::millis(60), vt::millis(30), ev);
  const Entity* proj = w.get(proj_id);
  if (proj != nullptr) {
    EXPECT_GT(proj->origin.x, first_pos.x);
  }
}

TEST(WorldPhase, ProjectileExplodesOnExpiry) {
  World w = make_world();
  Entity& shooter = w.spawn_player("s");
  w.queue_projectile({shooter.id, shooter.origin + Vec3{0, 0, 10},
                      Vec3{1, 0, 0}, vt::TimePoint{} + vt::millis(50)});
  CollectEvents ev;
  w.world_phase(vt::TimePoint{} + vt::millis(30), vt::millis(30), ev);
  // Expiry passed: next phase detonates it.
  w.world_phase(vt::TimePoint{} + vt::millis(60), vt::millis(30), ev);
  EXPECT_EQ(ev.count(EventKind::kExplosion), 1);
  size_t projectiles = 0;
  w.for_each_entity([&](const Entity& e) {
    projectiles += e.type == EntityType::kProjectile ? 1 : 0;
  });
  EXPECT_EQ(projectiles, 0u);
}

TEST(WorldPhase, ItemsRespawnAfterDelay) {
  World w = make_world();
  Entity& p = w.spawn_player("a");
  p.health = 10;
  Entity* item = nullptr;
  w.for_each_entity([&](Entity& e) {
    if (item == nullptr && e.type == EntityType::kItem &&
        e.item == spatial::ItemType::kHealth)
      item = &e;
  });
  ASSERT_NE(item, nullptr);
  CollectEvents ev;
  ASSERT_TRUE(try_pickup(w, p, *item, vt::TimePoint{}, &ev));
  w.world_phase(vt::TimePoint{} + vt::seconds(1), vt::seconds(1), ev);
  EXPECT_FALSE(item->available);
  w.world_phase(vt::TimePoint{} + kItemRespawn + vt::seconds(1), vt::seconds(1), ev);
  EXPECT_TRUE(item->available);
}

}  // namespace
}  // namespace qserv::sim
