// Multi-shard engine suite: router geometry, cross-shard session handoff
// under a live fleet, and the supervisor's failure state machine — crash
// detection, quarantine, checkpoint+journal-tail restoration with clients
// resuming in place, restore-budget exhaustion shedding sessions to
// neighbor shards, and the no-checkpoint rebuild path where clients come
// back via silence reconnect.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/shard_experiment.hpp"
#include "src/obs/fleet.hpp"
#include "src/obs/json_parse.hpp"
#include "src/obs/slo.hpp"
#include "src/obs/trace.hpp"
#include "src/shard/manager.hpp"
#include "src/shard/router.hpp"
#include "src/util/aabb.hpp"

namespace qserv {
namespace {

// --- router geometry -----------------------------------------------------

Aabb test_bounds() {
  Aabb b;
  b.mins = {-1000.0f, -500.0f, 0.0f};
  b.maxs = {1000.0f, 500.0f, 256.0f};
  return b;
}

TEST(ShardRouter, PartitionsXAxisIntoEqualSlabs) {
  shard::ShardRouter r(test_bounds(), 4, 0.0f);
  EXPECT_EQ(r.shards(), 4);
  EXPECT_FLOAT_EQ(r.slab_lo(0), -1000.0f);
  EXPECT_FLOAT_EQ(r.slab_hi(0), -500.0f);
  EXPECT_FLOAT_EQ(r.slab_lo(3), 500.0f);
  EXPECT_FLOAT_EQ(r.slab_hi(3), 1000.0f);
  EXPECT_EQ(r.shard_for({-999.0f, 0.0f, 0.0f}), 0);
  EXPECT_EQ(r.shard_for({-499.0f, 400.0f, 10.0f}), 1);
  EXPECT_EQ(r.shard_for({1.0f, 0.0f, 0.0f}), 2);
  EXPECT_EQ(r.shard_for({999.0f, 0.0f, 0.0f}), 3);
}

TEST(ShardRouter, ClampsPositionsOutsideTheMap) {
  shard::ShardRouter r(test_bounds(), 4, 0.0f);
  EXPECT_EQ(r.shard_for({-5000.0f, 0.0f, 0.0f}), 0);
  EXPECT_EQ(r.shard_for({5000.0f, 0.0f, 0.0f}), 3);
}

TEST(ShardRouter, HomeHysteresisHoldsResidentsNearTheBoundary) {
  shard::ShardRouter r(test_bounds(), 4, 24.0f);
  // x = -490 is inside shard 1's slab, 10 units past shard 0's edge:
  // a shard-0 resident stays home, a fresh join goes to shard 1.
  EXPECT_EQ(r.home_for(0, {-490.0f, 0.0f, 0.0f}), 0);
  EXPECT_EQ(r.shard_for({-490.0f, 0.0f, 0.0f}), 1);
  // Past the margin the resident is reassigned.
  EXPECT_EQ(r.home_for(0, {-470.0f, 0.0f, 0.0f}), 1);
  // An unknown current shard falls back to pure geometry.
  EXPECT_EQ(r.home_for(-1, {-490.0f, 0.0f, 0.0f}), 1);
}

// --- fleet soaks ---------------------------------------------------------

harness::ShardExperimentConfig base_cfg(int shards, int players) {
  harness::ShardExperimentConfig cfg;
  cfg.fleet.shards = shards;
  cfg.fleet.server.threads = 2;
  cfg.fleet.server.check_invariants = true;
  cfg.fleet.server.recovery.enabled = true;
  cfg.fleet.server.recovery.checkpoint_interval = 32;
  cfg.players = players;
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(4);
  cfg.seed = 11;
  return cfg;
}

TEST(ShardFleet, HandoffsFlowAndNoClientIsLost) {
  auto cfg = base_cfg(2, 24);
  // Tight margin: roaming bots cross the slab boundary and migrate.
  cfg.fleet.boundary_margin = 8.0f;
  const auto r = harness::run_shard_experiment(cfg);

  EXPECT_GT(r.handoffs_out, 0u);
  // Transfers still sitting in a mailbox at shutdown are bounded by the
  // fleet size; everything else must have been adopted.
  EXPECT_GE(r.handoffs_in + 2, r.handoffs_out);
  EXPECT_EQ(r.connected, cfg.players);
  // The counters reset at the warmup boundary, so a transfer extracted
  // during warmup but adopted during measurement reads as in > out —
  // clamp the in-flight estimate at zero.
  const int in_flight = r.handoffs_out > r.handoffs_in
                            ? static_cast<int>(r.handoffs_out -
                                               r.handoffs_in)
                            : 0;
  EXPECT_GE(r.shard_connected + in_flight, cfg.players);
  for (const auto& ps : r.shards) {
    EXPECT_FALSE(ps.down);
    EXPECT_EQ(ps.state, shard::ShardState::kHealthy);
    EXPECT_EQ(ps.invariant_violations, 0u);
    EXPECT_GT(ps.frames, 0u);
  }
}

TEST(ShardFleet, CrashedShardIsRestoredWithZeroClientLoss) {
  auto cfg = base_cfg(4, 32);
  // Pin sessions to their join shard so the crash is the only variable.
  cfg.fleet.boundary_margin = 1e9f;
  // Backstop only: in-place resume must beat this by orders of magnitude.
  cfg.client_silence_timeout = vt::seconds(2);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(1); });
  };
  const auto r = harness::run_shard_experiment(cfg);

  const auto& crashed = r.shards[1];
  EXPECT_EQ(crashed.escalations, 1u);
  EXPECT_EQ(crashed.restores, 1);
  EXPECT_EQ(crashed.state, shard::ShardState::kHealthy);
  EXPECT_FALSE(crashed.down);
  EXPECT_EQ(crashed.last_error, recovery::LoadError::kNone);
  // Sanity bound only: the pause is host-clock, so a parallel ctest run
  // on a loaded machine inflates it. bench_shard_failover enforces the
  // real 12.5 ms budget in a dedicated sequential smoke step.
  EXPECT_LT(crashed.last_pause_ms, 1000.0);
  // Every client survived, and none needed the reconnect backstop: the
  // restored engine resumed them in place.
  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_EQ(r.shard_connected, cfg.players);
  EXPECT_EQ(r.silence_reconnects, 0u);
  for (int i = 0; i < 4; ++i) {
    if (i == 1) continue;
    EXPECT_EQ(r.shards[static_cast<size_t>(i)].escalations, 0u) << i;
  }
}

TEST(ShardFleet, RestoreBudgetExhaustionShedsSessionsToNeighbors) {
  auto cfg = base_cfg(2, 16);
  cfg.fleet.boundary_margin = 1e9f;
  cfg.fleet.max_restores = 0;  // first failure goes straight to shedding
  cfg.client_silence_timeout = vt::seconds(2);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(0); });
  };
  const auto r = harness::run_shard_experiment(cfg);

  const auto& dead = r.shards[0];
  EXPECT_EQ(dead.state, shard::ShardState::kShed);
  EXPECT_TRUE(dead.down);
  EXPECT_GT(dead.shed_sessions, 0u);
  // All of shard 0's sessions were adopted by shard 1 and every client
  // kept its session (redirected, not reconnected).
  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_EQ(r.shard_connected, cfg.players);
  EXPECT_EQ(r.shards[1].state, shard::ShardState::kHealthy);
  EXPECT_GE(r.shards[1].handoffs_in, dead.shed_sessions);
}

// --- cascading-failure containment ---------------------------------------

// Re-crash the shard the moment each restore completes. The crash-loop
// circuit breaker must cut it off after crash_loop_max_rebuilds and shed
// its sessions — and the shed redirect machinery must keep every client
// connected without falling back to silence reconnects.
TEST(ShardFleet, CircuitBreakerShedsACrashLoopingShard) {
  auto cfg = base_cfg(2, 16);
  cfg.fleet.boundary_margin = 1e9f;
  cfg.fleet.max_restores = 10;  // the breaker, not the budget, decides
  cfg.fleet.crash_loop_max_rebuilds = 3;
  cfg.fleet.restore_backoff = vt::millis(1);
  cfg.fleet.restore_backoff_max = vt::millis(4);
  cfg.client_silence_timeout = vt::seconds(2);
  const int64_t end_ns = (cfg.warmup + cfg.measure).ns;
  cfg.schedule_faults = [end_ns](vt::Platform& p, shard::ShardManager& mgr) {
    vt::Platform* pp = &p;
    shard::ShardManager* m = &mgr;
    pp->call_after(vt::seconds_d(1.5), [m] { m->crash_shard(1); });
    // Poll: every restore that completes is followed by another crash.
    auto tick = std::make_shared<std::function<void()>>();
    auto seen = std::make_shared<int>(0);
    *tick = [pp, m, tick, seen, end_ns] {
      shard::Shard& s = m->shard(1);
      if (s.down() || pp->now().ns >= end_ns) return;
      if (s.restores() > *seen && !s.crash_flagged()) {
        *seen = s.restores();
        m->crash_shard(1);
      }
      pp->call_after(vt::millis(5), [tick] { (*tick)(); });
    };
    pp->call_after(vt::seconds_d(1.5), [tick] { (*tick)(); });
  };
  const auto r = harness::run_shard_experiment(cfg);

  const auto& dead = r.shards[1];
  EXPECT_EQ(dead.state, shard::ShardState::kShed);
  EXPECT_TRUE(dead.down);
  EXPECT_TRUE(dead.breaker_tripped);
  EXPECT_EQ(dead.shed_reason, "crash-loop");
  EXPECT_EQ(dead.restores, cfg.fleet.crash_loop_max_rebuilds);
  EXPECT_GT(dead.shed_sessions, 0u);
  // Shed sessions were adopted by shard 0 and redirected in place: no
  // client needed the silence backstop, none were lost.
  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_EQ(r.shard_connected, cfg.players);
  EXPECT_EQ(r.silence_reconnects, 0u);
  EXPECT_EQ(r.shards[0].state, shard::ShardState::kHealthy);
}

// A transfer parked in a quarantined shard's mailbox past adopt_timeout
// must be returned to its source shard by the supervisor, not stranded
// until the destination finally restores. The first restore of a
// quarantine is immediate by design, so the long unattended-mailbox
// window only opens on a RE-crash: the second rebuild waits out the full
// restore_backoff, and everything shard 0 mails across the boundary in
// that gap must bounce back.
TEST(ShardFleet, AdoptTimeoutReturnsStrandedHandoffsToSource) {
  auto cfg = base_cfg(2, 24);
  cfg.fleet.boundary_margin = 8.0f;  // roaming: handoffs flow both ways
  cfg.fleet.max_restores = 5;
  cfg.fleet.restore_backoff = vt::millis(1500);
  cfg.fleet.restore_backoff_max = vt::millis(1500);
  cfg.fleet.adopt_timeout = vt::millis(100);
  cfg.client_silence_timeout = vt::seconds(2);
  cfg.measure = vt::seconds(6);  // room for two crashes + the 1.5 s gap
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    vt::Platform* pp = &p;
    shard::ShardManager* m = &mgr;
    const int64_t give_up_ns = (cfg.warmup + vt::seconds(3)).ns;
    pp->call_after(cfg.warmup + vt::millis(500),
                   [m] { m->crash_shard(1); });
    // Re-crash the moment the first (immediate) restore completes.
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [pp, m, tick, give_up_ns] {
      if (pp->now().ns >= give_up_ns) return;
      shard::Shard& s = m->shard(1);
      if (s.restores() >= 1 && !s.crash_flagged() && !s.down()) {
        m->crash_shard(1);
        return;
      }
      pp->call_after(vt::millis(2), [tick] { (*tick)(); });
    };
    pp->call_after(cfg.warmup + vt::millis(500), [tick] { (*tick)(); });
  };
  const auto r = harness::run_shard_experiment(cfg);

  // Sessions that roamed toward the dead shard bounced back to shard 0
  // (which kept serving them) instead of stranding in the mailbox.
  EXPECT_GE(r.handoffs_returned, 1u);
  EXPECT_GE(r.shards[1].backoff_waits, 1u);
  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_EQ(r.shards[1].restores, 2);
  EXPECT_EQ(r.shards[1].state, shard::ShardState::kHealthy);
  EXPECT_EQ(r.shards[0].state, shard::ShardState::kHealthy);
}

// A bounded mailbox must refuse — and count — posts beyond its capacity
// instead of queueing without limit toward a destination that is not
// draining; the dropped clients recover through the silence backstop.
TEST(ShardFleet, MailboxOverflowShedsAreBoundedAndCounted) {
  auto cfg = base_cfg(2, 24);
  cfg.fleet.boundary_margin = 8.0f;
  cfg.fleet.mailbox_capacity = 1;
  cfg.fleet.adopt_timeout = vt::Duration{0};  // never reclaim: force overflow
  cfg.fleet.max_restores = 5;
  cfg.fleet.restore_backoff = vt::millis(1000);
  cfg.fleet.restore_backoff_max = vt::millis(1000);
  cfg.client_silence_timeout = vt::millis(600);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::millis(500),
                 [&mgr] { mgr.crash_shard(1); });
  };
  const auto r = harness::run_shard_experiment(cfg);

  EXPECT_GE(r.overflow_sheds, 1u);
  EXPECT_GE(r.silence_reconnects, 1u);  // dropped sessions rejoined
  EXPECT_EQ(r.connected, cfg.players);  // nobody stays lost
  EXPECT_EQ(r.shards[1].restores, 1);
  EXPECT_EQ(r.shards[1].state, shard::ShardState::kHealthy);
}

// Three of four shards down at once blows the quarantine cap (2): the
// lowest-priority quarantined shard — fewest heartbeat clients, ties to
// the highest index — is shed instead of restored, and the remaining two
// recover staggered, one rebuild per supervisor tick.
TEST(ShardFleet, QuarantineCapShedsLowestPriorityShard) {
  auto cfg = base_cfg(4, 32);
  cfg.fleet.boundary_margin = 1e9f;
  cfg.client_silence_timeout = vt::seconds(2);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::millis(500), [&mgr] {
      mgr.crash_shard(1);
      mgr.crash_shard(2);
      mgr.crash_shard(3);
    });
  };
  const auto r = harness::run_shard_experiment(cfg);

  // Equal client counts: the tie-break sheds the highest index.
  EXPECT_EQ(r.shards[3].state, shard::ShardState::kShed);
  EXPECT_EQ(r.shards[3].shed_reason, "quarantine-cap");
  for (int i = 1; i <= 2; ++i) {
    EXPECT_EQ(r.shards[static_cast<size_t>(i)].restores, 1) << i;
    EXPECT_EQ(r.shards[static_cast<size_t>(i)].state,
              shard::ShardState::kHealthy)
        << i;
  }
  EXPECT_EQ(r.shards[0].escalations, 0u);
  EXPECT_EQ(r.connected, cfg.players);
}

// A corrupted checkpoint image must walk the whole fallback chain:
// tail-replay is never attempted (the content checksum rejects the image
// up front), checkpoint-only has nothing better, so the shard comes back
// on a fresh rebuild and its clients rejoin via the silence backstop.
TEST(ShardFleet, CorruptCheckpointFallsBackToFreshRebuild) {
  auto cfg = base_cfg(2, 16);
  cfg.fleet.boundary_margin = 1e9f;
  cfg.client_silence_timeout = vt::millis(500);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] {
      mgr.shard(1).corrupt_next_capture();
      mgr.crash_shard(1);
    });
  };
  const auto r = harness::run_shard_experiment(cfg);

  const auto& crashed = r.shards[1];
  EXPECT_EQ(crashed.restores, 1);
  EXPECT_EQ(crashed.state, shard::ShardState::kHealthy);
  EXPECT_EQ(crashed.last_mode, shard::RestoreMode::kFreshRebuild);
  EXPECT_EQ(crashed.last_error, recovery::LoadError::kChecksum);
  EXPECT_GT(r.silence_reconnects, 0u);
  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_EQ(r.shard_connected, cfg.players);
}

TEST(ShardFleet, CrashWithoutCheckpointRebuildsEmptyAndClientsRejoin) {
  auto cfg = base_cfg(2, 12);
  cfg.fleet.boundary_margin = 1e9f;
  cfg.fleet.server.recovery.enabled = false;  // nothing to restore from
  cfg.client_silence_timeout = vt::millis(400);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(0); });
  };
  const auto r = harness::run_shard_experiment(cfg);

  const auto& crashed = r.shards[0];
  EXPECT_EQ(crashed.restores, 1);
  EXPECT_EQ(crashed.state, shard::ShardState::kHealthy);
  EXPECT_EQ(crashed.last_stats.tail_frames, 0u);
  // Sessions could not be restored, so clients noticed the silence and
  // rejoined the empty engine.
  EXPECT_GT(r.silence_reconnects, 0u);
  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_EQ(r.shard_connected, cfg.players);
}

TEST(ShardFleet, UnaffectedShardsReplayBitIdenticallyAcrossRuns) {
  auto cfg = base_cfg(3, 18);
  cfg.fleet.boundary_margin = 1e9f;
  const auto baseline = harness::run_shard_experiment(cfg);

  auto crash_cfg = cfg;
  crash_cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(2); });
  };
  const auto crashed = harness::run_shard_experiment(crash_cfg);
  ASSERT_EQ(crashed.shards[2].restores, 1);

  // Shards 0 and 1 never saw the failure: their per-frame journal digest
  // streams must match the uncrashed run bit for bit.
  for (int i = 0; i < 2; ++i) {
    const auto& a = baseline.shards[static_cast<size_t>(i)].journal_digests;
    const auto& b = crashed.shards[static_cast<size_t>(i)].journal_digests;
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size()) << "shard " << i;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].first, b[k].first) << "shard " << i << " idx " << k;
      ASSERT_EQ(a[k].second, b[k].second)
          << "shard " << i << " frame " << a[k].first;
    }
  }
}

// --- fleet observability plane -------------------------------------------

// Chrome-trace DOM helpers: event list, and the name each (pid,tid) row
// was given through thread_name metadata.
struct ParsedTrace {
  obs::JsonValue doc;
  const obs::JsonValue* events = nullptr;

  explicit ParsedTrace(const std::string& json) {
    std::string err;
    EXPECT_TRUE(obs::json_parse(json, doc, &err)) << err;
    events = doc.find("traceEvents");
  }
  std::string row_name(double pid, double tid) const {
    for (const obs::JsonValue& e : events->items)
      if (e.find("ph")->string_or("") == "M" &&
          e.find("name")->string_or("") == "thread_name" &&
          e.find("pid")->number_or(-1) == pid &&
          e.find("tid")->number_or(-1) == tid)
        return e.at_path("args.name")->string_or("");
    return {};
  }
  int count_instants_on(const std::string& row,
                        const std::string& name) const {
    int n = 0;
    for (const obs::JsonValue& e : events->items)
      if (e.find("ph")->string_or("") == "i" &&
          e.find("name")->string_or("") == name &&
          row_name(e.find("pid")->number_or(-1),
                   e.find("tid")->number_or(-1)) == row)
        ++n;
    return n;
  }
};

TEST(ShardFleetObs, HandoffFlowsStitchAcrossShardProcesses) {
  auto cfg = base_cfg(2, 24);
  cfg.fleet.boundary_margin = 8.0f;  // migrations on
  obs::Tracer tracer;
  obs::FleetObs::Config ocfg;
  ocfg.expected_clients = cfg.players;
  obs::FleetObs fleet(&tracer, ocfg);
  cfg.fleet_obs = &fleet;
  const auto r = harness::run_shard_experiment(cfg);

  ASSERT_GT(r.handoff_flows, 0u);
  EXPECT_GE(r.handoff_flows, r.handoffs_out);
  // Every adopted handoff fed the fleet latency histogram. The plane
  // counts from fleet start while the engines' counters reset at the
  // warmup boundary, so the histogram covers at least the measured
  // adoptions and at most the flows ever issued.
  const auto samples = fleet.fleet_metrics().snapshot();
  const obs::MetricSample* lat = nullptr;
  for (const auto& s : samples)
    if (s.name == "fleet.handoff.latency_ms") lat = &s;
  ASSERT_NE(lat, nullptr);
  EXPECT_GE(lat->count, r.handoffs_in);
  EXPECT_LE(lat->count, r.handoff_flows);

  // In the export, each stitched flow is an "s" on the source shard's
  // process and an "f" on the destination's — different pids.
  ParsedTrace trace(tracer.export_chrome_trace());
  ASSERT_NE(trace.events, nullptr);
  std::vector<std::pair<double, double>> starts, finishes;  // (id, pid)
  for (const obs::JsonValue& e : trace.events->items) {
    const std::string ph = e.find("ph")->string_or("");
    if (ph == "s")
      starts.emplace_back(e.find("id")->number_or(-1),
                          e.find("pid")->number_or(-1));
    else if (ph == "f")
      finishes.emplace_back(e.find("id")->number_or(-1),
                            e.find("pid")->number_or(-1));
  }
  EXPECT_FALSE(starts.empty());
  EXPECT_FALSE(finishes.empty());
  int stitched_across = 0;
  for (const auto& [id, spid] : starts)
    for (const auto& [fid, fpid] : finishes)
      if (fid == id && fpid != spid) ++stitched_across;
  EXPECT_GT(stitched_across, 0);
}

TEST(ShardFleetObs, RebuiltEngineKeepsTracingAndReporting) {
  auto cfg = base_cfg(2, 16);
  cfg.fleet.boundary_margin = 1e9f;
  cfg.client_silence_timeout = vt::seconds(2);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(1); });
  };
  obs::Tracer tracer;
  obs::FleetObs::Config ocfg;
  ocfg.expected_clients = cfg.players;
  obs::FleetObs fleet(&tracer, ocfg);
  cfg.fleet_obs = &fleet;
  const auto r = harness::run_shard_experiment(cfg);
  ASSERT_EQ(r.shards[1].restores, 1);

  // Regression: the supervisor-rebuilt engine must be re-attached to the
  // plane. Its generation-1 worker tracks exist and carry spans...
  int g1_track = -1;
  for (int t = 0; t < tracer.track_count(); ++t)
    if (tracer.track_name(t) == "shard-1/g1/t0") g1_track = t;
  ASSERT_NE(g1_track, -1)
      << "rebuilt engine was not re-attached to the tracer";
  EXPECT_GT(tracer.events(g1_track).size(), 0u)
      << "rebuilt engine recorded no spans after restore";
  EXPECT_EQ(tracer.track_pid(g1_track), fleet.shard_pid(1));

  // ...and its metrics registry kept counting: the shard's frame counter
  // (harvested post-run) must cover frames run after the restore.
  const auto samples = fleet.shard_metrics(1).snapshot();
  const obs::MetricSample* frames = nullptr;
  for (const auto& s : samples)
    if (s.name == "server.frames") frames = &s;
  ASSERT_NE(frames, nullptr);
  EXPECT_EQ(frames->value, static_cast<double>(r.shards[1].frames));
  EXPECT_GT(r.shards[1].frames, 0u);
}

TEST(ShardFleetObs, SupervisorTransitionsAppearAsInstants) {
  auto cfg = base_cfg(2, 16);
  cfg.fleet.boundary_margin = 1e9f;
  cfg.client_silence_timeout = vt::seconds(2);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(0); });
  };
  obs::Tracer tracer;
  obs::FleetObs fleet(&tracer);
  cfg.fleet_obs = &fleet;
  const auto r = harness::run_shard_experiment(cfg);
  ASSERT_EQ(r.shards[0].restores, 1);

  ParsedTrace trace(tracer.export_chrome_trace());
  ASSERT_NE(trace.events, nullptr);
  EXPECT_EQ(trace.count_instants_on("shard-0/supervisor",
                                    "quarantine:crash-flag"),
            1);
  EXPECT_EQ(trace.count_instants_on("shard-0/supervisor",
                                    "restore:tail-replay"),
            1);
  EXPECT_EQ(trace.count_instants_on("shard-1/supervisor",
                                    "quarantine:crash-flag"),
            0);
  // Supervisor counters federate into the fleet registry.
  const auto samples = fleet.fleet_metrics().snapshot();
  auto value_of = [&](const std::string& name) {
    for (const auto& s : samples)
      if (s.name == name) return s.value;
    return -1.0;
  };
  EXPECT_EQ(value_of("fleet.supervisor.escalations"), 1.0);
  EXPECT_EQ(value_of("fleet.supervisor.restores"), 1.0);
}

TEST(ShardFleetObs, PersistentClientLossBreachesTheSlo) {
  auto cfg = base_cfg(2, 12);
  cfg.fleet.boundary_margin = 1e9f;
  // No checkpoints and no reconnect backstop: the crashed shard comes
  // back empty and its clients stay gone for the rest of the run.
  cfg.fleet.server.recovery.enabled = false;
  cfg.measure = vt::seconds(3);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(0); });
  };
  // Only the lost-clients SLO: the recovery-pause spec is host-clock and
  // would flake under a parallel ctest run.
  obs::SloSpec lost_spec;
  lost_spec.name = "lost_clients";
  lost_spec.metric = "fleet.clients.lost";
  lost_spec.stat = obs::SloSpec::Stat::kValue;
  lost_spec.cmp = obs::SloSpec::Cmp::kLE;
  lost_spec.bound = 0.0;
  obs::FleetObs::Config ocfg;
  ocfg.slos = {lost_spec};
  ocfg.expected_clients = cfg.players;
  obs::FleetObs fleet(nullptr, ocfg);  // tracer-less plane still monitors
  cfg.fleet_obs = &fleet;
  const auto r = harness::run_shard_experiment(cfg);

  ASSERT_EQ(r.shards[0].restores, 1);
  EXPECT_EQ(r.silence_reconnects, 0u);  // no backstop configured
  ASSERT_FALSE(r.slo_breaches.empty())
      << "persistent client loss was not flagged";
  for (const auto& b : r.slo_breaches) {
    EXPECT_EQ(b.slo, "lost_clients");
    EXPECT_EQ(b.scope, "fleet");
    EXPECT_GT(b.observed, 0.0);
  }
}

}  // namespace
}  // namespace qserv
