// Multi-shard engine suite: router geometry, cross-shard session handoff
// under a live fleet, and the supervisor's failure state machine — crash
// detection, quarantine, checkpoint+journal-tail restoration with clients
// resuming in place, restore-budget exhaustion shedding sessions to
// neighbor shards, and the no-checkpoint rebuild path where clients come
// back via silence reconnect.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/harness/shard_experiment.hpp"
#include "src/shard/manager.hpp"
#include "src/shard/router.hpp"
#include "src/util/aabb.hpp"

namespace qserv {
namespace {

// --- router geometry -----------------------------------------------------

Aabb test_bounds() {
  Aabb b;
  b.mins = {-1000.0f, -500.0f, 0.0f};
  b.maxs = {1000.0f, 500.0f, 256.0f};
  return b;
}

TEST(ShardRouter, PartitionsXAxisIntoEqualSlabs) {
  shard::ShardRouter r(test_bounds(), 4, 0.0f);
  EXPECT_EQ(r.shards(), 4);
  EXPECT_FLOAT_EQ(r.slab_lo(0), -1000.0f);
  EXPECT_FLOAT_EQ(r.slab_hi(0), -500.0f);
  EXPECT_FLOAT_EQ(r.slab_lo(3), 500.0f);
  EXPECT_FLOAT_EQ(r.slab_hi(3), 1000.0f);
  EXPECT_EQ(r.shard_for({-999.0f, 0.0f, 0.0f}), 0);
  EXPECT_EQ(r.shard_for({-499.0f, 400.0f, 10.0f}), 1);
  EXPECT_EQ(r.shard_for({1.0f, 0.0f, 0.0f}), 2);
  EXPECT_EQ(r.shard_for({999.0f, 0.0f, 0.0f}), 3);
}

TEST(ShardRouter, ClampsPositionsOutsideTheMap) {
  shard::ShardRouter r(test_bounds(), 4, 0.0f);
  EXPECT_EQ(r.shard_for({-5000.0f, 0.0f, 0.0f}), 0);
  EXPECT_EQ(r.shard_for({5000.0f, 0.0f, 0.0f}), 3);
}

TEST(ShardRouter, HomeHysteresisHoldsResidentsNearTheBoundary) {
  shard::ShardRouter r(test_bounds(), 4, 24.0f);
  // x = -490 is inside shard 1's slab, 10 units past shard 0's edge:
  // a shard-0 resident stays home, a fresh join goes to shard 1.
  EXPECT_EQ(r.home_for(0, {-490.0f, 0.0f, 0.0f}), 0);
  EXPECT_EQ(r.shard_for({-490.0f, 0.0f, 0.0f}), 1);
  // Past the margin the resident is reassigned.
  EXPECT_EQ(r.home_for(0, {-470.0f, 0.0f, 0.0f}), 1);
  // An unknown current shard falls back to pure geometry.
  EXPECT_EQ(r.home_for(-1, {-490.0f, 0.0f, 0.0f}), 1);
}

// --- fleet soaks ---------------------------------------------------------

harness::ShardExperimentConfig base_cfg(int shards, int players) {
  harness::ShardExperimentConfig cfg;
  cfg.fleet.shards = shards;
  cfg.fleet.server.threads = 2;
  cfg.fleet.server.check_invariants = true;
  cfg.fleet.server.recovery.enabled = true;
  cfg.fleet.server.recovery.checkpoint_interval = 32;
  cfg.players = players;
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(4);
  cfg.seed = 11;
  return cfg;
}

TEST(ShardFleet, HandoffsFlowAndNoClientIsLost) {
  auto cfg = base_cfg(2, 24);
  // Tight margin: roaming bots cross the slab boundary and migrate.
  cfg.fleet.boundary_margin = 8.0f;
  const auto r = harness::run_shard_experiment(cfg);

  EXPECT_GT(r.handoffs_out, 0u);
  // Transfers still sitting in a mailbox at shutdown are bounded by the
  // fleet size; everything else must have been adopted.
  EXPECT_GE(r.handoffs_in + 2, r.handoffs_out);
  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_GE(r.shard_connected,
            cfg.players - static_cast<int>(r.handoffs_out - r.handoffs_in));
  for (const auto& ps : r.shards) {
    EXPECT_FALSE(ps.down);
    EXPECT_EQ(ps.state, shard::ShardState::kHealthy);
    EXPECT_EQ(ps.invariant_violations, 0u);
    EXPECT_GT(ps.frames, 0u);
  }
}

TEST(ShardFleet, CrashedShardIsRestoredWithZeroClientLoss) {
  auto cfg = base_cfg(4, 32);
  // Pin sessions to their join shard so the crash is the only variable.
  cfg.fleet.boundary_margin = 1e9f;
  // Backstop only: in-place resume must beat this by orders of magnitude.
  cfg.client_silence_timeout = vt::seconds(2);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(1); });
  };
  const auto r = harness::run_shard_experiment(cfg);

  const auto& crashed = r.shards[1];
  EXPECT_EQ(crashed.escalations, 1u);
  EXPECT_EQ(crashed.restores, 1);
  EXPECT_EQ(crashed.state, shard::ShardState::kHealthy);
  EXPECT_FALSE(crashed.down);
  EXPECT_EQ(crashed.last_error, recovery::LoadError::kNone);
  // Sanity bound only: the pause is host-clock, so a parallel ctest run
  // on a loaded machine inflates it. bench_shard_failover enforces the
  // real 12.5 ms budget in a dedicated sequential smoke step.
  EXPECT_LT(crashed.last_pause_ms, 1000.0);
  // Every client survived, and none needed the reconnect backstop: the
  // restored engine resumed them in place.
  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_EQ(r.shard_connected, cfg.players);
  EXPECT_EQ(r.silence_reconnects, 0u);
  for (int i = 0; i < 4; ++i) {
    if (i == 1) continue;
    EXPECT_EQ(r.shards[static_cast<size_t>(i)].escalations, 0u) << i;
  }
}

TEST(ShardFleet, RestoreBudgetExhaustionShedsSessionsToNeighbors) {
  auto cfg = base_cfg(2, 16);
  cfg.fleet.boundary_margin = 1e9f;
  cfg.fleet.max_restores = 0;  // first failure goes straight to shedding
  cfg.client_silence_timeout = vt::seconds(2);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(0); });
  };
  const auto r = harness::run_shard_experiment(cfg);

  const auto& dead = r.shards[0];
  EXPECT_EQ(dead.state, shard::ShardState::kShed);
  EXPECT_TRUE(dead.down);
  EXPECT_GT(dead.shed_sessions, 0u);
  // All of shard 0's sessions were adopted by shard 1 and every client
  // kept its session (redirected, not reconnected).
  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_EQ(r.shard_connected, cfg.players);
  EXPECT_EQ(r.shards[1].state, shard::ShardState::kHealthy);
  EXPECT_GE(r.shards[1].handoffs_in, dead.shed_sessions);
}

TEST(ShardFleet, CrashWithoutCheckpointRebuildsEmptyAndClientsRejoin) {
  auto cfg = base_cfg(2, 12);
  cfg.fleet.boundary_margin = 1e9f;
  cfg.fleet.server.recovery.enabled = false;  // nothing to restore from
  cfg.client_silence_timeout = vt::millis(400);
  cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(0); });
  };
  const auto r = harness::run_shard_experiment(cfg);

  const auto& crashed = r.shards[0];
  EXPECT_EQ(crashed.restores, 1);
  EXPECT_EQ(crashed.state, shard::ShardState::kHealthy);
  EXPECT_EQ(crashed.last_stats.tail_frames, 0u);
  // Sessions could not be restored, so clients noticed the silence and
  // rejoined the empty engine.
  EXPECT_GT(r.silence_reconnects, 0u);
  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_EQ(r.shard_connected, cfg.players);
}

TEST(ShardFleet, UnaffectedShardsReplayBitIdenticallyAcrossRuns) {
  auto cfg = base_cfg(3, 18);
  cfg.fleet.boundary_margin = 1e9f;
  const auto baseline = harness::run_shard_experiment(cfg);

  auto crash_cfg = cfg;
  crash_cfg.schedule_faults = [&](vt::Platform& p, shard::ShardManager& mgr) {
    p.call_after(cfg.warmup + vt::seconds(1), [&mgr] { mgr.crash_shard(2); });
  };
  const auto crashed = harness::run_shard_experiment(crash_cfg);
  ASSERT_EQ(crashed.shards[2].restores, 1);

  // Shards 0 and 1 never saw the failure: their per-frame journal digest
  // streams must match the uncrashed run bit for bit.
  for (int i = 0; i < 2; ++i) {
    const auto& a = baseline.shards[static_cast<size_t>(i)].journal_digests;
    const auto& b = crashed.shards[static_cast<size_t>(i)].journal_digests;
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size()) << "shard " << i;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].first, b[k].first) << "shard " << i << " idx " << k;
      ASSERT_EQ(a[k].second, b[k].second)
          << "shard " << i << " frame " << a[k].first;
    }
  }
}

}  // namespace
}  // namespace qserv
