#include <gtest/gtest.h>

#include <vector>

#include "src/net/bytestream.hpp"
#include "src/net/netchan.hpp"
#include "src/net/protocol.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::net {
namespace {

using vt::Domain;
using vt::millis;
using vt::micros;
using vt::TimePoint;

TEST(ByteStream, RoundTripsAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f32(3.25f);
  w.vec3({1.5f, -2.5f, 100.0f});
  w.str("hello, quake");
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_FLOAT_EQ(r.f32(), 3.25f);
  EXPECT_EQ(r.vec3(), Vec3(1.5f, -2.5f, 100.0f));
  EXPECT_EQ(r.str(), "hello, quake");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteStream, OverflowPoisonsReader) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_EQ(r.u32(), 0u);  // past the end
  EXPECT_TRUE(r.overflowed());
  EXPECT_FALSE(r.ok());
  // Further reads stay zero and safe.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.str(), "");
}

TEST(ByteStream, TruncatedStringIsSafe) {
  ByteWriter w;
  w.u16(100);  // claims 100 bytes, provides none
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Protocol, MoveCmdRoundTrip) {
  MoveCmd m;
  m.sequence = 77;
  m.client_time_ns = 123456789;
  m.msec = 30;
  m.yaw_deg = 45.0f;
  m.pitch_deg = -10.0f;
  m.forward = 320.0f;
  m.side = -40.0f;
  m.up = 0.0f;
  m.buttons = kButtonAttack | kButtonJump;
  const auto bytes = encode(m);
  ByteReader r(bytes);
  ClientMsgType type;
  ASSERT_TRUE(decode_client_type(r, type));
  EXPECT_EQ(type, ClientMsgType::kMove);
  MoveCmd out;
  ASSERT_TRUE(decode(r, out));
  EXPECT_EQ(out.sequence, m.sequence);
  EXPECT_EQ(out.client_time_ns, m.client_time_ns);
  EXPECT_EQ(out.msec, m.msec);
  EXPECT_FLOAT_EQ(out.yaw_deg, m.yaw_deg);
  EXPECT_FLOAT_EQ(out.forward, m.forward);
  EXPECT_EQ(out.buttons, m.buttons);
}

TEST(Protocol, ConnectRoundTrip) {
  const auto bytes = encode(ConnectMsg{"bot-42"});
  ByteReader r(bytes);
  ClientMsgType type;
  ASSERT_TRUE(decode_client_type(r, type));
  EXPECT_EQ(type, ClientMsgType::kConnect);
  ConnectMsg out;
  ASSERT_TRUE(decode(r, out));
  EXPECT_EQ(out.name, "bot-42");
}

TEST(Protocol, SnapshotRoundTrip) {
  Snapshot s;
  s.server_frame = 999;
  s.ack_sequence = 55;
  s.client_time_echo_ns = 42;
  s.origin = {1, 2, 3};
  s.velocity = {-1, 0, 9};
  s.health = 75;
  s.armor = 50;
  s.frags = -2;
  s.entities.push_back({7, 1, {10, 20, 30}, 90.0f, 2});
  s.entities.push_back({9, 2, {-5, 0, 24}, 180.0f, 0});
  s.events.push_back({3, 7, 9, {0, 0, 0}});
  const auto bytes = encode(s);
  ByteReader r(bytes);
  ServerMsgType type;
  ASSERT_TRUE(decode_server_type(r, type));
  EXPECT_EQ(type, ServerMsgType::kSnapshot);
  Snapshot out;
  ASSERT_TRUE(decode(r, out));
  EXPECT_EQ(out.server_frame, 999u);
  EXPECT_EQ(out.ack_sequence, 55u);
  EXPECT_EQ(out.frags, -2);
  ASSERT_EQ(out.entities.size(), 2u);
  EXPECT_EQ(out.entities[0].id, 7u);
  EXPECT_EQ(out.entities[1].origin, Vec3(-5, 0, 24));
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].a, 7u);
}

TEST(Protocol, GarbageIsRejected) {
  const std::vector<uint8_t> garbage{0xff, 0x00, 0x13};
  ByteReader r(garbage);
  ClientMsgType type;
  EXPECT_FALSE(decode_client_type(r, type));
  ByteReader r2(garbage);
  ServerMsgType stype;
  EXPECT_FALSE(decode_server_type(r2, stype));
}

VirtualNetwork::Config lossless() {
  VirtualNetwork::Config c;
  c.latency = millis(2);
  c.jitter = {};
  c.loss = 0.0f;
  return c;
}

TEST(VirtualUdp, OpenCollisionIsTypedNotFatal) {
  vt::SimPlatform p;
  VirtualNetwork net(p, lossless());
  auto first = net.open(700);
  OpenError err = OpenError::kNone;
  auto second = net.try_open(700, &err);
  EXPECT_EQ(second, nullptr);
  EXPECT_EQ(err, OpenError::kPortInUse);
  // Releasing the first socket frees the port.
  first.reset();
  auto third = net.try_open(700, &err);
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(err, OpenError::kNone);
  EXPECT_EQ(third->port(), 700);
}

TEST(VirtualUdp, DeliversAfterLatency) {
  vt::SimPlatform p;
  VirtualNetwork net(p, lossless());
  auto a = net.open(1000);
  auto b = net.open(2000);
  TimePoint got{};
  std::vector<uint8_t> payload;
  p.spawn("rx", Domain::kServer, [&] {
    auto sel = net.make_selector();
    sel->add(*b);
    ASSERT_TRUE(sel->wait_until(TimePoint{} + millis(100)));
    Datagram d;
    ASSERT_TRUE(b->try_recv(d));
    got = p.now();
    payload = d.payload;
    EXPECT_EQ(d.src_port, 1000);
    EXPECT_EQ(d.dst_port, 2000);
  });
  p.spawn("tx", Domain::kClientFarm, [&] {
    p.sleep_for(millis(1));
    EXPECT_TRUE(a->send(2000, {1, 2, 3}));
  });
  p.run();
  EXPECT_EQ(got.ns, millis(3).ns);  // sent at 1ms + 2ms latency
  EXPECT_EQ(payload, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(VirtualUdp, NotReadyBeforeDeliveryTime) {
  vt::SimPlatform p;
  VirtualNetwork net(p, lossless());
  auto a = net.open(1);
  auto b = net.open(2);
  p.spawn("t", Domain::kServer, [&] {
    a->send(2, {9});
    Datagram d;
    EXPECT_FALSE(b->try_recv(d));  // still in flight
    EXPECT_EQ(b->queued(), 1u);
    p.sleep_for(millis(2));
    EXPECT_TRUE(b->try_recv(d));
  });
  p.run();
}

TEST(VirtualUdp, SelectorTimesOutWithoutTraffic) {
  vt::SimPlatform p;
  VirtualNetwork net(p, lossless());
  auto s = net.open(5);
  TimePoint woke{};
  p.spawn("t", Domain::kServer, [&] {
    auto sel = net.make_selector();
    sel->add(*s);
    EXPECT_FALSE(sel->wait_until(TimePoint{} + millis(7)));
    woke = p.now();
  });
  p.run();
  EXPECT_EQ(woke.ns, millis(7).ns);
}

TEST(VirtualUdp, SelectorWaitsAcrossMultipleSockets) {
  vt::SimPlatform p;
  VirtualNetwork net(p, lossless());
  auto s1 = net.open(11);
  auto s2 = net.open(12);
  auto tx = net.open(13);
  int got_on = 0;
  p.spawn("rx", Domain::kServer, [&] {
    auto sel = net.make_selector();
    sel->add(*s1);
    sel->add(*s2);
    ASSERT_TRUE(sel->wait_until(TimePoint{} + millis(100)));
    Datagram d;
    if (s2->try_recv(d)) got_on = 2;
    if (s1->try_recv(d)) got_on = 1;
  });
  p.spawn("tx", Domain::kClientFarm, [&] {
    p.sleep_for(millis(3));
    tx->send(12, {1});
  });
  p.run();
  EXPECT_EQ(got_on, 2);
}

TEST(VirtualUdp, PokeInterruptsWait) {
  vt::SimPlatform p;
  VirtualNetwork net(p, lossless());
  auto s = net.open(20);
  auto sel = net.make_selector();
  sel->add(*s);
  TimePoint woke{};
  p.spawn("rx", Domain::kServer, [&] {
    EXPECT_FALSE(sel->wait_until(TimePoint{} + vt::seconds(10)));
    woke = p.now();
  });
  p.call_after(millis(5), [&] { sel->poke(); });
  p.run();
  EXPECT_EQ(woke.ns, millis(5).ns);
}

TEST(VirtualUdp, SendToClosedPortIsCounted) {
  vt::SimPlatform p;
  VirtualNetwork net(p, lossless());
  auto a = net.open(1);
  p.spawn("t", Domain::kServer, [&] {
    EXPECT_FALSE(a->send(999, {1, 2}));
  });
  p.run();
  EXPECT_EQ(net.packets_to_closed_ports(), 1u);
}

TEST(VirtualUdp, ReceiveBufferOverflowDropsExcess) {
  vt::SimPlatform p;
  auto cfg = lossless();
  cfg.socket_buffer = 16;
  VirtualNetwork net(p, cfg);
  auto a = net.open(1);
  auto b = net.open(2);
  int delivered = 0;
  p.spawn("t", Domain::kServer, [&] {
    for (int i = 0; i < 100; ++i) a->send(2, {static_cast<uint8_t>(i)});
    p.sleep_for(millis(10));
    Datagram d;
    while (b->try_recv(d)) ++delivered;
  });
  p.run();
  EXPECT_EQ(delivered, 16);
  EXPECT_EQ(net.packets_overflowed(), 84u);
}

TEST(VirtualUdp, LossModelDropsRoughlyTheConfiguredFraction) {
  vt::SimPlatform p;
  auto cfg = lossless();
  cfg.loss = 0.25f;
  cfg.seed = 99;
  cfg.socket_buffer = 4096;
  VirtualNetwork net(p, cfg);
  auto a = net.open(1);
  auto b = net.open(2);
  int delivered = 0;
  p.spawn("t", Domain::kServer, [&] {
    for (int i = 0; i < 1000; ++i) a->send(2, {static_cast<uint8_t>(i)});
    p.sleep_for(millis(10));
    Datagram d;
    while (b->try_recv(d)) ++delivered;
  });
  p.run();
  EXPECT_EQ(net.packets_sent(), 1000u);
  EXPECT_NEAR(static_cast<double>(net.packets_dropped()), 250.0, 60.0);
  EXPECT_EQ(delivered, 1000 - static_cast<int>(net.packets_dropped()));
}

TEST(VirtualUdp, JitterCanReorderButQueueStaysTimeOrdered) {
  vt::SimPlatform p;
  auto cfg = lossless();
  cfg.latency = millis(5);
  cfg.jitter = millis(3);
  cfg.seed = 4;
  VirtualNetwork net(p, cfg);
  auto a = net.open(1);
  auto b = net.open(2);
  std::vector<TimePoint> arrival;
  p.spawn("t", Domain::kServer, [&] {
    for (uint8_t i = 0; i < 50; ++i) a->send(2, {i});
    Datagram d;
    for (int i = 0; i < 50; ++i) {
      p.sleep_for(micros(100));
      while (b->try_recv(d)) arrival.push_back(d.deliver_at);
      if (arrival.size() == 50) break;
    }
    p.sleep_for(millis(20));
    while (b->try_recv(d)) arrival.push_back(d.deliver_at);
  });
  p.run();
  ASSERT_EQ(arrival.size(), 50u);
  for (size_t i = 1; i < arrival.size(); ++i)
    EXPECT_GE(arrival[i].ns, arrival[i - 1].ns);
}

TEST(VirtualUdp, DeterministicWithSameSeed) {
  auto fingerprint = [] {
    vt::SimPlatform p;
    auto cfg = VirtualNetwork::Config{};
    cfg.jitter = micros(300);
    cfg.loss = 0.1f;
    cfg.seed = 77;
    VirtualNetwork net(p, cfg);
    auto a = net.open(1);
    auto b = net.open(2);
    int64_t fp = 0;
    p.spawn("t", Domain::kServer, [&] {
      for (uint8_t i = 0; i < 100; ++i) a->send(2, {i});
      p.sleep_for(millis(50));
      Datagram d;
      while (b->try_recv(d)) fp = fp * 31 + d.deliver_at.ns + d.payload[0];
    });
    p.run();
    return fp;
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

TEST(NetChannel, FramesAndSequences) {
  vt::SimPlatform p;
  VirtualNetwork net(p, lossless());
  auto a = net.open(1);
  auto b = net.open(2);
  p.spawn("t", Domain::kServer, [&] {
    NetChannel ca(*a, 2);
    NetChannel cb(*b, 1);
    ca.send({10, 20});
    ca.send({30});
    p.sleep_for(millis(5));
    Datagram d;
    NetChannel::Incoming info;
    ByteReader body(nullptr, 0);
    ASSERT_TRUE(b->try_recv(d));
    ASSERT_TRUE(cb.accept(d, info, body));
    EXPECT_EQ(info.sequence, 1u);
    EXPECT_FALSE(info.duplicate_or_old);
    EXPECT_EQ(body.remaining(), 2u);
    EXPECT_EQ(body.u8(), 10);
    ASSERT_TRUE(b->try_recv(d));
    ASSERT_TRUE(cb.accept(d, info, body));
    EXPECT_EQ(info.sequence, 2u);
    EXPECT_EQ(cb.packets_accepted(), 2u);
  });
  p.run();
}

TEST(NetChannel, DetectsDropsAndDuplicates) {
  vt::SimPlatform p;
  VirtualNetwork net(p, lossless());
  auto a = net.open(1);
  auto b = net.open(2);
  p.spawn("t", Domain::kServer, [&] {
    NetChannel cb(*b, 1);
    // Hand-craft packets: seq 1, then seq 4 (2 dropped), then seq 4 again.
    auto mk = [](uint32_t seq) {
      ByteWriter w;
      w.u32(seq);
      w.u32(0);
      w.u8(7);
      return w.take();
    };
    a->send(2, mk(1));
    a->send(2, mk(4));
    a->send(2, mk(4));
    p.sleep_for(millis(5));
    Datagram d;
    NetChannel::Incoming info;
    ByteReader body(nullptr, 0);
    ASSERT_TRUE(b->try_recv(d));
    ASSERT_TRUE(cb.accept(d, info, body));
    EXPECT_EQ(info.dropped_before, 0u);
    ASSERT_TRUE(b->try_recv(d));
    ASSERT_TRUE(cb.accept(d, info, body));
    EXPECT_EQ(info.dropped_before, 2u);
    EXPECT_FALSE(info.duplicate_or_old);
    ASSERT_TRUE(b->try_recv(d));
    ASSERT_TRUE(cb.accept(d, info, body));
    EXPECT_TRUE(info.duplicate_or_old);
    EXPECT_EQ(cb.drops_detected(), 2u);
    EXPECT_EQ(cb.duplicates_rejected(), 1u);
  });
  p.run();
}

TEST(NetChannel, RejectsRuntPackets) {
  vt::SimPlatform p;
  VirtualNetwork net(p, lossless());
  auto b = net.open(2);
  NetChannel cb(*b, 1);
  Datagram d;
  d.payload = {1, 2, 3};  // shorter than the header
  NetChannel::Incoming info;
  ByteReader body(nullptr, 0);
  EXPECT_FALSE(cb.accept(d, info, body));
}

}  // namespace
}  // namespace qserv::net
