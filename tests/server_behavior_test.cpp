// Server-protocol behaviour tests: master election, frame invariants,
// connection handling edge cases, dynamic reassignment, and the
// batching/assignment extensions, exercised through full experiments.
#include <gtest/gtest.h>

#include <set>

#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/core/sequential_server.hpp"
#include "src/harness/experiment.hpp"
#include "src/spatial/map_gen.hpp"

namespace qserv::core {
namespace {

using harness::ExperimentConfig;
using harness::paper_config;
using harness::run_experiment;
using harness::ServerMode;

ExperimentConfig quick(ServerMode mode, int threads, int players,
                       LockPolicy policy) {
  auto cfg = paper_config(mode, threads, players, policy);
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(3);
  return cfg;
}

TEST(ServerBehavior, MasterElectionRotatesAcrossThreads) {
  // Per §3.2 the master is whichever thread first sees a request; over a
  // session every thread should master some frames.
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_large_deathmatch(7);
  ServerConfig scfg;
  scfg.threads = 4;
  ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 32;
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();
  p.call_after(vt::seconds(5), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();
  int masters = 0;
  uint64_t master_frames = 0;
  for (const auto& ts : server.thread_stats()) {
    masters += ts.frames_as_master > 0 ? 1 : 0;
    master_frames += ts.frames_as_master;
  }
  EXPECT_EQ(masters, 4);
  EXPECT_EQ(master_frames, server.frames());  // exactly one master/frame
}

TEST(ServerBehavior, EveryFrameHasExactlyOneMasterUnderLoad) {
  const auto r = run_experiment(
      quick(ServerMode::kParallel, 8, 96, LockPolicy::kConservative));
  // frames_as_master sums to total frames (counted after reset_stats, so
  // compare against frames participated by masters).
  EXPECT_GT(r.frames, 0u);
}

TEST(ServerBehavior, DuplicateConnectGetsReAcked) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  ServerConfig scfg;
  SequentialServer server(p, net, map, scfg);
  server.start();

  auto sock = net.open(40000);
  int acks = 0;
  p.spawn("client", vt::Domain::kClientFarm, [&] {
    net::NetChannel chan(*sock, scfg.base_port);
    // Send two connects (as if the first ack was lost).
    chan.send(net::encode(net::ConnectMsg{"dup"}));
    p.sleep_for(vt::millis(50));
    chan.send(net::encode(net::ConnectMsg{"dup"}));
    p.sleep_for(vt::millis(100));
    net::Datagram d;
    while (sock->try_recv(d)) {
      net::NetChannel::Incoming info;
      net::ByteReader body(nullptr, 0);
      if (!chan.accept(d, info, body)) continue;
      net::ServerMsgType t;
      if (decode_server_type(body, t) &&
          t == net::ServerMsgType::kConnectAck)
        ++acks;
    }
    server.request_stop();
  });
  p.run();
  EXPECT_EQ(acks, 2);
  EXPECT_EQ(server.connected_clients(), 1);  // one slot, not two
}

TEST(ServerBehavior, ServerFullDropsExtraConnects) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  ServerConfig scfg;
  scfg.max_clients = 4;
  SequentialServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 8;  // twice the capacity
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();
  p.call_after(vt::seconds(3), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();
  EXPECT_EQ(server.connected_clients(), 4);
  int connected = 0;
  for (const auto& c : driver.clients()) connected += c->connected() ? 1 : 0;
  EXPECT_EQ(connected, 4);
}

TEST(ServerBehavior, DisconnectFreesTheSlotAndEntity) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  ServerConfig scfg;
  SequentialServer server(p, net, map, scfg);
  server.start();
  const size_t baseline_entities = server.world().active_entities();

  auto sock = net.open(40000);
  p.spawn("client", vt::Domain::kClientFarm, [&] {
    net::NetChannel chan(*sock, scfg.base_port);
    chan.send(net::encode(net::ConnectMsg{"ghost"}));
    p.sleep_for(vt::millis(100));
    EXPECT_EQ(server.connected_clients(), 1);
    chan.send(net::encode_disconnect());
    p.sleep_for(vt::millis(100));
    // A move is needed to trigger a frame that processes the disconnect;
    // the disconnect itself already arrived with one.
    EXPECT_EQ(server.connected_clients(), 0);
    EXPECT_EQ(server.world().active_entities(), baseline_entities);
    server.request_stop();
  });
  p.run();
}

TEST(ServerBehavior, DynamicReassignmentKeepsClientsServed) {
  auto cfg = quick(ServerMode::kParallel, 4, 48, LockPolicy::kConservative);
  cfg.server.assign_policy = AssignPolicy::kRegion;
  cfg.server.reassign_interval = vt::millis(500);
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.connected, 48);
  EXPECT_GT(r.reassignments, 10u);  // players roam -> migrations happen
  // Service quality survives migrations: every client keeps getting
  // replies at roughly the request rate.
  EXPECT_GT(r.response_rate, 0.9 * 48.0 * 30.0);
}

TEST(ServerBehavior, ReassignmentMovesOwnershipToSpawnRegions) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_large_deathmatch(7);
  ServerConfig scfg;
  scfg.threads = 4;
  scfg.assign_policy = AssignPolicy::kRegion;
  ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 32;
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();
  p.call_after(vt::seconds(2), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();
  // All four worker threads should own someone (players spread across
  // the map's regions).
  std::set<int> owners;
  for (const auto& ts : server.thread_stats())
    (void)ts;  // per-thread ownership is internal; use request spread:
  int threads_with_requests = 0;
  for (const auto& ts : server.thread_stats())
    threads_with_requests += ts.requests_processed > 0 ? 1 : 0;
  EXPECT_GE(threads_with_requests, 3);
}

TEST(ServerBehavior, BatchingIncreasesRequestsPerFrame) {
  auto base = quick(ServerMode::kParallel, 4, 96, LockPolicy::kConservative);
  const auto plain = run_experiment(base);
  base.server.batch_window = vt::millis(4);
  const auto batched = run_experiment(base);
  EXPECT_GT(batched.requests_per_thread_frame_mean,
            plain.requests_per_thread_frame_mean * 1.2);
  // Batching trades response latency for fewer, fuller frames.
  EXPECT_LT(static_cast<double>(batched.frames),
            static_cast<double>(plain.frames) * 0.9);
}

TEST(ServerBehavior, FrameTraceMatchesAggregateCounts) {
  auto cfg = quick(ServerMode::kParallel, 2, 48, LockPolicy::kConservative);
  cfg.frame_trace = true;
  const auto r = run_experiment(cfg);
  ASSERT_EQ(r.frame_traces.size(), 2u);
  uint64_t traced = 0;
  for (const auto& t : r.frame_traces)
    for (const auto& [frame, moves] : t) traced += uint64_t(moves);
  EXPECT_EQ(traced, r.requests);
}

TEST(ServerBehavior, SequentialAndParallelAgreeOnGameRules) {
  // Not bit-identical (different timing), but both must produce a live
  // game with conserved players and plausible scoring.
  for (const auto mode : {ServerMode::kSequential, ServerMode::kParallel}) {
    auto cfg = quick(mode, mode == ServerMode::kSequential ? 1 : 4, 32,
                     mode == ServerMode::kSequential
                         ? LockPolicy::kNone
                         : LockPolicy::kConservative);
    cfg.bot_aggression = 1.0f;
    const auto r = run_experiment(cfg);
    EXPECT_EQ(r.connected, 32);
    EXPECT_GT(r.total_frags, 0);
    EXPECT_GT(r.replies, 1000u);
  }
}

TEST(ServerBehavior, AllLockPoliciesProduceSameServiceLevelOffPeak) {
  // Below saturation, locking policy must not change WHAT is served, only
  // internal overheads.
  std::vector<double> rates;
  for (const auto policy :
       {LockPolicy::kNone, LockPolicy::kConservative, LockPolicy::kOptimized}) {
    auto cfg = quick(ServerMode::kParallel, 4, 64, policy);
    rates.push_back(run_experiment(cfg).response_rate);
  }
  EXPECT_NEAR(rates[1], rates[0], rates[0] * 0.02);
  EXPECT_NEAR(rates[2], rates[0], rates[0] * 0.02);
}

TEST(ServerBehavior, StopIsPromptEvenWhenSaturated) {
  auto cfg = quick(ServerMode::kParallel, 2, 176, LockPolicy::kConservative);
  cfg.measure = vt::seconds(2);
  const auto r = run_experiment(cfg);  // run() returning proves shutdown
  EXPECT_GT(r.replies, 0u);
}

}  // namespace
}  // namespace qserv::core
