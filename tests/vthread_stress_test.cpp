// Stress and property tests for the virtual-time platform: determinism
// across machine shapes, CPU-time conservation, hyper-threading
// throughput bounds, and synchronization under heavy fiber churn.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/util/rng.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::vt {
namespace {

struct MachineShape {
  int cores;
  int ht;
  double tp;
};

class MachineSweep : public ::testing::TestWithParam<MachineShape> {};

// Property: on any machine shape, a mixed workload of compute, sleeps and
// locking is bit-deterministic across runs.
TEST_P(MachineSweep, MixedWorkloadIsDeterministic) {
  const auto shape = GetParam();
  auto run_once = [&] {
    SimPlatform::MachineConfig mc;
    mc.cores = shape.cores;
    mc.ht_per_core = shape.ht;
    mc.ht_throughput = shape.tp;
    SimPlatform p(mc);
    auto mu = p.make_mutex("m");
    auto cv = p.make_condvar();
    int turnstile = 0;
    int64_t fingerprint = 0;
    for (int i = 0; i < 10; ++i) {
      p.spawn("w" + std::to_string(i), Domain::kServer, [&, i] {
        Rng rng(static_cast<uint64_t>(i) + 1);
        for (int k = 0; k < 50; ++k) {
          p.compute(micros(rng.range(10, 200)));
          mu->lock();
          fingerprint = fingerprint * 31 + p.now().ns % 1009 + i;
          ++turnstile;
          cv->signal();
          mu->unlock();
          if (rng.chance(0.3f)) p.sleep_for(micros(rng.range(1, 100)));
          if (rng.chance(0.1f)) p.yield();
        }
      });
    }
    p.run();
    return std::pair{fingerprint, p.events_processed()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// Property: total computed virtual CPU time never exceeds
// wall-time x peak machine throughput.
TEST_P(MachineSweep, CpuThroughputIsBounded) {
  const auto shape = GetParam();
  SimPlatform::MachineConfig mc;
  mc.cores = shape.cores;
  mc.ht_per_core = shape.ht;
  mc.ht_throughput = shape.tp;
  SimPlatform p(mc);
  const int fibers = shape.cores * shape.ht + 3;  // oversubscribe
  const Duration work = millis(20);
  for (int i = 0; i < fibers; ++i) {
    p.spawn("w" + std::to_string(i), Domain::kServer,
            [&] { p.compute(work); });
  }
  p.run();
  const double total_work =
      static_cast<double>(work.ns) * static_cast<double>(fibers);
  const double peak_throughput =
      static_cast<double>(shape.cores) * (shape.ht > 1 ? shape.tp : 1.0);
  const double min_wall = total_work / peak_throughput;
  // Wall time can't beat the machine's peak throughput...
  EXPECT_GE(static_cast<double>(p.now().ns), min_wall * 0.999);
  // ...and with a saturating workload it should be close to it.
  EXPECT_LE(static_cast<double>(p.now().ns), min_wall * 1.6);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MachineSweep,
                         ::testing::Values(MachineShape{1, 1, 1.0},
                                           MachineShape{1, 2, 1.25},
                                           MachineShape{2, 1, 1.0},
                                           MachineShape{2, 2, 1.3},
                                           MachineShape{4, 2, 1.25},
                                           MachineShape{8, 1, 1.0}));

TEST(SimPlatformStress, ManyFibersManyLocks) {
  SimPlatform p;
  constexpr int kFibers = 100;
  constexpr int kLocks = 8;
  std::vector<std::unique_ptr<Mutex>> mus;
  for (int i = 0; i < kLocks; ++i)
    mus.push_back(p.make_mutex("m" + std::to_string(i)));
  std::vector<int> counters(kLocks, 0);
  for (int f = 0; f < kFibers; ++f) {
    p.spawn("f" + std::to_string(f), Domain::kServer, [&, f] {
      Rng rng(static_cast<uint64_t>(f) * 7 + 1);
      for (int k = 0; k < 40; ++k) {
        // Lock a run of mutexes in ascending order (deadlock-free).
        const int first = static_cast<int>(rng.below(kLocks));
        const int span = 1 + static_cast<int>(rng.below(3));
        for (int m = first; m < std::min(first + span, kLocks); ++m)
          mus[static_cast<size_t>(m)]->lock();
        p.compute(micros(5));
        for (int m = first; m < std::min(first + span, kLocks); ++m)
          ++counters[static_cast<size_t>(m)];
        for (int m = std::min(first + span, kLocks) - 1; m >= first; --m)
          mus[static_cast<size_t>(m)]->unlock();
      }
    });
  }
  p.run();
  const int total = std::accumulate(counters.begin(), counters.end(), 0);
  EXPECT_GT(total, kFibers * 40);  // every iteration touched >= 1 lock
}

TEST(SimPlatformStress, SleepOrderingIsExact) {
  SimPlatform p;
  std::vector<int> order;
  Rng rng(4);
  std::vector<int64_t> delays;
  for (int i = 0; i < 50; ++i) delays.push_back(rng.range(1, 100000));
  for (int i = 0; i < 50; ++i) {
    p.spawn("s" + std::to_string(i), Domain::kServer, [&, i] {
      p.sleep_until(TimePoint{delays[static_cast<size_t>(i)]});
      order.push_back(i);
    });
  }
  p.run();
  // Wake order must match sorted delay order (ties by spawn order).
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  std::stable_sort(expected.begin(), expected.end(), [&](int a, int b) {
    return delays[static_cast<size_t>(a)] < delays[static_cast<size_t>(b)];
  });
  EXPECT_EQ(order, expected);
}

TEST(SimPlatformStress, ComputeSlicesInterleaveFairlyOnOneCpu) {
  SimPlatform::MachineConfig mc;
  mc.cores = 1;
  mc.ht_per_core = 1;
  SimPlatform p(mc);
  // Two fibers alternating small compute slices: FIFO queueing should
  // interleave them rather than starving one.
  std::vector<int> sequence;
  for (int f = 0; f < 2; ++f) {
    p.spawn("f" + std::to_string(f), Domain::kServer, [&, f] {
      for (int k = 0; k < 10; ++k) {
        p.compute(micros(10));
        sequence.push_back(f);
      }
    });
  }
  p.run();
  int switches = 0;
  for (size_t i = 1; i < sequence.size(); ++i)
    switches += sequence[i] != sequence[i - 1] ? 1 : 0;
  EXPECT_GE(switches, 10);  // strict alternation would give 19
}

TEST(SimPlatformStress, HyperThreadThroughputMatchesModelExactly) {
  // Two saturating fibers on one 2-way HT core for T seconds must retire
  // exactly ht_throughput x T of nominal work.
  SimPlatform::MachineConfig mc;
  mc.cores = 1;
  mc.ht_per_core = 2;
  mc.ht_throughput = 1.25;
  SimPlatform p(mc);
  Duration done[2] = {};
  for (int f = 0; f < 2; ++f) {
    p.spawn("f" + std::to_string(f), Domain::kServer, [&, f] {
      while (p.now() < TimePoint{} + seconds(1)) {
        p.compute(micros(100));
        done[f] += micros(100);
      }
    });
  }
  p.run();
  const double total = static_cast<double>((done[0] + done[1]).ns);
  EXPECT_NEAR(total, 1.25e9, 2e6);  // 1.25 seconds of nominal work
  // And it was split evenly between the symmetric contexts.
  EXPECT_NEAR(static_cast<double>(done[0].ns),
              static_cast<double>(done[1].ns), 4e5);
}

TEST(SimPlatformStress, EventLimitGuardsRunawayLoops) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimPlatform p;
        p.set_event_limit(1000);
        p.spawn("spin", Domain::kServer, [&] {
          for (;;) p.yield();
        });
        p.run();
      },
      "event limit");
}

TEST(SimPlatformStress, CondVarHerdWakesExactlyOnce) {
  SimPlatform p;
  auto mu = p.make_mutex("m");
  auto cv = p.make_condvar();
  int woken = 0;
  int token = 0;
  for (int i = 0; i < 20; ++i) {
    p.spawn("w" + std::to_string(i), Domain::kServer, [&] {
      mu->lock();
      while (token == 0) cv->wait(*mu);
      --token;
      ++woken;
      mu->unlock();
    });
  }
  p.spawn("post", Domain::kServer, [&] {
    for (int i = 0; i < 20; ++i) {
      p.sleep_for(micros(100));
      mu->lock();
      ++token;
      cv->signal();
      mu->unlock();
    }
  });
  p.run();
  EXPECT_EQ(woken, 20);
}

}  // namespace
}  // namespace qserv::vt
