// Delta-compressed snapshot tests: wire-level encode/decode laws, the
// server/client baseline negotiation, and loss robustness.
#include <gtest/gtest.h>

#include "src/net/virtual_udp.hpp"
#include "src/harness/experiment.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/net/protocol.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/util/rng.hpp"

namespace qserv::net {
namespace {

EntityUpdate ent(uint32_t id, Vec3 origin, float yaw = 0, uint8_t state = 1,
                 uint8_t type = 1) {
  EntityUpdate e;
  e.id = id;
  e.origin = origin;
  e.yaw_deg = yaw;
  e.state = state;
  e.type = type;
  return e;
}

BaselineLookup lookup_of(uint32_t frame,
                         const std::vector<EntityUpdate>& baseline) {
  return [frame, &baseline](uint32_t f) -> const std::vector<EntityUpdate>* {
    return f == frame ? &baseline : nullptr;
  };
}

bool entities_equal(const EntityUpdate& a, const EntityUpdate& b) {
  return a.id == b.id && a.origin == b.origin && a.yaw_deg == b.yaw_deg &&
         a.state == b.state && a.type == b.type;
}

// Law: decode_delta(encode_delta(now, base), base) == now (up to entity
// ordering, which the decoder normalizes by id).
TEST(DeltaSnapshot, RoundTripReconstructsExactly) {
  Rng rng(3);
  std::vector<EntityUpdate> baseline;
  for (uint32_t id = 1; id <= 30; ++id) {
    baseline.push_back(
        ent(id, rng.point_in({-100, -100, 0}, {100, 100, 50}),
            rng.uniform(0, 360)));
  }
  Snapshot now;
  now.server_frame = 100;
  now.ack_sequence = 55;
  now.health = 73;
  now.frags = 4;
  // Mixed change-set: some unchanged, some moved, some new, some gone.
  for (uint32_t id = 1; id <= 30; ++id) {
    if (id % 5 == 0) continue;  // removed
    EntityUpdate e = baseline[id - 1];
    if (id % 2 == 0) e.origin += Vec3{10, 0, 0};  // moved
    if (id % 3 == 0) e.state = 0;                 // state change
    now.entities.push_back(e);
  }
  now.entities.push_back(ent(99, {5, 5, 5}, 45, 1, 2));  // new
  now.events.push_back({3, 1, 2, {1, 2, 3}});

  int encoded = -1;
  const auto bytes = encode_delta(now, baseline, 90, &encoded);
  EXPECT_LT(encoded, static_cast<int>(now.entities.size()));  // some skipped

  ByteReader r(bytes);
  ServerMsgType type;
  ASSERT_TRUE(decode_server_type(r, type));
  ASSERT_EQ(type, ServerMsgType::kDeltaSnapshot);
  Snapshot out;
  ASSERT_TRUE(decode_delta(r, lookup_of(90, baseline), out));

  EXPECT_EQ(out.server_frame, 100u);
  EXPECT_EQ(out.ack_sequence, 55u);
  EXPECT_EQ(out.health, 73);
  EXPECT_EQ(out.frags, 4);
  EXPECT_EQ(out.baseline_frame, 90u);
  ASSERT_EQ(out.entities.size(), now.entities.size());
  // Decoder emits in id order; compare as sets keyed by id.
  auto sorted = now.entities;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_TRUE(entities_equal(out.entities[i], sorted[i]))
        << "entity " << sorted[i].id;
  }
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].kind, 3);
}

TEST(DeltaSnapshot, UnchangedWorldCostsAlmostNothing) {
  std::vector<EntityUpdate> baseline;
  for (uint32_t id = 1; id <= 100; ++id) baseline.push_back(ent(id, {1, 2, 3}));
  Snapshot now;
  now.entities = baseline;
  int encoded = -1;
  const auto delta_bytes = encode_delta(now, baseline, 7, &encoded);
  const auto full_bytes = encode(now);
  EXPECT_EQ(encoded, 0);
  EXPECT_LT(delta_bytes.size(), full_bytes.size() / 10);
}

TEST(DeltaSnapshot, MissingBaselineFailsCleanly) {
  std::vector<EntityUpdate> baseline{ent(1, {0, 0, 0})};
  Snapshot now;
  now.entities = baseline;
  const auto bytes = encode_delta(now, baseline, 42, nullptr);
  ByteReader r(bytes);
  ServerMsgType type;
  ASSERT_TRUE(decode_server_type(r, type));
  Snapshot out;
  EXPECT_FALSE(decode_delta(
      r, [](uint32_t) -> const std::vector<EntityUpdate>* { return nullptr; },
      out));
}

TEST(DeltaSnapshot, DeltaAgainstEmptyBaselineIsAFullEncoding) {
  Snapshot now;
  for (uint32_t id = 1; id <= 5; ++id) now.entities.push_back(ent(id, {1, 1, 1}));
  const std::vector<EntityUpdate> empty;
  int encoded = -1;
  const auto bytes = encode_delta(now, empty, 1, &encoded);
  EXPECT_EQ(encoded, 5);
  ByteReader r(bytes);
  ServerMsgType type;
  ASSERT_TRUE(decode_server_type(r, type));
  Snapshot out;
  ASSERT_TRUE(decode_delta(r, lookup_of(1, empty), out));
  EXPECT_EQ(out.entities.size(), 5u);
}

}  // namespace
}  // namespace qserv::net

namespace qserv {
namespace {

harness::ExperimentConfig delta_cfg(int players, bool delta) {
  auto cfg = harness::paper_config(harness::ServerMode::kParallel, 2, players,
                                   core::LockPolicy::kConservative);
  cfg.server.delta_snapshots = delta;
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(4);
  return cfg;
}

TEST(DeltaSnapshotE2E, GameWorksAndClientsDecodeDeltas) {
  const auto r = harness::run_experiment(delta_cfg(48, true));
  EXPECT_EQ(r.connected, 48);
  EXPECT_GT(r.replies, 3000u);
  EXPECT_GT(r.response_rate, 0.9 * 48 * 30.0);
}

TEST(DeltaSnapshotE2E, DeltasDominateOnceWarm) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.delta_snapshots = true;
  core::ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 24;
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();
  p.call_after(vt::seconds(5), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();
  uint64_t full = 0, delta = 0, undecodable = 0;
  for (const auto& c : driver.clients()) {
    full += c->metrics().full_snapshots;
    delta += c->metrics().delta_snapshots;
    undecodable += c->metrics().undecodable_deltas;
  }
  EXPECT_GT(delta, full * 5);  // steady state is delta-encoded
  EXPECT_EQ(undecodable, 0u);  // lossless network: every delta decodes
}

TEST(DeltaSnapshotE2E, ReducesBytesOnTheWire) {
  auto measure_bytes = [](bool delta) {
    vt::SimPlatform p;
    net::VirtualNetwork net(p, {});
    const auto map = spatial::make_large_deathmatch(7);
    core::ServerConfig scfg;
    scfg.threads = 2;
    scfg.delta_snapshots = delta;
    core::ParallelServer server(p, net, map, scfg);
    bots::ClientDriver::Config dcfg;
    dcfg.players = 48;
    bots::ClientDriver driver(p, net, map, server, dcfg);
    server.start();
    driver.start();
    p.call_after(vt::seconds(4), [&] {
      server.request_stop();
      driver.request_stop();
    });
    p.run();
    return net.bytes_sent();
  };
  const uint64_t full = measure_bytes(false);
  const uint64_t delta = measure_bytes(true);
  EXPECT_LT(static_cast<double>(delta), static_cast<double>(full) * 0.75);
}

TEST(DeltaSnapshotE2E, SurvivesPacketLossViaFullFallback) {
  vt::SimPlatform p;
  net::VirtualNetwork::Config nc;
  nc.loss = 0.15f;
  nc.seed = 3;
  net::VirtualNetwork net(p, nc);
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.delta_snapshots = true;
  core::ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 24;
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();
  p.call_after(vt::seconds(6), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();
  uint64_t replies = 0, undecodable = 0;
  for (const auto& c : driver.clients()) {
    replies += c->metrics().replies;
    undecodable += c->metrics().undecodable_deltas;
  }
  // The game keeps flowing under loss; lost baselines self-heal because
  // clients keep advertising their newest reconstructed frame.
  EXPECT_GT(replies, 2000u);
  // A lost snapshot whose successor referenced it produces at most a
  // brief stall, never a wedge (bounded undecodable count).
  EXPECT_LT(static_cast<double>(undecodable),
            static_cast<double>(replies) * 0.1);
}

}  // namespace
}  // namespace qserv
