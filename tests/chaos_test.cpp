// Chaos suite: client-lifecycle hardening under scheduled network faults
// and client churn. Covers the FaultScheduler timeline, server-side
// liveness reaping (client_timeout), explicit reject messages, partition
// heal/reconnect, the reassignment-vs-churn race, and a long churn soak
// with the cross-structure InvariantChecker enabled throughout. Every
// test runs on the simulated platform with fixed seeds and must pass
// deterministically.
#include <gtest/gtest.h>

#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/core/sequential_server.hpp"
#include "src/harness/shard_experiment.hpp"
#include "src/net/fault_scheduler.hpp"
#include "src/shard/manager.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/real_platform.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv {
namespace {

constexpr vt::TimePoint t0 = vt::TimePoint::zero();

// --- FaultScheduler unit tests (no network attached) ---

TEST(FaultScheduler, BlackholeDropsBothDirectionsWhileActive) {
  net::FaultScheduler fs(1);
  fs.add_blackhole(t0 + vt::seconds(1), vt::seconds(2), 40000);

  EXPECT_FALSE(fs.apply(t0 + vt::millis(500), 40000, 27500).drop);
  EXPECT_TRUE(fs.apply(t0 + vt::millis(1500), 40000, 27500).drop);
  EXPECT_TRUE(fs.apply(t0 + vt::millis(1500), 27500, 40000).drop);
  EXPECT_FALSE(fs.apply(t0 + vt::millis(1500), 40001, 27500).drop);
  EXPECT_FALSE(fs.apply(t0 + vt::seconds(3), 40000, 27500).drop);
  EXPECT_EQ(fs.counters().blackhole_drops, 2u);
}

TEST(FaultScheduler, PartitionSeversOnlyCrossTraffic) {
  net::FaultScheduler fs(1);
  fs.add_partition(t0, vt::seconds(10), 40000, 49999, 27500, 27599);

  const vt::TimePoint mid = t0 + vt::seconds(5);
  EXPECT_TRUE(fs.apply(mid, 40005, 27500).drop);   // A -> B
  EXPECT_TRUE(fs.apply(mid, 27501, 41000).drop);   // B -> A
  EXPECT_FALSE(fs.apply(mid, 40001, 40002).drop);  // within A
  EXPECT_FALSE(fs.apply(mid, 27500, 27501).drop);  // within B
  EXPECT_FALSE(fs.apply(mid, 50001, 27500).drop);  // outside A
  EXPECT_EQ(fs.counters().partition_drops, 2u);
  EXPECT_EQ(fs.active_at(mid), 1);
  EXPECT_EQ(fs.active_at(t0 + vt::seconds(11)), 0);
}

TEST(FaultScheduler, LatencySpikesAccumulateAndExpire) {
  net::FaultScheduler fs(1);
  fs.add_latency_spike(t0, vt::seconds(2), vt::millis(100));
  fs.add_latency_spike(t0 + vt::seconds(1), vt::seconds(2), vt::millis(50));

  EXPECT_EQ(fs.apply(t0 + vt::millis(500), 1, 2).extra_latency.ns,
            vt::millis(100).ns);
  EXPECT_EQ(fs.apply(t0 + vt::millis(1500), 1, 2).extra_latency.ns,
            vt::millis(150).ns);  // both spikes active: they stack
  EXPECT_EQ(fs.apply(t0 + vt::millis(2500), 1, 2).extra_latency.ns,
            vt::millis(50).ns);
  EXPECT_EQ(fs.apply(t0 + vt::seconds(4), 1, 2).extra_latency.ns, 0);
  EXPECT_EQ(fs.counters().delayed_packets, 3u);
}

TEST(FaultScheduler, TotalLossBurstDropsEverything) {
  net::FaultScheduler fs(1);
  fs.add_loss_burst(t0, vt::seconds(1), 1.0f);
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(fs.apply(t0 + vt::millis(i * 10), 1, 2).drop);
  EXPECT_EQ(fs.counters().burst_drops, 100u);
  EXPECT_FALSE(fs.apply(t0 + vt::seconds(2), 1, 2).drop);
}

// --- full-system chaos tests ---

// A client that connects, plays briefly, then goes silent while still
// listening must be reaped: slot freed, entity removed, and told so with
// an explicit kEvicted reject.
TEST(Chaos, SilentClientIsReapedAndToldSo) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  core::ServerConfig scfg;
  scfg.client_timeout = vt::millis(500);
  scfg.check_invariants = true;
  core::SequentialServer server(p, net, map, scfg);
  server.start();
  const size_t baseline_entities = server.world().active_entities();

  auto sock = net.open(40000);
  bool got_evicted = false;
  p.spawn("client", vt::Domain::kClientFarm, [&] {
    net::NetChannel chan(*sock, scfg.base_port);
    chan.send(net::encode(net::ConnectMsg{"sleepy"}));
    p.sleep_for(vt::millis(100));
    EXPECT_EQ(server.connected_clients(), 1);
    // Go silent for well past client_timeout, but keep the port bound.
    p.sleep_for(vt::seconds(2));
    net::Datagram d;
    while (sock->try_recv(d)) {
      net::NetChannel::Incoming info;
      net::ByteReader body(nullptr, 0);
      if (!chan.accept(d, info, body)) continue;
      net::ServerMsgType t;
      if (!net::decode_server_type(body, t)) continue;
      if (t != net::ServerMsgType::kReject) continue;
      net::RejectMsg rej;
      if (decode(body, rej) && rej.reason == net::RejectReason::kEvicted)
        got_evicted = true;
    }
    server.request_stop();
  });
  p.run();

  EXPECT_TRUE(got_evicted);
  EXPECT_EQ(server.evictions(), 1u);
  EXPECT_EQ(server.connected_clients(), 0);
  EXPECT_EQ(server.world().active_entities(), baseline_entities);
  EXPECT_EQ(server.invariant_violations(), 0u);
}

// A blackholed client (crashed host: nothing in, nothing out) must be
// reaped even though the server sees no traffic at all afterwards — the
// idle loop has to run maintenance frames.
TEST(Chaos, BlackholedClientIsReapedByAnOtherwiseIdleServer) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  core::ServerConfig scfg;
  scfg.client_timeout = vt::millis(500);
  scfg.check_invariants = true;
  core::SequentialServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 1;
  bots::ClientDriver driver(p, net, map, server, dcfg);

  net.faults().add_blackhole(t0 + vt::seconds(1), vt::seconds(60), 40000);

  server.start();
  driver.start();
  p.call_after(vt::seconds(4), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();

  EXPECT_EQ(server.evictions(), 1u);
  EXPECT_EQ(server.connected_clients(), 0);
  EXPECT_GT(net.faults().counters().blackhole_drops, 0u);
  EXPECT_EQ(server.invariant_violations(), 0u);
}

// Satellite regression: a full server answers surplus connects with an
// explicit kServerFull reject, and rejected clients stop retrying instead
// of hammering the port forever (the seed silently dropped the connect,
// leaving clients in a retry loop).
TEST(Chaos, ServerFullRejectStopsConnectRetries) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  core::ServerConfig scfg;
  scfg.max_clients = 4;
  core::SequentialServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 8;  // twice the capacity
  bots::ClientDriver driver(p, net, map, server, dcfg);
  server.start();
  driver.start();
  p.call_after(vt::seconds(3), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();

  EXPECT_EQ(server.connected_clients(), 4);
  EXPECT_GE(server.rejected_connects(), 4u);
  int connected = 0, rejected = 0;
  for (const auto& c : driver.clients()) {
    if (c->connected()) {
      ++connected;
      EXPECT_FALSE(c->rejected());
    } else {
      EXPECT_TRUE(c->rejected());
      EXPECT_GE(c->metrics().rejected_full, 1u);
      // Rejected clients never joined and never sent game traffic.
      EXPECT_EQ(c->metrics().sessions, 0u);
      EXPECT_EQ(c->metrics().moves_sent, 0u);
      ++rejected;
    }
  }
  EXPECT_EQ(connected, 4);
  EXPECT_EQ(rejected, 4);
}

// A network partition between all clients and the server: clients go
// silent (reaped server-side), give up on the silent server, and once the
// partition heals everyone reconnects on fresh ports.
TEST(Chaos, HealedPartitionLetsEveryClientReconnect) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.client_timeout = vt::seconds(1);
  scfg.check_invariants = true;
  core::ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 8;
  dcfg.server_silence_timeout = vt::seconds(1);
  bots::ClientDriver driver(p, net, map, server, dcfg);

  // Sever every client port (initial block and all fresh reconnect ports)
  // from the server's ports between t=3s and t=8s.
  net.faults().add_partition(t0 + vt::seconds(3), vt::seconds(5), 40000,
                             65535, scfg.base_port,
                             static_cast<uint16_t>(scfg.base_port + 7));

  server.start();
  driver.start();
  p.call_after(vt::seconds(16), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();

  // During the partition every client went silent past client_timeout...
  EXPECT_EQ(server.evictions(), 8u);
  EXPECT_GT(net.faults().counters().partition_drops, 0u);
  // ...and after it healed, every client reconnected.
  int connected = 0;
  uint64_t silence_reconnects = 0;
  for (const auto& c : driver.clients()) {
    connected += c->connected() ? 1 : 0;
    silence_reconnects += c->metrics().silence_reconnects;
  }
  EXPECT_EQ(connected, 8);
  EXPECT_EQ(server.connected_clients(), 8);
  EXPECT_GE(silence_reconnects, 8u);
  EXPECT_EQ(server.invariant_violations(), 0u);
}

// Satellite: dynamic reassignment racing with disconnects and evictions.
// Clients churn (crash + quit) while the master re-partitions ownership
// every 500 ms; the registry, world, and areanode tree must stay
// consistent through every combination.
TEST(Chaos, ReassignmentRacesChurnWithoutCorruption) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 4;
  scfg.assign_policy = core::AssignPolicy::kRegion;
  scfg.reassign_interval = vt::millis(500);
  scfg.client_timeout = vt::seconds(1);
  scfg.check_invariants = true;
  core::ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 24;
  dcfg.server_silence_timeout = vt::seconds(2);
  dcfg.churn.enabled = true;
  dcfg.churn.mean_session = vt::seconds(5);
  dcfg.churn.crash_fraction = 0.5f;
  bots::ClientDriver driver(p, net, map, server, dcfg);

  server.start();
  driver.start();
  p.call_after(vt::seconds(30), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();

  const auto agg = driver.aggregate(vt::seconds(30));
  EXPECT_GT(server.reassignments(), 0u);
  EXPECT_GT(server.evictions(), 0u);  // crashed clients were reaped
  EXPECT_GT(agg.crashes, 0u);
  EXPECT_GT(agg.graceful_quits, 0u);
  EXPECT_GT(agg.rejoins, 0u);
  EXPECT_EQ(server.invariant_violations(), 0u)
      << "registry/world/areanode audit failed during reassignment churn";
  // No slot leak: live slots never exceed the player population plus
  // crashed slots still inside the timeout window.
  EXPECT_LE(server.connected_clients(), 24 + 4);
}

// The tentpole soak: ~30% of sessions end in a crash, the rest quit
// cleanly, for 10 simulated minutes, with the cross-structure invariant
// audit running after every frame. No slot may leak: the server stays
// joinable for the whole population to the end.
TEST(Chaos, TenMinuteChurnSoakLeaksNoSlots) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(2048);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.client_timeout = vt::seconds(2);
  scfg.check_invariants = true;
  scfg.max_clients = 64;  // headroom a slot leak would exhaust
  core::ParallelServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 12;
  dcfg.server_silence_timeout = vt::seconds(3);
  dcfg.churn.enabled = true;
  dcfg.churn.mean_session = vt::seconds(20);
  dcfg.churn.crash_fraction = 0.3f;
  bots::ClientDriver driver(p, net, map, server, dcfg);

  server.start();
  driver.start();
  p.call_after(vt::seconds(600), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();

  const auto agg = driver.aggregate(vt::seconds(600));
  // The churn actually happened, in both flavors.
  EXPECT_GT(agg.sessions, 100u);
  EXPECT_GT(agg.crashes, 10u);
  EXPECT_GT(agg.graceful_quits, 10u);
  EXPECT_GT(agg.rejoins, 50u);

  // Every crash was eventually reaped (the last few may still be inside
  // the timeout window at shutdown).
  EXPECT_GE(server.evictions() + 2, agg.crashes);
  // Zero slot leak: the server never filled up, so nobody was rejected,
  // and the live slot count stays bounded by the population plus the
  // handful of crashed slots awaiting the reaper.
  EXPECT_EQ(agg.rejected_full, 0u);
  EXPECT_EQ(server.rejected_connects(), 0u);
  EXPECT_LE(server.connected_clients(), 12 + 4);
  // The whole run passed the registry/world/areanode audit every frame.
  EXPECT_EQ(server.invariant_violations(), 0u);
}

// Satellite regression: when an evicted client's slot is reused by the
// next joiner, none of the old session's delta-snapshot state may leak —
// the reject goes out before teardown, the slot's baseline history is
// cleared, and the newcomer decodes every delta against its own session's
// baselines only. With max_clients == 1 every rejoin is guaranteed to
// land in the reaped client's slot.
TEST(Chaos, EvictedSlotReuseLeaksNoStaleDeltaHistory) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  core::ServerConfig scfg;
  scfg.max_clients = 1;
  scfg.delta_snapshots = true;
  scfg.client_timeout = vt::millis(300);
  scfg.check_invariants = true;
  core::SequentialServer server(p, net, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 1;
  dcfg.churn.enabled = true;
  dcfg.churn.mean_session = vt::seconds(2);
  dcfg.churn.crash_fraction = 1.0f;  // always vanish; the reaper must act
  dcfg.churn.rejoin_delay = vt::seconds(1);  // re-join after the reap
  bots::ClientDriver driver(p, net, map, server, dcfg);

  server.start();
  driver.start();
  p.call_after(vt::seconds(20), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();

  const auto& m = driver.clients()[0]->metrics();
  // The slot really cycled several times through crash -> reap -> rejoin.
  EXPECT_GE(m.sessions, 4u);
  EXPECT_GE(server.evictions(), 3u);
  EXPECT_EQ(m.rejected_full, 0u);  // the reaped slot was free every time
  // Deltas flowed in every session, and not one referenced a baseline
  // from a previous tenant of the slot: a leaked history entry would
  // surface as an undecodable delta on the fresh client.
  EXPECT_GT(m.delta_snapshots, 0u);
  EXPECT_GT(m.full_snapshots, 0u);  // each new session starts from a full
  EXPECT_EQ(m.undecodable_deltas, 0u);
  EXPECT_EQ(server.invariant_violations(), 0u);
}

// --- sharded fleet under chaos -------------------------------------------

// Four shards, a tight boundary margin so roaming bots keep migrating
// between engines, a fleet-wide loss burst, and a hard
// partition cutting every client off from one shard. The fleet must come
// out with every client holding a session, zero invariant violations, and
// — critically — zero supervisor escalations: network chaos starves a
// shard of *requests*, but its frame loop keeps beating, so the stall
// detector must not mistake packet loss for engine failure.
TEST(ShardChaos, FourShardFaultSoakKeepsEveryClient) {
  harness::ShardExperimentConfig cfg;
  cfg.fleet.shards = 4;
  cfg.fleet.server.threads = 2;
  cfg.fleet.server.check_invariants = true;
  cfg.fleet.server.recovery.enabled = true;
  cfg.fleet.server.recovery.checkpoint_interval = 32;
  cfg.fleet.server.client_timeout = vt::seconds(1);
  cfg.fleet.boundary_margin = 8.0f;  // bots cross slab boundaries
  cfg.players = 32;
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(9);
  cfg.client_silence_timeout = vt::seconds(1);
  cfg.seed = 29;
  cfg.configure_network = [](net::VirtualNetwork& net) {
    // A fleet-wide loss storm...
    net.faults().add_loss_burst(t0 + vt::seconds(3), vt::millis(1500), 0.6f);
    // ...then every client (ports 40000+) severed from shard 2's engine
    // (base_port + 2*port_stride .. +threads-1) for two full seconds —
    // longer than both the client timeout and the silence timeout.
    net.faults().add_partition(t0 + vt::seconds(6), vt::seconds(2), 40000,
                               65535, 27628, 27629);
  };
  const auto r = harness::run_shard_experiment(cfg);

  EXPECT_EQ(r.connected, cfg.players);
  EXPECT_GT(r.handoffs_out, 0u);
  EXPECT_GT(r.silence_reconnects, 0u);  // the partition forced rejoins
  for (const auto& ps : r.shards) {
    EXPECT_FALSE(ps.down);
    EXPECT_EQ(ps.state, shard::ShardState::kHealthy);
    EXPECT_EQ(ps.escalations, 0u);  // no false-positive failure detection
    EXPECT_EQ(ps.invariant_violations, 0u);
    EXPECT_GT(ps.frames, 0u);
  }
}

// The same supervised-recovery story on the REAL platform: two shards on
// std::thread, live bots migrating across the boundary, a crash injected
// mid-run, and the supervisor quarantining + restoring the engine while
// everything else keeps running. This is the configuration the TSan CI
// job runs — the supervisor timer, worker quiescence gate, heartbeat
// atomics and mailbox handoffs all race for real here.
TEST(ShardChaosReal, CrashedShardRecoversUnderRealThreads) {
  vt::RealPlatform platform;
  net::VirtualNetwork net(platform, {});
  const auto map = spatial::make_large_deathmatch(7);
  shard::Config fleet;
  fleet.shards = 2;
  fleet.server.threads = 2;
  fleet.server.recovery.enabled = true;
  fleet.server.recovery.checkpoint_interval = 8;
  fleet.boundary_margin = 8.0f;
  fleet.supervise_interval = vt::millis(5);
  fleet.heartbeat_timeout = vt::millis(250);
  shard::ShardManager mgr(platform, net, map, fleet);

  bots::ClientDriver::Config dcfg;
  dcfg.players = 12;
  dcfg.frame_interval = vt::millis(10);
  dcfg.server_silence_timeout = vt::millis(600);  // backstop only
  dcfg.join_port = [&mgr](int i) { return mgr.join_port(i, 12); };
  bots::ClientDriver driver(platform, net, map, *mgr.shard(0).server(),
                            dcfg);

  mgr.start();
  driver.start();
  platform.call_after(vt::millis(900), [&] { mgr.crash_shard(1); });
  platform.call_after(vt::millis(2400), [&] {
    mgr.request_stop();
    driver.request_stop();
  });
  platform.join_all();

  const auto& rep = mgr.supervisor().report(1);
  EXPECT_GE(rep.escalations, 1u);
  EXPECT_EQ(rep.state, shard::ShardState::kHealthy);
  EXPECT_GE(mgr.shard(1).restores(), 1);
  int connected = 0;
  uint64_t replies = 0;
  for (const auto& c : driver.clients()) {
    connected += c->connected() ? 1 : 0;
    replies += c->metrics().replies;
  }
  EXPECT_EQ(connected, 12);
  EXPECT_GT(replies, 100u);
  for (int i = 0; i < 2; ++i) {
    ASSERT_FALSE(mgr.shard(i).down());
    EXPECT_EQ(mgr.shard(i).server()->invariant_violations(), 0u);
  }
}

// Multi-fault soak on the REAL platform: four shards on std::thread,
// roaming bots, two staggered crashes plus a fleet-wide loss burst while
// the first recovery is still in flight. This is the heaviest
// configuration the TSan CI job runs — two supervisor recoveries racing
// the handoff mailboxes, redirect re-arming, heartbeat atomics and the
// loss-degraded network all at once.
TEST(ShardChaosReal, FourShardMultiFaultSoakUnderRealThreads) {
  vt::RealPlatform platform;
  net::VirtualNetwork net(platform, {});
  const auto map = spatial::make_large_deathmatch(7);
  shard::Config fleet;
  fleet.shards = 4;
  fleet.server.threads = 2;
  fleet.server.recovery.enabled = true;
  fleet.server.recovery.checkpoint_interval = 8;
  fleet.boundary_margin = 8.0f;
  fleet.supervise_interval = vt::millis(5);
  fleet.heartbeat_timeout = vt::millis(250);
  fleet.restore_backoff = vt::millis(5);
  fleet.restore_backoff_max = vt::millis(20);
  shard::ShardManager mgr(platform, net, map, fleet);

  bots::ClientDriver::Config dcfg;
  dcfg.players = 16;
  dcfg.frame_interval = vt::millis(10);
  dcfg.server_silence_timeout = vt::millis(600);  // backstop only
  dcfg.join_port = [&mgr](int i) { return mgr.join_port(i, 16); };
  bots::ClientDriver driver(platform, net, map, *mgr.shard(0).server(),
                            dcfg);

  net.faults().add_loss_burst(vt::TimePoint::zero() + vt::millis(1100),
                              vt::millis(400), 0.5f);
  mgr.start();
  driver.start();
  platform.call_after(vt::millis(900), [&] { mgr.crash_shard(1); });
  platform.call_after(vt::millis(1400), [&] { mgr.crash_shard(3); });
  platform.call_after(vt::millis(3200), [&] {
    mgr.request_stop();
    driver.request_stop();
  });
  platform.join_all();

  for (const int i : {1, 3}) {
    const auto& rep = mgr.supervisor().report(i);
    EXPECT_GE(rep.escalations, 1u) << i;
    EXPECT_EQ(rep.state, shard::ShardState::kHealthy) << i;
    EXPECT_GE(mgr.shard(i).restores(), 1) << i;
  }
  int connected = 0;
  uint64_t replies = 0;
  for (const auto& c : driver.clients()) {
    connected += c->connected() ? 1 : 0;
    replies += c->metrics().replies;
  }
  EXPECT_EQ(connected, 16);
  EXPECT_GT(replies, 100u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_FALSE(mgr.shard(i).down());
    EXPECT_EQ(mgr.shard(i).server()->invariant_violations(), 0u);
  }
}

}  // namespace
}  // namespace qserv
