#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/util/aabb.hpp"
#include "src/vthread/time.hpp"
#include "src/util/histogram.hpp"
#include "src/util/rng.hpp"
#include "src/util/slot_map.hpp"
#include "src/util/table.hpp"
#include "src/util/vec.hpp"

namespace qserv {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
  EXPECT_EQ(2.0f * a, Vec3(2, 4, 6));
  EXPECT_FLOAT_EQ(a.dot(b), 32.0f);
  EXPECT_EQ(a.cross(b), Vec3(-3, 6, -3));
}

TEST(Vec3, LengthAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_FLOAT_EQ(v.length(), 5.0f);
  EXPECT_FLOAT_EQ(v.normalized().length(), 1.0f);
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});
}

TEST(Vec3, MinMaxLerp) {
  const Vec3 a{1, 5, 3}, b{2, 2, 9};
  EXPECT_EQ(min3(a, b), Vec3(1, 2, 3));
  EXPECT_EQ(max3(a, b), Vec3(2, 5, 9));
  EXPECT_EQ(lerp(a, b, 0.0f), a);
  EXPECT_EQ(lerp(a, b, 1.0f), b);
}

TEST(ViewAngles, ForwardDirections) {
  ViewAngles east{0.0f, 0.0f};
  EXPECT_NEAR(east.forward().x, 1.0f, 1e-5f);
  EXPECT_NEAR(east.forward().y, 0.0f, 1e-5f);
  ViewAngles north{90.0f, 0.0f};
  EXPECT_NEAR(north.forward().y, 1.0f, 1e-5f);
  ViewAngles down{0.0f, 90.0f};
  EXPECT_NEAR(down.forward().z, -1.0f, 1e-5f);
  // forward ⟂ right
  ViewAngles v{37.0f, 12.0f};
  EXPECT_NEAR(v.forward().dot(v.right()), 0.0f, 1e-4f);
}

TEST(Aabb, IntersectsAndContains) {
  const Aabb a{{0, 0, 0}, {10, 10, 10}};
  const Aabb b{{5, 5, 5}, {15, 15, 15}};
  const Aabb c{{11, 0, 0}, {12, 1, 1}};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
  // Touching boxes intersect (closed intervals).
  const Aabb d{{10, 0, 0}, {12, 1, 1}};
  EXPECT_TRUE(a.intersects(d));
  EXPECT_TRUE(a.contains(Vec3{5, 5, 5}));
  EXPECT_FALSE(a.contains(Vec3{5, 5, 11}));
  EXPECT_TRUE(a.contains(Aabb{{1, 1, 1}, {2, 2, 2}}));
  EXPECT_FALSE(a.contains(b));
}

TEST(Aabb, SweptCoversStartAndEnd) {
  const Aabb a{{0, 0, 0}, {1, 1, 1}};
  const Aabb s = a.swept({10, -5, 0});
  EXPECT_TRUE(s.contains(a));
  EXPECT_TRUE(s.contains(Aabb{{10, -5, 0}, {11, -4, 1}}));
  EXPECT_EQ(s.mins, Vec3(0, -5, 0));
  EXPECT_EQ(s.maxs, Vec3(11, 1, 1));
}

TEST(Aabb, ExpandedAndClipped) {
  const Aabb a{{0, 0, 0}, {2, 2, 2}};
  EXPECT_EQ(a.expanded(1.0f).mins, Vec3(-1, -1, -1));
  EXPECT_EQ(a.expanded(1.0f).maxs, Vec3(3, 3, 3));
  const Aabb world{{0, 0, 0}, {1, 1, 1}};
  const Aabb clipped = a.expanded(5.0f).clipped(world);
  EXPECT_EQ(clipped.mins, world.mins);
  EXPECT_EQ(clipped.maxs, world.maxs);
}

TEST(Aabb, DirectionalBoundsReachesWorldEdge) {
  const Aabb world{{-100, -100, -100}, {100, 100, 100}};
  const Aabb player{{0, 0, 0}, {2, 2, 4}};
  const Aabb fwd = directional_bounds(player, {1, 0, 0}, world, 3.0f);
  EXPECT_FLOAT_EQ(fwd.maxs.x, 100.0f);   // reaches +x edge
  EXPECT_FLOAT_EQ(fwd.mins.x, -3.0f);    // only lateral pad behind
  EXPECT_FLOAT_EQ(fwd.mins.y, -3.0f);
  EXPECT_FLOAT_EQ(fwd.maxs.y, 5.0f);
  const Aabb diag = directional_bounds(player, {-1, 1, 0}, world, 0.0f);
  EXPECT_FLOAT_EQ(diag.mins.x, -100.0f);
  EXPECT_FLOAT_EQ(diag.maxs.y, 100.0f);
}

TEST(Rng, DeterministicAndDistinctStreams) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2.next_u64() != c.next_u64();
  EXPECT_TRUE(differs);
  Rng f1 = Rng(7).fork(1), f2 = Rng(7).fork(2);
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, RangesRespected) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    const float u = r.uniform(2.0f, 4.0f);
    EXPECT_GE(u, 2.0f);
    EXPECT_LT(u, 4.0f);
  }
  // below() covers the full range eventually.
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.below(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0f));
    EXPECT_TRUE(r.chance(1.0f));
  }
}

TEST(SlotMap, InsertGetErase) {
  SlotMap<int> m;
  const Handle a = m.insert(10);
  const Handle b = m.insert(20);
  EXPECT_EQ(m[a], 10);
  EXPECT_EQ(m[b], 20);
  EXPECT_EQ(m.size(), 2u);
  m.erase(a);
  EXPECT_FALSE(m.contains(a));
  EXPECT_TRUE(m.contains(b));
  EXPECT_EQ(m.try_get(a), nullptr);
}

TEST(SlotMap, GenerationsDetectStaleHandles) {
  SlotMap<int> m;
  const Handle a = m.insert(1);
  m.erase(a);
  const Handle b = m.insert(2);  // reuses the slot
  EXPECT_EQ(b.index, a.index);
  EXPECT_NE(b.generation, a.generation);
  EXPECT_FALSE(m.contains(a));
  EXPECT_EQ(m[b], 2);
}

TEST(SlotMap, ForEachIsIndexOrdered) {
  SlotMap<int> m;
  m.insert(1);
  const Handle b = m.insert(2);
  m.insert(3);
  m.erase(b);
  std::vector<int> seen;
  m.for_each([&](Handle, int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 3}));
}

TEST(StatAccumulator, MeanAndStddev) {
  StatAccumulator s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(StatAccumulator, MergeMatchesCombinedStream) {
  StatAccumulator a, b, all;
  Rng r(5);
  for (int i = 0; i < 500; ++i) {
    const double v = r.uniform(0.0f, 100.0f);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Histogram, PercentilesRoughlyCorrect) {
  Histogram h(1e-6, 1.1);
  for (int i = 1; i <= 1000; ++i) h.add(i * 0.001);  // 1ms..1s uniform
  EXPECT_NEAR(h.median(), 0.5, 0.06);
  EXPECT_NEAR(h.percentile(90), 0.9, 0.1);
  EXPECT_GE(h.percentile(100), h.percentile(50));
  EXPECT_EQ(h.count(), 1000u);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.add(0.5);
  b.add(1.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.stats().mean(), 1.0, 1e-9);
}

TEST(Table, RenderAlignsColumns) {
  Table t("demo");
  t.header({"a", "long-col"}).row({"1", "2"}).row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("long-col"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  Table t;
  t.header({"x"}).row({"a,b"});
  EXPECT_EQ(t.csv(), "x\n\"a,b\"\n");
}

TEST(Table, NumAndPctFormat) {
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::pct(0.256, 1), "25.6%");
}

TEST(VtTime, DurationArithmetic) {
  using namespace vt;
  EXPECT_EQ((millis(3) + micros(500)).ns, 3500000);
  EXPECT_EQ((seconds(1) - millis(250)).ns, 750000000);
  EXPECT_EQ((millis(10) * 3).ns, millis(30).ns);
  EXPECT_EQ((millis(10) * 2.5).ns, millis(25).ns);
  EXPECT_EQ((seconds(1) / 4).ns, millis(250).ns);
  EXPECT_LT(millis(1), millis(2));
  EXPECT_TRUE(Duration{}.is_zero());
}

TEST(VtTime, DurationConversions) {
  using namespace vt;
  EXPECT_DOUBLE_EQ(millis(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(micros(250).millis(), 0.25);
  EXPECT_DOUBLE_EQ(nanos(500).micros(), 0.5);
  EXPECT_EQ(seconds_d(0.0335).ns, 33500000);
}

TEST(VtTime, TimePointArithmetic) {
  using namespace vt;
  const TimePoint t0{};
  const TimePoint t1 = t0 + millis(40);
  EXPECT_EQ((t1 - t0).ns, millis(40).ns);
  EXPECT_EQ((t1 - millis(15)).ns, millis(25).ns);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(TimePoint::zero().ns, 0);
  EXPECT_GT(TimePoint::max(), t1);
  TimePoint t = t0;
  t += millis(5);
  EXPECT_EQ(t.ns, millis(5).ns);
  EXPECT_DOUBLE_EQ((t0 + seconds(2)).seconds(), 2.0);
}

}  // namespace
}  // namespace qserv
