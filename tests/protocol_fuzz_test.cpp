// Adversarial input tests: the wire-protocol decoders and the netchan
// framing must never crash, loop, or read out of bounds on arbitrary
// bytes — a public game server parses whatever the internet sends it.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/netchan.hpp"
#include "src/net/protocol.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/util/rng.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::net {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

std::vector<uint8_t> random_bytes(Rng& rng, size_t max_len) {
  std::vector<uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng.next_u32());
  return out;
}

TEST_P(FuzzSeeds, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = random_bytes(rng, 256);
    {
      ByteReader r(bytes);
      ClientMsgType t;
      if (decode_client_type(r, t)) {
        ConnectMsg c;
        MoveCmd m;
        switch (t) {
          case ClientMsgType::kConnect: (void)decode(r, c); break;
          case ClientMsgType::kMove: (void)decode(r, m); break;
          case ClientMsgType::kDisconnect: break;
        }
      }
    }
    {
      ByteReader r(bytes);
      ServerMsgType t;
      if (decode_server_type(r, t)) {
        ConnectAck a;
        Snapshot s;
        switch (t) {
          case ServerMsgType::kConnectAck: (void)decode(r, a); break;
          case ServerMsgType::kSnapshot: (void)decode(r, s); break;
        }
      }
    }
  }
}

TEST_P(FuzzSeeds, TruncatedValidMessagesAreRejectedNotCrashed) {
  Rng rng(GetParam());
  // Build a valid snapshot, then decode every prefix of it.
  Snapshot s;
  for (int i = 0; i < 20; ++i) {
    EntityUpdate e;
    e.id = rng.next_u32();
    e.origin = rng.point_in({-100, -100, -100}, {100, 100, 100});
    s.entities.push_back(e);
  }
  for (int i = 0; i < 5; ++i) s.events.push_back({1, 2, 3, {}});
  const auto bytes = encode(s);
  for (size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(bytes.data(), len);
    ServerMsgType t;
    if (!decode_server_type(r, t)) continue;
    Snapshot out;
    EXPECT_FALSE(decode(r, out)) << "prefix of length " << len
                                 << " decoded as complete";
  }
  // The full message decodes.
  ByteReader r(bytes);
  ServerMsgType t;
  ASSERT_TRUE(decode_server_type(r, t));
  Snapshot out;
  EXPECT_TRUE(decode(r, out));
  EXPECT_EQ(out.entities.size(), s.entities.size());
}

TEST_P(FuzzSeeds, CorruptedSnapshotsNeverDecodeOutOfBounds) {
  Rng rng(GetParam());
  Snapshot s;
  for (int i = 0; i < 8; ++i) s.entities.push_back({});
  auto bytes = encode(s);
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = bytes;
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      corrupted[rng.below(corrupted.size())] ^=
          static_cast<uint8_t>(1u << rng.below(8));
    }
    ByteReader r(corrupted);
    ServerMsgType t;
    if (!decode_server_type(r, t) || t != ServerMsgType::kSnapshot) continue;
    Snapshot out;
    (void)decode(r, out);  // must simply not crash / not hang
    EXPECT_LE(out.entities.size(), 4096u);
    EXPECT_LE(out.events.size(), 4096u);
  }
}

TEST_P(FuzzSeeds, DeltaDecoderSurvivesGarbageAndCorruption) {
  Rng rng(GetParam() * 1009 + 3);
  std::vector<EntityUpdate> baseline;
  for (uint32_t id = 1; id <= 12; ++id) {
    EntityUpdate e;
    e.id = id;
    baseline.push_back(e);
  }
  const BaselineLookup lookup =
      [&](uint32_t) -> const std::vector<EntityUpdate>* { return &baseline; };
  // Pure garbage.
  for (int i = 0; i < 500; ++i) {
    const auto bytes = random_bytes(rng, 200);
    ByteReader r(bytes);
    Snapshot out;
    (void)decode_delta(r, lookup, out);
    EXPECT_LE(out.entities.size(), 8192u);
  }
  // Bit-flipped valid deltas.
  Snapshot now;
  now.entities = baseline;
  now.entities[3].origin = {9, 9, 9};
  now.entities.pop_back();
  auto valid = encode_delta(now, baseline, 7, nullptr);
  for (int i = 0; i < 300; ++i) {
    auto corrupted = valid;
    corrupted[rng.below(corrupted.size())] ^=
        static_cast<uint8_t>(1u << rng.below(8));
    ByteReader r(corrupted);
    ServerMsgType t;
    if (!decode_server_type(r, t) || t != ServerMsgType::kDeltaSnapshot)
      continue;
    Snapshot out;
    (void)decode_delta(r, lookup, out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 2, 3, 4));

TEST(ServerFuzz, GarbageDatagramsDoNotKillTheServer) {
  // Spray a live server port with junk while a real client plays.
  vt::SimPlatform p;
  VirtualNetwork net(p, {});
  auto attacker = net.open(9999);
  p.spawn("attacker", vt::Domain::kClientFarm, [&] {
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
      auto junk = random_bytes(rng, 64);
      attacker->send(27500, std::move(junk));
      p.sleep_for(vt::millis(2));
    }
  });
  // The attacked socket is drained by a minimal reader emulating the
  // server's receive path.
  auto server_sock = net.open(27500);
  int parsed = 0, rejected = 0;
  p.spawn("reader", vt::Domain::kServer, [&] {
    Selector sel(p);
    sel.add(*server_sock);
    NetChannel chan(*server_sock, 9999);
    while (p.now() < vt::TimePoint{} + vt::seconds(2)) {
      if (!sel.wait_until(p.now() + vt::millis(20))) continue;
      Datagram d;
      while (server_sock->try_recv(d)) {
        NetChannel::Incoming info;
        ByteReader body(nullptr, 0);
        if (!chan.accept(d, info, body)) {
          ++rejected;
          continue;
        }
        ClientMsgType t;
        if (decode_client_type(body, t)) ++parsed;
        else ++rejected;
      }
    }
  });
  p.run();
  EXPECT_EQ(parsed + rejected, 500);
  EXPECT_GT(rejected, 400);  // almost all junk must be rejected cleanly
}

}  // namespace
}  // namespace qserv::net
