// Adversarial input tests: the wire-protocol decoders and the netchan
// framing must never crash, loop, or read out of bounds on arbitrary
// bytes — a public game server parses whatever the internet sends it.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/netchan.hpp"
#include "src/net/protocol.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/util/rng.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::net {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

std::vector<uint8_t> random_bytes(Rng& rng, size_t max_len) {
  std::vector<uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng.next_u32());
  return out;
}

TEST_P(FuzzSeeds, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = random_bytes(rng, 256);
    {
      ByteReader r(bytes);
      ClientMsgType t;
      if (decode_client_type(r, t)) {
        ConnectMsg c;
        MoveCmd m;
        switch (t) {
          case ClientMsgType::kConnect: (void)decode(r, c); break;
          case ClientMsgType::kMove: (void)decode(r, m); break;
          case ClientMsgType::kDisconnect: break;
        }
      }
    }
    {
      ByteReader r(bytes);
      ServerMsgType t;
      if (decode_server_type(r, t)) {
        ConnectAck a;
        Snapshot s;
        RejectMsg j;
        static const std::vector<EntityUpdate> kEmptyBaseline;
        switch (t) {
          case ServerMsgType::kConnectAck: (void)decode(r, a); break;
          case ServerMsgType::kSnapshot: (void)decode(r, s); break;
          case ServerMsgType::kDeltaSnapshot:
            (void)decode_delta(r, [](uint32_t) { return &kEmptyBaseline; }, s);
            break;
          case ServerMsgType::kReject: (void)decode(r, j); break;
        }
      }
    }
  }
}

TEST_P(FuzzSeeds, TruncatedValidMessagesAreRejectedNotCrashed) {
  Rng rng(GetParam());
  // Build a valid snapshot, then decode every prefix of it.
  Snapshot s;
  for (int i = 0; i < 20; ++i) {
    EntityUpdate e;
    e.id = rng.next_u32();
    e.origin = rng.point_in({-100, -100, -100}, {100, 100, 100});
    s.entities.push_back(e);
  }
  for (int i = 0; i < 5; ++i) s.events.push_back({1, 2, 3, {}});
  const auto bytes = encode(s);
  for (size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(bytes.data(), len);
    ServerMsgType t;
    if (!decode_server_type(r, t)) continue;
    Snapshot out;
    EXPECT_FALSE(decode(r, out)) << "prefix of length " << len
                                 << " decoded as complete";
  }
  // The full message decodes.
  ByteReader r(bytes);
  ServerMsgType t;
  ASSERT_TRUE(decode_server_type(r, t));
  Snapshot out;
  EXPECT_TRUE(decode(r, out));
  EXPECT_EQ(out.entities.size(), s.entities.size());
}

TEST_P(FuzzSeeds, CorruptedSnapshotsNeverDecodeOutOfBounds) {
  Rng rng(GetParam());
  Snapshot s;
  for (int i = 0; i < 8; ++i) s.entities.push_back({});
  auto bytes = encode(s);
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = bytes;
    const int flips = 1 + static_cast<int>(rng.below(8));
    for (int f = 0; f < flips; ++f) {
      corrupted[rng.below(corrupted.size())] ^=
          static_cast<uint8_t>(1u << rng.below(8));
    }
    ByteReader r(corrupted);
    ServerMsgType t;
    if (!decode_server_type(r, t) || t != ServerMsgType::kSnapshot) continue;
    Snapshot out;
    (void)decode(r, out);  // must simply not crash / not hang
    EXPECT_LE(out.entities.size(), 4096u);
    EXPECT_LE(out.events.size(), 4096u);
  }
}

TEST_P(FuzzSeeds, DeltaDecoderSurvivesGarbageAndCorruption) {
  Rng rng(GetParam() * 1009 + 3);
  std::vector<EntityUpdate> baseline;
  for (uint32_t id = 1; id <= 12; ++id) {
    EntityUpdate e;
    e.id = id;
    baseline.push_back(e);
  }
  const BaselineLookup lookup =
      [&](uint32_t) -> const std::vector<EntityUpdate>* { return &baseline; };
  // Pure garbage.
  for (int i = 0; i < 500; ++i) {
    const auto bytes = random_bytes(rng, 200);
    ByteReader r(bytes);
    Snapshot out;
    (void)decode_delta(r, lookup, out);
    EXPECT_LE(out.entities.size(), 8192u);
  }
  // Bit-flipped valid deltas.
  Snapshot now;
  now.entities = baseline;
  now.entities[3].origin = {9, 9, 9};
  now.entities.pop_back();
  auto valid = encode_delta(now, baseline, 7, nullptr);
  for (int i = 0; i < 300; ++i) {
    auto corrupted = valid;
    corrupted[rng.below(corrupted.size())] ^=
        static_cast<uint8_t>(1u << rng.below(8));
    ByteReader r(corrupted);
    ServerMsgType t;
    if (!decode_server_type(r, t) || t != ServerMsgType::kDeltaSnapshot)
      continue;
    Snapshot out;
    (void)decode_delta(r, lookup, out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 2, 3, 4));

// --- hardened parse paths: length-lying, oversized, truncated inputs ---

// Writes the fixed snapshot header (everything before the entity count).
void write_snapshot_header(ByteWriter& w) {
  w.u8(static_cast<uint8_t>(ServerMsgType::kSnapshot));
  w.u32(7);        // server_frame
  w.u32(3);        // ack_sequence
  w.i64(0);        // client_time_echo_ns
  w.u16(0);        // assigned_port
  w.vec3({0, 0, 0});
  w.vec3({0, 0, 0});
  w.u16(100);      // health
  w.u16(0);        // armor
  w.u16(0);        // frags
}

// A header that claims thousands of entities backed by a few bytes must
// fail the count-vs-remaining-bytes check before any allocation happens —
// a lying length prefix costs the attacker bandwidth, not us memory.
TEST(ParseHardening, EntityCountLyingAboutPayloadIsRejectedWithoutAllocation) {
  ByteWriter w;
  write_snapshot_header(w);
  w.u16(4000);  // claimed entities; ~88 KB would be needed
  w.u32(1);     // ...but only 4 payload bytes follow
  const auto bytes = w.take();

  ByteReader r(bytes);
  ServerMsgType t;
  ASSERT_TRUE(decode_server_type(r, t));
  Snapshot out;
  EXPECT_FALSE(decode(r, out));
  EXPECT_TRUE(out.entities.empty());  // never resized toward the lie
}

TEST(ParseHardening, EventCountLyingAboutPayloadIsRejected) {
  ByteWriter w;
  write_snapshot_header(w);
  w.u16(0);     // entities: none (honest)
  w.u16(4000);  // events: a lie, no bytes behind it
  const auto bytes = w.take();

  ByteReader r(bytes);
  ServerMsgType t;
  ASSERT_TRUE(decode_server_type(r, t));
  Snapshot out;
  EXPECT_FALSE(decode(r, out));
  EXPECT_TRUE(out.events.empty());
}

TEST(ParseHardening, DeltaCountsLyingAboutPayloadAreRejected) {
  std::vector<EntityUpdate> baseline(4);
  for (uint32_t i = 0; i < 4; ++i) baseline[i].id = i + 1;
  const BaselineLookup lookup =
      [&](uint32_t) -> const std::vector<EntityUpdate>* { return &baseline; };

  for (const bool lie_in_removals : {true, false}) {
    ByteWriter w;
    w.u8(static_cast<uint8_t>(ServerMsgType::kDeltaSnapshot));
    w.u32(8);   // server_frame
    w.u32(3);   // ack_sequence
    w.i64(0);   // client_time_echo_ns
    w.u16(0);   // assigned_port
    w.u32(7);   // baseline_frame
    w.vec3({0, 0, 0});
    w.vec3({0, 0, 0});
    w.u16(100);
    w.u16(0);
    w.u16(0);
    if (lie_in_removals) {
      w.u16(60000);  // removals "count" with 2 bytes of backing
      w.u16(1);
    } else {
      w.u16(0);      // removals: none
      w.u16(60000);  // changed-entity count with 2 bytes of backing
      w.u16(1);
    }
    const auto bytes = w.take();
    ByteReader r(bytes);
    ServerMsgType t;
    ASSERT_TRUE(decode_server_type(r, t));
    Snapshot out;
    EXPECT_FALSE(decode_delta(r, lookup, out));
  }
}

// Oversized player names are refused at decode so a hostile connect can
// never park a 64 KB name in the client registry.
TEST(ParseHardening, OversizedConnectNameIsRejected) {
  {
    const auto ok = encode(ConnectMsg{std::string(kMaxPlayerNameLen, 'a')});
    ByteReader r(ok);
    ClientMsgType t;
    ASSERT_TRUE(decode_client_type(r, t));
    ConnectMsg m;
    EXPECT_TRUE(decode(r, m));
  }
  {
    const auto bad =
        encode(ConnectMsg{std::string(kMaxPlayerNameLen + 1, 'a')});
    ByteReader r(bad);
    ClientMsgType t;
    ASSERT_TRUE(decode_client_type(r, t));
    ConnectMsg m;
    EXPECT_FALSE(decode(r, m));
  }
}

// A move claiming an absurd timestep would have the server simulate a
// multi-second leap on the sender's behalf; the decoder refuses it.
TEST(ParseHardening, MoveWithLyingTimestepIsRejected) {
  MoveCmd cmd;
  cmd.msec = kMaxMoveMsec;
  {
    const auto ok = encode(cmd);
    ByteReader r(ok);
    ClientMsgType t;
    ASSERT_TRUE(decode_client_type(r, t));
    MoveCmd m;
    EXPECT_TRUE(decode(r, m));
  }
  cmd.msec = kMaxMoveMsec + 1;
  {
    const auto bad = encode(cmd);
    ByteReader r(bad);
    ClientMsgType t;
    ASSERT_TRUE(decode_client_type(r, t));
    MoveCmd m;
    EXPECT_FALSE(decode(r, m));
  }
}

// Every truncation of a valid move must fail cleanly (the snapshot
// counterpart is covered above; moves are what the server parses from
// the internet at the highest rate).
TEST(ParseHardening, TruncatedMovesAreRejectedNotCrashed) {
  MoveCmd cmd;
  cmd.sequence = 41;
  cmd.msec = 33;
  const auto bytes = encode(cmd);
  for (size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(bytes.data(), len);
    ClientMsgType t;
    if (!decode_client_type(r, t)) continue;
    MoveCmd m;
    EXPECT_FALSE(decode(r, m)) << "prefix of length " << len;
  }
  ByteReader r(bytes);
  ClientMsgType t;
  ASSERT_TRUE(decode_client_type(r, t));
  MoveCmd m;
  EXPECT_TRUE(decode(r, m));
  EXPECT_EQ(m.sequence, 41u);
}

TEST(ServerFuzz, GarbageDatagramsDoNotKillTheServer) {
  // Spray a live server port with junk while a real client plays.
  vt::SimPlatform p;
  VirtualNetwork net(p, {});
  auto attacker = net.open(9999);
  p.spawn("attacker", vt::Domain::kClientFarm, [&] {
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
      auto junk = random_bytes(rng, 64);
      attacker->send(27500, std::move(junk));
      p.sleep_for(vt::millis(2));
    }
  });
  // The attacked socket is drained by a minimal reader emulating the
  // server's receive path.
  auto server_sock = net.open(27500);
  int parsed = 0, rejected = 0;
  p.spawn("reader", vt::Domain::kServer, [&] {
    auto sel = net.make_selector();
    sel->add(*server_sock);
    NetChannel chan(*server_sock, 9999);
    while (p.now() < vt::TimePoint{} + vt::seconds(2)) {
      if (!sel->wait_until(p.now() + vt::millis(20))) continue;
      Datagram d;
      while (server_sock->try_recv(d)) {
        NetChannel::Incoming info;
        ByteReader body(nullptr, 0);
        if (!chan.accept(d, info, body)) {
          ++rejected;
          continue;
        }
        ClientMsgType t;
        if (decode_client_type(body, t)) ++parsed;
        else ++rejected;
      }
    }
  });
  p.run();
  EXPECT_EQ(parsed + rejected, 500);
  EXPECT_GT(rejected, 400);  // almost all junk must be rejected cleanly
}

}  // namespace
}  // namespace qserv::net
