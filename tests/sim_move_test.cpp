#include <gtest/gtest.h>

#include <vector>

#include "src/sim/move.hpp"
#include "src/sim/combat.hpp"
#include "src/sim/snapshot.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/util/rng.hpp"

namespace qserv::sim {
namespace {

class CollectEvents : public EventSink {
 public:
  void emit(const net::GameEvent& e) override { events.push_back(e); }
  std::vector<net::GameEvent> events;
};

net::MoveCmd forward_cmd(float yaw = 0.0f, uint16_t msec = 30) {
  net::MoveCmd c;
  c.yaw_deg = yaw;
  c.forward = kMaxPlayerSpeed;
  c.msec = msec;
  return c;
}

TEST(MoveBounds, CoversMaximumTravel) {
  World w(spatial::make_arena(), {});
  Entity& p = w.spawn_player("a");
  const auto cmd = forward_cmd();
  const Aabb b = move_bounds(p, cmd);
  // The bounds must contain the player's box wherever a 30 ms move could
  // take it (~9.6 units at max speed).
  EXPECT_TRUE(b.contains(p.bounds()));
  EXPECT_TRUE(b.contains(p.bounds().swept({9.6f, 0, 0})));
  EXPECT_TRUE(b.contains(p.bounds().swept({0, -9.6f, 0})));
}

TEST(ExecuteMove, MovesInCommandDirection) {
  World w(spatial::make_arena(), {});
  Entity& p = w.spawn_player("a");
  p.on_ground = true;
  const Vec3 start = p.origin;
  for (int i = 0; i < 30; ++i)
    execute_move(w, p, forward_cmd(0.0f), {}, nullptr, nullptr);
  EXPECT_GT(p.origin.x, start.x + 30.0f);
  EXPECT_NEAR(p.origin.y, start.y, 1.0f);
}

TEST(ExecuteMove, YawSelectsDirection) {
  World w(spatial::make_arena(), {});
  Entity& p = w.spawn_player("a");
  p.on_ground = true;
  const Vec3 start = p.origin;
  for (int i = 0; i < 30; ++i)
    execute_move(w, p, forward_cmd(90.0f), {}, nullptr, nullptr);
  EXPECT_GT(p.origin.y, start.y + 30.0f);
}

TEST(ExecuteMove, GravityPullsAirbornePlayersDown) {
  World w(spatial::make_arena(), {});
  Entity& p = w.spawn_player("a");
  p.origin.z += 100.0f;
  p.on_ground = false;
  w.relink(p);
  net::MoveCmd idle;
  idle.msec = 30;
  for (int i = 0; i < 60 && !p.on_ground; ++i)
    execute_move(w, p, idle, {}, nullptr, nullptr);
  EXPECT_TRUE(p.on_ground);
  // Standing height: feet (origin + mins.z) on the floor at z=0.
  EXPECT_NEAR(p.origin.z, -kPlayerMins.z, 1.0f);
}

TEST(ExecuteMove, JumpLeavesGroundThenLands) {
  World w(spatial::make_arena(), {});
  Entity& p = w.spawn_player("a");
  p.on_ground = true;
  net::MoveCmd jump;
  jump.msec = 30;
  jump.buttons = net::kButtonJump;
  execute_move(w, p, jump, {}, nullptr, nullptr);
  EXPECT_FALSE(p.on_ground);
  const float base = p.origin.z;
  net::MoveCmd idle;
  idle.msec = 30;
  execute_move(w, p, idle, {}, nullptr, nullptr);
  EXPECT_GT(p.origin.z, base);  // still rising
  for (int i = 0; i < 120 && !p.on_ground; ++i)
    execute_move(w, p, idle, {}, nullptr, nullptr);
  EXPECT_TRUE(p.on_ground);
}

TEST(ExecuteMove, WallsStopMotion) {
  World w(spatial::make_arena(512), {});
  Entity& p = w.spawn_player("a");
  p.on_ground = true;
  // Run east into the arena wall for a long time.
  for (int i = 0; i < 400; ++i)
    execute_move(w, p, forward_cmd(0.0f), {}, nullptr, nullptr);
  EXPECT_FALSE(w.collision().box_solid(p.origin, p.mins, p.maxs));
  EXPECT_LT(p.origin.x, w.map().bounds.maxs.x);
}

TEST(ExecuteMove, SlidesAlongWalls) {
  World w(spatial::make_arena(2048), {});
  Entity& p = w.spawn_player("a");
  p.on_ground = true;
  // Park the player against the east wall, then run diagonally into it:
  // x stays pinned, y keeps sliding.
  for (int i = 0; i < 600; ++i)
    execute_move(w, p, forward_cmd(0.0f), {}, nullptr, nullptr);
  const float x_at_wall = p.origin.x;
  const float y_start = p.origin.y;
  for (int i = 0; i < 60; ++i)
    execute_move(w, p, forward_cmd(30.0f), {}, nullptr, nullptr);
  EXPECT_NEAR(p.origin.x, x_at_wall, 1.0f);
  EXPECT_GT(p.origin.y, y_start + 50.0f);
}

// Property sweep: random movement never ends inside solid geometry and
// never escapes the world.
class MoveFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MoveFuzzTest, NeverPenetratesOrEscapes) {
  const auto map = spatial::make_large_deathmatch(7);
  World w(map, {4, GetParam()});
  std::vector<uint32_t> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(w.spawn_player("p" + std::to_string(i)).id);
  Rng rng(GetParam() * 977 + 13);
  vt::TimePoint now{};
  for (int step = 0; step < 400; ++step) {
    Entity* p = w.get(ids[rng.below(ids.size())]);
    ASSERT_NE(p, nullptr);
    net::MoveCmd cmd;
    cmd.yaw_deg = rng.uniform(0.0f, 360.0f);
    cmd.forward = rng.uniform(-kMaxPlayerSpeed, kMaxPlayerSpeed);
    cmd.side = rng.uniform(-kMaxPlayerSpeed, kMaxPlayerSpeed);
    cmd.msec = static_cast<uint16_t>(rng.range(10, 60));
    if (rng.chance(0.1f)) cmd.buttons |= net::kButtonJump;
    now += vt::millis(5);
    execute_move(w, *p, cmd, now, nullptr, nullptr);
    ASSERT_FALSE(w.collision().box_solid(p->origin, p->mins, p->maxs))
        << "player stuck in wall at " << p->origin.str() << " step " << step;
    ASSERT_TRUE(w.map().bounds.contains(p->origin))
        << "player escaped the world at " << p->origin.str();
    ASSERT_EQ(p->areanode, w.tree().link_node_for(p->bounds()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoveFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ExecuteMove, PlayersBlockEachOther) {
  World w(spatial::make_arena(1024), {});
  Entity& a = w.spawn_player("a");
  Entity& b = w.spawn_player("b");
  b.origin = a.origin + Vec3{64, 0, 0};
  w.relink(b);
  a.on_ground = true;
  // Run straight at b; a must stop before overlapping it.
  for (int i = 0; i < 100; ++i)
    execute_move(w, a, forward_cmd(0.0f), {}, nullptr, nullptr);
  const Aabb abox = a.bounds(), bbox = b.bounds();
  const bool overlap_open =
      abox.mins.x < bbox.maxs.x && abox.maxs.x > bbox.mins.x &&
      abox.mins.y < bbox.maxs.y && abox.maxs.y > bbox.mins.y &&
      abox.mins.z < bbox.maxs.z && abox.maxs.z > bbox.mins.z;
  EXPECT_FALSE(overlap_open);
  EXPECT_LT(std::abs(a.origin.x - b.origin.x), 40.0f);  // got close though
}

TEST(ExecuteMove, PicksUpItemsOnPath) {
  World w(spatial::make_arena(1024), {});
  Entity& p = w.spawn_player("a");
  p.health = 50;
  Entity& item = w.spawn_entity(EntityType::kItem);
  item.item = spatial::ItemType::kHealth;
  item.origin = p.origin + Vec3{40, 0, 0};
  item.mins = {-12, -12, -24};
  item.maxs = {12, 12, 24};
  w.link(item);
  p.on_ground = true;
  CollectEvents ev;
  MoveStats total;
  for (int i = 0; i < 40 && p.health == 50; ++i) {
    const auto s = execute_move(w, p, forward_cmd(0.0f), {}, nullptr, &ev);
    total.touches += s.touches;
  }
  EXPECT_EQ(p.health, 75);
  EXPECT_GE(total.touches, 1);
  EXPECT_FALSE(item.available);
}

TEST(ExecuteMove, TeleporterRelocatesAndRelinks) {
  const auto map = spatial::make_large_deathmatch(7);
  World w(map, {});
  ASSERT_GE(map.teleporters.size(), 2u);
  Entity& p = w.spawn_player("a");
  // Stand right next to the pad and walk onto it.
  const auto& tele = map.teleporters[0];
  p.origin = tele.origin + Vec3{-30, 0, 0};
  p.on_ground = true;
  w.relink(p);
  CollectEvents ev;
  bool teleported = false;
  for (int i = 0; i < 60 && !teleported; ++i) {
    teleported =
        execute_move(w, p, forward_cmd(0.0f), {}, nullptr, &ev).teleported;
  }
  ASSERT_TRUE(teleported);
  EXPECT_NEAR(dist(p.origin, tele.destination), 0.0f, 20.0f);
  EXPECT_EQ(p.areanode, w.tree().link_node_for(p.bounds()));
}

TEST(ExecuteMove, AttackButtonsFireWeapons) {
  World w(spatial::make_arena(1024), {});
  Entity& p = w.spawn_player("a");
  net::MoveCmd cmd;
  cmd.msec = 30;
  cmd.buttons = net::kButtonAttack;
  auto s = execute_move(w, p, cmd, {}, nullptr, nullptr);
  EXPECT_TRUE(s.fired_hitscan);
  cmd.buttons = net::kButtonThrow;
  s = execute_move(w, p, cmd, vt::TimePoint{} + kAttackCooldown, nullptr,
                   nullptr);
  EXPECT_TRUE(s.threw_grenade);
}

TEST(ExecuteMove, DeadPlayersDoNotMove) {
  World w(spatial::make_arena(1024), {});
  Entity& p = w.spawn_player("a");
  p.health = 0;
  const Vec3 start = p.origin;
  execute_move(w, p, forward_cmd(0.0f), {}, nullptr, nullptr);
  EXPECT_EQ(p.origin, start);
}

TEST(Snapshot, ContainsSelfStateAndNearbyEntities) {
  World w(spatial::make_arena(1024), {});
  Entity& a = w.spawn_player("a");
  Entity& b = w.spawn_player("b");
  b.origin = a.origin + Vec3{100, 0, 0};
  w.relink(b);
  a.health = 64;
  a.frags = 3;
  net::Snapshot snap;
  const auto stats = build_snapshot(w, a, 10, 5, 999, {}, snap);
  EXPECT_EQ(snap.health, 64);
  EXPECT_EQ(snap.frags, 3);
  EXPECT_EQ(snap.server_frame, 10u);
  EXPECT_EQ(snap.client_time_echo_ns, 999);
  bool saw_b = false;
  for (const auto& e : snap.entities) saw_b |= e.id == b.id;
  EXPECT_TRUE(saw_b);
  EXPECT_GT(stats.interest_checks, 0);
  EXPECT_GT(stats.visible_entities, 0);
}

TEST(Snapshot, FarEntitiesAreCulled) {
  const auto map = spatial::make_large_deathmatch(7);
  World w(map, {});
  Entity& a = w.spawn_player("a");
  Entity& b = w.spawn_player("b");
  b.origin = Vec3{-a.origin.x, -a.origin.y, a.origin.z};  // opposite corner
  w.relink(b);
  net::Snapshot snap;
  build_snapshot(w, a, 1, 0, 0, {}, snap);
  for (const auto& e : snap.entities) EXPECT_NE(e.id, b.id);
}

TEST(Snapshot, WallsBlockPlayerVisibilityWithoutPvs) {
  // A map without PVS data falls back to line-of-sight traces.
  auto map = spatial::make_large_deathmatch(7);
  map.pvs = spatial::PvsData{};  // strip the PVS: force the LOS path
  World w(map, {});
  Entity& a = w.spawn_player("a");
  Entity& b = w.spawn_player("b");
  a.origin = map.waypoints[0].pos;
  w.relink(a);
  // Put b within interest range of a but in the neighbouring room.
  b.origin = map.waypoints[1].pos;
  w.relink(b);
  const float d = dist(a.origin, b.origin);
  if (d < kInterestRange && d > kAlwaysAudibleRange) {
    net::Snapshot snap;
    const auto stats = build_snapshot(w, a, 1, 0, 0, {}, snap);
    const auto tr =
        w.collision().trace_line(eye_pos(a), eye_pos(b));
    bool saw_b = false;
    for (const auto& e : snap.entities) saw_b |= e.id == b.id;
    EXPECT_EQ(saw_b, !tr.hit());
    EXPECT_GT(stats.los_traces, 0);
  }
}

TEST(Snapshot, PvsCullsOccludedClusters) {
  // On a PVS map, players in mutually invisible clusters are culled with
  // no ray tracing at all.
  spatial::MapGenParams params;
  params.rooms_x = 8;
  params.rooms_y = 1;
  params.room_size = 280;
  params.door_width = 56;
  params.seed = 5;
  const auto map = spatial::generate_map(params, "corridor");
  ASSERT_FALSE(map.pvs.empty());
  World w(map, {});
  Entity& a = w.spawn_player("a");
  Entity& b = w.spawn_player("b");
  // Park them in clusters 0 and 2 (two rooms apart, within range).
  a.origin = map.pvs.clusters[0].center();
  a.origin.z = 24.0f;
  w.relink(a);
  b.origin = map.pvs.clusters[2].center();
  b.origin.z = 24.0f;
  w.relink(b);
  ASSERT_EQ(a.cluster, 0);
  ASSERT_EQ(b.cluster, 2);
  const float d = dist(a.origin, b.origin);
  if (d < kInterestRange && !map.pvs.can_see(0, 2)) {
    net::Snapshot snap;
    const auto stats = build_snapshot(w, a, 1, 0, 0, {}, snap);
    bool saw_b = false;
    for (const auto& e : snap.entities) saw_b |= e.id == b.id;
    EXPECT_FALSE(saw_b);
    EXPECT_EQ(stats.los_traces, 0);  // PVS path does not trace
  }
  // Same cluster is always potentially visible.
  EXPECT_TRUE(map.pvs.can_see(0, 0));
}

TEST(Snapshot, EventsAreBroadcast) {
  World w(spatial::make_arena(1024), {});
  Entity& a = w.spawn_player("a");
  std::vector<net::GameEvent> events{make_event(EventKind::kFrag, 1, 2, {}),
                                     make_event(EventKind::kPickup, 3, 4, {})};
  net::Snapshot snap;
  build_snapshot(w, a, 1, 0, 0, events, snap);
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.events[0].kind, static_cast<uint8_t>(EventKind::kFrag));
}

}  // namespace
}  // namespace qserv::sim
