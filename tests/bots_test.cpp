// Bot behaviour and client endpoint tests.
#include <gtest/gtest.h>

#include "src/net/virtual_udp.hpp"
#include "src/bots/bot.hpp"
#include "src/bots/client.hpp"
#include "src/sim/entity.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::bots {
namespace {

net::Snapshot snapshot_at(const Vec3& origin) {
  net::Snapshot s;
  s.origin = origin;
  s.health = 100;
  return s;
}

net::EntityUpdate enemy_at(uint32_t id, const Vec3& origin) {
  net::EntityUpdate e;
  e.id = id;
  e.type = static_cast<uint8_t>(sim::EntityType::kPlayer);
  e.origin = origin;
  e.state = 1;  // alive
  return e;
}

Bot::Config aggressive() {
  Bot::Config c;
  c.aggression = 1.0f;
  c.grenade_ratio = 0.0f;
  c.seed = 7;
  return c;
}

TEST(Bot, SequencesAndTimestampsMoves) {
  const auto map = spatial::make_arena(1024);
  Bot bot(map, {});
  const auto a = bot.think(snapshot_at({0, 0, 24}), 1, vt::TimePoint{1000}, 33);
  const auto b = bot.think(snapshot_at({0, 0, 24}), 1, vt::TimePoint{2000}, 33);
  EXPECT_EQ(a.sequence + 1, b.sequence);
  EXPECT_EQ(a.client_time_ns, 1000);
  EXPECT_EQ(b.client_time_ns, 2000);
  EXPECT_EQ(a.msec, 33);
}

TEST(Bot, WandersAtFullSpeedTowardWaypoints) {
  const auto map = spatial::make_large_deathmatch(7);
  Bot bot(map, {});
  const auto cmd =
      bot.think(snapshot_at(map.waypoints[0].pos), 1, vt::TimePoint{}, 33);
  EXPECT_FLOAT_EQ(cmd.forward, sim::kMaxPlayerSpeed);
  EXPECT_EQ(cmd.buttons & net::kButtonAttack, 0);  // nobody to fight
}

TEST(Bot, AttacksVisibleEnemyAndFacesIt) {
  const auto map = spatial::make_arena(1024);
  Bot bot(map, aggressive());
  auto snap = snapshot_at({0, 0, 24});
  snap.entities.push_back(enemy_at(9, {300, 0, 24}));  // due east
  const auto cmd = bot.think(snap, 1, vt::TimePoint{} + vt::seconds(1), 33);
  EXPECT_NE(cmd.buttons & net::kButtonAttack, 0);
  EXPECT_NEAR(cmd.yaw_deg, 0.0f, 1.0f);  // facing +x
}

TEST(Bot, RespectsClientSideCooldown) {
  const auto map = spatial::make_arena(1024);
  Bot bot(map, aggressive());
  auto snap = snapshot_at({0, 0, 24});
  snap.entities.push_back(enemy_at(9, {300, 0, 24}));
  vt::TimePoint now{};
  int attacks = 0;
  const int frames = 60;  // 60 x 33 ms ~ 2 s
  for (int i = 0; i < frames; ++i) {
    now += vt::millis(33);
    const auto cmd = bot.think(snap, 1, now, 33);
    attacks += (cmd.buttons & net::kButtonAttack) != 0 ? 1 : 0;
  }
  // 2 s at one shot per kAttackCooldown (100 ms): about 20 attacks, far
  // fewer than 60 frames.
  EXPECT_GT(attacks, 10);
  EXPECT_LT(attacks, 25);
}

TEST(Bot, IgnoresDeadAndOutOfRangeEnemies) {
  const auto map = spatial::make_arena(1024);
  Bot bot(map, aggressive());
  auto snap = snapshot_at({0, 0, 24});
  auto corpse = enemy_at(9, {200, 0, 24});
  corpse.state = 0;  // dead
  snap.entities.push_back(corpse);
  snap.entities.push_back(enemy_at(10, {5000, 0, 24}));  // far away
  const auto cmd = bot.think(snap, 1, vt::TimePoint{} + vt::seconds(5), 33);
  EXPECT_EQ(cmd.buttons & (net::kButtonAttack | net::kButtonThrow), 0);
}

TEST(Bot, DoesNotTargetItself) {
  const auto map = spatial::make_arena(1024);
  Bot bot(map, aggressive());
  auto snap = snapshot_at({0, 0, 24});
  snap.entities.push_back(enemy_at(1, {100, 0, 24}));  // own id!
  const auto cmd = bot.think(snap, /*self_id=*/1,
                             vt::TimePoint{} + vt::seconds(5), 33);
  EXPECT_EQ(cmd.buttons & (net::kButtonAttack | net::kButtonThrow), 0);
}

TEST(Bot, PitchesTowardElevatedEnemies) {
  const auto map = spatial::make_arena(1024);
  Bot bot(map, aggressive());
  auto snap = snapshot_at({0, 0, 24});
  snap.entities.push_back(enemy_at(9, {200, 0, 224}));  // 200 up
  const auto cmd = bot.think(snap, 1, vt::TimePoint{} + vt::seconds(1), 33);
  EXPECT_LT(cmd.pitch_deg, -20.0f);  // negative pitch = aiming up
}

TEST(Bot, GrenadeRatioSelectsThrows) {
  const auto map = spatial::make_arena(1024);
  Bot::Config cfg = aggressive();
  cfg.grenade_ratio = 1.0f;
  Bot bot(map, cfg);
  auto snap = snapshot_at({0, 0, 24});
  snap.entities.push_back(enemy_at(9, {300, 0, 24}));
  const auto cmd = bot.think(snap, 1, vt::TimePoint{} + vt::seconds(1), 33);
  EXPECT_NE(cmd.buttons & net::kButtonThrow, 0);
  EXPECT_EQ(cmd.buttons & net::kButtonAttack, 0);
}

TEST(Bot, DeterministicForSeed) {
  const auto map = spatial::make_large_deathmatch(7);
  auto run = [&](uint64_t seed) {
    Bot::Config cfg;
    cfg.seed = seed;
    Bot bot(map, cfg);
    int64_t fp = 0;
    vt::TimePoint now{};
    auto snap = snapshot_at(map.waypoints[0].pos);
    for (int i = 0; i < 100; ++i) {
      now += vt::millis(33);
      const auto cmd = bot.think(snap, 1, now, 33);
      fp = fp * 31 + static_cast<int64_t>(cmd.yaw_deg * 10) + cmd.buttons;
    }
    return fp;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Client, ConnectRetriesUntilServerExists) {
  // The client starts before any server port is open; a late server must
  // still pick it up thanks to connect retries.
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  Client::Config cc;
  cc.local_port = 40000;
  cc.server_port = 27500;
  cc.name = "late";
  Client client(p, net, map, cc);
  p.spawn("client", vt::Domain::kClientFarm, [&] { client.run(); });

  // Fake server appears after 1.2 s and acks the first connect it sees.
  std::unique_ptr<net::Socket> server_sock;
  p.spawn("server", vt::Domain::kServer, [&] {
    p.sleep_for(vt::millis(1200));
    server_sock = net.open(27500);
    auto sel = net.make_selector();
    sel->add(*server_sock);
    net::NetChannel chan(*server_sock, 40000);
    while (p.now() < vt::TimePoint{} + vt::seconds(4)) {
      if (!sel->wait_until(p.now() + vt::millis(50))) continue;
      net::Datagram d;
      while (server_sock->try_recv(d)) {
        net::NetChannel::Incoming info;
        net::ByteReader body(nullptr, 0);
        if (!chan.accept(d, info, body)) continue;
        net::ClientMsgType t;
        if (!decode_client_type(body, t)) continue;
        if (t == net::ClientMsgType::kConnect) {
          net::ConnectAck ack;
          ack.player_id = 42;
          ack.assigned_port = 27500;
          chan.send(net::encode(ack));
        }
      }
    }
    client.request_stop();
  });
  p.run();
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.player_id(), 42u);
}

// Regression: a reconnecting client whose fresh port is already taken
// must step to the next port (counting the collision) instead of
// aborting the process, which is what the old hard-checked open did.
TEST(Client, ReopenRetriesPastOccupiedFreshPort) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = spatial::make_arena(1024);
  // Squat on the port the client's first reconnect will want.
  auto squatter = net.open(41000);

  Client::Config cc;
  cc.local_port = 40000;
  cc.server_port = 27500;
  cc.name = "collide";
  cc.server_silence_timeout = vt::millis(400);
  uint16_t next_fresh = 41000;
  cc.fresh_port = [&next_fresh] { return next_fresh++; };
  Client client(p, net, map, cc);
  client.begin_measurement();
  p.spawn("client", vt::Domain::kClientFarm, [&] { client.run(); });

  // A server that acks every connect, then goes silent — so the client's
  // silence timeout fires and it reconnects from a fresh (squatted) port.
  auto server_sock = net.open(27500);
  uint16_t reconnect_src = 0;
  p.spawn("server", vt::Domain::kServer, [&] {
    auto sel = net.make_selector();
    sel->add(*server_sock);
    while (p.now() < vt::TimePoint{} + vt::seconds(3)) {
      if (!sel->wait_until(p.now() + vt::millis(50))) continue;
      net::Datagram d;
      while (server_sock->try_recv(d)) {
        net::NetChannel chan(*server_sock, d.src_port);
        net::NetChannel::Incoming info;
        net::ByteReader body(nullptr, 0);
        if (!chan.accept(d, info, body)) continue;
        net::ClientMsgType t;
        if (!decode_client_type(body, t)) continue;
        if (t != net::ClientMsgType::kConnect) continue;
        if (d.src_port != 40000) {
          reconnect_src = d.src_port;  // the reconnect arrived
          continue;                    // stay silent: one reconnect is enough
        }
        net::ConnectAck ack;
        ack.player_id = 7;
        ack.assigned_port = 27500;
        chan.send(net::encode(ack));
      }
    }
    client.request_stop();
  });
  p.run();

  EXPECT_GE(client.metrics().silence_reconnects, 1u);
  EXPECT_GE(client.metrics().port_collisions, 1u);
  // The squatter kept its port; the client stepped past it to 41001.
  EXPECT_EQ(reconnect_src, 41001);
}

}  // namespace
}  // namespace qserv::bots
