// End-to-end run of the identical server/client code on the REAL platform
// (std::thread, wall-clock time, actual concurrency). This is the
// configuration a user with a physical SMP would deploy; the test keeps
// wall time short (~1.5 s) but exercises every layer under true
// parallelism: sockets with real cross-thread delivery, the frame
// orchestration barriers, region locks, and live bots.
#include <gtest/gtest.h>

#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/core/sequential_server.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/real_platform.hpp"

namespace qserv {
namespace {

TEST(RealPlatformE2E, SequentialServerServesRealThreads) {
  vt::RealPlatform platform;
  net::VirtualNetwork network(platform, {});
  const auto map = spatial::make_arena(1024);
  core::ServerConfig scfg;
  core::SequentialServer server(platform, network, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 6;
  dcfg.frame_interval = vt::millis(10);  // faster clients, shorter test
  bots::ClientDriver driver(platform, network, map, server, dcfg);

  server.start();
  driver.start();
  platform.call_after(vt::millis(1200), [&] {
    server.request_stop();
    driver.request_stop();
  });
  platform.join_all();

  int connected = 0;
  uint64_t replies = 0;
  for (const auto& c : driver.clients()) {
    connected += c->connected() ? 1 : 0;
    replies += c->metrics().replies;
  }
  EXPECT_EQ(connected, 6);
  EXPECT_GT(replies, 100u);
  EXPECT_GT(server.frames(), 20u);
}

TEST(RealPlatformE2E, ParallelServerRunsUnderRealConcurrency) {
  vt::RealPlatform platform;
  net::VirtualNetwork network(platform, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 4;
  scfg.lock_policy = core::LockPolicy::kOptimized;
  core::ParallelServer server(platform, network, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 16;
  dcfg.frame_interval = vt::millis(10);
  dcfg.aggression = 1.0f;
  bots::ClientDriver driver(platform, network, map, server, dcfg);

  server.start();
  driver.start();
  platform.call_after(vt::millis(1500), [&] {
    server.request_stop();
    driver.request_stop();
  });
  platform.join_all();

  int connected = 0;
  uint64_t replies = 0;
  for (const auto& c : driver.clients()) {
    connected += c->connected() ? 1 : 0;
    replies += c->metrics().replies;
  }
  EXPECT_EQ(connected, 16);
  EXPECT_GT(replies, 300u);
  EXPECT_GT(server.total_requests(), 300u);
  // Frame-protocol sanity under real threads: one master per frame.
  uint64_t master_frames = 0;
  for (const auto& ts : server.thread_stats())
    master_frames += ts.frames_as_master;
  EXPECT_EQ(master_frames, server.frames());
  // The world stayed consistent: every entity's areanode link is correct.
  server.world().tree();
  size_t checked = 0;
  const_cast<core::ParallelServer&>(server).world().for_each_entity(
      [&](const sim::Entity& e) {
        EXPECT_EQ(e.areanode,
                  server.world().tree().link_node_for(e.bounds()));
        ++checked;
      });
  EXPECT_GT(checked, 16u);
}

TEST(RealPlatformE2E, ConservativeLockingAlsoWorksForReal) {
  vt::RealPlatform platform;
  net::VirtualNetwork network(platform, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  scfg.threads = 2;
  scfg.lock_policy = core::LockPolicy::kConservative;
  core::ParallelServer server(platform, network, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 8;
  dcfg.frame_interval = vt::millis(10);
  bots::ClientDriver driver(platform, network, map, server, dcfg);
  server.start();
  driver.start();
  platform.call_after(vt::millis(1000), [&] {
    server.request_stop();
    driver.request_stop();
  });
  platform.join_all();
  uint64_t replies = 0;
  for (const auto& c : driver.clients()) replies += c->metrics().replies;
  EXPECT_GT(replies, 100u);
}

}  // namespace
}  // namespace qserv
