// End-to-end tests: full server + client populations on the virtual-time
// platform, exercising connect, frames, combat, saturation behaviour and
// determinism.
#include <gtest/gtest.h>

#include "src/harness/experiment.hpp"
#include "src/harness/sweep.hpp"

namespace qserv::harness {
namespace {

ExperimentConfig small_config(ServerMode mode, int threads, int players,
                              core::LockPolicy policy) {
  ExperimentConfig cfg = paper_config(mode, threads, players, policy);
  cfg.warmup = vt::seconds(1);
  cfg.measure = vt::seconds(3);
  return cfg;
}

TEST(Integration, SequentialServerServesClients) {
  const auto r = run_experiment(
      small_config(ServerMode::kSequential, 1, 16, core::LockPolicy::kNone));
  EXPECT_EQ(r.connected, 16);
  // 16 clients at ~30 req/s for 3 s -> ~1440 replies.
  EXPECT_GT(r.replies, 1000u);
  EXPECT_GT(r.response_rate, 300.0);
  EXPECT_LT(r.response_ms_mean, 40.0);
  EXPECT_GT(r.frames, 100u);
  // A lightly loaded sequential server is mostly idle.
  EXPECT_GT(r.pct.idle, 0.3);
  EXPECT_EQ(r.pct.lock(), 0.0);
}

TEST(Integration, ParallelServerServesClients) {
  const auto r = run_experiment(small_config(ServerMode::kParallel, 4, 32,
                                             core::LockPolicy::kConservative));
  EXPECT_EQ(r.connected, 32);
  EXPECT_GT(r.replies, 2000u);
  EXPECT_GT(r.frames, 100u);
  EXPECT_GT(r.requests, 2000u);
}

TEST(Integration, GameActuallyHappens) {
  auto cfg = small_config(ServerMode::kParallel, 2, 24,
                          core::LockPolicy::kConservative);
  cfg.measure = vt::seconds(6);
  cfg.bot_aggression = 1.0f;
  const auto r = run_experiment(cfg);
  // Bots fight: somebody must die within 6 simulated seconds of a 24-bot
  // deathmatch with full aggression.
  EXPECT_NE(r.total_frags, 0);
}

TEST(Integration, ParallelDistributesWorkAcrossThreads) {
  const auto r = run_experiment(small_config(ServerMode::kParallel, 4, 48,
                                             core::LockPolicy::kConservative));
  ASSERT_EQ(r.per_thread.size(), 4u);
  // Every thread must have done some request execution (block assignment
  // gives each 12 clients).
  for (const auto& b : r.per_thread) EXPECT_GT(b.exec.ns, 0);
}

TEST(Integration, VirtualTimeRunsAreDeterministic) {
  auto cfg = small_config(ServerMode::kParallel, 2, 16,
                          core::LockPolicy::kConservative);
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.replies, b.replies);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.breakdown.exec.ns, b.breakdown.exec.ns);
  EXPECT_EQ(a.breakdown.lock_leaf.ns, b.breakdown.lock_leaf.ns);
  EXPECT_EQ(a.total_frags, b.total_frags);
}

TEST(Integration, SeedChangesOutcome) {
  auto cfg = small_config(ServerMode::kParallel, 2, 16,
                          core::LockPolicy::kConservative);
  const auto a = run_experiment(cfg);
  cfg.seed = 2;
  const auto b = run_experiment(cfg);
  EXPECT_NE(a.sim_events, b.sim_events);
}

TEST(Integration, LocksAreActuallyTaken) {
  const auto r = run_experiment(small_config(ServerMode::kParallel, 4, 48,
                                             core::LockPolicy::kConservative));
  EXPECT_GT(r.locks.requests_locked, 1000u);
  EXPECT_GT(r.locks.distinct_leaves, r.locks.requests_locked);  // >1 leaf avg
  EXPECT_GT(r.leaves_locked_per_frame_pct, 0.0);
}

TEST(Integration, OptimizedLockingLocksLessOfTheMap) {
  auto base = small_config(ServerMode::kParallel, 4, 48,
                           core::LockPolicy::kConservative);
  base.bot_aggression = 1.0f;  // plenty of long-range interactions
  const auto cons = run_experiment(base);
  base.server.lock_policy = core::LockPolicy::kOptimized;
  const auto opt = run_experiment(base);
  // Conservative long-range locking grabs all 16 leaves per attack;
  // optimized takes a slice.
  EXPECT_LT(opt.distinct_leaves_per_request_pct,
            cons.distinct_leaves_per_request_pct * 0.8);
}

TEST(Integration, RegionAssignmentConnectsEveryone) {
  auto cfg = small_config(ServerMode::kParallel, 4, 32,
                          core::LockPolicy::kConservative);
  cfg.server.assign_policy = core::AssignPolicy::kRegion;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.connected, 32);
  EXPECT_GT(r.replies, 2000u);
}

TEST(Integration, BatchingWindowStillServes) {
  auto cfg = small_config(ServerMode::kParallel, 4, 32,
                          core::LockPolicy::kConservative);
  cfg.server.batch_window = vt::millis(2);
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.connected, 32);
  EXPECT_GT(r.replies, 2000u);
}

TEST(Integration, MoreThreadsReduceExecTimePerThread) {
  // With equal load, per-thread exec time must drop as threads grow.
  const auto r1 = run_experiment(small_config(
      ServerMode::kParallel, 1, 64, core::LockPolicy::kConservative));
  const auto r4 = run_experiment(small_config(
      ServerMode::kParallel, 4, 64, core::LockPolicy::kConservative));
  ASSERT_EQ(r4.per_thread.size(), 4u);
  const double per_thread_exec_1 =
      static_cast<double>(r1.breakdown.exec.ns);
  double max_exec_4 = 0;
  for (const auto& b : r4.per_thread)
    max_exec_4 = std::max(max_exec_4, static_cast<double>(b.exec.ns));
  EXPECT_LT(max_exec_4, per_thread_exec_1 * 0.6);
}

TEST(Integration, WorldPhaseIsSmallFractionOfTime) {
  const auto r = run_experiment(small_config(ServerMode::kSequential, 1, 64,
                                             core::LockPolicy::kNone));
  // Paper: world processing < 5% of total execution time.
  EXPECT_LT(r.pct.world, 0.05);
}

TEST(Integration, SaturationHelperPicksKnee) {
  std::vector<SweepPoint> pts(3);
  std::vector<int> players{64, 96, 128};
  pts[0].result.response_rate = 2000;
  pts[1].result.response_rate = 3000;
  pts[2].result.response_rate = 3050;  // marginal gain: saturated at 96
  EXPECT_EQ(saturation_players(pts, players), 96);
}

}  // namespace
}  // namespace qserv::harness
