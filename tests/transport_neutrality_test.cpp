// Transport-seam neutrality: routing the virtual network through the
// abstract net::Transport interface must leave simulated runs
// bit-identical — same frames, same request totals, same world digest.
// Two independently constructed sessions with the same seeds serve as
// the in-tree witness (the cross-commit witness is qserv-replay
// --selftest, whose dump digests CI compares against committed history).
#include <gtest/gtest.h>

#include "src/bots/client_driver.hpp"
#include "src/core/sequential_server.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/recovery/digest.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv {
namespace {

struct RunResult {
  uint64_t frames = 0;
  uint64_t requests = 0;
  uint64_t replies = 0;
  uint64_t digest = 0;
  net::TransportCounters net;
};

RunResult run_session() {
  vt::SimPlatform platform;
  net::VirtualNetwork network(platform, {});
  const auto map = spatial::make_large_deathmatch(7);
  core::ServerConfig scfg;
  core::SequentialServer server(platform, network, map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = 12;
  bots::ClientDriver driver(platform, network, map, server, dcfg);
  server.start();
  driver.start();
  platform.call_after(vt::seconds(3), [&] {
    server.request_stop();
    driver.request_stop();
  });
  platform.run();
  RunResult r;
  r.frames = server.frames();
  r.requests = server.total_requests();
  r.replies = server.total_replies();
  r.digest = recovery::world_digest(server.world(), nullptr);
  r.net = network.counters();
  return r;
}

TEST(TransportNeutrality, VirtualRunsAreBitIdenticalThroughTheSeam) {
  const RunResult a = run_session();
  const RunResult b = run_session();
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.replies, b.replies);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.net.packets_sent, b.net.packets_sent);
  EXPECT_EQ(a.net.bytes_sent, b.net.bytes_sent);
  EXPECT_EQ(a.net.packets_dropped, b.net.packets_dropped);
  // Sanity: the session actually did something.
  EXPECT_GT(a.frames, 50u);
  EXPECT_GT(a.replies, 500u);
  // The virtual segment never truncates — the counter exists only so the
  // real transport's bench block has an identical shape.
  EXPECT_EQ(a.net.packets_truncated, 0u);
}

}  // namespace
}  // namespace qserv
