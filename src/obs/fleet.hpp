// Fleet observability plane: one object that watches an entire
// multi-shard fleet through the shard::FleetObserver seam and turns it
// into three coherent artifacts —
//
//  * one merged Chrome trace: every shard engine renders as its own
//    Chrome process (pid = shard_pid_base + shard), worker spans under
//    it, a per-shard handoff track carrying flow-annotated spans (a
//    session migrating A→B draws as a connected arrow between the two
//    shards' timelines), and a per-shard supervisor track carrying
//    instant events for quarantine / restore / tail-replay / shed;
//
//  * a federated metrics view: each shard keeps its own MetricsRegistry
//    (re-attached across supervisor rebuilds, so a restored engine keeps
//    reporting); fleet_snapshot() prefixes per-shard samples with
//    "shard<i>." and aggregates them into "fleet.*" (counters summed,
//    histograms merged bucket-wise) next to the plane's own supervisor /
//    handoff / recovery counters;
//
//  * an SLO verdict: an obs::SloMonitor evaluated per observation window
//    over every shard's snapshot plus the fleet snapshot, with breaches
//    kept as structured events and emitted as trace instants.
//
// Track-writer discipline (the tracer is wait-free because each track
// has one writer at a time): worker tracks are written by their engine
// thread; the handoff track of shard i only from i's master window; the
// supervisor track of shard i and the SLO track only from platform timer
// context (ticks are self-rescheduling, so they never overlap
// themselves). The shed path writes a dead shard's tracks from the
// supervisor — its engine is quiesced, so the single-writer rule holds.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/slo.hpp"
#include "src/obs/trace.hpp"
#include "src/shard/observer.hpp"

namespace qserv::shard {
class ShardManager;
}

namespace qserv::obs {

// Merges labeled registries into one federated sample list: every input
// sample reappears as "<label>.<name>", and shard-crossing aggregates
// are appended as "fleet.<name>" — counters summed, histograms merged
// bucket-wise and re-reduced to percentiles (gauges stay per-shard:
// there is no meaningful sum of last-written values).
std::vector<MetricSample> federate(
    const std::vector<std::pair<std::string, const MetricsRegistry*>>&
        parts);

class FleetObs final : public shard::FleetObserver {
 public:
  struct Config {
    std::vector<SloSpec> slos = SloMonitor::default_fleet_slos();
    // >0 arms the lost-client accounting (fleet.clients.lost = expected
    // minus the fleet-wide connected count, floored at zero).
    int expected_clients = 0;
    int fleet_pid = 1;       // Chrome pid of the fleet-level tracks
    int shard_pid_base = 2;  // shard i renders as pid shard_pid_base + i
  };

  // `tracer` may be null: metrics federation and SLO evaluation still
  // run, only the timeline artifacts are skipped.
  explicit FleetObs(Tracer* tracer);
  FleetObs(Tracer* tracer, Config cfg);
  ~FleetObs() override;

  FleetObs(const FleetObs&) = delete;
  FleetObs& operator=(const FleetObs&) = delete;

  // Binds to a fleet: registers as the manager's observer, names the
  // trace processes, and attaches tracer + per-shard registry to every
  // engine. Call after the ShardManager is built and before start();
  // this object must outlive the manager's run.
  void attach(shard::ShardManager& mgr);

  // --- shard::FleetObserver (see observer.hpp for calling contexts) ---
  void on_engine_built(int shard, core::ParallelServer& server) override;
  void on_escalation(int shard, const char* why) override;
  void on_restore(int shard, bool ok, bool used_tail, uint64_t tail_frames,
                  double pause_ms, const char* mode) override;
  void on_shed(int shard, uint64_t sessions, const char* why) override;
  void on_handoff_out(int src, int dst, uint64_t flow) override;
  void on_shed_handoff(int src, int dst, uint64_t flow) override;
  void on_handoff_in(int dst, uint64_t flow) override;
  void on_handoff_returned(int at_shard, int to_shard, uint64_t flow,
                           bool supervisor_ctx) override;
  void on_handoff_overflow(int target, uint64_t flow) override;

  // One observation window: refreshes the fleet gauges that derive from
  // heartbeat atomics (connected / lost clients), then runs the SLO
  // monitor over every shard snapshot and the fleet snapshot. Mid-run
  // safe (reads only atomics and live instruments); call from platform
  // timer context, post-warmup, and once after the run stops.
  void evaluate_window();

  // Post-run harvest: collect_server() into each live shard's registry
  // (frames, requests, lock hot list) — plain engine reads, so only call
  // once the fleet has stopped.
  void collect_final();

  // Federated sample list: "shard<i>.*" + "fleet.*" (see federate()).
  std::vector<MetricSample> fleet_snapshot() const;
  std::string fleet_json() const;  // qserv-metrics-v1

  MetricsRegistry& shard_metrics(int i) { return *shard_regs_[i]; }
  MetricsRegistry& fleet_metrics() { return fleet_reg_; }
  SloMonitor& slo() { return slo_; }
  const SloMonitor& slo() const { return slo_; }
  Tracer* tracer() const { return tracer_; }
  int shard_pid(int shard) const { return cfg_.shard_pid_base + shard; }
  // Handoffs begun whose adoption has not been observed yet.
  size_t flows_in_flight() const;

 private:
  void attach_engine(int shard, core::ParallelServer& server);
  int64_t now_ns() const;
  void note_flow_begin(int src_track, const char* span_name, int dst,
                       uint64_t flow);

  Tracer* tracer_;
  Config cfg_;
  shard::ShardManager* mgr_ = nullptr;

  std::vector<std::unique_ptr<MetricsRegistry>> shard_regs_;
  MetricsRegistry fleet_reg_;
  SloMonitor slo_;

  // Trace geometry (all -1 / empty when tracer_ == null).
  std::vector<int> handoff_track_;     // written by shard's master window
  std::vector<int> supervisor_track_;  // written by supervisor ticks
  std::vector<int> generation_;        // engine generations seen per shard
  int slo_track_ = -1;

  // Cached fleet instruments (stable pointers into fleet_reg_).
  Counter* handoffs_out_ = nullptr;
  Counter* handoffs_in_ = nullptr;
  Counter* escalations_ = nullptr;
  Counter* restores_ = nullptr;
  Counter* tail_replays_ = nullptr;
  Counter* sheds_ = nullptr;
  Counter* shed_sessions_ = nullptr;
  Counter* fresh_rebuilds_ = nullptr;
  Counter* breaker_trips_ = nullptr;
  Counter* handoff_returns_ = nullptr;
  Counter* overflow_sheds_ = nullptr;
  Gauge* last_pause_ms_ = nullptr;
  Gauge* connected_ = nullptr;
  Gauge* lost_ = nullptr;
  HistogramMetric* handoff_latency_ms_ = nullptr;

  // Lost-client accounting state (see evaluate_window): latched until
  // the fleet has been seen fully connected once, debounced across two
  // consecutive windows.
  bool saw_full_fleet_ = false;
  int prev_raw_lost_ = 0;

  // flow id -> extraction time; inserted by any master window (or the
  // supervisor's shed), erased at adoption, hence the mutex.
  mutable std::mutex flows_mu_;
  std::unordered_map<uint64_t, int64_t> flow_begin_ns_;
};

}  // namespace qserv::obs
