#include "src/obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace qserv::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
}

void JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::value(double d) {
  comma();
  if (!std::isfinite(d)) {  // JSON has no inf/nan
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", d);
    out_ += buf;
  }
  need_comma_ = true;
}

void JsonWriter::value(int64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(uint64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::null() {
  comma();
  out_ += "null";
  need_comma_ = true;
}

void JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  need_comma_ = true;
}

}  // namespace qserv::obs
