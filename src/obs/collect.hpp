// Collectors: one-shot harvest of subsystem counters into a
// MetricsRegistry. The network stack, fault scheduler and lock manager
// already keep cheap always-on counters; these functions copy them into
// named registry instruments so one snapshot/export shows the whole
// system (Envoy-style stats sinks, minus the sink thread).
//
// Call at the end of a run, or periodically — counters are cumulative, so
// repeated collection just refreshes the values.
#pragma once

namespace qserv::core {
class Server;
}
namespace qserv::net {
class Transport;
}

namespace qserv::obs {

class MetricsRegistry;

// net.* counters (packets, bytes, drops) and, when fault injection is
// active, fault.* counters (burst/partition/blackhole drops, delays).
// Transport-agnostic: the virtual network and the real UDP transport
// populate the same instruments, so a qserv-bench-v1 network block is
// identical in shape on both. net.packets_truncated is real-only (the
// virtual segment never truncates).
void collect_network(const net::Transport& net, MetricsRegistry& reg);

// server.* counters (frames, requests, replies, connects, evictions,
// rejected connects, invariant violations, frame-trace drops) and the
// lock.* contention hot-list: per-leaf lock ops / contended acquisitions /
// wait for the `hotlist_k` busiest leaves, as
// "lock.leaf.<ordinal>.{ops,contended,wait_us}".
void collect_server(const core::Server& server, MetricsRegistry& reg,
                    int hotlist_k = 8);

}  // namespace qserv::obs
