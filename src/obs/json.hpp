// Minimal JSON emission: string escaping plus a streaming writer with
// automatic comma management. The observability layer (trace export,
// metrics snapshots, bench --json) emits everything through this, so the
// escaping rules live in exactly one place.
//
// The writer is append-only and does not validate nesting beyond a debug
// check; callers are expected to produce well-formed documents (the obs
// tests run a full syntax check over every exporter's output).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qserv::obs {

// Escapes `s` for inclusion inside a JSON string literal (without the
// surrounding quotes): ", \, and control characters below 0x20 become
// their escape sequences (\uXXXX for the ones without a shorthand).
std::string json_escape(std::string_view s);

// Streaming JSON writer over a caller-owned string.
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // Containers. key() must precede any value inside an object.
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);

  // Scalars.
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(int64_t v);
  void value(uint64_t v);
  void value(int v) { value(static_cast<int64_t>(v)); }
  void value(bool b);
  void null();
  // Emits `json` verbatim in value position (must itself be well-formed).
  void raw(std::string_view json);

  // Shorthand for key(k); value(v).
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  void comma();  // emits "," between siblings

  std::string& out_;
  bool need_comma_ = false;
};

}  // namespace qserv::obs
