#include "src/obs/json_parse.hpp"

#include <cctype>
#include <cstdlib>

namespace qserv::obs {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    skip_ws();
    if (!value(out, 0)) {
      if (error != nullptr)
        *error = err_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr)
        *error = "trailing garbage at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return object(out, depth);
      case '[':
        return array(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return string(out.str);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false") || fail("bad literal");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null") || fail("bad literal");
      default:
        return number(out);
    }
  }

  bool object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    eat('{');
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      if (!string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    eat('[');
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  static void append_utf8(std::string& s, uint32_t cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool hex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9')
        out |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<uint32_t>(c - 'A' + 10);
      else
        return fail("bad \\u escape");
    }
    return true;
  }

  bool string(std::string& out) {
    eat('"');
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          if (!hex4(cp)) return false;
          // Surrogate pair: combine when a low surrogate follows.
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            uint32_t lo = 0;
            if (!hex4(lo)) return false;
            if (lo >= 0xDC00 && lo <= 0xDFFF)
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape");
      }
    }
  }

  bool number(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out.type = JsonValue::Type::kNumber;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string err_;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue* JsonValue::at_path(std::string_view dotted) const {
  const JsonValue* cur = this;
  while (cur != nullptr && !dotted.empty()) {
    const size_t dot = dotted.find('.');
    const std::string_view head =
        dot == std::string_view::npos ? dotted : dotted.substr(0, dot);
    dotted = dot == std::string_view::npos ? std::string_view()
                                           : dotted.substr(dot + 1);
    cur = cur->find(head);
  }
  return cur;
}

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue();
  return Parser(text).parse(out, error);
}

}  // namespace qserv::obs
