#include "src/obs/fleet.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <string_view>

#include "src/core/parallel_server.hpp"
#include "src/obs/collect.hpp"
#include "src/shard/manager.hpp"
#include "src/util/check.hpp"

namespace qserv::obs {

namespace {

// Presentational width of a handoff marker span: wide enough for the
// trace UI to bind and render the flow arrow, far below a frame period.
constexpr int64_t kFlowSpanNs = 50'000;

MetricSample histogram_sample(std::string name, const Histogram& h) {
  MetricSample s;
  s.name = std::move(name);
  s.kind = MetricKind::kHistogram;
  s.count = h.count();
  s.value = h.stats().mean();
  s.min = h.stats().min();
  s.max = h.stats().max();
  s.p50 = h.percentile(50.0);
  s.p95 = h.percentile(95.0);
  s.p99 = h.percentile(99.0);
  return s;
}

}  // namespace

std::vector<MetricSample> federate(
    const std::vector<std::pair<std::string, const MetricsRegistry*>>&
        parts) {
  std::vector<MetricSample> out;
  // Pass 1: per-part samples under "<label>.<name>".
  for (const auto& [label, reg] : parts) {
    for (MetricSample s : reg->snapshot()) {
      s.name = label + "." + s.name;
      out.push_back(std::move(s));
    }
  }
  // Pass 2: cross-part aggregates under "fleet.<name>". Counters sum;
  // histograms merge at the bucket level (percentiles of percentiles
  // would be meaningless) — via for_each, which exposes the raw
  // instruments rather than the reduced snapshot.
  std::map<std::string, uint64_t> counter_sums;
  std::map<std::string, std::optional<Histogram>> merged;
  for (const auto& [label, reg] : parts) {
    reg->for_each([&](const std::string& name, MetricKind kind,
                      const Counter* c, const Gauge* /*g*/,
                      const HistogramMetric* h) {
      if (kind == MetricKind::kCounter) {
        counter_sums[name] += c->value();
      } else if (kind == MetricKind::kHistogram) {
        const Histogram snap = h->snapshot();
        auto& slot = merged[name];
        if (slot.has_value())
          slot->merge(snap);
        else
          slot = snap;
      }
    });
  }
  for (const auto& [name, sum] : counter_sums) {
    MetricSample s;
    s.name = "fleet." + name;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(sum);
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : merged)
    out.push_back(histogram_sample("fleet." + name, *h));
  return out;
}

FleetObs::FleetObs(Tracer* tracer) : FleetObs(tracer, Config()) {}

FleetObs::FleetObs(Tracer* tracer, Config cfg)
    : tracer_(tracer), cfg_(std::move(cfg)), slo_(cfg_.slos) {
  handoffs_out_ = &fleet_reg_.counter("fleet.handoffs.out");
  handoffs_in_ = &fleet_reg_.counter("fleet.handoffs.in");
  escalations_ = &fleet_reg_.counter("fleet.supervisor.escalations");
  restores_ = &fleet_reg_.counter("fleet.supervisor.restores");
  tail_replays_ = &fleet_reg_.counter("fleet.supervisor.tail_replays");
  sheds_ = &fleet_reg_.counter("fleet.supervisor.sheds");
  shed_sessions_ = &fleet_reg_.counter("fleet.supervisor.shed_sessions");
  fresh_rebuilds_ = &fleet_reg_.counter("fleet.supervisor.fresh_rebuilds");
  breaker_trips_ = &fleet_reg_.counter("fleet.supervisor.breaker_trips");
  handoff_returns_ = &fleet_reg_.counter("fleet.handoff.returns");
  overflow_sheds_ = &fleet_reg_.counter("fleet.handoff.overflow_sheds");
  last_pause_ms_ = &fleet_reg_.gauge("fleet.recovery.last_pause_ms");
  connected_ = &fleet_reg_.gauge("fleet.clients.connected");
  lost_ = &fleet_reg_.gauge("fleet.clients.lost");
  handoff_latency_ms_ =
      &fleet_reg_.histogram("fleet.handoff.latency_ms", 1e-3);
}

FleetObs::~FleetObs() = default;

void FleetObs::attach(shard::ShardManager& mgr) {
  QSERV_CHECK_MSG(mgr_ == nullptr, "FleetObs attaches to one fleet");
  mgr_ = &mgr;
  const int n = mgr.shards();
  shard_regs_.clear();
  for (int i = 0; i < n; ++i)
    shard_regs_.push_back(std::make_unique<MetricsRegistry>());
  handoff_track_.assign(static_cast<size_t>(n), -1);
  supervisor_track_.assign(static_cast<size_t>(n), -1);
  generation_.assign(static_cast<size_t>(n), 0);
  if (tracer_ != nullptr) {
    tracer_->bind(mgr.platform());
    tracer_->set_process_name(cfg_.fleet_pid, "fleet");
    slo_track_ = tracer_->make_track("fleet/slo", cfg_.fleet_pid);
    for (int i = 0; i < n; ++i) {
      const std::string label = "shard-" + std::to_string(i);
      tracer_->set_process_name(shard_pid(i), label);
      handoff_track_[static_cast<size_t>(i)] =
          tracer_->make_track(label + "/handoff", shard_pid(i));
      supervisor_track_[static_cast<size_t>(i)] =
          tracer_->make_track(label + "/supervisor", shard_pid(i));
    }
  }
  for (int i = 0; i < n; ++i) attach_engine(i, *mgr.shard(i).server());
  mgr.set_observer(this);
}

void FleetObs::attach_engine(int shard, core::ParallelServer& server) {
  const int gen = generation_[static_cast<size_t>(shard)];
  std::string prefix = "shard-" + std::to_string(shard) + "/";
  // Rebuilt generations get their own worker rows: the dead generation's
  // spans stay in the export, labeled apart from the successor's.
  if (gen > 0) prefix += "g" + std::to_string(gen) + "/";
  prefix += "t";
  server.attach_observability(tracer_, shard_regs_[shard].get(),
                              shard_pid(shard), prefix);
}

void FleetObs::on_engine_built(int shard, core::ParallelServer& server) {
  ++generation_[static_cast<size_t>(shard)];
  attach_engine(shard, server);
}

void FleetObs::on_escalation(int shard, const char* why) {
  escalations_->inc();
  if (tracer_ != nullptr)
    tracer_->record_instant(supervisor_track_[static_cast<size_t>(shard)],
                            tracer_->intern(std::string("quarantine:") +
                                            why));
}

void FleetObs::on_restore(int shard, bool ok, bool used_tail,
                          uint64_t tail_frames, double pause_ms,
                          const char* mode) {
  if (ok) restores_->inc();
  if (used_tail) tail_replays_->inc();
  if (std::string_view(mode) == "fresh-rebuild") fresh_rebuilds_->inc();
  last_pause_ms_->set(pause_ms);
  if (tracer_ == nullptr) return;
  const int track = supervisor_track_[static_cast<size_t>(shard)];
  if (used_tail)
    tracer_->record_instant(
        track, tracer_->intern("tail-replay:" + std::to_string(tail_frames) +
                               "f"));
  tracer_->record_instant(
      track, ok ? tracer_->intern(std::string("restore:") + mode)
                : "restore-failed");
}

void FleetObs::on_shed(int shard, uint64_t sessions, const char* why) {
  sheds_->inc();
  shed_sessions_->inc(sessions);
  if (std::string_view(why) == "crash-loop") breaker_trips_->inc();
  if (tracer_ != nullptr)
    tracer_->record_instant(
        supervisor_track_[static_cast<size_t>(shard)],
        tracer_->intern(std::string("shed:") + why + ":" +
                        std::to_string(sessions)));
}

void FleetObs::on_handoff_returned(int at_shard, int to_shard,
                                   uint64_t flow, bool supervisor_ctx) {
  handoff_returns_->inc();
  if (tracer_ == nullptr) return;
  // Track choice keeps the single-writer rule: the supervisor's reclaim
  // writes at_shard's supervisor track, at_shard's own master window
  // (adopt retry budget) writes its handoff track.
  const int track = supervisor_ctx
                        ? supervisor_track_[static_cast<size_t>(at_shard)]
                        : handoff_track_[static_cast<size_t>(at_shard)];
  tracer_->record_instant(
      track, tracer_->intern("handoff-return>shard-" +
                             std::to_string(to_shard)));
  (void)flow;  // the re-post traces as a fresh flow span via on_handoff_out
}

void FleetObs::on_handoff_overflow(int target, uint64_t flow) {
  overflow_sheds_->inc();
  // The flow will never be adopted: drop its begin stamp so it does not
  // read as forever in-flight.
  std::lock_guard<std::mutex> lock(flows_mu_);
  flow_begin_ns_.erase(flow);
  (void)target;
}

void FleetObs::note_flow_begin(int src_track, const char* span_name,
                               int /*dst*/, uint64_t flow) {
  const int64_t t = now_ns();
  {
    std::lock_guard<std::mutex> lock(flows_mu_);
    flow_begin_ns_[flow] = t;
  }
  handoffs_out_->inc();
  if (tracer_ != nullptr && src_track >= 0)
    tracer_->record_flow_span(src_track, span_name, t, kFlowSpanNs, -1,
                              flow, /*outgoing=*/true);
}

void FleetObs::on_handoff_out(int src, int dst, uint64_t flow) {
  note_flow_begin(
      tracer_ != nullptr ? handoff_track_[static_cast<size_t>(src)] : -1,
      tracer_ != nullptr
          ? tracer_->intern("handoff-out>shard-" + std::to_string(dst))
          : nullptr,
      dst, flow);
}

void FleetObs::on_shed_handoff(int src, int dst, uint64_t flow) {
  // Supervisor context: the dead shard's engine is quiesced, so writing
  // its supervisor-owned track keeps the single-writer rule.
  note_flow_begin(
      tracer_ != nullptr ? supervisor_track_[static_cast<size_t>(src)] : -1,
      tracer_ != nullptr
          ? tracer_->intern("shed>shard-" + std::to_string(dst))
          : nullptr,
      dst, flow);
}

void FleetObs::on_handoff_in(int dst, uint64_t flow) {
  const int64_t t = now_ns();
  int64_t begun = -1;
  {
    std::lock_guard<std::mutex> lock(flows_mu_);
    auto it = flow_begin_ns_.find(flow);
    if (it != flow_begin_ns_.end()) {
      begun = it->second;
      flow_begin_ns_.erase(it);
    }
  }
  handoffs_in_->inc();
  if (begun >= 0)
    handoff_latency_ms_->observe(static_cast<double>(t - begun) * 1e-6);
  if (tracer_ != nullptr)
    tracer_->record_flow_span(handoff_track_[static_cast<size_t>(dst)],
                              "handoff-in", t, kFlowSpanNs, -1, flow,
                              /*outgoing=*/false);
}

void FleetObs::evaluate_window() {
  QSERV_CHECK(mgr_ != nullptr);
  const double t = static_cast<double>(mgr_->platform().now().ns) * 1e-9;
  // Fleet gauges derived from heartbeat atomics (mid-run safe: the
  // supervisor reads the same fields the same way).
  int connected = 0;
  for (int i = 0; i < mgr_->shards(); ++i)
    if (!mgr_->shard(i).down()) connected += mgr_->shard(i).beat_clients();
  connected_->set(connected);
  // Lost-client accounting. "Lost" means a previously-connected client is
  // gone, so the count is latched off until the fleet has been observed
  // fully connected once (the join ramp is not a loss). It is also
  // debounced across two consecutive windows: heartbeat counts are
  // published at frame boundaries, so a single-window dip while a
  // restored shard re-admits its sessions reads as staleness, not loss —
  // a client missing for two windows running is the real thing.
  const int raw_lost = cfg_.expected_clients > 0
                           ? std::max(0, cfg_.expected_clients - connected)
                           : 0;
  if (cfg_.expected_clients > 0 && connected >= cfg_.expected_clients)
    saw_full_fleet_ = true;
  lost_->set(saw_full_fleet_ ? std::min(raw_lost, prev_raw_lost_) : 0);
  prev_raw_lost_ = saw_full_fleet_ ? raw_lost : 0;
  // SLO pass: each shard's own snapshot (frame-time budget binds here),
  // then the fleet snapshot (recovery / handoff / lost-client budgets).
  // Specs skip snapshots that lack their metric.
  for (int i = 0; i < mgr_->shards(); ++i) {
    if (mgr_->shard(i).down()) continue;
    slo_.evaluate(shard_regs_[static_cast<size_t>(i)]->snapshot(), t,
                  "shard" + std::to_string(i), tracer_, slo_track_);
  }
  slo_.evaluate(fleet_reg_.snapshot(), t, "fleet", tracer_, slo_track_);
}

void FleetObs::collect_final() {
  QSERV_CHECK(mgr_ != nullptr);
  for (int i = 0; i < mgr_->shards(); ++i) {
    const shard::Shard& s = mgr_->shard(i);
    if (s.down() || s.server() == nullptr) continue;
    collect_server(*s.server(), *shard_regs_[static_cast<size_t>(i)]);
  }
}

std::vector<MetricSample> FleetObs::fleet_snapshot() const {
  std::vector<std::pair<std::string, const MetricsRegistry*>> parts;
  parts.reserve(shard_regs_.size());
  for (size_t i = 0; i < shard_regs_.size(); ++i)
    parts.emplace_back("shard" + std::to_string(i), shard_regs_[i].get());
  std::vector<MetricSample> out = federate(parts);
  // The plane's own fleet.* instruments are already fleet-scoped.
  for (MetricSample& s : fleet_reg_.snapshot())
    out.push_back(std::move(s));
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::string FleetObs::fleet_json() const {
  return samples_to_json(fleet_snapshot());
}

size_t FleetObs::flows_in_flight() const {
  std::lock_guard<std::mutex> lock(flows_mu_);
  return flow_begin_ns_.size();
}

int64_t FleetObs::now_ns() const {
  return mgr_ != nullptr ? mgr_->platform().now().ns : 0;
}

}  // namespace qserv::obs
