// The observability subsystem's attachment to the frame engine: a
// FrameHook that feeds the whole-frame histograms. Tracing stays inline in
// the phases (spans need precise start/stop around each phase body); this
// hook covers only the end-of-frame metric points.
#pragma once

#include "src/core/frame_hooks.hpp"

namespace qserv::obs {

class MetricsRegistry;
class HistogramMetric;

class ServerObs final : public core::FrameHook {
 public:
  explicit ServerObs(core::Engine& engine) : engine_(engine) {}

  ServerObs(const ServerObs&) = delete;
  ServerObs& operator=(const ServerObs&) = delete;

  // Re-points the histogram handles; nullptr detaches.
  void attach(MetricsRegistry* metrics);

  void on_frame_end(vt::TimePoint frame_start, int frame_moves,
                    core::ThreadStats& st) override;

 private:
  core::Engine& engine_;
  HistogramMetric* frame_duration_ms_ = nullptr;
  HistogramMetric* moves_per_frame_ = nullptr;
};

}  // namespace qserv::obs
