// Low-overhead per-thread event tracer (the paper's §4 measurement
// methodology, upgraded from aggregate totals to an event-level timeline).
//
// Each server thread owns a *track*: a fixed-capacity ring buffer of
// completed spans (name, start, duration). Emission is wait-free — a
// track has exactly one writer, so recording is two loads, a bump of a
// plain index, and a struct store; there is no locking anywhere on the
// hot path. The only shared state is the `enabled_` flag (one relaxed
// atomic load per span — the single branch the hot path pays when tracing
// is off). When the ring wraps, the oldest spans are overwritten and a
// per-track dropped counter keeps the loss visible.
//
// Export produces Chrome trace-event JSON ("traceEvents" with complete
// "X" events), loadable in chrome://tracing or https://ui.perfetto.dev —
// one row per server thread, spans nested by time containment, so a whole
// frame pipeline (world, receive, exec, lock waits, barriers, reply) is
// visible per thread on a timeline.
//
// Time source: vt::Platform::now(), i.e. virtual time under SimPlatform
// (deterministic, unperturbed by tracing — recording charges no modelled
// compute) and wall time under RealPlatform.
//
// Compile-time kill switch: building with -DQSERV_OBS_NO_TRACING turns
// TraceScope into an empty struct, removing even the branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/vthread/platform.hpp"

namespace qserv::obs {

// One completed span. `name` must be a string literal (or otherwise
// outlive the tracer); storing the pointer keeps recording allocation-free.
struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int64_t frame = -1;  // optional frame id, -1 = none (emitted as args)
};

class Tracer {
 public:
  struct Config {
    size_t capacity_per_track = 1 << 16;  // spans kept per track (ring)
    bool enabled = true;
  };

  // A tracer may be constructed unbound (no platform): the harness binds
  // it to the server's platform when observability is attached, so bench
  // mains can own a tracer without ever seeing the SimPlatform inside
  // run_experiment(). now_ns() reports 0 until bound.
  Tracer();
  explicit Tracer(Config cfg);
  explicit Tracer(vt::Platform& platform);
  Tracer(vt::Platform& platform, Config cfg);

  void bind(vt::Platform& platform) { platform_ = &platform; }
  bool bound() const { return platform_ != nullptr; }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Registers a timeline row. Call before the owning thread starts
  // emitting; the returned track id is written by exactly one thread.
  int make_track(std::string name);
  int track_count() const { return static_cast<int>(tracks_.size()); }

  // Runtime switch, checked once per span by TraceScope.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  int64_t now_ns() const {
    return platform_ != nullptr ? platform_->now().ns : 0;
  }

  // Records one completed span on `track`. Single-writer per track.
  void record(int track, const char* name, int64_t start_ns, int64_t dur_ns,
              int64_t frame = -1);

  // --- post-run inspection / export (call after writers have stopped) ---
  // Spans recorded on `track`, oldest first (at most capacity_per_track).
  std::vector<TraceEvent> events(int track) const;
  // Spans overwritten by ring wrap on `track`.
  uint64_t dropped(int track) const;
  uint64_t total_recorded() const;  // across tracks, including overwritten
  const std::string& track_name(int track) const;

  // Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string export_chrome_trace() const;
  // Writes export_chrome_trace() to `path`; returns false on I/O error.
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct Track {
    std::string name;
    std::vector<TraceEvent> ring;  // sized capacity once, never resized
    uint64_t written = 0;          // total spans ever recorded
  };

  vt::Platform* platform_ = nullptr;
  Config cfg_;
  std::atomic<bool> enabled_;
  std::vector<std::unique_ptr<Track>> tracks_;
};

#ifndef QSERV_OBS_NO_TRACING

// RAII span: opens at construction, records at destruction. Cost when
// `tracer` is null or disabled: one branch, nothing recorded.
class TraceScope {
 public:
  TraceScope(Tracer* tracer, int track, const char* name, int64_t frame = -1)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        track_(track),
        name_(name),
        frame_(frame) {
    if (tracer_ != nullptr) start_ns_ = tracer_->now_ns();
  }
  ~TraceScope() {
    if (tracer_ != nullptr)
      tracer_->record(track_, name_, start_ns_,
                      tracer_->now_ns() - start_ns_, frame_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* tracer_;
  int track_;
  const char* name_;
  int64_t frame_;
  int64_t start_ns_ = 0;
};

#else  // QSERV_OBS_NO_TRACING: spans compile away entirely

class TraceScope {
 public:
  TraceScope(Tracer*, int, const char*, int64_t = -1) {}
};

#endif

}  // namespace qserv::obs
