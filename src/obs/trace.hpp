// Low-overhead per-thread event tracer (the paper's §4 measurement
// methodology, upgraded from aggregate totals to an event-level timeline).
//
// Each server thread owns a *track*: a fixed-capacity ring buffer of
// completed spans (name, start, duration). Emission is wait-free — a
// track has exactly one writer, so recording is two loads, a bump of a
// plain index, and a struct store; there is no locking anywhere on the
// hot path. The only shared state is the `enabled_` flag (one relaxed
// atomic load per span — the single branch the hot path pays when tracing
// is off). When the ring wraps, the oldest spans are overwritten and a
// per-track dropped counter keeps the loss visible.
//
// Fleet mode (PR 7): one Tracer spans a whole multi-shard process. Each
// track carries a Chrome *pid* so every shard engine renders as its own
// process group in one merged export; tracks can be registered while
// other tracks are recording (a supervisor-rebuilt engine registers fresh
// tracks mid-run), so registration takes a mutex and publishes the new
// count with a release store — the record path stays lock-free because
// the track array is pre-reserved to `max_tracks` and never reallocates.
// Besides spans there are instant events (supervisor state transitions)
// and flow-annotated spans: a span may carry a flow id + direction, and
// the export emits Chrome "s"/"f" flow events bound to that span so a
// session handoff renders as an arrow connecting two shards' timelines.
//
// Export produces Chrome trace-event JSON ("traceEvents" with complete
// "X" events), loadable in chrome://tracing or https://ui.perfetto.dev —
// one row per server thread, spans nested by time containment, so a whole
// frame pipeline (world, receive, exec, lock waits, barriers, reply) is
// visible per thread on a timeline.
//
// Time source: vt::Platform::now(), i.e. virtual time under SimPlatform
// (deterministic, unperturbed by tracing — recording charges no modelled
// compute) and wall time under RealPlatform.
//
// Compile-time kill switch: building with -DQSERV_OBS_NO_TRACING turns
// TraceScope into an empty struct, removing even the branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/vthread/platform.hpp"

namespace qserv::obs {

// One completed event. `name` must be a string literal or a pointer
// returned by Tracer::intern() (anything outliving the tracer works);
// storing the pointer keeps recording allocation-free.
struct TraceEvent {
  enum class Kind : uint8_t { kSpan = 0, kInstant = 1 };

  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int64_t frame = -1;  // optional frame id, -1 = none (emitted as args)
  uint64_t flow = 0;   // flow id, 0 = none
  Kind kind = Kind::kSpan;
  int8_t flow_dir = 0;  // +1 = flow starts here, -1 = flow terminates here
};

class Tracer {
 public:
  struct Config {
    size_t capacity_per_track = 1 << 16;  // spans kept per track (ring)
    // Upper bound on tracks ever registered. The track table is reserved
    // to this once, so registering a track mid-run (shard rebuild) never
    // reallocates under a concurrent recorder.
    size_t max_tracks = 256;
    bool enabled = true;
  };

  // A tracer may be constructed unbound (no platform): the harness binds
  // it to the server's platform when observability is attached, so bench
  // mains can own a tracer without ever seeing the SimPlatform inside
  // run_experiment(). now_ns() reports 0 until bound.
  Tracer();
  explicit Tracer(Config cfg);
  explicit Tracer(vt::Platform& platform);
  Tracer(vt::Platform& platform, Config cfg);

  void bind(vt::Platform& platform) { platform_ = &platform; }
  bool bound() const { return platform_ != nullptr; }

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Registers a timeline row under Chrome process `pid`. Safe to call
  // while other tracks are recording; the returned track id is written
  // by exactly one thread at a time.
  int make_track(std::string name, int pid = 1);
  int track_count() const {
    return static_cast<int>(track_count_.load(std::memory_order_acquire));
  }

  // Names the Chrome process group `pid` in the export ("shard-2", ...).
  void set_process_name(int pid, std::string name);

  // Copies `s` into tracer-owned storage and returns a pointer valid for
  // the tracer's lifetime — for event names built at runtime (SLO names,
  // shard labels) that can't be string literals.
  const char* intern(const std::string& s);

  // Runtime switch, checked once per span by TraceScope.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  int64_t now_ns() const {
    return platform_ != nullptr ? platform_->now().ns : 0;
  }

  // Records one completed span on `track`. Single-writer per track.
  void record(int track, const char* name, int64_t start_ns, int64_t dur_ns,
              int64_t frame = -1);
  // Instant event ("i" in the export) at now_ns(), e.g. a supervisor
  // state transition. Same single-writer-per-track rule as record().
  void record_instant(int track, const char* name, int64_t frame = -1);
  // Span carrying one end of a flow: `outgoing` starts flow `flow` at the
  // span's begin timestamp, else the flow terminates here. The export
  // emits the span plus the matching Chrome "s"/"f" flow event.
  void record_flow_span(int track, const char* name, int64_t start_ns,
                        int64_t dur_ns, int64_t frame, uint64_t flow,
                        bool outgoing);

  // --- post-run inspection / export (call after writers have stopped) ---
  // Events recorded on `track`, oldest first (at most capacity_per_track).
  std::vector<TraceEvent> events(int track) const;
  // Events overwritten by ring wrap on `track`.
  uint64_t dropped(int track) const;
  uint64_t total_recorded() const;  // across tracks, including overwritten
  const std::string& track_name(int track) const;
  int track_pid(int track) const;

  // Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string export_chrome_trace() const;
  // Writes export_chrome_trace() to `path`; returns false on I/O error.
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct Track {
    std::string name;
    int pid = 1;
    std::vector<TraceEvent> ring;  // sized capacity once, never resized
    uint64_t written = 0;          // total events ever recorded
  };

  Track& track(int id) { return *tracks_[static_cast<size_t>(id)]; }
  const Track& track(int id) const {
    return *tracks_[static_cast<size_t>(id)];
  }

  vt::Platform* platform_ = nullptr;
  Config cfg_;
  std::atomic<bool> enabled_;
  // Registration (cold) is serialized by `registry_mu_`; the count is
  // published with release so a recorder that learned a track id through
  // any means sees the fully constructed Track. Recording never locks.
  mutable std::mutex registry_mu_;
  std::atomic<size_t> track_count_{0};
  std::vector<std::unique_ptr<Track>> tracks_;
  std::vector<std::pair<int, std::string>> process_names_;
  std::deque<std::string> interned_;
};

#ifndef QSERV_OBS_NO_TRACING

// RAII span: opens at construction, records at destruction. Cost when
// `tracer` is null or disabled: one branch, nothing recorded.
class TraceScope {
 public:
  TraceScope(Tracer* tracer, int track, const char* name, int64_t frame = -1)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        track_(track),
        name_(name),
        frame_(frame) {
    if (tracer_ != nullptr) start_ns_ = tracer_->now_ns();
  }
  ~TraceScope() {
    if (tracer_ != nullptr)
      tracer_->record(track_, name_, start_ns_,
                      tracer_->now_ns() - start_ns_, frame_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* tracer_;
  int track_;
  const char* name_;
  int64_t frame_;
  int64_t start_ns_ = 0;
};

#else  // QSERV_OBS_NO_TRACING: spans compile away entirely

class TraceScope {
 public:
  TraceScope(Tracer*, int, const char*, int64_t = -1) {}
};

#endif

}  // namespace qserv::obs
