#include "src/obs/collect.hpp"

#include <string>

#include "src/core/lock_manager.hpp"
#include "src/core/server.hpp"
#include "src/net/fault_scheduler.hpp"
#include "src/net/transport.hpp"
#include "src/obs/metrics.hpp"
#include "src/resilience/governor.hpp"
#include "src/resilience/watchdog.hpp"

namespace qserv::obs {

void collect_network(const net::Transport& net, MetricsRegistry& reg) {
  const net::TransportCounters c = net.counters();
  reg.counter("net.packets_sent").set(c.packets_sent);
  reg.counter("net.packets_dropped").set(c.packets_dropped);
  reg.counter("net.packets_overflowed").set(c.packets_overflowed);
  reg.counter("net.packets_to_closed_ports").set(c.packets_to_closed_ports);
  reg.counter("net.bytes_sent").set(c.bytes_sent);
  reg.counter("net.packets_truncated").set(c.packets_truncated);
  if (const net::FaultScheduler* faults = net.faults_or_null()) {
    const auto& f = faults->counters();
    reg.counter("fault.burst_drops").set(f.burst_drops);
    reg.counter("fault.partition_drops").set(f.partition_drops);
    reg.counter("fault.blackhole_drops").set(f.blackhole_drops);
    reg.counter("fault.delayed_packets").set(f.delayed_packets);
  }
}

void collect_server(const core::Server& server, MetricsRegistry& reg,
                    int hotlist_k) {
  reg.counter("server.frames").set(server.frames());
  reg.counter("server.requests").set(server.total_requests());
  reg.counter("server.replies").set(server.total_replies());
  reg.counter("server.evictions").set(server.evictions());
  reg.counter("server.rejected_connects").set(server.rejected_connects());
  reg.counter("server.invariant_violations")
      .set(server.invariant_violations());
  reg.counter("server.frame_trace_dropped").set(server.frame_trace_dropped());
  reg.gauge("server.connected_clients")
      .set(static_cast<double>(server.connected_clients()));

  // Resilience subsystem: backpressure, admission, governor, watchdog.
  reg.counter("resilience.rejected_busy").set(server.rejected_busy());
  reg.counter("resilience.moves_rate_limited")
      .set(server.total_moves_rate_limited());
  reg.counter("resilience.packets_oversized")
      .set(server.total_packets_oversized());
  reg.counter("resilience.moves_coalesced")
      .set(server.total_moves_coalesced());
  reg.counter("resilience.governor_evictions")
      .set(server.governor_evictions());
  const auto& gov = server.governor();
  reg.gauge("resilience.degrade_level")
      .set(static_cast<double>(gov.level()));
  reg.gauge("resilience.frame_p95_ms").set(gov.p95_ms());
  reg.counter("resilience.governor_steps_down").set(gov.counters().steps_down);
  reg.counter("resilience.governor_steps_up").set(gov.counters().steps_up);
  reg.counter("resilience.frames_degraded")
      .set(gov.counters().frames_degraded);
  if (const auto* wd = server.watchdog()) {
    reg.counter("resilience.stalls_detected").set(wd->counters().stalls_detected);
    reg.counter("resilience.stalls_recovered")
        .set(wd->counters().stalls_recovered);
    reg.counter("resilience.stall_reassignments")
        .set(server.stall_reassignments());
    reg.counter("resilience.stalls_injected").set(server.stalls_injected());
  }

  const auto chan = server.netchan_totals();
  reg.counter("netchan.packets_sent").set(chan.packets_sent);
  reg.counter("netchan.packets_accepted").set(chan.packets_accepted);
  reg.counter("netchan.drops_detected").set(chan.drops_detected);
  reg.counter("netchan.duplicates_rejected").set(chan.duplicates_rejected);

  const auto hot = server.lock_manager().contention_hotlist(hotlist_k);
  for (const auto& leaf : hot) {
    const std::string base =
        "lock.leaf." + std::to_string(leaf.leaf_ordinal) + ".";
    reg.counter(base + "ops").set(leaf.lock_ops);
    reg.counter(base + "contended").set(leaf.contended);
    reg.gauge(base + "wait_us").set(leaf.wait.micros());
  }
}

}  // namespace qserv::obs
