// Metrics registry: named counters, gauges, and histograms with snapshot
// and JSON export — the Envoy-style stats layer for qserv. Subsystems
// that accept a registry pointer (server frame loop, lock manager, and
// the collectors in obs/collect.hpp) update live instruments; the harness
// takes periodic or final snapshots.
//
// Instrument references returned by the registry are stable for the
// registry's lifetime (node-based storage), so hot paths hold a pointer
// and never touch the name map again.
//
// Thread safety: counters and gauges are relaxed atomics; histogram
// observations take a std::mutex (uncontended under SimPlatform, whose
// fibers share one OS thread; cheap under RealPlatform where only
// observation-heavy paths share an instrument). Snapshotting is safe
// concurrent with updates — values are read racily, which is fine for
// reporting.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/histogram.hpp"

namespace qserv::obs {

class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void set(uint64_t n) { v_.store(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class HistogramMetric {
 public:
  explicit HistogramMetric(double smallest = 1e-6, double base = 1.25,
                           int buckets = 160)
      : hist_(smallest, base, buckets) {}

  void observe(double x) {
    std::lock_guard<std::mutex> g(mu_);
    hist_.add(x);
  }
  // Copy of the underlying histogram (percentile queries, merging).
  Histogram snapshot() const {
    std::lock_guard<std::mutex> g(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

// One metric's value at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  // counter/gauge value, histogram mean
  // Histogram-only fields.
  uint64_t count = 0;
  double min = 0.0, max = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. The same name must keep the same kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double smallest = 1e-6,
                             double base = 1.25, int buckets = 160);

  // All instruments, sorted by name.
  std::vector<MetricSample> snapshot() const;

  // Visits every instrument in name order; exactly one of the three
  // instrument pointers is non-null, matching `kind`. Instruments are
  // live — reads race benignly, as in snapshot(). Used by the fleet
  // federation layer, which needs the raw histograms (percentiles do not
  // merge; buckets do).
  void for_each(const std::function<void(const std::string&, MetricKind,
                                         const Counter*, const Gauge*,
                                         const HistogramMetric*)>& fn) const;

  // {"schema":"qserv-metrics-v1","metrics":[...]}.
  std::string to_json() const;
  bool write_json(const std::string& path) const;

  size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  mutable std::mutex mu_;  // guards the name map, not the instruments
  std::map<std::string, Entry> entries_;
};

// A timestamped snapshot, for periodic capture during a run.
struct TimedSnapshot {
  double t_seconds = 0.0;  // platform time when taken
  std::vector<MetricSample> samples;
};

// Serializes a sample list in the qserv-metrics-v1 shape
// ({"schema":"qserv-metrics-v1","metrics":[...]}); MetricsRegistry::
// to_json and the fleet federation both emit through this.
std::string samples_to_json(const std::vector<MetricSample>& samples);

}  // namespace qserv::obs
