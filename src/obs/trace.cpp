#include "src/obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "src/obs/json.hpp"
#include "src/util/check.hpp"

namespace qserv::obs {

Tracer::Tracer() : Tracer(Config()) {}

Tracer::Tracer(Config cfg) : cfg_(cfg), enabled_(cfg.enabled) {
  QSERV_CHECK(cfg_.capacity_per_track > 0);
  QSERV_CHECK(cfg_.max_tracks > 0);
  // Reserved once: record() indexes this vector without a lock, so it
  // must never reallocate while tracks are being registered mid-run.
  tracks_.reserve(cfg_.max_tracks);
}

Tracer::Tracer(vt::Platform& platform) : Tracer(Config()) {
  platform_ = &platform;
}

Tracer::Tracer(vt::Platform& platform, Config cfg) : Tracer(cfg) {
  platform_ = &platform;
}

int Tracer::make_track(std::string name, int pid) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  QSERV_CHECK(tracks_.size() < cfg_.max_tracks);
  auto t = std::make_unique<Track>();
  t->name = std::move(name);
  t->pid = pid;
  t->ring.resize(cfg_.capacity_per_track);
  tracks_.push_back(std::move(t));
  const size_t count = tracks_.size();
  track_count_.store(count, std::memory_order_release);
  return static_cast<int>(count) - 1;
}

void Tracer::set_process_name(int pid, std::string name) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& [known_pid, known_name] : process_names_) {
    if (known_pid == pid) {
      known_name = std::move(name);
      return;
    }
  }
  process_names_.emplace_back(pid, std::move(name));
}

const char* Tracer::intern(const std::string& s) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& known : interned_)
    if (known == s) return known.c_str();
  interned_.push_back(s);
  return interned_.back().c_str();
}

void Tracer::record(int track, const char* name, int64_t start_ns,
                    int64_t dur_ns, int64_t frame) {
  Track& t = this->track(track);
  TraceEvent& slot = t.ring[t.written % t.ring.size()];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.frame = frame;
  slot.flow = 0;
  slot.kind = TraceEvent::Kind::kSpan;
  slot.flow_dir = 0;
  ++t.written;
}

void Tracer::record_instant(int track, const char* name, int64_t frame) {
  Track& t = this->track(track);
  TraceEvent& slot = t.ring[t.written % t.ring.size()];
  slot.name = name;
  slot.start_ns = now_ns();
  slot.dur_ns = 0;
  slot.frame = frame;
  slot.flow = 0;
  slot.kind = TraceEvent::Kind::kInstant;
  slot.flow_dir = 0;
  ++t.written;
}

void Tracer::record_flow_span(int track, const char* name, int64_t start_ns,
                              int64_t dur_ns, int64_t frame, uint64_t flow,
                              bool outgoing) {
  Track& t = this->track(track);
  TraceEvent& slot = t.ring[t.written % t.ring.size()];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.frame = frame;
  slot.flow = flow;
  slot.kind = TraceEvent::Kind::kSpan;
  slot.flow_dir = outgoing ? 1 : -1;
  ++t.written;
}

std::vector<TraceEvent> Tracer::events(int track) const {
  const Track& t = this->track(track);
  const size_t cap = t.ring.size();
  const size_t n = std::min<uint64_t>(t.written, cap);
  std::vector<TraceEvent> out;
  out.reserve(n);
  // Oldest surviving span first: the ring index where the next write
  // would land is also where the oldest entry lives once wrapped.
  const size_t start = t.written > cap ? t.written % cap : 0;
  for (size_t i = 0; i < n; ++i) out.push_back(t.ring[(start + i) % cap]);
  return out;
}

uint64_t Tracer::dropped(int track) const {
  const Track& t = this->track(track);
  return t.written > t.ring.size() ? t.written - t.ring.size() : 0;
}

uint64_t Tracer::total_recorded() const {
  const int n = track_count();
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) total += track(i).written;
  return total;
}

const std::string& Tracer::track_name(int track) const {
  return this->track(track).name;
}

int Tracer::track_pid(int track) const { return this->track(track).pid; }

std::string Tracer::export_chrome_trace() const {
  const int n = track_count();
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Metadata: one process_name row per distinct pid, one named thread
  // row per track. Unnamed pids fall back to "qserv".
  std::vector<std::pair<int, std::string>> pids;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    pids = process_names_;
  }
  for (int i = 0; i < n; ++i) {
    const int pid = track(i).pid;
    bool known = false;
    for (const auto& [known_pid, unused] : pids) known |= known_pid == pid;
    if (!known) pids.emplace_back(pid, "qserv");
  }
  for (const auto& [pid, name] : pids) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", static_cast<int64_t>(pid));
    w.kv("tid", int64_t{0});
    w.key("args");
    w.begin_object();
    w.kv("name", name);
    w.end_object();
    w.end_object();
  }
  for (int i = 0; i < n; ++i) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", static_cast<int64_t>(track(i).pid));
    w.kv("tid", static_cast<int64_t>(i));
    w.key("args");
    w.begin_object();
    w.kv("name", track(i).name);
    w.end_object();
    w.end_object();
  }

  // Complete ("X") events; timestamps are microseconds in this format.
  // Instants are "i"; a flow-annotated span additionally emits the Chrome
  // "s"/"f" flow event at its start timestamp so the importer binds the
  // arrow to the enclosing slice.
  for (int i = 0; i < n; ++i) {
    const int64_t pid = track(i).pid;
    const int64_t tid = i;
    for (const TraceEvent& e : events(i)) {
      const char* name = e.name != nullptr ? e.name : "?";
      const double ts_us = static_cast<double>(e.start_ns) * 1e-3;
      w.begin_object();
      w.kv("name", name);
      if (e.kind == TraceEvent::Kind::kInstant) {
        w.kv("cat", "fleet");
        w.kv("ph", "i");
        w.kv("ts", ts_us);
        w.kv("s", "t");
      } else {
        w.kv("cat", e.flow != 0 ? "handoff" : "frame");
        w.kv("ph", "X");
        w.kv("ts", ts_us);
        w.kv("dur", static_cast<double>(e.dur_ns) * 1e-3);
      }
      w.kv("pid", pid);
      w.kv("tid", tid);
      if (e.frame >= 0) {
        w.key("args");
        w.begin_object();
        w.kv("frame", e.frame);
        w.end_object();
      }
      w.end_object();
      if (e.kind == TraceEvent::Kind::kSpan && e.flow != 0) {
        w.begin_object();
        // Flow events of one id must share a name for chrome://tracing
        // to connect them; the span name above carries the direction.
        w.kv("name", "session-handoff");
        w.kv("cat", "handoff");
        w.kv("ph", e.flow_dir > 0 ? "s" : "f");
        if (e.flow_dir < 0) w.kv("bp", "e");
        w.kv("id", static_cast<int64_t>(e.flow));
        w.kv("ts", ts_us);
        w.kv("pid", pid);
        w.kv("tid", tid);
        w.end_object();
      }
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = export_chrome_trace();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace qserv::obs
