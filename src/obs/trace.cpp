#include "src/obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "src/obs/json.hpp"
#include "src/util/check.hpp"

namespace qserv::obs {

Tracer::Tracer() : Tracer(Config()) {}

Tracer::Tracer(Config cfg) : cfg_(cfg), enabled_(cfg.enabled) {
  QSERV_CHECK(cfg_.capacity_per_track > 0);
}

Tracer::Tracer(vt::Platform& platform) : Tracer(Config()) {
  platform_ = &platform;
}

Tracer::Tracer(vt::Platform& platform, Config cfg) : Tracer(cfg) {
  platform_ = &platform;
}

int Tracer::make_track(std::string name) {
  auto t = std::make_unique<Track>();
  t->name = std::move(name);
  t->ring.resize(cfg_.capacity_per_track);
  tracks_.push_back(std::move(t));
  return static_cast<int>(tracks_.size()) - 1;
}

void Tracer::record(int track, const char* name, int64_t start_ns,
                    int64_t dur_ns, int64_t frame) {
  Track& t = *tracks_[static_cast<size_t>(track)];
  TraceEvent& slot = t.ring[t.written % t.ring.size()];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.dur_ns = dur_ns;
  slot.frame = frame;
  ++t.written;
}

std::vector<TraceEvent> Tracer::events(int track) const {
  const Track& t = *tracks_[static_cast<size_t>(track)];
  const size_t cap = t.ring.size();
  const size_t n = std::min<uint64_t>(t.written, cap);
  std::vector<TraceEvent> out;
  out.reserve(n);
  // Oldest surviving span first: the ring index where the next write
  // would land is also where the oldest entry lives once wrapped.
  const size_t start = t.written > cap ? t.written % cap : 0;
  for (size_t i = 0; i < n; ++i) out.push_back(t.ring[(start + i) % cap]);
  return out;
}

uint64_t Tracer::dropped(int track) const {
  const Track& t = *tracks_[static_cast<size_t>(track)];
  return t.written > t.ring.size() ? t.written - t.ring.size() : 0;
}

uint64_t Tracer::total_recorded() const {
  uint64_t n = 0;
  for (const auto& t : tracks_) n += t->written;
  return n;
}

const std::string& Tracer::track_name(int track) const {
  return tracks_[static_cast<size_t>(track)]->name;
}

std::string Tracer::export_chrome_trace() const {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Metadata: one process ("qserv") and one named thread row per track.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", int64_t{1});
  w.kv("tid", int64_t{0});
  w.key("args");
  w.begin_object();
  w.kv("name", "qserv");
  w.end_object();
  w.end_object();
  for (size_t i = 0; i < tracks_.size(); ++i) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", int64_t{1});
    w.kv("tid", static_cast<int64_t>(i));
    w.key("args");
    w.begin_object();
    w.kv("name", tracks_[i]->name);
    w.end_object();
    w.end_object();
  }

  // Complete ("X") events; timestamps are microseconds in this format.
  for (size_t i = 0; i < tracks_.size(); ++i) {
    for (const TraceEvent& e : events(static_cast<int>(i))) {
      w.begin_object();
      w.kv("name", e.name != nullptr ? e.name : "?");
      w.kv("cat", "frame");
      w.kv("ph", "X");
      w.kv("ts", static_cast<double>(e.start_ns) * 1e-3);
      w.kv("dur", static_cast<double>(e.dur_ns) * 1e-3);
      w.kv("pid", int64_t{1});
      w.kv("tid", static_cast<int64_t>(i));
      if (e.frame >= 0) {
        w.key("args");
        w.begin_object();
        w.kv("frame", e.frame);
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = export_chrome_trace();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace qserv::obs
