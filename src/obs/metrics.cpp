#include "src/obs/metrics.hpp"

#include <cstdio>

#include "src/obs/json.hpp"
#include "src/util/check.hpp"

namespace qserv::obs {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr) {
    QSERV_CHECK_MSG(e.gauge == nullptr && e.histogram == nullptr,
                    "metric kind mismatch");
    e.kind = MetricKind::kCounter;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  Entry& e = entries_[name];
  if (e.gauge == nullptr) {
    QSERV_CHECK_MSG(e.counter == nullptr && e.histogram == nullptr,
                    "metric kind mismatch");
    e.kind = MetricKind::kGauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            double smallest, double base,
                                            int buckets) {
  std::lock_guard<std::mutex> g(mu_);
  Entry& e = entries_[name];
  if (e.histogram == nullptr) {
    QSERV_CHECK_MSG(e.counter == nullptr && e.gauge == nullptr,
                    "metric kind mismatch");
    e.kind = MetricKind::kHistogram;
    e.histogram = std::make_unique<HistogramMetric>(smallest, base, buckets);
  }
  return *e.histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram h = e.histogram->snapshot();
        s.count = h.count();
        s.value = h.stats().mean();
        s.min = h.stats().min();
        s.max = h.stats().max();
        s.p50 = h.percentile(50.0);
        s.p95 = h.percentile(95.0);
        s.p99 = h.percentile(99.0);
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::for_each(
    const std::function<void(const std::string&, MetricKind, const Counter*,
                             const Gauge*, const HistogramMetric*)>& fn)
    const {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& [name, e] : entries_)
    fn(name, e.kind, e.counter.get(), e.gauge.get(), e.histogram.get());
}

std::string MetricsRegistry::to_json() const {
  return samples_to_json(snapshot());
}

std::string samples_to_json(const std::vector<MetricSample>& samples) {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "qserv-metrics-v1");
  w.key("metrics");
  w.begin_array();
  for (const MetricSample& s : samples) {
    w.begin_object();
    w.kv("name", s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        w.kv("type", "counter");
        w.kv("value", static_cast<uint64_t>(s.value));
        break;
      case MetricKind::kGauge:
        w.kv("type", "gauge");
        w.kv("value", s.value);
        break;
      case MetricKind::kHistogram:
        w.kv("type", "histogram");
        w.kv("count", s.count);
        w.kv("mean", s.value);
        w.kv("min", s.min);
        w.kv("max", s.max);
        w.kv("p50", s.p50);
        w.kv("p95", s.p95);
        w.kv("p99", s.p99);
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return entries_.size();
}

}  // namespace qserv::obs
