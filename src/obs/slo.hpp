// Declarative SLO monitor: a list of SloSpecs — each naming a registry
// metric, the statistic to read off it, a comparison and a bound — is
// evaluated against metric snapshots once per observation window. The
// paper's core budget (a 12.5 ms frame at QuakeWorld's 80 Hz ceiling,
// §2) becomes the default frame-time SLO; the recovery and shard layers
// add budgets of their own (restore pause, handoff latency, lost
// clients). Breaches are kept as structured events, optionally emitted
// as trace instants onto a fleet track, and surfaced to benches through
// an exit-nonzero helper — so "the fleet held its SLOs" is a machine
// checkable claim, not a log line.
//
// Thread model: evaluate() is called from one context at a time (the
// harness's periodic observation timer, then once post-run); it is not
// thread-safe against itself. Spec/breach storage is stable, so
// instant-event names interned from specs stay valid for export.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace qserv::obs {

struct SloSpec {
  // Which statistic of the sample to compare. kValue reads the
  // counter/gauge value (histogram mean); the rest are histogram-only.
  enum class Stat : uint8_t { kValue, kP50, kP95, kP99, kMax, kCount };
  enum class Cmp : uint8_t { kLE, kGE, kEQ };

  std::string name;    // short label: "frame_p99"
  std::string metric;  // sample name to evaluate: "server.frame_duration_ms"
  Stat stat = Stat::kValue;
  Cmp cmp = Cmp::kLE;
  double bound = 0.0;
  // Histogram specs: skip evaluation until this many observations exist
  // in the window (percentiles of a near-empty histogram are noise).
  uint64_t min_count = 0;
};

// One violated spec in one observation window.
struct SloBreach {
  std::string slo;     // SloSpec::name
  std::string metric;  // SloSpec::metric
  std::string scope;   // "fleet", "shard1", ... — whose snapshot breached
  double observed = 0.0;
  double bound = 0.0;
  double t_seconds = 0.0;  // platform time of the evaluation
};

class SloMonitor {
 public:
  SloMonitor();  // default_fleet_slos()
  explicit SloMonitor(std::vector<SloSpec> specs);

  // Evaluates every spec against one snapshot. Specs whose metric is
  // absent from `samples` are skipped (a spec only binds where its
  // subsystem reports). Returns the number of breaches found in this
  // call; all breaches accumulate in breaches(). With a tracer, each
  // breach emits an instant "slo:<name>" on `track`.
  int evaluate(const std::vector<MetricSample>& samples, double t_seconds,
               const std::string& scope, Tracer* tracer = nullptr,
               int track = -1);

  const std::vector<SloSpec>& specs() const { return specs_; }
  const std::vector<SloBreach>& breaches() const { return breaches_; }
  uint64_t evaluations() const { return evaluations_; }
  bool ok() const { return breaches_.empty(); }

  // {"schema":"qserv-slo-v1","evaluations":N,"breaches":[...]}.
  std::string to_json() const;

  // Bench hook: 0 when every window held, 1 otherwise (breaches listed
  // on stderr).
  int exit_code() const;

  // The fleet defaults: p99 frame time vs the 12.5 ms budget, supervised
  // recovery pause vs the same between-frames budget, cross-shard
  // handoff latency, and zero lost clients.
  static std::vector<SloSpec> default_fleet_slos();

 private:
  std::vector<SloSpec> specs_;
  std::vector<SloBreach> breaches_;
  uint64_t evaluations_ = 0;
};

}  // namespace qserv::obs
