#include "src/obs/engine_hook.hpp"

#include "src/obs/metrics.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::obs {

void ServerObs::attach(MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    frame_duration_ms_ = &metrics->histogram("server.frame_duration_ms", 1e-3);
    moves_per_frame_ = &metrics->histogram("server.moves_per_frame", 0.5);
  } else {
    frame_duration_ms_ = nullptr;
    moves_per_frame_ = nullptr;
  }
}

void ServerObs::on_frame_end(vt::TimePoint frame_start, int frame_moves,
                             core::ThreadStats& /*st*/) {
  if (frame_duration_ms_ == nullptr) return;
  frame_duration_ms_->observe(
      (engine_.platform().now() - frame_start).millis());
  moves_per_frame_->observe(static_cast<double>(frame_moves));
}

}  // namespace qserv::obs
