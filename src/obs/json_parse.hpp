// Minimal recursive-descent JSON parser (DOM into JsonValue). The repo
// emits JSON through obs::JsonWriter; this is the matching reader, added
// for tools/qserv-trend which must consume committed BENCH_*.json files
// without external dependencies. Covers the full JSON grammar (objects,
// arrays, strings with escapes incl. \uXXXX, numbers, true/false/null);
// rejects trailing garbage; depth-limited against adversarial nesting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qserv::obs {

struct JsonValue {
  enum class Type : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member lookup; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  // Dotted-path lookup through nested objects: "response.rate_per_s".
  const JsonValue* at_path(std::string_view dotted) const;

  double number_or(double fallback) const {
    return is_number() ? number : fallback;
  }
  std::string string_or(std::string fallback) const {
    return is_string() ? str : std::move(fallback);
  }
};

// Parses `text` into `out`. On failure returns false and, when `error`
// is non-null, describes the first problem with its byte offset.
bool json_parse(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

}  // namespace qserv::obs
