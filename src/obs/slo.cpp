#include "src/obs/slo.hpp"

#include <cstdio>
#include <utility>

#include "src/obs/json.hpp"

namespace qserv::obs {

namespace {

const char* stat_name(SloSpec::Stat s) {
  switch (s) {
    case SloSpec::Stat::kValue:
      return "value";
    case SloSpec::Stat::kP50:
      return "p50";
    case SloSpec::Stat::kP95:
      return "p95";
    case SloSpec::Stat::kP99:
      return "p99";
    case SloSpec::Stat::kMax:
      return "max";
    case SloSpec::Stat::kCount:
      return "count";
  }
  return "?";
}

const char* cmp_name(SloSpec::Cmp c) {
  switch (c) {
    case SloSpec::Cmp::kLE:
      return "<=";
    case SloSpec::Cmp::kGE:
      return ">=";
    case SloSpec::Cmp::kEQ:
      return "==";
  }
  return "?";
}

double read_stat(const MetricSample& s, SloSpec::Stat stat) {
  switch (stat) {
    case SloSpec::Stat::kValue:
      return s.value;
    case SloSpec::Stat::kP50:
      return s.p50;
    case SloSpec::Stat::kP95:
      return s.p95;
    case SloSpec::Stat::kP99:
      return s.p99;
    case SloSpec::Stat::kMax:
      return s.max;
    case SloSpec::Stat::kCount:
      return static_cast<double>(s.count);
  }
  return 0.0;
}

bool holds(double observed, SloSpec::Cmp cmp, double bound) {
  switch (cmp) {
    case SloSpec::Cmp::kLE:
      return observed <= bound;
    case SloSpec::Cmp::kGE:
      return observed >= bound;
    case SloSpec::Cmp::kEQ:
      return observed == bound;
  }
  return true;
}

}  // namespace

SloMonitor::SloMonitor() : SloMonitor(default_fleet_slos()) {}

SloMonitor::SloMonitor(std::vector<SloSpec> specs)
    : specs_(std::move(specs)) {}

int SloMonitor::evaluate(const std::vector<MetricSample>& samples,
                         double t_seconds, const std::string& scope,
                         Tracer* tracer, int track) {
  ++evaluations_;
  int found = 0;
  for (const SloSpec& spec : specs_) {
    const MetricSample* sample = nullptr;
    for (const MetricSample& s : samples) {
      if (s.name == spec.metric) {
        sample = &s;
        break;
      }
    }
    if (sample == nullptr) continue;
    if (sample->kind == MetricKind::kHistogram &&
        sample->count < spec.min_count)
      continue;
    const double observed = read_stat(*sample, spec.stat);
    if (holds(observed, spec.cmp, spec.bound)) continue;
    SloBreach b;
    b.slo = spec.name;
    b.metric = spec.metric;
    b.scope = scope;
    b.observed = observed;
    b.bound = spec.bound;
    b.t_seconds = t_seconds;
    breaches_.push_back(std::move(b));
    ++found;
    if (tracer != nullptr && track >= 0)
      tracer->record_instant(track, tracer->intern("slo:" + spec.name));
  }
  return found;
}

std::string SloMonitor::to_json() const {
  std::string out;
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "qserv-slo-v1");
  w.kv("evaluations", evaluations_);
  w.key("specs");
  w.begin_array();
  for (const SloSpec& s : specs_) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("metric", s.metric);
    w.kv("stat", stat_name(s.stat));
    w.kv("cmp", cmp_name(s.cmp));
    w.kv("bound", s.bound);
    w.end_object();
  }
  w.end_array();
  w.key("breaches");
  w.begin_array();
  for (const SloBreach& b : breaches_) {
    w.begin_object();
    w.kv("slo", b.slo);
    w.kv("metric", b.metric);
    w.kv("scope", b.scope);
    w.kv("observed", b.observed);
    w.kv("bound", b.bound);
    w.kv("t_seconds", b.t_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

int SloMonitor::exit_code() const {
  if (breaches_.empty()) return 0;
  for (const SloBreach& b : breaches_) {
    std::fprintf(stderr,
                 "SLO BREACH %s (%s, scope %s): observed %.4f vs bound "
                 "%.4f at t=%.2fs\n",
                 b.slo.c_str(), b.metric.c_str(), b.scope.c_str(),
                 b.observed, b.bound, b.t_seconds);
  }
  return 1;
}

std::vector<SloSpec> SloMonitor::default_fleet_slos() {
  std::vector<SloSpec> specs;
  // The paper's frame budget: 80 Hz ceiling -> 12.5 ms per frame. p99 of
  // the per-engine frame-duration histogram must stay under it.
  specs.push_back({"frame_p99", "server.frame_duration_ms",
                   SloSpec::Stat::kP99, SloSpec::Cmp::kLE, 12.5, 50});
  // Supervised restore must also fit the between-frames budget (the
  // gauge is host-clock: benches enforce it on an idle box).
  specs.push_back({"recovery_pause", "fleet.recovery.last_pause_ms",
                   SloSpec::Stat::kValue, SloSpec::Cmp::kLE, 12.5, 0});
  // A migrating session must be adopted within a handful of frames.
  specs.push_back({"handoff_p99", "fleet.handoff.latency_ms",
                   SloSpec::Stat::kP99, SloSpec::Cmp::kLE, 150.0, 1});
  // Zero clients unaccounted for across the fleet.
  specs.push_back({"lost_clients", "fleet.clients.lost",
                   SloSpec::Stat::kValue, SloSpec::Cmp::kLE, 0.0, 0});
  return specs;
}

}  // namespace qserv::obs
