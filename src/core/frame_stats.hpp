// Execution-time breakdowns and lock-analysis counters — the paper's
// measurement methodology (§4). Every server thread owns a ThreadStats;
// the harness aggregates them into the percentages Figures 4-7 plot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/histogram.hpp"
#include "src/vthread/time.hpp"

namespace qserv::obs {
class Tracer;
}

namespace qserv::core {

// The components of total execution time, matching §4's definitions.
struct Breakdown {
  vt::Duration exec{};        // request execution (move processing)
  vt::Duration lock_leaf{};   // waiting for leaf (region) locks
  vt::Duration lock_parent{}; // waiting for parent/list locks
  vt::Duration receive{};     // receiving + parsing requests
  vt::Duration reply{};       // forming and sending replies
  // Stage split of `reply` on the DESIGN.md §15 hot path (view build,
  // shared cluster encode, per-client finalize, socket sends). These are
  // components OF reply, not additions to it: reply == their sum when
  // the new path runs, and they stay zero on the legacy path. Excluded
  // from total().
  vt::Duration reply_view{};
  vt::Duration reply_encode{};
  vt::Duration reply_finalize{};
  vt::Duration reply_send{};
  vt::Duration world{};       // world physics update (master only)
  vt::Duration intra_wait{};  // barrier before the reply phase
  vt::Duration inter_wait_world{};  // waiting for the world update
  vt::Duration inter_wait_frame{};  // waiting for the prior frame to end
  vt::Duration idle{};        // blocked in select with no work

  vt::Duration lock() const { return lock_leaf + lock_parent; }
  vt::Duration inter_wait() const {
    return inter_wait_world + inter_wait_frame;
  }
  vt::Duration total() const {
    return exec + lock() + receive + reply + world + intra_wait +
           inter_wait() + idle;
  }
  // Total excluding idle (the paper's "non-idle" denominator for §5.2).
  vt::Duration busy() const { return total() - idle; }

  Breakdown& operator+=(const Breakdown& o);
};

// Per-request and per-frame lock statistics (Figure 7, §5.1).
struct LockStats {
  uint64_t requests_locked = 0;       // requests that acquired any region
  uint64_t lock_requests = 0;         // leaf lock requests incl. re-locks
  uint64_t distinct_leaves = 0;       // sum over requests of distinct leaves
  uint64_t relocks = 0;               // lock requests on already-held leaves
  uint64_t parent_list_locks = 0;     // node-list lock operations

  LockStats& operator+=(const LockStats& o);
};

struct ThreadStats {
  Breakdown breakdown;
  LockStats locks;
  uint64_t frames_participated = 0;
  uint64_t frames_as_master = 0;
  uint64_t requests_processed = 0;
  uint64_t replies_sent = 0;
  uint64_t connects = 0;
  // Overload-protection counters (src/resilience/): moves dropped by the
  // per-client token bucket, datagrams dropped by the oversize clamp, and
  // moves folded into an earlier same-frame move by the governor's
  // coalescing rung.
  uint64_t moves_rate_limited = 0;
  uint64_t packets_oversized = 0;
  uint64_t moves_coalesced = 0;
  // Requests handled per frame participated in (§5.2 imbalance analysis).
  StatAccumulator requests_per_frame;
  // Per-frame trace (frame id, moves processed); only filled while the
  // server's frame trace is enabled. Used for the paper's §5.2 dynamic
  // thread-imbalance measurement. Capped at ServerConfig::frame_trace_limit
  // entries; overflow increments frame_trace_dropped instead of growing.
  std::vector<std::pair<uint64_t, int>> frame_trace;
  uint64_t frame_trace_dropped = 0;

  // Event-tracer attachment (obs/trace.hpp): when non-null, the owning
  // thread emits phase spans onto `trace_track`. Preserved across reset()
  // so the warmup boundary does not detach tracing.
  obs::Tracer* tracer = nullptr;
  int trace_track = -1;

  void reset();
};

// Frame-scoped lock sharing statistics collected by the lock manager and
// harvested by the master each frame (Figure 7(c) and §5.1 text).
struct FrameLockStats {
  StatAccumulator leaves_locked_pct;      // % of leaves locked per frame
  StatAccumulator leaves_shared_pct;      // % locked by >= 2 threads
  StatAccumulator lock_ops_per_leaf;      // lock operations per leaf
  uint64_t frames = 0;

  void reset();
};

// Percentage view of a breakdown (each component as a fraction of total).
struct BreakdownPct {
  double exec = 0, lock_leaf = 0, lock_parent = 0, receive = 0, reply = 0,
         world = 0, intra_wait = 0, inter_wait_world = 0, inter_wait_frame = 0,
         idle = 0;
  // Stage split of `reply` (zero on the legacy path); fractions of the
  // same total, so reply == reply_view+reply_encode+reply_finalize+
  // reply_send whenever the new path produced them.
  double reply_view = 0, reply_encode = 0, reply_finalize = 0, reply_send = 0;
  double lock() const { return lock_leaf + lock_parent; }
  double inter_wait() const { return inter_wait_world + inter_wait_frame; }
};

BreakdownPct to_percent(const Breakdown& b);

// One row per component, formatted for bench output.
std::string format_breakdown(const Breakdown& b);

}  // namespace qserv::core
