// The sequential (single-threaded) QuakeWorld-style server: one thread,
// one UDP port, the §2.1 frame loop — select, world physics, drain
// requests, reply — with no synchronization anywhere.
#pragma once

#include "src/core/server.hpp"

namespace qserv::core {

class SequentialServer final : public Server {
 public:
  SequentialServer(vt::Platform& platform, net::Transport& net,
                   const spatial::GameMap& map, ServerConfig cfg);

  void start() override;
  int thread_count() const override { return 1; }

 private:
  void main_loop();
};

}  // namespace qserv::core
