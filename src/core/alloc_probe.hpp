// Allocation-count probe seam: the harness reads heap-allocation totals
// through a function pointer that a bench binary's allocation counter
// (bench/alloc_counter.hpp) registers at static-init time. The library
// itself never overrides operator new — binaries that don't include the
// counter simply report "no probe" and the harness omits the metric.
#pragma once

#include <atomic>
#include <cstdint>

namespace qserv::core {

using AllocProbeFn = uint64_t (*)();

inline std::atomic<AllocProbeFn> g_alloc_probe{nullptr};

inline void set_alloc_probe(AllocProbeFn fn) {
  g_alloc_probe.store(fn, std::memory_order_release);
}

inline bool alloc_probe_available() {
  return g_alloc_probe.load(std::memory_order_acquire) != nullptr;
}

// Total heap allocations so far; 0 when no probe is registered (check
// alloc_probe_available() to distinguish).
inline uint64_t alloc_count() {
  const AllocProbeFn fn = g_alloc_probe.load(std::memory_order_acquire);
  return fn != nullptr ? fn() : 0;
}

}  // namespace qserv::core
