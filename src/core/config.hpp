// Server configuration: thread count, locking policy, player assignment,
// and the extensions the paper leaves as future work (request batching,
// region-based assignment).
#pragma once

#include <cstdint>

#include "src/recovery/config.hpp"
#include "src/resilience/config.hpp"
#include "src/sim/cost_model.hpp"
#include "src/vthread/time.hpp"

namespace qserv::core {

// Game-object synchronization policy for the request-processing phase.
enum class LockPolicy : uint8_t {
  // No region locks at all. Only valid single-threaded (the sequential
  // server, or a 1-thread parallel server for overhead baselines).
  kNone,
  // §3.3/§4.2: short-range moves lock the leaves under the move's
  // bounding box; long-range interactions conservatively lock the entire
  // map (every leaf).
  kConservative,
  // §4.3: game-specific knowledge — grenades (type 1) lock an *expanded*
  // bounding box covering their request-time flight; hitscans (type 2)
  // lock a *directional* bounding box from the shooter to the world edge.
  kOptimized,
};

const char* lock_policy_name(LockPolicy p);

// How players are assigned to server threads.
enum class AssignPolicy : uint8_t {
  kBlock,   // §3.1: static block assignment by join order
  kRegion,  // extension (§5.1 future work): assign by spawn-region so
            // players sharing a map region share a thread
};

const char* assign_policy_name(AssignPolicy p);

// Reply-phase hot path (DESIGN.md §15). Both knobs default off: the
// legacy per-client path is the bit-identity oracle, and committed
// replay digests must not move unless a config explicitly opts in.
struct ReplyPathConfig {
  // Rebuild the world into a packed SoA frame view once per frame and
  // run the interest/thin-range sweep over contiguous arrays instead of
  // per-entity virtual gathers.
  bool soa_view = false;
  // Encode each entity's wire record once per frame into the view's
  // canonical block and share per-cluster PVS visibility across viewers;
  // per-client work drops to mask-compare + span copy. Requires
  // soa_view; wire bytes stay identical to the legacy encoders.
  bool shared_baselines = false;
};

struct ServerConfig {
  int threads = 1;  // ignored by the sequential server
  LockPolicy lock_policy = LockPolicy::kConservative;
  AssignPolicy assign_policy = AssignPolicy::kBlock;

  // Extension (§5.2 future work): after winning master election, the
  // master sleeps this long before starting the frame so that requests
  // arriving slightly out of sync batch into one frame.
  vt::Duration batch_window{};

  // Extension (§5.1 future work): with AssignPolicy::kRegion, the master
  // periodically re-partitions players across threads by their current
  // map region (every `reassign_interval`; zero = assign at connect time
  // only). Clients learn their new thread's port through the snapshot's
  // assigned_port field.
  vt::Duration reassign_interval{};

  // Delta-compress snapshots against the last client-acknowledged one
  // (QuakeWorld-style). Falls back to full snapshots whenever no
  // acknowledged baseline is available, so it is loss-safe.
  bool delta_snapshots = false;
  // Per-client history of sent snapshots kept for baselining.
  int snapshot_history = 8;

  // Reply-phase hot path: SoA frame view + shared-baseline encoding.
  ReplyPathConfig reply{};

  // Client liveness (QuakeWorld's sv_timeout): a client heard from
  // nothing for this long is reaped between frames — its entity leaves
  // the world and areanode tree, its slot frees, and it is sent an
  // explicit kEvicted reject. Zero disables reaping (the seed behavior:
  // silent clients leak their slot forever).
  vt::Duration client_timeout{};

  // Maximum (frame id, moves) entries each thread's §5.2 frame trace may
  // hold once enable_frame_trace() is on. Entries past the cap are counted
  // in ThreadStats::frame_trace_dropped instead of growing the vector —
  // a long soak with tracing left on must not consume memory unboundedly.
  int frame_trace_limit = 65536;

  // Debug hook: after each frame the master cross-checks client registry
  // <-> world entities <-> areanode membership (core/invariant_checker).
  // Off by default — it is O(world) per frame and charges no modelled
  // compute, so it must not run during measured experiments.
  bool check_invariants = false;

  int areanode_depth = 4;  // 31 nodes / 16 leaves by default
  uint16_t base_port = 27500;  // thread i receives on base_port + i
  int max_clients = 512;
  uint64_t seed = 1;

  // How long select() blocks when idle before re-checking the stop flag.
  vt::Duration select_timeout = vt::millis(50);

  // Overload protection & self-healing (src/resilience/): receive-phase
  // backpressure, connect-time admission control, the degradation
  // governor, and the worker watchdog. All off by default.
  resilience::Config resilience{};

  // Crash recovery (src/recovery/): frame-aligned checkpoints, the
  // flight-recorder journal, black-box dumps and warm restart. Off by
  // default — recording costs host time (digest + journal) per frame.
  recovery::Config recovery{};

  sim::CostModel costs{};
};

}  // namespace qserv::core
