// E: move execution under region locks. The per-thread arena supplies
// every container this phase would otherwise allocate per move: the
// planned lock sets, the acquired region's leaf buffers, and the gather
// scratch execute_move threads through the sim layer.
#include "src/core/frame_pipeline.hpp"

#include <algorithm>

#include "src/obs/trace.hpp"
#include "src/sim/move.hpp"

namespace qserv::core {

void ExecPhase::run(int tid, ClientSlot& client, const net::MoveCmd& cmd,
                    ThreadStats& st, bool use_locks) {
  PipelineContext& ctx = pipe_.ctx_;
  sim::Entity* player = ctx.world.get(client.entity_id);
  if (player == nullptr) return;

  FrameArena& arena = pipe_.arena(tid);
  const bool lock = use_locks && ctx.cfg.lock_policy != LockPolicy::kNone;
  if (lock) {
    ctx.lock_manager.plan_request(ctx.cfg.lock_policy, *player, cmd,
                                  arena.lock_sets);
    ctx.lock_manager.acquire(arena.lock_sets, tid, st, arena.region);
  }
  // Serialization index, drawn *after* the region locks: two conflicting
  // moves' indexes order exactly as their executions did, so replay
  // applies them in the same order the live run did.
  const uint64_t order = pipe_.draw_order();

  // Execution time excludes any list-lock waiting incurred inside (that
  // is attributed to the lock components by the ListLockContext).
  LockManager::ListLockContext lists(ctx.lock_manager, st);
  const vt::Duration lock_before =
      st.breakdown.lock_leaf + st.breakdown.lock_parent;
  obs::TraceScope span(st.tracer, st.trace_track, "exec");
  const vt::TimePoint t0 = ctx.platform.now();
  sim::execute_move(ctx.world, *player, cmd, t0, lock ? &lists : nullptr,
                    &ctx.global_events, order, &arena.move_scratch);
  const vt::Duration elapsed = ctx.platform.now() - t0;
  const vt::Duration lock_delta =
      st.breakdown.lock_leaf + st.breakdown.lock_parent - lock_before;
  st.breakdown.exec += elapsed - lock_delta;

  if (lock) ctx.lock_manager.release(arena.region);

  ctx.hooks.move_executed(tid, client.remote_port, player->id, order, t0,
                          cmd);

  client.pending_reply = true;
  client.last_seq = std::max(client.last_seq, cmd.sequence);
  client.last_move_time_ns = cmd.client_time_ns;
  client.client_baseline_frame =
      std::max(client.client_baseline_frame, cmd.baseline_frame);
  ++client.moves_since_scan;
  ++st.requests_processed;
}

}  // namespace qserv::core
