// Cross-structure consistency audit for the server's client-facing state.
//
// Under chaos (churn, evictions, partitions, dynamic reassignment) the
// three structures that must stay mutually consistent are:
//
//   1. the client registry (slots + the port -> slot map),
//   2. world entity storage (every connected client owns one live player
//      entity; no orphan players),
//   3. the areanode tree (every active entity is linked exactly where its
//      `areanode` field says, and nowhere else).
//
// The checker walks all three and records every violation. It is a debug
// hook, off by default (ServerConfig::check_invariants): the walk is
// O(world) per frame and charges no modelled compute, so enabling it
// perturbs nothing but host time. The master runs it between frames, when
// no request processing is in flight — so no locks are needed.
//
// Chaos tests run with it enabled so state corruption fails loudly at the
// frame it happens instead of silently skewing measurements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qserv::sim {
class World;
}

namespace qserv::core {

class ClientRegistry;

class InvariantChecker {
 public:
  InvariantChecker(const ClientRegistry& registry, const sim::World& world)
      : registry_(registry), world_(world) {}

  // Runs the full audit once; returns violations found by this run.
  // Caller must guarantee a quiescent server (between frames).
  int run();

  uint64_t runs() const { return runs_; }
  uint64_t total_violations() const { return total_violations_; }
  // Human-readable description of each violation (capped; the count above
  // keeps growing past the cap).
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  void violation(std::string msg);

  static constexpr size_t kMaxMessages = 64;

  const ClientRegistry& registry_;
  const sim::World& world_;
  uint64_t runs_ = 0;
  uint64_t total_violations_ = 0;
  int current_run_violations_ = 0;
  std::vector<std::string> messages_;
};

}  // namespace qserv::core
