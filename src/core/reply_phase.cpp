// T/Tx: snapshot assembly and delivery. The per-thread arena supplies the
// frame-event snapshot, the per-client event list, and the net::Snapshot
// being built, so a steady-state reply phase allocates only the encoded
// wire bytes and the per-client history entry.
#include "src/core/frame_pipeline.hpp"

#include "src/obs/trace.hpp"
#include "src/resilience/governor.hpp"
#include "src/sim/snapshot.hpp"

namespace qserv::core {

void ReplyPhase::run(int tid, ThreadStats& st, bool include_unowned,
                     uint64_t participants_mask) {
  PipelineContext& ctx = pipe_.ctx_;
  FrameArena& arena = pipe_.arena(tid);
  obs::TraceScope span(st.tracer, st.trace_track, "reply");
  const vt::TimePoint t0 = ctx.platform.now();
  std::vector<net::GameEvent>& frame_events = arena.frame_events;
  ctx.global_events.snapshot_into(frame_events);
  const bool thin_far = ctx.governor->at_least(resilience::kThinFarEntities);

  for (auto& c : ctx.registry.slots()) {
    if (!c.in_use || c.pending_spawn || c.pending_disconnect) continue;
    const bool owned = c.owner_thread == tid;
    const bool orphaned =
        include_unowned && !owned &&
        ((participants_mask >> c.owner_thread) & 1ull) == 0;
    if (!owned && !orphaned) continue;

    // notify_port without pending_reply forces a snapshot anyway: a
    // client migrated off a stalled worker is still sending moves to the
    // dead port, so waiting for a request it can deliver would deadlock —
    // it must be *told* the new port to have one.
    if (owned && (c.pending_reply || c.notify_port)) {
      const sim::Entity* player = ctx.world.get(c.entity_id);
      if (player == nullptr) continue;
      net::Snapshot& snap = arena.snap;
      // Buffered events from frames this client missed, then this
      // frame's events.
      std::vector<net::GameEvent>& events = arena.events;
      events.clear();
      c.buffer->drain_into(events);
      events.insert(events.end(), frame_events.begin(), frame_events.end());
      sim::build_snapshot(ctx.world, *player,
                          static_cast<uint32_t>(pipe_.frames_), c.last_seq,
                          c.last_move_time_ns, events, snap, thin_far);
      if (c.notify_port) {
        snap.assigned_port =
            static_cast<uint16_t>(ctx.cfg.base_port + c.owner_thread);
        c.notify_port = false;
      }
      ctx.platform.compute(ctx.cfg.costs.reply_base +
                           ctx.cfg.costs.send_syscall);

      if (ctx.cfg.delta_snapshots) {
        // Delta against the newest snapshot the client reports having
        // reconstructed (carried in its move commands); full snapshot if
        // that frame is no longer in our history.
        const ClientSlot::SentSnapshot* baseline = nullptr;
        if (c.client_baseline_frame != 0) {
          for (auto it = c.history.rbegin(); it != c.history.rend(); ++it) {
            if (it->server_frame == c.client_baseline_frame) {
              baseline = &*it;
              break;
            }
          }
        }
        std::vector<uint8_t> bytes =
            baseline != nullptr
                ? net::encode_delta(snap, baseline->entities,
                                    baseline->server_frame)
                : net::encode(snap);
        c.history.push_back({snap.server_frame, snap.entities});
        while (static_cast<int>(c.history.size()) > ctx.cfg.snapshot_history)
          c.history.pop_front();
        c.chan->send(std::move(bytes));
      } else {
        c.chan->send(net::encode(snap));
      }
      c.pending_reply = false;
      ++st.replies_sent;
    } else {
      // No request this frame: update the client's message buffer from
      // the global state buffer anyway (§3.3 — every client, every
      // frame; per-buffer lock inside).
      c.buffer->append(frame_events);
      ctx.platform.compute(ctx.cfg.costs.per_buffer_update +
                           ctx.cfg.costs.per_event *
                               static_cast<int64_t>(frame_events.size()));
    }
  }
  st.breakdown.reply += ctx.platform.now() - t0;
}

}  // namespace qserv::core
