// T/Tx: snapshot assembly and delivery. The per-thread arena supplies the
// frame-event snapshot, the per-client event list, and the net::Snapshot
// being built, so a steady-state reply phase allocates only the encoded
// wire bytes and the per-client history entry.
//
// Two hot-path generations coexist (DESIGN.md §15), selected by
// cfg.reply:
//   * legacy (both knobs off, the default): per-client entity gather and
//     field-wise encoding — the bit-identity oracle every other mode is
//     tested against;
//   * soa_view: the interest sweep runs over the per-frame SoA view
//     (prepare() builds it once, single-threaded), encoding unchanged;
//   * + shared_baselines: per-client bodies are span-copied from the
//     view's canonical records into the thread's wire arena and sent
//     in place — staged as finalize-all-then-send, with PVS rows shared
//     per viewer cluster.
#include "src/core/frame_pipeline.hpp"

#include "src/obs/trace.hpp"
#include "src/resilience/governor.hpp"
#include "src/sim/snapshot.hpp"

namespace qserv::core {

void ReplyPhase::prepare(int tid, ThreadStats& st) {
  PipelineContext& ctx = pipe_.ctx_;
  (void)tid;
  // Always seal, knobs or not: the sealed block replaces the per-thread
  // snapshot_into() copy as the frame-event source, and non-replied
  // clients' buffers take it by reference. Host-side only — modelled
  // charges are untouched unless the shared path opts in below.
  pipe_.sealed_events_ = ctx.global_events.seal_frame();
  pipe_.reply_prepared_frame_ = pipe_.frames_;

  const ReplyPathConfig& knobs = ctx.cfg.reply;
  if (!knobs.soa_view) return;

  {
    obs::TraceScope span(st.tracer, st.trace_track, "reply-view",
                         static_cast<int64_t>(pipe_.frames_));
    const vt::TimePoint t0 = ctx.platform.now();
    ctx.world.rebuild_frame_view(pipe_.frames_);
    const vt::Duration d = ctx.platform.now() - t0;
    st.breakdown.reply_view += d;
    st.breakdown.reply += d;
  }

  if (!knobs.shared_baselines) return;
  {
    obs::TraceScope span(st.tracer, st.trace_track, "reply-encode",
                         static_cast<int64_t>(pipe_.frames_));
    const vt::TimePoint t0 = ctx.platform.now();
    pipe_.cluster_vis_.begin_frame();
    // Prime one visibility row per cluster that has a replying viewer.
    // pending_reply / notify_port are settled by the flip into the reply
    // phase, so this covers exactly the viewers the phase will serve.
    for (auto& c : ctx.registry.slots()) {
      if (!c.in_use || c.pending_spawn || c.pending_disconnect) continue;
      if (!c.pending_reply && !c.notify_port) continue;
      const sim::Entity* player = ctx.world.get(c.entity_id);
      if (player == nullptr) continue;
      pipe_.cluster_vis_.prime(ctx.world, ctx.world.frame_view(),
                               player->cluster);
    }
    const vt::Duration d = ctx.platform.now() - t0;
    st.breakdown.reply_encode += d;
    st.breakdown.reply += d;
  }
}

void ReplyPhase::run(int tid, ThreadStats& st, bool include_unowned,
                     uint64_t participants_mask) {
  PipelineContext& ctx = pipe_.ctx_;
  FrameArena& arena = pipe_.arena(tid);
  obs::TraceScope span(st.tracer, st.trace_track, "reply");
  const vt::TimePoint t0 = ctx.platform.now();
  const bool thin_far = ctx.governor->at_least(resilience::kThinFarEntities);

  // Frame events: the block prepare() sealed; a caller that skipped
  // prepare (none in-tree) falls back to the legacy per-thread copy.
  const bool prepared = pipe_.reply_prepared_frame_ == pipe_.frames_ &&
                        pipe_.sealed_events_ != nullptr;
  if (!prepared) ctx.global_events.snapshot_into(arena.frame_events);
  const std::vector<net::GameEvent>& frame_events =
      prepared ? *pipe_.sealed_events_ : arena.frame_events;

  const ReplyPathConfig& knobs = ctx.cfg.reply;
  const sim::FrameView& view = ctx.world.frame_view();
  const bool use_view =
      knobs.soa_view && prepared && view.built_for(pipe_.frames_);
  const bool shared = use_view && knobs.shared_baselines;
  if (shared) arena.wire.begin_frame();

  for (auto& c : ctx.registry.slots()) {
    if (!c.in_use || c.pending_spawn || c.pending_disconnect) continue;
    const bool owned = c.owner_thread == tid;
    const bool orphaned =
        include_unowned && !owned &&
        ((participants_mask >> c.owner_thread) & 1ull) == 0;
    if (!owned && !orphaned) continue;

    // notify_port without pending_reply forces a snapshot anyway: a
    // client migrated off a stalled worker is still sending moves to the
    // dead port, so waiting for a request it can deliver would deadlock —
    // it must be *told* the new port to have one.
    if (owned && (c.pending_reply || c.notify_port)) {
      const sim::Entity* player = ctx.world.get(c.entity_id);
      if (player == nullptr) continue;
      net::Snapshot& snap = arena.snap;
      // Buffered events from frames this client missed, then this
      // frame's events.
      std::vector<net::GameEvent>& events = arena.events;
      events.clear();
      c.buffer->drain_into(events);
      events.insert(events.end(), frame_events.begin(), frame_events.end());
      if (use_view) {
        arena.visible_rows.clear();
        sim::ViewSweepArgs args;
        args.thin_far = thin_far;
        args.shared_encode = shared;
        args.pvs_row =
            shared ? pipe_.cluster_vis_.row_for(player->cluster) : nullptr;
        args.rows_out = shared ? &arena.visible_rows : nullptr;
        sim::build_snapshot_view(ctx.world, view, *player,
                                 static_cast<uint32_t>(pipe_.frames_),
                                 c.last_seq, c.last_move_time_ns, events,
                                 snap, args);
      } else {
        sim::build_snapshot(ctx.world, *player,
                            static_cast<uint32_t>(pipe_.frames_), c.last_seq,
                            c.last_move_time_ns, events, snap, thin_far);
      }
      if (c.notify_port) {
        snap.assigned_port =
            static_cast<uint16_t>(ctx.cfg.base_port + c.owner_thread);
        c.notify_port = false;
      }

      // Find the delta baseline (newest snapshot the client reports
      // having reconstructed); full snapshot if no longer in history.
      const ClientSlot::SentSnapshot* baseline = nullptr;
      if (ctx.cfg.delta_snapshots && c.client_baseline_frame != 0) {
        for (auto it = c.history.rbegin(); it != c.history.rend(); ++it) {
          if (it->server_frame == c.client_baseline_frame) {
            baseline = &*it;
            break;
          }
        }
      }

      if (shared) {
        // Finalize into the wire arena; the send loop below hands the
        // spans to the sockets once every client's body is staged.
        ctx.platform.compute(ctx.cfg.costs.reply_base);
        net::ByteWriter& w = arena.wire.bytes;
        const size_t off = w.size();
        w.u64(0);  // netchan headroom (NetChannel::kHeaderReserve)
        if (baseline != nullptr) {
          sim::encode_delta_from_view(snap, view, arena.visible_rows,
                                      baseline->entities,
                                      baseline->server_frame,
                                      arena.enc_scratch, w);
        } else {
          sim::encode_full_from_view(snap, view, arena.visible_rows, w);
        }
        arena.wire.frames.push_back(
            {off, w.size() - off - net::NetChannel::kHeaderReserve, &c});
        if (ctx.cfg.delta_snapshots) {
          c.history.push_back({snap.server_frame, snap.entities});
          while (static_cast<int>(c.history.size()) >
                 ctx.cfg.snapshot_history)
            c.history.pop_front();
        }
        c.pending_reply = false;
      } else {
        ctx.platform.compute(ctx.cfg.costs.reply_base +
                             ctx.cfg.costs.send_syscall);
        if (ctx.cfg.delta_snapshots) {
          std::vector<uint8_t> bytes =
              baseline != nullptr
                  ? net::encode_delta(snap, baseline->entities,
                                      baseline->server_frame)
                  : net::encode(snap);
          c.history.push_back({snap.server_frame, snap.entities});
          while (static_cast<int>(c.history.size()) >
                 ctx.cfg.snapshot_history)
            c.history.pop_front();
          c.chan->send(std::move(bytes));
        } else {
          c.chan->send(net::encode(snap));
        }
        c.pending_reply = false;
        ++st.replies_sent;
      }
    } else {
      // No request this frame: update the client's message buffer from
      // the global state buffer anyway (§3.3 — every client, every
      // frame; per-buffer lock inside).
      if (prepared) {
        c.buffer->append_block(pipe_.sealed_events_);
      } else {
        c.buffer->append(frame_events);
      }
      if (shared) {
        // The buffer takes the sealed block by reference — one refcount
        // bump instead of an element-wise copy.
        ctx.platform.compute(ctx.cfg.costs.per_buffer_ref);
      } else {
        ctx.platform.compute(ctx.cfg.costs.per_buffer_update +
                             ctx.cfg.costs.per_event *
                                 static_cast<int64_t>(frame_events.size()));
      }
    }
  }

  if (shared) {
    const vt::TimePoint t1 = ctx.platform.now();
    st.breakdown.reply_finalize += t1 - t0;
    {
      obs::TraceScope send_span(st.tracer, st.trace_track, "reply-send");
      for (const auto& f : arena.wire.frames) {
        ctx.platform.compute(ctx.cfg.costs.send_syscall);
        f.slot->chan->send_in_place(arena.wire.bytes.mutable_data() + f.off,
                                    f.len);
        ++st.replies_sent;
      }
    }
    st.breakdown.reply_send += ctx.platform.now() - t1;
  } else if (use_view) {
    // SoA-only mode is not staged; account the whole loop as finalize so
    // the stage sum still equals `reply`.
    st.breakdown.reply_finalize += ctx.platform.now() - t0;
  }
  st.breakdown.reply += ctx.platform.now() - t0;
}

}  // namespace qserv::core
