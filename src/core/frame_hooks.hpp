// The hook seam between the frame engine and its satellite subsystems
// (recovery, resilience, observability — and eventually per-shard
// plugins). The engine never calls a subsystem directly; it dispatches
// through HookList at fixed points of the frame, and subsystems reach
// back only through the Engine facade below. Callback *presence* is part
// of replay determinism: a subsystem that draws serialization indexes or
// charges modelled compute simply does not register when disabled, which
// reproduces the old `if (recorder_ != nullptr)` gates exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/vthread/time.hpp"

namespace qserv::vt {
class Platform;
}
namespace qserv::obs {
class Tracer;
}
namespace qserv::net {
struct MoveCmd;
}
namespace qserv::sim {
class World;
}
namespace qserv::recovery {
enum class DropReason : uint8_t;
}

namespace qserv::core {

class ClientRegistry;
struct ServerConfig;
struct ThreadStats;

// The narrow engine surface subsystems may touch. Implemented by Server;
// everything here is either a read or one of the engine-owned mutations a
// subsystem is allowed to request (client migration off a stalled worker,
// the governor's expensive-client eviction, a black-box dump).
class Engine {
 public:
  virtual ~Engine() = default;

  virtual vt::Platform& platform() = 0;
  virtual const ServerConfig& config() const = 0;
  virtual const sim::World& world() const = 0;
  virtual ClientRegistry& registry() = 0;
  virtual obs::Tracer* tracer() const = 0;

  virtual uint64_t frames() const = 0;
  // Draws the next serialization index (replayed-mutation order).
  virtual uint64_t draw_order() = 0;
  // The next index that would be drawn (checkpoint capture).
  virtual uint64_t order_count() const = 0;
  // world_phase() arguments of the open frame (journal sealing).
  virtual vt::TimePoint last_world_t0() const = 0;
  virtual vt::Duration last_world_dt() const = 0;
  virtual int connected_clients() const = 0;

  // Moves every client owned by `stalled_tid` to live workers; returns
  // clients migrated. Master window only.
  virtual int migrate_clients_from(int stalled_tid, ThreadStats& st) = 0;
  // Governor rung 4: evicts the most expensive client. Master window
  // only.
  virtual int evict_most_expensive(ThreadStats& st) = 0;
  // Writes a black-box dump now; "" when recovery is disabled.
  virtual std::string dump_blackbox(const std::string& label,
                                    const std::string& why) = 0;
};

// Frame-scoped callbacks, dispatched at fixed points of every frame. All
// default to no-ops so a hook overrides only the points it needs; no
// callback may sleep, block, or charge compute the live run did not
// (overriders own their determinism budget — see the journal hooks).
class FrameHook {
 public:
  virtual ~FrameHook() = default;

  // Master only, inside the world phase, after (t0, dt) are fixed and
  // before world_phase() runs.
  virtual void on_world_tick(int /*tid*/, vt::TimePoint /*t0*/,
                             vt::Duration /*dt*/) {}
  // Exec phase, after the move executed and its region locks released.
  virtual void on_move_executed(int /*tid*/, uint16_t /*port*/,
                                uint32_t /*entity*/, uint64_t /*order*/,
                                vt::TimePoint /*t0*/,
                                const net::MoveCmd& /*cmd*/) {}
  // Receive phase: a datagram was seen but did not mutate the world.
  virtual void on_drop(int /*tid*/, uint16_t /*port*/,
                       recovery::DropReason /*why*/) {}
  // Master window, after lifecycle completion and timeout reaping, before
  // the frame is sealed. The place for subsystem "master duties"
  // (watchdog adjudication, governor stepping).
  virtual void on_master_window(int /*tid*/, vt::TimePoint /*frame_start*/,
                                ThreadStats& /*st*/) {}
  // Master window, after every mutation of the frame (including any
  // master-window evictions): the frame's final state is observable.
  virtual void on_frame_sealed() {}
  // Master window, last callback of the frame (metrics point).
  virtual void on_frame_end(vt::TimePoint /*frame_start*/, int /*moves*/,
                            ThreadStats& /*st*/) {}
  // A worker's select() timed out with no frame due: the engine is idle
  // but alive. Liveness beacons hang off this (a starved engine parked in
  // select must not read as a wedged one); implementations must be cheap
  // and must not draw orders or charge compute — no frame is open.
  virtual void on_idle_wait(int /*tid*/) {}
  // Warmup boundary (Server::reset_stats).
  virtual void on_reset_stats() {}
};

// Client-session lifecycle callbacks. All are invoked with the registry
// mutex held (they fire at the mutation site); implementations must not
// re-lock it.
class LifecycleObserver {
 public:
  virtual ~LifecycleObserver() = default;

  // Master window: the deferred spawn materialized the player entity.
  virtual void on_client_spawned(int /*owner*/, uint16_t /*port*/,
                                 uint32_t /*entity*/,
                                 const std::string& /*name*/,
                                 int64_t /*t_ns*/) {}
  // Master window: a pending disconnect is being applied (entity removal
  // follows this call).
  virtual void on_client_disconnected(int /*owner*/, uint16_t /*port*/,
                                      uint32_t /*entity*/,
                                      int64_t /*t_ns*/) {}
  // A spawned client is being evicted (reap or governor); entity removal
  // follows this call.
  virtual void on_client_evicted(int /*owner*/, uint16_t /*port*/,
                                 uint32_t /*entity*/) {}
  // Ownership moved between worker threads (region or stall migration).
  virtual void on_client_migrated(int /*from*/, int /*to*/,
                                  uint16_t /*port*/) {}
  // A checkpointed slot was re-adopted by a live connect.
  virtual void on_client_resumed(uint16_t /*port*/) {}
};

// Registered hook set, dispatched in registration order. Registration
// happens before start() and never changes while the loops run, so
// dispatch is lock-free.
class HookList {
 public:
  void add(FrameHook* h) { frame_.push_back(h); }
  void add(LifecycleObserver* o) { lifecycle_.push_back(o); }

  void world_tick(int tid, vt::TimePoint t0, vt::Duration dt) const {
    for (FrameHook* h : frame_) h->on_world_tick(tid, t0, dt);
  }
  void move_executed(int tid, uint16_t port, uint32_t entity, uint64_t order,
                     vt::TimePoint t0, const net::MoveCmd& cmd) const {
    for (FrameHook* h : frame_)
      h->on_move_executed(tid, port, entity, order, t0, cmd);
  }
  void drop(int tid, uint16_t port, recovery::DropReason why) const {
    for (FrameHook* h : frame_) h->on_drop(tid, port, why);
  }
  void master_window(int tid, vt::TimePoint frame_start,
                     ThreadStats& st) const {
    for (FrameHook* h : frame_) h->on_master_window(tid, frame_start, st);
  }
  void frame_sealed() const {
    for (FrameHook* h : frame_) h->on_frame_sealed();
  }
  void frame_end(vt::TimePoint frame_start, int moves, ThreadStats& st) const {
    for (FrameHook* h : frame_) h->on_frame_end(frame_start, moves, st);
  }
  void idle_wait(int tid) const {
    for (FrameHook* h : frame_) h->on_idle_wait(tid);
  }
  void reset_stats() const {
    for (FrameHook* h : frame_) h->on_reset_stats();
  }

  void client_spawned(int owner, uint16_t port, uint32_t entity,
                      const std::string& name, int64_t t_ns) const {
    for (LifecycleObserver* o : lifecycle_)
      o->on_client_spawned(owner, port, entity, name, t_ns);
  }
  void client_disconnected(int owner, uint16_t port, uint32_t entity,
                           int64_t t_ns) const {
    for (LifecycleObserver* o : lifecycle_)
      o->on_client_disconnected(owner, port, entity, t_ns);
  }
  void client_evicted(int owner, uint16_t port, uint32_t entity) const {
    for (LifecycleObserver* o : lifecycle_)
      o->on_client_evicted(owner, port, entity);
  }
  void client_migrated(int from, int to, uint16_t port) const {
    for (LifecycleObserver* o : lifecycle_)
      o->on_client_migrated(from, to, port);
  }
  void client_resumed(uint16_t port) const {
    for (LifecycleObserver* o : lifecycle_) o->on_client_resumed(port);
  }

 private:
  std::vector<FrameHook*> frame_;
  std::vector<LifecycleObserver*> lifecycle_;
};

}  // namespace qserv::core
