// Shared machinery of the sequential and parallel game servers: client
// registry, request dispatch, world-phase and reply-phase implementations,
// and instrumentation. The two concrete servers (sequential_server.hpp,
// parallel_server.hpp) differ only in their main loops — exactly the
// relationship between the original QuakeWorld server and the paper's
// pthreads port.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/frame_stats.hpp"
#include "src/core/global_state.hpp"
#include "src/core/lock_manager.hpp"
#include "src/net/netchan.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/resilience/governor.hpp"
#include "src/resilience/token_bucket.hpp"
#include "src/resilience/watchdog.hpp"
#include "src/sim/world.hpp"

namespace qserv::obs {
class HistogramMetric;
class MetricsRegistry;
class Tracer;
}

namespace qserv::recovery {
class BlackBox;
class CheckpointManager;
class FlightRecorder;
struct CheckpointData;
enum class DropReason : uint8_t;
enum class LoadError : uint8_t;
}

namespace qserv::core {

class InvariantChecker;

class Server {
 public:
  Server(vt::Platform& platform, net::VirtualNetwork& net,
         const spatial::GameMap& map, ServerConfig cfg);
  virtual ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Spawns the server thread(s) onto the platform. Call exactly once.
  virtual void start() = 0;

  // Signals the server loops to exit after the current frame.
  void request_stop();
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  // Number of worker threads (1 for the sequential server).
  virtual int thread_count() const = 0;

  // The server port a joining client with ordinal `i` of `expected`
  // should initially address (static block assignment, §3.1).
  uint16_t port_for_client(int ordinal, int expected_players) const;

  // --- statistics ---
  const std::vector<ThreadStats>& thread_stats() const { return stats_; }
  const FrameLockStats& frame_lock_stats() const { return frame_lock_stats_; }
  Breakdown total_breakdown() const;
  LockStats total_lock_stats() const;
  uint64_t frames() const { return frames_; }
  uint64_t total_replies() const;
  uint64_t total_requests() const;
  // Zeroes all measurement state (warmup boundary).
  void reset_stats();

  // Records (frame, moves) per thread for §5.2's dynamic-imbalance
  // analysis. Bounded to cfg.frame_trace_limit entries per thread; the
  // overflow shows up in frame_trace_dropped().
  void enable_frame_trace() { frame_trace_enabled_ = true; }
  bool frame_trace_enabled() const { return frame_trace_enabled_; }
  // Entries discarded across threads once the per-thread cap was hit.
  uint64_t frame_trace_dropped() const;

  // Netchan reliability counters summed over currently connected clients
  // (post-run inspection / metrics harvest).
  struct NetchanTotals {
    uint64_t packets_sent = 0;
    uint64_t packets_accepted = 0;
    uint64_t drops_detected = 0;
    uint64_t duplicates_rejected = 0;
  };
  NetchanTotals netchan_totals() const;

  // Attaches the observability layer (obs/): a per-thread event tracer
  // (phase spans onto one track per worker) and/or a metrics registry
  // (frame-duration and requests-per-frame histograms here; lock-wait
  // histograms inside the lock manager). Either may be null. Call before
  // start(); pointers must outlive the server. When detached (the
  // default) the hot path pays one branch per would-be span.
  void attach_observability(obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics);
  obs::Tracer* tracer() const { return tracer_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // Dynamic-assignment client migrations performed so far.
  uint64_t reassignments() const { return reassignments_; }

  // Clients reaped so far for exceeding client_timeout.
  uint64_t evictions() const { return evictions_; }
  // Connects refused with kServerFull so far.
  uint64_t rejected_connects() const { return rejected_connects_; }

  // --- resilience subsystem (src/resilience/) ---
  // Frame-budget governor; always constructed (it also feeds the rolling
  // p95 that admission control reads) but only steps the ladder when
  // cfg.resilience.governor is on.
  const resilience::FrameGovernor& governor() const { return *governor_; }
  // Worker watchdog; null on the sequential server, inert (enabled() ==
  // false) when cfg.resilience.watchdog_timeout is zero.
  const resilience::WorkerWatchdog* watchdog() const {
    return watchdog_.get();
  }
  // Connects refused with kServerBusy (admission control).
  uint64_t rejected_busy() const { return rejected_busy_; }
  // Clients migrated off stalled workers by the watchdog.
  uint64_t stall_reassignments() const { return stall_reassignments_; }
  // Clients evicted by the governor's last-resort rung.
  uint64_t governor_evictions() const { return governor_evictions_; }
  // Thread-stall faults actually served by worker threads (chaos runs).
  uint64_t stalls_injected() const {
    return stalls_injected_.load(std::memory_order_relaxed);
  }
  // Backpressure totals summed over threads.
  uint64_t total_moves_rate_limited() const;
  uint64_t total_packets_oversized() const;
  uint64_t total_moves_coalesced() const;

  // Null unless cfg.check_invariants (see core/invariant_checker.hpp).
  const InvariantChecker* invariant_checker() const {
    return invariants_.get();
  }
  // Total cross-structure violations detected (0 when checking is off).
  uint64_t invariant_violations() const;

  // --- crash recovery (src/recovery/; null unless cfg.recovery.enabled) ---
  const recovery::FlightRecorder* recorder() const { return recorder_.get(); }
  const recovery::CheckpointManager* checkpoints() const {
    return checkpoints_.get();
  }
  const recovery::BlackBox* blackbox() const { return blackbox_.get(); }
  // Warm restart: installs a decoded checkpoint — world, client registry
  // with netchan sequences, remembered evictions, frame/order counters —
  // into this freshly constructed server. Call after construction, before
  // start(). Restored clients either continue seamlessly on their old
  // ports (channel state survives) or re-adopt their slot by name when
  // they reconnect from a fresh port.
  recovery::LoadError restore_from(const std::vector<uint8_t>& image);
  bool restored() const { return restored_; }
  // Checkpointed clients re-adopted through a reconnect (by port or name).
  uint64_t resumed_clients() const { return resumed_clients_; }
  // Writes a black-box dump (latest checkpoint, journal tail, trace,
  // meta) now; returns the dump directory or "" (disabled / I/O failure).
  std::string dump_blackbox(const std::string& label, const std::string& why);

  const sim::World& world() const { return world_; }
  sim::World& world() { return world_; }
  const ServerConfig& config() const { return cfg_; }
  LockManager& lock_manager() { return *lock_manager_; }
  const LockManager& lock_manager() const { return *lock_manager_; }
  int connected_clients() const;

 protected:
  struct Client {
    bool in_use = false;
    uint32_t entity_id = 0;
    uint16_t remote_port = 0;
    std::string name;
    int owner_thread = 0;
    bool notify_port = false;  // next snapshot carries assigned_port
    // Connect accepted, entity not yet spawned: creation is deferred to
    // the master's between-frames window so entity lifecycle never races
    // request processing (and replays in serialization order). Until the
    // spawn, the slot has no entity, channel or reply buffer.
    bool pending_spawn = false;
    int connect_tid = 0;  // receiving thread (block-assignment owner)
    // Disconnect seen mid-drain; entity removal is deferred to the same
    // window for the same reason.
    bool pending_disconnect = false;
    // Restored from a checkpoint and not yet heard from on a live socket;
    // a connect from a fresh port may re-adopt this slot by name.
    bool awaiting_resume = false;
    uint32_t last_seq = 0;          // latest move sequence processed
    int64_t last_move_time_ns = 0;  // echoed back in the reply
    // When the server last heard anything from this client (liveness
    // clock for client_timeout reaping). Written by the thread draining
    // the client's datagrams while an idle thread may concurrently poll
    // reap_due(), so all access goes through std::atomic_ref.
    int64_t last_heard_ns = 0;
    bool pending_reply = false;     // sent a request this frame
    std::unique_ptr<net::NetChannel> chan;
    std::unique_ptr<ReplyBuffer> buffer;
    // Delta-snapshot support (owner thread only): recently sent snapshot
    // entity lists keyed by server frame, and the newest frame the client
    // reports having reconstructed.
    struct SentSnapshot {
      uint32_t server_frame = 0;
      std::vector<net::EntityUpdate> entities;
    };
    std::deque<SentSnapshot> history;
    uint32_t client_baseline_frame = 0;
    // Per-client move-rate limiter (configured at connect from
    // cfg.resilience). Atomic inside: during a stall migration two
    // threads can briefly drain the same client.
    resilience::TokenBucket bucket;
    // Moves executed since the governor's last expensive-client scan
    // (owner thread writes, master window reads/clears — ordered by the
    // frame-sync mutex).
    uint32_t moves_since_scan = 0;
  };

  // --- pieces shared by both main loops ---
  // Runs the world-physics phase (master/sequential only) and stamps the
  // elapsed time into st.breakdown.world.
  void do_world_phase(ThreadStats& st);

  // Drains socket `tid`, dispatching every ready datagram. `lm` null means
  // lock-free execution (sequential server). Returns moves processed.
  int drain_requests(int tid, ThreadStats& st, bool use_locks);

  // Reply phase for the clients owned by `tid`. When `include_unowned`,
  // also updates the reply buffers of clients whose owner threads did not
  // participate this frame (master duty, §3.3). `participants` is a
  // bitmask of participating threads.
  void do_replies(int tid, ThreadStats& st, bool include_unowned,
                  uint64_t participants_mask);

  // --- request handlers ---
  void handle_connect(int tid, const net::Datagram& d,
                      const net::ConnectMsg& msg, ThreadStats& st);
  void handle_move(int tid, Client& client, const net::MoveCmd& cmd,
                   ThreadStats& st, bool use_locks);
  void handle_disconnect(Client& client, ThreadStats& st);

  Client* client_by_port(uint16_t port);

  // Thread that should own a player at `origin` under region assignment.
  int owner_for_region(const Vec3& origin) const;

  // Re-partitions all clients by their current region (master-only, runs
  // between frames). Returns how many clients moved.
  int reassign_clients();

  // True when client_timeout is enabled and some connected client has
  // been silent past it — the cue for a maintenance frame when the
  // server is otherwise idle.
  bool reap_due() const;

  // Reaps every timed-out client: sends kEvicted, removes the entity
  // from the world and areanode tree (under list locks via `st`), frees
  // the slot. Master-only, between frames. Returns clients evicted.
  int reap_timed_out_clients(ThreadStats& st);

  // Teardown of one client slot, reject-first: the reason goes out on the
  // still-live channel *before* any state is dropped, so the peer always
  // learns its fate. Caller holds clients_mu_; master-only for the world
  // mutation. Shared by timeout reaping and governor eviction.
  void evict_client_locked(Client& c, net::RejectReason reason,
                           ThreadStats& st);

  // Governor rung 4: evicts the client that executed the most moves since
  // the previous scan (paced by cfg.resilience.evict_interval). Resets
  // every client's scan counter. Master-only, between frames.
  int evict_most_expensive(ThreadStats& st);

  // Moves every client owned by `stalled_tid` to live (non-stalled,
  // started) workers round-robin, rebinding netchans and flagging
  // notify_port so the next snapshot carries the new port. Master-only,
  // between frames. Returns clients migrated.
  int reassign_clients_from(int stalled_tid, ThreadStats& st);

  // True when the watchdog exists and sees a stale heartbeat — the cue
  // for a maintenance frame on an otherwise idle server (mirrors
  // reap_due()).
  bool watchdog_due(int self_tid) const;

  // Master-window helper: feeds the governor one finished frame and
  // applies any rung that acts from the master window (expensive-client
  // eviction). Returns the post-step level.
  int governor_frame_end(vt::TimePoint frame_start, ThreadStats& st);

  // Runs the cross-structure audit when cfg.check_invariants is set.
  // Master-only, between frames. A run that finds violations triggers a
  // black-box dump (when recovery is enabled).
  void run_invariant_check();

  // --- crash-recovery hooks (all inert when cfg.recovery.enabled is off) ---
  // Master window: spawns entities for pending connects (sending the
  // deferred ConnectAck) and removes entities of pending disconnects,
  // journaling each with a serialization index.
  void complete_pending_lifecycle(ThreadStats& st);
  // Master window, after all frame mutations: digests the world, seals
  // the frame's journal records, and takes the periodic checkpoint.
  void recovery_frame_end();
  // Snapshot of the full recoverable state (master window only).
  recovery::CheckpointData make_checkpoint(uint64_t digest);
  // Re-adopts a checkpointed slot on a live connect: fresh channel and
  // reply buffer, cleared delta baselines, liveness now. Caller holds
  // clients_mu_ and has set remote_port / the port map.
  void resume_client_locked(Client& c);
  // Stages a forensic drop record (no serialization index).
  void journal_drop(int tid, uint16_t port, recovery::DropReason why);
  // Remembers an evicted client's port (caller holds clients_mu_) /
  // consumes one remembered entry so the port is answered kEvicted once.
  void remember_evicted(uint16_t port);
  bool consume_remembered_eviction(uint16_t port);

  vt::Platform& platform_;
  net::VirtualNetwork& net_;
  ServerConfig cfg_;
  sim::World world_;
  GlobalStateBuffer global_events_;
  std::unique_ptr<LockManager> lock_manager_;

  std::vector<std::unique_ptr<net::Socket>> sockets_;     // one per thread
  std::vector<std::unique_ptr<net::Selector>> selectors_; // one per thread

  std::unique_ptr<vt::Mutex> clients_mu_;  // slot allocation / ownership moves
  std::vector<Client> clients_;            // fixed capacity max_clients
  std::unordered_map<uint16_t, int> client_slot_by_port_;

  std::vector<ThreadStats> stats_;  // one per thread
  FrameLockStats frame_lock_stats_;
  uint64_t frames_ = 0;
  vt::TimePoint last_world_{};  // previous world-phase time (for dt)

  // Records one finished frame into the metrics instruments (frame
  // duration from `start`, total `moves` executed). No-op when metrics
  // are detached.
  void record_frame_metrics(vt::TimePoint start, int moves);

  // Appends to `st.frame_trace` under the configured cap (§5.2 trace).
  void record_frame_trace(ThreadStats& st, uint64_t frame_id, int moves);

  std::atomic<bool> stop_{false};
  bool frame_trace_enabled_ = false;
  obs::Tracer* tracer_ = nullptr;            // non-owning, may be null
  obs::MetricsRegistry* metrics_ = nullptr;  // non-owning, may be null
  obs::HistogramMetric* frame_duration_ms_ = nullptr;
  obs::HistogramMetric* moves_per_frame_ = nullptr;
  uint64_t reassignments_ = 0;
  vt::TimePoint next_reassign_{};
  uint64_t evictions_ = 0;          // guarded by clients_mu_
  uint64_t rejected_connects_ = 0;  // guarded by clients_mu_
  uint64_t rejected_busy_ = 0;      // guarded by clients_mu_
  uint64_t stall_reassignments_ = 0;   // master window only
  uint64_t governor_evictions_ = 0;    // master window only
  std::atomic<uint64_t> stalls_injected_{0};
  vt::TimePoint next_expensive_evict_{};  // master window only
  std::unique_ptr<resilience::FrameGovernor> governor_;
  std::unique_ptr<resilience::WorkerWatchdog> watchdog_;  // parallel only
  std::unique_ptr<InvariantChecker> invariants_;  // null unless enabled

  // --- crash recovery (null unless cfg.recovery.enabled) ---
  std::unique_ptr<recovery::FlightRecorder> recorder_;
  std::unique_ptr<recovery::CheckpointManager> checkpoints_;
  std::unique_ptr<recovery::BlackBox> blackbox_;
  // Global serialization-index counter: every world mutation (world-phase
  // tick, executed move, lifecycle op) takes one; replay applies records
  // in this order. Moves draw theirs after acquiring their region locks,
  // so conflicting moves' indexes order exactly as their executions did.
  std::atomic<uint64_t> order_ctr_{0};
  std::string map_text_;  // GameMap::serialize(), embedded in checkpoints
  vt::TimePoint last_world_t0_{};  // world_phase args of the open frame
  vt::Duration last_world_dt_{};
  // Ports of evicted clients, remembered so their straggler moves (or a
  // warm-restarted server they don't know crashed) answer kEvicted once
  // instead of silence. FIFO-bounded; guarded by clients_mu_.
  std::deque<uint16_t> remembered_evicted_;
  std::unordered_set<uint16_t> remembered_evicted_set_;
  uint64_t resumed_clients_ = 0;  // guarded by clients_mu_
  bool restored_ = false;

  friend class InvariantChecker;
};

}  // namespace qserv::core
