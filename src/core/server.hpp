// Shared shell of the sequential and parallel game servers. The frame
// work itself lives in the layered engine (frame_pipeline.hpp: explicit
// Receive/World/Exec/Reply/Maintenance phase objects over the session
// layer in client_registry.hpp); the satellite subsystems — recovery,
// resilience, observability — attach through the hook seam in
// frame_hooks.hpp. Server implements the Engine facade those hooks see,
// wires everything together at construction, and keeps the public
// statistics/lifecycle API the harness, tests and benches consume. The two
// concrete servers (sequential_server.hpp, parallel_server.hpp) differ
// only in their main loops — exactly the relationship between the original
// QuakeWorld server and the paper's pthreads port.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/core/client_registry.hpp"
#include "src/core/config.hpp"
#include "src/core/frame_hooks.hpp"
#include "src/core/frame_stats.hpp"
#include "src/core/global_state.hpp"
#include "src/net/transport.hpp"
#include "src/recovery/journal.hpp"
#include "src/sim/world.hpp"

namespace qserv::obs {
class MetricsRegistry;
class ServerObs;
class Tracer;
}

namespace qserv::recovery {
class BlackBox;
class CheckpointManager;
class FlightRecorder;
class ServerRecovery;
enum class LoadError : uint8_t;
}

namespace qserv::resilience {
class FrameGovernor;
class ServerResilience;
class WorkerWatchdog;
}

namespace qserv::core {

class FramePipeline;
class InvariantChecker;
class LockManager;

class Server : public Engine {
 public:
  Server(vt::Platform& platform, net::Transport& net,
         const spatial::GameMap& map, ServerConfig cfg);
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Spawns the server thread(s) onto the platform. Call exactly once.
  virtual void start() = 0;

  // Signals the server loops to exit after the current frame.
  void request_stop();
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  // Number of worker threads (1 for the sequential server).
  virtual int thread_count() const = 0;

  // Worker fibers currently inside their loops. Reaches 0 only after a
  // requested stop has fully drained; a shard supervisor polls this for
  // quiescence before tearing a failed engine down.
  int active_workers() const {
    return active_workers_.load(std::memory_order_acquire);
  }

  // Registers an external satellite on the hook seam (a shard-layer
  // FrameHook, a test probe). Call before start(); the pointer must
  // outlive the server.
  void add_frame_hook(FrameHook* h) { hooks_.add(h); }
  void add_lifecycle_observer(LifecycleObserver* o) { hooks_.add(o); }

  // The server port a joining client with ordinal `i` of `expected`
  // should initially address (static block assignment, §3.1).
  uint16_t port_for_client(int ordinal, int expected_players) const;

  // --- statistics ---
  const std::vector<ThreadStats>& thread_stats() const { return stats_; }
  const FrameLockStats& frame_lock_stats() const { return frame_lock_stats_; }
  Breakdown total_breakdown() const;
  LockStats total_lock_stats() const;
  uint64_t frames() const override;
  uint64_t total_replies() const;
  uint64_t total_requests() const;
  // Zeroes all measurement state (warmup boundary), including the per-run
  // session counters and each registered hook's run state.
  void reset_stats();

  // Records (frame, moves) per thread for §5.2's dynamic-imbalance
  // analysis. Bounded to cfg.frame_trace_limit entries per thread; the
  // overflow shows up in frame_trace_dropped().
  void enable_frame_trace() { frame_trace_enabled_ = true; }
  bool frame_trace_enabled() const { return frame_trace_enabled_; }
  // Entries discarded across threads once the per-thread cap was hit.
  uint64_t frame_trace_dropped() const;

  // Netchan reliability counters summed over currently connected clients
  // (post-run inspection / metrics harvest).
  struct NetchanTotals {
    uint64_t packets_sent = 0;
    uint64_t packets_accepted = 0;
    uint64_t drops_detected = 0;
    uint64_t duplicates_rejected = 0;
  };
  NetchanTotals netchan_totals() const;

  // Attaches the observability layer (obs/): a per-thread event tracer
  // (phase spans onto one track per worker) and/or a metrics registry
  // (frame-duration and requests-per-frame histograms here; lock-wait
  // histograms inside the lock manager). Either may be null. Call before
  // start(); pointers must outlive the server. When detached (the
  // default) the hot path pays one branch per would-be span.
  void attach_observability(obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics);
  // Fleet variant: this engine's worker tracks are registered under the
  // Chrome process `trace_pid` and named `<track_prefix><thread>`, so N
  // shard engines coexist in one merged trace export. Does NOT rebind the
  // tracer's clock (a fleet shares one tracer; under SimPlatform every
  // shard runs on the same virtual clock, under RealPlatform wall time).
  void attach_observability(obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics, int trace_pid,
                            const std::string& track_prefix);
  obs::Tracer* tracer() const override { return tracer_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // Dynamic-assignment client migrations performed so far.
  uint64_t reassignments() const { return registry_.counters.reassignments; }

  // Clients reaped so far for exceeding client_timeout.
  uint64_t evictions() const { return registry_.counters.evictions; }
  // Connects refused with kServerFull so far.
  uint64_t rejected_connects() const {
    return registry_.counters.rejected_connects;
  }

  // --- resilience subsystem (src/resilience/) ---
  // Frame-budget governor; always constructed (it also feeds the rolling
  // p95 that admission control reads) but only steps the ladder when
  // cfg.resilience.governor is on.
  const resilience::FrameGovernor& governor() const;
  // Graceful drain (hot restart): stop admitting new clients — every
  // connect gets kServerBusy ("retry later"), which is exactly right,
  // because in a moment a new generation will be serving on these ports.
  // Existing sessions keep playing until the handoff checkpoint.
  void enter_drain();
  // Reopens admission after an aborted restart (the next generation never
  // came up, so this one keeps serving).
  void leave_drain();
  bool draining() const;
  // Worker watchdog; null on the sequential server, inert (enabled() ==
  // false) when cfg.resilience.watchdog_timeout is zero.
  const resilience::WorkerWatchdog* watchdog() const { return watchdog_; }
  // Connects refused with kServerBusy (admission control).
  uint64_t rejected_busy() const { return registry_.counters.rejected_busy; }
  // Clients migrated off stalled workers by the watchdog.
  uint64_t stall_reassignments() const {
    return registry_.counters.stall_reassignments;
  }
  // Clients evicted by the governor's last-resort rung.
  uint64_t governor_evictions() const {
    return registry_.counters.governor_evictions;
  }
  // Thread-stall faults actually served by worker threads (chaos runs).
  uint64_t stalls_injected() const {
    return stalls_injected_.load(std::memory_order_relaxed);
  }
  // Backpressure totals summed over threads.
  uint64_t total_moves_rate_limited() const;
  uint64_t total_packets_oversized() const;
  uint64_t total_moves_coalesced() const;

  // Null unless cfg.check_invariants (see core/invariant_checker.hpp).
  const InvariantChecker* invariant_checker() const {
    return invariants_.get();
  }
  // Total cross-structure violations detected (0 when checking is off).
  uint64_t invariant_violations() const;

  // --- crash recovery (src/recovery/; null unless cfg.recovery.enabled) ---
  const recovery::FlightRecorder* recorder() const;
  const recovery::CheckpointManager* checkpoints() const;
  const recovery::BlackBox* blackbox() const;
  // Warm restart: installs a decoded checkpoint — world, client registry
  // with netchan sequences, remembered evictions, frame/order counters —
  // into this freshly constructed server. Call after construction, before
  // start(). Restored clients either continue seamlessly on their old
  // ports (channel state survives) or re-adopt their slot by name when
  // they reconnect from a fresh port.
  recovery::LoadError restore_from(const std::vector<uint8_t>& image);

  // What a tail-replaying restore actually did (supervisor / bench
  // reporting).
  struct RestoreStats {
    uint64_t checkpoint_frame = 0;
    uint64_t resume_frame = 0;   // frame counter after the journal tail
    uint64_t tail_frames = 0;    // journal frames re-executed
    uint64_t tail_moves = 0;
    uint64_t tail_lifecycle = 0;
    bool digest_verified = false;  // every tail frame matched its digest
  };
  // Warm restart with journal-tail replay: restores the checkpoint, then
  // re-executes the journal frames recorded after it — digest-verified
  // per frame — so the engine resumes at the failure frame instead of
  // silently dropping post-checkpoint history. Registry deltas in the
  // tail (spawns, disconnects, evictions, cross-shard handoffs) are
  // applied to the restored slots. Returns kReplayDiverged on a digest
  // mismatch, after which this server must be discarded (state is
  // partially replayed).
  //
  // extra_out_seq_bump: additional out-sequence headroom on every
  // restored channel, on top of the tail-derived bump. A caller
  // restoring the SAME images repeatedly (crash loop: each short-lived
  // generation dies before its first checkpoint, so the stash never
  // advances) must pass a strictly growing value, or every generation
  // re-sends sequences a prior generation already burned and the peers
  // discard its packets — redirects included — as duplicates.
  recovery::LoadError restore_from(const std::vector<uint8_t>& image,
                                   const std::vector<uint8_t>& journal_image,
                                   RestoreStats* stats,
                                   uint32_t extra_out_seq_bump = 0);

  // Hot-restart handoff capture: the current engine state as a
  // qserv-ckpt-v1 blob, off the periodic schedule. Requires
  // cfg.recovery.enabled and quiesced workers (call after request_stop()
  // has drained active_workers() to zero).
  std::vector<uint8_t> encode_checkpoint_now();

  bool restored() const { return registry_.restored(); }
  // Checkpointed clients re-adopted through a reconnect (by port or name).
  uint64_t resumed_clients() const {
    return registry_.counters.resumed_clients;
  }
  // Writes a black-box dump (latest checkpoint, journal tail, trace,
  // meta) now; returns the dump directory or "" (disabled / I/O failure).
  std::string dump_blackbox(const std::string& label,
                            const std::string& why) override;

  // --- cross-shard session handoff (master window / pre-start only) ---
  // A player session packaged for adoption by a neighboring shard engine:
  // identity, liveness sequencing, netchan state (the peer must see one
  // continuous packet stream across the handoff) and the closed
  // HandoffState gameplay-field list.
  struct SessionTransfer {
    std::string name;
    uint16_t remote_port = 0;
    uint32_t last_seq = 0;
    int64_t last_move_time_ns = 0;
    uint32_t chan_out_seq = 0;
    uint32_t chan_in_seq = 0;
    uint32_t chan_in_acked = 0;
    // Causal-trace flow id stitching extract→adopt across shard tracks in
    // the merged export; 0 = untraced. In-memory only, never journaled.
    uint64_t flow_id = 0;
    // Containment metadata (in-memory only, like flow_id): where the
    // session was extracted from (-1 = unknown, e.g. a shed shard that
    // is already down), when it entered its current mailbox, and how
    // often a destination refused adoption — the shard layer's adopt
    // timeout and retry budget hang off these so a transfer targeted at
    // a dead shard is returned to its source instead of stranded.
    int source_shard = -1;
    int64_t posted_at_ns = 0;
    int adopt_retries = 0;
    recovery::HandoffState state;
  };
  // Packages the session on `port` and removes it from this engine:
  // captures the handoff state, journals kHandoffOut, removes the entity
  // and releases the slot. False when the port has no live settled slot.
  // Permanently detaches world cost charging on this server. Only for
  // never-started throwaway engines (the shard supervisor's shed path
  // restores one purely to extract sessions, from a timer context where
  // no virtual CPU can be charged).
  void detach_world_charging() { world_.exchange_platform(nullptr); }

  bool extract_session(uint16_t port, SessionTransfer& out);
  // Installs a transferred session on this engine: spawns a player named
  // t.name (consuming the world RNG exactly as journal replay will),
  // applies the carried state, relinks at the carried origin, binds the
  // port and flags notify_port + a forced full snapshot so the peer's
  // next reply re-teaches it the new server port. Journals kHandoffIn.
  // False when the registry is full or the port is already bound (no
  // world state is touched in that case — callers may retry elsewhere).
  bool adopt_session(const SessionTransfer& t);
  // Sessions handed to / adopted from neighboring shards this run.
  uint64_t handoffs_out() const { return registry_.counters.handoffs_out; }
  uint64_t handoffs_in() const { return registry_.counters.handoffs_in; }

  const sim::World& world() const override { return world_; }
  sim::World& world() { return world_; }
  const ServerConfig& config() const override { return cfg_; }
  LockManager& lock_manager() { return *lock_manager_; }
  const LockManager& lock_manager() const { return *lock_manager_; }
  // The session layer (slot lifecycle, port map, per-run counters).
  ClientRegistry& registry() override { return registry_; }
  const ClientRegistry& registry() const { return registry_; }
  int connected_clients() const override { return registry_.connected(); }

  // --- Engine facade (hook seam; see frame_hooks.hpp) ---
  vt::Platform& platform() override { return platform_; }
  uint64_t draw_order() override;
  uint64_t order_count() const override;
  vt::TimePoint last_world_t0() const override;
  vt::Duration last_world_dt() const override;
  int migrate_clients_from(int stalled_tid, ThreadStats& st) override;
  int evict_most_expensive(ThreadStats& st) override;

 protected:
  // True when client_timeout is enabled and some connected client has
  // been silent past it — the cue for a maintenance frame when the
  // server is otherwise idle.
  bool reap_due() const { return registry_.reap_due(); }

  // True when the watchdog exists and sees a stale heartbeat — the cue
  // for a maintenance frame on an otherwise idle server (mirrors
  // reap_due()).
  bool watchdog_due(int self_tid) const;

  // Appends to `st.frame_trace` under the configured cap (§5.2 trace).
  void record_frame_trace(ThreadStats& st, uint64_t frame_id, int moves);

  vt::Platform& platform_;
  net::Transport& net_;
  ServerConfig cfg_;
  sim::World world_;
  GlobalStateBuffer global_events_;
  ClientRegistry registry_;
  std::unique_ptr<LockManager> lock_manager_;

  std::vector<std::unique_ptr<net::Socket>> sockets_;      // one per thread
  std::vector<std::unique_ptr<net::Selector>> selectors_;  // one per thread

  std::vector<ThreadStats> stats_;  // one per thread
  FrameLockStats frame_lock_stats_;

  std::atomic<bool> stop_{false};
  std::atomic<int> active_workers_{0};
  bool frame_trace_enabled_ = false;
  obs::Tracer* tracer_ = nullptr;            // non-owning, may be null
  obs::MetricsRegistry* metrics_ = nullptr;  // non-owning, may be null
  std::atomic<uint64_t> stalls_injected_{0};
  vt::TimePoint next_reassign_{};

  // Raw view of the watchdog owned by resilience_; set by ParallelServer
  // when it arms one (hot-path heartbeat/check without an extra hop).
  resilience::WorkerWatchdog* watchdog_ = nullptr;

  // --- the hook seam ---
  // Resilience always attaches (the governor feeds admission control even
  // with the ladder off); recovery only when cfg.recovery.enabled —
  // callback *presence* is part of replay determinism.
  std::unique_ptr<resilience::ServerResilience> resilience_;
  std::unique_ptr<recovery::ServerRecovery> recovery_;
  std::unique_ptr<obs::ServerObs> obs_hook_;
  std::unique_ptr<InvariantChecker> invariants_;  // null unless enabled
  HookList hooks_;

  // The layered frame engine; built last, over everything above.
  std::unique_ptr<FramePipeline> pipeline_;
};

}  // namespace qserv::core
