// The session layer: client slot lifecycle, the port -> slot map, netchan
// and reply-buffer ownership, evicted-port memory, and the per-run session
// counters. Extracted from the Server monolith so slot reuse, resume and
// migration are unit-testable without a frame loop, and so the engine's
// phases touch sessions through one narrow surface.
//
// Locking contract: the registry owns the clients mutex (the old
// clients_mu_). Methods suffixed _locked require it held by the caller;
// by_port()/consume_remembered_eviction() take it internally; connected()
// and netchan-style scans read without it (racy-by-design post-run
// inspection, exactly as before the extraction).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/global_state.hpp"
#include "src/net/netchan.hpp"
#include "src/resilience/token_bucket.hpp"

namespace qserv::core {

// One client session. Field semantics are unchanged from the Server-era
// Client struct; see the comments for the deferred-lifecycle flags.
struct ClientSlot {
  bool in_use = false;
  uint32_t entity_id = 0;
  uint16_t remote_port = 0;
  std::string name;
  int owner_thread = 0;
  bool notify_port = false;  // next snapshot carries assigned_port
  // Connect accepted, entity not yet spawned: creation is deferred to
  // the master's between-frames window so entity lifecycle never races
  // request processing (and replays in serialization order). Until the
  // spawn, the slot has no entity, channel or reply buffer.
  bool pending_spawn = false;
  int connect_tid = 0;  // receiving thread (block-assignment owner)
  // Disconnect seen mid-drain; entity removal is deferred to the same
  // window for the same reason.
  bool pending_disconnect = false;
  // Restored from a checkpoint and not yet heard from on a live socket;
  // a connect from a fresh port may re-adopt this slot by name.
  bool awaiting_resume = false;
  uint32_t last_seq = 0;          // latest move sequence processed
  int64_t last_move_time_ns = 0;  // echoed back in the reply
  // When the server last heard anything from this client (liveness
  // clock for client_timeout reaping). Written by the thread draining
  // the client's datagrams while an idle thread may concurrently poll
  // reap_due(), so all access goes through std::atomic_ref.
  int64_t last_heard_ns = 0;
  bool pending_reply = false;  // sent a request this frame
  std::unique_ptr<net::NetChannel> chan;
  std::unique_ptr<ReplyBuffer> buffer;
  // Delta-snapshot support (owner thread only): recently sent snapshot
  // entity lists keyed by server frame, and the newest frame the client
  // reports having reconstructed.
  struct SentSnapshot {
    uint32_t server_frame = 0;
    std::vector<net::EntityUpdate> entities;
  };
  std::deque<SentSnapshot> history;
  uint32_t client_baseline_frame = 0;
  // Per-client move-rate limiter (configured at connect from
  // cfg.resilience). Atomic inside: during a stall migration two
  // threads can briefly drain the same client.
  resilience::TokenBucket bucket;
  // Moves executed since the governor's last expensive-client scan
  // (owner thread writes, master window reads/clears — ordered by the
  // frame-sync mutex).
  uint32_t moves_since_scan = 0;
};

class ClientRegistry {
 public:
  ClientRegistry(vt::Platform& platform, const ServerConfig& cfg);

  ClientRegistry(const ClientRegistry&) = delete;
  ClientRegistry& operator=(const ClientRegistry&) = delete;

  vt::Mutex& mutex() const { return *mu_; }

  std::vector<ClientSlot>& slots() { return slots_; }
  const std::vector<ClientSlot>& slots() const { return slots_; }
  ClientSlot& slot(int i) { return slots_[static_cast<size_t>(i)]; }

  // Locks internally. The returned pointer stays valid after unlock: the
  // slot vector never grows, and slots are never destroyed, only reused.
  ClientSlot* by_port(uint16_t port);
  // Caller holds mutex(). -1 when the port has no slot.
  int index_of_port_locked(uint16_t port) const;
  const std::unordered_map<uint16_t, int>& port_map() const {
    return slot_by_port_;
  }
  // Lock-free scan (post-run inspection / blackbox metadata).
  int connected() const;

  // --- slot lifecycle (caller holds mutex()) ---
  int find_free_locked() const;  // -1 when full
  void bind_port_locked(uint16_t port, int slot_index) {
    slot_by_port_[port] = slot_index;
  }
  void unbind_port_locked(uint16_t port) { slot_by_port_.erase(port); }
  // Fresh connect accepted: binds the port, stamps identity, and clears
  // every delta/backpressure field a reused slot must not inherit. The
  // entity spawn (and channel creation) stays deferred to the master
  // window.
  void init_pending_slot_locked(int slot_index, uint16_t port, int tid,
                                const std::string& name);
  // Re-adopts a checkpointed slot on a live connect: fresh channel on the
  // owner's socket, fresh reply buffer, cleared delta baselines, liveness
  // now. Caller has set remote_port / the port map.
  void resume_slot_locked(ClientSlot& c, net::Socket& owner_socket);
  // Frees one slot after eviction teardown (registry bookkeeping only —
  // the reject send, journaling and world-entity removal are the
  // caller's).
  void release_slot_locked(ClientSlot& c);
  // Ownership handoff to `new_owner`: rebinds the channel (sequencing
  // state survives — the peer must see one continuous stream) and flags
  // notify_port so the next snapshot re-teaches the port.
  void migrate_slot_locked(ClientSlot& c, int new_owner,
                           net::Socket& owner_socket);

  // True when client_timeout is enabled and some connected client has
  // been silent past it — the cue for a maintenance frame when the
  // server is otherwise idle.
  bool reap_due() const;

  // --- evicted-port memory (inert unless recovery is enabled) ---
  // Remembers an evicted client's port so its straggler moves (or a
  // warm-restarted server it doesn't know crashed) answer kEvicted once
  // instead of silence. FIFO-bounded. Caller holds mutex().
  void remember_evicted_locked(uint16_t port);
  // Consumes one remembered entry (locks internally); each port is
  // answered a single kEvicted, so a straggler streaming moves cannot
  // turn the memory into a reject storm.
  bool consume_remembered_eviction(uint16_t port);
  // FIFO-ordered remembered ports (checkpoint capture). Caller holds
  // mutex().
  std::vector<uint16_t> remembered_ports_locked() const;

  // Restored-from-checkpoint flag: a connect from an unknown port may
  // re-adopt an awaiting_resume slot by name.
  void set_restored() { restored_ = true; }
  bool restored() const { return restored_; }

  // Per-run session counters. Guarded by mutex() where their increment
  // sites are (see server.hpp's accessor comments); zeroed — except the
  // lifetime ones — at the warmup boundary by reset_run_counters().
  struct RunCounters {
    uint64_t evictions = 0;          // timeout reaps
    uint64_t rejected_connects = 0;  // kServerFull
    uint64_t rejected_busy = 0;      // kServerBusy (admission control)
    uint64_t reassignments = 0;      // region-based migrations
    uint64_t stall_reassignments = 0;  // watchdog migrations
    uint64_t governor_evictions = 0;   // governor rung-4 evictions
    uint64_t handoffs_out = 0;         // sessions extracted for a neighbor
    uint64_t handoffs_in = 0;          // sessions adopted from a neighbor
    uint64_t resumed_clients = 0;      // lifetime: checkpoint re-adoptions
  };
  RunCounters counters;

  // Warmup boundary: zeroes the per-run counters above. resumed_clients
  // survives — restore/resume happens before the measurement window and
  // is inspected after it.
  void reset_run_counters();

 private:
  vt::Platform& platform_;
  const ServerConfig& cfg_;
  std::unique_ptr<vt::Mutex> mu_;
  std::vector<ClientSlot> slots_;  // fixed capacity max_clients
  std::unordered_map<uint16_t, int> slot_by_port_;
  // Guarded by mu_. The set answers membership; the deque keeps FIFO
  // eviction order for the bound.
  std::deque<uint16_t> remembered_evicted_;
  std::unordered_set<uint16_t> remembered_set_;
  bool restored_ = false;
};

}  // namespace qserv::core
