#include "src/core/frame_stats.hpp"

#include <cstdio>

namespace qserv::core {

Breakdown& Breakdown::operator+=(const Breakdown& o) {
  exec += o.exec;
  lock_leaf += o.lock_leaf;
  lock_parent += o.lock_parent;
  receive += o.receive;
  reply += o.reply;
  reply_view += o.reply_view;
  reply_encode += o.reply_encode;
  reply_finalize += o.reply_finalize;
  reply_send += o.reply_send;
  world += o.world;
  intra_wait += o.intra_wait;
  inter_wait_world += o.inter_wait_world;
  inter_wait_frame += o.inter_wait_frame;
  idle += o.idle;
  return *this;
}

LockStats& LockStats::operator+=(const LockStats& o) {
  requests_locked += o.requests_locked;
  lock_requests += o.lock_requests;
  distinct_leaves += o.distinct_leaves;
  relocks += o.relocks;
  parent_list_locks += o.parent_list_locks;
  return *this;
}

void ThreadStats::reset() {
  const auto keep = std::move(frame_trace);
  obs::Tracer* const keep_tracer = tracer;
  const int keep_track = trace_track;
  *this = ThreadStats{};
  (void)keep;  // trace from warmup is discarded
  tracer = keep_tracer;  // observability attachments survive the boundary
  trace_track = keep_track;
}

void FrameLockStats::reset() { *this = FrameLockStats{}; }

BreakdownPct to_percent(const Breakdown& b) {
  BreakdownPct out;
  const double total = static_cast<double>(b.total().ns);
  if (total <= 0.0) return out;
  out.exec = static_cast<double>(b.exec.ns) / total;
  out.lock_leaf = static_cast<double>(b.lock_leaf.ns) / total;
  out.lock_parent = static_cast<double>(b.lock_parent.ns) / total;
  out.receive = static_cast<double>(b.receive.ns) / total;
  out.reply = static_cast<double>(b.reply.ns) / total;
  out.reply_view = static_cast<double>(b.reply_view.ns) / total;
  out.reply_encode = static_cast<double>(b.reply_encode.ns) / total;
  out.reply_finalize = static_cast<double>(b.reply_finalize.ns) / total;
  out.reply_send = static_cast<double>(b.reply_send.ns) / total;
  out.world = static_cast<double>(b.world.ns) / total;
  out.intra_wait = static_cast<double>(b.intra_wait.ns) / total;
  out.inter_wait_world = static_cast<double>(b.inter_wait_world.ns) / total;
  out.inter_wait_frame = static_cast<double>(b.inter_wait_frame.ns) / total;
  out.idle = static_cast<double>(b.idle.ns) / total;
  return out;
}

std::string format_breakdown(const Breakdown& b) {
  const BreakdownPct p = to_percent(b);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "exec %5.1f%% | lock %5.1f%% (leaf %.1f%% parent %.1f%%) | "
                "recv %4.1f%% | reply %5.1f%% | world %4.1f%% | intra-wait "
                "%5.1f%% | inter-wait %5.1f%% | idle %5.1f%%",
                p.exec * 100, p.lock() * 100, p.lock_leaf * 100,
                p.lock_parent * 100, p.receive * 100, p.reply * 100,
                p.world * 100, p.intra_wait * 100, p.inter_wait() * 100,
                p.idle * 100);
  std::string out = buf;
  const vt::Duration staged =
      b.reply_view + b.reply_encode + b.reply_finalize + b.reply_send;
  if (staged.ns > 0) {
    std::snprintf(buf, sizeof buf,
                  " | reply stages: view %.1f%% encode %.1f%% finalize "
                  "%.1f%% send %.1f%%",
                  p.reply_view * 100, p.reply_encode * 100,
                  p.reply_finalize * 100, p.reply_send * 100);
    out += buf;
  }
  return out;
}

}  // namespace qserv::core
