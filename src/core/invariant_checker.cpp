#include "src/core/invariant_checker.hpp"

#include <unordered_map>
#include <unordered_set>

#include "src/core/client_registry.hpp"
#include "src/sim/world.hpp"

namespace qserv::core {

void InvariantChecker::violation(std::string msg) {
  ++total_violations_;
  ++current_run_violations_;
  if (messages_.size() < kMaxMessages) messages_.push_back(std::move(msg));
}

int InvariantChecker::run() {
  ++runs_;
  current_run_violations_ = 0;

  const auto& clients = registry_.slots();
  const auto& by_port = registry_.port_map();
  const sim::World& world = world_;
  const spatial::AreanodeTree& tree = world.tree();

  // --- 1. client registry: slots <-> port map ---
  int in_use = 0;
  std::unordered_set<uint32_t> client_entities;
  for (size_t s = 0; s < clients.size(); ++s) {
    const auto& c = clients[s];
    if (!c.in_use) continue;
    ++in_use;
    const auto it = by_port.find(c.remote_port);
    if (it == by_port.end()) {
      violation("slot " + std::to_string(s) + " (port " +
                std::to_string(c.remote_port) + ") missing from port map");
    } else if (it->second != static_cast<int>(s)) {
      violation("port " + std::to_string(c.remote_port) + " maps to slot " +
                std::to_string(it->second) + ", not " + std::to_string(s));
    }
    if (!client_entities.insert(c.entity_id).second) {
      violation("entity " + std::to_string(c.entity_id) +
                " owned by two client slots");
    }
    // --- 2. registry -> world: the slot's player entity is alive ---
    const sim::Entity* e = world.get(c.entity_id);
    if (e == nullptr) {
      violation("slot " + std::to_string(s) + " references dead entity " +
                std::to_string(c.entity_id));
      continue;
    }
    if (!e->is_player()) {
      violation("slot " + std::to_string(s) + " entity " +
                std::to_string(c.entity_id) + " is not a player");
    }
  }
  if (static_cast<int>(by_port.size()) != in_use) {
    violation("port map has " + std::to_string(by_port.size()) +
              " entries for " + std::to_string(in_use) + " in-use slots");
  }
  for (const auto& [port, slot] : by_port) {
    if (slot < 0 || slot >= static_cast<int>(clients.size()) ||
        !clients[static_cast<size_t>(slot)].in_use) {
      violation("port " + std::to_string(port) + " maps to freed slot " +
                std::to_string(slot));
    } else if (clients[static_cast<size_t>(slot)].remote_port != port) {
      violation("port map entry " + std::to_string(port) +
                " disagrees with slot " + std::to_string(slot) + " port " +
                std::to_string(clients[static_cast<size_t>(slot)].remote_port));
    }
  }

  // --- 2b. world -> registry: no orphan player entities ---
  int active_players = 0;
  world.for_each_entity([&](const sim::Entity& e) {
    if (!e.is_player()) return;
    ++active_players;
    if (!client_entities.contains(e.id)) {
      violation("player entity " + std::to_string(e.id) + " (" + e.name +
                ") has no client slot");
    }
  });
  if (active_players != in_use) {
    violation(std::to_string(active_players) + " player entities for " +
              std::to_string(in_use) + " connected clients");
  }

  // --- 3. areanode membership: link fields <-> node object lists ---
  std::unordered_map<uint32_t, int> linked_at;  // entity id -> node index
  size_t linked_total = 0;
  for (int n = 0; n < tree.node_count(); ++n) {
    for (const uint32_t id : tree.node(n).objects) {
      ++linked_total;
      if (!linked_at.emplace(id, n).second) {
        violation("entity " + std::to_string(id) +
                  " linked to multiple areanodes");
      }
      const sim::Entity* e = world.get(id);
      if (e == nullptr) {
        violation("areanode " + std::to_string(n) +
                  " lists inactive entity " + std::to_string(id));
      } else if (e->areanode != n) {
        violation("entity " + std::to_string(id) + " listed in node " +
                  std::to_string(n) + " but claims node " +
                  std::to_string(e->areanode));
      }
    }
  }
  size_t should_be_linked = 0;
  world.for_each_entity([&](const sim::Entity& e) {
    if (e.areanode < 0) return;
    ++should_be_linked;
    if (!linked_at.contains(e.id)) {
      violation("entity " + std::to_string(e.id) + " claims node " +
                std::to_string(e.areanode) + " but is linked nowhere");
    }
  });
  if (linked_total != should_be_linked) {
    violation("tree links " + std::to_string(linked_total) +
              " entities, world expects " + std::to_string(should_be_linked));
  }

  return current_run_violations_;
}

}  // namespace qserv::core
