#include "src/core/parallel_server.hpp"

#include "src/core/frame_pipeline.hpp"
#include "src/obs/trace.hpp"
#include "src/resilience/engine_hook.hpp"
#include "src/net/fault_scheduler.hpp"

namespace qserv::core {

ParallelServer::ParallelServer(vt::Platform& platform,
                               net::Transport& net,
                               const spatial::GameMap& map, ServerConfig cfg)
    : Server(platform, net, map, cfg),
      sync_mu_(platform.make_mutex("frame-sync")),
      sync_cv_(platform.make_condvar()) {
  if (cfg_.resilience.watchdog_timeout.ns > 0) {
    watchdog_ = resilience_->arm_watchdog(cfg_.threads);
    pipeline_->context().watchdog = watchdog_;
  }
}

void ParallelServer::start() {
  for (int t = 0; t < cfg_.threads; ++t) {
    platform_.spawn("server-worker-" + std::to_string(t), vt::Domain::kServer,
                    [this, t] { worker_loop(t); });
  }
  // On the simulated platform fibers cannot wedge between scheduling
  // points, and the select-timeout maintenance path already covers
  // detection deterministically; the wall-clock timer is only armed where
  // threads can really stall under the scheduler.
  if (watchdog_ != nullptr && !platform_.is_simulated())
    schedule_watchdog_timer();
}

void ParallelServer::schedule_watchdog_timer() {
  platform_.call_after(cfg_.resilience.watchdog_timeout / 2, [this] {
    if (stop_requested()) return;
    if (watchdog_->check_due(platform_.now(), /*self=*/-1)) {
      for (auto& sel : selectors_) sel->poke();
    }
    schedule_watchdog_timer();
  });
}

vt::Duration ParallelServer::total_inter_wait_world() const {
  vt::Duration d{};
  for (const auto& s : stats_) d += s.breakdown.inter_wait_world;
  return d;
}

vt::Duration ParallelServer::total_inter_wait_frame() const {
  vt::Duration d{};
  for (const auto& s : stats_) d += s.breakdown.inter_wait_frame;
  return d;
}

void ParallelServer::worker_loop(int tid) {
  ThreadStats& st = stats_[static_cast<size_t>(tid)];

  active_workers_.fetch_add(1, std::memory_order_acq_rel);
  while (!stop_requested()) {
    if (watchdog_ != nullptr) watchdog_->heartbeat(tid, platform_.now());

    // Chaos: serve any scheduled thread-stall fault here, at the top of
    // the loop — the worker holds no locks and is not a frame participant,
    // so a wedged worker never hangs a barrier; it simply goes silent and
    // its heartbeat ages until the watchdog adjudicates. (A worker wedged
    // *inside* a frame would hang the barrier — that failure mode is out
    // of scope; see DESIGN.md §8.)
    if (const net::FaultScheduler* f = net_.faults_or_null()) {
      const vt::Duration stall =
          f->stall_remaining(platform_.now(), tid, cfg_.base_port);
      if (stall.ns > 0) {
        stalls_injected_.fetch_add(1, std::memory_order_relaxed);
        if (st.tracer != nullptr && st.tracer->enabled())
          st.tracer->record(st.trace_track, "stalled", platform_.now().ns,
                            stall.ns);
        platform_.sleep_for(stall);
        continue;
      }
    }

    // S: wait for requests on this thread's private port.
    const vt::TimePoint idle0 = platform_.now();
    const bool ready = selectors_[static_cast<size_t>(tid)]->wait_until(
        platform_.now() + cfg_.select_timeout);
    const vt::TimePoint idle1 = platform_.now();
    st.breakdown.idle += idle1 - idle0;
    if (st.tracer != nullptr && st.tracer->enabled() && idle1.ns > idle0.ns)
      st.tracer->record(st.trace_track, "idle", idle0.ns,
                        (idle1 - idle0).ns);
    // A select timeout normally just re-checks the stop flag — but when a
    // client has been silent past client_timeout, or a peer worker's
    // heartbeat is stale, fall through and run a maintenance frame so the
    // master duties below can reap / adjudicate even on an otherwise idle
    // server.
    if (!ready && !reap_due() && !watchdog_due(tid)) {
      hooks_.idle_wait(tid);
      continue;
    }
    platform_.compute(cfg_.costs.select_syscall);

    bool is_master = false;
    sync_mu_->lock();
    if (sync_.phase == FramePhase::kIdle) {
      // Master election: first thread to detect an arriving request.
      is_master = true;
      sync_.phase = FramePhase::kWorld;
      sync_.master = tid;
      sync_.frame_id = pipeline_->advance_frame();
      sync_.participants = 1;
      sync_.participants_mask = 1ull << tid;
      sync_.done_processing = 0;
      sync_.done_reply = 0;
      sync_.frame_moves = 0;
      sync_.frame_start = platform_.now();
      sync_mu_->unlock();

      // Extension: batch requests by delaying the frame start, so that
      // threads whose requests arrive slightly later join this frame
      // instead of waiting a whole frame (§5.2 future work). The master's
      // deliberate delay is accounted as idle time.
      if (cfg_.batch_window.ns > 0) {
        const vt::TimePoint b0 = platform_.now();
        platform_.sleep_for(cfg_.batch_window);
        st.breakdown.idle += platform_.now() - b0;
      }

      lock_manager_->frame_reset();
      // P: world physics, performed by the master alone.
      pipeline_->world_phase().run(st);
      ++st.frames_as_master;

      // Extension: periodic dynamic re-partitioning of players to
      // threads by map region (§5.1 future work). Master-only, between
      // request phases, so ownership never changes mid-frame.
      if (cfg_.assign_policy == AssignPolicy::kRegion &&
          cfg_.reassign_interval.ns > 0 &&
          platform_.now() >= next_reassign_) {
        pipeline_->maintenance().reassign_clients();
        next_reassign_ = platform_.now() + cfg_.reassign_interval;
      }

      sync_mu_->lock();
      sync_.phase = FramePhase::kProcessing;
      platform_.compute(cfg_.costs.signal_syscall);
      sync_cv_->broadcast();
      sync_mu_->unlock();
    } else if (sync_.phase == FramePhase::kWorld) {
      // Join the frame being formed; wait for the world update to end.
      ++sync_.participants;
      sync_.participants_mask |= 1ull << tid;
      const int64_t fid = static_cast<int64_t>(sync_.frame_id);
      obs::TraceScope span(st.tracer, st.trace_track, "inter-wait-world",
                           fid);
      const vt::TimePoint w0 = platform_.now();
      while (sync_.phase == FramePhase::kWorld) sync_cv_->wait(*sync_mu_);
      st.breakdown.inter_wait_world += platform_.now() - w0;
      sync_mu_->unlock();
    } else {
      // Too late for this frame: wait for it to end; we are guaranteed
      // to take part in the next one (our queue is non-empty).
      const uint64_t fid = sync_.frame_id;
      obs::TraceScope span(st.tracer, st.trace_track, "inter-wait-frame",
                           static_cast<int64_t>(fid));
      const vt::TimePoint w0 = platform_.now();
      while (sync_.phase != FramePhase::kIdle && sync_.frame_id == fid)
        sync_cv_->wait(*sync_mu_);
      st.breakdown.inter_wait_frame += platform_.now() - w0;
      sync_mu_->unlock();
      continue;
    }

    // Rx/E: drain this thread's request queue.
    const int moves = pipeline_->receive().drain(tid, st, /*use_locks=*/true);
    st.requests_per_frame.add(moves);
    ++st.frames_participated;

    // Global synchronization before the reply phase.
    sync_mu_->lock();
    if (frame_trace_enabled_ &&
        !governor().at_least(resilience::kShedDebugWork))
      record_frame_trace(st, sync_.frame_id, moves);
    sync_.frame_moves += moves;
    ++sync_.done_processing;
    if (sync_.done_processing == sync_.participants) {
      // Last thread in flips the frame into the reply phase. The world
      // is frozen from here, so this is the single-threaded point where
      // the frame's events are sealed and (under the reply knobs) the
      // SoA view and shared PVS rows are built for every thread to read.
      pipeline_->reply().prepare(tid, st);
      sync_.phase = FramePhase::kReply;
      platform_.compute(cfg_.costs.signal_syscall);
      sync_cv_->broadcast();
    } else {
      obs::TraceScope span(st.tracer, st.trace_track, "intra-wait",
                           static_cast<int64_t>(sync_.frame_id));
      const vt::TimePoint w0 = platform_.now();
      while (sync_.phase != FramePhase::kReply) sync_cv_->wait(*sync_mu_);
      st.breakdown.intra_wait += platform_.now() - w0;
    }
    const uint64_t mask = sync_.participants_mask;
    sync_mu_->unlock();

    // T/Tx: replies for this thread's complete client set; the master
    // also covers clients of threads not participating in this frame.
    pipeline_->reply().run(tid, st, /*include_unowned=*/is_master, mask);

    // Frame end.
    sync_mu_->lock();
    ++sync_.done_reply;
    if (is_master) {
      {
        obs::TraceScope span(st.tracer, st.trace_track, "intra-wait",
                             static_cast<int64_t>(sync_.frame_id));
        const vt::TimePoint w0 = platform_.now();
        while (sync_.done_reply < sync_.participants)
          sync_cv_->wait(*sync_mu_);
        st.breakdown.intra_wait += platform_.now() - w0;
      }
      const int frame_moves = sync_.frame_moves;
      const vt::TimePoint frame_start = sync_.frame_start;
      sync_mu_->unlock();

      // Master duties (all participants are past their reply phase and
      // non-participants are blocked on kIdle, so this window is
      // single-threaded — safe for entity removal and the audit walk):
      // the maintenance phase clears the global state buffer, harvests
      // per-frame lock statistics, completes deferred lifecycle, reaps
      // timed-out clients, runs the subsystem master duties (watchdog
      // adjudication, governor step), seals the frame, audits, and
      // records the frame metrics/trace. Then signal the frame end to
      // wake any threads that missed this frame.
      pipeline_->maintenance().run_master_window(tid, frame_start,
                                                 frame_moves, st,
                                                 /*harvest_locks=*/true);

      sync_mu_->lock();
      sync_.phase = FramePhase::kIdle;
      sync_.master = -1;
      platform_.compute(cfg_.costs.signal_syscall);
      sync_cv_->broadcast();
      sync_mu_->unlock();
    } else {
      sync_cv_->broadcast();  // possibly the master waits on us
      sync_mu_->unlock();
    }
  }
  // Must stay the last statement touching `this`: once the count hits
  // zero a shard supervisor may destroy the engine (Shard::quiesced()).
  active_workers_.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace qserv::core
