#include "src/core/client_registry.hpp"

#include <atomic>

namespace qserv::core {

ClientRegistry::ClientRegistry(vt::Platform& platform, const ServerConfig& cfg)
    : platform_(platform), cfg_(cfg), mu_(platform.make_mutex("clients")) {
  slots_.resize(static_cast<size_t>(cfg.max_clients));
}

ClientSlot* ClientRegistry::by_port(uint16_t port) {
  vt::LockGuard g(*mu_);
  const auto it = slot_by_port_.find(port);
  return it == slot_by_port_.end()
             ? nullptr
             : &slots_[static_cast<size_t>(it->second)];
}

int ClientRegistry::index_of_port_locked(uint16_t port) const {
  const auto it = slot_by_port_.find(port);
  return it == slot_by_port_.end() ? -1 : it->second;
}

int ClientRegistry::connected() const {
  int n = 0;
  for (const auto& c : slots_) n += c.in_use ? 1 : 0;
  return n;
}

int ClientRegistry::find_free_locked() const {
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) {
    if (!slots_[static_cast<size_t>(i)].in_use) return i;
  }
  return -1;
}

void ClientRegistry::init_pending_slot_locked(int slot_index, uint16_t port,
                                              int tid,
                                              const std::string& name) {
  slot_by_port_[port] = slot_index;
  ClientSlot& c = slots_[static_cast<size_t>(slot_index)];
  c.in_use = true;
  c.pending_spawn = true;
  c.pending_disconnect = false;
  c.awaiting_resume = false;
  c.connect_tid = tid;
  c.owner_thread = tid;  // provisional until the spawn picks the owner
  c.entity_id = 0;
  c.remote_port = port;
  c.name = name;
  c.pending_reply = false;
  c.notify_port = false;
  c.last_seq = 0;
  c.last_move_time_ns = 0;
  std::atomic_ref<int64_t>(c.last_heard_ns)
      .store(platform_.now().ns, std::memory_order_relaxed);
  // A reused slot must not inherit the previous occupant's delta
  // baselines — the new client has reconstructed nothing.
  c.history.clear();
  c.client_baseline_frame = 0;
  c.bucket.configure(cfg_.resilience.move_rate_limit,
                     cfg_.resilience.move_burst);
  c.moves_since_scan = 0;
  c.chan.reset();
  c.buffer.reset();
}

void ClientRegistry::resume_slot_locked(ClientSlot& c,
                                        net::Socket& owner_socket) {
  c.awaiting_resume = false;
  c.pending_reply = false;
  c.notify_port = true;  // re-teach the owner port in the next snapshot
  c.last_seq = 0;        // the reconnected peer restarts its sequences
  c.last_move_time_ns = 0;
  c.history.clear();
  c.client_baseline_frame = 0;
  c.chan = std::make_unique<net::NetChannel>(owner_socket, c.remote_port);
  c.buffer = std::make_unique<ReplyBuffer>(platform_);
  std::atomic_ref<int64_t>(c.last_heard_ns)
      .store(platform_.now().ns, std::memory_order_relaxed);
  c.bucket.configure(cfg_.resilience.move_rate_limit,
                     cfg_.resilience.move_burst);
  c.moves_since_scan = 0;
}

void ClientRegistry::release_slot_locked(ClientSlot& c) {
  c.in_use = false;
  c.chan.reset();
  c.buffer.reset();
  c.history.clear();
  c.client_baseline_frame = 0;
  c.pending_reply = false;
  c.notify_port = false;
  c.pending_spawn = false;
  c.pending_disconnect = false;
  c.awaiting_resume = false;
}

void ClientRegistry::migrate_slot_locked(ClientSlot& c, int new_owner,
                                         net::Socket& owner_socket) {
  c.owner_thread = new_owner;
  // Keep the netchan's sequencing state: the peer must see one
  // continuous stream across the migration.
  c.chan->rebind(owner_socket);
  // Force a snapshot carrying assigned_port even though the client may
  // have no request pending on the new owner (its moves may still be
  // going to the old port) — see the reply phase.
  c.notify_port = true;
}

bool ClientRegistry::reap_due() const {
  if (cfg_.client_timeout.ns <= 0) return false;
  const int64_t cutoff = platform_.now().ns - cfg_.client_timeout.ns;
  vt::LockGuard g(*mu_);
  for (const auto& c : slots_) {
    if (c.in_use && std::atomic_ref<const int64_t>(c.last_heard_ns)
                            .load(std::memory_order_relaxed) <= cutoff)
      return true;
  }
  return false;
}

void ClientRegistry::remember_evicted_locked(uint16_t port) {
  if (!cfg_.recovery.enabled || cfg_.recovery.remembered_evictions == 0)
    return;
  if (!remembered_set_.insert(port).second) return;
  remembered_evicted_.push_back(port);
  while (remembered_evicted_.size() > cfg_.recovery.remembered_evictions) {
    remembered_set_.erase(remembered_evicted_.front());
    remembered_evicted_.pop_front();
  }
}

bool ClientRegistry::consume_remembered_eviction(uint16_t port) {
  // Mirrors the pre-extraction gate exactly: with recovery off the lock
  // is never taken; with it on the lock is taken even when the memory is
  // empty (the lock acquisition sequence is part of replay determinism).
  if (!cfg_.recovery.enabled) return false;
  vt::LockGuard g(*mu_);
  return remembered_set_.erase(port) > 0;
}

std::vector<uint16_t> ClientRegistry::remembered_ports_locked() const {
  std::vector<uint16_t> out;
  for (const uint16_t p : remembered_evicted_) {
    if (remembered_set_.count(p) != 0) out.push_back(p);
  }
  return out;
}

void ClientRegistry::reset_run_counters() {
  counters.evictions = 0;
  counters.rejected_connects = 0;
  counters.rejected_busy = 0;
  counters.reassignments = 0;
  counters.stall_reassignments = 0;
  counters.governor_evictions = 0;
  counters.handoffs_out = 0;
  counters.handoffs_in = 0;
  // counters.resumed_clients deliberately survives (lifetime counter).
}

}  // namespace qserv::core
