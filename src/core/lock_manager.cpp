#include "src/core/lock_manager.hpp"

#include <algorithm>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/combat.hpp"
#include "src/sim/move.hpp"
#include "src/util/check.hpp"

namespace qserv::core {

LockManager::LockManager(vt::Platform& platform,
                         const spatial::AreanodeTree& tree,
                         const sim::CostModel& costs)
    : platform_(platform), tree_(tree), costs_(costs) {
  region_mu_.reserve(static_cast<size_t>(tree.leaf_count()));
  for (int i = 0; i < tree.leaf_count(); ++i)
    region_mu_.push_back(platform.make_mutex("region-leaf-" + std::to_string(i)));
  list_mu_.reserve(static_cast<size_t>(tree.node_count()));
  for (int i = 0; i < tree.node_count(); ++i)
    list_mu_.push_back(platform.make_mutex("list-node-" + std::to_string(i)));
  frame_thread_mask_.assign(static_cast<size_t>(tree.leaf_count()), 0);
  frame_lock_ops_.assign(static_cast<size_t>(tree.leaf_count()), 0);
  total_lock_ops_.assign(static_cast<size_t>(tree.leaf_count()), 0);
}

void LockManager::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    leaf_wait_us_ = nullptr;
    list_wait_us_ = nullptr;
    return;
  }
  // Microsecond-scale buckets: waits range from sub-microsecond lock ops
  // to multi-millisecond pile-ups near saturation.
  leaf_wait_us_ = &registry->histogram("lock.leaf_wait_us", 1e-2);
  list_wait_us_ = &registry->histogram("lock.list_wait_us", 1e-2);
}

LockManager::Region::~Region() {
  QSERV_CHECK_MSG(mgr_ == nullptr, "Region destroyed while locks held");
}

void LockManager::plan_request(LockPolicy policy, const sim::Entity& player,
                               const net::MoveCmd& cmd,
                               std::vector<std::vector<int>>& sets_out) const {
  // Reuse the caller's inner vectors (the exec phase passes a per-thread
  // scratch): claim the next slot, clear it, refill, and shrink the outer
  // vector to the sets actually planned at the end.
  size_t used = 0;
  auto next_set = [&]() -> std::vector<int>& {
    if (used == sets_out.size()) sets_out.emplace_back();
    std::vector<int>& s = sets_out[used++];
    s.clear();
    return s;
  };
  if (policy != LockPolicy::kNone) {
    // Short-range: the move's bounding box, "slightly larger than
    // necessary" (§4.3).
    tree_.leaves_for(sim::move_bounds(player, cmd), next_set());

    // Long-range: only when the command initiates one.
    const bool attacks = (cmd.buttons & net::kButtonAttack) != 0;
    const bool throws = (cmd.buttons & net::kButtonThrow) != 0;
    if (attacks || throws) {
      std::vector<int>& leaves = next_set();
      if (policy == LockPolicy::kConservative) {
        // Highly conservative: the entire map.
        for (int i = 0; i < tree_.node_count(); ++i)
          if (tree_.is_leaf(i)) leaves.push_back(i);
      } else if (attacks) {
        // Type-2 object (fully simulated now): directional bounding box
        // from the player to the world edge along the aim direction.
        const Vec3 dir = sim::aim_dir(player, cmd.pitch_deg);
        tree_.leaves_for(
            directional_bounds(player.bounds(), dir, tree_.world_bounds(),
                               sim::kDirectionalLockPad),
            leaves);
      } else {
        // Type-1 object (completed during world physics): expanded
        // bounding box covering the maximum request-time interaction
        // range.
        tree_.leaves_for(
            player.bounds().expanded(sim::kGrenadeRequestRange +
                                     sim::kDirectionalLockPad),
            leaves);
      }
    }
  }
  sets_out.resize(used);
}

void LockManager::acquire(const std::vector<std::vector<int>>& sets,
                          int thread_id, ThreadStats& stats, Region& out) {
  QSERV_CHECK_MSG(!out.held(), "Region already held");
  QSERV_CHECK(thread_id >= 0 && thread_id < 64);
  if (sets.empty()) return;

  // Union of all sets in canonical order; overlaps are re-locks. Both
  // region buffers are reused across acquisitions when the caller reuses
  // the Region object (the exec phase's per-thread arena does).
  std::vector<int>& requested = out.scratch_;
  requested.clear();
  for (const auto& s : sets) requested.insert(requested.end(), s.begin(), s.end());
  const uint64_t requests = requested.size();
  std::vector<int>& leaves = out.leaves_;
  leaves = requested;
  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  if (leaves.empty()) return;

  stats.locks.requests_locked += 1;
  stats.locks.lock_requests += requests;
  stats.locks.distinct_leaves += leaves.size();
  stats.locks.relocks += requests - leaves.size();

  // Everything from here — the region-determination/bookkeeping overhead
  // (§4.1: what the 1-thread parallel server pays over the sequential
  // one) plus actual waiting — is the paper's "lock" component.
  obs::TraceScope span(stats.tracer, stats.trace_track, "lock-leaf");
  const vt::TimePoint t0 = platform_.now();
  platform_.compute(costs_.lock_op * static_cast<int64_t>(requests));
  for (const int node : leaves) {
    const int ord = leaf_ordinal(node);
    region_mu_[static_cast<size_t>(ord)]->lock();
    // Stats below are written under this leaf's region mutex. Lock ops
    // count every request for the leaf, including re-locks.
    frame_thread_mask_[static_cast<size_t>(ord)] |= 1ull << thread_id;
    frame_lock_ops_[static_cast<size_t>(ord)] += static_cast<uint32_t>(
        std::count(requested.begin(), requested.end(), node));
  }
  const vt::Duration waited = platform_.now() - t0;
  stats.breakdown.lock_leaf += waited;
  if (leaf_wait_us_ != nullptr) leaf_wait_us_->observe(waited.micros());
  out.mgr_ = this;
}

void LockManager::release(Region& region) {
  if (!region.held()) return;
  for (auto it = region.leaves_.rbegin(); it != region.leaves_.rend(); ++it)
    region_mu_[static_cast<size_t>(leaf_ordinal(*it))]->unlock();
  region.leaves_.clear();
  region.mgr_ = nullptr;
}

void LockManager::ListLockContext::lock_list(int node_index) {
  auto& mgr = *mgr_;
  // Both the lock-op overhead and any waiting count as lock time.
  const vt::TimePoint t0 = mgr.platform_.now();
  mgr.platform_.compute(mgr.costs_.list_lock_op);
  mgr.list_mu_[static_cast<size_t>(node_index)]->lock();
  const vt::Duration waited = mgr.platform_.now() - t0;
  if (mgr.list_wait_us_ != nullptr) mgr.list_wait_us_->observe(waited.micros());
  ++stats_->locks.parent_list_locks;
  if (mgr.tree_.is_leaf(node_index)) {
    stats_->breakdown.lock_leaf += waited;
  } else {
    stats_->breakdown.lock_parent += waited;
  }
}

void LockManager::ListLockContext::unlock_list(int node_index) {
  mgr_->list_mu_[static_cast<size_t>(node_index)]->unlock();
}

void LockManager::frame_reset() {
  std::fill(frame_thread_mask_.begin(), frame_thread_mask_.end(), 0);
  std::fill(frame_lock_ops_.begin(), frame_lock_ops_.end(), 0);
}

void LockManager::frame_harvest(FrameLockStats& out) {
  int locked = 0, shared = 0;
  uint64_t ops = 0;
  for (size_t i = 0; i < frame_thread_mask_.size(); ++i) {
    const uint64_t mask = frame_thread_mask_[i];
    if (mask != 0) ++locked;
    if ((mask & (mask - 1)) != 0) ++shared;  // >= 2 bits set
    ops += frame_lock_ops_[i];
    total_lock_ops_[i] += frame_lock_ops_[i];
  }
  const double n = static_cast<double>(tree_.leaf_count());
  out.leaves_locked_pct.add(static_cast<double>(locked) / n);
  out.leaves_shared_pct.add(static_cast<double>(shared) / n);
  out.lock_ops_per_leaf.add(static_cast<double>(ops) / n);
  ++out.frames;
}

std::vector<LockManager::LeafContention> LockManager::contention_hotlist(
    int k) const {
  std::vector<LeafContention> all;
  for (size_t i = 0; i < region_mu_.size(); ++i) {
    const vt::Mutex& mu = *region_mu_[i];
    LeafContention c;
    c.leaf_ordinal = static_cast<int>(i);
    c.lock_ops = total_lock_ops_[i];
    c.acquisitions = mu.acquisitions();
    c.contended = mu.contended_acquisitions();
    c.wait = mu.total_wait();
    if (c.lock_ops == 0 && c.acquisitions == 0) continue;
    all.push_back(c);
  }
  std::sort(all.begin(), all.end(),
            [](const LeafContention& a, const LeafContention& b) {
              if (a.wait.ns != b.wait.ns) return a.wait.ns > b.wait.ns;
              return a.lock_ops > b.lock_ops;
            });
  if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

uint64_t LockManager::leaf_lock_ops(int leaf_ordinal) const {
  return total_lock_ops_[static_cast<size_t>(leaf_ordinal)];
}

vt::Duration LockManager::total_region_wait() const {
  vt::Duration d{};
  for (const auto& m : region_mu_) d += m->total_wait();
  return d;
}

vt::Duration LockManager::total_list_wait() const {
  vt::Duration d{};
  for (const auto& m : list_mu_) d += m->total_wait();
  return d;
}

}  // namespace qserv::core
