// The global state buffer (§3.3): game events produced during the world
// and request-processing phases, protected by a single lock, used to
// update every client's reply buffer, and cleared by the master at the
// end of each frame. Also the per-client reply message buffers (one lock
// each).
#pragma once

#include <memory>
#include <vector>

#include "src/net/protocol.hpp"
#include "src/sim/world.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::core {

// One frame's global events, sealed into an immutable shared block so N
// reply buffers can reference it with one refcount bump each instead of
// N element-wise copies. Null or empty means "no events this frame".
using SealedEvents = std::shared_ptr<const std::vector<net::GameEvent>>;

class GlobalStateBuffer : public sim::EventSink {
 public:
  explicit GlobalStateBuffer(vt::Platform& platform)
      : mu_(platform.make_mutex("global-state")) {}

  // All accesses are synchronized with the single lock (§3.3).
  void emit(const net::GameEvent& e) override {
    vt::LockGuard g(*mu_);
    events_.push_back(e);
  }

  std::vector<net::GameEvent> snapshot() const {
    vt::LockGuard g(*mu_);
    return events_;
  }

  // snapshot() into a caller-owned buffer: same single lock acquisition,
  // but the reply phase's per-frame copy reuses `out`'s capacity.
  void snapshot_into(std::vector<net::GameEvent>& out) const {
    vt::LockGuard g(*mu_);
    out.assign(events_.begin(), events_.end());
  }

  // Seals the current frame's events into an immutable shared block and
  // leaves the live buffer empty (the master's end-of-frame clear() then
  // finds nothing to do). Called once per frame at the flip into the
  // reply phase, single-threaded. Blocks are pooled: a pool entry whose
  // previous frame's readers have all let go (use_count()==1) is reused,
  // so steady state allocates nothing.
  SealedEvents seal_frame() {
    vt::LockGuard g(*mu_);
    std::shared_ptr<std::vector<net::GameEvent>>* slot = nullptr;
    for (auto& pooled : seal_pool_) {
      if (pooled.use_count() == 1) {  // last frame's readers all let go
        slot = &pooled;
        break;
      }
    }
    if (slot == nullptr) {
      seal_pool_.push_back(std::make_shared<std::vector<net::GameEvent>>());
      slot = &seal_pool_.back();
    }
    (*slot)->clear();
    (*slot)->swap(events_);  // events_ keeps the block's old capacity
    return *slot;            // converts to const; writers never touch it again
  }

  // Master-only, at frame end.
  void clear() {
    vt::LockGuard g(*mu_);
    events_.clear();
  }

  const vt::Mutex& mutex() const { return *mu_; }

 private:
  mutable std::unique_ptr<vt::Mutex> mu_;
  std::vector<net::GameEvent> events_;
  std::vector<std::shared_ptr<std::vector<net::GameEvent>>> seal_pool_;
};

// Per-client reply message buffer: events queued for a client while it is
// not being replied to, flushed into its next snapshot. One lock per
// buffer (§3.3).
class ReplyBuffer {
 public:
  explicit ReplyBuffer(vt::Platform& platform)
      : mu_(platform.make_mutex("reply-buffer")) {}

  void append(const std::vector<net::GameEvent>& events) {
    if (events.empty()) return;
    vt::LockGuard g(*mu_);
    buffered_.insert(buffered_.end(), events.begin(), events.end());
  }

  // Queues a sealed frame block by reference: one refcount bump instead
  // of copying the events, the point of GlobalStateBuffer::seal_frame().
  void append_block(const SealedEvents& block) {
    if (!block || block->empty()) return;
    vt::LockGuard g(*mu_);
    blocks_.push_back(block);
  }

  // Drains the buffer into `out` (the snapshot's event list). Blocks
  // first (they are older: a block frame precedes any append() that
  // lands afterwards), then the element-wise buffer, FIFO within each.
  void drain_into(std::vector<net::GameEvent>& out) {
    vt::LockGuard g(*mu_);
    for (const auto& b : blocks_) out.insert(out.end(), b->begin(), b->end());
    blocks_.clear();
    if (buffered_.empty()) return;
    out.insert(out.end(), buffered_.begin(), buffered_.end());
    buffered_.clear();
  }

  size_t size() const {
    vt::LockGuard g(*mu_);
    size_t n = buffered_.size();
    for (const auto& b : blocks_) n += b->size();
    return n;
  }

 private:
  mutable std::unique_ptr<vt::Mutex> mu_;
  std::vector<net::GameEvent> buffered_;
  std::vector<SealedEvents> blocks_;
};

}  // namespace qserv::core
