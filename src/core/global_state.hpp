// The global state buffer (§3.3): game events produced during the world
// and request-processing phases, protected by a single lock, used to
// update every client's reply buffer, and cleared by the master at the
// end of each frame. Also the per-client reply message buffers (one lock
// each).
#pragma once

#include <memory>
#include <vector>

#include "src/net/protocol.hpp"
#include "src/sim/world.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::core {

class GlobalStateBuffer : public sim::EventSink {
 public:
  explicit GlobalStateBuffer(vt::Platform& platform)
      : mu_(platform.make_mutex("global-state")) {}

  // All accesses are synchronized with the single lock (§3.3).
  void emit(const net::GameEvent& e) override {
    vt::LockGuard g(*mu_);
    events_.push_back(e);
  }

  std::vector<net::GameEvent> snapshot() const {
    vt::LockGuard g(*mu_);
    return events_;
  }

  // snapshot() into a caller-owned buffer: same single lock acquisition,
  // but the reply phase's per-frame copy reuses `out`'s capacity.
  void snapshot_into(std::vector<net::GameEvent>& out) const {
    vt::LockGuard g(*mu_);
    out.assign(events_.begin(), events_.end());
  }

  // Master-only, at frame end.
  void clear() {
    vt::LockGuard g(*mu_);
    events_.clear();
  }

  const vt::Mutex& mutex() const { return *mu_; }

 private:
  mutable std::unique_ptr<vt::Mutex> mu_;
  std::vector<net::GameEvent> events_;
};

// Per-client reply message buffer: events queued for a client while it is
// not being replied to, flushed into its next snapshot. One lock per
// buffer (§3.3).
class ReplyBuffer {
 public:
  explicit ReplyBuffer(vt::Platform& platform)
      : mu_(platform.make_mutex("reply-buffer")) {}

  void append(const std::vector<net::GameEvent>& events) {
    if (events.empty()) return;
    vt::LockGuard g(*mu_);
    buffered_.insert(buffered_.end(), events.begin(), events.end());
  }

  // Drains the buffer into `out` (the snapshot's event list).
  void drain_into(std::vector<net::GameEvent>& out) {
    vt::LockGuard g(*mu_);
    if (buffered_.empty()) return;
    out.insert(out.end(), buffered_.begin(), buffered_.end());
    buffered_.clear();
  }

  size_t size() const {
    vt::LockGuard g(*mu_);
    return buffered_.size();
  }

 private:
  mutable std::unique_ptr<vt::Mutex> mu_;
  std::vector<net::GameEvent> buffered_;
};

}  // namespace qserv::core
