#include "src/core/sequential_server.hpp"

#include "src/core/frame_pipeline.hpp"
#include "src/obs/trace.hpp"
#include "src/resilience/governor.hpp"

namespace qserv::core {

SequentialServer::SequentialServer(vt::Platform& platform,
                                   net::Transport& net,
                                   const spatial::GameMap& map,
                                   ServerConfig cfg)
    : Server(platform, net, map, [&] {
        cfg.threads = 1;
        // The sequential server takes no locks at all.
        cfg.lock_policy = LockPolicy::kNone;
        return cfg;
      }()) {}

void SequentialServer::start() {
  platform_.spawn("seq-server", vt::Domain::kServer, [this] { main_loop(); });
}

void SequentialServer::main_loop() {
  ThreadStats& st = stats_[0];
  active_workers_.fetch_add(1, std::memory_order_acq_rel);
  while (!stop_requested()) {
    // S: spin in select until a client request arrives.
    const vt::TimePoint idle0 = platform_.now();
    const bool ready =
        selectors_[0]->wait_until(platform_.now() + cfg_.select_timeout);
    const vt::TimePoint idle1 = platform_.now();
    st.breakdown.idle += idle1 - idle0;
    if (st.tracer != nullptr && st.tracer->enabled() && idle1.ns > idle0.ns)
      st.tracer->record(st.trace_track, "idle", idle0.ns, (idle1 - idle0).ns);
    if (!ready) {
      // No traffic woke us, but silent clients still age: reap them even
      // when no frames are running, or a lone stalled client would hold
      // its slot forever.
      if (reap_due()) {
        pipeline_->maintenance().reap_timed_out_clients(st);
        pipeline_->maintenance().run_invariant_check();
      }
      hooks_.idle_wait(0);
      continue;
    }
    platform_.compute(cfg_.costs.select_syscall);

    const uint64_t fid = pipeline_->advance_frame();
    ++st.frames_participated;
    const vt::TimePoint frame_start = platform_.now();

    // P: world physics.
    pipeline_->world_phase().run(st);

    // Rx/E: receive and process requests until the queue is empty.
    const int moves = pipeline_->receive().drain(0, st, /*use_locks=*/false);
    st.requests_per_frame.add(moves);
    if (frame_trace_enabled_ &&
        !governor().at_least(resilience::kShedDebugWork))
      record_frame_trace(st, fid, moves);

    // T/Tx: form and send replies to everyone who sent a request, and
    // buffer global updates for everyone else. prepare() seals the
    // frame's events (and builds the SoA view under the reply knobs).
    pipeline_->reply().prepare(0, st);
    pipeline_->reply().run(0, st, /*include_unowned=*/true,
                           /*participants_mask=*/1);

    // Frame end: the maintenance phase clears the global state buffer,
    // completes deferred lifecycle, reaps timed-out clients, runs the
    // subsystem master duties (governor step), seals the frame, audits,
    // and records the frame metrics/trace.
    pipeline_->maintenance().run_master_window(0, frame_start, moves, st,
                                               /*harvest_locks=*/false);
  }
  // Must stay the last statement touching `this`: once the count hits
  // zero a shard supervisor may destroy the engine (Shard::quiesced()).
  active_workers_.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace qserv::core
