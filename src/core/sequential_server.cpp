#include "src/core/sequential_server.hpp"

namespace qserv::core {

SequentialServer::SequentialServer(vt::Platform& platform,
                                   net::VirtualNetwork& net,
                                   const spatial::GameMap& map,
                                   ServerConfig cfg)
    : Server(platform, net, map, [&] {
        cfg.threads = 1;
        // The sequential server takes no locks at all.
        cfg.lock_policy = LockPolicy::kNone;
        return cfg;
      }()) {}

void SequentialServer::start() {
  platform_.spawn("seq-server", vt::Domain::kServer, [this] { main_loop(); });
}

void SequentialServer::main_loop() {
  ThreadStats& st = stats_[0];
  while (!stop_requested()) {
    // S: spin in select until a client request arrives.
    const vt::TimePoint idle0 = platform_.now();
    const bool ready =
        selectors_[0]->wait_until(platform_.now() + cfg_.select_timeout);
    st.breakdown.idle += platform_.now() - idle0;
    if (!ready) continue;
    platform_.compute(cfg_.costs.select_syscall);

    ++frames_;
    ++st.frames_participated;

    // P: world physics.
    do_world_phase(st);

    // Rx/E: receive and process requests until the queue is empty.
    const int moves = drain_requests(0, st, /*use_locks=*/false);
    st.requests_per_frame.add(moves);

    // T/Tx: form and send replies to everyone who sent a request, and
    // buffer global updates for everyone else.
    do_replies(0, st, /*include_unowned=*/true, /*participants_mask=*/1);

    // Frame end: clear the global state buffer.
    global_events_.clear();
  }
}

}  // namespace qserv::core
