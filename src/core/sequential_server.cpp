#include "src/core/sequential_server.hpp"

#include "src/obs/trace.hpp"

namespace qserv::core {

SequentialServer::SequentialServer(vt::Platform& platform,
                                   net::VirtualNetwork& net,
                                   const spatial::GameMap& map,
                                   ServerConfig cfg)
    : Server(platform, net, map, [&] {
        cfg.threads = 1;
        // The sequential server takes no locks at all.
        cfg.lock_policy = LockPolicy::kNone;
        return cfg;
      }()) {}

void SequentialServer::start() {
  platform_.spawn("seq-server", vt::Domain::kServer, [this] { main_loop(); });
}

void SequentialServer::main_loop() {
  ThreadStats& st = stats_[0];
  while (!stop_requested()) {
    // S: spin in select until a client request arrives.
    const vt::TimePoint idle0 = platform_.now();
    const bool ready =
        selectors_[0]->wait_until(platform_.now() + cfg_.select_timeout);
    const vt::TimePoint idle1 = platform_.now();
    st.breakdown.idle += idle1 - idle0;
    if (st.tracer != nullptr && st.tracer->enabled() && idle1.ns > idle0.ns)
      st.tracer->record(st.trace_track, "idle", idle0.ns, (idle1 - idle0).ns);
    if (!ready) {
      // No traffic woke us, but silent clients still age: reap them even
      // when no frames are running, or a lone stalled client would hold
      // its slot forever.
      if (reap_due()) {
        reap_timed_out_clients(st);
        run_invariant_check();
      }
      continue;
    }
    platform_.compute(cfg_.costs.select_syscall);

    ++frames_;
    ++st.frames_participated;
    const vt::TimePoint frame_start = platform_.now();

    // P: world physics.
    do_world_phase(st);

    // Rx/E: receive and process requests until the queue is empty.
    const int moves = drain_requests(0, st, /*use_locks=*/false);
    st.requests_per_frame.add(moves);
    if (frame_trace_enabled_ &&
        !governor_->at_least(resilience::kShedDebugWork))
      record_frame_trace(st, frames_, moves);

    // T/Tx: form and send replies to everyone who sent a request, and
    // buffer global updates for everyone else.
    do_replies(0, st, /*include_unowned=*/true, /*participants_mask=*/1);

    // Frame end: clear the global state buffer, reap timed-out clients,
    // feed the degradation governor, and (when enabled and not shed)
    // audit cross-structure consistency.
    global_events_.clear();
    complete_pending_lifecycle(st);
    reap_timed_out_clients(st);
    const int level = governor_frame_end(frame_start, st);
    recovery_frame_end();
    if (level < resilience::kShedDebugWork) run_invariant_check();
    record_frame_metrics(frame_start, moves);
    if (st.tracer != nullptr && st.tracer->enabled())
      st.tracer->record(st.trace_track, "frame", frame_start.ns,
                        platform_.now().ns - frame_start.ns,
                        static_cast<int64_t>(frames_));
  }
}

}  // namespace qserv::core
