// The multithreaded game server (§3): N worker threads, each with a
// private UDP port and a statically assigned block of players. Frames are
// orchestrated exactly as Figure 3 describes:
//
//   select -> [master election] -> P (master only) -> Rx/E -> barrier ->
//   T/Tx -> frame end signal
//
// The first thread to observe a request becomes the frame's master and
// runs the world update; threads exiting select during the world update
// join the frame; threads exiting later wait for the next frame (and are
// guaranteed to participate in it). The three phases never overlap and
// always run in order — the two §3 invariants.
#pragma once

#include "src/core/server.hpp"

namespace qserv::core {

class ParallelServer final : public Server {
 public:
  ParallelServer(vt::Platform& platform, net::Transport& net,
                 const spatial::GameMap& map, ServerConfig cfg);

  void start() override;
  int thread_count() const override { return cfg_.threads; }

  // §5.2 analysis: how often a frame's inter-frame wait was spent on the
  // world update vs. waiting for the previous frame to finish.
  vt::Duration total_inter_wait_world() const;
  vt::Duration total_inter_wait_frame() const;

 private:
  enum class FramePhase : uint8_t { kIdle, kWorld, kProcessing, kReply };

  void worker_loop(int tid);

  // RealPlatform safety net: a self-rescheduling timer that pokes every
  // selector when a heartbeat is stale, so an otherwise idle live worker
  // wakes and runs the maintenance frame that adjudicates the stall. The
  // timer only *detects* — all watchdog state changes happen in the
  // master window.
  void schedule_watchdog_timer();

  // Frame synchronization state, guarded by sync_mu_.
  struct FrameSync {
    FramePhase phase = FramePhase::kIdle;
    uint64_t frame_id = 0;
    int master = -1;
    int participants = 0;
    uint64_t participants_mask = 0;
    int done_processing = 0;
    int done_reply = 0;
    int frame_moves = 0;        // moves executed by all participants
    vt::TimePoint frame_start{};  // master election time (frame metrics)
  };

  std::unique_ptr<vt::Mutex> sync_mu_;
  std::unique_ptr<vt::CondVar> sync_cv_;
  FrameSync sync_;
};

}  // namespace qserv::core
