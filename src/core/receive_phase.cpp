// Rx: socket drain, netchan framing, and request dispatch. Moves run
// inline through the exec phase; connects and disconnects mutate only
// session state here — their world-entity effects are deferred to the
// maintenance window.
#include "src/core/frame_pipeline.hpp"

#include <algorithm>
#include <atomic>

#include "src/recovery/journal.hpp"
#include "src/resilience/governor.hpp"
#include "src/obs/trace.hpp"

namespace qserv::core {

int ReceivePhase::drain(int tid, ThreadStats& st, bool use_locks) {
  PipelineContext& ctx = pipe_.ctx_;
  net::Datagram d;
  int moves = 0;
  while (ctx.sockets[static_cast<size_t>(tid)]->try_recv(d)) {
    // Flood/oversize clamp: no legitimate client message approaches this
    // size, so drop before spending any parse work on it.
    if (ctx.cfg.resilience.max_packet_bytes > 0 &&
        d.payload.size() > ctx.cfg.resilience.max_packet_bytes) {
      ++st.packets_oversized;
      ctx.hooks.drop(tid, d.src_port, recovery::DropReason::kOversized);
      continue;
    }
    // --- receive + parse ---
    const vt::TimePoint t0 = ctx.platform.now();
    ctx.platform.compute(ctx.cfg.costs.recv_parse);
    ClientSlot* client = ctx.registry.by_port(d.src_port);
    // Traffic for a slot owned by another thread. Only the owner thread
    // may touch the netchan — accept() here would race with the owner
    // draining the live port — so such datagrams are framed manually
    // (header strip, no channel state) and, with one exception, dropped.
    const bool cross_thread = client != nullptr && client->owner_thread != tid;

    net::NetChannel::Incoming info;
    net::ByteReader body(nullptr, 0);
    bool framed = false;
    if (client != nullptr && client->chan != nullptr && !cross_thread) {
      framed = client->chan->accept(d, info, body);
    } else {
      // Unknown peer (or non-owner thread): strip the channel header
      // manually; only a connect is acceptable.
      if (d.payload.size() > 8) {
        body = net::ByteReader(d.payload.data() + 8, d.payload.size() - 8);
        framed = true;
      }
    }
    net::ClientMsgType type{};
    const bool parsed = framed && net::decode_client_type(body, type);
    const vt::TimePoint t1 = ctx.platform.now();
    st.breakdown.receive += t1 - t0;
    if (st.tracer != nullptr && st.tracer->enabled())
      st.tracer->record(st.trace_track, "receive", t0.ns, (t1 - t0).ns);

    if (cross_thread && !(parsed && type == net::ClientMsgType::kConnect &&
                          client->awaiting_resume)) {
      // Stale-port traffic: the client was migrated (region reassignment
      // or stall recovery) but has not learned its new port yet. Refresh
      // liveness (the client must not be reaped mid-migration) and drop;
      // the forced snapshot in the reply phase carries the new port. The
      // one exception above: after a warm restart, a restored slot owned
      // by another thread reconnects through the base port — its slot is
      // dormant (no owner-thread traffic until resumed), so the connect
      // may safely proceed to handle_connect, which re-checks under the
      // clients lock.
      std::atomic_ref<int64_t>(client->last_heard_ns)
          .store(ctx.platform.now().ns, std::memory_order_relaxed);
      ctx.hooks.drop(tid, d.src_port, recovery::DropReason::kStalePort);
      continue;
    }
    if (!parsed) {
      ctx.hooks.drop(tid, d.src_port, recovery::DropReason::kMalformed);
      continue;
    }
    // Any well-formed traffic proves liveness, even stale duplicates.
    if (client != nullptr)
      std::atomic_ref<int64_t>(client->last_heard_ns)
          .store(ctx.platform.now().ns, std::memory_order_relaxed);
    if (client != nullptr && info.duplicate_or_old &&
        type == net::ClientMsgType::kMove) {
      ctx.hooks.drop(tid, d.src_port, recovery::DropReason::kDuplicate);
      continue;  // stale or duplicated move
    }

    switch (type) {
      case net::ClientMsgType::kConnect: {
        net::ConnectMsg msg;
        if (decode(body, msg)) handle_connect(tid, d, msg, st);
        break;
      }
      case net::ClientMsgType::kMove: {
        if (client == nullptr) {
          // A remembered evicted port gets one explicit kEvicted answer
          // (it may have been evicted by a previous incarnation of this
          // server and never learned); anyone else is silence.
          if (ctx.registry.consume_remembered_eviction(d.src_port)) {
            ctx.platform.compute(ctx.cfg.costs.send_syscall);
            net::NetChannel reject(*ctx.sockets[static_cast<size_t>(tid)],
                                   d.src_port);
            reject.send(
                net::encode(net::RejectMsg{net::RejectReason::kEvicted}));
            ctx.hooks.drop(tid, d.src_port,
                           recovery::DropReason::kEvictedPort);
          } else {
            ctx.hooks.drop(tid, d.src_port, recovery::DropReason::kUnknown);
          }
          break;
        }
        if (client->pending_spawn || client->pending_disconnect) {
          // No entity to move yet (or no longer): the spawn/removal is
          // waiting for the master window.
          ctx.hooks.drop(tid, d.src_port,
                         recovery::DropReason::kConnectPending);
          break;
        }
        // Backpressure: over-budget movers lose the excess moves here,
        // before any execution cost. Safe under the netchan resend model
        // — full state is retransmitted every snapshot.
        if (!client->bucket.try_take(ctx.platform.now().ns)) {
          ++st.moves_rate_limited;
          ctx.hooks.drop(tid, d.src_port,
                         recovery::DropReason::kRateLimited);
          break;
        }
        net::MoveCmd cmd;
        if (decode(body, cmd)) {
          if (ctx.governor->at_least(resilience::kCoalesceMoves) &&
              client->pending_reply) {
            // Governor rung 2: a client that already executed a move this
            // frame gets the rest of its backlog folded into the ack —
            // sequence and echo advance, execution cost is not paid.
            client->last_seq = std::max(client->last_seq, cmd.sequence);
            client->last_move_time_ns = cmd.client_time_ns;
            client->client_baseline_frame =
                std::max(client->client_baseline_frame, cmd.baseline_frame);
            ++st.moves_coalesced;
            ctx.hooks.drop(tid, d.src_port,
                           recovery::DropReason::kCoalesced);
          } else {
            pipe_.exec_.run(tid, *client, cmd, st, use_locks);
            ++moves;
          }
        }
        break;
      }
      case net::ClientMsgType::kDisconnect:
        if (client != nullptr) handle_disconnect(*client, st);
        break;
    }
  }
  return moves;
}

void ReceivePhase::handle_connect(int tid, const net::Datagram& d,
                                  const net::ConnectMsg& msg,
                                  ThreadStats& st) {
  PipelineContext& ctx = pipe_.ctx_;
  ClientRegistry& reg = ctx.registry;
  int slot = -1;
  bool busy = false;
  bool ack_now = false;  // slot already owns a live entity: ack directly
  {
    vt::LockGuard g(reg.mutex());
    const int existing = reg.index_of_port_locked(d.src_port);
    if (existing >= 0) {
      slot = existing;
      ClientSlot& c = reg.slot(slot);
      if (c.pending_spawn) {
        // Connect retry racing its own deferred spawn; the ack follows
        // the master window.
        ctx.hooks.drop(tid, d.src_port,
                       recovery::DropReason::kConnectPending);
        return;
      }
      if (c.awaiting_resume) {
        // Warm restart, same port: the peer reset its channel for this
        // connect, so resume with a fresh one (the restored sequencing
        // only serves peers that never noticed the restart).
        reg.resume_slot_locked(
            c, *ctx.sockets[static_cast<size_t>(c.owner_thread)]);
        ++reg.counters.resumed_clients;
        ctx.hooks.drop(tid, d.src_port, recovery::DropReason::kResumed);
        ctx.hooks.client_resumed(d.src_port);
      } else {
        ctx.hooks.drop(tid, d.src_port, recovery::DropReason::kReconnectDup);
      }
      ack_now = true;
    } else if (reg.restored()) {
      // Warm restart, fresh port: a checkpointed client that noticed the
      // outage reconnects from a new socket; re-adopt its slot by name.
      auto& slots = reg.slots();
      for (int i = 0; i < static_cast<int>(slots.size()); ++i) {
        ClientSlot& c = slots[static_cast<size_t>(i)];
        if (c.in_use && c.awaiting_resume && c.name == msg.name) {
          reg.unbind_port_locked(c.remote_port);
          c.remote_port = d.src_port;
          reg.bind_port_locked(d.src_port, i);
          reg.resume_slot_locked(
              c, *ctx.sockets[static_cast<size_t>(c.owner_thread)]);
          ++reg.counters.resumed_clients;
          ctx.hooks.drop(tid, d.src_port, recovery::DropReason::kResumed);
          ctx.hooks.client_resumed(d.src_port);
          slot = i;
          ack_now = true;
          break;
        }
      }
    }
    if (slot < 0 && !busy) {
      if ((ctx.cfg.resilience.admission_control &&
           ctx.governor->admission_overloaded()) ||
          ctx.governor->draining()) {
        // Admission control: the frame loop is already past its budget,
        // so serving the admitted population well beats admitting one
        // more player it cannot simulate. kServerBusy tells the client to
        // back off and retry, unlike the terminal kServerFull. A draining
        // server (hot restart in progress) answers the same way
        // unconditionally — "retry later" is literally true, since the
        // next generation will be serving these ports momentarily.
        busy = true;
        ++reg.counters.rejected_busy;
      } else {
        slot = reg.find_free_locked();
        if (slot < 0) ++reg.counters.rejected_connects;  // rejected below
      }
    }
    if (slot >= 0 && !reg.slot(slot).in_use) {
      // Fresh slot: record identity and defer the entity spawn (and the
      // ack) to the master's between-frames window, where creation is
      // single-threaded and takes a serialization index.
      reg.init_pending_slot_locked(slot, d.src_port, tid, msg.name);
      ++st.connects;
      ctx.hooks.drop(tid, d.src_port, recovery::DropReason::kConnectPending);
    }
  }

  if (busy || slot < 0) {
    // Explicit reject: kServerFull stops the client's connect-retry loop
    // outright (the seed silently dropped the datagram, Quake-style, so
    // a refused client hammered the port forever); kServerBusy invites a
    // backed-off retry once load recedes.
    ctx.platform.compute(ctx.cfg.costs.send_syscall);
    net::NetChannel reject(*ctx.sockets[static_cast<size_t>(tid)],
                           d.src_port);
    reject.send(net::encode(net::RejectMsg{
        busy ? net::RejectReason::kServerBusy
             : net::RejectReason::kServerFull}));
    ctx.hooks.drop(tid, d.src_port,
                   busy ? recovery::DropReason::kRejectedBusy
                        : recovery::DropReason::kRejectedFull);
    return;
  }
  if (!ack_now) return;  // deferred: the master window sends the ack

  ClientSlot& c = reg.slot(slot);
  const sim::Entity* player = ctx.world.get(c.entity_id);
  net::ConnectAck ack;
  ack.player_id = c.entity_id;
  ack.server_frame = static_cast<uint32_t>(pipe_.frames_);
  ack.assigned_port =
      static_cast<uint16_t>(ctx.cfg.base_port + c.owner_thread);
  if (player != nullptr) ack.spawn_origin = player->origin;
  ctx.platform.compute(ctx.cfg.costs.send_syscall);
  c.chan->send(net::encode(ack));
}

void ReceivePhase::handle_disconnect(ClientSlot& client, ThreadStats& st) {
  (void)st;
  PipelineContext& ctx = pipe_.ctx_;
  vt::LockGuard g(ctx.registry.mutex());
  if (!client.in_use) return;
  if (client.pending_spawn) {
    // The connect never reached the master window: no entity, no channel
    // — just free the slot.
    ctx.registry.unbind_port_locked(client.remote_port);
    client.in_use = false;
    client.pending_spawn = false;
    return;
  }
  // Entity removal is deferred to the master's between-frames window —
  // the same single-threaded point as every other lifecycle mutation —
  // so destruction never races another worker's gather and replays in
  // serialization order. The disconnect datagram itself woke a frame, so
  // that window runs before this drain's frame ends.
  client.pending_disconnect = true;
}

}  // namespace qserv::core
