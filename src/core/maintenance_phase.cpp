// The master's single-threaded between-frames window: deferred client
// lifecycle, timeout reaping, stall migration, governor eviction, the
// cross-structure audit, and the hook dispatch points that let recovery /
// resilience / observability ride the frame without touching the engine.
#include "src/core/frame_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <string>

#include "src/core/invariant_checker.hpp"
#include "src/obs/trace.hpp"
#include "src/resilience/governor.hpp"
#include "src/resilience/watchdog.hpp"

namespace qserv::core {

void MaintenancePhase::run_master_window(int tid, vt::TimePoint frame_start,
                                         int frame_moves, ThreadStats& st,
                                         bool harvest_locks) {
  PipelineContext& ctx = pipe_.ctx_;
  ctx.global_events.clear();
  if (harvest_locks) ctx.lock_manager.frame_harvest(ctx.frame_lock_stats);
  // Deferred lifecycle first: pending connects spawn their entities (and
  // get their acks) and pending disconnects remove theirs, each with a
  // serialization index, before any other master duty can observe a
  // half-created client.
  complete_pending_lifecycle(st);
  reap_timed_out_clients(st);
  // Subsystem master duties (resilience: watchdog adjudication with stall
  // migration, then the governor step — possibly serving its eviction
  // rung through the engine facade).
  ctx.hooks.master_window(tid, frame_start, st);
  const int level = ctx.governor->level();
  // Seal after every mutation of the frame (including hook-driven
  // evictions) so the recovery hook's digest and journal cover the final
  // state; the audit runs after the seal so a violation dump carries this
  // frame.
  ctx.hooks.frame_sealed();
  if (level < resilience::kShedDebugWork) run_invariant_check();
  ctx.hooks.frame_end(frame_start, frame_moves, st);
  // Whole-frame span on the master's track (frame start to frame end);
  // phase spans nest inside it by time containment. The frame counter is
  // stable here: no new frame opens while this window runs.
  if (st.tracer != nullptr && st.tracer->enabled())
    st.tracer->record(st.trace_track, "frame", frame_start.ns,
                      ctx.platform.now().ns - frame_start.ns,
                      static_cast<int64_t>(pipe_.frames_));
}

void MaintenancePhase::complete_pending_lifecycle(ThreadStats& st) {
  (void)st;
  PipelineContext& ctx = pipe_.ctx_;
  ClientRegistry& reg = ctx.registry;
  vt::LockGuard g(reg.mutex());
  const int64_t now_ns = ctx.platform.now().ns;
  for (auto& c : reg.slots()) {
    if (!c.in_use) continue;
    if (c.pending_disconnect) {
      ctx.hooks.client_disconnected(c.owner_thread, c.remote_port,
                                    c.entity_id, now_ns);
      if (ctx.world.get(c.entity_id) != nullptr)
        ctx.world.remove_entity(c.entity_id);
      reg.unbind_port_locked(c.remote_port);
      c.in_use = false;
      c.pending_disconnect = false;
      c.chan.reset();
      c.buffer.reset();
      c.history.clear();
      continue;
    }
    if (!c.pending_spawn) continue;
    // Deferred connect: spawn here, where entity creation is
    // single-threaded, then send the ack the drain phase withheld.
    sim::Entity& player = ctx.world.spawn_player(c.name);
    c.entity_id = player.id;
    const int owner = ctx.cfg.assign_policy == AssignPolicy::kRegion
                          ? owner_for_region(player.origin)
                          : c.connect_tid;
    c.owner_thread = owner;
    c.chan = std::make_unique<net::NetChannel>(
        *ctx.sockets[static_cast<size_t>(owner)], c.remote_port);
    c.buffer = std::make_unique<ReplyBuffer>(ctx.platform);
    c.pending_spawn = false;
    ctx.hooks.client_spawned(owner, c.remote_port, player.id, c.name,
                             now_ns);
    net::ConnectAck ack;
    ack.player_id = player.id;
    ack.server_frame = static_cast<uint32_t>(pipe_.frames_);
    ack.assigned_port = static_cast<uint16_t>(ctx.cfg.base_port + owner);
    ack.spawn_origin = player.origin;
    ctx.platform.compute(ctx.cfg.costs.send_syscall);
    c.chan->send(net::encode(ack));
  }
}

void MaintenancePhase::evict_client_locked(ClientSlot& c,
                                           net::RejectReason reason,
                                           ThreadStats& st) {
  PipelineContext& ctx = pipe_.ctx_;
  // Reject-first, teardown-second: the reason must leave on the client's
  // still-live channel before any state is dropped, so even an eviction
  // the peer never asked for arrives as an explicit verdict rather than
  // sudden silence (best effort; a crashed client never reads it, exactly
  // like QuakeWorld's timeout drop message).
  if (c.chan != nullptr) {
    ctx.platform.compute(ctx.cfg.costs.send_syscall);
    c.chan->send(net::encode(net::RejectMsg{reason}));
  }
  if (!c.pending_spawn)
    ctx.hooks.client_evicted(c.owner_thread, c.remote_port, c.entity_id);
  LockManager::ListLockContext lists(ctx.lock_manager, st);
  if (!c.pending_spawn && ctx.world.get(c.entity_id) != nullptr)
    ctx.world.remove_entity(c.entity_id,
                            ctx.cfg.threads > 1 ? &lists : nullptr);
  ctx.registry.remember_evicted_locked(c.remote_port);
  ctx.registry.unbind_port_locked(c.remote_port);
  ctx.registry.release_slot_locked(c);
}

int MaintenancePhase::reap_timed_out_clients(ThreadStats& st) {
  PipelineContext& ctx = pipe_.ctx_;
  if (ctx.cfg.client_timeout.ns <= 0) return 0;
  const int64_t cutoff = ctx.platform.now().ns - ctx.cfg.client_timeout.ns;
  int evicted = 0;
  vt::LockGuard g(ctx.registry.mutex());
  for (auto& c : ctx.registry.slots()) {
    if (!c.in_use || c.pending_spawn ||
        std::atomic_ref<int64_t>(c.last_heard_ns)
                .load(std::memory_order_relaxed) > cutoff)
      continue;
    evict_client_locked(c, net::RejectReason::kEvicted, st);
    ++evicted;
    ++ctx.registry.counters.evictions;
  }
  return evicted;
}

int MaintenancePhase::evict_most_expensive(ThreadStats& st) {
  PipelineContext& ctx = pipe_.ctx_;
  vt::LockGuard g(ctx.registry.mutex());
  ClientSlot* worst = nullptr;
  for (auto& c : ctx.registry.slots()) {
    if (!c.in_use || c.pending_spawn || c.pending_disconnect) continue;
    if (worst == nullptr || c.moves_since_scan > worst->moves_since_scan)
      worst = &c;
  }
  int evicted = 0;
  // moves_since_scan == 0 means nobody cost anything since the last scan;
  // evicting an idle client would free no frame time.
  if (worst != nullptr && worst->moves_since_scan > 0) {
    evict_client_locked(*worst, net::RejectReason::kServerBusy, st);
    ++ctx.registry.counters.governor_evictions;
    evicted = 1;
  }
  for (auto& c : ctx.registry.slots()) c.moves_since_scan = 0;
  return evicted;
}

int MaintenancePhase::owner_for_region(const Vec3& origin) const {
  PipelineContext& ctx = pipe_.ctx_;
  std::vector<int> leaves;
  ctx.world.tree().leaves_for({origin, origin}, leaves);
  const int ord =
      leaves.empty() ? 0 : ctx.world.tree().leaf_ordinal(leaves.front());
  return std::clamp(ord * ctx.cfg.threads / ctx.world.tree().leaf_count(), 0,
                    ctx.cfg.threads - 1);
}

int MaintenancePhase::reassign_clients() {
  PipelineContext& ctx = pipe_.ctx_;
  int moved = 0;
  vt::LockGuard g(ctx.registry.mutex());
  for (auto& c : ctx.registry.slots()) {
    if (!c.in_use || c.pending_spawn) continue;
    const sim::Entity* player = ctx.world.get(c.entity_id);
    if (player == nullptr) continue;
    const int owner = owner_for_region(player->origin);
    if (owner == c.owner_thread) continue;
    const int from = c.owner_thread;
    ctx.registry.migrate_slot_locked(
        c, owner, *ctx.sockets[static_cast<size_t>(owner)]);
    ctx.hooks.client_migrated(from, owner, c.remote_port);
    ++moved;
    ++ctx.registry.counters.reassignments;
  }
  return moved;
}

int MaintenancePhase::reassign_clients_from(int stalled_tid,
                                            ThreadStats& st) {
  (void)st;
  PipelineContext& ctx = pipe_.ctx_;
  std::vector<int> live;
  for (int t = 0; t < ctx.cfg.threads; ++t) {
    if (t == stalled_tid) continue;
    if (ctx.watchdog != nullptr && ctx.watchdog->is_stalled(t)) continue;
    live.push_back(t);
  }
  if (live.empty()) return 0;
  int moved = 0;
  vt::LockGuard g(ctx.registry.mutex());
  for (auto& c : ctx.registry.slots()) {
    if (!c.in_use || c.pending_spawn || c.owner_thread != stalled_tid)
      continue;
    const int owner = live[static_cast<size_t>(moved) % live.size()];
    ctx.registry.migrate_slot_locked(
        c, owner, *ctx.sockets[static_cast<size_t>(owner)]);
    ctx.hooks.client_migrated(stalled_tid, owner, c.remote_port);
    ++moved;
    ++ctx.registry.counters.stall_reassignments;
  }
  return moved;
}

void MaintenancePhase::run_invariant_check() {
  PipelineContext& ctx = pipe_.ctx_;
  if (ctx.invariants == nullptr) return;
  const int violations = ctx.invariants->run();
  if (violations > 0 && ctx.cfg.recovery.enabled &&
      ctx.cfg.recovery.dump_on_invariant_violation) {
    std::string why = "invariant violations: " + std::to_string(violations);
    if (!ctx.invariants->messages().empty())
      why += "\nlast: " + ctx.invariants->messages().back();
    ctx.engine->dump_blackbox("invariant", why);
  }
}

}  // namespace qserv::core
