#include "src/core/frame_pipeline.hpp"

#include <algorithm>

#include "src/obs/trace.hpp"

namespace qserv::core {

FramePipeline::FramePipeline(const PipelineContext& ctx) : ctx_(ctx) {
  arenas_.reserve(static_cast<size_t>(ctx_.cfg.threads));
  for (int i = 0; i < ctx_.cfg.threads; ++i)
    arenas_.push_back(std::make_unique<FrameArena>());
}

void FramePipeline::restore(uint64_t frame, uint64_t next_order) {
  frames_ = frame;
  order_ctr_.store(next_order, std::memory_order_relaxed);
  last_world_ = ctx_.platform.now();
}

void WorldPhase::run(ThreadStats& st) {
  PipelineContext& ctx = pipe_.ctx_;
  obs::TraceScope span(st.tracer, st.trace_track, "world",
                       static_cast<int64_t>(pipe_.frames_));
  const vt::TimePoint t0 = ctx.platform.now();
  vt::Duration dt = t0 - pipe_.last_world_;
  // Clamp: the first frame (and long idle gaps) must not produce a huge
  // physics step.
  dt.ns = std::clamp<int64_t>(dt.ns, 0, vt::millis(100).ns);
  pipe_.last_world_ = t0;
  pipe_.last_world_t0_ = t0;
  pipe_.last_world_dt_ = dt;
  // The tick is a journaled, serialization-indexed mutation (the recovery
  // hook draws the index), so replay interleaves it correctly with
  // lifecycle ops applied between frames.
  ctx.hooks.world_tick(static_cast<int>(&st - ctx.stats.data()), t0, dt);
  ctx.world.world_phase(t0, dt, ctx.global_events);
  st.breakdown.world += ctx.platform.now() - t0;
}

}  // namespace qserv::core
