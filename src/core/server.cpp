#include "src/core/server.hpp"

#include <algorithm>
#include <atomic>

#include "src/core/invariant_checker.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/recovery/blackbox.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/recovery/digest.hpp"
#include "src/recovery/journal.hpp"
#include "src/sim/move.hpp"
#include "src/sim/snapshot.hpp"
#include "src/util/check.hpp"

namespace qserv::core {

const char* lock_policy_name(LockPolicy p) {
  switch (p) {
    case LockPolicy::kNone: return "none";
    case LockPolicy::kConservative: return "conservative";
    case LockPolicy::kOptimized: return "optimized";
  }
  return "?";
}

const char* assign_policy_name(AssignPolicy p) {
  switch (p) {
    case AssignPolicy::kBlock: return "block";
    case AssignPolicy::kRegion: return "region";
  }
  return "?";
}

Server::Server(vt::Platform& platform, net::VirtualNetwork& net,
               const spatial::GameMap& map, ServerConfig cfg)
    : platform_(platform),
      net_(net),
      cfg_(cfg),
      world_(map, sim::World::Config{cfg.areanode_depth, cfg.seed}, &platform,
             cfg.costs),
      global_events_(platform),
      clients_mu_(platform.make_mutex("clients")) {
  QSERV_CHECK(cfg.threads >= 1 && cfg.threads <= 64);
  lock_manager_ =
      std::make_unique<LockManager>(platform, world_.tree(), cfg.costs);
  // Always built: even with the ladder off it maintains the rolling p95
  // that connect-time admission control reads.
  governor_ = std::make_unique<resilience::FrameGovernor>(cfg.resilience);
  // Entity storage must never reallocate or change size once clients
  // join: concurrent readers hold references and call get() during
  // request processing, so connect-time spawns may only pop free slots.
  world_.reserve_entities(world_.active_entities() +
                          static_cast<size_t>(cfg.max_clients) + 256);
  clients_.resize(static_cast<size_t>(cfg.max_clients));
  if (cfg.check_invariants)
    invariants_ = std::make_unique<InvariantChecker>(*this);
  const int n = cfg.threads;
  stats_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    sockets_.push_back(net.open(static_cast<uint16_t>(cfg.base_port + i)));
    selectors_.push_back(std::make_unique<net::Selector>(platform));
    selectors_.back()->add(*sockets_.back());
  }
  if (cfg.recovery.enabled) {
    map_text_ = map.serialize();
    recorder_ = std::make_unique<recovery::FlightRecorder>(
        cfg.recovery, static_cast<uint32_t>(cfg.threads), cfg.seed);
    checkpoints_ = std::make_unique<recovery::CheckpointManager>();
    blackbox_ = std::make_unique<recovery::BlackBox>(cfg.recovery.dump_dir);
    if (cfg.recovery.install_signal_handler) {
      recovery::install_signal_dumper(
          (cfg.recovery.dump_dir.empty() ? std::string(".")
                                         : cfg.recovery.dump_dir) +
          "/qserv-crash.qckpt");
    }
  }
}

Server::~Server() {
  // The signal handler holds a raw pointer into the checkpoint buffers;
  // disarm it before they die.
  if (cfg_.recovery.enabled && cfg_.recovery.install_signal_handler)
    recovery::publish_signal_dump(nullptr, 0);
}

void Server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& sel : selectors_) sel->poke();
}

uint16_t Server::port_for_client(int ordinal, int expected_players) const {
  // Static block assignment (§3.1): the first expected/T players go to
  // thread 0, the next block to thread 1, and so on.
  const int t = std::clamp(ordinal * cfg_.threads / std::max(1, expected_players),
                           0, cfg_.threads - 1);
  return static_cast<uint16_t>(cfg_.base_port + t);
}

Breakdown Server::total_breakdown() const {
  Breakdown b;
  for (const auto& s : stats_) b += s.breakdown;
  return b;
}

LockStats Server::total_lock_stats() const {
  LockStats l;
  for (const auto& s : stats_) l += s.locks;
  return l;
}

uint64_t Server::total_replies() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.replies_sent;
  return n;
}

uint64_t Server::total_requests() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.requests_processed;
  return n;
}

uint64_t Server::total_moves_rate_limited() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.moves_rate_limited;
  return n;
}

uint64_t Server::total_packets_oversized() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.packets_oversized;
  return n;
}

uint64_t Server::total_moves_coalesced() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.moves_coalesced;
  return n;
}

void Server::reset_stats() {
  for (auto& s : stats_) s.reset();
  frame_lock_stats_.reset();
}

uint64_t Server::frame_trace_dropped() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.frame_trace_dropped;
  return n;
}

Server::NetchanTotals Server::netchan_totals() const {
  NetchanTotals t;
  for (const auto& c : clients_) {
    if (!c.in_use || c.chan == nullptr) continue;
    t.packets_sent += c.chan->packets_sent();
    t.packets_accepted += c.chan->packets_accepted();
    t.drops_detected += c.chan->drops_detected();
    t.duplicates_rejected += c.chan->duplicates_rejected();
  }
  return t;
}

void Server::attach_observability(obs::Tracer* tracer,
                                  obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  // Rebind unconditionally: span timestamps must come from *this* server's
  // platform clock, and a tracer reused across runs would otherwise keep a
  // pointer to a destroyed platform.
  if (tracer != nullptr) tracer->bind(platform_);
  for (size_t i = 0; i < stats_.size(); ++i) {
    stats_[i].tracer = tracer;
    stats_[i].trace_track =
        tracer != nullptr
            ? tracer->make_track("server-thread-" + std::to_string(i))
            : -1;
  }
  lock_manager_->set_metrics(metrics);
  if (metrics != nullptr) {
    frame_duration_ms_ = &metrics->histogram("server.frame_duration_ms", 1e-3);
    moves_per_frame_ = &metrics->histogram("server.moves_per_frame", 0.5);
  } else {
    frame_duration_ms_ = nullptr;
    moves_per_frame_ = nullptr;
  }
}

void Server::record_frame_metrics(vt::TimePoint start, int moves) {
  if (frame_duration_ms_ == nullptr) return;
  frame_duration_ms_->observe((platform_.now() - start).millis());
  moves_per_frame_->observe(static_cast<double>(moves));
}

void Server::record_frame_trace(ThreadStats& st, uint64_t frame_id,
                                int moves) {
  if (st.frame_trace.size() <
      static_cast<size_t>(std::max(0, cfg_.frame_trace_limit))) {
    st.frame_trace.emplace_back(frame_id, moves);
  } else {
    ++st.frame_trace_dropped;
  }
}

int Server::connected_clients() const {
  int n = 0;
  for (const auto& c : clients_) n += c.in_use ? 1 : 0;
  return n;
}

Server::Client* Server::client_by_port(uint16_t port) {
  vt::LockGuard g(*clients_mu_);
  const auto it = client_slot_by_port_.find(port);
  return it == client_slot_by_port_.end()
             ? nullptr
             : &clients_[static_cast<size_t>(it->second)];
}

void Server::do_world_phase(ThreadStats& st) {
  obs::TraceScope span(st.tracer, st.trace_track, "world",
                       static_cast<int64_t>(frames_));
  const vt::TimePoint t0 = platform_.now();
  vt::Duration dt = t0 - last_world_;
  // Clamp: the first frame (and long idle gaps) must not produce a huge
  // physics step.
  dt.ns = std::clamp<int64_t>(dt.ns, 0, vt::millis(100).ns);
  last_world_ = t0;
  last_world_t0_ = t0;
  last_world_dt_ = dt;
  if (recorder_ != nullptr) {
    // The tick itself is a journaled, serialization-indexed mutation, so
    // replay interleaves it correctly with lifecycle ops applied between
    // frames (the sequential server's idle-path reap).
    recovery::JournalRecord rec;
    rec.kind = recovery::RecordKind::kWorldPhase;
    rec.thread = static_cast<uint8_t>(&st - stats_.data());
    rec.order = order_ctr_.fetch_add(1, std::memory_order_relaxed);
    rec.t_ns = t0.ns;
    rec.dt_ns = dt.ns;
    recorder_->record(rec.thread, rec);
  }
  world_.world_phase(t0, dt, global_events_);
  st.breakdown.world += platform_.now() - t0;
}

int Server::drain_requests(int tid, ThreadStats& st, bool use_locks) {
  net::Datagram d;
  int moves = 0;
  while (sockets_[static_cast<size_t>(tid)]->try_recv(d)) {
    // Flood/oversize clamp: no legitimate client message approaches this
    // size, so drop before spending any parse work on it.
    if (cfg_.resilience.max_packet_bytes > 0 &&
        d.payload.size() > cfg_.resilience.max_packet_bytes) {
      ++st.packets_oversized;
      journal_drop(tid, d.src_port, recovery::DropReason::kOversized);
      continue;
    }
    // --- receive + parse ---
    const vt::TimePoint t0 = platform_.now();
    platform_.compute(cfg_.costs.recv_parse);
    Client* client = client_by_port(d.src_port);
    // Traffic for a slot owned by another thread. Only the owner thread
    // may touch the netchan — accept() here would race with the owner
    // draining the live port — so such datagrams are framed manually
    // (header strip, no channel state) and, with one exception, dropped.
    const bool cross_thread = client != nullptr && client->owner_thread != tid;

    net::NetChannel::Incoming info;
    net::ByteReader body(nullptr, 0);
    bool framed = false;
    if (client != nullptr && client->chan != nullptr && !cross_thread) {
      framed = client->chan->accept(d, info, body);
    } else {
      // Unknown peer (or non-owner thread): strip the channel header
      // manually; only a connect is acceptable.
      if (d.payload.size() > 8) {
        body = net::ByteReader(d.payload.data() + 8, d.payload.size() - 8);
        framed = true;
      }
    }
    net::ClientMsgType type{};
    const bool parsed = framed && net::decode_client_type(body, type);
    const vt::TimePoint t1 = platform_.now();
    st.breakdown.receive += t1 - t0;
    if (st.tracer != nullptr && st.tracer->enabled())
      st.tracer->record(st.trace_track, "receive", t0.ns, (t1 - t0).ns);

    if (cross_thread && !(parsed && type == net::ClientMsgType::kConnect &&
                          client->awaiting_resume)) {
      // Stale-port traffic: the client was migrated (region reassignment
      // or stall recovery) but has not learned its new port yet. Refresh
      // liveness (the client must not be reaped mid-migration) and drop;
      // the forced snapshot in do_replies carries the new port. The one
      // exception above: after a warm restart, a restored slot owned by
      // another thread reconnects through the base port — its slot is
      // dormant (no owner-thread traffic until resumed), so the connect
      // may safely proceed to handle_connect, which re-checks under the
      // clients lock.
      std::atomic_ref<int64_t>(client->last_heard_ns)
          .store(platform_.now().ns, std::memory_order_relaxed);
      journal_drop(tid, d.src_port, recovery::DropReason::kStalePort);
      continue;
    }
    if (!parsed) {
      journal_drop(tid, d.src_port, recovery::DropReason::kMalformed);
      continue;
    }
    // Any well-formed traffic proves liveness, even stale duplicates.
    if (client != nullptr)
      std::atomic_ref<int64_t>(client->last_heard_ns)
          .store(platform_.now().ns, std::memory_order_relaxed);
    if (client != nullptr && info.duplicate_or_old &&
        type == net::ClientMsgType::kMove) {
      journal_drop(tid, d.src_port, recovery::DropReason::kDuplicate);
      continue;  // stale or duplicated move
    }

    switch (type) {
      case net::ClientMsgType::kConnect: {
        net::ConnectMsg msg;
        if (decode(body, msg)) handle_connect(tid, d, msg, st);
        break;
      }
      case net::ClientMsgType::kMove: {
        if (client == nullptr) {
          // A remembered evicted port gets one explicit kEvicted answer
          // (it may have been evicted by a previous incarnation of this
          // server and never learned); anyone else is silence.
          if (consume_remembered_eviction(d.src_port)) {
            platform_.compute(cfg_.costs.send_syscall);
            net::NetChannel reject(*sockets_[static_cast<size_t>(tid)],
                                   d.src_port);
            reject.send(
                net::encode(net::RejectMsg{net::RejectReason::kEvicted}));
            journal_drop(tid, d.src_port, recovery::DropReason::kEvictedPort);
          } else {
            journal_drop(tid, d.src_port, recovery::DropReason::kUnknown);
          }
          break;
        }
        if (client->pending_spawn || client->pending_disconnect) {
          // No entity to move yet (or no longer): the spawn/removal is
          // waiting for the master window.
          journal_drop(tid, d.src_port, recovery::DropReason::kConnectPending);
          break;
        }
        // Backpressure: over-budget movers lose the excess moves here,
        // before any execution cost. Safe under the netchan resend model
        // — full state is retransmitted every snapshot.
        if (!client->bucket.try_take(platform_.now().ns)) {
          ++st.moves_rate_limited;
          journal_drop(tid, d.src_port, recovery::DropReason::kRateLimited);
          break;
        }
        net::MoveCmd cmd;
        if (decode(body, cmd)) {
          if (governor_->at_least(resilience::kCoalesceMoves) &&
              client->pending_reply) {
            // Governor rung 2: a client that already executed a move this
            // frame gets the rest of its backlog folded into the ack —
            // sequence and echo advance, execution cost is not paid.
            client->last_seq = std::max(client->last_seq, cmd.sequence);
            client->last_move_time_ns = cmd.client_time_ns;
            client->client_baseline_frame =
                std::max(client->client_baseline_frame, cmd.baseline_frame);
            ++st.moves_coalesced;
            journal_drop(tid, d.src_port, recovery::DropReason::kCoalesced);
          } else {
            handle_move(tid, *client, cmd, st, use_locks);
            ++moves;
          }
        }
        break;
      }
      case net::ClientMsgType::kDisconnect:
        if (client != nullptr) handle_disconnect(*client, st);
        break;
    }
  }
  return moves;
}

void Server::handle_connect(int tid, const net::Datagram& d,
                            const net::ConnectMsg& msg, ThreadStats& st) {
  int slot = -1;
  bool busy = false;
  bool ack_now = false;  // slot already owns a live entity: ack directly
  {
    vt::LockGuard g(*clients_mu_);
    const auto it = client_slot_by_port_.find(d.src_port);
    if (it != client_slot_by_port_.end()) {
      slot = it->second;
      Client& c = clients_[static_cast<size_t>(slot)];
      if (c.pending_spawn) {
        // Connect retry racing its own deferred spawn; the ack follows
        // the master window.
        journal_drop(tid, d.src_port, recovery::DropReason::kConnectPending);
        return;
      }
      if (c.awaiting_resume) {
        // Warm restart, same port: the peer reset its channel for this
        // connect, so resume with a fresh one (the restored sequencing
        // only serves peers that never noticed the restart).
        resume_client_locked(c);
        ++resumed_clients_;
        journal_drop(tid, d.src_port, recovery::DropReason::kResumed);
      } else {
        journal_drop(tid, d.src_port, recovery::DropReason::kReconnectDup);
      }
      ack_now = true;
    } else if (restored_) {
      // Warm restart, fresh port: a checkpointed client that noticed the
      // outage reconnects from a new socket; re-adopt its slot by name.
      for (int i = 0; i < static_cast<int>(clients_.size()); ++i) {
        Client& c = clients_[static_cast<size_t>(i)];
        if (c.in_use && c.awaiting_resume && c.name == msg.name) {
          client_slot_by_port_.erase(c.remote_port);
          c.remote_port = d.src_port;
          client_slot_by_port_[d.src_port] = i;
          resume_client_locked(c);
          ++resumed_clients_;
          journal_drop(tid, d.src_port, recovery::DropReason::kResumed);
          slot = i;
          ack_now = true;
          break;
        }
      }
    }
    if (slot < 0 && !busy) {
      if (cfg_.resilience.admission_control &&
          governor_->admission_overloaded()) {
        // Admission control: the frame loop is already past its budget,
        // so serving the admitted population well beats admitting one
        // more player it cannot simulate. kServerBusy tells the client to
        // back off and retry, unlike the terminal kServerFull.
        busy = true;
        ++rejected_busy_;
      } else {
        for (int i = 0; i < static_cast<int>(clients_.size()); ++i) {
          if (!clients_[static_cast<size_t>(i)].in_use) {
            slot = i;
            break;
          }
        }
        if (slot < 0) ++rejected_connects_;  // rejected explicitly below
      }
    }
    if (slot >= 0 && !clients_[static_cast<size_t>(slot)].in_use) {
      // Fresh slot: record identity and defer the entity spawn (and the
      // ack) to the master's between-frames window, where creation is
      // single-threaded and takes a serialization index.
      client_slot_by_port_[d.src_port] = slot;
      Client& c = clients_[static_cast<size_t>(slot)];
      c.in_use = true;
      c.pending_spawn = true;
      c.pending_disconnect = false;
      c.awaiting_resume = false;
      c.connect_tid = tid;
      c.owner_thread = tid;  // provisional until the spawn picks the owner
      c.entity_id = 0;
      c.remote_port = d.src_port;
      c.name = msg.name;
      c.pending_reply = false;
      c.notify_port = false;
      c.last_seq = 0;
      c.last_move_time_ns = 0;
      std::atomic_ref<int64_t>(c.last_heard_ns)
          .store(platform_.now().ns, std::memory_order_relaxed);
      // A reused slot must not inherit the previous occupant's delta
      // baselines — the new client has reconstructed nothing.
      c.history.clear();
      c.client_baseline_frame = 0;
      c.bucket.configure(cfg_.resilience.move_rate_limit,
                         cfg_.resilience.move_burst);
      c.moves_since_scan = 0;
      c.chan.reset();
      c.buffer.reset();
      ++st.connects;
      journal_drop(tid, d.src_port, recovery::DropReason::kConnectPending);
    }
  }

  if (busy || slot < 0) {
    // Explicit reject: kServerFull stops the client's connect-retry loop
    // outright (the seed silently dropped the datagram, Quake-style, so
    // a refused client hammered the port forever); kServerBusy invites a
    // backed-off retry once load recedes.
    platform_.compute(cfg_.costs.send_syscall);
    net::NetChannel reject(*sockets_[static_cast<size_t>(tid)], d.src_port);
    reject.send(net::encode(net::RejectMsg{
        busy ? net::RejectReason::kServerBusy
             : net::RejectReason::kServerFull}));
    journal_drop(tid, d.src_port,
                 busy ? recovery::DropReason::kRejectedBusy
                      : recovery::DropReason::kRejectedFull);
    return;
  }
  if (!ack_now) return;  // deferred: the master window sends the ack

  Client& c = clients_[static_cast<size_t>(slot)];
  const sim::Entity* player = world_.get(c.entity_id);
  net::ConnectAck ack;
  ack.player_id = c.entity_id;
  ack.server_frame = static_cast<uint32_t>(frames_);
  ack.assigned_port =
      static_cast<uint16_t>(cfg_.base_port + c.owner_thread);
  if (player != nullptr) ack.spawn_origin = player->origin;
  platform_.compute(cfg_.costs.send_syscall);
  c.chan->send(net::encode(ack));
}

void Server::resume_client_locked(Client& c) {
  c.awaiting_resume = false;
  c.pending_reply = false;
  c.notify_port = true;  // re-teach the owner port in the next snapshot
  c.last_seq = 0;        // the reconnected peer restarts its sequences
  c.last_move_time_ns = 0;
  c.history.clear();
  c.client_baseline_frame = 0;
  c.chan = std::make_unique<net::NetChannel>(
      *sockets_[static_cast<size_t>(c.owner_thread)], c.remote_port);
  c.buffer = std::make_unique<ReplyBuffer>(platform_);
  std::atomic_ref<int64_t>(c.last_heard_ns)
      .store(platform_.now().ns, std::memory_order_relaxed);
  c.bucket.configure(cfg_.resilience.move_rate_limit,
                     cfg_.resilience.move_burst);
  c.moves_since_scan = 0;
}

void Server::handle_move(int tid, Client& client, const net::MoveCmd& cmd,
                         ThreadStats& st, bool use_locks) {
  sim::Entity* player = world_.get(client.entity_id);
  if (player == nullptr) return;

  const bool lock = use_locks && cfg_.lock_policy != LockPolicy::kNone;
  LockManager::Region region;
  if (lock) {
    std::vector<std::vector<int>> sets;
    lock_manager_->plan_request(cfg_.lock_policy, *player, cmd, sets);
    lock_manager_->acquire(sets, tid, st, region);
  }
  // Serialization index, drawn *after* the region locks: two conflicting
  // moves' indexes order exactly as their executions did, so replay
  // applies them in the same order the live run did.
  const uint64_t order = order_ctr_.fetch_add(1, std::memory_order_relaxed);

  // Execution time excludes any list-lock waiting incurred inside (that
  // is attributed to the lock components by the ListLockContext).
  LockManager::ListLockContext ctx(*lock_manager_, st);
  const vt::Duration lock_before =
      st.breakdown.lock_leaf + st.breakdown.lock_parent;
  obs::TraceScope span(st.tracer, st.trace_track, "exec");
  const vt::TimePoint t0 = platform_.now();
  sim::execute_move(world_, *player, cmd, t0, lock ? &ctx : nullptr,
                    &global_events_, order);
  const vt::Duration elapsed = platform_.now() - t0;
  const vt::Duration lock_delta =
      st.breakdown.lock_leaf + st.breakdown.lock_parent - lock_before;
  st.breakdown.exec += elapsed - lock_delta;

  if (lock) lock_manager_->release(region);

  if (recorder_ != nullptr) {
    recovery::JournalRecord rec;
    rec.kind = recovery::RecordKind::kMoveExec;
    rec.thread = static_cast<uint8_t>(tid);
    rec.port = client.remote_port;
    rec.entity = player->id;
    rec.order = order;
    rec.t_ns = t0.ns;
    rec.cmd = cmd;
    recorder_->record(static_cast<uint32_t>(tid), rec);
  }

  client.pending_reply = true;
  client.last_seq = std::max(client.last_seq, cmd.sequence);
  client.last_move_time_ns = cmd.client_time_ns;
  client.client_baseline_frame =
      std::max(client.client_baseline_frame, cmd.baseline_frame);
  ++client.moves_since_scan;
  ++st.requests_processed;
}

void Server::handle_disconnect(Client& client, ThreadStats& st) {
  (void)st;
  vt::LockGuard g(*clients_mu_);
  if (!client.in_use) return;
  if (client.pending_spawn) {
    // The connect never reached the master window: no entity, no channel
    // — just free the slot.
    client_slot_by_port_.erase(client.remote_port);
    client.in_use = false;
    client.pending_spawn = false;
    return;
  }
  // Entity removal is deferred to the master's between-frames window —
  // the same single-threaded point as every other lifecycle mutation —
  // so destruction never races another worker's gather and replays in
  // serialization order. The disconnect datagram itself woke a frame, so
  // that window runs before this drain's frame ends.
  client.pending_disconnect = true;
}

bool Server::reap_due() const {
  if (cfg_.client_timeout.ns <= 0) return false;
  const int64_t cutoff = platform_.now().ns - cfg_.client_timeout.ns;
  vt::LockGuard g(*clients_mu_);
  for (const auto& c : clients_) {
    if (c.in_use && std::atomic_ref<const int64_t>(c.last_heard_ns)
                            .load(std::memory_order_relaxed) <= cutoff)
      return true;
  }
  return false;
}

void Server::evict_client_locked(Client& c, net::RejectReason reason,
                                 ThreadStats& st) {
  // Reject-first, teardown-second: the reason must leave on the client's
  // still-live channel before any state is dropped, so even an eviction
  // the peer never asked for arrives as an explicit verdict rather than
  // sudden silence (best effort; a crashed client never reads it, exactly
  // like QuakeWorld's timeout drop message).
  if (c.chan != nullptr) {
    platform_.compute(cfg_.costs.send_syscall);
    c.chan->send(net::encode(net::RejectMsg{reason}));
  }
  if (recorder_ != nullptr && !c.pending_spawn) {
    recovery::JournalRecord rec;
    rec.kind = recovery::RecordKind::kEvict;
    rec.thread = static_cast<uint8_t>(c.owner_thread);
    rec.port = c.remote_port;
    rec.entity = c.entity_id;
    rec.order = order_ctr_.fetch_add(1, std::memory_order_relaxed);
    rec.t_ns = platform_.now().ns;
    recorder_->record(static_cast<uint32_t>(c.owner_thread), rec);
  }
  LockManager::ListLockContext ctx(*lock_manager_, st);
  if (!c.pending_spawn && world_.get(c.entity_id) != nullptr)
    world_.remove_entity(c.entity_id, cfg_.threads > 1 ? &ctx : nullptr);
  remember_evicted(c.remote_port);
  client_slot_by_port_.erase(c.remote_port);
  c.in_use = false;
  c.chan.reset();
  c.buffer.reset();
  c.history.clear();
  c.client_baseline_frame = 0;
  c.pending_reply = false;
  c.notify_port = false;
  c.pending_spawn = false;
  c.pending_disconnect = false;
  c.awaiting_resume = false;
}

int Server::reap_timed_out_clients(ThreadStats& st) {
  if (cfg_.client_timeout.ns <= 0) return 0;
  const int64_t cutoff = platform_.now().ns - cfg_.client_timeout.ns;
  int evicted = 0;
  vt::LockGuard g(*clients_mu_);
  for (auto& c : clients_) {
    if (!c.in_use || c.pending_spawn ||
        std::atomic_ref<int64_t>(c.last_heard_ns)
                .load(std::memory_order_relaxed) > cutoff)
      continue;
    evict_client_locked(c, net::RejectReason::kEvicted, st);
    ++evicted;
    ++evictions_;
  }
  return evicted;
}

int Server::evict_most_expensive(ThreadStats& st) {
  vt::LockGuard g(*clients_mu_);
  Client* worst = nullptr;
  for (auto& c : clients_) {
    if (!c.in_use || c.pending_spawn || c.pending_disconnect) continue;
    if (worst == nullptr || c.moves_since_scan > worst->moves_since_scan)
      worst = &c;
  }
  int evicted = 0;
  // moves_since_scan == 0 means nobody cost anything since the last scan;
  // evicting an idle client would free no frame time.
  if (worst != nullptr && worst->moves_since_scan > 0) {
    evict_client_locked(*worst, net::RejectReason::kServerBusy, st);
    ++governor_evictions_;
    evicted = 1;
  }
  for (auto& c : clients_) c.moves_since_scan = 0;
  return evicted;
}

int Server::reassign_clients_from(int stalled_tid, ThreadStats& st) {
  (void)st;
  std::vector<int> live;
  for (int t = 0; t < cfg_.threads; ++t) {
    if (t == stalled_tid) continue;
    if (watchdog_ != nullptr && watchdog_->is_stalled(t)) continue;
    live.push_back(t);
  }
  if (live.empty()) return 0;
  int moved = 0;
  vt::LockGuard g(*clients_mu_);
  for (auto& c : clients_) {
    if (!c.in_use || c.pending_spawn || c.owner_thread != stalled_tid)
      continue;
    const int owner = live[static_cast<size_t>(moved) % live.size()];
    c.owner_thread = owner;
    // Keep the netchan's sequencing state: the peer must see one
    // continuous stream across the migration.
    c.chan->rebind(*sockets_[static_cast<size_t>(owner)]);
    // Force a snapshot carrying assigned_port even though the client has
    // no request pending on the new owner (its moves are still going to
    // the stalled thread's dead port) — see do_replies.
    c.notify_port = true;
    ++moved;
    ++stall_reassignments_;
  }
  return moved;
}

bool Server::watchdog_due(int self_tid) const {
  return watchdog_ != nullptr &&
         watchdog_->check_due(platform_.now(), self_tid);
}

int Server::governor_frame_end(vt::TimePoint frame_start, ThreadStats& st) {
  const int before = governor_->level();
  const int level = governor_->on_frame(platform_.now() - frame_start);
  if (level != before && st.tracer != nullptr && st.tracer->enabled())
    st.tracer->record(st.trace_track, "degrade-step", platform_.now().ns, 0,
                      level);
  if (level >= resilience::kEvictExpensive &&
      platform_.now() >= next_expensive_evict_) {
    evict_most_expensive(st);
    next_expensive_evict_ = platform_.now() + cfg_.resilience.evict_interval;
  }
  return level;
}

void Server::run_invariant_check() {
  if (invariants_ == nullptr) return;
  const int violations = invariants_->run();
  if (violations > 0 && blackbox_ != nullptr &&
      cfg_.recovery.dump_on_invariant_violation) {
    std::string why = "invariant violations: " + std::to_string(violations);
    if (!invariants_->messages().empty())
      why += "\nlast: " + invariants_->messages().back();
    dump_blackbox("invariant", why);
  }
}

uint64_t Server::invariant_violations() const {
  return invariants_ == nullptr ? 0 : invariants_->total_violations();
}

// --- crash recovery ---------------------------------------------------------

void Server::journal_drop(int tid, uint16_t port, recovery::DropReason why) {
  if (recorder_ == nullptr) return;
  recovery::JournalRecord rec;
  rec.kind = recovery::RecordKind::kDropped;
  rec.drop = why;
  rec.thread = static_cast<uint8_t>(tid);
  rec.port = port;
  rec.t_ns = platform_.now().ns;
  recorder_->record(static_cast<uint32_t>(tid), rec);
}

void Server::remember_evicted(uint16_t port) {
  if (recorder_ == nullptr || cfg_.recovery.remembered_evictions == 0) return;
  if (!remembered_evicted_set_.insert(port).second) return;
  remembered_evicted_.push_back(port);
  while (remembered_evicted_.size() > cfg_.recovery.remembered_evictions) {
    remembered_evicted_set_.erase(remembered_evicted_.front());
    remembered_evicted_.pop_front();
  }
}

bool Server::consume_remembered_eviction(uint16_t port) {
  if (recorder_ == nullptr) return false;
  vt::LockGuard g(*clients_mu_);
  // Consume-once: each remembered port is answered a single kEvicted, so
  // a straggler streaming moves cannot turn the memory into a reject storm.
  return remembered_evicted_set_.erase(port) > 0;
}

void Server::complete_pending_lifecycle(ThreadStats& st) {
  (void)st;
  vt::LockGuard g(*clients_mu_);
  const int64_t now_ns = platform_.now().ns;
  for (auto& c : clients_) {
    if (!c.in_use) continue;
    if (c.pending_disconnect) {
      if (recorder_ != nullptr) {
        recovery::JournalRecord rec;
        rec.kind = recovery::RecordKind::kDisconnect;
        rec.thread = static_cast<uint8_t>(c.owner_thread);
        rec.port = c.remote_port;
        rec.entity = c.entity_id;
        rec.order = order_ctr_.fetch_add(1, std::memory_order_relaxed);
        rec.t_ns = now_ns;
        recorder_->record(static_cast<uint32_t>(c.owner_thread), rec);
      }
      if (world_.get(c.entity_id) != nullptr)
        world_.remove_entity(c.entity_id);
      client_slot_by_port_.erase(c.remote_port);
      c.in_use = false;
      c.pending_disconnect = false;
      c.chan.reset();
      c.buffer.reset();
      c.history.clear();
      continue;
    }
    if (!c.pending_spawn) continue;
    // Deferred connect: spawn here, where entity creation is
    // single-threaded, then send the ack the drain phase withheld.
    sim::Entity& player = world_.spawn_player(c.name);
    c.entity_id = player.id;
    const int owner = cfg_.assign_policy == AssignPolicy::kRegion
                          ? owner_for_region(player.origin)
                          : c.connect_tid;
    c.owner_thread = owner;
    c.chan = std::make_unique<net::NetChannel>(
        *sockets_[static_cast<size_t>(owner)], c.remote_port);
    c.buffer = std::make_unique<ReplyBuffer>(platform_);
    c.pending_spawn = false;
    if (recorder_ != nullptr) {
      recovery::JournalRecord rec;
      rec.kind = recovery::RecordKind::kConnectSpawn;
      rec.thread = static_cast<uint8_t>(owner);
      rec.port = c.remote_port;
      rec.entity = player.id;
      rec.order = order_ctr_.fetch_add(1, std::memory_order_relaxed);
      rec.t_ns = now_ns;
      rec.name = c.name;
      recorder_->record(static_cast<uint32_t>(owner), rec);
    }
    net::ConnectAck ack;
    ack.player_id = player.id;
    ack.server_frame = static_cast<uint32_t>(frames_);
    ack.assigned_port = static_cast<uint16_t>(cfg_.base_port + owner);
    ack.spawn_origin = player.origin;
    platform_.compute(cfg_.costs.send_syscall);
    c.chan->send(net::encode(ack));
  }
}

void Server::recovery_frame_end() {
  if (recorder_ == nullptr) return;
  std::vector<recovery::EntityDigest> per_entity;
  const uint64_t digest = recovery::world_digest(
      world_, cfg_.recovery.per_entity_digests ? &per_entity : nullptr);
  recorder_->seal_frame(frames_, last_world_t0_, last_world_dt_, digest,
                        std::move(per_entity));
  if (checkpoints_ != nullptr && cfg_.recovery.checkpoint_interval > 0 &&
      frames_ % cfg_.recovery.checkpoint_interval == 0) {
    checkpoints_->store(make_checkpoint(digest));
    if (cfg_.recovery.install_signal_handler)
      recovery::publish_signal_dump(checkpoints_->latest().data(),
                                    checkpoints_->latest().size());
  }
}

recovery::CheckpointData Server::make_checkpoint(uint64_t digest) {
  recovery::CheckpointData c;
  c.frame = frames_;
  c.captured_at_ns = platform_.now().ns;
  c.seed = cfg_.seed;
  c.base_port = cfg_.base_port;
  c.threads = static_cast<uint32_t>(cfg_.threads);
  c.max_clients = static_cast<uint32_t>(cfg_.max_clients);
  c.areanode_depth = cfg_.areanode_depth;
  c.next_order = order_ctr_.load(std::memory_order_relaxed);
  c.digest = digest;
  c.rng_state = world_.rng().state();
  c.map_text = map_text_;
  c.entity_storage = static_cast<uint32_t>(world_.entity_storage_size());
  const sim::World& w = world_;
  w.for_each_entity(
      [&](const sim::Entity& e) { c.entities.push_back(e); });
  c.free_ids = world_.free_ids();
  const auto& tree = world_.tree();
  for (int i = 0; i < tree.node_count(); ++i) {
    if (!tree.node(i).objects.empty())
      c.node_objects.emplace_back(i, tree.node(i).objects);
  }
  vt::LockGuard g(*clients_mu_);
  for (size_t i = 0; i < clients_.size(); ++i) {
    const Client& cl = clients_[i];
    if (!cl.in_use || cl.pending_spawn) continue;
    recovery::ClientRecord r;
    r.slot = static_cast<uint16_t>(i);
    r.remote_port = cl.remote_port;
    r.name = cl.name;
    r.entity_id = cl.entity_id;
    r.owner_thread = static_cast<uint32_t>(cl.owner_thread);
    r.last_seq = cl.last_seq;
    r.last_move_time_ns = cl.last_move_time_ns;
    r.last_heard_ns = std::atomic_ref<const int64_t>(cl.last_heard_ns)
                          .load(std::memory_order_relaxed);
    if (cl.chan != nullptr) {
      r.chan_out_seq = cl.chan->out_sequence();
      r.chan_in_seq = cl.chan->in_sequence();
      r.chan_in_acked = cl.chan->peer_acked();
    }
    c.clients.push_back(std::move(r));
  }
  for (const uint16_t p : remembered_evicted_) {
    if (remembered_evicted_set_.count(p) != 0) c.evicted_ports.push_back(p);
  }
  return c;
}

recovery::LoadError Server::restore_from(const std::vector<uint8_t>& image) {
  recovery::CheckpointData c;
  const recovery::LoadError err = recovery::decode_checkpoint(image, c);
  if (err != recovery::LoadError::kNone) return err;

  world_.reserve_entities(c.entity_storage);
  recovery::restore_world(c, world_);
  // Map checkpoint-time onto restart-time: every absolute-time entity
  // field shifts by the same delta, so cooldowns, respawns and projectile
  // expiries keep their remaining durations.
  world_.rebase_times(platform_.now() - vt::TimePoint{c.captured_at_ns});

  frames_ = c.frame;
  order_ctr_.store(c.next_order, std::memory_order_relaxed);
  last_world_ = platform_.now();

  vt::LockGuard g(*clients_mu_);
  for (const auto& r : c.clients) {
    if (r.slot >= clients_.size()) continue;
    Client& cl = clients_[r.slot];
    cl.in_use = true;
    cl.entity_id = r.entity_id;
    cl.remote_port = r.remote_port;
    cl.name = r.name;
    cl.owner_thread =
        std::clamp(static_cast<int>(r.owner_thread), 0, cfg_.threads - 1);
    cl.connect_tid = cl.owner_thread;
    // Stay silent until the peer makes contact. A peer that never
    // noticed the restart keeps sending moves on the restored channel
    // sequences and gets its reply then; a peer that noticed has reset
    // its channel and reconnects (resume swaps in a fresh channel).
    // Pushing a snapshot through the restored channel now would poison a
    // reset peer: it would accept the checkpointed (high) sequence and
    // then discard the fresh resume channel's low sequences as
    // duplicates.
    cl.notify_port = false;
    cl.last_seq = r.last_seq;
    cl.last_move_time_ns = r.last_move_time_ns;
    std::atomic_ref<int64_t>(cl.last_heard_ns)
        .store(platform_.now().ns, std::memory_order_relaxed);
    cl.pending_reply = false;
    cl.pending_spawn = false;
    cl.pending_disconnect = false;
    cl.awaiting_resume = true;
    cl.chan = std::make_unique<net::NetChannel>(
        *sockets_[static_cast<size_t>(cl.owner_thread)], r.remote_port);
    cl.chan->restore_state(r.chan_out_seq, r.chan_in_seq, r.chan_in_acked);
    cl.buffer = std::make_unique<ReplyBuffer>(platform_);
    cl.history.clear();
    cl.client_baseline_frame = 0;  // forces a full snapshot
    cl.bucket.configure(cfg_.resilience.move_rate_limit,
                        cfg_.resilience.move_burst);
    cl.moves_since_scan = 0;
    client_slot_by_port_[r.remote_port] = static_cast<int>(r.slot);
  }
  for (const uint16_t p : c.evicted_ports) remember_evicted(p);
  restored_ = true;
  return recovery::LoadError::kNone;
}

std::string Server::dump_blackbox(const std::string& label,
                                  const std::string& why) {
  if (blackbox_ == nullptr) return "";
  std::string meta;
  meta += "label: " + label + "\n";
  meta += "why: " + why + "\n";
  meta += "frame: " + std::to_string(frames_) + "\n";
  meta += "now_ns: " + std::to_string(platform_.now().ns) + "\n";
  meta += "seed: " + std::to_string(cfg_.seed) + "\n";
  meta += "threads: " + std::to_string(cfg_.threads) + "\n";
  meta += "clients: " + std::to_string(connected_clients()) + "\n";
  std::vector<uint8_t> ckpt;
  if (checkpoints_ != nullptr && checkpoints_->has())
    ckpt = checkpoints_->latest();
  std::vector<uint8_t> jrnl;
  if (recorder_ != nullptr) jrnl = recorder_->encode();
  // The trace is only exported where no other thread can be mid-record:
  // the simulated platform is single-threaded under the hood, and a
  // 1-thread real server has no concurrent writers in its own window.
  std::string trace;
  if (tracer_ != nullptr && (platform_.is_simulated() || cfg_.threads == 1))
    trace = tracer_->export_chrome_trace();
  return blackbox_->dump(label, meta, ckpt, jrnl, trace);
}

int Server::owner_for_region(const Vec3& origin) const {
  std::vector<int> leaves;
  world_.tree().leaves_for({origin, origin}, leaves);
  const int ord =
      leaves.empty() ? 0 : world_.tree().leaf_ordinal(leaves.front());
  return std::clamp(ord * cfg_.threads / world_.tree().leaf_count(), 0,
                    cfg_.threads - 1);
}

int Server::reassign_clients() {
  int moved = 0;
  vt::LockGuard g(*clients_mu_);
  for (auto& c : clients_) {
    if (!c.in_use || c.pending_spawn) continue;
    const sim::Entity* player = world_.get(c.entity_id);
    if (player == nullptr) continue;
    const int owner = owner_for_region(player->origin);
    if (owner == c.owner_thread) continue;
    c.owner_thread = owner;
    // Keep the netchan's sequencing state: the peer must see one
    // continuous stream across the migration.
    c.chan->rebind(*sockets_[static_cast<size_t>(owner)]);
    c.notify_port = true;
    ++moved;
    ++reassignments_;
  }
  return moved;
}

void Server::do_replies(int tid, ThreadStats& st, bool include_unowned,
                        uint64_t participants_mask) {
  obs::TraceScope span(st.tracer, st.trace_track, "reply");
  const vt::TimePoint t0 = platform_.now();
  const std::vector<net::GameEvent> frame_events = global_events_.snapshot();
  const bool thin_far = governor_->at_least(resilience::kThinFarEntities);

  for (auto& c : clients_) {
    if (!c.in_use || c.pending_spawn || c.pending_disconnect) continue;
    const bool owned = c.owner_thread == tid;
    const bool orphaned =
        include_unowned && !owned &&
        ((participants_mask >> c.owner_thread) & 1ull) == 0;
    if (!owned && !orphaned) continue;

    // notify_port without pending_reply forces a snapshot anyway: a
    // client migrated off a stalled worker is still sending moves to the
    // dead port, so waiting for a request it can deliver would deadlock —
    // it must be *told* the new port to have one.
    if (owned && (c.pending_reply || c.notify_port)) {
      const sim::Entity* player = world_.get(c.entity_id);
      if (player == nullptr) continue;
      net::Snapshot snap;
      // Buffered events from frames this client missed, then this
      // frame's events.
      std::vector<net::GameEvent> events;
      c.buffer->drain_into(events);
      events.insert(events.end(), frame_events.begin(), frame_events.end());
      sim::build_snapshot(world_, *player, static_cast<uint32_t>(frames_),
                          c.last_seq, c.last_move_time_ns, events, snap,
                          thin_far);
      if (c.notify_port) {
        snap.assigned_port =
            static_cast<uint16_t>(cfg_.base_port + c.owner_thread);
        c.notify_port = false;
      }
      platform_.compute(cfg_.costs.reply_base + cfg_.costs.send_syscall);

      if (cfg_.delta_snapshots) {
        // Delta against the newest snapshot the client reports having
        // reconstructed (carried in its move commands); full snapshot if
        // that frame is no longer in our history.
        const Client::SentSnapshot* baseline = nullptr;
        if (c.client_baseline_frame != 0) {
          for (auto it = c.history.rbegin(); it != c.history.rend(); ++it) {
            if (it->server_frame == c.client_baseline_frame) {
              baseline = &*it;
              break;
            }
          }
        }
        std::vector<uint8_t> bytes =
            baseline != nullptr
                ? net::encode_delta(snap, baseline->entities,
                                    baseline->server_frame)
                : net::encode(snap);
        c.history.push_back({snap.server_frame, snap.entities});
        while (static_cast<int>(c.history.size()) > cfg_.snapshot_history)
          c.history.pop_front();
        c.chan->send(std::move(bytes));
      } else {
        c.chan->send(net::encode(snap));
      }
      c.pending_reply = false;
      ++st.replies_sent;
    } else {
      // No request this frame: update the client's message buffer from
      // the global state buffer anyway (§3.3 — every client, every
      // frame; per-buffer lock inside).
      c.buffer->append(frame_events);
      platform_.compute(cfg_.costs.per_buffer_update +
                        cfg_.costs.per_event *
                            static_cast<int64_t>(frame_events.size()));
    }
  }
  st.breakdown.reply += platform_.now() - t0;
}

}  // namespace qserv::core
