#include "src/core/server.hpp"

#include <algorithm>
#include <atomic>

#include "src/core/frame_pipeline.hpp"
#include "src/core/invariant_checker.hpp"
#include "src/core/lock_manager.hpp"
#include "src/obs/engine_hook.hpp"
#include "src/obs/trace.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/recovery/digest.hpp"
#include "src/recovery/engine_hook.hpp"
#include "src/resilience/engine_hook.hpp"
#include "src/sim/move.hpp"
#include "src/util/check.hpp"

namespace qserv::core {

const char* lock_policy_name(LockPolicy p) {
  switch (p) {
    case LockPolicy::kNone: return "none";
    case LockPolicy::kConservative: return "conservative";
    case LockPolicy::kOptimized: return "optimized";
  }
  return "?";
}

const char* assign_policy_name(AssignPolicy p) {
  switch (p) {
    case AssignPolicy::kBlock: return "block";
    case AssignPolicy::kRegion: return "region";
  }
  return "?";
}

Server::Server(vt::Platform& platform, net::Transport& net,
               const spatial::GameMap& map, ServerConfig cfg)
    : platform_(platform),
      net_(net),
      cfg_(cfg),
      world_(map, sim::World::Config{cfg.areanode_depth, cfg.seed}, &platform,
             cfg.costs),
      global_events_(platform),
      registry_(platform, cfg_) {
  QSERV_CHECK(cfg.threads >= 1 && cfg.threads <= 64);
  lock_manager_ =
      std::make_unique<LockManager>(platform, world_.tree(), cfg.costs);
  // Resilience always attaches: even with the ladder off its governor
  // maintains the rolling p95 that connect-time admission control reads.
  resilience_ = std::make_unique<resilience::ServerResilience>(*this);
  hooks_.add(static_cast<FrameHook*>(resilience_.get()));
  // Entity storage must never reallocate or change size once clients
  // join: concurrent readers hold references and call get() during
  // request processing, so connect-time spawns may only pop free slots.
  world_.reserve_entities(world_.active_entities() +
                          static_cast<size_t>(cfg.max_clients) + 256);
  if (cfg.check_invariants)
    invariants_ = std::make_unique<InvariantChecker>(registry_, world_);
  const int n = cfg.threads;
  stats_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    sockets_.push_back(net.open(static_cast<uint16_t>(cfg.base_port + i)));
    selectors_.push_back(net.make_selector());
    selectors_.back()->add(*sockets_.back());
  }
  // Recovery attaches only when enabled: its callbacks draw serialization
  // indexes, so its *registration* is part of replay determinism.
  if (cfg.recovery.enabled) {
    recovery_ = std::make_unique<recovery::ServerRecovery>(*this, map);
    hooks_.add(static_cast<FrameHook*>(recovery_.get()));
    hooks_.add(static_cast<LifecycleObserver*>(recovery_.get()));
  }
  obs_hook_ = std::make_unique<obs::ServerObs>(*this);
  hooks_.add(static_cast<FrameHook*>(obs_hook_.get()));
  // The engine proper, built over everything above. The watchdog slot
  // stays null until ParallelServer arms one.
  pipeline_ = std::make_unique<FramePipeline>(PipelineContext{
      platform_, cfg_, world_, global_events_, *lock_manager_, registry_,
      sockets_, stats_, frame_lock_stats_, hooks_, &resilience_->governor(),
      nullptr, invariants_.get(), this});
}

Server::~Server() = default;

void Server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& sel : selectors_) sel->poke();
}

uint16_t Server::port_for_client(int ordinal, int expected_players) const {
  // Static block assignment (§3.1): the first expected/T players go to
  // thread 0, the next block to thread 1, and so on.
  const int t = std::clamp(ordinal * cfg_.threads / std::max(1, expected_players),
                           0, cfg_.threads - 1);
  return static_cast<uint16_t>(cfg_.base_port + t);
}

Breakdown Server::total_breakdown() const {
  Breakdown b;
  for (const auto& s : stats_) b += s.breakdown;
  return b;
}

LockStats Server::total_lock_stats() const {
  LockStats l;
  for (const auto& s : stats_) l += s.locks;
  return l;
}

uint64_t Server::total_replies() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.replies_sent;
  return n;
}

uint64_t Server::total_requests() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.requests_processed;
  return n;
}

uint64_t Server::total_moves_rate_limited() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.moves_rate_limited;
  return n;
}

uint64_t Server::total_packets_oversized() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.packets_oversized;
  return n;
}

uint64_t Server::total_moves_coalesced() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.moves_coalesced;
  return n;
}

void Server::reset_stats() {
  for (auto& s : stats_) s.reset();
  frame_lock_stats_.reset();
  // The per-run session counters are measurement state too: a warmup
  // boundary must zero reassignments/evictions/rejections or the
  // measurement window reports warmup work (resumed_clients survives —
  // restore happens before the window and is inspected after it).
  registry_.reset_run_counters();
  hooks_.reset_stats();
}

uint64_t Server::frame_trace_dropped() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.frame_trace_dropped;
  return n;
}

Server::NetchanTotals Server::netchan_totals() const {
  NetchanTotals t;
  for (const auto& c : registry_.slots()) {
    if (!c.in_use || c.chan == nullptr) continue;
    t.packets_sent += c.chan->packets_sent();
    t.packets_accepted += c.chan->packets_accepted();
    t.drops_detected += c.chan->drops_detected();
    t.duplicates_rejected += c.chan->duplicates_rejected();
  }
  return t;
}

void Server::attach_observability(obs::Tracer* tracer,
                                  obs::MetricsRegistry* metrics) {
  // Rebind unconditionally: span timestamps must come from *this* server's
  // platform clock, and a tracer reused across runs would otherwise keep a
  // pointer to a destroyed platform.
  if (tracer != nullptr) tracer->bind(platform_);
  attach_observability(tracer, metrics, 1, "server-thread-");
}

void Server::attach_observability(obs::Tracer* tracer,
                                  obs::MetricsRegistry* metrics,
                                  int trace_pid,
                                  const std::string& track_prefix) {
  tracer_ = tracer;
  metrics_ = metrics;
  for (size_t i = 0; i < stats_.size(); ++i) {
    stats_[i].tracer = tracer;
    stats_[i].trace_track =
        tracer != nullptr
            ? tracer->make_track(track_prefix + std::to_string(i), trace_pid)
            : -1;
  }
  lock_manager_->set_metrics(metrics);
  obs_hook_->attach(metrics);
}

void Server::record_frame_trace(ThreadStats& st, uint64_t frame_id,
                                int moves) {
  if (st.frame_trace.size() <
      static_cast<size_t>(std::max(0, cfg_.frame_trace_limit))) {
    st.frame_trace.emplace_back(frame_id, moves);
  } else {
    ++st.frame_trace_dropped;
  }
}

const resilience::FrameGovernor& Server::governor() const {
  return resilience_->governor();
}

void Server::enter_drain() { resilience_->governor().set_draining(true); }

void Server::leave_drain() { resilience_->governor().set_draining(false); }

bool Server::draining() const { return resilience_->governor().draining(); }

std::vector<uint8_t> Server::encode_checkpoint_now() {
  QSERV_CHECK_MSG(recovery_ != nullptr,
                  "encode_checkpoint_now needs cfg.recovery.enabled");
  QSERV_CHECK_MSG(active_workers() == 0,
                  "encode_checkpoint_now needs quiesced workers");
  return recovery_->capture_now_encoded();
}

bool Server::watchdog_due(int self_tid) const {
  return watchdog_ != nullptr &&
         watchdog_->check_due(platform_.now(), self_tid);
}

uint64_t Server::invariant_violations() const {
  return invariants_ == nullptr ? 0 : invariants_->total_violations();
}

const recovery::FlightRecorder* Server::recorder() const {
  return recovery_ == nullptr ? nullptr : recovery_->recorder();
}

const recovery::CheckpointManager* Server::checkpoints() const {
  return recovery_ == nullptr ? nullptr : recovery_->checkpoints();
}

const recovery::BlackBox* Server::blackbox() const {
  return recovery_ == nullptr ? nullptr : recovery_->blackbox();
}

recovery::LoadError Server::restore_from(const std::vector<uint8_t>& image) {
  return restore_from(image, {}, nullptr);
}

namespace {

struct NullEventSink final : sim::EventSink {
  void emit(const net::GameEvent&) override {}
};

}  // namespace

recovery::LoadError Server::restore_from(
    const std::vector<uint8_t>& image,
    const std::vector<uint8_t>& journal_image, RestoreStats* stats,
    uint32_t extra_out_seq_bump) {
  using recovery::LoadError;
  recovery::CheckpointData c;
  const LoadError err = recovery::decode_checkpoint(image, c);
  if (err != LoadError::kNone) return err;

  // Decode and validate the journal tail before touching any state: a
  // bad journal must leave this freshly constructed server untouched so
  // the caller can fall back to the checkpoint-only restore.
  recovery::JournalFile jf;
  std::vector<const recovery::FrameJournal*> tail;
  if (!journal_image.empty()) {
    const LoadError jerr = recovery::decode_journal(journal_image, jf);
    if (jerr != LoadError::kNone) return jerr;
    uint64_t expected = c.frame + 1;
    for (const auto& fj : jf.frames) {
      if (fj.frame <= c.frame) continue;  // ring reaches further back
      if (fj.frame != expected) return LoadError::kCorrupt;  // gap
      ++expected;
      tail.push_back(&fj);
    }
  }

  // Detach cost charging for the whole restore: re-executed work already
  // paid its cost in the original timeline (re-charging would advance
  // virtual time and diverge from replay.cpp's model), and a shard
  // supervisor drives this from a platform timer, outside any fiber.
  struct ChargingGuard {
    sim::World& w;
    vt::Platform* saved;
    explicit ChargingGuard(sim::World& world)
        : w(world), saved(world.exchange_platform(nullptr)) {}
    ~ChargingGuard() { w.exchange_platform(saved); }
  } charging_guard(world_);

  world_.reserve_entities(c.entity_storage);
  recovery::restore_world(c, world_);

  // The registry image evolves through the tail: lifecycle records add
  // and remove sessions after the checkpoint. kInvalidSlot marks records
  // born in the tail — they get a free slot index at install time.
  constexpr uint16_t kInvalidSlot = 0xffff;
  std::vector<recovery::ClientRecord> clients = c.clients;
  std::vector<uint16_t> evicted(c.evicted_ports);
  const auto find_client = [&clients](uint32_t entity) -> int {
    for (size_t i = 0; i < clients.size(); ++i)
      if (clients[i].entity_id == entity) return static_cast<int>(i);
    return -1;
  };

  // Re-execute the tail against the restored world, in checkpoint-era
  // time (rebasing happens after, off the last replayed frame), checking
  // every frame digest. A mismatch means the journal and checkpoint
  // disagree; this half-replayed server must then be discarded.
  NullEventSink sink;
  uint64_t next_order = c.next_order;
  uint64_t resume_frame = c.frame;
  int64_t resume_t_ns = c.captured_at_ns;
  RestoreStats rs;
  rs.checkpoint_frame = c.frame;
  for (const recovery::FrameJournal* fj : tail) {
    for (const auto& rec : fj->records) {
      switch (rec.kind) {
        case recovery::RecordKind::kWorldPhase:
          world_.world_phase(vt::TimePoint{rec.t_ns},
                             vt::Duration{rec.dt_ns}, sink);
          break;
        case recovery::RecordKind::kMoveExec: {
          sim::Entity* p = world_.get(rec.entity);
          if (p == nullptr || !p->is_player())
            return LoadError::kReplayDiverged;
          sim::execute_move(world_, *p, rec.cmd, vt::TimePoint{rec.t_ns},
                            nullptr, &sink, rec.order);
          ++rs.tail_moves;
          const int ci = find_client(rec.entity);
          if (ci >= 0) {
            clients[static_cast<size_t>(ci)].last_seq = rec.cmd.sequence;
            clients[static_cast<size_t>(ci)].last_move_time_ns = rec.t_ns;
          }
          break;
        }
        case recovery::RecordKind::kConnectSpawn:
        case recovery::RecordKind::kHandoffIn: {
          sim::Entity& e = world_.spawn_player(rec.name);
          if (e.id != rec.entity) return LoadError::kReplayDiverged;
          if (rec.kind == recovery::RecordKind::kHandoffIn) {
            recovery::apply_handoff_state(e, rec.hand);
            world_.relink(e);
          }
          ++rs.tail_lifecycle;
          recovery::ClientRecord r;
          r.slot = kInvalidSlot;
          r.remote_port = rec.port;
          r.name = rec.name;
          r.entity_id = rec.entity;
          r.owner_thread = rec.thread;
          clients.push_back(std::move(r));
          break;
        }
        case recovery::RecordKind::kDisconnect:
        case recovery::RecordKind::kEvict:
        case recovery::RecordKind::kHandoffOut: {
          if (world_.get(rec.entity) == nullptr)
            return LoadError::kReplayDiverged;
          world_.remove_entity(rec.entity);
          ++rs.tail_lifecycle;
          const int ci = find_client(rec.entity);
          if (ci >= 0) clients.erase(clients.begin() + ci);
          if (rec.kind == recovery::RecordKind::kEvict)
            evicted.push_back(rec.port);
          break;
        }
        case recovery::RecordKind::kDropped:
          break;  // forensic only
      }
      if (rec.order != recovery::kNoOrder && rec.order >= next_order)
        next_order = rec.order + 1;
    }
    if (recovery::world_digest(world_) != fj->digest)
      return LoadError::kReplayDiverged;
    ++rs.tail_frames;
    resume_frame = fj->frame;
    resume_t_ns = fj->world_t0_ns + fj->world_dt_ns;
  }
  rs.resume_frame = resume_frame;
  rs.digest_verified = !tail.empty();

  // Map recorded-time onto restart-time: every absolute-time entity
  // field shifts by the same delta, so cooldowns, respawns and projectile
  // expiries keep their remaining durations. Anchored at the end of the
  // last replayed frame (the checkpoint capture time when no tail ran).
  world_.rebase_times(platform_.now() - vt::TimePoint{resume_t_ns});

  pipeline_->restore(resume_frame, next_order);

  // Replies sent during the tail advanced each channel's out-sequence
  // past the checkpointed value; a peer that saw them would discard
  // resumed packets re-using those sequences as old. Skip past the
  // frames the tail could have sent (plus slack for the loss-burst the
  // crash itself caused).
  const uint32_t out_seq_bump =
      (tail.empty() ? 0 : static_cast<uint32_t>(rs.tail_frames) + 8) +
      extra_out_seq_bump;

  vt::LockGuard g(registry_.mutex());
  for (const auto& r : clients) {
    int slot_index = static_cast<int>(r.slot);
    if (r.slot == kInvalidSlot) slot_index = registry_.find_free_locked();
    if (slot_index < 0 ||
        slot_index >= static_cast<int>(registry_.slots().size()))
      continue;
    ClientSlot& cl = registry_.slot(slot_index);
    if (cl.in_use) continue;
    cl.in_use = true;
    cl.entity_id = r.entity_id;
    cl.remote_port = r.remote_port;
    cl.name = r.name;
    cl.owner_thread =
        std::clamp(static_cast<int>(r.owner_thread), 0, cfg_.threads - 1);
    cl.connect_tid = cl.owner_thread;
    // Stay silent until the peer makes contact. A peer that never
    // noticed the restart keeps sending moves on the restored channel
    // sequences and gets its reply then; a peer that noticed has reset
    // its channel and reconnects (resume swaps in a fresh channel).
    // Pushing a snapshot through the restored channel now would poison a
    // reset peer: it would accept the checkpointed (high) sequence and
    // then discard the fresh resume channel's low sequences as
    // duplicates.
    cl.notify_port = false;
    cl.last_seq = r.last_seq;
    cl.last_move_time_ns = r.last_move_time_ns;
    std::atomic_ref<int64_t>(cl.last_heard_ns)
        .store(platform_.now().ns, std::memory_order_relaxed);
    cl.pending_reply = false;
    cl.pending_spawn = false;
    cl.pending_disconnect = false;
    cl.awaiting_resume = true;
    cl.chan = std::make_unique<net::NetChannel>(
        *sockets_[static_cast<size_t>(cl.owner_thread)], r.remote_port);
    cl.chan->restore_state(r.chan_out_seq + out_seq_bump, r.chan_in_seq,
                           r.chan_in_acked);
    cl.buffer = std::make_unique<ReplyBuffer>(platform_);
    cl.history.clear();
    cl.client_baseline_frame = 0;  // forces a full snapshot
    cl.bucket.configure(cfg_.resilience.move_rate_limit,
                        cfg_.resilience.move_burst);
    cl.moves_since_scan = 0;
    registry_.bind_port_locked(r.remote_port, slot_index);
  }
  for (const uint16_t p : evicted) registry_.remember_evicted_locked(p);
  registry_.set_restored();
  if (stats != nullptr) *stats = rs;
  return LoadError::kNone;
}

bool Server::extract_session(uint16_t port, SessionTransfer& out) {
  vt::LockGuard g(registry_.mutex());
  const int idx = registry_.index_of_port_locked(port);
  if (idx < 0) return false;
  ClientSlot& cl = registry_.slot(idx);
  if (!cl.in_use || cl.pending_spawn || cl.pending_disconnect) return false;
  sim::Entity* e = world_.get(cl.entity_id);
  if (e == nullptr) return false;
  out.name = cl.name;
  out.remote_port = cl.remote_port;
  out.last_seq = cl.last_seq;
  out.last_move_time_ns = cl.last_move_time_ns;
  if (cl.chan != nullptr) {
    out.chan_out_seq = cl.chan->out_sequence();
    out.chan_in_seq = cl.chan->in_sequence();
    out.chan_in_acked = cl.chan->peer_acked();
  }
  out.state = recovery::capture_handoff_state(*e);
  if (recovery_ != nullptr)
    recovery_->record_handoff_out(port, cl.entity_id, cl.name);
  // Master window: workers idle at the barrier, no list locks needed
  // (same argument as checkpoint capture).
  world_.remove_entity(cl.entity_id);
  registry_.unbind_port_locked(port);
  registry_.release_slot_locked(cl);
  ++registry_.counters.handoffs_out;
  return true;
}

bool Server::adopt_session(const SessionTransfer& t) {
  vt::LockGuard g(registry_.mutex());
  // Capacity and port checks come before the spawn: a failed adoption
  // must not consume world RNG or the replay diverges.
  if (registry_.index_of_port_locked(t.remote_port) >= 0) return false;
  const int idx = registry_.find_free_locked();
  if (idx < 0) return false;
  sim::Entity& e = world_.spawn_player(t.name);
  recovery::apply_handoff_state(e, t.state);
  world_.relink(e);
  ClientSlot& cl = registry_.slot(idx);
  cl.in_use = true;
  cl.entity_id = e.id;
  cl.remote_port = t.remote_port;
  cl.name = t.name;
  cl.owner_thread = idx % std::max(1, cfg_.threads);
  cl.connect_tid = cl.owner_thread;
  // The next snapshot re-teaches the peer its new server port; a forced
  // full snapshot (baseline 0) makes it self-contained.
  cl.notify_port = true;
  cl.pending_spawn = false;
  cl.pending_disconnect = false;
  cl.awaiting_resume = false;
  cl.last_seq = t.last_seq;
  cl.last_move_time_ns = t.last_move_time_ns;
  std::atomic_ref<int64_t>(cl.last_heard_ns)
      .store(platform_.now().ns, std::memory_order_relaxed);
  // Queue a reply even before the peer sends here: the redirect must
  // reach it proactively or it keeps addressing the old shard.
  cl.pending_reply = true;
  cl.chan = std::make_unique<net::NetChannel>(
      *sockets_[static_cast<size_t>(cl.owner_thread)], t.remote_port);
  cl.chan->restore_state(t.chan_out_seq, t.chan_in_seq, t.chan_in_acked);
  cl.buffer = std::make_unique<ReplyBuffer>(platform_);
  cl.history.clear();
  cl.client_baseline_frame = 0;
  cl.bucket.configure(cfg_.resilience.move_rate_limit,
                      cfg_.resilience.move_burst);
  cl.moves_since_scan = 0;
  registry_.bind_port_locked(t.remote_port, idx);
  if (recovery_ != nullptr)
    recovery_->record_handoff_in(t.remote_port, e.id, t.name, t.state);
  ++registry_.counters.handoffs_in;
  return true;
}

std::string Server::dump_blackbox(const std::string& label,
                                  const std::string& why) {
  return recovery_ == nullptr ? "" : recovery_->dump(label, why);
}

// --- Engine facade (hook seam) ----------------------------------------------

uint64_t Server::frames() const { return pipeline_->frames(); }

uint64_t Server::draw_order() { return pipeline_->draw_order(); }

uint64_t Server::order_count() const { return pipeline_->order_count(); }

vt::TimePoint Server::last_world_t0() const {
  return pipeline_->last_world_t0();
}

vt::Duration Server::last_world_dt() const {
  return pipeline_->last_world_dt();
}

int Server::migrate_clients_from(int stalled_tid, ThreadStats& st) {
  return pipeline_->maintenance().reassign_clients_from(stalled_tid, st);
}

int Server::evict_most_expensive(ThreadStats& st) {
  return pipeline_->maintenance().evict_most_expensive(st);
}

}  // namespace qserv::core
