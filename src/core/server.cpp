#include "src/core/server.hpp"

#include <algorithm>
#include <atomic>

#include "src/core/frame_pipeline.hpp"
#include "src/core/invariant_checker.hpp"
#include "src/core/lock_manager.hpp"
#include "src/obs/engine_hook.hpp"
#include "src/obs/trace.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/recovery/engine_hook.hpp"
#include "src/resilience/engine_hook.hpp"
#include "src/util/check.hpp"

namespace qserv::core {

const char* lock_policy_name(LockPolicy p) {
  switch (p) {
    case LockPolicy::kNone: return "none";
    case LockPolicy::kConservative: return "conservative";
    case LockPolicy::kOptimized: return "optimized";
  }
  return "?";
}

const char* assign_policy_name(AssignPolicy p) {
  switch (p) {
    case AssignPolicy::kBlock: return "block";
    case AssignPolicy::kRegion: return "region";
  }
  return "?";
}

Server::Server(vt::Platform& platform, net::VirtualNetwork& net,
               const spatial::GameMap& map, ServerConfig cfg)
    : platform_(platform),
      net_(net),
      cfg_(cfg),
      world_(map, sim::World::Config{cfg.areanode_depth, cfg.seed}, &platform,
             cfg.costs),
      global_events_(platform),
      registry_(platform, cfg_) {
  QSERV_CHECK(cfg.threads >= 1 && cfg.threads <= 64);
  lock_manager_ =
      std::make_unique<LockManager>(platform, world_.tree(), cfg.costs);
  // Resilience always attaches: even with the ladder off its governor
  // maintains the rolling p95 that connect-time admission control reads.
  resilience_ = std::make_unique<resilience::ServerResilience>(*this);
  hooks_.add(static_cast<FrameHook*>(resilience_.get()));
  // Entity storage must never reallocate or change size once clients
  // join: concurrent readers hold references and call get() during
  // request processing, so connect-time spawns may only pop free slots.
  world_.reserve_entities(world_.active_entities() +
                          static_cast<size_t>(cfg.max_clients) + 256);
  if (cfg.check_invariants)
    invariants_ = std::make_unique<InvariantChecker>(registry_, world_);
  const int n = cfg.threads;
  stats_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    sockets_.push_back(net.open(static_cast<uint16_t>(cfg.base_port + i)));
    selectors_.push_back(std::make_unique<net::Selector>(platform));
    selectors_.back()->add(*sockets_.back());
  }
  // Recovery attaches only when enabled: its callbacks draw serialization
  // indexes, so its *registration* is part of replay determinism.
  if (cfg.recovery.enabled) {
    recovery_ = std::make_unique<recovery::ServerRecovery>(*this, map);
    hooks_.add(static_cast<FrameHook*>(recovery_.get()));
    hooks_.add(static_cast<LifecycleObserver*>(recovery_.get()));
  }
  obs_hook_ = std::make_unique<obs::ServerObs>(*this);
  hooks_.add(static_cast<FrameHook*>(obs_hook_.get()));
  // The engine proper, built over everything above. The watchdog slot
  // stays null until ParallelServer arms one.
  pipeline_ = std::make_unique<FramePipeline>(PipelineContext{
      platform_, cfg_, world_, global_events_, *lock_manager_, registry_,
      sockets_, stats_, frame_lock_stats_, hooks_, &resilience_->governor(),
      nullptr, invariants_.get(), this});
}

Server::~Server() = default;

void Server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& sel : selectors_) sel->poke();
}

uint16_t Server::port_for_client(int ordinal, int expected_players) const {
  // Static block assignment (§3.1): the first expected/T players go to
  // thread 0, the next block to thread 1, and so on.
  const int t = std::clamp(ordinal * cfg_.threads / std::max(1, expected_players),
                           0, cfg_.threads - 1);
  return static_cast<uint16_t>(cfg_.base_port + t);
}

Breakdown Server::total_breakdown() const {
  Breakdown b;
  for (const auto& s : stats_) b += s.breakdown;
  return b;
}

LockStats Server::total_lock_stats() const {
  LockStats l;
  for (const auto& s : stats_) l += s.locks;
  return l;
}

uint64_t Server::total_replies() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.replies_sent;
  return n;
}

uint64_t Server::total_requests() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.requests_processed;
  return n;
}

uint64_t Server::total_moves_rate_limited() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.moves_rate_limited;
  return n;
}

uint64_t Server::total_packets_oversized() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.packets_oversized;
  return n;
}

uint64_t Server::total_moves_coalesced() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.moves_coalesced;
  return n;
}

void Server::reset_stats() {
  for (auto& s : stats_) s.reset();
  frame_lock_stats_.reset();
  // The per-run session counters are measurement state too: a warmup
  // boundary must zero reassignments/evictions/rejections or the
  // measurement window reports warmup work (resumed_clients survives —
  // restore happens before the window and is inspected after it).
  registry_.reset_run_counters();
  hooks_.reset_stats();
}

uint64_t Server::frame_trace_dropped() const {
  uint64_t n = 0;
  for (const auto& s : stats_) n += s.frame_trace_dropped;
  return n;
}

Server::NetchanTotals Server::netchan_totals() const {
  NetchanTotals t;
  for (const auto& c : registry_.slots()) {
    if (!c.in_use || c.chan == nullptr) continue;
    t.packets_sent += c.chan->packets_sent();
    t.packets_accepted += c.chan->packets_accepted();
    t.drops_detected += c.chan->drops_detected();
    t.duplicates_rejected += c.chan->duplicates_rejected();
  }
  return t;
}

void Server::attach_observability(obs::Tracer* tracer,
                                  obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  // Rebind unconditionally: span timestamps must come from *this* server's
  // platform clock, and a tracer reused across runs would otherwise keep a
  // pointer to a destroyed platform.
  if (tracer != nullptr) tracer->bind(platform_);
  for (size_t i = 0; i < stats_.size(); ++i) {
    stats_[i].tracer = tracer;
    stats_[i].trace_track =
        tracer != nullptr
            ? tracer->make_track("server-thread-" + std::to_string(i))
            : -1;
  }
  lock_manager_->set_metrics(metrics);
  obs_hook_->attach(metrics);
}

void Server::record_frame_trace(ThreadStats& st, uint64_t frame_id,
                                int moves) {
  if (st.frame_trace.size() <
      static_cast<size_t>(std::max(0, cfg_.frame_trace_limit))) {
    st.frame_trace.emplace_back(frame_id, moves);
  } else {
    ++st.frame_trace_dropped;
  }
}

const resilience::FrameGovernor& Server::governor() const {
  return resilience_->governor();
}

bool Server::watchdog_due(int self_tid) const {
  return watchdog_ != nullptr &&
         watchdog_->check_due(platform_.now(), self_tid);
}

uint64_t Server::invariant_violations() const {
  return invariants_ == nullptr ? 0 : invariants_->total_violations();
}

const recovery::FlightRecorder* Server::recorder() const {
  return recovery_ == nullptr ? nullptr : recovery_->recorder();
}

const recovery::CheckpointManager* Server::checkpoints() const {
  return recovery_ == nullptr ? nullptr : recovery_->checkpoints();
}

const recovery::BlackBox* Server::blackbox() const {
  return recovery_ == nullptr ? nullptr : recovery_->blackbox();
}

recovery::LoadError Server::restore_from(const std::vector<uint8_t>& image) {
  recovery::CheckpointData c;
  const recovery::LoadError err = recovery::decode_checkpoint(image, c);
  if (err != recovery::LoadError::kNone) return err;

  world_.reserve_entities(c.entity_storage);
  recovery::restore_world(c, world_);
  // Map checkpoint-time onto restart-time: every absolute-time entity
  // field shifts by the same delta, so cooldowns, respawns and projectile
  // expiries keep their remaining durations.
  world_.rebase_times(platform_.now() - vt::TimePoint{c.captured_at_ns});

  pipeline_->restore(c.frame, c.next_order);

  vt::LockGuard g(registry_.mutex());
  for (const auto& r : c.clients) {
    if (r.slot >= registry_.slots().size()) continue;
    ClientSlot& cl = registry_.slot(static_cast<int>(r.slot));
    cl.in_use = true;
    cl.entity_id = r.entity_id;
    cl.remote_port = r.remote_port;
    cl.name = r.name;
    cl.owner_thread =
        std::clamp(static_cast<int>(r.owner_thread), 0, cfg_.threads - 1);
    cl.connect_tid = cl.owner_thread;
    // Stay silent until the peer makes contact. A peer that never
    // noticed the restart keeps sending moves on the restored channel
    // sequences and gets its reply then; a peer that noticed has reset
    // its channel and reconnects (resume swaps in a fresh channel).
    // Pushing a snapshot through the restored channel now would poison a
    // reset peer: it would accept the checkpointed (high) sequence and
    // then discard the fresh resume channel's low sequences as
    // duplicates.
    cl.notify_port = false;
    cl.last_seq = r.last_seq;
    cl.last_move_time_ns = r.last_move_time_ns;
    std::atomic_ref<int64_t>(cl.last_heard_ns)
        .store(platform_.now().ns, std::memory_order_relaxed);
    cl.pending_reply = false;
    cl.pending_spawn = false;
    cl.pending_disconnect = false;
    cl.awaiting_resume = true;
    cl.chan = std::make_unique<net::NetChannel>(
        *sockets_[static_cast<size_t>(cl.owner_thread)], r.remote_port);
    cl.chan->restore_state(r.chan_out_seq, r.chan_in_seq, r.chan_in_acked);
    cl.buffer = std::make_unique<ReplyBuffer>(platform_);
    cl.history.clear();
    cl.client_baseline_frame = 0;  // forces a full snapshot
    cl.bucket.configure(cfg_.resilience.move_rate_limit,
                        cfg_.resilience.move_burst);
    cl.moves_since_scan = 0;
    registry_.bind_port_locked(r.remote_port, static_cast<int>(r.slot));
  }
  for (const uint16_t p : c.evicted_ports)
    registry_.remember_evicted_locked(p);
  registry_.set_restored();
  return recovery::LoadError::kNone;
}

std::string Server::dump_blackbox(const std::string& label,
                                  const std::string& why) {
  return recovery_ == nullptr ? "" : recovery_->dump(label, why);
}

// --- Engine facade (hook seam) ----------------------------------------------

uint64_t Server::frames() const { return pipeline_->frames(); }

uint64_t Server::draw_order() { return pipeline_->draw_order(); }

uint64_t Server::order_count() const { return pipeline_->order_count(); }

vt::TimePoint Server::last_world_t0() const {
  return pipeline_->last_world_t0();
}

vt::Duration Server::last_world_dt() const {
  return pipeline_->last_world_dt();
}

int Server::migrate_clients_from(int stalled_tid, ThreadStats& st) {
  return pipeline_->maintenance().reassign_clients_from(stalled_tid, st);
}

int Server::evict_most_expensive(ThreadStats& st) {
  return pipeline_->maintenance().evict_most_expensive(st);
}

}  // namespace qserv::core
