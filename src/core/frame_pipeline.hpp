// The layered frame engine: explicit phase objects over shared engine
// state, composed by both concrete servers. SequentialServer runs
// World -> Receive -> Reply -> Maintenance on one thread with locks off;
// ParallelServer runs the same phases under its master-election barrier
// protocol with locks on. The phases own no state of their own — they
// operate on the PipelineContext (references into the Server that built
// them) plus per-thread FrameArenas for hot-path scratch, so composing
// them differently cannot fork the engine's behavior.
//
// Layering (DESIGN.md §10): transport (net/) feeds the receive phase;
// sessions (ClientRegistry) are mutated only here and in the maintenance
// window; subsystems observe through HookList and reach back through the
// Engine facade (frame_hooks.hpp). Nothing in this header depends on
// recovery/, resilience/ internals or obs/ beyond those seams and the
// governor's read-only rung level.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/client_registry.hpp"
#include "src/core/config.hpp"
#include "src/core/frame_hooks.hpp"
#include "src/core/frame_stats.hpp"
#include "src/core/global_state.hpp"
#include "src/core/lock_manager.hpp"
#include "src/net/netchan.hpp"
#include "src/sim/scratch.hpp"
#include "src/sim/snapshot_encode.hpp"

namespace qserv::resilience {
class FrameGovernor;
class WorkerWatchdog;
}

namespace qserv::core {

class FramePipeline;
class InvariantChecker;

// Everything the phases operate on, wired once by the Server that owns
// all of it. References: the pipeline never outlives the server.
struct PipelineContext {
  vt::Platform& platform;
  const ServerConfig& cfg;
  sim::World& world;
  GlobalStateBuffer& global_events;
  LockManager& lock_manager;
  ClientRegistry& registry;
  std::vector<std::unique_ptr<net::Socket>>& sockets;
  std::vector<ThreadStats>& stats;
  FrameLockStats& frame_lock_stats;
  HookList& hooks;
  // Read-only rung level for the hot-path shed gates (coalesce, thin-far,
  // shed-debug-work). Stepping the ladder happens in the resilience
  // hook's master window, not here.
  const resilience::FrameGovernor* governor;
  // Stall oracle for migration targeting; null on the sequential server
  // (armed by ParallelServer after construction).
  resilience::WorkerWatchdog* watchdog;
  InvariantChecker* invariants;  // null unless cfg.check_invariants
  Engine* engine;                // facade for hook-owned escalations
};

// One thread's per-frame wire staging (DESIGN.md §15): every outgoing
// snapshot body is encoded back-to-back into one growing buffer, each
// preceded by netchan headroom, then handed to the socket as a span —
// no per-client vector assembly. Frames are recorded as offsets, not
// pointers: the buffer relocates as it grows within the finalize loop.
struct WireArena {
  net::ByteWriter bytes;
  struct Frame {
    size_t off = 0;   // start of the headroom in `bytes`
    size_t len = 0;   // body length (headroom excluded)
    ClientSlot* slot = nullptr;
  };
  std::vector<Frame> frames;

  void begin_frame() {
    bytes.clear();  // keeps capacity
    frames.clear();
  }
};

// Per-thread frame scratch: every container the exec and reply phases
// would otherwise allocate per move / per frame. Arenas are only ever
// touched by their owning thread, so no synchronization; capacity grows
// to the high-water mark and stays.
struct FrameArena {
  // Exec phase: plan_request() output and the acquired region (the
  // region's own leaf/request buffers are reused through it), plus the
  // gather scratch threaded through execute_move.
  std::vector<std::vector<int>> lock_sets;
  LockManager::Region region;
  sim::MoveScratch move_scratch;
  // Reply phase: per-client event assembly, the frame-wide event
  // snapshot, and the snapshot being built/encoded.
  std::vector<net::GameEvent> events;
  std::vector<net::GameEvent> frame_events;
  net::Snapshot snap;
  // Shared-baseline reply path (DESIGN.md §15): the visible-row list the
  // sweep hands the span encoder, the encoder's reusable scratch, and
  // this thread's wire arena.
  std::vector<uint32_t> visible_rows;
  sim::SharedEncodeScratch enc_scratch;
  WireArena wire;
};

// P: the master's world-physics step. Fixes (t0, dt) for the frame,
// notifies hooks (the journal's world-tick record), runs the physics.
class WorldPhase {
 public:
  explicit WorldPhase(FramePipeline& pipe) : pipe_(pipe) {}
  void run(ThreadStats& st);

 private:
  FramePipeline& pipe_;
};

// Rx (+ dispatch): drains one thread's socket, framing datagrams through
// the owning netchan, and dispatches connects / moves / disconnects.
// Moves execute inline through the exec phase.
class ReceivePhase {
 public:
  explicit ReceivePhase(FramePipeline& pipe) : pipe_(pipe) {}
  // Returns moves executed. `use_locks` off = sequential server.
  int drain(int tid, ThreadStats& st, bool use_locks);

 private:
  void handle_connect(int tid, const net::Datagram& d,
                      const net::ConnectMsg& msg, ThreadStats& st);
  void handle_disconnect(ClientSlot& client, ThreadStats& st);

  FramePipeline& pipe_;
};

// E: one move command against the world, under the region locks its
// bounding boxes require (parallel) or lock-free (sequential).
class ExecPhase {
 public:
  explicit ExecPhase(FramePipeline& pipe) : pipe_(pipe) {}
  void run(int tid, ClientSlot& client, const net::MoveCmd& cmd,
           ThreadStats& st, bool use_locks);

 private:
  FramePipeline& pipe_;
};

// T/Tx: snapshots for this thread's clients that requested one (and, on
// the master, buffer updates for clients of non-participating threads).
class ReplyPhase {
 public:
  explicit ReplyPhase(FramePipeline& pipe) : pipe_(pipe) {}

  // Single-threaded frame setup at the flip into the reply phase (the
  // world is frozen from here on): seals the frame's global events into
  // a shared block, and — under the reply-path knobs — rebuilds the SoA
  // frame view and primes the per-cluster visibility rows. The stage
  // durations land in `st` as reply_view / reply_encode.
  void prepare(int tid, ThreadStats& st);

  void run(int tid, ThreadStats& st, bool include_unowned,
           uint64_t participants_mask);

 private:
  FramePipeline& pipe_;
};

// The master's single-threaded between-frames window, plus the
// maintenance entry points the idle paths use. All client-lifecycle
// mutation outside the receive phase lives here.
class MaintenancePhase {
 public:
  explicit MaintenancePhase(FramePipeline& pipe) : pipe_(pipe) {}

  // The full frame-end window: clear global events, harvest per-frame
  // lock stats (parallel only), complete deferred lifecycle, reap
  // timeouts, dispatch the master-window / frame-sealed / frame-end
  // hooks, audit invariants (unless shed), and emit the frame span.
  void run_master_window(int tid, vt::TimePoint frame_start, int frame_moves,
                         ThreadStats& st, bool harvest_locks);

  // Reaps every client silent past cfg.client_timeout. Returns evictions.
  int reap_timed_out_clients(ThreadStats& st);
  // Governor rung 4: evicts the most expensive client since the last
  // scan; resets every scan counter. Returns 0 or 1.
  int evict_most_expensive(ThreadStats& st);
  // Region re-partitioning of all clients (assign_policy == kRegion).
  int reassign_clients();
  // Migrates every client owned by `stalled_tid` to live workers.
  int reassign_clients_from(int stalled_tid, ThreadStats& st);
  // Thread that should own a player at `origin` under region assignment.
  int owner_for_region(const Vec3& origin) const;
  // Runs the cross-structure audit when configured; a violating run
  // triggers a black-box dump through the engine facade.
  void run_invariant_check();
  // Spawns entities for pending connects (sending the deferred ack) and
  // removes entities of pending disconnects.
  void complete_pending_lifecycle(ThreadStats& st);

 private:
  void evict_client_locked(ClientSlot& c, net::RejectReason reason,
                           ThreadStats& st);

  FramePipeline& pipe_;
};

// Owns frame progression (frame counter, serialization-index counter,
// world-phase timing), the per-thread arenas, and the phase objects.
class FramePipeline {
 public:
  explicit FramePipeline(const PipelineContext& ctx);

  FramePipeline(const FramePipeline&) = delete;
  FramePipeline& operator=(const FramePipeline&) = delete;

  PipelineContext& context() { return ctx_; }

  uint64_t frames() const { return frames_; }
  // Opens the next frame; returns its id. Caller serializes (the
  // sequential loop, or the parallel master under the frame-sync mutex).
  uint64_t advance_frame() { return ++frames_; }

  // Serialization-index counter: every world mutation takes one; replay
  // applies records in this order. Moves draw theirs after acquiring
  // their region locks, so conflicting moves' indexes order exactly as
  // their executions did.
  uint64_t draw_order() { return order_ctr_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t order_count() const {
    return order_ctr_.load(std::memory_order_relaxed);
  }

  // world_phase() arguments of the open frame (journal sealing).
  vt::TimePoint last_world_t0() const { return last_world_t0_; }
  vt::Duration last_world_dt() const { return last_world_dt_; }

  // Checkpoint restore: resumes frame/order counters and restarts the
  // world-phase dt clock at now.
  void restore(uint64_t frame, uint64_t next_order);

  FrameArena& arena(int tid) { return *arenas_[static_cast<size_t>(tid)]; }

  WorldPhase& world_phase() { return world_phase_; }
  ReceivePhase& receive() { return receive_; }
  ExecPhase& exec() { return exec_; }
  ReplyPhase& reply() { return reply_; }
  MaintenancePhase& maintenance() { return maintenance_; }

 private:
  friend class WorldPhase;
  friend class ReceivePhase;
  friend class ExecPhase;
  friend class ReplyPhase;
  friend class MaintenancePhase;

  PipelineContext ctx_;
  uint64_t frames_ = 0;
  // Reply-prepare products (written single-threaded at the reply flip,
  // read-only during the phase): the frame's sealed event block, the
  // frame it was sealed for, and the shared PVS visibility rows.
  SealedEvents sealed_events_;
  uint64_t reply_prepared_frame_ = 0;  // frames_ start at 1; 0 = never
  sim::ClusterVisCache cluster_vis_;
  std::atomic<uint64_t> order_ctr_{0};
  vt::TimePoint last_world_{};  // previous world-phase time (for dt)
  vt::TimePoint last_world_t0_{};
  vt::Duration last_world_dt_{};
  // unique_ptr: FrameArena holds a Region, which is intentionally
  // pinned (non-copyable, non-movable) because release() must find it.
  std::vector<std::unique_ptr<FrameArena>> arenas_;

  WorldPhase world_phase_{*this};
  ReceivePhase receive_{*this};
  ExecPhase exec_{*this};
  ReplyPhase reply_{*this};
  MaintenancePhase maintenance_{*this};
};

}  // namespace qserv::core
