// Region-based lock synchronization over the areanode tree (§3.3, §4.3).
//
// Two lock families:
//
//  * Region (leaf) locks — one mutex per areanode leaf. A request locks
//    every leaf its bounding box(es) intersect, in canonical (ascending
//    index) order so acquisition is deadlock-free, and holds them for the
//    entire move execution.
//  * List (parent) locks — one mutex per tree node, held only while a
//    node's object list is read or written. In the paper these appear as
//    "parent areanode" locks for entities that straddle division planes;
//    we also use them for the brief link/unlink list updates, which makes
//    relocation into unlocked regions (teleporters, respawns) safe.
//
// The manager additionally keeps the per-frame statistics Figure 7 plots:
// which leaves each thread locked, relock counts, and sharing between
// threads.
#pragma once

#include <memory>
#include <vector>

#include "src/core/config.hpp"
#include "src/core/frame_stats.hpp"
#include "src/net/protocol.hpp"
#include "src/sim/entity.hpp"
#include "src/sim/world.hpp"
#include "src/spatial/areanode_tree.hpp"

namespace qserv::obs {
class HistogramMetric;
class MetricsRegistry;
}

namespace qserv::core {

class LockManager {
 public:
  LockManager(vt::Platform& platform, const spatial::AreanodeTree& tree,
              const sim::CostModel& costs);

  // An acquired set of leaf region locks. Release before destruction.
  class Region {
   public:
    Region() = default;
    ~Region();
    Region(const Region&) = delete;
    Region& operator=(const Region&) = delete;

    const std::vector<int>& leaves() const { return leaves_; }
    bool held() const { return mgr_ != nullptr; }

   private:
    friend class LockManager;
    LockManager* mgr_ = nullptr;
    std::vector<int> leaves_;   // sorted node indices
    std::vector<int> scratch_;  // acquire()'s pre-dedup request list
  };

  // Computes the leaf sets a request must lock under `policy`: the
  // short-range move region, plus the long-range region its buttons
  // require. Each inner vector is one "locking step" whose leaves count
  // as lock requests (overlaps between steps are the paper's re-locks).
  void plan_request(LockPolicy policy, const sim::Entity& player,
                    const net::MoveCmd& cmd,
                    std::vector<std::vector<int>>& sets_out) const;

  // Acquires the union of `sets` in canonical order. Charges lock-op
  // costs, attributes wait time to stats.breakdown.lock_leaf, and records
  // the per-request lock statistics. `thread_id` must be < 64.
  void acquire(const std::vector<std::vector<int>>& sets, int thread_id,
               ThreadStats& stats, Region& out);
  void release(Region& region);

  // Per-thread facade giving sim/ code list-lock access with wait-time
  // attribution to that thread's stats.
  class ListLockContext final : public sim::NodeListLocks {
   public:
    ListLockContext(LockManager& mgr, ThreadStats& stats)
        : mgr_(&mgr), stats_(&stats) {}
    void lock_list(int node_index) override;
    void unlock_list(int node_index) override;

   private:
    LockManager* mgr_;
    ThreadStats* stats_;
  };

  // --- frame accounting (master only, between frames) ---
  void frame_reset();
  void frame_harvest(FrameLockStats& out);

  // --- observability (obs/metrics.hpp) ---
  // Attaches wait-time histograms ("lock.leaf_wait_us", per-acquire region
  // wait; "lock.list_wait_us", per list-lock wait). Null detaches; the hot
  // path then pays one branch.
  void set_metrics(obs::MetricsRegistry* registry);

  // Cumulative per-leaf contention, for the hot-list export: lock
  // operations (incl. re-locks), mutex acquisitions, contended
  // acquisitions, and total wait on the leaf's region mutex.
  struct LeafContention {
    int leaf_ordinal = 0;
    uint64_t lock_ops = 0;
    uint64_t acquisitions = 0;
    uint64_t contended = 0;
    vt::Duration wait{};
  };
  // Top `k` leaves by total region-mutex wait (ties broken by lock ops),
  // leaves with zero activity omitted.
  std::vector<LeafContention> contention_hotlist(int k) const;
  // Cumulative lock operations on one leaf (by ordinal).
  uint64_t leaf_lock_ops(int leaf_ordinal) const;

  int leaf_count() const { return tree_.leaf_count(); }
  const spatial::AreanodeTree& tree() const { return tree_; }

  // Aggregate wait observed on region mutexes / list mutexes (for tests).
  vt::Duration total_region_wait() const;
  vt::Duration total_list_wait() const;

 private:
  int leaf_ordinal(int node_index) const { return tree_.leaf_ordinal(node_index); }

  vt::Platform& platform_;
  const spatial::AreanodeTree& tree_;
  sim::CostModel costs_;

  std::vector<std::unique_ptr<vt::Mutex>> region_mu_;  // by leaf ordinal
  std::vector<std::unique_ptr<vt::Mutex>> list_mu_;    // by node index

  // Per-leaf, per-frame sharing stats; bit i set = thread i locked the
  // leaf this frame. Each entry is only written while its region mutex is
  // held, and reset/harvested by the master between frames.
  std::vector<uint64_t> frame_thread_mask_;
  std::vector<uint32_t> frame_lock_ops_;
  // Cumulative per-leaf lock operations, accumulated from frame_lock_ops_
  // at harvest time (so it costs nothing on the acquire path).
  std::vector<uint64_t> total_lock_ops_;

  // Observability attachments; null = off (one branch on the hot path).
  obs::HistogramMetric* leaf_wait_us_ = nullptr;
  obs::HistogramMetric* list_wait_us_ = nullptr;
};

}  // namespace qserv::core
