// Automatic players. The paper replaces humans with automatic players to
// make benchmarking reproducible [1]; these bots wander the waypoint
// graph, pick fights with every player they see, collect items they walk
// over, and occasionally jump — enough behavioural variety to exercise
// short-range motion, touch interactions and both long-range interaction
// types.
#pragma once

#include <cstdint>

#include "src/net/protocol.hpp"
#include "src/spatial/map.hpp"
#include "src/util/rng.hpp"
#include "src/vthread/time.hpp"

namespace qserv::bots {

class Bot {
 public:
  struct Config {
    float aggression = 0.8f;     // P(attack) per frame with an enemy visible
    float grenade_ratio = 0.3f;  // fraction of attacks thrown as grenades
    float jump_chance = 0.02f;   // P(jump) per frame while wandering
    float enemy_range = 700.0f;  // how far the bot engages enemies
    uint64_t seed = 1;
  };

  Bot(const spatial::GameMap& map, Config cfg);

  // Produces the next move command given the latest snapshot the client
  // has (which may be several frames stale, as for a human player).
  net::MoveCmd think(const net::Snapshot& last_snapshot, uint32_t self_id,
                     vt::TimePoint now, uint16_t frame_msec);

 private:
  void pick_next_waypoint(const Vec3& from);

  const spatial::GameMap& map_;
  Config cfg_;
  Rng rng_;
  int target_waypoint_ = -1;
  Vec3 last_origin_;
  vt::TimePoint last_progress_{};
  vt::TimePoint next_attack_{};  // client-side cooldown estimate
  uint32_t move_sequence_ = 0;
};

}  // namespace qserv::bots
