// Drives a population of automatic clients against a server: spawns one
// client fiber/thread per player on the client-farm domain, staggers
// connections, and aggregates the client-side metrics the paper reports.
//
// For chaos workloads the driver can also run a churn schedule — clients
// crash, quit, and rejoin on fresh ports — and aggregates the lifecycle
// counters (churn, evictions, rejects) next to the paper's metrics.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/bots/client.hpp"
#include "src/core/server.hpp"

namespace qserv::bots {

class ClientDriver {
 public:
  // Scheduled client churn: each session lasts 0.5x..1.5x mean_session,
  // then the client crashes (silently) or quits (disconnect), and rejoins
  // on a fresh local port after rejoin_delay.
  struct ChurnConfig {
    bool enabled = false;
    vt::Duration mean_session = vt::seconds(30);
    float crash_fraction = 0.5f;
    vt::Duration rejoin_delay = vt::millis(250);
    bool rejoin = true;
  };

  struct Config {
    int players = 64;
    uint16_t first_local_port = 40000;
    vt::Duration frame_interval = vt::millis(33);
    vt::Duration connect_stagger = vt::millis(5);
    uint64_t seed = 1;
    float aggression = 0.8f;
    float grenade_ratio = 0.3f;
    // Reconnect when the server goes silent for this long (0 = never).
    vt::Duration server_silence_timeout{};
    ChurnConfig churn;
    // Bot name prefix ("bot-" by default). A multi-shard harness runs one
    // driver per shard; distinct prefixes keep names globally unique so a
    // handed-off session can never collide with a neighbor's bot or be
    // re-adopted by the wrong slot.
    std::string name_prefix = "bot-";
    // When set, overrides the server's static block assignment for the
    // initial join port of client ordinal i (a shard router maps each bot
    // to its home shard's endpoint).
    std::function<uint16_t(int)> join_port;
  };

  ClientDriver(vt::Platform& platform, net::Transport& net,
               const spatial::GameMap& map, const core::Server& server,
               Config cfg);

  // Server-less overload for populations aimed at an out-of-process
  // server (real transport: the server lives behind qserv-serve, not in
  // this address space). cfg.join_port must be set — there is no Server
  // object to ask for the static block assignment.
  ClientDriver(vt::Platform& platform, net::Transport& net,
               const spatial::GameMap& map, Config cfg);

  // Spawns all client fibers. Call once, before the platform runs.
  void start();
  void request_stop();
  // Resets every client's metrics; measurement starts now.
  void begin_measurement();

  struct Aggregate {
    double response_rate = 0.0;  // replies/s across all clients
    double response_ms_mean = 0.0;
    double response_ms_p50 = 0.0;
    double response_ms_p95 = 0.0;
    uint64_t replies = 0;
    uint64_t moves_sent = 0;
    uint64_t drops_detected = 0;
    int connected = 0;
    int total_frags = 0;
    double snapshot_entities_mean = 0.0;  // visibility proxy
    // Lifecycle / churn columns.
    uint64_t sessions = 0;
    uint64_t crashes = 0;
    uint64_t graceful_quits = 0;
    uint64_t rejoins = 0;
    uint64_t evictions_observed = 0;
    uint64_t rejected_full = 0;
    uint64_t rejected_busy = 0;
    uint64_t connect_retries = 0;
    uint64_t silence_reconnects = 0;
    uint64_t port_collisions = 0;
    // Worst reply gap any client saw (service-continuity watermark).
    int64_t max_reply_gap_ns = 0;
  };
  // Aggregates metrics over a measurement window of `window` seconds.
  Aggregate aggregate(vt::Duration window) const;

  const std::vector<std::unique_ptr<Client>>& clients() const {
    return clients_;
  }

 private:
  ClientDriver(vt::Platform& platform, net::Transport& net,
               const spatial::GameMap& map, const core::Server* server,
               Config cfg);

  vt::Platform& platform_;
  Config cfg_;
  // Fresh-port allocator shared by all clients' rejoin paths.
  std::shared_ptr<std::atomic<uint32_t>> next_port_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace qserv::bots
