// Drives a population of automatic clients against a server: spawns one
// client fiber/thread per player on the client-farm domain, staggers
// connections, and aggregates the client-side metrics the paper reports.
#pragma once

#include <memory>
#include <vector>

#include "src/bots/client.hpp"
#include "src/core/server.hpp"

namespace qserv::bots {

class ClientDriver {
 public:
  struct Config {
    int players = 64;
    uint16_t first_local_port = 40000;
    vt::Duration frame_interval = vt::millis(33);
    vt::Duration connect_stagger = vt::millis(5);
    uint64_t seed = 1;
    float aggression = 0.8f;
    float grenade_ratio = 0.3f;
  };

  ClientDriver(vt::Platform& platform, net::VirtualNetwork& net,
               const spatial::GameMap& map, const core::Server& server,
               Config cfg);

  // Spawns all client fibers. Call once, before the platform runs.
  void start();
  void request_stop();
  // Resets every client's metrics; measurement starts now.
  void begin_measurement();

  struct Aggregate {
    double response_rate = 0.0;  // replies/s across all clients
    double response_ms_mean = 0.0;
    double response_ms_p50 = 0.0;
    double response_ms_p95 = 0.0;
    uint64_t replies = 0;
    uint64_t moves_sent = 0;
    uint64_t drops_detected = 0;
    int connected = 0;
    int total_frags = 0;
    double snapshot_entities_mean = 0.0;  // visibility proxy
  };
  // Aggregates metrics over a measurement window of `window` seconds.
  Aggregate aggregate(vt::Duration window) const;

  const std::vector<std::unique_ptr<Client>>& clients() const {
    return clients_;
  }

 private:
  vt::Platform& platform_;
  Config cfg_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace qserv::bots
