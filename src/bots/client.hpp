// A game client endpoint: connects to the server, sends one move command
// per client frame (~30 ms, as a 30 fps client would), consumes snapshot
// replies, and measures the paper's two client-side metrics — response
// rate (replies/s) and response time (request send -> reply receipt).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "src/bots/bot.hpp"
#include "src/net/netchan.hpp"
#include "src/net/protocol.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/util/histogram.hpp"

namespace qserv::bots {

class Client {
 public:
  struct Config {
    uint16_t local_port = 0;
    uint16_t server_port = 0;
    std::string name;
    vt::Duration frame_interval = vt::millis(33);
    vt::Duration connect_retry = vt::millis(250);
    vt::Duration initial_delay{};  // connect stagger
    Bot::Config bot;
  };

  struct Metrics {
    uint64_t moves_sent = 0;
    uint64_t replies = 0;
    uint64_t full_snapshots = 0;
    uint64_t delta_snapshots = 0;
    uint64_t undecodable_deltas = 0;  // baseline lost; waited for a full
    uint64_t events_seen = 0;
    uint64_t drops_detected = 0;
    Histogram response_time{1e-4, 1.15, 120};  // seconds
    StatAccumulator snapshot_entities;  // visible entities per snapshot
    int16_t frags = 0;
    int16_t last_health = 0;
  };

  Client(vt::Platform& platform, net::VirtualNetwork& net,
         const spatial::GameMap& map, Config cfg);

  // Fiber body; returns when request_stop() has been called.
  void run();
  void request_stop();

  // Starts metric recording (harness calls this at the warmup boundary;
  // safe from scheduler callbacks on the simulated platform).
  void begin_measurement();

  bool connected() const { return connected_; }
  uint32_t player_id() const { return player_id_; }
  const Metrics& metrics() const { return metrics_; }
  const net::Snapshot& last_snapshot() const { return last_snapshot_; }

 private:
  bool do_connect();
  void drain_replies();

  vt::Platform& platform_;
  Config cfg_;
  std::unique_ptr<net::Socket> socket_;
  std::unique_ptr<net::Selector> selector_;
  std::unique_ptr<net::NetChannel> chan_;
  Bot bot_;

  // Snapshot reconstruction cache for delta decoding: entity lists of
  // recently reconstructed frames, keyed by server frame.
  std::map<uint32_t, std::vector<net::EntityUpdate>> reconstructed_;
  uint32_t latest_reconstructed_frame_ = 0;

  std::atomic<bool> stop_{false};
  bool connected_ = false;
  // Recording is on from the start; harnesses call begin_measurement()
  // at the warmup boundary to discard warmup samples.
  bool recording_ = true;
  uint32_t player_id_ = 0;
  net::Snapshot last_snapshot_;
  Metrics metrics_;
};

}  // namespace qserv::bots
