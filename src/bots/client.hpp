// A game client endpoint: connects to the server, sends one move command
// per client frame (~30 ms, as a 30 fps client would), consumes snapshot
// replies, and measures the paper's two client-side metrics — response
// rate (replies/s) and response time (request send -> reply receipt).
//
// Lifecycle hardening: the client understands the server's explicit
// reject messages (server-full stops the connect-retry loop; eviction
// triggers a reconnect), can detect a silent server and reconnect on a
// fresh port, and — for chaos workloads — can churn: crash (vanish
// without a disconnect), quit gracefully, and rejoin on a schedule drawn
// from a seeded RNG.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/bots/bot.hpp"
#include "src/net/netchan.hpp"
#include "src/net/protocol.hpp"
#include "src/net/transport.hpp"
#include "src/util/histogram.hpp"
#include "src/util/rng.hpp"

namespace qserv::bots {

class Client {
 public:
  struct Config {
    uint16_t local_port = 0;
    uint16_t server_port = 0;
    std::string name;
    vt::Duration frame_interval = vt::millis(33);
    // Connect retries run at connect_retry with +/-50% jitter drawn from
    // the lifecycle RNG, so a churn soak's reconnect waves decorrelate
    // instead of synchronizing into connect storms. On an explicit
    // kServerBusy rejection the interval additionally backs off
    // exponentially (doubling by connect_backoff up to connect_retry_max);
    // silent timeouts keep the fixed cadence so packet loss doesn't
    // stretch time-to-connect.
    vt::Duration connect_retry = vt::millis(250);
    vt::Duration connect_retry_max = vt::seconds(2);
    double connect_backoff = 2.0;
    vt::Duration initial_delay{};  // connect stagger
    Bot::Config bot;

    // --- lifecycle / churn ---
    // Reconnect (on a fresh port) when no server packet has arrived for
    // this long while connected. 0 = wait forever, the seed behavior.
    vt::Duration server_silence_timeout{};
    // Mean session length; each session lasts 0.5x..1.5x of it, then the
    // client crashes or quits. 0 = play forever (no churn).
    vt::Duration mean_session{};
    float crash_fraction = 0.5f;  // crash silently vs quit gracefully
    vt::Duration rejoin_delay = vt::millis(250);
    bool rejoin = true;  // come back after a crash/quit?
    uint64_t lifecycle_seed = 1;
    // Allocates a fresh local port for each rejoin/reconnect (a real
    // client reconnects from a new ephemeral port, which also sidesteps
    // stale netchan sequencing on both ends). Null = reuse the port.
    std::function<uint16_t()> fresh_port;
  };

  struct Metrics {
    uint64_t moves_sent = 0;
    uint64_t replies = 0;
    uint64_t full_snapshots = 0;
    uint64_t delta_snapshots = 0;
    uint64_t undecodable_deltas = 0;  // baseline lost; waited for a full
    uint64_t events_seen = 0;
    uint64_t drops_detected = 0;
    // Lifecycle counters.
    uint64_t sessions = 0;            // successful connects
    uint64_t crashes = 0;             // vanished without a disconnect
    uint64_t graceful_quits = 0;      // sent a disconnect
    uint64_t rejoins = 0;             // re-entered the connect loop
    uint64_t evictions_observed = 0;  // server said kEvicted
    uint64_t rejected_full = 0;       // server said kServerFull
    uint64_t rejected_busy = 0;       // server said kServerBusy (backoff)
    uint64_t connect_retries = 0;     // connect datagrams re-sent
    uint64_t silence_reconnects = 0;  // gave up on a silent server
    uint64_t port_collisions = 0;     // reopen_socket found the port taken
    // Longest observed gap between consecutive replies while connected —
    // the client's view of a service outage (a hot restart must keep
    // this within a few frame budgets).
    int64_t max_reply_gap_ns = 0;
    Histogram response_time{1e-4, 1.15, 120};  // seconds
    StatAccumulator snapshot_entities;  // visible entities per snapshot
    int16_t frags = 0;
    int16_t last_health = 0;
  };

  Client(vt::Platform& platform, net::Transport& net,
         const spatial::GameMap& map, Config cfg);

  // Fiber body; returns when request_stop() has been called, the server
  // rejected us as full, or a crash/quit with rejoin disabled.
  void run();
  void request_stop();

  // Starts metric recording (harness calls this at the warmup boundary;
  // safe from scheduler callbacks on the simulated platform).
  void begin_measurement();

  bool connected() const { return connected_; }
  bool rejected() const { return rejected_; }
  uint32_t player_id() const { return player_id_; }
  uint16_t local_port() const { return cfg_.local_port; }
  const Metrics& metrics() const { return metrics_; }
  const net::Snapshot& last_snapshot() const { return last_snapshot_; }

 private:
  // Why a play session ended.
  enum class SessionEnd : uint8_t {
    kStop,     // request_stop()
    kCrash,    // churn schedule: vanish without a word
    kQuit,     // churn schedule: send a disconnect
    kEvicted,  // server reaped us (kEvicted reject)
    kSilence,  // server went silent past server_silence_timeout
  };

  bool do_connect();
  SessionEnd play_session(vt::TimePoint session_end, bool crash_at_end);
  void drain_replies();
  // Rebinds to `port` (fresh socket + selector registration).
  void reopen_socket(uint16_t port);
  // Clears per-session state and opens a fresh channel to the join port.
  void reset_session_state();

  vt::Platform& platform_;
  net::Transport& net_;
  Config cfg_;
  const uint16_t join_port_;  // the server port connects always target
  std::unique_ptr<net::Socket> socket_;
  std::unique_ptr<net::Selector> selector_;
  std::unique_ptr<net::NetChannel> chan_;
  Bot bot_;
  Rng lifecycle_rng_;

  // Snapshot reconstruction cache for delta decoding: entity lists of
  // recently reconstructed frames, keyed by server frame.
  std::map<uint32_t, std::vector<net::EntityUpdate>> reconstructed_;
  uint32_t latest_reconstructed_frame_ = 0;

  std::atomic<bool> stop_{false};
  bool connected_ = false;
  bool rejected_ = false;  // server-full; stop trying
  bool evicted_ = false;   // set by drain_replies on a kEvicted reject
  vt::TimePoint last_server_packet_{};  // silence-timeout clock
  // Recording is on from the start; harnesses call begin_measurement()
  // at the warmup boundary to discard warmup samples.
  bool recording_ = true;
  vt::TimePoint last_reply_at_{};  // reply-gap clock (max_reply_gap_ns)
  uint32_t player_id_ = 0;
  net::Snapshot last_snapshot_;
  Metrics metrics_;
};

}  // namespace qserv::bots
