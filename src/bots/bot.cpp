#include "src/bots/bot.hpp"

#include <algorithm>
#include <cmath>

#include "src/sim/entity.hpp"
#include "src/util/check.hpp"

namespace qserv::bots {

namespace {

float yaw_towards(const Vec3& from, const Vec3& to) {
  return std::atan2(to.y - from.y, to.x - from.x) * 180.0f / 3.14159265f;
}

}  // namespace

Bot::Bot(const spatial::GameMap& map, Config cfg)
    : map_(map), cfg_(cfg), rng_(cfg.seed) {
  QSERV_CHECK_MSG(!map.waypoints.empty(), "bot needs a waypoint graph");
}

void Bot::pick_next_waypoint(const Vec3& from) {
  // Continue along the graph from the current target when possible so
  // bots roam across rooms instead of pacing inside one.
  if (target_waypoint_ >= 0) {
    const auto& nbrs =
        map_.waypoints[static_cast<size_t>(target_waypoint_)].neighbors;
    if (!nbrs.empty() && rng_.chance(0.8f)) {
      target_waypoint_ =
          nbrs[rng_.below(static_cast<uint64_t>(nbrs.size()))];
      return;
    }
  }
  // Otherwise restart from the waypoint nearest to us.
  int nearest = 0;
  float best = 1e30f;
  for (size_t i = 0; i < map_.waypoints.size(); ++i) {
    const float d = dist_sq(map_.waypoints[i].pos, from);
    if (d < best) {
      best = d;
      nearest = static_cast<int>(i);
    }
  }
  const auto& nbrs = map_.waypoints[static_cast<size_t>(nearest)].neighbors;
  target_waypoint_ =
      nbrs.empty() ? nearest
                   : nbrs[rng_.below(static_cast<uint64_t>(nbrs.size()))];
}

net::MoveCmd Bot::think(const net::Snapshot& last, uint32_t self_id,
                        vt::TimePoint now, uint16_t frame_msec) {
  net::MoveCmd cmd;
  cmd.sequence = ++move_sequence_;
  cmd.client_time_ns = now.ns;
  cmd.msec = frame_msec;

  const Vec3 self = last.origin;

  // Stuck detection: no progress for a second means we are grinding a
  // wall or a crowd — pick a different corridor.
  if (dist_sq(self, last_origin_) > 25.0f) {
    last_origin_ = self;
    last_progress_ = now;
  } else if ((now - last_progress_) > vt::seconds(1)) {
    target_waypoint_ = -1;
    last_progress_ = now;
  }

  if (target_waypoint_ < 0 ||
      dist_sq(map_.waypoints[static_cast<size_t>(target_waypoint_)].pos,
              self) < 80.0f * 80.0f) {
    pick_next_waypoint(self);
  }
  const Vec3 target =
      map_.waypoints[static_cast<size_t>(target_waypoint_)].pos;
  cmd.yaw_deg = yaw_towards(self, target);
  cmd.forward = sim::kMaxPlayerSpeed;

  // Engage the nearest visible enemy.
  const net::EntityUpdate* enemy = nullptr;
  float enemy_d2 = cfg_.enemy_range * cfg_.enemy_range;
  for (const auto& e : last.entities) {
    if (e.type != static_cast<uint8_t>(sim::EntityType::kPlayer)) continue;
    if (e.id == self_id || e.state == 0) continue;
    const float d2 = dist_sq(e.origin, self);
    if (d2 < enemy_d2) {
      enemy_d2 = d2;
      enemy = &e;
    }
  }
  if (enemy != nullptr) {
    // Face the enemy, strafe a little, and attack.
    cmd.yaw_deg = yaw_towards(self, enemy->origin);
    cmd.side = rng_.chance(0.5f) ? sim::kMaxPlayerSpeed * 0.5f
                                 : -sim::kMaxPlayerSpeed * 0.5f;
    cmd.forward = sim::kMaxPlayerSpeed * 0.5f;
    const float dz = enemy->origin.z - self.z;
    const float dxy = std::sqrt(std::max(1.0f, enemy_d2 - dz * dz));
    cmd.pitch_deg = -std::atan2(dz, dxy) * 180.0f / 3.14159265f;
    // Attack buttons are only pressed when the client-side cooldown
    // estimate has elapsed — a player does not hammer the trigger of a
    // cooling weapon, and the rate of long-range interactions (which
    // drive the paper's lock contention) stays realistic.
    if (now >= next_attack_ && rng_.chance(cfg_.aggression)) {
      cmd.buttons |= rng_.chance(cfg_.grenade_ratio) ? net::kButtonThrow
                                                     : net::kButtonAttack;
      next_attack_ = now + sim::kAttackCooldown;
    }
  } else if (rng_.chance(cfg_.jump_chance)) {
    cmd.buttons |= net::kButtonJump;
  }
  return cmd;
}

}  // namespace qserv::bots
