#include "src/bots/client_driver.hpp"

#include <algorithm>

#include "src/util/check.hpp"
#include "src/util/histogram.hpp"

namespace qserv::bots {

ClientDriver::ClientDriver(vt::Platform& platform, net::Transport& net,
                           const spatial::GameMap& map,
                           const core::Server& server, Config cfg)
    : ClientDriver(platform, net, map, &server, std::move(cfg)) {}

ClientDriver::ClientDriver(vt::Platform& platform, net::Transport& net,
                           const spatial::GameMap& map, Config cfg)
    : ClientDriver(platform, net, map, nullptr, std::move(cfg)) {
  QSERV_CHECK_MSG(cfg_.join_port != nullptr,
                  "server-less ClientDriver needs cfg.join_port");
}

ClientDriver::ClientDriver(vt::Platform& platform, net::Transport& net,
                           const spatial::GameMap& map,
                           const core::Server* server, Config cfg)
    : platform_(platform),
      cfg_(cfg),
      next_port_(std::make_shared<std::atomic<uint32_t>>(
          static_cast<uint32_t>(cfg.first_local_port) +
          static_cast<uint32_t>(cfg.players))) {
  Rng rng(cfg.seed);
  for (int i = 0; i < cfg.players; ++i) {
    Client::Config cc;
    cc.local_port = static_cast<uint16_t>(cfg.first_local_port + i);
    cc.server_port = cfg.join_port ? cfg.join_port(i)
                                   : server->port_for_client(i, cfg.players);
    cc.name = cfg.name_prefix + std::to_string(i);
    cc.frame_interval = cfg.frame_interval;
    cc.initial_delay = cfg.connect_stagger * static_cast<int64_t>(i);
    cc.bot.seed = rng.next_u64();
    cc.bot.aggression = cfg.aggression;
    cc.bot.grenade_ratio = cfg.grenade_ratio;
    cc.server_silence_timeout = cfg.server_silence_timeout;
    cc.lifecycle_seed = rng.next_u64();
    if (cfg.churn.enabled) {
      cc.mean_session = cfg.churn.mean_session;
      cc.crash_fraction = cfg.churn.crash_fraction;
      cc.rejoin_delay = cfg.churn.rejoin_delay;
      cc.rejoin = cfg.churn.rejoin;
    }
    // Rejoins and reconnects come from a fresh ephemeral port, allocated
    // past the initial port block so it can never collide.
    cc.fresh_port = [alloc = next_port_] {
      return static_cast<uint16_t>(alloc->fetch_add(1));
    };
    clients_.push_back(std::make_unique<Client>(platform, net, map, cc));
  }
}

void ClientDriver::start() {
  for (size_t i = 0; i < clients_.size(); ++i) {
    platform_.spawn("client-" + std::to_string(i), vt::Domain::kClientFarm,
                    [c = clients_[i].get()] { c->run(); });
  }
}

void ClientDriver::request_stop() {
  for (auto& c : clients_) c->request_stop();
}

void ClientDriver::begin_measurement() {
  for (auto& c : clients_) c->begin_measurement();
}

ClientDriver::Aggregate ClientDriver::aggregate(vt::Duration window) const {
  Aggregate out;
  Histogram rt(1e-4, 1.15, 120);
  StatAccumulator vis;
  for (const auto& c : clients_) {
    const auto& m = c->metrics();
    vis.merge(m.snapshot_entities);
    out.replies += m.replies;
    out.moves_sent += m.moves_sent;
    out.drops_detected += m.drops_detected;
    out.connected += c->connected() ? 1 : 0;
    out.total_frags += m.frags;
    out.sessions += m.sessions;
    out.crashes += m.crashes;
    out.graceful_quits += m.graceful_quits;
    out.rejoins += m.rejoins;
    out.evictions_observed += m.evictions_observed;
    out.rejected_full += m.rejected_full;
    out.rejected_busy += m.rejected_busy;
    out.connect_retries += m.connect_retries;
    out.silence_reconnects += m.silence_reconnects;
    out.port_collisions += m.port_collisions;
    out.max_reply_gap_ns = std::max(out.max_reply_gap_ns, m.max_reply_gap_ns);
    rt.merge(m.response_time);
  }
  if (window.ns > 0)
    out.response_rate = static_cast<double>(out.replies) / window.seconds();
  out.response_ms_mean = rt.stats().mean() * 1e3;
  out.response_ms_p50 = rt.percentile(50) * 1e3;
  out.response_ms_p95 = rt.percentile(95) * 1e3;
  out.snapshot_entities_mean = vis.mean();
  return out;
}

}  // namespace qserv::bots
