#include "src/bots/client.hpp"

#include "src/util/check.hpp"

namespace qserv::bots {

Client::Client(vt::Platform& platform, net::VirtualNetwork& net,
               const spatial::GameMap& map, Config cfg)
    : platform_(platform),
      cfg_(cfg),
      socket_(net.open(cfg.local_port)),
      selector_(std::make_unique<net::Selector>(platform)),
      bot_(map, cfg.bot) {
  selector_->add(*socket_);
  chan_ = std::make_unique<net::NetChannel>(*socket_, cfg.server_port);
}

void Client::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  selector_->poke();
}

void Client::begin_measurement() {
  recording_ = true;
  metrics_ = Metrics{};
}

bool Client::do_connect() {
  while (!stop_.load(std::memory_order_relaxed)) {
    chan_->send(net::encode(net::ConnectMsg{cfg_.name}));
    const vt::TimePoint deadline = platform_.now() + cfg_.connect_retry;
    while (selector_->wait_until(deadline)) {
      net::Datagram d;
      if (!socket_->try_recv(d)) continue;
      net::NetChannel::Incoming info;
      net::ByteReader body(nullptr, 0);
      if (!chan_->accept(d, info, body)) continue;
      net::ServerMsgType type;
      if (!net::decode_server_type(body, type) ||
          type != net::ServerMsgType::kConnectAck)
        continue;
      net::ConnectAck ack;
      if (!decode(body, ack)) continue;
      player_id_ = ack.player_id;
      last_snapshot_.origin = ack.spawn_origin;
      if (ack.assigned_port != 0 && ack.assigned_port != cfg_.server_port) {
        // Region-based assignment put us on another thread's port.
        cfg_.server_port = ack.assigned_port;
        chan_->set_remote(ack.assigned_port);
      }
      connected_ = true;
      return true;
    }
  }
  return false;
}

void Client::drain_replies() {
  net::Datagram d;
  while (socket_->try_recv(d)) {
    net::NetChannel::Incoming info;
    net::ByteReader body(nullptr, 0);
    if (!chan_->accept(d, info, body) || info.duplicate_or_old) continue;
    net::ServerMsgType type;
    if (!net::decode_server_type(body, type)) continue;
    net::Snapshot snap;
    if (type == net::ServerMsgType::kSnapshot) {
      if (!decode(body, snap)) continue;
      if (recording_) ++metrics_.full_snapshots;
    } else if (type == net::ServerMsgType::kDeltaSnapshot) {
      const auto lookup =
          [this](uint32_t frame) -> const std::vector<net::EntityUpdate>* {
        const auto it = reconstructed_.find(frame);
        return it == reconstructed_.end() ? nullptr : &it->second;
      };
      if (!net::decode_delta(body, lookup, snap)) {
        // Baseline lost (or corrupt packet): skip and keep advertising
        // our last good frame; the server falls back to a full snapshot.
        if (recording_) ++metrics_.undecodable_deltas;
        continue;
      }
      if (recording_) ++metrics_.delta_snapshots;
    } else {
      continue;
    }
    // Cache the reconstructed entity list for future delta baselines.
    reconstructed_[snap.server_frame] = snap.entities;
    latest_reconstructed_frame_ =
        std::max(latest_reconstructed_frame_, snap.server_frame);
    while (reconstructed_.size() > 16) reconstructed_.erase(reconstructed_.begin());
    if (snap.assigned_port != 0 && snap.assigned_port != cfg_.server_port) {
      // Dynamic reassignment: future moves go to our new thread's port.
      cfg_.server_port = snap.assigned_port;
      chan_->set_remote(snap.assigned_port);
    }
    last_snapshot_ = snap;
    if (recording_) {
      ++metrics_.replies;
      metrics_.snapshot_entities.add(static_cast<double>(snap.entities.size()));
      metrics_.events_seen += snap.events.size();
      metrics_.drops_detected += info.dropped_before;
      metrics_.frags = snap.frags;
      metrics_.last_health = snap.health;
      if (snap.client_time_echo_ns > 0) {
        const double rt =
            static_cast<double>(platform_.now().ns - snap.client_time_echo_ns) *
            1e-9;
        if (rt >= 0.0) metrics_.response_time.add(rt);
      }
    }
  }
}

void Client::run() {
  if (cfg_.initial_delay.ns > 0) platform_.sleep_for(cfg_.initial_delay);
  if (!do_connect()) return;

  vt::TimePoint next_tick = platform_.now();
  while (!stop_.load(std::memory_order_relaxed)) {
    // A 30 fps client only processes replies at its frame boundary, so
    // response time includes the wait for the next client frame — as it
    // does for the paper's automatic players.
    platform_.sleep_until(next_tick);
    drain_replies();
    if (stop_.load(std::memory_order_relaxed)) break;
    next_tick += cfg_.frame_interval;

    // One move command per client frame, like a 30 fps client.
    net::MoveCmd cmd = bot_.think(last_snapshot_, player_id_,
                                  platform_.now(),
                                  static_cast<uint16_t>(
                                      cfg_.frame_interval.ns / 1000000));
    cmd.baseline_frame = latest_reconstructed_frame_;
    chan_->send(net::encode(cmd));
    if (recording_) ++metrics_.moves_sent;
  }
  chan_->send(net::encode_disconnect());
}

}  // namespace qserv::bots
