#include "src/bots/client.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace qserv::bots {

Client::Client(vt::Platform& platform, net::Transport& net,
               const spatial::GameMap& map, Config cfg)
    : platform_(platform),
      net_(net),
      cfg_(cfg),
      join_port_(cfg.server_port),
      socket_(net.open(cfg.local_port)),
      selector_(net.make_selector()),
      bot_(map, cfg.bot),
      lifecycle_rng_(cfg.lifecycle_seed) {
  selector_->add(*socket_);
  chan_ = std::make_unique<net::NetChannel>(*socket_, cfg.server_port);
}

void Client::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  selector_->poke();
}

void Client::begin_measurement() {
  recording_ = true;
  metrics_ = Metrics{};
  last_reply_at_ = {};  // gaps spanning the warmup boundary don't count
}

void Client::reopen_socket(uint16_t port) {
  selector_->remove(*socket_);
  socket_.reset();  // frees the old port before binding the new one
  // The fresh port can collide — with another churning client that drew
  // the same ephemeral port, or (real transport) with a socket the OS
  // still holds. Probe with the typed open and walk to the next
  // candidate instead of aborting the whole client.
  std::unique_ptr<net::Socket> sock;
  for (int attempt = 0; attempt < 1024; ++attempt) {
    net::OpenError err = net::OpenError::kNone;
    sock = net_.try_open(port, &err);
    if (sock != nullptr) break;
    if (recording_) ++metrics_.port_collisions;
    port = cfg_.fresh_port ? cfg_.fresh_port()
                           : static_cast<uint16_t>(port + 1);
  }
  QSERV_CHECK_MSG(sock != nullptr, "client found no free local port");
  socket_ = std::move(sock);
  selector_->add(*socket_);
  cfg_.local_port = port;
}

void Client::reset_session_state() {
  connected_ = false;
  evicted_ = false;
  player_id_ = 0;
  last_snapshot_ = net::Snapshot{};
  reconstructed_.clear();
  latest_reconstructed_frame_ = 0;
  // A fresh channel to the original join port: the server allocates a
  // new slot (we come from a new port), so both ends start at sequence 0.
  cfg_.server_port = join_port_;
  chan_ = std::make_unique<net::NetChannel>(*socket_, join_port_);
}

bool Client::do_connect() {
  // Retry with jitter: the actual wait is 0.5x..1.5x of the base so
  // simultaneous rejoiners (a churn wave, a server restart) fan out
  // instead of retrying in lockstep. The base grows exponentially (up to
  // connect_retry_max) only on explicit kServerBusy rejections — the
  // server is up but refusing load, so hammering it is counterproductive.
  // Silent timeouts (loss, partition) keep the fixed cadence: under heavy
  // loss each attempt is an independent trial and backing off would just
  // stretch the time to connect.
  vt::Duration base = cfg_.connect_retry;
  bool first_attempt = true;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!first_attempt && recording_) ++metrics_.connect_retries;
    first_attempt = false;
    chan_->send(net::encode(net::ConnectMsg{cfg_.name}));
    const vt::Duration wait = base * (0.5 + lifecycle_rng_.uniform());
    const vt::TimePoint deadline = platform_.now() + wait;
    bool backoff = false;
    while (selector_->wait_until(deadline)) {
      net::Datagram d;
      if (!socket_->try_recv(d)) continue;
      net::NetChannel::Incoming info;
      net::ByteReader body(nullptr, 0);
      if (!chan_->accept(d, info, body)) continue;
      net::ServerMsgType type;
      if (!net::decode_server_type(body, type)) continue;
      if (type == net::ServerMsgType::kReject) {
        net::RejectMsg rej;
        if (decode(body, rej)) {
          if (rej.reason == net::RejectReason::kServerFull) {
            // The server is full and said so: stop hammering the port.
            if (recording_) ++metrics_.rejected_full;
            rejected_ = true;
            return false;
          }
          if (rej.reason == net::RejectReason::kServerBusy) {
            // Admission control turned us away: wait out the backoff
            // window before the next attempt instead of resending
            // immediately.
            if (recording_) ++metrics_.rejected_busy;
            backoff = true;
            break;
          }
        }
        continue;  // a stale eviction notice from a previous session
      }
      if (type != net::ServerMsgType::kConnectAck) continue;
      net::ConnectAck ack;
      if (!decode(body, ack)) continue;
      player_id_ = ack.player_id;
      last_snapshot_.origin = ack.spawn_origin;
      if (ack.assigned_port != 0 && ack.assigned_port != cfg_.server_port) {
        // Region-based assignment put us on another thread's port.
        cfg_.server_port = ack.assigned_port;
        chan_->set_remote(ack.assigned_port);
      }
      connected_ = true;
      last_server_packet_ = platform_.now();
      return true;
    }
    if (backoff) {
      platform_.sleep_until(deadline);
      base = base * cfg_.connect_backoff;
      if (cfg_.connect_retry_max.ns > 0 && base > cfg_.connect_retry_max)
        base = cfg_.connect_retry_max;
    } else {
      base = cfg_.connect_retry;
    }
  }
  return false;
}

void Client::drain_replies() {
  net::Datagram d;
  while (socket_->try_recv(d)) {
    net::NetChannel::Incoming info;
    net::ByteReader body(nullptr, 0);
    if (!chan_->accept(d, info, body) || info.duplicate_or_old) continue;
    net::ServerMsgType type;
    if (!net::decode_server_type(body, type)) continue;
    last_server_packet_ = platform_.now();
    net::Snapshot snap;
    if (type == net::ServerMsgType::kSnapshot) {
      if (!decode(body, snap)) continue;
      if (recording_) ++metrics_.full_snapshots;
    } else if (type == net::ServerMsgType::kDeltaSnapshot) {
      const auto lookup =
          [this](uint32_t frame) -> const std::vector<net::EntityUpdate>* {
        const auto it = reconstructed_.find(frame);
        return it == reconstructed_.end() ? nullptr : &it->second;
      };
      if (!net::decode_delta(body, lookup, snap)) {
        // Baseline lost (or corrupt packet): skip and keep advertising
        // our last good frame; the server falls back to a full snapshot.
        if (recording_) ++metrics_.undecodable_deltas;
        continue;
      }
      if (recording_) ++metrics_.delta_snapshots;
    } else if (type == net::ServerMsgType::kReject) {
      net::RejectMsg rej;
      if (decode(body, rej)) {
        if (rej.reason == net::RejectReason::kEvicted) {
          // The server reaped us (we looked dead to it). Re-enter the
          // connect loop instead of replaying moves into a void.
          if (recording_) ++metrics_.evictions_observed;
          evicted_ = true;
        } else if (rej.reason == net::RejectReason::kServerBusy) {
          // Shed by the governor's last-resort rung: our slot is gone.
          // End the session and re-enter the connect loop, where the
          // backoff (and the server's admission control) pace our return.
          if (recording_) ++metrics_.rejected_busy;
          evicted_ = true;
        }
      }
      continue;
    } else {
      continue;
    }
    // Cache the reconstructed entity list for future delta baselines.
    reconstructed_[snap.server_frame] = snap.entities;
    latest_reconstructed_frame_ =
        std::max(latest_reconstructed_frame_, snap.server_frame);
    while (reconstructed_.size() > 16) reconstructed_.erase(reconstructed_.begin());
    if (snap.assigned_port != 0 && snap.assigned_port != cfg_.server_port) {
      // Dynamic reassignment: future moves go to our new thread's port.
      cfg_.server_port = snap.assigned_port;
      chan_->set_remote(snap.assigned_port);
    }
    last_snapshot_ = snap;
    if (recording_) {
      ++metrics_.replies;
      // Reply-gap watermark: the client's view of service continuity.
      // Only gaps between consecutive replies within one recording
      // window count (the first reply after begin_measurement seeds the
      // clock).
      const vt::TimePoint reply_at = platform_.now();
      if (last_reply_at_.ns > 0 && reply_at > last_reply_at_) {
        metrics_.max_reply_gap_ns = std::max(
            metrics_.max_reply_gap_ns, (reply_at - last_reply_at_).ns);
      }
      last_reply_at_ = reply_at;
      metrics_.snapshot_entities.add(static_cast<double>(snap.entities.size()));
      metrics_.events_seen += snap.events.size();
      metrics_.drops_detected += info.dropped_before;
      metrics_.frags = snap.frags;
      metrics_.last_health = snap.health;
      if (snap.client_time_echo_ns > 0) {
        const double rt =
            static_cast<double>(platform_.now().ns - snap.client_time_echo_ns) *
            1e-9;
        if (rt >= 0.0) metrics_.response_time.add(rt);
      }
    }
  }
}

Client::SessionEnd Client::play_session(vt::TimePoint session_end,
                                        bool crash_at_end) {
  vt::TimePoint next_tick = platform_.now();
  while (!stop_.load(std::memory_order_relaxed)) {
    // A 30 fps client only processes replies at its frame boundary, so
    // response time includes the wait for the next client frame — as it
    // does for the paper's automatic players.
    platform_.sleep_until(next_tick);
    drain_replies();
    if (stop_.load(std::memory_order_relaxed)) break;
    if (evicted_) return SessionEnd::kEvicted;
    const vt::TimePoint now = platform_.now();
    if (session_end.ns > 0 && now >= session_end) {
      return crash_at_end ? SessionEnd::kCrash : SessionEnd::kQuit;
    }
    if (cfg_.server_silence_timeout.ns > 0 &&
        now - last_server_packet_ >= cfg_.server_silence_timeout) {
      return SessionEnd::kSilence;
    }
    next_tick += cfg_.frame_interval;

    // One move command per client frame, like a 30 fps client.
    net::MoveCmd cmd = bot_.think(last_snapshot_, player_id_,
                                  platform_.now(),
                                  static_cast<uint16_t>(
                                      cfg_.frame_interval.ns / 1000000));
    cmd.baseline_frame = latest_reconstructed_frame_;
    chan_->send(net::encode(cmd));
    if (recording_) ++metrics_.moves_sent;
  }
  return SessionEnd::kStop;
}

void Client::run() {
  if (cfg_.initial_delay.ns > 0) platform_.sleep_for(cfg_.initial_delay);

  bool first_session = true;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!first_session && recording_) ++metrics_.rejoins;
    if (!do_connect()) break;  // stopped, or rejected as server-full
    if (recording_) ++metrics_.sessions;
    first_session = false;

    // Draw this session's churn plan: how long to stay, and whether to
    // leave by crashing or by saying goodbye.
    vt::TimePoint session_end{};  // 0 = unbounded
    bool crash_at_end = false;
    if (cfg_.mean_session.ns > 0) {
      session_end = platform_.now() +
                    cfg_.mean_session * (0.5 + lifecycle_rng_.uniform());
      crash_at_end = lifecycle_rng_.chance(cfg_.crash_fraction);
    }

    const SessionEnd end = play_session(session_end, crash_at_end);
    bool churned = false;
    switch (end) {
      case SessionEnd::kStop:
        // connected_ stays set: "was connected when the run ended", which
        // is what harnesses read after the platform stops.
        chan_->send(net::encode_disconnect());
        return;
      case SessionEnd::kCrash:
        // Vanish: no disconnect, the server must time us out.
        if (recording_) ++metrics_.crashes;
        churned = true;
        break;
      case SessionEnd::kQuit:
        chan_->send(net::encode_disconnect());
        if (recording_) ++metrics_.graceful_quits;
        churned = true;
        break;
      case SessionEnd::kEvicted:
        break;  // counted in drain_replies; reconnect immediately
      case SessionEnd::kSilence:
        if (recording_) ++metrics_.silence_reconnects;
        break;
    }
    connected_ = false;
    // Eviction and silence always re-enter the connect loop (lifecycle
    // hardening); scheduled churn honors the rejoin setting.
    if (churned) {
      if (!cfg_.rejoin) break;
      if (cfg_.rejoin_delay.ns > 0) platform_.sleep_for(cfg_.rejoin_delay);
      if (stop_.load(std::memory_order_relaxed)) break;
    }
    if (cfg_.fresh_port) reopen_socket(cfg_.fresh_port());
    reset_session_state();
  }
}

}  // namespace qserv::bots
