// Generational slot map: stable 32+32-bit handles to densely stored
// objects. Entities are referenced by handle throughout the server so that
// a stale reference (to a removed/respawned entity) is detected rather
// than silently aliased.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/check.hpp"

namespace qserv {

struct Handle {
  uint32_t index = UINT32_MAX;
  uint32_t generation = 0;

  constexpr bool operator==(const Handle&) const = default;
  constexpr bool is_null() const { return index == UINT32_MAX; }
  static constexpr Handle null() { return {}; }
  // Stable total order; useful for canonical processing sequences.
  constexpr bool operator<(const Handle& o) const {
    return index != o.index ? index < o.index : generation < o.generation;
  }
};

template <typename T>
class SlotMap {
 public:
  Handle insert(T value) {
    uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[index];
    s.value = std::move(value);
    s.live = true;
    ++size_;
    return Handle{index, s.generation};
  }

  bool contains(Handle h) const {
    return h.index < slots_.size() && slots_[h.index].live &&
           slots_[h.index].generation == h.generation;
  }

  T& operator[](Handle h) {
    QSERV_CHECK_MSG(contains(h), "stale or null slot-map handle");
    return slots_[h.index].value;
  }

  const T& operator[](Handle h) const {
    QSERV_CHECK_MSG(contains(h), "stale or null slot-map handle");
    return slots_[h.index].value;
  }

  T* try_get(Handle h) {
    return contains(h) ? &slots_[h.index].value : nullptr;
  }
  const T* try_get(Handle h) const {
    return contains(h) ? &slots_[h.index].value : nullptr;
  }

  void erase(Handle h) {
    QSERV_CHECK_MSG(contains(h), "erasing stale slot-map handle");
    Slot& s = slots_[h.index];
    s.live = false;
    ++s.generation;
    s.value = T{};
    free_.push_back(h.index);
    --size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Iterates live elements in index order (deterministic).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].live) fn(Handle{i, slots_[i].generation}, slots_[i].value);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].live) fn(Handle{i, slots_[i].generation}, slots_[i].value);
    }
  }

 private:
  struct Slot {
    T value{};
    uint32_t generation = 0;
    bool live = false;
  };

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;
  size_t size_ = 0;
};

}  // namespace qserv
