#include "src/util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace qserv {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::render() const {
  // Column widths over header + rows.
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto line = [&](char fill, char sep) {
    std::string out = "+";
    (void)sep;
    for (size_t i = 0; i < ncols; ++i) {
      out.append(width[i] + 2, fill);
      out += '+';
    }
    out += '\n';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      out += ' ';
      out += c;
      out.append(width[i] - c.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
    return out;
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += line('-', '+');
  if (!header_.empty()) {
    out += emit(header_);
    out += line('=', '+');
  }
  for (const auto& r : rows_) out += emit(r);
  out += line('-', '+');
  return out;
}

std::string Table::csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) out += ',';
      out += escape(cells[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace qserv
