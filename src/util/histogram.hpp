// Statistics accumulators used by the instrumentation layer: streaming
// mean/variance (Welford), min/max, and a log-bucketed histogram with
// percentile queries. All values are doubles; callers convert times to
// seconds or counts as appropriate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qserv {

// Streaming scalar statistics. O(1) memory.
class StatAccumulator {
 public:
  void add(double x);
  void merge(const StatAccumulator& o);
  void reset();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  std::string summary(const char* unit = "") const;

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Log-bucketed histogram over (0, +inf); values <= 0 land in bucket 0.
// Buckets are powers of `base` starting at `smallest`. Percentiles are
// linearly interpolated within a bucket, which is accurate enough for
// latency reporting.
class Histogram {
 public:
  explicit Histogram(double smallest = 1e-6, double base = 1.25,
                     int buckets = 160);

  void add(double x);
  void merge(const Histogram& o);
  void reset();

  uint64_t count() const { return total_; }
  double percentile(double p) const;  // p in [0, 100]
  double median() const { return percentile(50.0); }

  const StatAccumulator& stats() const { return stats_; }

 private:
  int bucket_for(double x) const;
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;

  double smallest_;
  double log_base_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  StatAccumulator stats_;
};

}  // namespace qserv
