// 3-component float vector math, in the style of Quake's vec3_t but with
// value semantics. Floats (not doubles) match the original engine and are
// deterministic for a fixed binary, which the virtual-time platform relies
// on.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace qserv {

struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

  constexpr float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  float& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(float s) { x *= s; y *= s; z *= s; return *this; }

  constexpr bool operator==(const Vec3& o) const { return x == o.x && y == o.y && z == o.z; }
  constexpr bool operator!=(const Vec3& o) const { return !(*this == o); }

  constexpr float dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  float length() const { return std::sqrt(dot(*this)); }
  constexpr float length_sq() const { return dot(*this); }

  // Returns the zero vector when the input has zero length.
  Vec3 normalized() const {
    const float len = length();
    return len > 0.0f ? *this * (1.0f / len) : Vec3{};
  }

  std::string str() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "(%.2f %.2f %.2f)", double(x), double(y), double(z));
    return buf;
  }
};

constexpr Vec3 operator*(float s, const Vec3& v) { return v * s; }

constexpr Vec3 lerp(const Vec3& a, const Vec3& b, float t) {
  return a + (b - a) * t;
}

constexpr Vec3 min3(const Vec3& a, const Vec3& b) {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}

constexpr Vec3 max3(const Vec3& a, const Vec3& b) {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}

inline float dist(const Vec3& a, const Vec3& b) { return (a - b).length(); }
constexpr float dist_sq(const Vec3& a, const Vec3& b) { return (a - b).length_sq(); }

// Builds forward/right/up basis vectors from yaw and pitch angles (degrees),
// matching the Quake convention: yaw rotates around +z, pitch tilts forward.
struct ViewAngles {
  float yaw_deg = 0.0f;
  float pitch_deg = 0.0f;

  Vec3 forward() const {
    const float yaw = yaw_deg * 3.14159265358979f / 180.0f;
    const float pitch = pitch_deg * 3.14159265358979f / 180.0f;
    const float cp = std::cos(pitch);
    return {std::cos(yaw) * cp, std::sin(yaw) * cp, -std::sin(pitch)};
  }
  Vec3 right() const {
    const float yaw = yaw_deg * 3.14159265358979f / 180.0f;
    return {std::sin(yaw), -std::cos(yaw), 0.0f};
  }
};

}  // namespace qserv
