#include "src/util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/check.hpp"

namespace qserv {

void StatAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / double(count_);
  m2_ += delta * (x - mean_);
}

void StatAccumulator::merge(const StatAccumulator& o) {
  if (o.count_ == 0) return;
  if (count_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const uint64_t n = count_ + o.count_;
  m2_ += o.m2_ + delta * delta * double(count_) * double(o.count_) / double(n);
  mean_ = (mean_ * double(count_) + o.mean_ * double(o.count_)) / double(n);
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  count_ = n;
}

void StatAccumulator::reset() { *this = StatAccumulator{}; }

double StatAccumulator::variance() const {
  return count_ ? m2_ / double(count_) : 0.0;
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

std::string StatAccumulator::summary(const char* unit) const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.4g%s sd=%.4g min=%.4g max=%.4g",
                static_cast<unsigned long long>(count_), mean(), unit,
                stddev(), min(), max());
  return buf;
}

Histogram::Histogram(double smallest, double base, int buckets)
    : smallest_(smallest), log_base_(std::log(base)) {
  QSERV_CHECK(smallest > 0.0 && base > 1.0 && buckets > 1);
  counts_.assign(static_cast<size_t>(buckets), 0);
}

int Histogram::bucket_for(double x) const {
  if (x <= smallest_) return 0;
  const int i = 1 + static_cast<int>(std::log(x / smallest_) / log_base_);
  return std::min(i, static_cast<int>(counts_.size()) - 1);
}

double Histogram::bucket_lo(int i) const {
  return i == 0 ? 0.0 : smallest_ * std::exp(log_base_ * (i - 1));
}

double Histogram::bucket_hi(int i) const {
  return smallest_ * std::exp(log_base_ * i);
}

void Histogram::add(double x) {
  ++counts_[static_cast<size_t>(bucket_for(x))];
  ++total_;
  stats_.add(x);
}

void Histogram::merge(const Histogram& o) {
  QSERV_CHECK(counts_.size() == o.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  total_ += o.total_;
  stats_.merge(o.stats_);
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  stats_.reset();
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * double(total_);
  double seen = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = seen + double(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] ? (target - seen) / double(counts_[i]) : 0.0;
      const int bi = static_cast<int>(i);
      return bucket_lo(bi) + frac * (bucket_hi(bi) - bucket_lo(bi));
    }
    seen = next;
  }
  return stats_.max();
}

}  // namespace qserv
