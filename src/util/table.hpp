// Aligned text tables and CSV emission for the benchmark harness. Every
// bench binary prints the same rows the paper's figures plot, so output
// formatting lives in one place.
#pragma once

#include <string>
#include <vector>

namespace qserv {

class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  // Renders an aligned, boxed ASCII table.
  std::string render() const;
  // Renders the same data as CSV (header row + data rows).
  std::string csv() const;

  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qserv
