// Axis-aligned bounding boxes. Quake represents every entity and every
// region of interest as an AABB (mins/maxs); the areanode tree, the lock
// manager, and collision queries all operate on this type.
#pragma once

#include "src/util/check.hpp"
#include "src/util/vec.hpp"

namespace qserv {

struct Aabb {
  Vec3 mins;
  Vec3 maxs;

  constexpr Aabb() = default;
  constexpr Aabb(const Vec3& mn, const Vec3& mx) : mins(mn), maxs(mx) {}

  // Box centred at `origin` carrying entity-local bounds.
  static constexpr Aabb at(const Vec3& origin, const Vec3& local_mins,
                           const Vec3& local_maxs) {
    return {origin + local_mins, origin + local_maxs};
  }

  constexpr bool valid() const {
    return mins.x <= maxs.x && mins.y <= maxs.y && mins.z <= maxs.z;
  }

  constexpr Vec3 center() const { return (mins + maxs) * 0.5f; }
  constexpr Vec3 size() const { return maxs - mins; }
  constexpr float volume() const {
    const Vec3 s = size();
    return s.x * s.y * s.z;
  }

  // Closed-interval overlap test (touching boxes intersect), matching
  // Quake's SV_AreaEdicts semantics.
  constexpr bool intersects(const Aabb& o) const {
    return mins.x <= o.maxs.x && maxs.x >= o.mins.x &&
           mins.y <= o.maxs.y && maxs.y >= o.mins.y &&
           mins.z <= o.maxs.z && maxs.z >= o.mins.z;
  }

  constexpr bool contains(const Vec3& p) const {
    return p.x >= mins.x && p.x <= maxs.x && p.y >= mins.y && p.y <= maxs.y &&
           p.z >= mins.z && p.z <= maxs.z;
  }

  constexpr bool contains(const Aabb& o) const {
    return o.mins.x >= mins.x && o.maxs.x <= maxs.x && o.mins.y >= mins.y &&
           o.maxs.y <= maxs.y && o.mins.z >= mins.z && o.maxs.z <= maxs.z;
  }

  // Smallest box containing both inputs.
  constexpr Aabb unioned(const Aabb& o) const {
    return {min3(mins, o.mins), max3(maxs, o.maxs)};
  }

  // Box grown outwards by `amount` on every axis (expanded-bbox locking).
  constexpr Aabb expanded(float amount) const {
    const Vec3 d{amount, amount, amount};
    return {mins - d, maxs + d};
  }

  constexpr Aabb expanded(const Vec3& d) const { return {mins - d, maxs + d}; }

  // Bounds swept by moving this box from its position by `delta`.
  constexpr Aabb swept(const Vec3& delta) const {
    return unioned({mins + delta, maxs + delta});
  }

  // Clips this box to `limit`; result may be inverted if disjoint.
  constexpr Aabb clipped(const Aabb& limit) const {
    return {max3(mins, limit.mins), min3(maxs, limit.maxs)};
  }
};

// Bounding box for a directional lock: extends the player box from its
// position to the world boundary along `dir` (§4.3 of the paper). The
// region covers everything the simulated object could reach in that
// direction, padded laterally by `lateral_pad`.
inline Aabb directional_bounds(const Aabb& start, const Vec3& dir,
                               const Aabb& world, float lateral_pad) {
  QSERV_DCHECK(world.valid());
  Aabb out = start.expanded(lateral_pad);
  for (int axis = 0; axis < 3; ++axis) {
    if (dir[axis] > 1e-6f) {
      out.maxs[axis] = world.maxs[axis];
    } else if (dir[axis] < -1e-6f) {
      out.mins[axis] = world.mins[axis];
    }
  }
  return out.clipped(world);
}

}  // namespace qserv
