// Deterministic pseudo-random number generation (SplitMix64 seeding +
// xoshiro256**). Every stochastic component (bots, network jitter, map
// generation) owns its own Rng derived from the experiment seed, so results
// are reproducible bit-for-bit and components can be re-seeded
// independently.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/check.hpp"
#include "src/util/vec.hpp"

namespace qserv {

// Named RNG streams. Every component that needs randomness derives its
// seed as derive_seed(root_seed, streams::kX) instead of ad-hoc arithmetic
// (seed*31+5 and friends), so the full tree of seeds is auditable and two
// components can never collide by accident.
namespace streams {
inline constexpr uint64_t kNetwork = 1;       // VirtualNetwork latency/jitter
inline constexpr uint64_t kClientDriver = 2;  // bot/lifecycle seeds
inline constexpr uint64_t kFaults = 3;        // chaos fault scheduler
inline constexpr uint64_t kWorld = 4;         // world RNG (spawn points)
inline constexpr uint64_t kRespawn = 5;       // per-death respawn placement
// Shard i's engine derives its root as derive_seed(seed, kShardBase + i),
// so sibling engines in one process never share a stream.
inline constexpr uint64_t kShardBase = 16;
}  // namespace streams

// SplitMix64-mixes (root, stream) into an independent child seed.
constexpr uint64_t derive_seed(uint64_t root, uint64_t stream) {
  uint64_t z = root + stream * 0x9e3779b97f4a7c15ull + 0xd1342543de82ef95ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  // Derives an independent stream; `stream` distinguishes consumers.
  Rng fork(uint64_t stream) const {
    Rng out(state_[0] ^ (stream * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull));
    return out;
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  // Uniform in [0, n). n must be > 0.
  uint64_t below(uint64_t n) {
    QSERV_DCHECK(n > 0);
    // Multiply-shift; bias is negligible for our n (≪ 2^32).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    QSERV_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform float in [0, 1).
  float uniform() { return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f; }

  float uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

  // True with probability p.
  bool chance(float p) { return uniform() < p; }

  // Approximately normal via sum of uniforms (Irwin-Hall, k=4); adequate
  // for jitter models and far cheaper than Box-Muller.
  float normalish(float mean, float stddev) {
    const float s = uniform() + uniform() + uniform() + uniform();
    return mean + (s - 2.0f) * 1.732f * stddev;
  }

  Vec3 point_in(const Vec3& mins, const Vec3& maxs) {
    return {uniform(mins.x, maxs.x), uniform(mins.y, maxs.y),
            uniform(mins.z, maxs.z)};
  }

  // Exact generator state, for checkpoint/restore: a restored Rng
  // continues the original's sequence bit-for-bit.
  std::array<uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<size_t>(i)];
  }

 private:
  static constexpr uint64_t rotl(uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  uint64_t state_[4] = {};
};

}  // namespace qserv
