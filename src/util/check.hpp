// Lightweight always-on assertion macros.
//
// QSERV_CHECK aborts with a message on violation in all build types; it
// guards invariants whose violation would make simulation results silently
// wrong (a much worse outcome for a measurement system than a crash).
// QSERV_DCHECK compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace qserv {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "QSERV_CHECK failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace qserv

#define QSERV_CHECK(expr)                                          \
  do {                                                             \
    if (!(expr)) ::qserv::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define QSERV_CHECK_MSG(expr, msg)                                  \
  do {                                                              \
    if (!(expr)) ::qserv::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define QSERV_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define QSERV_DCHECK(expr) QSERV_CHECK(expr)
#endif
