#include "src/harness/shard_experiment.hpp"

#include <chrono>
#include <memory>

#include "src/harness/experiment.hpp"
#include "src/obs/fleet.hpp"
#include "src/recovery/journal.hpp"
#include "src/util/rng.hpp"

namespace qserv::harness {

ShardExperimentResult run_shard_experiment(const ShardExperimentConfig& cfg) {
  const auto host_t0 = std::chrono::steady_clock::now();

  vt::SimPlatform platform(cfg.machine);
  net::VirtualNetwork::Config net_cfg;
  net_cfg.seed = derive_seed(cfg.seed, streams::kNetwork);
  net_cfg.deterministic_flows = cfg.deterministic_flows;
  net::VirtualNetwork network(platform, net_cfg);
  if (cfg.configure_network) cfg.configure_network(network);

  std::shared_ptr<const spatial::GameMap> map =
      cfg.map != nullptr ? cfg.map : default_map();

  shard::Config fleet = cfg.fleet;
  fleet.seed = cfg.seed;
  shard::ShardManager mgr(platform, network, *map, fleet);
  if (cfg.fleet_obs != nullptr) cfg.fleet_obs->attach(mgr);

  bots::ClientDriver::Config dcfg;
  dcfg.players = cfg.players;
  dcfg.frame_interval = cfg.client_frame;
  dcfg.seed = derive_seed(cfg.seed, streams::kClientDriver);
  dcfg.aggression = cfg.bot_aggression;
  dcfg.grenade_ratio = cfg.bot_grenade_ratio;
  dcfg.server_silence_timeout = cfg.client_silence_timeout;
  dcfg.churn = cfg.churn;
  dcfg.join_port = [&mgr, players = cfg.players](int i) {
    return mgr.join_port(i, players);
  };
  // The driver only consults the server argument when join_port is unset;
  // shard 0's engine stands in.
  bots::ClientDriver driver(platform, network, *map, *mgr.shard(0).server(),
                            dcfg);

  if (cfg.schedule_faults) cfg.schedule_faults(platform, mgr);

  mgr.start();
  driver.start();

  platform.call_after(cfg.warmup, [&] {
    for (int i = 0; i < mgr.shards(); ++i) {
      if (!mgr.shard(i).down() && mgr.shard(i).server() != nullptr)
        mgr.shard(i).server()->reset_stats();
    }
    driver.begin_measurement();
  });
  // Periodic SLO observation windows, armed at the warmup boundary. The
  // callback must not re-arm once stopped or SimPlatform::run() (which
  // drains the timer queue to empty) would never return.
  bool stopped = false;
  if (cfg.fleet_obs != nullptr && cfg.obs_period.ns > 0) {
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&, tick] {
      if (stopped) return;
      cfg.fleet_obs->evaluate_window();
      platform.call_after(cfg.obs_period, *tick);
    };
    platform.call_after(cfg.warmup + cfg.obs_period, *tick);
  }
  platform.call_after(cfg.warmup + cfg.measure, [&] {
    stopped = true;
    mgr.request_stop();
    driver.request_stop();
  });

  platform.run();

  ShardExperimentResult out;
  const auto agg = driver.aggregate(cfg.measure);
  out.connected = agg.connected;
  out.response_rate = agg.response_rate;
  out.response_ms_mean = agg.response_ms_mean;
  out.response_ms_p95 = agg.response_ms_p95;
  out.client_moves_sent = agg.moves_sent;
  out.client_replies = agg.replies;
  out.client_sessions = agg.sessions;
  out.silence_reconnects = agg.silence_reconnects;

  out.shard_connected = mgr.total_connected();
  out.supervisor_ticks = mgr.supervisor().ticks();
  out.handoffs_returned = mgr.handoffs_returned();
  out.overflow_sheds = mgr.overflow_sheds();
  out.shards.resize(static_cast<size_t>(mgr.shards()));
  for (int i = 0; i < mgr.shards(); ++i) {
    ShardExperimentResult::PerShard& ps = out.shards[static_cast<size_t>(i)];
    const shard::ShardSupervisor::Report& r = mgr.supervisor().report(i);
    ps.state = r.state;
    ps.restores = r.restores;
    ps.escalations = r.escalations;
    ps.last_pause_ms = r.last_pause_ms;
    ps.last_used_tail = r.last_used_tail;
    ps.last_mode = r.last_mode;
    ps.last_stats = r.last_stats;
    ps.last_error = r.last_error;
    ps.shed_sessions = r.shed_sessions;
    ps.backoff_waits = r.backoff_waits;
    ps.breaker_tripped = r.breaker_tripped;
    ps.shed_reason = r.shed_reason;
    shard::Shard& s = mgr.shard(i);
    ps.down = s.down();
    if (s.down() || s.server() == nullptr) continue;
    core::ParallelServer* srv = s.server();
    ps.frames = srv->frames();
    ps.connected = srv->connected_clients();
    ps.handoffs_out = srv->registry().counters.handoffs_out;
    ps.handoffs_in = srv->registry().counters.handoffs_in;
    ps.invariant_violations = srv->invariant_violations();
    out.handoffs_out += ps.handoffs_out;
    out.handoffs_in += ps.handoffs_in;
    if (srv->recorder() != nullptr) {
      recovery::JournalFile jf;
      if (recovery::decode_journal(srv->recorder()->encode(), jf) ==
          recovery::LoadError::kNone) {
        ps.journal_digests.reserve(jf.frames.size());
        for (const recovery::FrameJournal& fj : jf.frames)
          ps.journal_digests.emplace_back(fj.frame, fj.digest);
      }
    }
  }

  if (cfg.fleet_obs != nullptr) {
    // Post-stop: harvest the engines' counters into the per-shard
    // registries, then run one last SLO window over the final state.
    cfg.fleet_obs->collect_final();
    cfg.fleet_obs->evaluate_window();
    out.handoff_flows = mgr.flows_issued();
    out.slo_evaluations = cfg.fleet_obs->slo().evaluations();
    out.slo_breaches = cfg.fleet_obs->slo().breaches();
  }

  out.sim_events = platform.events_processed();
  out.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host_t0)
          .count();
  return out;
}

}  // namespace qserv::harness
