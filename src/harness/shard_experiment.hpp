// Multi-shard testbed: one simulated machine hosting a ShardManager fleet
// plus the full client population, with a fault-schedule seam for crash /
// stall injection against individual shards. The harvest exposes what the
// failover bench and the sharding tests assert on: client survival,
// supervisor actions, per-shard recovery stats, and each live shard's
// journal digest stream (for cross-run bit-identity checks).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/bots/client_driver.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/obs/slo.hpp"
#include "src/shard/manager.hpp"
#include "src/spatial/map.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::obs {
class FleetObs;
}

namespace qserv::harness {

struct ShardExperimentConfig {
  shard::Config fleet;  // manager config; fleet.server is the engine template
  int players = 64;     // total, striped across shards at join
  vt::Duration warmup = vt::seconds(2);
  vt::Duration measure = vt::seconds(8);
  vt::Duration client_frame = vt::millis(33);
  float bot_aggression = 0.8f;
  float bot_grenade_ratio = 0.3f;
  uint64_t seed = 1;
  vt::Duration client_silence_timeout{};
  bots::ClientDriver::ChurnConfig churn;
  // Per-(src,dst)-flow RNG in the virtual network: one shard's traffic
  // cannot perturb another shard's loss/jitter draws, which is what makes
  // an unaffected shard's digest stream comparable across runs.
  bool deterministic_flows = true;
  // Network fault episodes (loss bursts, partitions), as in experiment.hpp.
  std::function<void(net::VirtualNetwork&)> configure_network;
  // Fleet fault schedule: called after the manager is built and before
  // anything starts; use platform.call_after to crash/stall shards mid-run.
  std::function<void(vt::Platform&, shard::ShardManager&)> schedule_faults;
  // Machine model. Sharded runs host shards*threads server fibers, so the
  // default is wider than the paper's quad testbed.
  vt::SimPlatform::MachineConfig machine{.cores = 8, .ht_per_core = 2};
  std::shared_ptr<const spatial::GameMap> map;
  // Fleet observability plane, caller-owned (the merged trace and the
  // federated metrics must outlive the run). When set, the harness
  // attaches it to the manager before start and drives an SLO evaluation
  // window every obs_period starting at the warmup boundary (warmup
  // joins would read as lost clients), plus a final window at shutdown.
  obs::FleetObs* fleet_obs = nullptr;
  vt::Duration obs_period = vt::millis(500);
};

struct ShardExperimentResult {
  // Client side.
  int connected = 0;  // clients holding a live session at the end
  double response_rate = 0.0;
  double response_ms_mean = 0.0;
  double response_ms_p95 = 0.0;
  uint64_t client_moves_sent = 0;
  uint64_t client_replies = 0;
  uint64_t client_sessions = 0;
  uint64_t silence_reconnects = 0;

  // Fleet side.
  int shard_connected = 0;  // registry-side sum over live shards
  uint64_t handoffs_out = 0;
  uint64_t handoffs_in = 0;
  uint64_t supervisor_ticks = 0;
  // Containment accounting (manager-level atomics).
  uint64_t handoffs_returned = 0;  // stranded transfers bounced to source
  uint64_t overflow_sheds = 0;     // transfers dropped at a full mailbox

  struct PerShard {
    shard::ShardState state = shard::ShardState::kHealthy;
    bool down = false;
    int restores = 0;
    uint64_t escalations = 0;
    double last_pause_ms = 0.0;
    bool last_used_tail = false;
    shard::RestoreMode last_mode = shard::RestoreMode::kNone;
    core::Server::RestoreStats last_stats{};
    recovery::LoadError last_error{};
    uint64_t shed_sessions = 0;
    uint64_t backoff_waits = 0;
    bool breaker_tripped = false;
    const char* shed_reason = nullptr;  // static string or nullptr
    uint64_t frames = 0;
    int connected = 0;
    uint64_t handoffs_out = 0;
    uint64_t handoffs_in = 0;
    uint64_t invariant_violations = 0;
    // (frame, digest) pairs decoded from the shard's journal ring — the
    // cross-run bit-identity evidence for unaffected shards.
    std::vector<std::pair<uint64_t, uint64_t>> journal_digests;
  };
  std::vector<PerShard> shards;

  // Fleet observability harvest (cfg.fleet_obs configured; zero/empty
  // otherwise).
  uint64_t handoff_flows = 0;  // causal flow ids issued fleet-wide
  uint64_t slo_evaluations = 0;
  std::vector<obs::SloBreach> slo_breaches;

  uint64_t sim_events = 0;
  double host_seconds = 0.0;
};

ShardExperimentResult run_shard_experiment(const ShardExperimentConfig& cfg);

}  // namespace qserv::harness
