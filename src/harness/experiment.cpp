#include "src/harness/experiment.hpp"

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "src/core/alloc_probe.hpp"
#include "src/core/lock_manager.hpp"
#include "src/core/parallel_server.hpp"
#include "src/core/sequential_server.hpp"
#include "src/obs/collect.hpp"
#include "src/obs/trace.hpp"
#include "src/recovery/blackbox.hpp"
#include "src/recovery/replay.hpp"
#include "src/resilience/governor.hpp"
#include "src/resilience/watchdog.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace qserv::harness {

std::shared_ptr<const spatial::GameMap> default_map(uint64_t seed) {
  static std::mutex mu;
  static std::map<uint64_t, std::shared_ptr<const spatial::GameMap>> cache;
  std::lock_guard<std::mutex> g(mu);
  auto& slot = cache[seed];
  if (slot == nullptr) {
    slot = std::make_shared<const spatial::GameMap>(
        spatial::make_large_deathmatch(seed));
  }
  return slot;
}

ExperimentConfig paper_config(ServerMode mode, int threads, int players,
                              core::LockPolicy policy) {
  ExperimentConfig cfg;
  cfg.mode = mode;
  cfg.server.threads = threads;
  cfg.server.lock_policy = policy;
  cfg.players = players;
  cfg.map = default_map();
  // Table 1: 4 x Xeon 1.4 GHz, 2-way hyper-threading.
  cfg.machine.cores = 4;
  cfg.machine.ht_per_core = 2;
  cfg.machine.ht_throughput = 1.25;
  return cfg;
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  const auto host_t0 = std::chrono::steady_clock::now();

  vt::SimPlatform platform(cfg.machine);
  net::VirtualNetwork::Config net_cfg;
  // Named seed streams (util/rng.hpp): each subsystem draws from its own
  // derived stream of the root seed, so no two consume the same sequence
  // and replay/determinism audits can reason about provenance.
  net_cfg.seed = derive_seed(cfg.seed, streams::kNetwork);
  net::VirtualNetwork network(platform, net_cfg);
  if (cfg.configure_network) cfg.configure_network(network);

  std::shared_ptr<const spatial::GameMap> map =
      cfg.map != nullptr ? cfg.map : default_map();

  core::ServerConfig scfg = cfg.server;
  scfg.seed = cfg.seed;
  std::unique_ptr<core::Server> server;
  if (cfg.mode == ServerMode::kSequential) {
    server = std::make_unique<core::SequentialServer>(platform, network, *map,
                                                      scfg);
  } else {
    server =
        std::make_unique<core::ParallelServer>(platform, network, *map, scfg);
  }

  bots::ClientDriver::Config dcfg;
  dcfg.players = cfg.players;
  dcfg.frame_interval = cfg.client_frame;
  dcfg.seed = derive_seed(cfg.seed, streams::kClientDriver);
  dcfg.aggression = cfg.bot_aggression;
  dcfg.grenade_ratio = cfg.bot_grenade_ratio;
  dcfg.server_silence_timeout = cfg.client_silence_timeout;
  dcfg.churn = cfg.churn;
  bots::ClientDriver driver(platform, network, *map, *server, dcfg);

  if (cfg.frame_trace) server->enable_frame_trace();
  if (cfg.tracer != nullptr || cfg.metrics != nullptr)
    server->attach_observability(cfg.tracer, cfg.metrics);
  server->start();
  driver.start();

  // Periodic metrics snapshots: a self-rescheduling platform callback
  // that stops once the run is over.
  std::vector<obs::TimedSnapshot> metrics_series;
  if (cfg.metrics != nullptr && cfg.metrics_period.ns > 0) {
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&, tick] {
      if (server->stop_requested()) return;
      obs::TimedSnapshot snap;
      snap.t_seconds = platform.now().seconds();
      snap.samples = cfg.metrics->snapshot();
      metrics_series.push_back(std::move(snap));
      platform.call_after(cfg.metrics_period, *tick);
    };
    platform.call_after(cfg.metrics_period, *tick);
  }

  uint64_t overflow_at_measure_start = 0;
  uint64_t allocs_at_measure_start = 0;
  uint64_t frames_at_measure_start = 0;
  platform.call_after(cfg.warmup, [&] {
    server->reset_stats();
    driver.begin_measurement();
    overflow_at_measure_start = network.packets_overflowed();
    allocs_at_measure_start = core::alloc_count();
    frames_at_measure_start = server->frames();
  });
  platform.call_after(cfg.warmup + cfg.measure, [&] {
    server->request_stop();
    driver.request_stop();
  });

  platform.run();

  ExperimentResult out;
  const auto agg = driver.aggregate(cfg.measure);
  out.response_rate = agg.response_rate;
  out.response_ms_mean = agg.response_ms_mean;
  out.response_ms_p50 = agg.response_ms_p50;
  out.response_ms_p95 = agg.response_ms_p95;
  out.snapshot_entities_mean = agg.snapshot_entities_mean;
  out.connected = agg.connected;
  out.total_frags = agg.total_frags;

  out.breakdown = server->total_breakdown();
  out.pct = core::to_percent(out.breakdown);
  for (const auto& ts : server->thread_stats())
    out.per_thread.push_back(ts.breakdown);

  out.locks = server->total_lock_stats();
  if (out.locks.requests_locked > 0) {
    out.distinct_leaves_per_request_pct =
        static_cast<double>(out.locks.distinct_leaves) /
        static_cast<double>(out.locks.requests_locked) /
        static_cast<double>(server->lock_manager().leaf_count());
  }
  if (out.locks.lock_requests > 0) {
    out.relock_pct = static_cast<double>(out.locks.relocks) /
                     static_cast<double>(out.locks.lock_requests);
  }
  const auto& fls = server->frame_lock_stats();
  out.leaves_locked_per_frame_pct = fls.leaves_locked_pct.mean();
  out.leaves_shared_per_frame_pct = fls.leaves_shared_pct.mean();
  out.lock_ops_per_leaf_per_frame = fls.lock_ops_per_leaf.mean();

  StatAccumulator rpf;
  for (const auto& ts : server->thread_stats()) rpf.merge(ts.requests_per_frame);
  out.requests_per_thread_frame_mean = rpf.mean();
  out.requests_per_thread_frame_stddev = rpf.stddev();
  const vt::Duration iw = out.breakdown.inter_wait();
  if (iw.ns > 0) {
    out.inter_wait_world_fraction =
        static_cast<double>(out.breakdown.inter_wait_world.ns) /
        static_cast<double>(iw.ns);
  }

  if (cfg.frame_trace) {
    for (const auto& ts : server->thread_stats())
      out.frame_traces.push_back(ts.frame_trace);
  }
  if (cfg.metrics != nullptr) {
    obs::collect_network(network, *cfg.metrics);
    obs::collect_server(*server, *cfg.metrics);
  }
  out.frame_trace_dropped = server->frame_trace_dropped();
  out.metrics_series = std::move(metrics_series);
  out.frames = server->frames();
  out.requests = server->total_requests();
  out.replies = server->total_replies();
  out.overflow_drops =
      network.packets_overflowed() - overflow_at_measure_start;
  out.reassignments = server->reassignments();
  out.evictions = server->evictions();
  out.rejected_connects = server->rejected_connects();
  out.invariant_violations = server->invariant_violations();
  out.client_sessions = agg.sessions;
  out.client_crashes = agg.crashes;
  out.client_quits = agg.graceful_quits;
  out.client_rejoins = agg.rejoins;
  out.client_evictions_seen = agg.evictions_observed;
  out.rejected_busy = server->rejected_busy();
  out.moves_rate_limited = server->total_moves_rate_limited();
  out.packets_oversized = server->total_packets_oversized();
  out.moves_coalesced = server->total_moves_coalesced();
  out.governor_evictions = server->governor_evictions();
  out.governor_steps_down = server->governor().counters().steps_down;
  out.governor_steps_up = server->governor().counters().steps_up;
  out.frames_degraded = server->governor().counters().frames_degraded;
  out.max_degrade_level = server->governor().max_level_reached();
  out.stalls_injected = server->stalls_injected();
  if (const auto* wd = server->watchdog()) {
    out.stalls_detected = wd->counters().stalls_detected;
    out.stalls_recovered = wd->counters().stalls_recovered;
    out.stall_reassignments = server->stall_reassignments();
  }
  out.client_rejected_busy = agg.rejected_busy;
  out.client_connect_retries = agg.connect_retries;
  out.client_moves_sent = agg.moves_sent;
  out.client_replies = agg.replies;
  if (const auto* ckpt = server->checkpoints()) {
    out.checkpoints_taken = ckpt->count();
    out.checkpoint_bytes = static_cast<uint64_t>(ckpt->last_bytes());
    out.checkpoint_pause_ns = ckpt->max_pause_ns();
  }
  if (const auto* rec = server->recorder()) {
    out.journal_frames = rec->frames_sealed();
    out.journal_records = rec->records_staged();
  }
  if (const auto* bb = server->blackbox()) {
    out.blackbox_dumps = bb->dumps();
    out.blackbox_last_path = bb->last_path();
  }
  out.resumed_clients = server->resumed_clients();
  if (cfg.verify_replay && server->checkpoints() != nullptr &&
      server->recorder() != nullptr) {
    const auto rv =
        recovery::verify_recorded(*server->checkpoints(), *server->recorder());
    out.replay_ran = true;
    out.replay_ok = rv.ok;
    out.replay_summary = rv.summary();
  }
  // Steady-state heap allocations per frame over the measurement window,
  // when the binary registered an allocation probe (bench binaries that
  // include bench/alloc_counter.hpp). -1 = no probe; omitted from JSON.
  const uint64_t measured_frames = server->frames() - frames_at_measure_start;
  if (core::alloc_probe_available() && measured_frames > 0) {
    out.allocs_per_frame =
        static_cast<double>(core::alloc_count() - allocs_at_measure_start) /
        static_cast<double>(measured_frames);
  }
  out.sim_events = platform.events_processed();
  out.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - host_t0)
          .count();
  return out;
}

}  // namespace qserv::harness
