#include "src/harness/json_export.hpp"

#include <cstdio>
#include <fstream>

namespace qserv::harness {

namespace {

void write_breakdown_pct(obs::JsonWriter& w, const core::BreakdownPct& p) {
  w.begin_object();
  w.kv("exec", p.exec);
  w.kv("lock_leaf", p.lock_leaf);
  w.kv("lock_parent", p.lock_parent);
  w.kv("receive", p.receive);
  w.kv("reply", p.reply);
  w.kv("reply_view", p.reply_view);
  w.kv("reply_encode", p.reply_encode);
  w.kv("reply_finalize", p.reply_finalize);
  w.kv("reply_send", p.reply_send);
  w.kv("world", p.world);
  w.kv("intra_wait", p.intra_wait);
  w.kv("inter_wait_world", p.inter_wait_world);
  w.kv("inter_wait_frame", p.inter_wait_frame);
  w.kv("idle", p.idle);
  w.end_object();
}

void write_breakdown_ms(obs::JsonWriter& w, const core::Breakdown& b) {
  w.begin_object();
  w.kv("exec", b.exec.millis());
  w.kv("lock_leaf", b.lock_leaf.millis());
  w.kv("lock_parent", b.lock_parent.millis());
  w.kv("receive", b.receive.millis());
  w.kv("reply", b.reply.millis());
  w.kv("reply_view", b.reply_view.millis());
  w.kv("reply_encode", b.reply_encode.millis());
  w.kv("reply_finalize", b.reply_finalize.millis());
  w.kv("reply_send", b.reply_send.millis());
  w.kv("world", b.world.millis());
  w.kv("intra_wait", b.intra_wait.millis());
  w.kv("inter_wait_world", b.inter_wait_world.millis());
  w.kv("inter_wait_frame", b.inter_wait_frame.millis());
  w.kv("idle", b.idle.millis());
  w.end_object();
}

}  // namespace

void write_result_json(obs::JsonWriter& w, const std::string& label,
                       const ExperimentConfig& cfg,
                       const ExperimentResult& r) {
  w.begin_object();
  w.kv("label", label);

  w.key("config");
  w.begin_object();
  w.kv("mode",
       cfg.mode == ServerMode::kSequential ? "sequential" : "parallel");
  w.kv("threads", cfg.server.threads);
  w.kv("players", cfg.players);
  w.kv("lock_policy", core::lock_policy_name(cfg.server.lock_policy));
  w.kv("assign_policy", core::assign_policy_name(cfg.server.assign_policy));
  w.kv("seed", cfg.seed);
  w.kv("warmup_s", cfg.warmup.seconds());
  w.kv("measure_s", cfg.measure.seconds());
  w.key("machine");
  w.begin_object();
  w.kv("cores", cfg.machine.cores);
  w.kv("ht_per_core", cfg.machine.ht_per_core);
  w.kv("ht_throughput", cfg.machine.ht_throughput);
  w.end_object();
  w.end_object();

  w.key("response");
  w.begin_object();
  w.kv("rate_per_s", r.response_rate);
  w.kv("ms_mean", r.response_ms_mean);
  w.kv("ms_p50", r.response_ms_p50);
  w.kv("ms_p95", r.response_ms_p95);
  w.kv("connected", r.connected);
  w.kv("snapshot_entities_mean", r.snapshot_entities_mean);
  w.end_object();

  w.key("breakdown_pct");
  write_breakdown_pct(w, r.pct);
  w.key("breakdown_ms");
  write_breakdown_ms(w, r.breakdown);

  w.key("locks");
  w.begin_object();
  w.kv("requests_locked", r.locks.requests_locked);
  w.kv("lock_requests", r.locks.lock_requests);
  w.kv("distinct_leaves", r.locks.distinct_leaves);
  w.kv("relocks", r.locks.relocks);
  w.kv("parent_list_locks", r.locks.parent_list_locks);
  w.end_object();

  w.key("lock_analysis");
  w.begin_object();
  w.kv("distinct_leaves_per_request_pct", r.distinct_leaves_per_request_pct);
  w.kv("relock_pct", r.relock_pct);
  w.kv("leaves_locked_per_frame_pct", r.leaves_locked_per_frame_pct);
  w.kv("leaves_shared_per_frame_pct", r.leaves_shared_per_frame_pct);
  w.kv("lock_ops_per_leaf_per_frame", r.lock_ops_per_leaf_per_frame);
  w.end_object();

  w.key("wait");
  w.begin_object();
  w.kv("requests_per_thread_frame_mean", r.requests_per_thread_frame_mean);
  w.kv("requests_per_thread_frame_stddev",
       r.requests_per_thread_frame_stddev);
  w.kv("inter_wait_world_fraction", r.inter_wait_world_fraction);
  w.end_object();

  w.key("counters");
  w.begin_object();
  w.kv("frames", r.frames);
  w.kv("requests", r.requests);
  w.kv("replies", r.replies);
  w.kv("overflow_drops", r.overflow_drops);
  w.kv("reassignments", r.reassignments);
  w.kv("frame_trace_dropped", r.frame_trace_dropped);
  w.kv("evictions", r.evictions);
  w.kv("rejected_connects", r.rejected_connects);
  w.kv("invariant_violations", r.invariant_violations);
  w.kv("client_sessions", r.client_sessions);
  w.kv("client_crashes", r.client_crashes);
  w.kv("client_quits", r.client_quits);
  w.kv("client_rejoins", r.client_rejoins);
  w.kv("total_frags", r.total_frags);
  w.kv("sim_events", r.sim_events);
  w.end_object();

  w.key("resilience");
  w.begin_object();
  w.kv("rejected_busy", r.rejected_busy);
  w.kv("moves_rate_limited", r.moves_rate_limited);
  w.kv("packets_oversized", r.packets_oversized);
  w.kv("moves_coalesced", r.moves_coalesced);
  w.kv("governor_evictions", r.governor_evictions);
  w.kv("governor_steps_down", r.governor_steps_down);
  w.kv("governor_steps_up", r.governor_steps_up);
  w.kv("frames_degraded", r.frames_degraded);
  w.kv("max_degrade_level", r.max_degrade_level);
  w.kv("stalls_injected", r.stalls_injected);
  w.kv("stalls_detected", r.stalls_detected);
  w.kv("stalls_recovered", r.stalls_recovered);
  w.kv("stall_reassignments", r.stall_reassignments);
  w.kv("client_rejected_busy", r.client_rejected_busy);
  w.kv("client_connect_retries", r.client_connect_retries);
  w.kv("client_moves_sent", r.client_moves_sent);
  w.kv("client_replies", r.client_replies);
  w.end_object();

  w.key("recovery");
  w.begin_object();
  w.kv("checkpoints_taken", r.checkpoints_taken);
  w.kv("checkpoint_bytes", r.checkpoint_bytes);
  w.kv("checkpoint_pause_ms",
       static_cast<double>(r.checkpoint_pause_ns) / 1e6);
  w.kv("journal_frames", r.journal_frames);
  w.kv("journal_records", r.journal_records);
  w.kv("blackbox_dumps", r.blackbox_dumps);
  w.kv("blackbox_last_path", r.blackbox_last_path);
  w.kv("resumed_clients", r.resumed_clients);
  w.kv("replay_ran", r.replay_ran);
  w.kv("replay_ok", r.replay_ok);
  w.kv("replay_summary", r.replay_summary);
  w.end_object();

  w.kv("host_seconds", r.host_seconds);
  // Top-level direction-keyed metrics for the trend gate (qserv-trend
  // reads dotted paths off each point): the reply phase's share of
  // execution time, and — when the binary carries an allocation probe —
  // steady-state heap allocations per frame.
  w.kv("reply_share", r.pct.reply);
  if (r.allocs_per_frame >= 0.0) {
    w.kv("allocs_per_frame", r.allocs_per_frame);
  }
  w.end_object();
}

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : bench_(std::move(bench_name)) {}

void BenchJsonWriter::add(const std::string& group, const std::string& label,
                          const ExperimentConfig& cfg,
                          const ExperimentResult& r) {
  std::string out;
  obs::JsonWriter w(out);
  write_result_json(w, label, cfg, r);
  add_raw(group, std::move(out));
}

void BenchJsonWriter::add_raw(const std::string& group,
                              std::string point_json) {
  for (auto& g : groups_) {
    if (g.first == group) {
      g.second.push_back(std::move(point_json));
      return;
    }
  }
  groups_.emplace_back(group,
                       std::vector<std::string>{std::move(point_json)});
}

void BenchJsonWriter::add_points(const std::string& group,
                                 const std::vector<SweepPoint>& points) {
  for (const auto& p : points) add(group, p.label, p.config, p.result);
}

std::string BenchJsonWriter::to_json() const {
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "qserv-bench-v1");
  w.kv("bench", bench_);
  w.key("groups");
  w.begin_array();
  for (const auto& g : groups_) {
    w.begin_object();
    w.kv("name", g.first);
    w.key("points");
    w.begin_array();
    for (const auto& point : g.second) w.raw(point);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out.push_back('\n');
  return out;
}

bool BenchJsonWriter::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return false;
  }
  f << to_json();
  f.flush();
  if (!f) {
    std::fprintf(stderr, "bench: write to %s failed\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace qserv::harness
