#include "src/harness/report.hpp"

#include <cstdio>

namespace qserv::harness {

std::vector<std::string> breakdown_header(const std::string& label) {
  return {label,        "exec",      "lock-leaf", "lock-parent",
          "receive",    "reply",     "world",     "intra-wait",
          "inter-wait", "idle"};
}

std::vector<std::string> breakdown_row(const std::string& label,
                                       const ExperimentResult& r) {
  const auto& p = r.pct;
  return {label,
          Table::pct(p.exec),
          Table::pct(p.lock_leaf),
          Table::pct(p.lock_parent),
          Table::pct(p.receive),
          Table::pct(p.reply),
          Table::pct(p.world),
          Table::pct(p.intra_wait),
          Table::pct(p.inter_wait()),
          Table::pct(p.idle)};
}

std::vector<std::string> rate_row(const std::string& label,
                                  const ExperimentResult& r) {
  return {label, Table::num(r.response_rate, 0),
          Table::num(r.response_ms_mean, 1), Table::num(r.response_ms_p95, 1),
          std::to_string(r.connected)};
}

std::vector<std::string> lifecycle_header(const std::string& label) {
  return {label,      "sessions", "crashes",  "quits", "rejoins",
          "evictions", "rejected", "invariant"};
}

std::vector<std::string> lifecycle_row(const std::string& label,
                                       const ExperimentResult& r) {
  return {label,
          std::to_string(r.client_sessions),
          std::to_string(r.client_crashes),
          std::to_string(r.client_quits),
          std::to_string(r.client_rejoins),
          std::to_string(r.evictions),
          std::to_string(r.rejected_connects),
          std::to_string(r.invariant_violations)};
}

void print_summary(const std::string& label, const ExperimentResult& r) {
  std::printf(
      "%-28s rate=%7.0f replies/s  rt=%6.1f ms  "
      "lock=%4.1f%% [leaf %.1f%% par %.1f%%]  wait=%4.1f%%  "
      "idle=%4.1f%%  frames=%llu  (host %.1fs)\n",
      label.c_str(), r.response_rate, r.response_ms_mean, r.pct.lock() * 100,
      r.pct.lock_leaf * 100, r.pct.lock_parent * 100,
      (r.pct.intra_wait + r.pct.inter_wait()) * 100, r.pct.idle * 100,
      static_cast<unsigned long long>(r.frames), r.host_seconds);
  // Reply-phase stage split (DESIGN.md §15): present only when the new
  // reply path ran. The stages are components of reply, so the old
  // aggregate stays comparable across generations.
  const auto& p = r.pct;
  if (p.reply_view + p.reply_encode + p.reply_finalize + p.reply_send > 0) {
    std::printf(
        "%-28s reply=%4.1f%% [view %.1f%% encode %.1f%% finalize %.1f%% "
        "send %.1f%%]\n",
        "", p.reply * 100, p.reply_view * 100, p.reply_encode * 100,
        p.reply_finalize * 100, p.reply_send * 100);
  }
  std::fflush(stdout);
}

}  // namespace qserv::harness
