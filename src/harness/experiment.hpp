// Experiment runner: builds a complete simulated testbed (SMP machine,
// network, server, client population), runs warmup + measurement windows
// in virtual time, and collects every metric the paper's figures need.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/bots/client_driver.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/core/config.hpp"
#include "src/core/frame_stats.hpp"
#include "src/obs/metrics.hpp"
#include "src/spatial/map.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::obs {
class Tracer;
}

namespace qserv::harness {

enum class ServerMode : uint8_t { kSequential, kParallel };

struct ExperimentConfig {
  ServerMode mode = ServerMode::kParallel;
  core::ServerConfig server;
  int players = 64;
  vt::Duration warmup = vt::seconds(2);
  vt::Duration measure = vt::seconds(8);
  vt::Duration client_frame = vt::millis(33);
  float bot_aggression = 0.8f;
  float bot_grenade_ratio = 0.3f;
  uint64_t seed = 1;
  // Client lifecycle knobs (chaos workloads): reconnect on server silence,
  // and scheduled crash/quit/rejoin churn. Defaults leave both off.
  vt::Duration client_silence_timeout{};
  bots::ClientDriver::ChurnConfig churn;
  // Record the per-frame, per-thread request counts (§5.2 analysis).
  bool frame_trace = false;
  // Observability attachments (obs/), non-owning; both must outlive the
  // run. `tracer` records per-thread phase spans on the server (export
  // Chrome trace JSON afterwards); `metrics` receives live instruments
  // (frame durations, lock waits) plus an end-of-run harvest of network,
  // fault and contention counters. With `metrics_period` > 0 the registry
  // is additionally snapshotted on that period into
  // ExperimentResult::metrics_series.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  vt::Duration metrics_period{};
  // Called once after the network is built and before the server starts;
  // benches and tests use it to schedule fault episodes (packet bursts,
  // partitions, thread stalls) against the run.
  std::function<void(net::VirtualNetwork&)> configure_network;
  // Machine model: the paper's quad Xeon with 2-way hyper-threading.
  vt::SimPlatform::MachineConfig machine{};
  // Map shared across experiments of a sweep (generated once).
  std::shared_ptr<const spatial::GameMap> map;
  // After the run, replay the journal from the latest checkpoint and
  // cross-check per-frame digests (requires server.recovery.enabled; see
  // ExperimentResult::replay_*).
  bool verify_replay = false;
};

struct ExperimentResult {
  // Client-side (§4 metrics).
  double response_rate = 0.0;  // replies/s
  double response_ms_mean = 0.0;
  double response_ms_p50 = 0.0;
  double response_ms_p95 = 0.0;
  double snapshot_entities_mean = 0.0;  // visibility proxy
  int connected = 0;

  // Server-side breakdowns.
  core::Breakdown breakdown;        // summed across threads
  core::BreakdownPct pct;           // percentage view
  std::vector<core::Breakdown> per_thread;

  // Lock analysis (Figure 7 / §5.1).
  core::LockStats locks;
  double distinct_leaves_per_request_pct = 0.0;
  double relock_pct = 0.0;  // fraction of lock requests that were re-locks
  double leaves_locked_per_frame_pct = 0.0;
  double leaves_shared_per_frame_pct = 0.0;
  double lock_ops_per_leaf_per_frame = 0.0;

  // §5.2 wait analysis.
  double requests_per_thread_frame_mean = 0.0;
  double requests_per_thread_frame_stddev = 0.0;
  double inter_wait_world_fraction = 0.0;  // of total inter-frame wait

  // Volume counters.
  // Per-thread (frame id, moves processed) traces when frame_trace is on.
  std::vector<std::vector<std::pair<uint64_t, int>>> frame_traces;

  uint64_t frames = 0;
  uint64_t requests = 0;
  uint64_t replies = 0;
  uint64_t overflow_drops = 0;
  uint64_t reassignments = 0;  // dynamic-assignment client migrations
  // §5.2 frame-trace entries discarded at the per-thread cap.
  uint64_t frame_trace_dropped = 0;
  // Periodic registry snapshots (metrics + metrics_period configured).
  std::vector<obs::TimedSnapshot> metrics_series;

  // Lifecycle / robustness counters (server + client sides).
  uint64_t evictions = 0;           // clients the server timed out
  uint64_t rejected_connects = 0;   // connects refused server-full
  uint64_t invariant_violations = 0;
  uint64_t client_sessions = 0;
  uint64_t client_crashes = 0;
  uint64_t client_quits = 0;
  uint64_t client_rejoins = 0;
  uint64_t client_evictions_seen = 0;

  // Resilience: backpressure / admission / governor / watchdog counters.
  uint64_t rejected_busy = 0;        // connects refused by admission control
  uint64_t moves_rate_limited = 0;   // moves dropped by the token bucket
  uint64_t packets_oversized = 0;    // datagrams over max_packet_bytes
  uint64_t moves_coalesced = 0;      // queued moves folded under degradation
  uint64_t governor_evictions = 0;   // clients shed at the last rung
  uint64_t governor_steps_down = 0;
  uint64_t governor_steps_up = 0;
  uint64_t frames_degraded = 0;      // frames spent above kNormal
  int max_degrade_level = 0;
  uint64_t stalls_injected = 0;      // kThreadStall episodes workers honored
  uint64_t stalls_detected = 0;      // watchdog declared a worker wedged
  uint64_t stalls_recovered = 0;     // wedged workers that came back
  uint64_t stall_reassignments = 0;  // clients migrated off wedged workers
  uint64_t client_rejected_busy = 0; // kServerBusy rejects clients observed
  uint64_t client_connect_retries = 0;
  // Client-side offered/served volume: replies received per move sent is
  // the overload benches' response-fraction metric (server-side `replies`
  // counts sends, which can outnumber what overflowing client sockets
  // actually deliver).
  uint64_t client_moves_sent = 0;
  uint64_t client_replies = 0;

  // Crash recovery (populated when cfg.server.recovery.enabled).
  uint64_t checkpoints_taken = 0;
  uint64_t checkpoint_bytes = 0;     // latest encoded image size
  int64_t checkpoint_pause_ns = 0;   // worst host-clock serialize pause
  uint64_t journal_frames = 0;       // frames sealed into the ring
  uint64_t journal_records = 0;      // records staged overall
  uint64_t blackbox_dumps = 0;
  std::string blackbox_last_path;
  uint64_t resumed_clients = 0;      // slots re-adopted after warm restart
  bool replay_ran = false;           // cfg.verify_replay executed
  bool replay_ok = false;            // every replayed frame digest matched
  std::string replay_summary;

  int total_frags = 0;
  uint64_t sim_events = 0;   // scheduler events processed (determinism aid)
  double host_seconds = 0.0; // wall time the simulation took to run
  // Steady-state heap allocations per frame across the measurement
  // window (the hot-path allocation regression gate). -1 when the binary
  // registered no allocation probe (src/core/alloc_probe.hpp).
  double allocs_per_frame = -1.0;
};

// Runs one experiment to completion in virtual time.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

// The default workload: the large deathmatch map the whole evaluation
// uses (cached across calls with the same seed).
std::shared_ptr<const spatial::GameMap> default_map(uint64_t seed = 7);

// Canonical configuration factory matching the paper's testbed: 4 cores x
// 2-way HT machine, given thread count / player count / lock policy.
ExperimentConfig paper_config(ServerMode mode, int threads, int players,
                              core::LockPolicy policy);

}  // namespace qserv::harness
