// Parameter sweeps over (threads x players x policy), run sequentially
// with progress output — the workhorse behind the figure benches.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/harness/experiment.hpp"

namespace qserv::harness {

struct SweepPoint {
  std::string label;
  ExperimentConfig config;
  ExperimentResult result;
};

// Runs every point in order, printing a summary line per point.
void run_sweep(std::vector<SweepPoint>& points, bool verbose = true);

// Builds the paper's standard grid: for each thread count, each player
// count. Thread count 0 encodes the sequential server.
std::vector<SweepPoint> paper_grid(const std::vector<int>& thread_counts,
                                   const std::vector<int>& player_counts,
                                   core::LockPolicy policy);

// Finds the saturation player count: the highest player count in the
// sweep whose response rate improves on the previous by at least
// `min_gain` (fractional). Expects points of one server config with
// increasing player counts.
int saturation_players(const std::vector<SweepPoint>& points,
                       const std::vector<int>& player_counts,
                       double min_gain = 0.05);

}  // namespace qserv::harness
