// Turns experiment results into the tables the paper's figures plot.
#pragma once

#include <string>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/util/table.hpp"

namespace qserv::harness {

// Standard header for an execution-time breakdown table.
std::vector<std::string> breakdown_header(const std::string& label);
// One row of percentages for a result (label + each component).
std::vector<std::string> breakdown_row(const std::string& label,
                                       const ExperimentResult& r);

// Response-rate and response-time rows.
std::vector<std::string> rate_row(const std::string& label,
                                  const ExperimentResult& r);

// Client-lifecycle / churn columns (chaos workloads).
std::vector<std::string> lifecycle_header(const std::string& label);
std::vector<std::string> lifecycle_row(const std::string& label,
                                       const ExperimentResult& r);

// Prints a one-line summary useful for progress logs.
void print_summary(const std::string& label, const ExperimentResult& r);

}  // namespace qserv::harness
