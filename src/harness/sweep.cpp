#include "src/harness/sweep.hpp"

#include <cstdio>

#include "src/harness/report.hpp"
#include "src/util/check.hpp"

namespace qserv::harness {

void run_sweep(std::vector<SweepPoint>& points, bool verbose) {
  for (auto& p : points) {
    p.result = run_experiment(p.config);
    if (verbose) print_summary(p.label, p.result);
  }
}

std::vector<SweepPoint> paper_grid(const std::vector<int>& thread_counts,
                                   const std::vector<int>& player_counts,
                                   core::LockPolicy policy) {
  std::vector<SweepPoint> out;
  for (const int t : thread_counts) {
    for (const int n : player_counts) {
      SweepPoint p;
      if (t == 0) {
        p.label = "seq/" + std::to_string(n) + "p";
        p.config = paper_config(ServerMode::kSequential, 1, n,
                                core::LockPolicy::kNone);
      } else {
        p.label = std::to_string(t) + "t/" + std::to_string(n) + "p";
        p.config = paper_config(ServerMode::kParallel, t, n, policy);
      }
      out.push_back(std::move(p));
    }
  }
  return out;
}

int saturation_players(const std::vector<SweepPoint>& points,
                       const std::vector<int>& player_counts,
                       double min_gain) {
  QSERV_CHECK(points.size() == player_counts.size());
  if (points.empty()) return 0;
  int sat = player_counts[0];
  double best = points[0].result.response_rate;
  for (size_t i = 1; i < points.size(); ++i) {
    const double rate = points[i].result.response_rate;
    if (rate >= best * (1.0 + min_gain)) {
      best = rate;
      sat = player_counts[i];
    }
  }
  return sat;
}

}  // namespace qserv::harness
