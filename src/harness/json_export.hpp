// Machine-readable bench export: serializes experiment configs + results
// into the stable "qserv-bench-v1" schema, so perf trajectories can be
// recorded (BENCH_*.json), diffed across PRs, and plotted without
// scraping the human-readable tables.
//
// Schema (all times in the units their key names):
//   {
//     "schema": "qserv-bench-v1",
//     "bench": "<bench name>",
//     "groups": [
//       { "name": "<group>", "points": [ <point>... ] }
//     ]
//   }
// where each point is
//   {
//     "label", "config": {mode, threads, players, lock_policy,
//        assign_policy, seed, warmup_s, measure_s, machine{...}},
//     "response": {rate_per_s, ms_mean, ms_p50, ms_p95, connected,
//        snapshot_entities_mean},
//     "breakdown_pct": {exec, lock_leaf, lock_parent, receive, reply,
//        reply_view, reply_encode, reply_finalize, reply_send,
//        world, intra_wait, inter_wait_world, inter_wait_frame, idle},
//     "breakdown_ms": {...same keys...},
//     "locks": {...}, "lock_analysis": {...}, "wait": {...},
//     "counters": {...}, "host_seconds",
//     "reply_share",                    // == breakdown_pct.reply
//     "allocs_per_frame"                // only when an alloc probe ran
//   }
// The reply_* stage keys are components of reply (zero on the legacy
// reply path); reply_share / allocs_per_frame are the trend gate's
// direction-keyed metrics.
#pragma once

#include <string>
#include <vector>

#include "src/harness/experiment.hpp"
#include "src/harness/sweep.hpp"
#include "src/obs/json.hpp"

namespace qserv::harness {

// Serializes one (config, result) pair as a JSON object onto `w`.
void write_result_json(obs::JsonWriter& w, const std::string& label,
                       const ExperimentConfig& cfg,
                       const ExperimentResult& r);

// Accumulates points into named groups and writes the full document.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name);

  void add(const std::string& group, const std::string& label,
           const ExperimentConfig& cfg, const ExperimentResult& r);
  void add_points(const std::string& group,
                  const std::vector<SweepPoint>& points);
  // For benches with bespoke measurements: appends a pre-serialized JSON
  // object (must be well-formed) as one point of `group`.
  void add_raw(const std::string& group, std::string point_json);

  std::string to_json() const;
  // Writes to `path`; returns false (and prints to stderr) on I/O error.
  bool write(const std::string& path) const;

 private:
  std::string bench_;
  // Group name -> pre-serialized point objects, insertion-ordered.
  std::vector<std::pair<std::string, std::vector<std::string>>> groups_;
};

}  // namespace qserv::harness
