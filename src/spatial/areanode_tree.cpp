#include "src/spatial/areanode_tree.hpp"

#include <algorithm>

namespace qserv::spatial {

AreanodeTree::AreanodeTree(const Aabb& world_bounds, int depth)
    : depth_(depth) {
  QSERV_CHECK(world_bounds.valid());
  QSERV_CHECK(depth >= 0 && depth <= 12);
  leaf_count_ = 1 << depth;
  nodes_.resize((2u << depth) - 1u);
  build(0, -1, 0, world_bounds);
}

void AreanodeTree::build(int index, int parent, int depth,
                         const Aabb& bounds) {
  AreaNode& n = nodes_[static_cast<size_t>(index)];
  n.index = index;
  n.parent = parent;
  n.depth = depth;
  n.bounds = bounds;
  if (depth == depth_) {
    n.axis = -1;
    return;
  }
  // Split the node's longer horizontal axis (as Quake's SV_CreateAreaNode
  // does); for square-ish worlds this alternates between x and y at each
  // depth, exactly as the paper describes. Splits are always vertical
  // planes (the tree is 2-D).
  const Vec3 size = bounds.size();
  n.axis = size.x >= size.y ? 0 : 1;
  n.dist = (bounds.mins[n.axis] + bounds.maxs[n.axis]) * 0.5f;
  n.child_lo = 2 * index + 1;
  n.child_hi = 2 * index + 2;
  Aabb lo = bounds, hi = bounds;
  lo.maxs[n.axis] = n.dist;
  hi.mins[n.axis] = n.dist;
  build(n.child_lo, index, depth + 1, lo);
  build(n.child_hi, index, depth + 1, hi);
}

int AreanodeTree::link_node_for(const Aabb& box) const {
  int index = 0;
  for (;;) {
    const AreaNode& n = nodes_[static_cast<size_t>(index)];
    if (n.axis < 0) return index;
    if (box.mins[n.axis] > n.dist) {
      index = n.child_hi;
    } else if (box.maxs[n.axis] < n.dist) {
      index = n.child_lo;
    } else {
      return index;  // crosses (or touches) the division plane
    }
  }
}

int AreanodeTree::link(uint32_t id, const Aabb& box) {
  const int index = link_node_for(box);
  nodes_[static_cast<size_t>(index)].objects.push_back(id);
  return index;
}

void AreanodeTree::unlink(uint32_t id, int node_index) {
  auto& objs = nodes_[static_cast<size_t>(node_index)].objects;
  const auto it = std::find(objs.begin(), objs.end(), id);
  QSERV_CHECK_MSG(it != objs.end(), "unlinking entity not linked to node");
  objs.erase(it);  // order-preserving: keeps traversal deterministic
}

void AreanodeTree::leaves_for(const Aabb& box, std::vector<int>& out) const {
  // Iterative walk in index order; indices come out ascending because
  // children are visited lo-then-hi and the tree is heap-ordered... which
  // holds within a level but not across levels, so sort to the canonical
  // order explicitly. Leaf lists are tiny (<= 64).
  int stack[64];
  int top = 0;
  stack[top++] = 0;
  const size_t first = out.size();
  while (top > 0) {
    const AreaNode& n = nodes_[static_cast<size_t>(stack[--top])];
    if (n.axis < 0) {
      out.push_back(n.index);
      continue;
    }
    // Use closed-interval overlap so a box touching the plane locks both
    // sides — required for correctness: entities exactly on the plane are
    // reachable from either side.
    if (box.maxs[n.axis] >= n.dist) stack[top++] = n.child_hi;
    if (box.mins[n.axis] <= n.dist) stack[top++] = n.child_lo;
  }
  std::sort(out.begin() + static_cast<long>(first), out.end());
}

size_t AreanodeTree::total_linked() const {
  size_t n = 0;
  for (const auto& node : nodes_) n += node.objects.size();
  return n;
}

}  // namespace qserv::spatial
