#include "src/spatial/map.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/rng.hpp"

namespace qserv::spatial {

int PvsData::cluster_of(const Vec3& pos) const {
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i].contains(pos)) return static_cast<int>(i);
  }
  return -1;
}

PvsData compute_pvs(const std::vector<Aabb>& clusters,
                    const CollisionWorld& world, int samples_per_axis) {
  PvsData out;
  out.clusters = clusters;
  const size_t n = clusters.size();
  out.visible.assign(n * n, 0);

  // Sample points inside each cluster at eye height: a regular grid plus
  // deterministic jittered extras, dense enough that narrow sight pencils
  // (e.g. through two offset doorways) are found. PVS must err toward
  // visible — a false "invisible" would wrongly cull a player.
  Rng rng(0x9e3779b9u);
  auto samples = [&](const Aabb& c) {
    std::vector<Vec3> pts;
    const float z = c.mins.z + 46.0f;  // standing eye height
    for (int i = 0; i < samples_per_axis; ++i) {
      for (int j = 0; j < samples_per_axis; ++j) {
        const float fx = (static_cast<float>(i) + 0.5f) /
                         static_cast<float>(samples_per_axis);
        const float fy = (static_cast<float>(j) + 0.5f) /
                         static_cast<float>(samples_per_axis);
        pts.push_back({c.mins.x + fx * (c.maxs.x - c.mins.x),
                       c.mins.y + fy * (c.maxs.y - c.mins.y), z});
      }
    }
    const int extras = samples_per_axis * samples_per_axis * 2;
    for (int k = 0; k < extras; ++k) {
      Vec3 p = rng.point_in(c.mins, c.maxs);
      p.z = z;
      pts.push_back(p);
    }
    return pts;
  };

  for (size_t a = 0; a < n; ++a) {
    out.visible[a * n + a] = 1;
    const auto pa = samples(clusters[a]);
    for (size_t b = a + 1; b < n; ++b) {
      const auto pb = samples(clusters[b]);
      bool seen = false;
      for (const auto& s : pa) {
        for (const auto& t : pb) {
          if (!world.trace_line(s, t).hit()) {
            seen = true;
            break;
          }
        }
        if (seen) break;
      }
      out.visible[a * n + b] = seen ? 1 : 0;
      out.visible[b * n + a] = seen ? 1 : 0;
    }
  }
  return out;
}

const char* item_type_name(ItemType t) {
  switch (t) {
    case ItemType::kHealth: return "health";
    case ItemType::kArmor: return "armor";
    case ItemType::kWeapon: return "weapon";
    case ItemType::kAmmo: return "ammo";
    case ItemType::kMegaHealth: return "megahealth";
  }
  return "?";
}

namespace {

// %.9g: 9 significant digits round-trip any binary32 exactly, so a
// parsed map is bit-identical to the one serialized. Checkpoint/replay
// geometry (traces, spawn points) depends on this.
void emit_vec(std::string& out, const Vec3& v) {
  char buf[96];
  std::snprintf(buf, sizeof buf, " %.9g %.9g %.9g", double(v.x), double(v.y),
                double(v.z));
  out += buf;
}

}  // namespace

std::string GameMap::serialize() const {
  std::string out;
  out += "map " + name + "\n";
  out += "bounds";
  emit_vec(out, bounds.mins);
  emit_vec(out, bounds.maxs);
  out += "\n";
  for (const auto& b : brushes) {
    out += "brush";
    emit_vec(out, b.bounds.mins);
    emit_vec(out, b.bounds.maxs);
    out += "\n";
  }
  for (const auto& s : spawns) {
    out += "spawn";
    emit_vec(out, s.origin);
    char buf[32];
    std::snprintf(buf, sizeof buf, " %.9g", double(s.yaw_deg));
    out += buf;
    out += "\n";
  }
  for (const auto& i : items) {
    out += "item ";
    out += std::to_string(static_cast<int>(i.type));
    emit_vec(out, i.origin);
    out += "\n";
  }
  for (const auto& t : teleporters) {
    out += "tele";
    emit_vec(out, t.origin);
    emit_vec(out, t.destination);
    out += "\n";
  }
  for (const auto& w : waypoints) {
    out += "wp";
    emit_vec(out, w.pos);
    for (const int n : w.neighbors) out += " " + std::to_string(n);
    out += "\n";
  }
  for (const auto& c : pvs.clusters) {
    out += "cluster";
    emit_vec(out, c.mins);
    emit_vec(out, c.maxs);
    out += "\n";
  }
  const size_t n = pvs.clusters.size();
  for (size_t row = 0; row < n; ++row) {
    out += "pvs ";
    for (size_t col = 0; col < n; ++col)
      out += pvs.visible[row * n + col] ? '1' : '0';
    out += "\n";
  }
  return out;
}

bool GameMap::parse(const std::string& text, GameMap& out) {
  out = GameMap{};
  std::istringstream in(text);
  std::string line;
  bool saw_bounds = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    auto read_vec = [&ls](Vec3& v) -> bool {
      return static_cast<bool>(ls >> v.x >> v.y >> v.z);
    };
    if (kind == "map") {
      ls >> out.name;
    } else if (kind == "bounds") {
      if (!read_vec(out.bounds.mins) || !read_vec(out.bounds.maxs)) return false;
      saw_bounds = true;
    } else if (kind == "brush") {
      Brush b;
      if (!read_vec(b.bounds.mins) || !read_vec(b.bounds.maxs)) return false;
      out.brushes.push_back(b);
    } else if (kind == "spawn") {
      SpawnPoint s;
      if (!read_vec(s.origin) || !(ls >> s.yaw_deg)) return false;
      out.spawns.push_back(s);
    } else if (kind == "item") {
      int type = 0;
      ItemSpawn i;
      if (!(ls >> type) || !read_vec(i.origin)) return false;
      if (type < 0 || type > static_cast<int>(ItemType::kMegaHealth))
        return false;
      i.type = static_cast<ItemType>(type);
      out.items.push_back(i);
    } else if (kind == "tele") {
      TeleporterSpawn t;
      if (!read_vec(t.origin) || !read_vec(t.destination)) return false;
      out.teleporters.push_back(t);
    } else if (kind == "wp") {
      Waypoint w;
      if (!read_vec(w.pos)) return false;
      int n;
      while (ls >> n) w.neighbors.push_back(n);
      out.waypoints.push_back(w);
    } else if (kind == "cluster") {
      Aabb c;
      if (!read_vec(c.mins) || !read_vec(c.maxs)) return false;
      out.pvs.clusters.push_back(c);
    } else if (kind == "pvs") {
      std::string row;
      if (!(ls >> row)) return false;
      for (const char ch : row) {
        if (ch != '0' && ch != '1') return false;
        out.pvs.visible.push_back(ch == '1' ? 1 : 0);
      }
    } else {
      return false;  // unknown directive
    }
  }
  // PVS matrix, when present, must be clusters x clusters.
  const size_t n = out.pvs.clusters.size();
  if (out.pvs.visible.size() != n * n) return false;
  return saw_bounds;
}

bool GameMap::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!bounds.valid()) return fail("invalid bounds");
  const CollisionWorld world = build_collision();
  for (size_t i = 0; i < spawns.size(); ++i) {
    if (!bounds.contains(spawns[i].origin))
      return fail("spawn " + std::to_string(i) + " outside bounds");
    if (world.point_solid(spawns[i].origin))
      return fail("spawn " + std::to_string(i) + " inside solid");
  }
  for (size_t i = 0; i < items.size(); ++i) {
    if (!bounds.contains(items[i].origin))
      return fail("item " + std::to_string(i) + " outside bounds");
    if (world.point_solid(items[i].origin))
      return fail("item " + std::to_string(i) + " inside solid");
  }
  for (size_t i = 0; i < teleporters.size(); ++i) {
    if (!bounds.contains(teleporters[i].origin) ||
        !bounds.contains(teleporters[i].destination))
      return fail("teleporter " + std::to_string(i) + " outside bounds");
  }
  for (size_t i = 0; i < waypoints.size(); ++i) {
    const auto& w = waypoints[i];
    if (!bounds.contains(w.pos))
      return fail("waypoint " + std::to_string(i) + " outside bounds");
    for (const int n : w.neighbors) {
      if (n < 0 || n >= static_cast<int>(waypoints.size()))
        return fail("waypoint " + std::to_string(i) + " bad neighbor");
      const auto& back = waypoints[static_cast<size_t>(n)].neighbors;
      if (std::find(back.begin(), back.end(), static_cast<int>(i)) ==
          back.end())
        return fail("waypoint graph not symmetric at " + std::to_string(i));
    }
  }
  // PVS sanity: square, symmetric, reflexive, clusters inside bounds.
  const size_t n = pvs.clusters.size();
  if (pvs.visible.size() != n * n) return fail("pvs matrix not square");
  for (size_t a = 0; a < n; ++a) {
    if (!bounds.intersects(pvs.clusters[a]))
      return fail("pvs cluster " + std::to_string(a) + " outside bounds");
    if (pvs.visible[a * n + a] == 0)
      return fail("pvs not reflexive at " + std::to_string(a));
    for (size_t b = 0; b < n; ++b) {
      if (pvs.visible[a * n + b] != pvs.visible[b * n + a])
        return fail("pvs not symmetric");
    }
  }
  return true;
}

}  // namespace qserv::spatial
