#include "src/spatial/collision.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/check.hpp"

namespace qserv::spatial {

namespace {

// Open-interval overlap: boxes merely touching do NOT overlap. Used for
// solidity tests so that a trace that backed off by kTraceEpsilon is not
// reported as stuck.
bool overlaps_open(const Aabb& a, const Aabb& b) {
  return a.mins.x < b.maxs.x && a.maxs.x > b.mins.x && a.mins.y < b.maxs.y &&
         a.maxs.y > b.mins.y && a.mins.z < b.maxs.z && a.maxs.z > b.mins.z;
}

constexpr int kLeafBrushes = 8;
constexpr int kMaxDepth = 16;

}  // namespace

CollisionWorld::CollisionWorld(std::vector<Brush> brushes) {
  rebuild(std::move(brushes));
}

void CollisionWorld::rebuild(std::vector<Brush> brushes) {
  brushes_ = std::move(brushes);
  nodes_.clear();
  if (brushes_.empty()) return;
  Aabb bounds = brushes_[0].bounds;
  std::vector<uint32_t> ids(brushes_.size());
  for (uint32_t i = 0; i < brushes_.size(); ++i) {
    ids[i] = i;
    bounds = bounds.unioned(brushes_[i].bounds);
  }
  build_node(std::move(ids), bounds, 0);
}

int CollisionWorld::build_node(std::vector<uint32_t> ids, const Aabb& bounds,
                               int depth) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(index)].bounds = bounds;

  if (static_cast<int>(ids.size()) <= kLeafBrushes || depth >= kMaxDepth) {
    nodes_[static_cast<size_t>(index)].brush_ids = std::move(ids);
    return index;
  }

  // Split on the longest axis at the spatial median. Brushes straddling
  // the plane stay at this node; the rest go down.
  const Vec3 size = bounds.size();
  int axis = 0;
  if (size.y > size[axis]) axis = 1;
  if (size.z > size[axis]) axis = 2;
  const float dist = (bounds.mins[axis] + bounds.maxs[axis]) * 0.5f;

  std::vector<uint32_t> lo, hi, here;
  for (const uint32_t id : ids) {
    const Aabb& b = brushes_[id].bounds;
    if (b.maxs[axis] <= dist) {
      lo.push_back(id);
    } else if (b.mins[axis] >= dist) {
      hi.push_back(id);
    } else {
      here.push_back(id);
    }
  }
  // Degenerate split (everything straddles or lands on one side): leaf.
  if (lo.empty() && hi.empty()) {
    nodes_[static_cast<size_t>(index)].brush_ids = std::move(ids);
    return index;
  }

  Aabb lo_bounds = bounds, hi_bounds = bounds;
  lo_bounds.maxs[axis] = dist;
  hi_bounds.mins[axis] = dist;

  nodes_[static_cast<size_t>(index)].axis = axis;
  nodes_[static_cast<size_t>(index)].dist = dist;
  nodes_[static_cast<size_t>(index)].brush_ids = std::move(here);
  const int child_lo = build_node(std::move(lo), lo_bounds, depth + 1);
  nodes_[static_cast<size_t>(index)].child_lo = child_lo;
  const int child_hi = build_node(std::move(hi), hi_bounds, depth + 1);
  nodes_[static_cast<size_t>(index)].child_hi = child_hi;
  return index;
}

void CollisionWorld::query_node(int node, const Aabb& box,
                                std::vector<uint32_t>& out) const {
  const KdNode& n = nodes_[static_cast<size_t>(node)];
  for (const uint32_t id : n.brush_ids) {
    if (brushes_[id].bounds.intersects(box)) out.push_back(id);
  }
  if (n.axis < 0) return;
  if (box.mins[n.axis] <= n.dist) query_node(n.child_lo, box, out);
  if (box.maxs[n.axis] >= n.dist) query_node(n.child_hi, box, out);
}

void CollisionWorld::query(const Aabb& box, std::vector<uint32_t>& out) const {
  if (nodes_.empty()) return;
  query_node(0, box, out);
}

bool CollisionWorld::point_solid(const Vec3& p) const {
  std::vector<uint32_t> hits;
  query({p, p}, hits);
  for (const uint32_t id : hits) {
    if (brushes_[id].bounds.contains(p)) return true;
  }
  return false;
}

bool CollisionWorld::box_solid(const Vec3& origin, const Vec3& mins,
                               const Vec3& maxs) const {
  const Aabb box = Aabb::at(origin, mins, maxs);
  std::vector<uint32_t> hits;
  query(box, hits);
  for (const uint32_t id : hits) {
    if (overlaps_open(brushes_[id].bounds, box)) return true;
  }
  return false;
}

TraceResult CollisionWorld::trace_box(const Vec3& start, const Vec3& end,
                                      const Vec3& mins,
                                      const Vec3& maxs) const {
  TraceResult out;
  out.endpos = end;
  const Vec3 delta = end - start;

  // Gather candidates once over the whole swept volume.
  const Aabb swept =
      Aabb::at(start, mins, maxs).swept(delta).expanded(kTraceEpsilon);
  std::vector<uint32_t> candidates;
  query(swept, candidates);
  out.brushes_tested = static_cast<int>(candidates.size());

  float best = 1.0f;
  int hit_axis = -1;
  float hit_sign = 0.0f;

  for (const uint32_t id : candidates) {
    // Minkowski expansion: sweeping box [mins,maxs] against the brush is
    // the ray start->end against the brush grown by the box extents.
    const Aabb& b = brushes_[id].bounds;
    const Vec3 emins = b.mins - maxs;
    const Vec3 emaxs = b.maxs - mins;

    float t_enter = -1e30f, t_exit = 1.0f;
    int enter_axis = -1;
    float enter_sign = 0.0f;
    bool miss = false;
    bool inside = true;
    for (int axis = 0; axis < 3 && !miss; ++axis) {
      const float s = start[axis], d = delta[axis];
      if (s <= emins[axis] || s >= emaxs[axis]) inside = false;
      if (std::fabs(d) < 1e-12f) {
        // Motion parallel to this slab: on-face contact does not collide
        // (sliding along a surface must stay frictionless here).
        if (s <= emins[axis] || s >= emaxs[axis]) miss = true;
        continue;
      }
      float t0 = (emins[axis] - s) / d;
      float t1 = (emaxs[axis] - s) / d;
      if (t0 > t1) std::swap(t0, t1);
      if (t0 > t_enter) {
        t_enter = t0;
        enter_axis = axis;
        // The hit normal opposes the motion along the entry axis.
        enter_sign = d > 0 ? -1.0f : 1.0f;
      }
      t_exit = std::min(t_exit, t1);
      if (t_enter > t_exit) miss = true;
    }
    if (miss) continue;
    if (inside) {
      out.start_solid = true;
      continue;
    }
    // t_enter < 0 means the contact is behind the start (separating from
    // a face we touch): no hit. t_enter == 0 (entering through a face we
    // start on) blocks immediately.
    if (enter_axis >= 0 && t_enter >= 0.0f && t_enter < best &&
        t_enter < 1.0f) {
      best = t_enter;
      hit_axis = enter_axis;
      hit_sign = enter_sign;
    }
  }

  if (out.start_solid) {
    out.fraction = 0.0f;
    out.endpos = start;
    return out;
  }

  if (hit_axis >= 0) {
    // Back the hit off by kTraceEpsilon of travel distance so the box
    // never comes to rest in contact with the surface.
    const float len = delta.length();
    const float backoff = len > 0.0f ? kTraceEpsilon / len : 0.0f;
    out.fraction = std::max(0.0f, best - backoff);
    out.normal = Vec3{};
    out.normal[hit_axis] = hit_sign;
  }
  out.endpos = start + delta * out.fraction;
  return out;
}

float ray_vs_aabb(const Vec3& start, const Vec3& delta, const Aabb& box,
                  Vec3* normal_out) {
  float t_enter = -1e30f, t_exit = 1.0f;
  int enter_axis = -1;
  float enter_sign = 0.0f;
  bool inside = true;
  for (int axis = 0; axis < 3; ++axis) {
    const float s = start[axis], d = delta[axis];
    if (s < box.mins[axis] || s > box.maxs[axis]) inside = false;
    if (std::fabs(d) < 1e-12f) {
      if (s < box.mins[axis] || s > box.maxs[axis]) return -1.0f;
      continue;
    }
    float t0 = (box.mins[axis] - s) / d;
    float t1 = (box.maxs[axis] - s) / d;
    if (t0 > t1) std::swap(t0, t1);
    if (t0 > t_enter) {
      t_enter = t0;
      enter_axis = axis;
      enter_sign = d > 0 ? -1.0f : 1.0f;
    }
    t_exit = std::min(t_exit, t1);
    if (t_enter > t_exit) return -1.0f;
  }
  if (inside) {
    if (normal_out != nullptr) *normal_out = Vec3{};
    return 0.0f;
  }
  if (t_enter < 0.0f || t_enter > 1.0f || enter_axis < 0) return -1.0f;
  if (normal_out != nullptr) {
    *normal_out = Vec3{};
    (*normal_out)[enter_axis] = enter_sign;
  }
  return t_enter;
}

}  // namespace qserv::spatial
