// Procedural map generator: grid-of-rooms deathmatch maps in the style of
// the large compilation maps the paper benchmarks with. Deterministic for
// a given parameter set + seed.
#pragma once

#include <cstdint>
#include <string>

#include "src/spatial/map.hpp"

namespace qserv::spatial {

struct MapGenParams {
  int rooms_x = 6;
  int rooms_y = 6;
  float room_size = 512.0f;       // interior side length, world units
  float wall_thickness = 16.0f;
  float door_width = 128.0f;      // gap in each shared wall
  float ceiling_height = 256.0f;
  int pillars_per_room = 1;       // cover inside rooms
  int spawns_per_room = 8;
  int items_per_room = 3;
  int teleporter_pairs = 4;
  uint64_t seed = 7;
};

// Full generator.
GameMap generate_map(const MapGenParams& params, const std::string& name);

// The canonical large deathmatch map used by the reproduction (substitute
// for gmdm10.bsp): 6x6 rooms, ~3 km² of floor, items and teleporters.
GameMap make_large_deathmatch(uint64_t seed = 7);

// One open room with a handful of items; used by unit tests and the
// quickstart example.
GameMap make_arena(float size = 1024.0f, uint64_t seed = 3);

}  // namespace qserv::spatial
