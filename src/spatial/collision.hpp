// Brush-based collision world. Quake maps are sets of convex solid
// brushes compiled into a BSP; our procedurally generated maps are built
// from axis-aligned brushes, accelerated by a kd-tree over brush bounds.
// The queries the game needs are:
//
//  * point-solid tests,
//  * swept-AABB traces (Quake's SV_Move / trace_t): move a box from
//    `start` to `end`, returning the first hit fraction, the clipped end
//    position and the hit plane normal.
//
// Traces report how many brushes they tested, which the cost model uses
// to charge virtual CPU time for collision work.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/aabb.hpp"
#include "src/util/vec.hpp"

namespace qserv::spatial {

struct Brush {
  Aabb bounds;
};

struct TraceResult {
  float fraction = 1.0f;  // how far the move got, 0..1
  Vec3 endpos;            // final (clipped) position of the box origin
  Vec3 normal;            // normal of the plane hit (if fraction < 1)
  bool start_solid = false;
  int brushes_tested = 0;

  bool hit() const { return fraction < 1.0f || start_solid; }
};

class CollisionWorld {
 public:
  CollisionWorld() = default;
  explicit CollisionWorld(std::vector<Brush> brushes);

  // Replaces the geometry (rebuilds the kd-tree).
  void rebuild(std::vector<Brush> brushes);

  size_t brush_count() const { return brushes_.size(); }
  const std::vector<Brush>& brushes() const { return brushes_; }

  bool point_solid(const Vec3& p) const;

  // True if a box placed with its origin at `origin` (carrying local
  // bounds mins/maxs) intersects any solid brush.
  bool box_solid(const Vec3& origin, const Vec3& mins, const Vec3& maxs) const;

  // Sweeps a box with local bounds [mins, maxs] from `start` to `end`.
  TraceResult trace_box(const Vec3& start, const Vec3& end, const Vec3& mins,
                        const Vec3& maxs) const;

  // Zero-extent ray trace (line of sight, hitscan weapons).
  TraceResult trace_line(const Vec3& start, const Vec3& end) const {
    return trace_box(start, end, Vec3{}, Vec3{});
  }

  // Appends indices of brushes whose bounds intersect `box`.
  void query(const Aabb& box, std::vector<uint32_t>& out) const;

 private:
  struct KdNode {
    Aabb bounds;
    int axis = -1;  // -1 = leaf
    float dist = 0.0f;
    int child_lo = -1;
    int child_hi = -1;
    std::vector<uint32_t> brush_ids;  // leaves only
  };

  int build_node(std::vector<uint32_t> ids, const Aabb& bounds, int depth);
  void query_node(int node, const Aabb& box, std::vector<uint32_t>& out) const;

  std::vector<Brush> brushes_;
  std::vector<KdNode> nodes_;
};

// Distance traces back off from hit surfaces, as in Quake (DIST_EPSILON),
// so a clipped move never leaves the box touching/inside the surface.
inline constexpr float kTraceEpsilon = 0.03125f;

// Intersects the segment start -> start+delta with `box`. Returns the
// entry fraction in [0, 1], or a negative value on a miss. A start point
// already inside the box returns 0. `normal_out`, if non-null, receives
// the entry face normal.
float ray_vs_aabb(const Vec3& start, const Vec3& delta, const Aabb& box,
                  Vec3* normal_out = nullptr);

}  // namespace qserv::spatial
