#include "src/spatial/map_gen.hpp"

#include <algorithm>

#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace qserv::spatial {

namespace {

// Clearance used when sampling spawn/item positions: a standing player
// box (matches sim::kPlayerMins/Maxs; duplicated here so spatial/ stays
// independent of sim/).
constexpr Vec3 kClearMins{-16.0f, -16.0f, -24.0f};
constexpr Vec3 kClearMaxs{16.0f, 16.0f, 32.0f};
constexpr float kEyeHeight = 24.0f;  // origin sits this far above the floor

Brush slab(float x0, float y0, float z0, float x1, float y1, float z1) {
  return Brush{Aabb{{x0, y0, z0}, {x1, y1, z1}}};
}

}  // namespace

GameMap generate_map(const MapGenParams& p, const std::string& name) {
  QSERV_CHECK(p.rooms_x >= 1 && p.rooms_y >= 1);
  QSERV_CHECK(p.door_width < p.room_size);
  Rng rng(p.seed);

  GameMap map;
  map.name = name;

  const float wall = p.wall_thickness;
  const float pitch = p.room_size + wall;
  const float width = static_cast<float>(p.rooms_x) * pitch + wall;
  const float depth = static_cast<float>(p.rooms_y) * pitch + wall;
  const float h = p.ceiling_height;
  // Centered on the origin so areanode splits fall between rooms.
  const float x_min = -width * 0.5f, y_min = -depth * 0.5f;
  const float x_max = width * 0.5f, y_max = depth * 0.5f;
  map.bounds = Aabb{{x_min, y_min, -16.0f}, {x_max, y_max, h + 16.0f}};

  auto room_x0 = [&](int i) { return x_min + wall + static_cast<float>(i) * pitch; };
  auto room_y0 = [&](int j) { return y_min + wall + static_cast<float>(j) * pitch; };

  // Floor and ceiling.
  map.brushes.push_back(slab(x_min, y_min, -16.0f, x_max, y_max, 0.0f));
  map.brushes.push_back(slab(x_min, y_min, h, x_max, y_max, h + 16.0f));
  // Outer walls.
  map.brushes.push_back(slab(x_min, y_min, 0, x_min + wall, y_max, h));
  map.brushes.push_back(slab(x_max - wall, y_min, 0, x_max, y_max, h));
  map.brushes.push_back(slab(x_min, y_min, 0, x_max, y_min + wall, h));
  map.brushes.push_back(slab(x_min, y_max - wall, 0, x_max, y_max, h));

  struct Door {
    Vec3 pos;
    int room_a, room_b;  // flat room indices
  };
  std::vector<Door> doors;
  auto room_index = [&](int i, int j) { return j * p.rooms_x + i; };

  // Interior walls with one door gap each.
  for (int i = 0; i + 1 < p.rooms_x; ++i) {
    for (int j = 0; j < p.rooms_y; ++j) {
      const float wx0 = room_x0(i) + p.room_size;
      const float wx1 = wx0 + wall;
      const float y0 = room_y0(j), y1 = y0 + p.room_size;
      const float margin = p.door_width * 0.5f + 32.0f;
      const float gap_c = rng.uniform(y0 + margin, y1 - margin);
      const float g0 = gap_c - p.door_width * 0.5f;
      const float g1 = gap_c + p.door_width * 0.5f;
      if (g0 > y0) map.brushes.push_back(slab(wx0, y0 - wall, 0, wx1, g0, h));
      if (g1 < y1) map.brushes.push_back(slab(wx0, g1, 0, wx1, y1 + wall, h));
      doors.push_back({{(wx0 + wx1) * 0.5f, gap_c, kEyeHeight},
                       room_index(i, j), room_index(i + 1, j)});
    }
  }
  for (int j = 0; j + 1 < p.rooms_y; ++j) {
    for (int i = 0; i < p.rooms_x; ++i) {
      const float wy0 = room_y0(j) + p.room_size;
      const float wy1 = wy0 + wall;
      const float x0 = room_x0(i), x1 = x0 + p.room_size;
      const float margin = p.door_width * 0.5f + 32.0f;
      const float gap_c = rng.uniform(x0 + margin, x1 - margin);
      const float g0 = gap_c - p.door_width * 0.5f;
      const float g1 = gap_c + p.door_width * 0.5f;
      if (g0 > x0) map.brushes.push_back(slab(x0 - wall, wy0, 0, g0, wy1, h));
      if (g1 < x1) map.brushes.push_back(slab(g1, wy0, 0, x1 + wall, wy1, h));
      doors.push_back({{gap_c, (wy0 + wy1) * 0.5f, kEyeHeight},
                       room_index(i, j), room_index(i, j + 1)});
    }
  }

  // Pillars: square columns away from room edges (doors are at edges, so
  // clearance is automatic).
  for (int j = 0; j < p.rooms_y; ++j) {
    for (int i = 0; i < p.rooms_x; ++i) {
      for (int k = 0; k < p.pillars_per_room; ++k) {
        const float half = 32.0f;
        const float inset = 128.0f;
        const float cx =
            rng.uniform(room_x0(i) + inset, room_x0(i) + p.room_size - inset);
        const float cy =
            rng.uniform(room_y0(j) + inset, room_y0(j) + p.room_size - inset);
        map.brushes.push_back(
            slab(cx - half, cy - half, 0, cx + half, cy + half, h));
      }
    }
  }

  const CollisionWorld world(map.brushes);
  auto sample_clear = [&](int i, int j, float z, Vec3& out) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const float inset = 48.0f;
      Vec3 cand{
          rng.uniform(room_x0(i) + inset, room_x0(i) + p.room_size - inset),
          rng.uniform(room_y0(j) + inset, room_y0(j) + p.room_size - inset),
          z};
      if (!world.box_solid(cand, kClearMins, kClearMaxs)) {
        out = cand;
        return true;
      }
    }
    return false;
  };

  // Spawn points and items per room.
  int item_cycle = 0;
  for (int j = 0; j < p.rooms_y; ++j) {
    for (int i = 0; i < p.rooms_x; ++i) {
      for (int s = 0; s < p.spawns_per_room; ++s) {
        Vec3 pos;
        if (sample_clear(i, j, kEyeHeight, pos))
          map.spawns.push_back({pos, rng.uniform(0.0f, 360.0f)});
      }
      for (int s = 0; s < p.items_per_room; ++s) {
        Vec3 pos;
        if (!sample_clear(i, j, kEyeHeight, pos)) continue;
        pos.z = 8.0f;
        constexpr ItemType kCycle[] = {ItemType::kHealth, ItemType::kWeapon,
                                       ItemType::kArmor, ItemType::kAmmo};
        map.items.push_back({kCycle[item_cycle++ % 4], pos});
      }
      if ((room_index(i, j) % 7) == 3) {
        Vec3 pos;
        if (sample_clear(i, j, 8.0f, pos))
          map.items.push_back({ItemType::kMegaHealth, pos});
      }
    }
  }

  // Teleporter pairs between distant rooms.
  const int n_rooms = p.rooms_x * p.rooms_y;
  for (int t = 0; t < p.teleporter_pairs && n_rooms >= 2; ++t) {
    const int ra = static_cast<int>(rng.below(static_cast<uint64_t>(n_rooms)));
    int rb = static_cast<int>(rng.below(static_cast<uint64_t>(n_rooms)));
    if (rb == ra) rb = (ra + n_rooms / 2) % n_rooms;
    Vec3 pa, pb;
    if (sample_clear(ra % p.rooms_x, ra / p.rooms_x, kEyeHeight, pa) &&
        sample_clear(rb % p.rooms_x, rb / p.rooms_x, kEyeHeight, pb)) {
      map.teleporters.push_back({pa, pb});
      map.teleporters.push_back({pb, pa});
    }
  }

  // Waypoint graph: one node per room center, one per door, linked
  // door <-> both adjoining rooms.
  map.waypoints.resize(static_cast<size_t>(n_rooms));
  for (int j = 0; j < p.rooms_y; ++j) {
    for (int i = 0; i < p.rooms_x; ++i) {
      Vec3 c{room_x0(i) + p.room_size * 0.5f, room_y0(j) + p.room_size * 0.5f,
             kEyeHeight};
      // Nudge off a pillar if the room center is blocked.
      if (world.box_solid(c, kClearMins, kClearMaxs)) sample_clear(i, j, kEyeHeight, c);
      map.waypoints[static_cast<size_t>(room_index(i, j))].pos = c;
    }
  }
  for (const Door& d : doors) {
    const int wp = static_cast<int>(map.waypoints.size());
    map.waypoints.push_back({d.pos, {d.room_a, d.room_b}});
    map.waypoints[static_cast<size_t>(d.room_a)].neighbors.push_back(wp);
    map.waypoints[static_cast<size_t>(d.room_b)].neighbors.push_back(wp);
  }

  // PVS: one cluster per room interior, visibility by sight-line
  // sampling (doors connect; walls occlude).
  {
    std::vector<Aabb> clusters;
    clusters.reserve(static_cast<size_t>(n_rooms));
    for (int j = 0; j < p.rooms_y; ++j) {
      for (int i = 0; i < p.rooms_x; ++i) {
        clusters.push_back(Aabb{{room_x0(i), room_y0(j), 0.0f},
                                {room_x0(i) + p.room_size,
                                 room_y0(j) + p.room_size, h}});
      }
    }
    map.pvs = compute_pvs(clusters, world);
  }

  return map;
}

GameMap make_large_deathmatch(uint64_t seed) {
  // Sized like the paper's gmdm10 ("one of the largest maps we could
  // find", designed for 16-32 players): at 64-160 players it is heavily
  // overcrowded, which is exactly the regime the paper measures. With the
  // default areanode depth of 4, each of the 16 leaves covers about one
  // room.
  MapGenParams p;
  p.rooms_x = 4;
  p.rooms_y = 4;
  p.spawns_per_room = 14;
  p.items_per_room = 4;
  p.seed = seed;
  return generate_map(p, "qdm-large");
}

GameMap make_arena(float size, uint64_t seed) {
  MapGenParams p;
  p.rooms_x = 1;
  p.rooms_y = 1;
  p.room_size = size;
  p.pillars_per_room = 0;
  p.spawns_per_room = 16;
  p.items_per_room = 4;
  p.teleporter_pairs = 0;
  p.seed = seed;
  return generate_map(p, "arena");
}

}  // namespace qserv::spatial
