// The Quake areanode tree (§2.2 of the paper), reproduced faithfully:
//
//  * the world volume is split recursively in half by vertical planes,
//    alternating between the x and y axes, to a configurable depth
//    (default 4 → 31 nodes, 16 leaves, exactly the server's default);
//  * the structure is 2-D: every node spans the full world height;
//  * an entity is linked to the deepest node whose volume fully contains
//    its bounding box — entities crossing a division plane therefore link
//    to an interior ("parent") node, all others to a leaf;
//  * each node carries the list of entities linked to it.
//
// The tree itself is a passive data structure; region locks over its
// nodes live in core/lock_manager. Node indices are heap-ordered
// (children of i are 2i+1 / 2i+2), which doubles as the canonical lock
// acquisition order that makes leaf locking deadlock-free.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/aabb.hpp"
#include "src/util/check.hpp"

namespace qserv::spatial {

struct AreaNode {
  int index = 0;
  int parent = -1;
  int depth = 0;
  int axis = -1;      // split axis (0=x, 1=y); -1 for leaves
  float dist = 0.0f;  // split plane position on `axis`
  int child_lo = -1;  // side with coordinate < dist
  int child_hi = -1;
  Aabb bounds;
  // Entities linked to this node (ids are opaque to the tree). Order is
  // insertion order; unlink preserves it, keeping runs deterministic.
  std::vector<uint32_t> objects;
};

class AreanodeTree {
 public:
  // `depth` is the leaf depth: node count = 2^(depth+1) - 1. The paper
  // sweeps total node counts {3, 7, 15, 31, 63} = depths {1..5}.
  AreanodeTree(const Aabb& world_bounds, int depth);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int leaf_count() const { return leaf_count_; }
  int depth() const { return depth_; }
  const Aabb& world_bounds() const { return nodes_[0].bounds; }

  const AreaNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  bool is_leaf(int i) const { return nodes_[static_cast<size_t>(i)].axis < 0; }
  // Leaves occupy the tail of the index space; this maps a node index to
  // a dense leaf ordinal in [0, leaf_count).
  int leaf_ordinal(int node_index) const {
    QSERV_DCHECK(is_leaf(node_index));
    return node_index - (node_count() - leaf_count());
  }

  // The node a box should be linked to: the deepest node whose volume
  // fully contains the box (walk down while the box is strictly on one
  // side of the split plane).
  int link_node_for(const Aabb& box) const;

  // Links entity `id` with bounds `box`; returns the node linked to.
  int link(uint32_t id, const Aabb& box);
  // Unlinks entity `id` from `node_index` (must be linked there).
  void unlink(uint32_t id, int node_index);

  // Appends the indices of all leaves whose volume intersects `box`, in
  // canonical (ascending index) order.
  void leaves_for(const Aabb& box, std::vector<int>& out) const;

  // SV_AreaEdicts-style traversal: visits every node whose volume
  // intersects `box`, root first, calling visit(node_index). The visitor
  // scans that node's object list (under the parent lock, in the parallel
  // server).
  template <typename Fn>
  void traverse(const Aabb& box, Fn&& visit) const {
    traverse_from(0, box, visit);
  }

  // Total entities currently linked anywhere (O(nodes), for tests).
  size_t total_linked() const;

  // --- checkpoint restore (single-threaded) ---
  // Empties every node's object list.
  void clear_all_objects() {
    for (auto& n : nodes_) n.objects.clear();
  }
  // Appends `id` to `node_index`'s list. Restore replays each node's
  // recorded list in order, reproducing insertion order exactly — list
  // order is part of the deterministic-replay contract.
  void restore_object(int node_index, uint32_t id) {
    QSERV_CHECK(node_index >= 0 && node_index < node_count());
    nodes_[static_cast<size_t>(node_index)].objects.push_back(id);
  }

 private:
  void build(int index, int parent, int depth, const Aabb& bounds);

  template <typename Fn>
  void traverse_from(int index, const Aabb& box, Fn& visit) const {
    const AreaNode& n = nodes_[static_cast<size_t>(index)];
    visit(index);
    if (n.axis < 0) return;
    // Closed-interval tests, consistent with leaves_for(): a box touching
    // the plane descends into both children, so the set of leaves visited
    // is exactly the set of leaves locked for the same box.
    if (box.mins[n.axis] <= n.dist) traverse_from(n.child_lo, box, visit);
    if (box.maxs[n.axis] >= n.dist) traverse_from(n.child_hi, box, visit);
  }

  int depth_ = 0;
  int leaf_count_ = 0;
  std::vector<AreaNode> nodes_;
};

}  // namespace qserv::spatial
