#include "src/recovery/checkpoint.hpp"

#include <chrono>

#include "src/net/bytestream.hpp"
#include "src/net/protocol.hpp"
#include "src/recovery/digest.hpp"
#include "src/util/check.hpp"

namespace qserv::recovery {
namespace {

// Hard ceilings the loader enforces regardless of what counts the file
// claims: a length-lying checkpoint is rejected, not trusted.
constexpr uint32_t kMaxEntities = 1u << 20;
constexpr uint32_t kMaxClients = 1u << 16;
constexpr uint32_t kMaxNodes = 1u << 16;
constexpr uint32_t kMaxEvicted = 1u << 16;
constexpr size_t kMaxNameLen = 64;
// Conservative lower bound on an encoded entity, for count-vs-remaining
// checks before any resize.
constexpr size_t kMinEntityBytes = 32;
constexpr size_t kMinClientBytes = 16;

void encode_entity(net::ByteWriter& w, const sim::Entity& e) {
  w.u32(e.id);
  w.u8(static_cast<uint8_t>(e.type));
  w.u8(static_cast<uint8_t>(e.solid) | (static_cast<uint8_t>(e.on_ground) << 1) |
       (static_cast<uint8_t>(e.available) << 2));
  w.i32(e.areanode);
  w.i32(e.cluster);
  w.vec3(e.origin);
  w.vec3(e.velocity);
  w.f32(e.yaw_deg);
  w.vec3(e.mins);
  w.vec3(e.maxs);
  w.str(e.name);
  w.i32(e.health);
  w.i32(e.armor);
  w.i32(e.frags);
  w.i32(e.grenades);
  w.u8(static_cast<uint8_t>(e.weapon));
  w.i64(e.next_attack.ns);
  w.u32(e.deaths);
  w.u8(static_cast<uint8_t>(e.item));
  w.i64(e.respawn_at.ns);
  w.u32(e.owner);
  w.vec3(e.dir);
  w.i64(e.expire_at.ns);
  w.vec3(e.teleport_dest);
}

bool decode_entity(net::ByteReader& r, sim::Entity& e) {
  e.id = r.u32();
  e.type = static_cast<sim::EntityType>(r.u8());
  const uint8_t flags = r.u8();
  e.solid = (flags & 1) != 0;
  e.on_ground = (flags & 2) != 0;
  e.available = (flags & 4) != 0;
  e.active = true;
  e.areanode = r.i32();
  e.cluster = r.i32();
  e.origin = r.vec3();
  e.velocity = r.vec3();
  e.yaw_deg = r.f32();
  e.mins = r.vec3();
  e.maxs = r.vec3();
  e.name = r.str();
  e.health = r.i32();
  e.armor = r.i32();
  e.frags = r.i32();
  e.grenades = r.i32();
  e.weapon = static_cast<sim::Weapon>(r.u8());
  e.next_attack = vt::TimePoint{r.i64()};
  e.deaths = r.u32();
  e.item = static_cast<spatial::ItemType>(r.u8());
  e.respawn_at = vt::TimePoint{r.i64()};
  e.owner = r.u32();
  e.dir = r.vec3();
  e.expire_at = vt::TimePoint{r.i64()};
  e.teleport_dest = r.vec3();
  return r.ok() && e.name.size() <= kMaxNameLen;
}

// True iff `count` elements of at least `min_bytes` each could possibly
// fit in what's left of the buffer. Checked before every resize so a
// length-lying count can't balloon memory.
bool count_fits(const net::ByteReader& r, uint64_t count, size_t min_bytes) {
  return count <= r.remaining() / min_bytes;
}

}  // namespace

const char* load_error_name(LoadError e) {
  switch (e) {
    case LoadError::kNone: return "none";
    case LoadError::kTruncated: return "truncated";
    case LoadError::kBadMagic: return "bad-magic";
    case LoadError::kBadVersion: return "bad-version";
    case LoadError::kCorrupt: return "corrupt";
    case LoadError::kReplayDiverged: return "replay-diverged";
    case LoadError::kChecksum: return "checksum";
  }
  return "?";
}

std::vector<uint8_t> encode_checkpoint(const CheckpointData& c) {
  net::ByteWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u64(c.frame);
  w.i64(c.captured_at_ns);
  w.u64(c.seed);
  w.u16(c.base_port);
  w.u32(c.threads);
  w.u32(c.max_clients);
  w.i32(c.areanode_depth);
  w.u64(c.next_order);
  w.u64(c.digest);
  for (const uint64_t word : c.rng_state) w.u64(word);
  // Map text can exceed the u16 str() limit; length-prefix with u32.
  w.u32(static_cast<uint32_t>(c.map_text.size()));
  w.bytes(reinterpret_cast<const uint8_t*>(c.map_text.data()),
          c.map_text.size());
  w.u32(c.entity_storage);
  w.u32(static_cast<uint32_t>(c.entities.size()));
  for (const auto& e : c.entities) encode_entity(w, e);
  w.u32(static_cast<uint32_t>(c.free_ids.size()));
  for (const uint32_t id : c.free_ids) w.u32(id);
  w.u32(static_cast<uint32_t>(c.node_objects.size()));
  for (const auto& [node, ids] : c.node_objects) {
    w.i32(node);
    w.u32(static_cast<uint32_t>(ids.size()));
    for (const uint32_t id : ids) w.u32(id);
  }
  w.u32(static_cast<uint32_t>(c.clients.size()));
  for (const auto& cl : c.clients) {
    w.u16(cl.slot);
    w.u16(cl.remote_port);
    w.str(cl.name);
    w.u32(cl.entity_id);
    w.u32(cl.owner_thread);
    w.u32(cl.last_seq);
    w.i64(cl.last_move_time_ns);
    w.i64(cl.last_heard_ns);
    w.u32(cl.chan_out_seq);
    w.u32(cl.chan_in_seq);
    w.u32(cl.chan_in_acked);
  }
  w.u32(static_cast<uint32_t>(c.evicted_ports.size()));
  for (const uint16_t p : c.evicted_ports) w.u16(p);
  // Whole-file content checksum over every byte written above. Last so
  // the single-pass writer needs no reserved slot.
  w.u64(fnv1a64(w.data().data(), w.size()));
  return w.take();
}

LoadError decode_checkpoint(const uint8_t* data, size_t n,
                            CheckpointData& out) {
  net::ByteReader r(data, n);
  const uint32_t magic = r.u32();
  const uint32_t version = r.u32();
  if (r.overflowed()) return LoadError::kTruncated;
  if (magic != kCheckpointMagic) return LoadError::kBadMagic;
  if (version != kCheckpointVersion) return LoadError::kBadVersion;
  // Content checksum before any section is interpreted: the trailing u64
  // must be the FNV-1a of everything before it. Magic/version are checked
  // first so a wrong-format file still reports as such.
  if (n < 16) return LoadError::kTruncated;
  uint64_t stored = 0;
  for (size_t i = 0; i < 8; ++i)
    stored |= static_cast<uint64_t>(data[n - 8 + i]) << (8 * i);
  if (fnv1a64(data, n - 8) != stored) return LoadError::kChecksum;

  out = CheckpointData{};
  out.frame = r.u64();
  out.captured_at_ns = r.i64();
  out.seed = r.u64();
  out.base_port = r.u16();
  out.threads = r.u32();
  out.max_clients = r.u32();
  out.areanode_depth = r.i32();
  out.next_order = r.u64();
  out.digest = r.u64();
  for (auto& word : out.rng_state) word = r.u64();

  const uint32_t map_len = r.u32();
  if (r.overflowed()) return LoadError::kTruncated;
  if (map_len > r.remaining()) return LoadError::kCorrupt;
  out.map_text.assign(reinterpret_cast<const char*>(data + (n - r.remaining())),
                      map_len);
  // Advance past the raw bytes (ByteReader has no skip; re-seat a reader).
  net::ByteReader rest(data + (n - r.remaining()) + map_len,
                       r.remaining() - map_len);

  out.entity_storage = rest.u32();
  if (out.entity_storage > kMaxEntities) return LoadError::kCorrupt;

  const uint32_t entity_count = rest.u32();
  if (rest.overflowed()) return LoadError::kTruncated;
  if (entity_count > kMaxEntities ||
      !count_fits(rest, entity_count, kMinEntityBytes))
    return LoadError::kCorrupt;
  out.entities.resize(entity_count);
  uint32_t prev_id = 0;
  for (uint32_t i = 0; i < entity_count; ++i) {
    if (!decode_entity(rest, out.entities[i]))
      return rest.overflowed() ? LoadError::kTruncated : LoadError::kCorrupt;
    const uint32_t id = out.entities[i].id;
    if (id >= out.entity_storage) return LoadError::kCorrupt;
    if (i > 0 && id <= prev_id) return LoadError::kCorrupt;  // id order
    prev_id = id;
  }

  const uint32_t free_count = rest.u32();
  if (rest.overflowed()) return LoadError::kTruncated;
  if (free_count > kMaxEntities || !count_fits(rest, free_count, 4))
    return LoadError::kCorrupt;
  out.free_ids.resize(free_count);
  for (auto& id : out.free_ids) {
    id = rest.u32();
    if (!rest.overflowed() && id >= out.entity_storage)
      return LoadError::kCorrupt;
  }

  const uint32_t node_count = rest.u32();
  if (rest.overflowed()) return LoadError::kTruncated;
  if (node_count > kMaxNodes || !count_fits(rest, node_count, 8))
    return LoadError::kCorrupt;
  out.node_objects.resize(node_count);
  for (auto& [node, ids] : out.node_objects) {
    node = rest.i32();
    const uint32_t id_count = rest.u32();
    if (rest.overflowed()) return LoadError::kTruncated;
    if (node < 0 || id_count > kMaxEntities || !count_fits(rest, id_count, 4))
      return LoadError::kCorrupt;
    ids.resize(id_count);
    for (auto& id : ids) id = rest.u32();
  }

  const uint32_t client_count = rest.u32();
  if (rest.overflowed()) return LoadError::kTruncated;
  if (client_count > kMaxClients ||
      !count_fits(rest, client_count, kMinClientBytes))
    return LoadError::kCorrupt;
  out.clients.resize(client_count);
  for (auto& cl : out.clients) {
    cl.slot = rest.u16();
    cl.remote_port = rest.u16();
    cl.name = rest.str();
    if (cl.name.size() > kMaxNameLen) return LoadError::kCorrupt;
    cl.entity_id = rest.u32();
    cl.owner_thread = rest.u32();
    cl.last_seq = rest.u32();
    cl.last_move_time_ns = rest.i64();
    cl.last_heard_ns = rest.i64();
    cl.chan_out_seq = rest.u32();
    cl.chan_in_seq = rest.u32();
    cl.chan_in_acked = rest.u32();
    if (!rest.overflowed() &&
        (cl.slot >= out.max_clients || cl.entity_id >= out.entity_storage))
      return LoadError::kCorrupt;
  }

  const uint32_t evicted_count = rest.u32();
  if (rest.overflowed()) return LoadError::kTruncated;
  if (evicted_count > kMaxEvicted || !count_fits(rest, evicted_count, 2))
    return LoadError::kCorrupt;
  out.evicted_ports.resize(evicted_count);
  for (auto& p : out.evicted_ports) p = rest.u16();

  if (rest.overflowed()) return LoadError::kTruncated;
  return LoadError::kNone;
}

void restore_world(const CheckpointData& c, sim::World& w) {
  w.reserve_entities(c.entity_storage);
  w.begin_restore();
  for (const auto& e : c.entities) w.restore_entity(e);
  for (const auto& [node, ids] : c.node_objects) {
    for (const uint32_t id : ids) w.restore_link(id, node);
  }
  w.finish_restore(c.free_ids);
  w.rng().set_state(c.rng_state);
}

size_t CheckpointManager::store(const CheckpointData& c) {
  const auto t0 = std::chrono::steady_clock::now();
  // Encode fully into the unpublished buffer first; the release-store
  // below is the single publication point (see the class comment's
  // swap-order audit).
  const int next = current_.load(std::memory_order_relaxed) == 0 ? 1 : 0;
  buf_[next] = encode_checkpoint(c);
  frame_[next] = c.frame;
  current_.store(next, std::memory_order_release);
  const auto t1 = std::chrono::steady_clock::now();
  last_pause_ns_ =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  if (last_pause_ns_ > max_pause_ns_) max_pause_ns_ = last_pause_ns_;
  ++count_;
  return buf_[next].size();
}

}  // namespace qserv::recovery
