// Crash-recovery knobs, nested into ServerConfig as `recovery`. Off by
// default: the seed server's behavior (and cost profile) is unchanged
// unless a harness opts in.
#pragma once

#include <cstdint>
#include <string>

namespace qserv::recovery {

struct Config {
  // Master switch: journal inbound traffic, record per-frame digests and
  // take periodic checkpoints. Everything below is inert when false.
  bool enabled = false;

  // Frames between checkpoints (0 = never automatically; a black-box dump
  // still captures one on demand). The journal ring must span at least
  // one interval for replay verification to find a usable anchor.
  uint32_t checkpoint_interval = 64;

  // Ring bound on retained per-frame journals ("the last N frames of
  // input are always in memory").
  uint32_t journal_frames = 2048;

  // Record a 32-bit hash per entity each frame in addition to the frame
  // digest, so divergence reports name the first offending entity. Costs
  // ~6 bytes/entity/frame of journal memory.
  bool per_entity_digests = true;

  // Where black-box dumps land; "" = current directory.
  std::string dump_dir;

  bool dump_on_invariant_violation = true;
  bool dump_on_stall = true;
  // Installs a process-global fatal-signal handler (SIGSEGV/SIGABRT/...)
  // that writes the latest pre-encoded checkpoint with async-signal-safe
  // calls only. Best-effort by nature; off in tests.
  bool install_signal_handler = false;

  // Cap on remembered ports of evicted clients, so a warm-restarted
  // server can answer their moves with kEvicted instead of silence.
  uint32_t remembered_evictions = 1024;
};

}  // namespace qserv::recovery
