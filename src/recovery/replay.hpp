// Deterministic replay: restore a checkpoint into a fresh World and
// re-execute the journal's state-change records — world-phase ticks, move
// commands, lifecycle operations — in serialization-index order, checking
// the FNV world digest after every frame against the digest recorded
// live. The first mismatching frame (and, with per-entity digests, the
// first mismatching entity) is reported.
//
// This is pure re-execution over recorded inputs, not a re-run of the
// concurrent server: frame formation, thread interleaving and drop
// decisions are timing-dependent and are taken from the journal, while
// everything that mutates the world is re-derived. The determinism
// preconditions this rests on are documented in DESIGN.md §9.
#pragma once

#include <string>

#include "src/recovery/checkpoint.hpp"
#include "src/recovery/journal.hpp"

namespace qserv::recovery {

struct ReplayResult {
  bool ok = false;       // ran to the end with every digest matching
  std::string error;     // setup failure (bad map, journal gap, ...)
  uint64_t start_frame = 0;
  uint64_t frames_checked = 0;
  uint64_t moves_applied = 0;
  uint64_t lifecycle_applied = 0;

  bool diverged = false;
  uint64_t divergent_frame = 0;
  uint32_t divergent_entity = 0;  // 0 = not attributed
  uint64_t want_digest = 0;       // recorded live
  uint64_t got_digest = 0;        // recomputed by replay
  std::string detail;

  std::string summary() const;
};

// Replays `journal` frames following `ckpt.frame`. The journal may reach
// further back than the checkpoint (ring longer than the checkpoint
// interval); earlier frames are skipped. A gap — the ring no longer
// containing ckpt.frame+1 — is a setup error, not a divergence.
ReplayResult replay_verify(const CheckpointData& ckpt,
                           const JournalFile& journal);

// Convenience for harnesses and tests: verifies a live server's latest
// checkpoint against its in-memory ring.
ReplayResult verify_recorded(const CheckpointManager& checkpoints,
                             const FlightRecorder& recorder);

}  // namespace qserv::recovery
