// The black box: when something goes wrong — an invariant violation, a
// watchdog stall verdict, a fatal signal — dump everything a post-mortem
// needs to one directory: the latest checkpoint, the journal tail, the
// observability trace and a plain-text meta file naming the trigger.
// Checkpoint + journal feed `qserv-replay`; the trace feeds
// chrome://tracing.
//
// The fatal-signal path is deliberately minimal: handlers may only use
// async-signal-safe calls, so it writes the already-encoded checkpoint
// buffer (double-buffered by CheckpointManager, so the published image is
// never mid-write) with open/write/close and nothing else. Best-effort by
// nature — a corrupted process may fail to dump — and process-global, so
// installation is opt-in and last-registration-wins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qserv::recovery {

class BlackBox {
 public:
  // `dump_dir` "" = current directory. Directories are created on demand.
  explicit BlackBox(std::string dump_dir) : dir_(std::move(dump_dir)) {}

  // Writes `<dir>/qserv-blackbox-<label>-<n>/{checkpoint.qckpt,
  // journal.qjrnl, trace.json, meta.txt}`; empty buffers are skipped.
  // Returns the dump directory path, or "" on I/O failure.
  std::string dump(const std::string& label, const std::string& meta,
                   const std::vector<uint8_t>& checkpoint,
                   const std::vector<uint8_t>& journal,
                   const std::string& trace_json);

  uint64_t dumps() const { return dumps_; }
  const std::string& last_path() const { return last_path_; }

 private:
  std::string dir_;
  uint64_t dumps_ = 0;
  std::string last_path_;
};

// Installs the fatal-signal handler (SIGSEGV, SIGBUS, SIGFPE, SIGILL,
// SIGABRT) that writes the currently-published checkpoint image to
// `path`. Process-global, last installation wins.
void install_signal_dumper(const std::string& path);

// Publishes the image the signal handler writes. Call after every
// checkpoint store with the manager's latest() bytes: the double buffer
// guarantees those bytes stay valid and unmodified until the *next*
// publish. Pass (nullptr, 0) to disarm (e.g. before the buffers die).
void publish_signal_dump(const uint8_t* data, size_t len);

}  // namespace qserv::recovery
