#include "src/recovery/replay.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/recovery/digest.hpp"
#include "src/sim/move.hpp"
#include "src/spatial/map.hpp"

namespace qserv::recovery {
namespace {

struct NullSink final : sim::EventSink {
  void emit(const net::GameEvent&) override {}
};

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

// Names the first entity whose recorded hash differs from the replayed
// world's, walking both id-ordered lists in lockstep. Returns 0 when the
// recording carried no per-entity digests (or the lists are equal and the
// divergence is in the allocator/RNG tail of the frame digest).
uint32_t first_divergent_entity(const std::vector<EntityDigest>& want,
                                const std::vector<EntityDigest>& got,
                                std::string* detail) {
  size_t i = 0, j = 0;
  while (i < want.size() || j < got.size()) {
    if (j >= got.size() || (i < want.size() && want[i].id < got[j].id)) {
      *detail = format("entity %u exists live but not in replay", want[i].id);
      return want[i].id;
    }
    if (i >= want.size() || got[j].id < want[i].id) {
      *detail = format("entity %u exists in replay but not live", got[j].id);
      return got[j].id;
    }
    if (want[i].hash != got[j].hash) {
      *detail = format("entity %u state hash differs (live %08x, replay %08x)",
                       want[i].id, want[i].hash, got[j].hash);
      return want[i].id;
    }
    ++i;
    ++j;
  }
  *detail = "all entities match; allocator or RNG state differs";
  return 0;
}

}  // namespace

std::string ReplayResult::summary() const {
  if (!error.empty()) return "replay setup failed: " + error;
  if (diverged) {
    std::string s = format(
        "DIVERGED at frame %" PRIu64 " (digest live %016" PRIx64
        " vs replay %016" PRIx64 ")",
        divergent_frame, want_digest, got_digest);
    if (!detail.empty()) s += ": " + detail;
    return s;
  }
  return format("replay identical over %" PRIu64 " frames (%" PRIu64
                " moves, %" PRIu64 " lifecycle ops) from frame %" PRIu64,
                frames_checked, moves_applied, lifecycle_applied, start_frame);
}

ReplayResult replay_verify(const CheckpointData& ckpt,
                           const JournalFile& journal) {
  ReplayResult res;
  res.start_frame = ckpt.frame;

  spatial::GameMap map;
  if (!spatial::GameMap::parse(ckpt.map_text, map)) {
    res.error = "checkpoint map text does not parse";
    return res;
  }
  sim::World world(map, {ckpt.areanode_depth, ckpt.seed});
  restore_world(ckpt, world);

  const uint64_t d0 = world_digest(world);
  if (ckpt.digest != 0 && d0 != ckpt.digest) {
    res.diverged = true;
    res.divergent_frame = ckpt.frame;
    res.want_digest = ckpt.digest;
    res.got_digest = d0;
    res.detail = "restored world digest differs at the checkpoint itself";
    return res;
  }

  NullSink sink;
  std::vector<EntityDigest> got_entities;
  uint64_t expected = ckpt.frame + 1;
  for (const auto& fj : journal.frames) {
    if (fj.frame <= ckpt.frame) continue;  // ring reaches further back
    if (fj.frame != expected) {
      res.error = format("journal gap: expected frame %" PRIu64
                         ", ring has %" PRIu64,
                         expected, fj.frame);
      return res;
    }
    ++expected;

    for (const auto& rec : fj.records) {
      switch (rec.kind) {
        case RecordKind::kWorldPhase:
          world.world_phase(vt::TimePoint{rec.t_ns}, vt::Duration{rec.dt_ns},
                            sink);
          break;
        case RecordKind::kMoveExec: {
          sim::Entity* p = world.get(rec.entity);
          if (p == nullptr || !p->is_player()) {
            res.diverged = true;
            res.divergent_frame = fj.frame;
            res.divergent_entity = rec.entity;
            res.detail = format("move for entity %u which is %s in replay",
                                rec.entity,
                                p == nullptr ? "missing" : "not a player");
            return res;
          }
          sim::execute_move(world, *p, rec.cmd, vt::TimePoint{rec.t_ns},
                            nullptr, &sink, rec.order);
          ++res.moves_applied;
          break;
        }
        case RecordKind::kConnectSpawn: {
          sim::Entity& e = world.spawn_player(rec.name);
          ++res.lifecycle_applied;
          if (e.id != rec.entity) {
            res.diverged = true;
            res.divergent_frame = fj.frame;
            res.divergent_entity = rec.entity;
            res.detail =
                format("spawn allocated entity %u, live allocated %u", e.id,
                       rec.entity);
            return res;
          }
          break;
        }
        case RecordKind::kDisconnect:
        case RecordKind::kEvict:
        case RecordKind::kHandoffOut: {
          if (world.get(rec.entity) == nullptr) {
            res.diverged = true;
            res.divergent_frame = fj.frame;
            res.divergent_entity = rec.entity;
            res.detail = format("%s of entity %u which is missing in replay",
                                record_kind_name(rec.kind), rec.entity);
            return res;
          }
          world.remove_entity(rec.entity);
          ++res.lifecycle_applied;
          break;
        }
        case RecordKind::kHandoffIn: {
          // Mirrors the live adoption path exactly: fresh spawn (consumes
          // the world RNG identically), then the closed HandoffState field
          // list, then relink at the carried origin.
          sim::Entity& e = world.spawn_player(rec.name);
          ++res.lifecycle_applied;
          if (e.id != rec.entity) {
            res.diverged = true;
            res.divergent_frame = fj.frame;
            res.divergent_entity = rec.entity;
            res.detail = format(
                "handoff-in allocated entity %u, live allocated %u", e.id,
                rec.entity);
            return res;
          }
          apply_handoff_state(e, rec.hand);
          world.relink(e);
          break;
        }
        case RecordKind::kDropped:
          break;  // forensic only
      }
    }

    const bool want_entities = !fj.entity_digests.empty();
    const uint64_t d =
        world_digest(world, want_entities ? &got_entities : nullptr);
    ++res.frames_checked;
    if (d != fj.digest) {
      res.diverged = true;
      res.divergent_frame = fj.frame;
      res.want_digest = fj.digest;
      res.got_digest = d;
      if (want_entities) {
        res.divergent_entity = first_divergent_entity(
            fj.entity_digests, got_entities, &res.detail);
      }
      return res;
    }
  }

  if (res.frames_checked == 0) {
    res.error = "no journal frames follow the checkpoint";
    return res;
  }
  res.ok = true;
  return res;
}

ReplayResult verify_recorded(const CheckpointManager& checkpoints,
                             const FlightRecorder& recorder) {
  ReplayResult res;
  if (!checkpoints.has()) {
    res.error = "no checkpoint taken";
    return res;
  }
  CheckpointData ckpt;
  const LoadError err = decode_checkpoint(checkpoints.latest(), ckpt);
  if (err != LoadError::kNone) {
    res.error = std::string("latest checkpoint does not decode: ") +
                load_error_name(err);
    return res;
  }
  JournalFile jf;
  jf.seed = recorder.seed();
  jf.frames.assign(recorder.frames().begin(), recorder.frames().end());
  return replay_verify(ckpt, jf);
}

}  // namespace qserv::recovery
