#include "src/recovery/engine_hook.hpp"

#include <atomic>
#include <utility>

#include "src/core/client_registry.hpp"
#include "src/core/config.hpp"
#include "src/obs/trace.hpp"
#include "src/recovery/digest.hpp"
#include "src/spatial/map.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::recovery {

ServerRecovery::ServerRecovery(core::Engine& engine,
                               const spatial::GameMap& map)
    : engine_(engine),
      map_text_(map.serialize()),
      recorder_(engine.config().recovery,
                static_cast<uint32_t>(engine.config().threads),
                engine.config().seed),
      blackbox_(engine.config().recovery.dump_dir) {
  const Config& rc = engine_.config().recovery;
  if (rc.install_signal_handler) {
    install_signal_dumper(
        (rc.dump_dir.empty() ? std::string(".") : rc.dump_dir) +
        "/qserv-crash.qckpt");
  }
}

ServerRecovery::~ServerRecovery() {
  // The signal handler holds a raw pointer into the checkpoint buffers;
  // disarm it before they die.
  if (engine_.config().recovery.install_signal_handler)
    publish_signal_dump(nullptr, 0);
}

void ServerRecovery::on_world_tick(int tid, vt::TimePoint t0,
                                   vt::Duration dt) {
  JournalRecord rec;
  rec.kind = RecordKind::kWorldPhase;
  rec.thread = static_cast<uint8_t>(tid);
  rec.order = engine_.draw_order();
  rec.t_ns = t0.ns;
  rec.dt_ns = dt.ns;
  recorder_.record(rec.thread, rec);
}

void ServerRecovery::on_move_executed(int tid, uint16_t port,
                                      uint32_t entity, uint64_t order,
                                      vt::TimePoint t0,
                                      const net::MoveCmd& cmd) {
  JournalRecord rec;
  rec.kind = RecordKind::kMoveExec;
  rec.thread = static_cast<uint8_t>(tid);
  rec.port = port;
  rec.entity = entity;
  rec.order = order;
  rec.t_ns = t0.ns;
  rec.cmd = cmd;
  recorder_.record(static_cast<uint32_t>(tid), rec);
}

void ServerRecovery::on_drop(int tid, uint16_t port, DropReason why) {
  JournalRecord rec;
  rec.kind = RecordKind::kDropped;
  rec.drop = why;
  rec.thread = static_cast<uint8_t>(tid);
  rec.port = port;
  rec.t_ns = engine_.platform().now().ns;
  recorder_.record(static_cast<uint32_t>(tid), rec);
}

void ServerRecovery::on_frame_sealed() {
  const Config& rc = engine_.config().recovery;
  std::vector<EntityDigest> per_entity;
  const uint64_t digest = world_digest(
      engine_.world(), rc.per_entity_digests ? &per_entity : nullptr);
  recorder_.seal_frame(engine_.frames(), engine_.last_world_t0(),
                       engine_.last_world_dt(), digest,
                       std::move(per_entity));
  if (rc.checkpoint_interval > 0 &&
      engine_.frames() % rc.checkpoint_interval == 0) {
    checkpoints_.store(make_checkpoint(digest));
    if (rc.install_signal_handler)
      publish_signal_dump(checkpoints_.latest().data(),
                          checkpoints_.latest().size());
  }
}

std::vector<uint8_t> ServerRecovery::capture_now_encoded() {
  const uint64_t digest = world_digest(engine_.world(), nullptr);
  return encode_checkpoint(make_checkpoint(digest));
}

void ServerRecovery::on_client_spawned(int owner, uint16_t port,
                                       uint32_t entity,
                                       const std::string& name,
                                       int64_t t_ns) {
  JournalRecord rec;
  rec.kind = RecordKind::kConnectSpawn;
  rec.thread = static_cast<uint8_t>(owner);
  rec.port = port;
  rec.entity = entity;
  rec.order = engine_.draw_order();
  rec.t_ns = t_ns;
  rec.name = name;
  recorder_.record(static_cast<uint32_t>(owner), rec);
}

void ServerRecovery::on_client_disconnected(int owner, uint16_t port,
                                            uint32_t entity, int64_t t_ns) {
  JournalRecord rec;
  rec.kind = RecordKind::kDisconnect;
  rec.thread = static_cast<uint8_t>(owner);
  rec.port = port;
  rec.entity = entity;
  rec.order = engine_.draw_order();
  rec.t_ns = t_ns;
  recorder_.record(static_cast<uint32_t>(owner), rec);
}

void ServerRecovery::on_client_evicted(int owner, uint16_t port,
                                       uint32_t entity) {
  JournalRecord rec;
  rec.kind = RecordKind::kEvict;
  rec.thread = static_cast<uint8_t>(owner);
  rec.port = port;
  rec.entity = entity;
  rec.order = engine_.draw_order();
  rec.t_ns = engine_.platform().now().ns;
  recorder_.record(static_cast<uint32_t>(owner), rec);
}

void ServerRecovery::record_handoff_out(uint16_t port, uint32_t entity,
                                        const std::string& name) {
  JournalRecord rec;
  rec.kind = RecordKind::kHandoffOut;
  rec.port = port;
  rec.entity = entity;
  rec.order = engine_.draw_order();
  rec.t_ns = engine_.platform().now().ns;
  rec.name = name;
  recorder_.record(0, rec);
}

void ServerRecovery::record_handoff_in(uint16_t port, uint32_t entity,
                                       const std::string& name,
                                       const HandoffState& hs) {
  JournalRecord rec;
  rec.kind = RecordKind::kHandoffIn;
  rec.port = port;
  rec.entity = entity;
  rec.order = engine_.draw_order();
  rec.t_ns = engine_.platform().now().ns;
  rec.name = name;
  rec.hand = hs;
  recorder_.record(0, rec);
}

CheckpointData ServerRecovery::make_checkpoint(uint64_t digest) {
  const core::ServerConfig& cfg = engine_.config();
  CheckpointData c;
  c.frame = engine_.frames();
  c.captured_at_ns = engine_.platform().now().ns;
  c.seed = cfg.seed;
  c.base_port = cfg.base_port;
  c.threads = static_cast<uint32_t>(cfg.threads);
  c.max_clients = static_cast<uint32_t>(cfg.max_clients);
  c.areanode_depth = cfg.areanode_depth;
  c.next_order = engine_.order_count();
  c.digest = digest;
  const sim::World& w = engine_.world();
  c.rng_state = w.rng().state();
  c.map_text = map_text_;
  c.entity_storage = static_cast<uint32_t>(w.entity_storage_size());
  w.for_each_entity([&](const sim::Entity& e) { c.entities.push_back(e); });
  c.free_ids = w.free_ids();
  const auto& tree = w.tree();
  for (int i = 0; i < tree.node_count(); ++i) {
    if (!tree.node(i).objects.empty())
      c.node_objects.emplace_back(i, tree.node(i).objects);
  }
  core::ClientRegistry& reg = engine_.registry();
  vt::LockGuard g(reg.mutex());
  const auto& slots = reg.slots();
  for (size_t i = 0; i < slots.size(); ++i) {
    const core::ClientSlot& cl = slots[i];
    if (!cl.in_use || cl.pending_spawn) continue;
    ClientRecord r;
    r.slot = static_cast<uint16_t>(i);
    r.remote_port = cl.remote_port;
    r.name = cl.name;
    r.entity_id = cl.entity_id;
    r.owner_thread = static_cast<uint32_t>(cl.owner_thread);
    r.last_seq = cl.last_seq;
    r.last_move_time_ns = cl.last_move_time_ns;
    r.last_heard_ns = std::atomic_ref<const int64_t>(cl.last_heard_ns)
                          .load(std::memory_order_relaxed);
    if (cl.chan != nullptr) {
      r.chan_out_seq = cl.chan->out_sequence();
      r.chan_in_seq = cl.chan->in_sequence();
      r.chan_in_acked = cl.chan->peer_acked();
    }
    c.clients.push_back(std::move(r));
  }
  for (const uint16_t p : reg.remembered_ports_locked())
    c.evicted_ports.push_back(p);
  return c;
}

std::string ServerRecovery::dump(const std::string& label,
                                 const std::string& why) {
  const core::ServerConfig& cfg = engine_.config();
  std::string meta;
  meta += "label: " + label + "\n";
  meta += "why: " + why + "\n";
  meta += "frame: " + std::to_string(engine_.frames()) + "\n";
  meta += "now_ns: " + std::to_string(engine_.platform().now().ns) + "\n";
  meta += "seed: " + std::to_string(cfg.seed) + "\n";
  meta += "threads: " + std::to_string(cfg.threads) + "\n";
  meta += "clients: " + std::to_string(engine_.connected_clients()) + "\n";
  std::vector<uint8_t> ckpt;
  if (checkpoints_.has()) ckpt = checkpoints_.latest();
  std::vector<uint8_t> jrnl = recorder_.encode();
  // The trace is only exported where no other thread can be mid-record:
  // the simulated platform is single-threaded under the hood, and a
  // 1-thread real server has no concurrent writers in its own window.
  std::string trace;
  obs::Tracer* tracer = engine_.tracer();
  if (tracer != nullptr &&
      (engine_.platform().is_simulated() || cfg.threads == 1))
    trace = tracer->export_chrome_trace();
  return blackbox_.dump(label, meta, ckpt, jrnl, trace);
}

}  // namespace qserv::recovery
