// The recovery subsystem's attachment to the frame engine: a FrameHook +
// LifecycleObserver that journals every serialization-indexed mutation,
// seals frames with world digests, takes periodic checkpoints, and serves
// black-box dumps. Constructed (and registered) only when
// cfg.recovery.enabled — callback *absence* is what keeps a non-recovery
// run's serialization-index stream identical to the pre-hook engine.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/frame_hooks.hpp"
#include "src/recovery/blackbox.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/recovery/journal.hpp"

namespace qserv::spatial {
class GameMap;
}

namespace qserv::recovery {

class ServerRecovery final : public core::FrameHook,
                             public core::LifecycleObserver {
 public:
  ServerRecovery(core::Engine& engine, const spatial::GameMap& map);
  // Disarms the signal dumper before the checkpoint buffers die.
  ~ServerRecovery() override;

  ServerRecovery(const ServerRecovery&) = delete;
  ServerRecovery& operator=(const ServerRecovery&) = delete;

  const FlightRecorder* recorder() const { return &recorder_; }
  const CheckpointManager* checkpoints() const { return &checkpoints_; }
  const BlackBox* blackbox() const { return &blackbox_; }

  // Writes a black-box dump (latest checkpoint, journal tail, trace,
  // meta) now; returns the dump directory or "" on I/O failure.
  std::string dump(const std::string& label, const std::string& why);

  // Hot-restart handoff capture: encodes the engine's current state as a
  // qserv-ckpt-v1 blob, off the periodic schedule. Call only with every
  // worker quiesced (after request_stop() drains) — the capture walks
  // live world and registry state unlocked.
  std::vector<uint8_t> capture_now_encoded();

  // Cross-shard handoff journaling (master window only; the shard layer
  // calls these around extract_session/adopt_session so replay can
  // re-execute the migration deterministically).
  void record_handoff_out(uint16_t port, uint32_t entity,
                          const std::string& name);
  void record_handoff_in(uint16_t port, uint32_t entity,
                         const std::string& name, const HandoffState& hs);

  // --- FrameHook ---
  void on_world_tick(int tid, vt::TimePoint t0, vt::Duration dt) override;
  void on_move_executed(int tid, uint16_t port, uint32_t entity,
                        uint64_t order, vt::TimePoint t0,
                        const net::MoveCmd& cmd) override;
  void on_drop(int tid, uint16_t port, DropReason why) override;
  // Digest + journal seal + periodic checkpoint, after every mutation of
  // the frame.
  void on_frame_sealed() override;

  // --- LifecycleObserver (registry mutex held) ---
  void on_client_spawned(int owner, uint16_t port, uint32_t entity,
                         const std::string& name, int64_t t_ns) override;
  void on_client_disconnected(int owner, uint16_t port, uint32_t entity,
                              int64_t t_ns) override;
  void on_client_evicted(int owner, uint16_t port, uint32_t entity) override;

 private:
  CheckpointData make_checkpoint(uint64_t digest);

  core::Engine& engine_;
  std::string map_text_;  // GameMap::serialize(), embedded in checkpoints
  FlightRecorder recorder_;
  CheckpointManager checkpoints_;
  BlackBox blackbox_;
};

}  // namespace qserv::recovery
