#include "src/recovery/blackbox.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace qserv::recovery {
namespace {

bool write_file(const std::filesystem::path& path, const void* data,
                size_t len) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  return static_cast<bool>(out);
}

}  // namespace

std::string BlackBox::dump(const std::string& label, const std::string& meta,
                           const std::vector<uint8_t>& checkpoint,
                           const std::vector<uint8_t>& journal,
                           const std::string& trace_json) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path base = dir_.empty() ? fs::path(".") : fs::path(dir_);
  fs::create_directories(base, ec);
  char name[128];
  std::snprintf(name, sizeof name, "qserv-blackbox-%s-%llu", label.c_str(),
                static_cast<unsigned long long>(dumps_));
  const fs::path dir = base / name;
  fs::create_directories(dir, ec);
  if (ec) return "";

  bool ok = write_file(dir / "meta.txt", meta.data(), meta.size());
  if (!checkpoint.empty())
    ok &= write_file(dir / "checkpoint.qckpt", checkpoint.data(),
                     checkpoint.size());
  if (!journal.empty())
    ok &= write_file(dir / "journal.qjrnl", journal.data(), journal.size());
  if (!trace_json.empty())
    ok &= write_file(dir / "trace.json", trace_json.data(), trace_json.size());
  if (!ok) return "";
  ++dumps_;
  last_path_ = dir.string();
  return last_path_;
}

// --- fatal-signal path -----------------------------------------------------
// Only async-signal-safe calls below: open/write/close on pre-published
// bytes, then re-raise with the default disposition.

namespace {

// {data, len} published as one unit: the handler must never pair an old
// pointer with a new (possibly larger) length, or it reads past the old
// buffer. Two static slots alternate; a single atomic pointer swap is the
// publication point, so the handler always sees a consistent pair. The
// previous slot is not rewritten until two publishes later, by which time
// any handler that loaded it has long finished (handlers run to process
// death) — and in practice each engine republishes only from its own
// master window.
struct DumpSlot {
  const uint8_t* data = nullptr;
  size_t len = 0;
};
DumpSlot g_dump_slots[2];
std::atomic<const DumpSlot*> g_dump_slot{nullptr};
std::atomic<int> g_dump_next{0};
char g_dump_path[512] = {};
std::atomic<bool> g_installed{false};

void fatal_signal_handler(int sig) {
  const DumpSlot* slot = g_dump_slot.load(std::memory_order_acquire);
  const uint8_t* data = slot != nullptr ? slot->data : nullptr;
  const size_t len = slot != nullptr ? slot->len : 0;
  if (data != nullptr && len > 0 && g_dump_path[0] != '\0') {
    const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      size_t off = 0;
      while (off < len) {
        const ssize_t n = ::write(fd, data + off, len - off);
        if (n <= 0) break;
        off += static_cast<size_t>(n);
      }
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_signal_dumper(const std::string& path) {
  std::snprintf(g_dump_path, sizeof g_dump_path, "%s", path.c_str());
  if (g_installed.exchange(true)) return;
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
    ::signal(sig, fatal_signal_handler);
}

void publish_signal_dump(const uint8_t* data, size_t len) {
  if (data == nullptr || len == 0) {
    g_dump_slot.store(nullptr, std::memory_order_release);
    return;
  }
  const int next = g_dump_next.fetch_add(1, std::memory_order_relaxed) & 1;
  g_dump_slots[next].data = data;
  g_dump_slots[next].len = len;
  g_dump_slot.store(&g_dump_slots[next], std::memory_order_release);
}

}  // namespace qserv::recovery
