#include "src/recovery/digest.hpp"

#include <cstring>

namespace qserv::recovery {
namespace {

// Accumulates raw little-endian words; everything funnels through u64 so
// the hash is independent of host struct layout.
struct Hasher {
  uint64_t h = kFnvOffset64;

  void u64(uint64_t v) { h = fnv1a64(&v, sizeof v, h); }
  void u32(uint32_t v) { u64(v); }
  void i32(int32_t v) { u64(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  void f32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void vec3(const Vec3& v) {
    f32(v.x);
    f32(v.y);
    f32(v.z);
  }
  void str(const std::string& s) {
    u64(s.size());
    h = fnv1a64(s.data(), s.size(), h);
  }
};

void hash_entity(Hasher& hh, const sim::Entity& e) {
  hh.u32(e.id);
  hh.u32(static_cast<uint32_t>(e.type));
  hh.vec3(e.origin);
  hh.vec3(e.velocity);
  hh.f32(e.yaw_deg);
  hh.vec3(e.mins);
  hh.vec3(e.maxs);
  hh.u32(static_cast<uint32_t>(e.solid) | (static_cast<uint32_t>(e.on_ground) << 1) |
         (static_cast<uint32_t>(e.available) << 2));
  hh.str(e.name);
  hh.i32(e.health);
  hh.i32(e.armor);
  hh.i32(e.frags);
  hh.i32(e.grenades);
  hh.u32(static_cast<uint32_t>(e.weapon));
  hh.u64(static_cast<uint64_t>(e.next_attack.ns));
  hh.u32(e.deaths);
  hh.u32(static_cast<uint32_t>(e.item));
  hh.u64(static_cast<uint64_t>(e.respawn_at.ns));
  hh.u32(e.owner);
  hh.vec3(e.dir);
  hh.u64(static_cast<uint64_t>(e.expire_at.ns));
  hh.vec3(e.teleport_dest);
}

}  // namespace

uint32_t entity_digest(const sim::Entity& e) {
  Hasher hh;
  hash_entity(hh, e);
  return static_cast<uint32_t>(hh.h ^ (hh.h >> 32));
}

uint64_t world_digest(const sim::World& w,
                      std::vector<EntityDigest>* per_entity) {
  if (per_entity != nullptr) {
    per_entity->clear();
    per_entity->reserve(w.active_entities());
  }
  Hasher hh;
  w.for_each_entity([&](const sim::Entity& e) {
    if (per_entity != nullptr) {
      per_entity->push_back({e.id, entity_digest(e)});
    }
    hash_entity(hh, e);
  });
  // Fold in the allocator and RNG so drift is caught at its source frame.
  hh.u64(w.entity_storage_size());
  for (const uint32_t id : w.free_ids()) hh.u32(id);
  for (const uint64_t word : w.rng().state()) hh.u64(word);
  return hh.h;
}

}  // namespace qserv::recovery
