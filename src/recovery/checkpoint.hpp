// Frame-aligned checkpoints: the full recoverable server state —
// world entities, areanode list order, free-id stack, RNG state, client
// registry with netchan sequences, and the serialized map — in a
// versioned binary format (`qserv-ckpt-v1`). Checkpoints are taken in the
// master's between-frames window, where no region locks are held and no
// worker touches shared state, so serialization needs no synchronization;
// the CheckpointManager double-buffers the encoded bytes so the latest
// complete image is always intact (and safe for a signal handler to
// write) while the next one is being built.
//
// The decode side is hardened like net/protocol.cpp: every count is
// bounded against the remaining bytes before any resize, magic/version
// mismatches return typed errors, and a truncated or length-lying file
// can never crash the loader. Beyond the field-level bounds checks the
// image carries a whole-file content checksum (trailing FNV-1a 64 over
// every preceding byte): a torn write or flipped bit that would still
// parse "in bounds" (a position, an RNG word) is rejected as kChecksum
// before any section is interpreted.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/entity.hpp"
#include "src/sim/world.hpp"

namespace qserv::recovery {

inline constexpr uint32_t kCheckpointMagic = 0x74706b63;  // "ckpt"
inline constexpr uint32_t kCheckpointVersion = 1;         // qserv-ckpt-v1

enum class LoadError : uint8_t {
  kNone = 0,
  kTruncated,       // ran out of bytes mid-field
  kBadMagic,        // not a checkpoint file
  kBadVersion,      // format version we don't speak
  kCorrupt,         // internal inconsistency (count exceeds bounds, ...)
  kReplayDiverged,  // journal-tail replay digest mismatch during restore
  kChecksum,        // content checksum mismatch (torn write, bit flip)
};
const char* load_error_name(LoadError e);

// One client slot as checkpointed: identity, liveness clocks and channel
// sequencing — enough for a warm-restarted server to continue the peer's
// packet stream or to re-adopt the peer when it reconnects by name.
struct ClientRecord {
  uint16_t slot = 0;
  uint16_t remote_port = 0;
  std::string name;
  uint32_t entity_id = 0;
  uint32_t owner_thread = 0;
  uint32_t last_seq = 0;
  int64_t last_move_time_ns = 0;
  int64_t last_heard_ns = 0;
  uint32_t chan_out_seq = 0;
  uint32_t chan_in_seq = 0;
  uint32_t chan_in_acked = 0;
};

struct CheckpointData {
  // Frame alignment and provenance.
  uint64_t frame = 0;
  int64_t captured_at_ns = 0;  // platform now() at capture
  uint64_t seed = 0;           // experiment root seed
  uint16_t base_port = 0;
  uint32_t threads = 1;
  uint32_t max_clients = 0;
  int32_t areanode_depth = 4;
  uint64_t next_order = 0;  // serialization-index counter
  uint64_t digest = 0;      // world digest at capture (restore cross-check)

  // World.
  std::array<uint64_t, 4> rng_state{};
  std::string map_text;  // GameMap::serialize(); makes replay self-contained
  uint32_t entity_storage = 0;          // total slots (active + free)
  std::vector<sim::Entity> entities;    // active only, id order
  std::vector<uint32_t> free_ids;       // stack, bottom to top
  // Object list of every non-empty areanode, in insertion order.
  std::vector<std::pair<int32_t, std::vector<uint32_t>>> node_objects;

  // Server.
  std::vector<ClientRecord> clients;
  std::vector<uint16_t> evicted_ports;  // remembered kEvicted answers
};

std::vector<uint8_t> encode_checkpoint(const CheckpointData& c);
LoadError decode_checkpoint(const uint8_t* data, size_t n,
                            CheckpointData& out);
inline LoadError decode_checkpoint(const std::vector<uint8_t>& buf,
                                   CheckpointData& out) {
  return decode_checkpoint(buf.data(), buf.size(), out);
}

// Rebuilds `w` (already constructed against the same map) from the world
// portion of `c`: entities, links in recorded list order, free-id stack
// and RNG state. Single-threaded; `w` must carry no traffic yet.
void restore_world(const CheckpointData& c, sim::World& w);

// Double-buffered store of encoded checkpoints. store() encodes into the
// buffer NOT currently published, then atomically publishes it, so
// latest() (and the signal handler's raw pointer) always see a complete
// image. Tracks the serialize-pause budget the acceptance criteria bound.
//
// Swap-order audit (why a stall or crash mid-store can never tear the
// published image): store(N) writes buf_[next] while current_ still names
// the buffer store(N-1) published — the one every reader (latest(), the
// signal handler's republished pointer, a shard supervisor peeking at a
// quarantined engine) holds. Only after encode_checkpoint() fully
// returned does the atomic release-store of current_ flip readers over;
// a thread-stall fault injected anywhere inside store(), or a crash that
// fires the signal dumper mid-encode, leaves current_ pointing at the
// previous complete image. buf_[current] itself is not rewritten until
// two stores later, by which point current_ (and the signal dump
// pointer, republished every checkpoint) has moved off it.
class CheckpointManager {
 public:
  // Encodes and publishes; returns the encoded size. Host-clock encode
  // time is recorded as the "pause" the master window spent serializing.
  size_t store(const CheckpointData& c);

  bool has() const { return cur() >= 0; }
  const std::vector<uint8_t>& latest() const { return buf_[cur() > 0]; }
  uint64_t latest_frame() const { return frame_[cur() > 0]; }

  uint64_t count() const { return count_; }
  size_t last_bytes() const { return has() ? latest().size() : 0; }
  int64_t last_pause_ns() const { return last_pause_ns_; }
  int64_t max_pause_ns() const { return max_pause_ns_; }

 private:
  int cur() const { return current_.load(std::memory_order_acquire); }

  std::vector<uint8_t> buf_[2];
  uint64_t frame_[2] = {0, 0};
  // -1 none, else 0/1. Atomic: a supervisor thread may read latest()
  // while the master window publishes the next image.
  std::atomic<int> current_{-1};
  uint64_t count_ = 0;
  int64_t last_pause_ns_ = 0;
  int64_t max_pause_ns_ = 0;
};

}  // namespace qserv::recovery
