#include "src/recovery/journal.hpp"

#include <algorithm>

#include "src/net/bytestream.hpp"

namespace qserv::recovery {
namespace {

constexpr uint32_t kMaxFrames = 1u << 20;
constexpr uint32_t kMaxRecords = 1u << 20;
constexpr size_t kMinFrameBytes = 32;
constexpr size_t kMinRecordBytes = 16;
constexpr size_t kMaxNameLen = 64;

void encode_record(net::ByteWriter& w, const JournalRecord& r) {
  w.u8(static_cast<uint8_t>(r.kind));
  w.u8(static_cast<uint8_t>(r.drop));
  w.u8(r.thread);
  w.u16(r.port);
  w.u32(r.entity);
  w.u64(r.order);
  w.i64(r.t_ns);
  if (r.kind == RecordKind::kMoveExec) {
    w.u32(r.cmd.sequence);
    w.i64(r.cmd.client_time_ns);
    w.u32(r.cmd.baseline_frame);
    w.u16(r.cmd.msec);
    w.f32(r.cmd.yaw_deg);
    w.f32(r.cmd.pitch_deg);
    w.f32(r.cmd.forward);
    w.f32(r.cmd.side);
    w.f32(r.cmd.up);
    w.u8(r.cmd.buttons);
  } else if (r.kind == RecordKind::kConnectSpawn ||
             r.kind == RecordKind::kHandoffOut) {
    w.str(r.name);
  } else if (r.kind == RecordKind::kWorldPhase) {
    w.i64(r.dt_ns);
  } else if (r.kind == RecordKind::kHandoffIn) {
    w.str(r.name);
    w.vec3(r.hand.origin);
    w.vec3(r.hand.velocity);
    w.f32(r.hand.yaw_deg);
    w.i32(r.hand.health);
    w.i32(r.hand.armor);
    w.i32(r.hand.frags);
    w.i32(r.hand.grenades);
    w.u8(r.hand.weapon);
    w.i64(r.hand.next_attack_ns);
    w.u32(r.hand.deaths);
  }
}

bool decode_record(net::ByteReader& r, JournalRecord& out) {
  out.kind = static_cast<RecordKind>(r.u8());
  out.drop = static_cast<DropReason>(r.u8());
  out.thread = r.u8();
  out.port = r.u16();
  out.entity = r.u32();
  out.order = r.u64();
  out.t_ns = r.i64();
  if (out.kind == RecordKind::kMoveExec) {
    out.cmd.sequence = r.u32();
    out.cmd.client_time_ns = r.i64();
    out.cmd.baseline_frame = r.u32();
    out.cmd.msec = r.u16();
    out.cmd.yaw_deg = r.f32();
    out.cmd.pitch_deg = r.f32();
    out.cmd.forward = r.f32();
    out.cmd.side = r.f32();
    out.cmd.up = r.f32();
    out.cmd.buttons = r.u8();
  } else if (out.kind == RecordKind::kConnectSpawn ||
             out.kind == RecordKind::kHandoffOut) {
    out.name = r.str();
    if (out.name.size() > kMaxNameLen) return false;
  } else if (out.kind == RecordKind::kWorldPhase) {
    out.dt_ns = r.i64();
  } else if (out.kind == RecordKind::kHandoffIn) {
    out.name = r.str();
    if (out.name.size() > kMaxNameLen) return false;
    out.hand.origin = r.vec3();
    out.hand.velocity = r.vec3();
    out.hand.yaw_deg = r.f32();
    out.hand.health = r.i32();
    out.hand.armor = r.i32();
    out.hand.frags = r.i32();
    out.hand.grenades = r.i32();
    out.hand.weapon = r.u8();
    out.hand.next_attack_ns = r.i64();
    out.hand.deaths = r.u32();
  }
  return r.ok();
}

bool count_fits(const net::ByteReader& r, uint64_t count, size_t min_bytes) {
  return count <= r.remaining() / min_bytes;
}

}  // namespace

const char* record_kind_name(RecordKind k) {
  switch (k) {
    case RecordKind::kMoveExec: return "move-exec";
    case RecordKind::kConnectSpawn: return "connect-spawn";
    case RecordKind::kDisconnect: return "disconnect";
    case RecordKind::kEvict: return "evict";
    case RecordKind::kDropped: return "dropped";
    case RecordKind::kWorldPhase: return "world-phase";
    case RecordKind::kHandoffOut: return "handoff-out";
    case RecordKind::kHandoffIn: return "handoff-in";
  }
  return "?";
}

HandoffState capture_handoff_state(const sim::Entity& e) {
  HandoffState hs;
  hs.origin = e.origin;
  hs.velocity = e.velocity;
  hs.yaw_deg = e.yaw_deg;
  hs.health = e.health;
  hs.armor = e.armor;
  hs.frags = e.frags;
  hs.grenades = e.grenades;
  hs.weapon = static_cast<uint8_t>(e.weapon);
  hs.next_attack_ns = e.next_attack.ns;
  hs.deaths = e.deaths;
  return hs;
}

void apply_handoff_state(sim::Entity& e, const HandoffState& hs) {
  e.origin = hs.origin;
  e.velocity = hs.velocity;
  e.yaw_deg = hs.yaw_deg;
  e.health = hs.health;
  e.armor = hs.armor;
  e.frags = hs.frags;
  e.grenades = hs.grenades;
  e.weapon = static_cast<sim::Weapon>(hs.weapon);
  e.next_attack = vt::TimePoint{hs.next_attack_ns};
  e.deaths = hs.deaths;
}

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kOversized: return "oversized";
    case DropReason::kMalformed: return "malformed";
    case DropReason::kStalePort: return "stale-port";
    case DropReason::kDuplicate: return "duplicate";
    case DropReason::kRateLimited: return "rate-limited";
    case DropReason::kCoalesced: return "coalesced";
    case DropReason::kRejectedFull: return "rejected-full";
    case DropReason::kRejectedBusy: return "rejected-busy";
    case DropReason::kConnectPending: return "connect-pending";
    case DropReason::kReconnectDup: return "reconnect-dup";
    case DropReason::kResumed: return "resumed";
    case DropReason::kEvictedPort: return "evicted-port";
    case DropReason::kUnknown: return "unknown";
  }
  return "?";
}

FlightRecorder::FlightRecorder(const Config& cfg, uint32_t threads,
                               uint64_t seed)
    : cfg_(cfg), seed_(seed), staging_(threads == 0 ? 1 : threads) {}

void FlightRecorder::record(uint32_t thread, JournalRecord rec) {
  if (thread >= staging_.size()) thread = 0;
  staging_[thread].push_back(std::move(rec));
  records_staged_.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::seal_frame(uint64_t frame, vt::TimePoint t0,
                                vt::Duration dt, uint64_t digest,
                                std::vector<EntityDigest> entity_digests) {
  FrameJournal fj;
  fj.frame = frame;
  fj.world_t0_ns = t0.ns;
  fj.world_dt_ns = dt.ns;
  fj.digest = digest;
  fj.entity_digests = std::move(entity_digests);
  for (auto& stage : staging_) {
    for (auto& rec : stage) fj.records.push_back(std::move(rec));
    stage.clear();
  }
  // Executed records in serialization order; forensic drops (order ==
  // kNoOrder) sink to the tail keeping arrival order.
  std::stable_sort(fj.records.begin(), fj.records.end(),
                   [](const JournalRecord& a, const JournalRecord& b) {
                     return a.order < b.order;
                   });
  ring_.push_back(std::move(fj));
  while (ring_.size() > cfg_.journal_frames && !ring_.empty())
    ring_.pop_front();
  ++frames_sealed_;
}

std::vector<uint8_t> FlightRecorder::encode() const {
  return encode_journal(seed_, static_cast<uint32_t>(staging_.size()), ring_);
}

std::vector<uint8_t> encode_journal(uint64_t seed, uint32_t threads,
                                    const std::deque<FrameJournal>& frames) {
  net::ByteWriter w;
  w.u32(kJournalMagic);
  w.u32(kJournalVersion);
  w.u64(seed);
  w.u32(threads);
  w.u32(static_cast<uint32_t>(frames.size()));
  for (const auto& fj : frames) {
    w.u64(fj.frame);
    w.i64(fj.world_t0_ns);
    w.i64(fj.world_dt_ns);
    w.u64(fj.digest);
    w.u32(static_cast<uint32_t>(fj.records.size()));
    for (const auto& rec : fj.records) encode_record(w, rec);
    w.u32(static_cast<uint32_t>(fj.entity_digests.size()));
    for (const auto& ed : fj.entity_digests) {
      w.u32(ed.id);
      w.u32(ed.hash);
    }
  }
  return w.take();
}

LoadError decode_journal(const uint8_t* data, size_t n, JournalFile& out) {
  net::ByteReader r(data, n);
  const uint32_t magic = r.u32();
  const uint32_t version = r.u32();
  if (r.overflowed()) return LoadError::kTruncated;
  if (magic != kJournalMagic) return LoadError::kBadMagic;
  if (version != kJournalVersion) return LoadError::kBadVersion;

  out = JournalFile{};
  out.seed = r.u64();
  out.threads = r.u32();
  const uint32_t frame_count = r.u32();
  if (r.overflowed()) return LoadError::kTruncated;
  if (frame_count > kMaxFrames || !count_fits(r, frame_count, kMinFrameBytes))
    return LoadError::kCorrupt;
  out.frames.resize(frame_count);
  for (auto& fj : out.frames) {
    fj.frame = r.u64();
    fj.world_t0_ns = r.i64();
    fj.world_dt_ns = r.i64();
    fj.digest = r.u64();
    const uint32_t rec_count = r.u32();
    if (r.overflowed()) return LoadError::kTruncated;
    if (rec_count > kMaxRecords || !count_fits(r, rec_count, kMinRecordBytes))
      return LoadError::kCorrupt;
    fj.records.resize(rec_count);
    for (auto& rec : fj.records) {
      if (!decode_record(r, rec))
        return r.overflowed() ? LoadError::kTruncated : LoadError::kCorrupt;
    }
    const uint32_t ed_count = r.u32();
    if (r.overflowed()) return LoadError::kTruncated;
    if (ed_count > kMaxRecords || !count_fits(r, ed_count, 8))
      return LoadError::kCorrupt;
    fj.entity_digests.resize(ed_count);
    for (auto& ed : fj.entity_digests) {
      ed.id = r.u32();
      ed.hash = r.u32();
    }
  }
  if (r.overflowed()) return LoadError::kTruncated;
  return LoadError::kNone;
}

}  // namespace qserv::recovery
