// The flight recorder: a ring-bounded per-frame journal of every inbound
// datagram — receiving thread, source port, frame — plus, for the inputs
// that actually mutated the world, the state-change record needed to
// re-execute them (move command + serialization index + execution
// timestamp, or the lifecycle operation applied in the master window).
//
// Disposition is recorded, not re-derived: whether a move was executed,
// coalesced, rate-limited or dropped as a duplicate depends on arrival
// timing the replay cannot (and need not) reproduce. Replay applies
// exactly the records marked executed, in serialization-index order.
//
// Writer model: each server thread stages records into its own vector
// while processing requests (single writer, no locks); the master drains
// all staging vectors in the between-frames window — the same barrier
// that orders every other cross-thread handoff — seals them into one
// FrameJournal with the frame's digest, and pushes it onto the ring.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/net/protocol.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/recovery/config.hpp"
#include "src/recovery/digest.hpp"
#include "src/vthread/time.hpp"

namespace qserv::recovery {

inline constexpr uint32_t kJournalMagic = 0x6c6e726a;  // "jrnl"
inline constexpr uint32_t kJournalVersion = 2;         // qserv-jrnl-v2

// Records with no serialization index (forensic-only) carry this; they
// sort after every executed record within the frame.
inline constexpr uint64_t kNoOrder = ~0ull;

enum class RecordKind : uint8_t {
  kMoveExec = 1,      // move executed against the world
  kConnectSpawn = 2,  // player entity spawned in the master window
  kDisconnect = 3,    // graceful disconnect applied (entity removed)
  kEvict = 4,         // reaped/shed by the server (entity removed)
  kDropped = 5,       // datagram seen but did not mutate the world
  // The frame's world-physics phase, with its (now, dt) arguments. Has a
  // serialization index like every other mutation, so replay interleaves
  // it correctly even with lifecycle ops applied between frames (the
  // sequential server's idle-path reap).
  kWorldPhase = 6,
  // Cross-shard session handoff (v2): the entity left for / arrived from
  // a neighboring engine in the master window. kHandoffIn carries the
  // full HandoffState so replay can re-materialize the player exactly.
  kHandoffOut = 7,
  kHandoffIn = 8,
};

// The gameplay-relevant player state a cross-shard handoff carries. This
// is deliberately a closed list: both the live adoption path and journal
// replay apply exactly these fields over a fresh spawn_player() (see
// apply_handoff_state), so any field missing here keeps its spawn default
// on BOTH paths and per-frame digests stay bit-identical.
struct HandoffState {
  Vec3 origin;
  Vec3 velocity;
  float yaw_deg = 0.0f;
  int32_t health = 0;
  int32_t armor = 0;
  int32_t frags = 0;
  int32_t grenades = 0;
  uint8_t weapon = 0;
  int64_t next_attack_ns = 0;
  uint32_t deaths = 0;
};

// Captures the handoff payload from a live player entity.
HandoffState capture_handoff_state(const sim::Entity& e);
// Applies the payload over a freshly spawned player (live adoption and
// replay both call this; see HandoffState). Does not relink.
void apply_handoff_state(sim::Entity& e, const HandoffState& hs);

// Why a datagram did not reach the world (forensics; never replayed).
enum class DropReason : uint8_t {
  kNone = 0,
  kOversized,
  kMalformed,
  kStalePort,
  kDuplicate,      // netchan duplicate_or_old, or an already-seen move seq
  kRateLimited,    // token bucket
  kCoalesced,      // governor merged it into a pending move
  kRejectedFull,
  kRejectedBusy,
  kConnectPending, // connect accepted, spawn deferred to the master window
  kReconnectDup,   // connect for an already-connected port
  kResumed,        // connect re-adopted a checkpointed slot (warm restart)
  kEvictedPort,    // move from a remembered evicted port, told kEvicted
  kUnknown,        // move/disconnect from a port with no slot
};

const char* record_kind_name(RecordKind k);
const char* drop_reason_name(DropReason r);

struct JournalRecord {
  RecordKind kind = RecordKind::kDropped;
  DropReason drop = DropReason::kNone;
  uint8_t thread = 0;    // receiving thread (master for lifecycle records)
  uint16_t port = 0;     // source port
  uint32_t entity = 0;   // player entity id (exec + lifecycle records)
  uint64_t order = kNoOrder;  // serialization index (replayed records)
  int64_t t_ns = 0;      // timestamp the operation executed with
  int64_t dt_ns = 0;     // kWorldPhase: the frame's dt
  net::MoveCmd cmd;      // kMoveExec payload
  std::string name;      // kConnectSpawn / kHandoff* payload
  HandoffState hand;     // kHandoffIn payload
};

struct FrameJournal {
  uint64_t frame = 0;
  int64_t world_t0_ns = 0;  // world_phase(now, dt) arguments (informational;
  int64_t world_dt_ns = 0;  // replay drives off the kWorldPhase record)
  uint64_t digest = 0;      // live world digest at the frame boundary
  std::vector<JournalRecord> records;        // executed first, by order
  std::vector<EntityDigest> entity_digests;  // optional per-entity hashes
};

class FlightRecorder {
 public:
  FlightRecorder(const Config& cfg, uint32_t threads, uint64_t seed);

  // Stages a record on `thread`'s private vector. Called during request
  // processing (one writer per thread) and from the master window.
  void record(uint32_t thread, JournalRecord rec);

  // Master window only: drains every staging vector, sorts executed
  // records by serialization index (drops keep arrival order at the
  // tail), attaches the digest, pushes onto the ring, trims to bounds.
  void seal_frame(uint64_t frame, vt::TimePoint t0, vt::Duration dt,
                  uint64_t digest, std::vector<EntityDigest> entity_digests);

  const std::deque<FrameJournal>& frames() const { return ring_; }
  uint64_t seed() const { return seed_; }
  uint64_t frames_sealed() const { return frames_sealed_; }
  uint64_t records_staged() const {
    return records_staged_.load(std::memory_order_relaxed);
  }

  // Serializes header (seed, bounds) + the ring tail to qserv-jrnl-v1.
  std::vector<uint8_t> encode() const;

 private:
  Config cfg_;
  uint64_t seed_;
  std::vector<std::vector<JournalRecord>> staging_;  // one per thread
  std::deque<FrameJournal> ring_;
  uint64_t frames_sealed_ = 0;
  // Workers stage concurrently; the count is a statistic, not an ordering
  // device, so relaxed increments suffice.
  std::atomic<uint64_t> records_staged_{0};
};

// Decode side (replay tool, tests). Hardened like the checkpoint loader.
struct JournalFile {
  uint64_t seed = 0;
  uint32_t threads = 1;
  std::vector<FrameJournal> frames;
};
std::vector<uint8_t> encode_journal(uint64_t seed, uint32_t threads,
                                    const std::deque<FrameJournal>& frames);
// Returns kNone on success; shares the checkpoint loader's LoadError.
LoadError decode_journal(const uint8_t* data, size_t n, JournalFile& out);
inline LoadError decode_journal(const std::vector<uint8_t>& buf,
                                JournalFile& out) {
  return decode_journal(buf.data(), buf.size(), out);
}

}  // namespace qserv::recovery
