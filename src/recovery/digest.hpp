// World-state digests for deterministic replay: an FNV-1a 64 hash over
// every active entity in id order (float fields hashed by bit pattern, so
// "bit-identical" means exactly that), plus the free-id stack and world
// RNG state — allocator or RNG drift shows up the frame it happens, not
// frames later when it first moves an entity.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/world.hpp"

namespace qserv::recovery {

inline constexpr uint64_t kFnvOffset64 = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime64 = 0x100000001b3ull;

inline uint64_t fnv1a64(const void* data, size_t n,
                        uint64_t h = kFnvOffset64) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime64;
  }
  return h;
}

struct EntityDigest {
  uint32_t id = 0;
  uint32_t hash = 0;
};

// Hash of one entity's replay-relevant state (excludes `cluster` and
// `areanode`, which are derived from origin/links and checked elsewhere).
uint32_t entity_digest(const sim::Entity& e);

// Frame digest over the whole world. If `per_entity` is non-null it is
// filled with (id, hash) for every active entity in id order — the data a
// divergence report uses to name the first offending entity.
uint64_t world_digest(const sim::World& w,
                      std::vector<EntityDigest>* per_entity = nullptr);

}  // namespace qserv::recovery
