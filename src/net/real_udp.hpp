// Real-socket edge: the net::Transport seam over non-blocking AF_INET UDP
// sockets and epoll. Runs only on RealPlatform (wall-clock threads) — the
// virtual segment stays authoritative for deterministic Sim runs.
//
// Design notes, mirroring the paper's private-port server:
//  - One listener socket per worker thread, each on its own port
//    (base_port + tid). SO_REUSEPORT is set on every bind so a future
//    generation can take a port over without a close/bind gap, and
//    SO_REUSEADDR so a failure-path rebind after close succeeds.
//  - Port identity: qserv addresses peers by UDP port, the same model the
//    virtual network uses. The transport learns `port -> sockaddr` routes
//    from the source address of every received datagram; sends to a port
//    with no learned route fall back to (peer_host, port). On loopback —
//    the supported deployment for this edge — the two are equivalent.
//  - Receive-buffer accounting: SO_RXQ_OVFL deltas (kernel drops when the
//    socket receive buffer overflows) feed the same packets_overflowed
//    counter the virtual socket_buffer bound feeds, so the qserv-bench-v1
//    network block reads identically on both transports.
//  - Oversized datagrams are clamped at recvfrom: MSG_TRUNC reports the
//    true wire length, anything beyond max_datagram is cut and counted in
//    packets_truncated (always 0 on the virtual transport).
//  - Hot restart: bound_fds() enumerates live (port, fd) pairs for the
//    SCM_RIGHTS handoff, and Config::adopted_fds lets the next generation
//    wrap inherited descriptors instead of binding — datagrams queued in
//    the kernel socket buffers survive the exec, which is what makes the
//    restart zero-loss.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/net/transport.hpp"

namespace qserv::net {

class RealSocket;
class RealSelector;

class RealUdpTransport final : public Transport {
 public:
  struct Config {
    // Bind address for listeners and fallback destination host for sends
    // to ports with no learned route. Loopback by default: this edge is
    // exercised by same-host benches and CI, not an open ingress.
    std::string host = "127.0.0.1";
    // Receive clamp: payload bytes beyond this are truncated and counted.
    // Defaults to the UDP/IPv4 maximum — the virtual segment never
    // fragments, and a 160-player full snapshot legitimately exceeds a
    // wire MTU on loopback. Tests shrink it to exercise the clamp.
    size_t max_datagram = 65507;
    // SO_RCVBUF / SO_SNDBUF in bytes; 0 keeps the kernel default.
    int recv_buffer_bytes = 0;
    int send_buffer_bytes = 0;
    // Hot-restart adoption: port -> already-bound descriptor received over
    // the handoff channel. try_open(port) wraps the descriptor instead of
    // binding a fresh socket.
    std::map<uint16_t, int> adopted_fds;
  };

  RealUdpTransport(vt::Platform& platform, Config cfg);
  ~RealUdpTransport() override;

  std::unique_ptr<Socket> try_open(uint16_t port,
                                   OpenError* err = nullptr) override;
  std::unique_ptr<Selector> make_selector() override;
  vt::Platform& platform() override { return platform_; }
  TransportCounters counters() const override;

  // Live (port, fd) pairs — the old generation's side of an FD handoff.
  // Descriptors stay owned by their sockets; SCM_RIGHTS duplicates them
  // into the receiver, so the sender tears down normally afterwards.
  std::vector<std::pair<uint16_t, int>> bound_fds() const;

  const Config& config() const { return cfg_; }

 private:
  friend class RealSocket;

  void learn_route(uint16_t port, const sockaddr_in& addr);
  bool lookup_route(uint16_t port, sockaddr_in& out) const;
  void unregister(uint16_t port, RealSocket* sock);

  vt::Platform& platform_;
  Config cfg_;
  in_addr host_addr_{};

  mutable std::mutex mu_;
  std::map<uint16_t, RealSocket*> ports_;
  std::map<uint16_t, sockaddr_in> routes_;

  std::atomic<uint64_t> sent_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> overflowed_{0};
  std::atomic<uint64_t> to_closed_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> truncated_{0};
};

}  // namespace qserv::net
