#include "src/net/virtual_udp.hpp"

#include <algorithm>

#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace qserv::net {

VirtualNetwork::VirtualNetwork(vt::Platform& platform, Config cfg)
    : platform_(platform),
      cfg_(cfg),
      mu_(platform.make_mutex("vnet")),
      rng_(cfg.seed) {
  QSERV_CHECK(cfg.loss >= 0.0f && cfg.loss < 1.0f);
  QSERV_CHECK(cfg.latency.ns >= 0 && cfg.jitter.ns >= 0);
}

VirtualNetwork::~VirtualNetwork() {
  QSERV_CHECK_MSG(ports_.empty(), "sockets outliving their VirtualNetwork");
}

std::unique_ptr<Socket> VirtualNetwork::try_open(uint16_t port,
                                                 OpenError* err) {
  vt::LockGuard g(*mu_);
  if (ports_.contains(port)) {
    // A typed error, not an assert: callers that race for ports (a
    // churning client picking a fresh ephemeral port) retry elsewhere.
    if (err != nullptr) *err = OpenError::kPortInUse;
    return nullptr;
  }
  auto sock = std::unique_ptr<VirtualSocket>(new VirtualSocket(*this, port));
  ports_[port] = sock.get();
  if (err != nullptr) *err = OpenError::kNone;
  return sock;
}

std::unique_ptr<Selector> VirtualNetwork::make_selector() {
  return std::make_unique<VirtualSelector>(platform_);
}

FaultScheduler& VirtualNetwork::faults() {
  vt::LockGuard g(*mu_);
  if (faults_ == nullptr) {
    faults_ =
        std::make_unique<FaultScheduler>(derive_seed(cfg_.seed, streams::kFaults));
  }
  return *faults_;
}

void VirtualNetwork::unregister(uint16_t port) {
  vt::LockGuard g(*mu_);
  ports_.erase(port);
}

bool VirtualNetwork::route(uint16_t src, uint16_t dst,
                           std::vector<uint8_t> payload) {
  VirtualSocket* target = nullptr;
  Datagram d;
  {
    vt::LockGuard g(*mu_);
    ++packets_sent_;
    bytes_sent_ += payload.size();
    // deterministic_flows: draws for this packet are a pure function of
    // (seed, src, dst, flow packet index) — other flows' traffic cannot
    // shift them.
    Rng flow_rng(0);
    Rng* rng = &rng_;
    if (cfg_.deterministic_flows) {
      const uint32_t key = (static_cast<uint32_t>(src) << 16) | dst;
      flow_rng = Rng(derive_seed(derive_seed(cfg_.seed, key),
                                 flow_counters_[key]++));
      rng = &flow_rng;
    }
    if (cfg_.loss > 0.0f && rng->chance(cfg_.loss)) {
      ++packets_dropped_;
      return false;
    }
    FaultScheduler::Verdict fault;
    if (faults_ != nullptr) {
      fault = faults_->apply(platform_.now(), src, dst);
      if (fault.drop) {
        ++packets_dropped_;
        return false;
      }
    }
    const auto it = ports_.find(dst);
    if (it == ports_.end()) {
      ++packets_dead_;
      return false;
    }
    target = it->second;
    vt::Duration delay = cfg_.latency;
    if (cfg_.jitter.ns > 0) {
      const float sampled = rng->normalish(static_cast<float>(cfg_.latency.ns),
                                           static_cast<float>(cfg_.jitter.ns));
      delay.ns = std::max<int64_t>(0, static_cast<int64_t>(sampled));
    }
    delay += fault.extra_latency;
    d.src_port = src;
    d.dst_port = dst;
    d.payload = std::move(payload);
    d.sent_at = platform_.now();
    d.deliver_at = d.sent_at + delay;
    // Deliver while still holding the network lock: ~VirtualSocket
    // blocks in unregister() on the same lock, so the target cannot be
    // destroyed out from under us — a supervised shard restore tears
    // down a live engine's sockets while peers are still sending.
    // Lock order stays acyclic: net -> socket -> (released) -> selector
    // core; nothing acquires the network lock while holding either.
    target->deliver(std::move(d));
  }
  return true;
}

VirtualSocket::VirtualSocket(VirtualNetwork& net, uint16_t port)
    : net_(net), port_(port), mu_(net.platform().make_mutex("socket")) {}

VirtualSocket::~VirtualSocket() { net_.unregister(port_); }

bool VirtualSocket::send(uint16_t dst, std::vector<uint8_t> payload) {
  return net_.route(port_, dst, std::move(payload));
}

void VirtualSocket::deliver(Datagram d) {
  std::shared_ptr<SelectorCore> to_notify;
  {
    vt::LockGuard g(*mu_);
    if (queue_.size() >= net_.cfg_.socket_buffer) {
      // Receive buffer full: the datagram is dropped, as a kernel UDP
      // socket would.
      net_.packets_overflow_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    queue_.emplace(std::make_pair(d.deliver_at.ns, arrival_seq_++),
                   std::move(d));
    to_notify = notify_;
  }
  // Notify outside the socket lock: the selector's wait path locks
  // selector-then-socket, so locking socket-then-selector here would
  // deadlock on the real platform. The shared_ptr keeps the selector's
  // mutex/condvar alive even if the selector itself is being destroyed.
  if (to_notify != nullptr) {
    vt::LockGuard g(*to_notify->mu);
    to_notify->cv->broadcast();
  }
}

bool VirtualSocket::try_recv(Datagram& out) {
  vt::LockGuard g(*mu_);
  if (queue_.empty()) return false;
  const auto it = queue_.begin();
  if (it->second.deliver_at > net_.platform().now()) return false;
  out = std::move(it->second);
  queue_.erase(it);
  ++received_;
  return true;
}

vt::TimePoint VirtualSocket::next_ready() const {
  vt::LockGuard g(*mu_);
  if (queue_.empty()) return vt::TimePoint::max();
  return queue_.begin()->second.deliver_at;
}

bool VirtualSocket::has_ready() const {
  return next_ready() <= net_.platform().now();
}

size_t VirtualSocket::queued() const {
  vt::LockGuard g(*mu_);
  return queue_.size();
}

VirtualSelector::VirtualSelector(vt::Platform& platform)
    : platform_(platform), core_(std::make_shared<SelectorCore>()) {
  core_->mu = platform.make_mutex("selector");
  core_->cv = platform.make_condvar();
}

VirtualSelector::~VirtualSelector() {
  for (VirtualSocket* s : sockets_) {
    vt::LockGuard g(*s->mu_);
    s->selector_ = nullptr;
    s->notify_.reset();
  }
}

void VirtualSelector::add(Socket& sock) {
  // Sockets and selectors come from the same transport (transport.hpp
  // contract), so this cast cannot see a RealSocket.
  auto& s = static_cast<VirtualSocket&>(sock);
  vt::LockGuard g(*s.mu_);
  QSERV_CHECK_MSG(s.selector_ == nullptr, "socket already has a selector");
  s.selector_ = this;
  s.notify_ = core_;
  sockets_.push_back(&s);
}

void VirtualSelector::remove(Socket& sock) {
  auto& s = static_cast<VirtualSocket&>(sock);
  // Selector lock first, then socket lock — the same order the wait path
  // uses (wait_until holds the core mutex while querying each socket).
  {
    vt::LockGuard g(*core_->mu);
    std::erase(sockets_, &s);
  }
  vt::LockGuard g(*s.mu_);
  QSERV_CHECK_MSG(s.selector_ == this, "removing socket from wrong selector");
  s.selector_ = nullptr;
  s.notify_.reset();
}

bool VirtualSelector::wait_until(vt::TimePoint deadline) {
  vt::LockGuard g(*core_->mu);
  for (;;) {
    if (core_->poked) {
      core_->poked = false;
      return false;
    }
    vt::TimePoint earliest = vt::TimePoint::max();
    for (VirtualSocket* s : sockets_)
      earliest = std::min(earliest, s->next_ready());
    const vt::TimePoint now = platform_.now();
    if (earliest <= now) return true;
    if (deadline <= now) return false;
    // Sleep until either new traffic arrives (signal) or the earlier of
    // (queued-packet delivery time, caller deadline).
    core_->cv->wait_until(*core_->mu, std::min(deadline, earliest));
  }
}

void VirtualSelector::poke() {
  vt::LockGuard g(*core_->mu);
  core_->poked = true;
  core_->cv->broadcast();
}

}  // namespace qserv::net
