#include "src/net/real_udp.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <optional>

#include "src/util/check.hpp"

namespace qserv::net {

namespace {

// Drops >2^31 ms deadlines (TimePoint::max() waits) to a finite epoll
// timeout; the waiting loop re-arms, so the cap only bounds one sleep.
int epoll_timeout_ms(vt::TimePoint now, vt::TimePoint deadline) {
  if (deadline.ns <= now.ns) return 0;
  const int64_t remaining_ns = deadline.ns - now.ns;
  const int64_t ms = remaining_ns / 1'000'000 + 1;  // round up: never early
  return static_cast<int>(std::min<int64_t>(ms, 60'000));
}

void set_nonblocking_cloexec(int fd) {
  const int fl = fcntl(fd, F_GETFL);
  if (fl >= 0) fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  const int fdfl = fcntl(fd, F_GETFD);
  if (fdfl >= 0) fcntl(fd, F_SETFD, fdfl | FD_CLOEXEC);
}

}  // namespace

// ---------------------------------------------------------------------------
// RealSocket

class RealSocket final : public Socket {
 public:
  RealSocket(RealUdpTransport& net, uint16_t port, int fd)
      : net_(net), port_(port), fd_(fd) {}

  ~RealSocket() override {
    net_.unregister(port_, this);
    ::close(fd_);
  }

  uint16_t port() const override { return port_; }
  int fd() const { return fd_; }

  bool send(uint16_t dst, std::vector<uint8_t> payload) override {
    return send_span(dst, payload.data(), payload.size());
  }

  // A real datagram socket needs no owning buffer past the sendto(2)
  // call, so the span goes straight to the kernel — this is the zero-copy
  // end of the arena wire-buffer path.
  bool send_span(uint16_t dst, const uint8_t* data, size_t len) override {
    sockaddr_in to{};
    if (!net_.lookup_route(dst, to)) {
      // No learned route yet (first packet of a flow): fall back to the
      // configured host — correct on loopback, where every peer binds the
      // same address and differs only by port.
      to.sin_family = AF_INET;
      to.sin_port = htons(dst);
      to.sin_addr = net_.host_addr_;
    }
    const ssize_t n = ::sendto(fd_, data, len, 0,
                               reinterpret_cast<const sockaddr*>(&to),
                               sizeof(to));
    if (n >= 0) {
      net_.sent_.fetch_add(1, std::memory_order_relaxed);
      net_.bytes_sent_.fetch_add(len, std::memory_order_relaxed);
      return true;
    }
    if (errno == ECONNREFUSED) {
      // Deferred ICMP port-unreachable from an earlier send on this
      // socket — the real-world shape of the virtual transport's
      // closed-port accounting.
      net_.to_closed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // EMSGSIZE / EAGAIN / ENOBUFS / anything else: the datagram never
      // left this host. Same counter the virtual loss model feeds.
      net_.dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }

  bool try_recv(Datagram& out) override {
    std::lock_guard<std::mutex> lock(peek_mu_);
    if (peeked_) {
      out = std::move(*peeked_);
      peeked_.reset();
      return true;
    }
    return recv_from_kernel(out);
  }

  // The real transport cannot see scheduled deliveries the way the
  // virtual one can; a datagram is either in the kernel buffer (ready
  // now) or invisible. One-datagram peek keeps the Socket contract.
  vt::TimePoint next_ready() const override {
    return peek() ? net_.platform_.now() : vt::TimePoint::max();
  }
  bool has_ready() const override { return peek(); }
  size_t queued() const override { return peek() ? 1 : 0; }

  uint64_t received_count() const override {
    return received_.load(std::memory_order_relaxed);
  }

 private:
  friend class RealSelector;

  bool peek() const {
    std::lock_guard<std::mutex> lock(peek_mu_);
    if (peeked_) return true;
    Datagram d;
    if (!const_cast<RealSocket*>(this)->recv_from_kernel(d)) return false;
    peeked_ = std::move(d);
    return true;
  }

  // Caller holds peek_mu_ (which also guards the scratch buffer).
  bool recv_from_kernel(Datagram& out) {
    std::vector<uint8_t>& buf = scratch_;
    buf.resize(net_.cfg_.max_datagram);
    for (;;) {
      sockaddr_in from{};
      iovec iov{buf.data(), buf.size()};
      alignas(cmsghdr) char ctrl[CMSG_SPACE(sizeof(uint32_t))];
      msghdr msg{};
      msg.msg_name = &from;
      msg.msg_namelen = sizeof(from);
      msg.msg_iov = &iov;
      msg.msg_iovlen = 1;
      msg.msg_control = ctrl;
      msg.msg_controllen = sizeof(ctrl);
      // MSG_TRUNC in flags makes recvmsg return the true wire length even
      // when it exceeds the buffer — that is the oversized-datagram clamp.
      const ssize_t n = ::recvmsg(fd_, &msg, MSG_TRUNC);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNREFUSED) {
          // Drain the queued ICMP error and try again for actual data.
          net_.to_closed_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        return false;  // EAGAIN: nothing ready
      }
      harvest_overflow(msg);
      const size_t wire = static_cast<size_t>(n);
      const size_t take = std::min(wire, buf.size());
      if (wire > buf.size())
        net_.truncated_.fetch_add(1, std::memory_order_relaxed);
      out.payload.assign(buf.begin(),
                         buf.begin() + static_cast<ptrdiff_t>(take));
      out.src_port = ntohs(from.sin_port);
      out.dst_port = port_;
      out.sent_at = out.deliver_at = net_.platform_.now();
      net_.learn_route(out.src_port, from);
      received_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }

  // SO_RXQ_OVFL attaches the socket's cumulative kernel-drop count to
  // each received datagram; deltas feed the shared overflow counter.
  void harvest_overflow(const msghdr& msg) {
    for (cmsghdr* c = CMSG_FIRSTHDR(const_cast<msghdr*>(&msg)); c != nullptr;
         c = CMSG_NXTHDR(const_cast<msghdr*>(&msg), c)) {
      if (c->cmsg_level != SOL_SOCKET || c->cmsg_type != SO_RXQ_OVFL) continue;
      uint32_t total = 0;
      memcpy(&total, CMSG_DATA(c), sizeof(total));
      const uint32_t last = last_ovfl_.exchange(total);
      if (total > last)
        net_.overflowed_.fetch_add(total - last, std::memory_order_relaxed);
    }
  }

  RealUdpTransport& net_;
  const uint16_t port_;
  const int fd_;
  std::atomic<uint64_t> received_{0};
  std::atomic<uint32_t> last_ovfl_{0};
  mutable std::mutex peek_mu_;
  mutable std::optional<Datagram> peeked_;
  std::vector<uint8_t> scratch_;
};

// ---------------------------------------------------------------------------
// RealSelector

class RealSelector final : public Selector {
 public:
  explicit RealSelector(RealUdpTransport& net) : net_(net) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    QSERV_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
    event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    QSERV_CHECK_MSG(event_fd_ >= 0, "eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // null tags the poke channel
    QSERV_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) == 0);
  }

  ~RealSelector() override {
    ::close(event_fd_);
    ::close(epoll_fd_);
  }

  void add(Socket& s) override {
    // Transports are homogeneous per the seam contract: a real selector
    // only ever sees real sockets.
    auto& rs = static_cast<RealSocket&>(s);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &rs;
    QSERV_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, rs.fd(), &ev) == 0);
    sockets_.push_back(&rs);
  }

  void remove(Socket& s) override {
    auto& rs = static_cast<RealSocket&>(s);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, rs.fd(), nullptr);
    sockets_.erase(std::remove(sockets_.begin(), sockets_.end(), &rs),
                   sockets_.end());
  }

  bool wait_until(vt::TimePoint deadline) override {
    for (;;) {
      // A datagram parked in a socket's peek buffer is invisible to
      // epoll (already read from the kernel) — check before sleeping.
      for (const RealSocket* s : sockets_)
        if (s->has_ready()) return true;
      const vt::TimePoint now = net_.platform().now();
      epoll_event evs[16];
      const int n = ::epoll_wait(epoll_fd_, evs, 16,
                                 epoll_timeout_ms(now, deadline));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      bool data = false;
      bool poked = false;
      for (int i = 0; i < n; ++i) {
        if (evs[i].data.ptr == nullptr) {
          uint64_t v = 0;
          [[maybe_unused]] ssize_t r = ::read(event_fd_, &v, sizeof(v));
          poked = true;
        } else {
          data = true;
        }
      }
      if (data) return true;
      if (poked) return false;
      if (net_.platform().now().ns >= deadline.ns) return false;
    }
  }

  void poke() override {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(event_fd_, &one, sizeof(one));
  }

 private:
  RealUdpTransport& net_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::vector<RealSocket*> sockets_;
};

// ---------------------------------------------------------------------------
// RealUdpTransport

RealUdpTransport::RealUdpTransport(vt::Platform& platform, Config cfg)
    : platform_(platform), cfg_(std::move(cfg)) {
  QSERV_CHECK_MSG(!platform.is_simulated(),
                  "RealUdpTransport needs wall-clock threads (RealPlatform)");
  QSERV_CHECK_MSG(
      ::inet_pton(AF_INET, cfg_.host.c_str(), &host_addr_) == 1,
      "RealUdpTransport: host must be an IPv4 literal");
}

RealUdpTransport::~RealUdpTransport() {
  std::lock_guard<std::mutex> lock(mu_);
  QSERV_CHECK_MSG(ports_.empty(), "sockets must not outlive the transport");
  // Adopted descriptors never claimed by a try_open still belong to us.
  for (const auto& [port, fd] : cfg_.adopted_fds) ::close(fd);
}

std::unique_ptr<Socket> RealUdpTransport::try_open(uint16_t port,
                                                   OpenError* err) {
  if (err != nullptr) *err = OpenError::kNone;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ports_.count(port) != 0) {
      // SO_REUSEPORT would let the kernel accept a duplicate bind, so the
      // transport enforces the one-socket-per-port model itself, keeping
      // collision semantics identical to the virtual network.
      if (err != nullptr) *err = OpenError::kPortInUse;
      return nullptr;
    }
  }
  int fd = -1;
  const auto adopted = cfg_.adopted_fds.find(port);
  if (adopted != cfg_.adopted_fds.end()) {
    fd = adopted->second;
    cfg_.adopted_fds.erase(adopted);
    set_nonblocking_cloexec(fd);
  } else {
    fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      if (err != nullptr) *err = OpenError::kSysError;
      return nullptr;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
    ::setsockopt(fd, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof(one));
    if (cfg_.recv_buffer_bytes > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &cfg_.recv_buffer_bytes,
                   sizeof(cfg_.recv_buffer_bytes));
    if (cfg_.send_buffer_bytes > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &cfg_.send_buffer_bytes,
                   sizeof(cfg_.send_buffer_bytes));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr = host_addr_;
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const int bind_errno = errno;
      ::close(fd);
      if (err != nullptr)
        *err = bind_errno == EADDRINUSE ? OpenError::kPortInUse
                                        : OpenError::kSysError;
      return nullptr;
    }
  }
  auto sock = std::unique_ptr<RealSocket>(new RealSocket(*this, port, fd));
  std::lock_guard<std::mutex> lock(mu_);
  ports_[port] = sock.get();
  return sock;
}

std::unique_ptr<Selector> RealUdpTransport::make_selector() {
  return std::make_unique<RealSelector>(*this);
}

TransportCounters RealUdpTransport::counters() const {
  TransportCounters c;
  c.packets_sent = sent_.load(std::memory_order_relaxed);
  c.packets_dropped = dropped_.load(std::memory_order_relaxed);
  c.packets_overflowed = overflowed_.load(std::memory_order_relaxed);
  c.packets_to_closed_ports = to_closed_.load(std::memory_order_relaxed);
  c.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  c.packets_truncated = truncated_.load(std::memory_order_relaxed);
  return c;
}

std::vector<std::pair<uint16_t, int>> RealUdpTransport::bound_fds() const {
  std::vector<std::pair<uint16_t, int>> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(ports_.size());
  for (const auto& [port, sock] : ports_) out.emplace_back(port, sock->fd());
  return out;
}

void RealUdpTransport::learn_route(uint16_t port, const sockaddr_in& addr) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_[port] = addr;
}

bool RealUdpTransport::lookup_route(uint16_t port, sockaddr_in& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = routes_.find(port);
  if (it == routes_.end()) return false;
  out = it->second;
  return true;
}

void RealUdpTransport::unregister(uint16_t port, RealSocket* sock) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = ports_.find(port);
  if (it != ports_.end() && it->second == sock) ports_.erase(it);
}

}  // namespace qserv::net
