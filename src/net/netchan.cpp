#include "src/net/netchan.hpp"

#include "src/net/bytestream.hpp"

namespace qserv::net {

namespace {
constexpr size_t kHeaderBytes = 8;  // out sequence + ack
}

NetChannel::NetChannel(Socket& sock, uint16_t remote)
    : sock_(&sock), remote_(remote) {}

bool NetChannel::send(std::vector<uint8_t> body) {
  ByteWriter w;
  w.u32(++out_seq_);
  w.u32(in_seq_);
  w.bytes(body.data(), body.size());
  ++sent_;
  return sock_->send(remote_, w.take());
}

bool NetChannel::accept(const Datagram& d, Incoming& info,
                        ByteReader& body_out) {
  if (d.payload.size() < kHeaderBytes) return false;
  ByteReader header(d.payload.data(), kHeaderBytes);
  info.sequence = header.u32();
  info.acked = header.u32();
  info.duplicate_or_old = info.sequence <= in_seq_ && in_seq_ != 0;
  info.dropped_before = 0;
  if (!info.duplicate_or_old) {
    if (in_seq_ != 0 && info.sequence > in_seq_ + 1)
      info.dropped_before = info.sequence - in_seq_ - 1;
    drops_ += info.dropped_before;
    in_seq_ = info.sequence;
    if (info.acked > in_acked_) in_acked_ = info.acked;
    ++accepted_;
  } else {
    ++dups_;
  }
  body_out = ByteReader(d.payload.data() + kHeaderBytes,
                        d.payload.size() - kHeaderBytes);
  return true;
}

}  // namespace qserv::net
