#include "src/net/netchan.hpp"

#include "src/net/bytestream.hpp"

namespace qserv::net {

namespace {
constexpr size_t kHeaderBytes = NetChannel::kHeaderReserve;

inline void put_u32_le(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
}  // namespace

NetChannel::NetChannel(Socket& sock, uint16_t remote)
    : sock_(&sock), remote_(remote) {}

bool NetChannel::send(std::vector<uint8_t> body) {
  ByteWriter w;
  w.u32(++out_seq_);
  w.u32(in_seq_);
  w.bytes(body.data(), body.size());
  ++sent_;
  return sock_->send(remote_, w.take());
}

bool NetChannel::send_in_place(uint8_t* frame, size_t body_len) {
  put_u32_le(frame, ++out_seq_);
  put_u32_le(frame + 4, in_seq_);
  ++sent_;
  return sock_->send_span(remote_, frame, kHeaderReserve + body_len);
}

bool NetChannel::accept(const Datagram& d, Incoming& info,
                        ByteReader& body_out) {
  if (d.payload.size() < kHeaderBytes) return false;
  ByteReader header(d.payload.data(), kHeaderBytes);
  info.sequence = header.u32();
  info.acked = header.u32();
  info.duplicate_or_old = info.sequence <= in_seq_ && in_seq_ != 0;
  info.dropped_before = 0;
  if (!info.duplicate_or_old) {
    if (in_seq_ != 0 && info.sequence > in_seq_ + 1)
      info.dropped_before = info.sequence - in_seq_ - 1;
    drops_ += info.dropped_before;
    in_seq_ = info.sequence;
    if (info.acked > in_acked_) in_acked_ = info.acked;
    ++accepted_;
  } else {
    ++dups_;
  }
  body_out = ByteReader(d.payload.data() + kHeaderBytes,
                        d.payload.size() - kHeaderBytes);
  return true;
}

}  // namespace qserv::net
