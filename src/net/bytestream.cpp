#include "src/net/bytestream.hpp"

#include <cstring>

namespace qserv::net {

void ByteWriter::u8(uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::u32(uint32_t v) {
  u16(static_cast<uint16_t>(v));
  u16(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::u64(uint64_t v) {
  u32(static_cast<uint32_t>(v));
  u32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::f32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}

void ByteWriter::vec3(const Vec3& v) {
  f32(v.x);
  f32(v.y);
  f32(v.z);
}

void ByteWriter::str(const std::string& s) {
  const size_t n = s.size() > 65535 ? 65535 : s.size();
  u16(static_cast<uint16_t>(n));
  bytes(reinterpret_cast<const uint8_t*>(s.data()), n);
}

void ByteWriter::bytes(const uint8_t* data, size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

bool ByteReader::take(size_t n) {
  if (size_ - pos_ < n) {
    overflowed_ = true;
    pos_ = size_;
    return false;
  }
  return true;
}

uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

uint16_t ByteReader::u16() {
  if (!take(2)) return 0;
  const uint16_t v = static_cast<uint16_t>(data_[pos_]) |
                     static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t ByteReader::u32() {
  const uint32_t lo = u16();
  const uint32_t hi = u16();
  return lo | (hi << 16);
}

uint64_t ByteReader::u64() {
  const uint64_t lo = u32();
  const uint64_t hi = u32();
  return lo | (hi << 32);
}

float ByteReader::f32() {
  const uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Vec3 ByteReader::vec3() {
  const float x = f32(), y = f32(), z = f32();
  return {x, y, z};
}

std::string ByteReader::str() {
  const uint16_t n = u16();
  if (!take(n)) return {};
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace qserv::net
