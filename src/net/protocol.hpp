// Wire protocol between clients and the game server, modelled on the
// QuakeWorld protocol at the granularity this study needs: connect /
// move / disconnect requests, and snapshot replies carrying the player
// state, visible entities, and global game events.
//
// Every message is one datagram body (after the netchan header). The first
// byte is the message type.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/net/bytestream.hpp"
#include "src/util/vec.hpp"
#include "src/vthread/time.hpp"

namespace qserv::net {

enum class ClientMsgType : uint8_t { kConnect = 1, kMove = 2, kDisconnect = 3 };
enum class ServerMsgType : uint8_t {
  kConnectAck = 64,
  kSnapshot = 65,       // full entity state
  kDeltaSnapshot = 66,  // changes against an acked baseline snapshot
  kReject = 67,         // connection refused / terminated, with a reason
};

// Why the server refused or terminated a client (RejectMsg::reason).
enum class RejectReason : uint8_t {
  kServerFull = 1,  // no free client slot; stop retrying the connect
  kEvicted = 2,     // reaped after client_timeout of silence; re-connect
  kServerBusy = 3,  // admission control / load shedding; back off, retry
};

const char* reject_reason_name(RejectReason r);

// Field-change bits in a delta-encoded entity update.
inline constexpr uint8_t kDeltaOrigin = 1;
inline constexpr uint8_t kDeltaYaw = 2;
inline constexpr uint8_t kDeltaState = 4;
inline constexpr uint8_t kDeltaType = 8;
inline constexpr uint8_t kDeltaAll =
    kDeltaOrigin | kDeltaYaw | kDeltaState | kDeltaType;

// Button bits in MoveCmd::buttons.
inline constexpr uint8_t kButtonAttack = 1;  // fire current weapon
inline constexpr uint8_t kButtonJump = 2;
inline constexpr uint8_t kButtonThrow = 4;   // long-range projectile throw

// Parse-time sanity caps (overload/abuse hardening; decode() rejects
// messages exceeding them). Real clients sit far below both.
inline constexpr size_t kMaxPlayerNameLen = 32;
inline constexpr uint16_t kMaxMoveMsec = 250;  // QuakeWorld's byte-msec cap

struct ConnectMsg {
  std::string name;
};

// The move command (§2.3 of the paper): view angles, motion indicators,
// action flags, and the duration the command applies for.
struct MoveCmd {
  uint32_t sequence = 0;       // client's command sequence number
  int64_t client_time_ns = 0;  // echoed in the reply; measures response time
  // The server_frame of the newest snapshot this client has fully
  // reconstructed — the only baseline the server may delta against
  // (QuakeWorld-style; loss-safe because unreconstructed frames are
  // never advertised). 0 = request a full snapshot.
  uint32_t baseline_frame = 0;
  uint16_t msec = 30;          // how long the command applies
  float yaw_deg = 0.0f;
  float pitch_deg = 0.0f;
  float forward = 0.0f;  // forward speed request, units/s
  float side = 0.0f;
  float up = 0.0f;
  uint8_t buttons = 0;
};

// Tells a client its fate explicitly instead of silently dropping it:
// sent in response to a connect when the server is full, and as a
// parting shot when a timed-out client is reaped.
struct RejectMsg {
  RejectReason reason = RejectReason::kServerFull;
};

struct ConnectAck {
  uint32_t player_id = 0;
  uint32_t server_frame = 0;
  // The server port this client must address from now on. Usually the
  // port the connect was sent to; under region-based assignment the
  // server may direct the client to a different thread's port.
  uint16_t assigned_port = 0;
  Vec3 spawn_origin;
};

// One visible entity inside a snapshot.
struct EntityUpdate {
  uint32_t id = 0;
  uint8_t type = 0;  // sim::EntityType
  Vec3 origin;
  float yaw_deg = 0.0f;
  uint8_t state = 0;  // type-specific (item available, player crouched, ...)
};

// One global game event (frag, item pickup, sound, ...) from the global
// state buffer; broadcast to every client.
struct GameEvent {
  uint8_t kind = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  Vec3 pos;
};

struct Snapshot {
  uint32_t server_frame = 0;
  uint32_t ack_sequence = 0;       // latest move sequence processed
  int64_t client_time_echo_ns = 0; // client_time_ns of that move
  // Non-zero when the server has reassigned this client to another
  // thread's port (dynamic assignment); the client must re-target.
  uint16_t assigned_port = 0;
  // Delta snapshots only: the server_frame of the (client-acknowledged)
  // snapshot this one is encoded against. 0 in full snapshots.
  uint32_t baseline_frame = 0;
  // Private player state.
  Vec3 origin;
  Vec3 velocity;
  int16_t health = 0;
  int16_t armor = 0;
  int16_t frags = 0;
  std::vector<EntityUpdate> entities;
  std::vector<GameEvent> events;
};

// --- encoding ---
std::vector<uint8_t> encode(const ConnectMsg& m);
std::vector<uint8_t> encode(const MoveCmd& m);
std::vector<uint8_t> encode_disconnect();
std::vector<uint8_t> encode(const RejectMsg& m);
std::vector<uint8_t> encode(const ConnectAck& m);
void encode(const Snapshot& m, ByteWriter& w);
std::vector<uint8_t> encode(const Snapshot& m);

// Delta compression: encodes `now` against `baseline.entities` (the
// entity list of the snapshot whose server_frame the client last
// acknowledged). Unchanged entities cost nothing; changed ones carry only
// the changed fields; entities present in the baseline but not in `now`
// go to a removal list. `stats_encoded_out`, if non-null, receives the
// number of entity records actually written (for cost accounting).
std::vector<uint8_t> encode_delta(const Snapshot& now,
                                  const std::vector<EntityUpdate>& baseline,
                                  uint32_t baseline_frame,
                                  int* stats_encoded_out = nullptr);

// Reconstructs a full snapshot from a delta. `baseline_lookup` maps a
// server_frame to the entity list of the snapshot the client
// reconstructed for that frame (nullptr if unknown — decoding then fails
// and the caller waits for a full snapshot). Returns false on malformed
// input or a missing baseline.
using BaselineLookup =
    std::function<const std::vector<EntityUpdate>*(uint32_t frame)>;
bool decode_delta(ByteReader& r, const BaselineLookup& baseline_lookup,
                  Snapshot& out);

// --- decoding ---
// Each returns false on a malformed buffer (wrong type byte or short read).
bool decode_client_type(ByteReader& r, ClientMsgType& type);
bool decode(ByteReader& r, ConnectMsg& m);
bool decode(ByteReader& r, MoveCmd& m);
bool decode_server_type(ByteReader& r, ServerMsgType& type);
bool decode(ByteReader& r, RejectMsg& m);
bool decode(ByteReader& r, ConnectAck& m);
bool decode(ByteReader& r, Snapshot& m);

}  // namespace qserv::net
