// Quake-style network channel: a thin sequencing layer over the datagram
// socket. Each packet carries an outgoing sequence number and the latest
// sequence seen from the peer, which lets both ends detect drops,
// duplicates and reordering without retransmission (the game resends
// state every frame anyway).
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/bytestream.hpp"
#include "src/net/transport.hpp"

namespace qserv::net {

class NetChannel {
 public:
  // `sock` must outlive the channel; `remote` is the peer's port.
  NetChannel(Socket& sock, uint16_t remote);

  // Channel header size: outgoing sequence + latest-seen peer sequence.
  // Buffers passed to send_in_place must reserve this much headroom.
  static constexpr size_t kHeaderReserve = 8;

  // Sends `body` framed with the channel header.
  bool send(std::vector<uint8_t> body);

  // Zero-copy variant: `frame` points at kHeaderReserve writable headroom
  // bytes followed by `body_len` message bytes (an arena wire buffer).
  // Stamps the header into the headroom and sends the whole span without
  // assembling an intermediate vector.
  bool send_in_place(uint8_t* frame, size_t body_len);

  // Result of accepting one incoming datagram.
  struct Incoming {
    uint32_t sequence = 0;       // peer's sequence for this packet
    uint32_t acked = 0;          // latest of our sequences the peer saw
    uint32_t dropped_before = 0; // gap detected before this packet
    bool duplicate_or_old = false;
  };

  // Parses the channel header from `d.payload`. Returns false on a
  // malformed header. On success `body_out` views the remaining bytes
  // (pointing into d.payload — the datagram must stay alive).
  bool accept(const Datagram& d, Incoming& info, ByteReader& body_out);

  // Migrates the channel to a different local socket, preserving all
  // sequencing state — used when a client is reassigned to another server
  // thread (dynamic assignment) so the peer sees a continuous stream.
  void rebind(Socket& sock) { sock_ = &sock; }
  // Re-targets the peer port, preserving sequencing state (the peer's
  // channel object is the same one on the other side).
  void set_remote(uint16_t remote) { remote_ = remote; }
  // Restores sequencing state from a checkpoint so a warm-restarted server
  // continues a surviving peer's packet stream without a handshake.
  void restore_state(uint32_t out_seq, uint32_t in_seq, uint32_t in_acked) {
    out_seq_ = out_seq;
    in_seq_ = in_seq;
    in_acked_ = in_acked;
  }

  uint16_t remote() const { return remote_; }
  uint32_t out_sequence() const { return out_seq_; }
  uint32_t in_sequence() const { return in_seq_; }
  // Highest of OUR outgoing sequences the peer has acknowledged seeing —
  // the anchor for delta-snapshot baselines.
  uint32_t peer_acked() const { return in_acked_; }
  uint64_t packets_sent() const { return sent_; }
  uint64_t packets_accepted() const { return accepted_; }
  uint64_t drops_detected() const { return drops_; }
  uint64_t duplicates_rejected() const { return dups_; }

 private:
  Socket* sock_;
  uint16_t remote_;
  uint32_t out_seq_ = 0;
  uint32_t in_seq_ = 0;   // highest sequence accepted from the peer
  uint32_t in_acked_ = 0; // highest of our sequences the peer acked
  uint64_t sent_ = 0;
  uint64_t accepted_ = 0;
  uint64_t drops_ = 0;
  uint64_t dups_ = 0;
};

}  // namespace qserv::net
