// Byte-oriented serialization for the wire protocol. Little-endian, with
// explicit bounds checking on the read side: a malformed datagram must
// never crash the server (reads past the end return zeros and poison the
// reader, which callers check once per message).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/vec.hpp"

namespace qserv::net {

class ByteWriter {
 public:
  void u8(uint8_t v);
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void f32(float v);
  void vec3(const Vec3& v);
  // Length-prefixed (u16) string, truncated at 65535 bytes.
  void str(const std::string& s);
  void bytes(const uint8_t* data, size_t n);

  const std::vector<uint8_t>& data() const { return buf_; }
  // In-place header stamping for arena-staged sends (NetChannel
  // headroom); callers own the offset arithmetic.
  uint8_t* mutable_data() { return buf_.data(); }
  std::vector<uint8_t> take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t n) : data_(data), size_(n) {}
  explicit ByteReader(const std::vector<uint8_t>& v)
      : ByteReader(v.data(), v.size()) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  float f32();
  Vec3 vec3();
  std::string str();

  size_t remaining() const { return size_ - pos_; }
  // True once any read ran past the end of the buffer.
  bool overflowed() const { return overflowed_; }
  // A message parsed cleanly iff nothing overflowed and (optionally) all
  // bytes were consumed.
  bool ok() const { return !overflowed_; }

 private:
  bool take(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool overflowed_ = false;
};

}  // namespace qserv::net
