#include "src/net/protocol.hpp"

#include <map>
#include <set>

namespace qserv::net {

namespace {
constexpr size_t kMaxSnapshotEntities = 4096;
constexpr size_t kMaxSnapshotEvents = 4096;

// Minimum wire bytes per record, used to bound every length-prefixed
// count against the bytes actually present BEFORE allocating: a
// length-lying header must cost the attacker bandwidth, not us memory.
constexpr size_t kEntityUpdateWire = 4 + 1 + 12 + 4 + 1;  // id,type,org,yaw,st
constexpr size_t kGameEventWire = 1 + 4 + 4 + 12;         // kind,a,b,pos
constexpr size_t kDeltaRemovalWire = 4;                   // id
constexpr size_t kDeltaEntityMinWire = 4 + 1;             // id + empty mask

// A count is credible only if the remaining buffer could hold that many
// minimum-size records.
bool count_fits(const ByteReader& r, size_t n, size_t min_record_bytes) {
  return n <= r.remaining() / min_record_bytes;
}
}  // namespace

std::vector<uint8_t> encode(const ConnectMsg& m) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(ClientMsgType::kConnect));
  w.str(m.name);
  return w.take();
}

std::vector<uint8_t> encode(const MoveCmd& m) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(ClientMsgType::kMove));
  w.u32(m.sequence);
  w.i64(m.client_time_ns);
  w.u32(m.baseline_frame);
  w.u16(m.msec);
  w.f32(m.yaw_deg);
  w.f32(m.pitch_deg);
  w.f32(m.forward);
  w.f32(m.side);
  w.f32(m.up);
  w.u8(m.buttons);
  return w.take();
}

std::vector<uint8_t> encode_disconnect() {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(ClientMsgType::kDisconnect));
  return w.take();
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kServerFull: return "server-full";
    case RejectReason::kEvicted: return "evicted";
    case RejectReason::kServerBusy: return "server-busy";
  }
  return "?";
}

std::vector<uint8_t> encode(const RejectMsg& m) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(ServerMsgType::kReject));
  w.u8(static_cast<uint8_t>(m.reason));
  return w.take();
}

std::vector<uint8_t> encode(const ConnectAck& m) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(ServerMsgType::kConnectAck));
  w.u32(m.player_id);
  w.u32(m.server_frame);
  w.u16(m.assigned_port);
  w.vec3(m.spawn_origin);
  return w.take();
}

void encode(const Snapshot& m, ByteWriter& w) {
  w.u8(static_cast<uint8_t>(ServerMsgType::kSnapshot));
  w.u32(m.server_frame);
  w.u32(m.ack_sequence);
  w.i64(m.client_time_echo_ns);
  w.u16(m.assigned_port);
  w.vec3(m.origin);
  w.vec3(m.velocity);
  w.u16(static_cast<uint16_t>(m.health));
  w.u16(static_cast<uint16_t>(m.armor));
  w.u16(static_cast<uint16_t>(m.frags));
  w.u16(static_cast<uint16_t>(m.entities.size()));
  for (const auto& e : m.entities) {
    w.u32(e.id);
    w.u8(e.type);
    w.vec3(e.origin);
    w.f32(e.yaw_deg);
    w.u8(e.state);
  }
  w.u16(static_cast<uint16_t>(m.events.size()));
  for (const auto& ev : m.events) {
    w.u8(ev.kind);
    w.u32(ev.a);
    w.u32(ev.b);
    w.vec3(ev.pos);
  }
}

std::vector<uint8_t> encode(const Snapshot& m) {
  ByteWriter w;
  encode(m, w);
  return w.take();
}

namespace {

void encode_events(const std::vector<GameEvent>& events, ByteWriter& w) {
  w.u16(static_cast<uint16_t>(events.size()));
  for (const auto& ev : events) {
    w.u8(ev.kind);
    w.u32(ev.a);
    w.u32(ev.b);
    w.vec3(ev.pos);
  }
}

bool decode_events(ByteReader& r, std::vector<GameEvent>& events) {
  const uint16_t n = r.u16();
  if (!r.ok() || n > kMaxSnapshotEvents || !count_fits(r, n, kGameEventWire))
    return false;
  events.resize(n);
  for (auto& ev : events) {
    ev.kind = r.u8();
    ev.a = r.u32();
    ev.b = r.u32();
    ev.pos = r.vec3();
  }
  return r.ok();
}

}  // namespace

std::vector<uint8_t> encode_delta(const Snapshot& now,
                                  const std::vector<EntityUpdate>& baseline,
                                  uint32_t baseline_frame,
                                  int* stats_encoded_out) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(ServerMsgType::kDeltaSnapshot));
  w.u32(now.server_frame);
  w.u32(now.ack_sequence);
  w.i64(now.client_time_echo_ns);
  w.u16(now.assigned_port);
  w.u32(baseline_frame);
  // Private player state is small and always sent in full.
  w.vec3(now.origin);
  w.vec3(now.velocity);
  w.u16(static_cast<uint16_t>(now.health));
  w.u16(static_cast<uint16_t>(now.armor));
  w.u16(static_cast<uint16_t>(now.frags));

  // Index the baseline by id.
  std::map<uint32_t, const EntityUpdate*> base;
  for (const auto& e : baseline) base[e.id] = &e;

  // Removals: baseline entities no longer visible.
  std::vector<uint32_t> removed;
  {
    std::map<uint32_t, bool> present;
    for (const auto& e : now.entities) present[e.id] = true;
    for (const auto& e : baseline) {
      if (!present.contains(e.id)) removed.push_back(e.id);
    }
  }
  w.u16(static_cast<uint16_t>(removed.size()));
  for (const uint32_t id : removed) w.u32(id);

  // Changed/new entities with per-field masks.
  int encoded = 0;
  ByteWriter body;
  for (const auto& e : now.entities) {
    uint8_t mask = 0;
    const auto it = base.find(e.id);
    if (it == base.end()) {
      mask = kDeltaAll;
    } else {
      const EntityUpdate& b = *it->second;
      if (e.origin != b.origin) mask |= kDeltaOrigin;
      if (e.yaw_deg != b.yaw_deg) mask |= kDeltaYaw;
      if (e.state != b.state) mask |= kDeltaState;
      if (e.type != b.type) mask |= kDeltaType;
    }
    if (mask == 0) continue;  // unchanged: costs nothing on the wire
    ++encoded;
    body.u32(e.id);
    body.u8(mask);
    if (mask & kDeltaOrigin) body.vec3(e.origin);
    if (mask & kDeltaYaw) body.f32(e.yaw_deg);
    if (mask & kDeltaState) body.u8(e.state);
    if (mask & kDeltaType) body.u8(e.type);
  }
  w.u16(static_cast<uint16_t>(encoded));
  w.bytes(body.data().data(), body.size());

  encode_events(now.events, w);
  if (stats_encoded_out != nullptr) *stats_encoded_out = encoded;
  return w.take();
}

bool decode_delta(ByteReader& r, const BaselineLookup& baseline_lookup,
                  Snapshot& out) {
  out = Snapshot{};
  out.server_frame = r.u32();
  out.ack_sequence = r.u32();
  out.client_time_echo_ns = r.i64();
  out.assigned_port = r.u16();
  out.baseline_frame = r.u32();
  out.origin = r.vec3();
  out.velocity = r.vec3();
  out.health = static_cast<int16_t>(r.u16());
  out.armor = static_cast<int16_t>(r.u16());
  out.frags = static_cast<int16_t>(r.u16());
  if (!r.ok()) return false;

  const std::vector<EntityUpdate>* baseline_ptr =
      baseline_lookup(out.baseline_frame);
  if (baseline_ptr == nullptr) return false;  // baseline unknown: wait
  const std::vector<EntityUpdate>& baseline = *baseline_ptr;

  const uint16_t n_removed = r.u16();
  if (!r.ok() || n_removed > kMaxSnapshotEntities ||
      !count_fits(r, n_removed, kDeltaRemovalWire))
    return false;
  std::set<uint32_t> removed;
  for (int i = 0; i < n_removed; ++i) removed.insert(r.u32());

  // Start from the baseline, drop removals, then apply changes.
  std::map<uint32_t, EntityUpdate> merged;
  for (const auto& e : baseline) {
    if (!removed.contains(e.id)) merged[e.id] = e;
  }
  const uint16_t n_changed = r.u16();
  if (!r.ok() || n_changed > kMaxSnapshotEntities ||
      !count_fits(r, n_changed, kDeltaEntityMinWire))
    return false;
  for (int i = 0; i < n_changed; ++i) {
    const uint32_t id = r.u32();
    const uint8_t mask = r.u8();
    if (!r.ok()) return false;
    EntityUpdate& e = merged[id];
    e.id = id;
    if (mask & kDeltaOrigin) e.origin = r.vec3();
    if (mask & kDeltaYaw) e.yaw_deg = r.f32();
    if (mask & kDeltaState) e.state = r.u8();
    if (mask & kDeltaType) e.type = r.u8();
  }
  out.entities.reserve(merged.size());
  for (auto& [id, e] : merged) out.entities.push_back(e);

  return decode_events(r, out.events) && r.ok();
}

bool decode_client_type(ByteReader& r, ClientMsgType& type) {
  const uint8_t t = r.u8();
  if (!r.ok()) return false;
  if (t != static_cast<uint8_t>(ClientMsgType::kConnect) &&
      t != static_cast<uint8_t>(ClientMsgType::kMove) &&
      t != static_cast<uint8_t>(ClientMsgType::kDisconnect)) {
    return false;
  }
  type = static_cast<ClientMsgType>(t);
  return true;
}

bool decode(ByteReader& r, ConnectMsg& m) {
  m.name = r.str();
  // str() is already bounded against the buffer; additionally refuse
  // absurd names so a hostile connect cannot park 64 KiB per slot in the
  // client registry.
  return r.ok() && m.name.size() <= kMaxPlayerNameLen;
}

bool decode(ByteReader& r, MoveCmd& m) {
  m.sequence = r.u32();
  m.client_time_ns = r.i64();
  m.baseline_frame = r.u32();
  m.msec = r.u16();
  // A lying msec would have execute_move simulate an arbitrarily long
  // timestep on the attacker's behalf; real clients tick ~30 Hz.
  if (m.msec > kMaxMoveMsec) return false;
  m.yaw_deg = r.f32();
  m.pitch_deg = r.f32();
  m.forward = r.f32();
  m.side = r.f32();
  m.up = r.f32();
  m.buttons = r.u8();
  return r.ok();
}

bool decode_server_type(ByteReader& r, ServerMsgType& type) {
  const uint8_t t = r.u8();
  if (!r.ok()) return false;
  if (t != static_cast<uint8_t>(ServerMsgType::kConnectAck) &&
      t != static_cast<uint8_t>(ServerMsgType::kSnapshot) &&
      t != static_cast<uint8_t>(ServerMsgType::kDeltaSnapshot) &&
      t != static_cast<uint8_t>(ServerMsgType::kReject)) {
    return false;
  }
  type = static_cast<ServerMsgType>(t);
  return true;
}

bool decode(ByteReader& r, RejectMsg& m) {
  const uint8_t reason = r.u8();
  if (!r.ok()) return false;
  if (reason != static_cast<uint8_t>(RejectReason::kServerFull) &&
      reason != static_cast<uint8_t>(RejectReason::kEvicted) &&
      reason != static_cast<uint8_t>(RejectReason::kServerBusy)) {
    return false;
  }
  m.reason = static_cast<RejectReason>(reason);
  return true;
}

bool decode(ByteReader& r, ConnectAck& m) {
  m.player_id = r.u32();
  m.server_frame = r.u32();
  m.assigned_port = r.u16();
  m.spawn_origin = r.vec3();
  return r.ok();
}

bool decode(ByteReader& r, Snapshot& m) {
  m.server_frame = r.u32();
  m.ack_sequence = r.u32();
  m.client_time_echo_ns = r.i64();
  m.assigned_port = r.u16();
  m.origin = r.vec3();
  m.velocity = r.vec3();
  m.health = static_cast<int16_t>(r.u16());
  m.armor = static_cast<int16_t>(r.u16());
  m.frags = static_cast<int16_t>(r.u16());
  const uint16_t n_ent = r.u16();
  if (!r.ok() || n_ent > kMaxSnapshotEntities ||
      !count_fits(r, n_ent, kEntityUpdateWire))
    return false;
  m.entities.resize(n_ent);
  for (auto& e : m.entities) {
    e.id = r.u32();
    e.type = r.u8();
    e.origin = r.vec3();
    e.yaw_deg = r.f32();
    e.state = r.u8();
  }
  const uint16_t n_ev = r.u16();
  if (!r.ok() || n_ev > kMaxSnapshotEvents ||
      !count_fits(r, n_ev, kGameEventWire))
    return false;
  m.events.resize(n_ev);
  for (auto& ev : m.events) {
    ev.kind = r.u8();
    ev.a = r.u32();
    ev.b = r.u32();
    ev.pos = r.vec3();
  }
  return r.ok();
}

}  // namespace qserv::net
