// Virtual UDP: an in-process datagram network with modelled latency,
// jitter and loss, plus a select(2) emulation. The paper's testbed put
// the server and the client machines on a dedicated 100 Mbit Ethernet
// segment; this module substitutes for that segment. It is the virtual
// implementation of the transport seam (transport.hpp); real kernel
// sockets live in real_udp.hpp.
//
// Delivery model: send() timestamps the datagram with
// `deliver_at = now + latency + jitter` and inserts it into the
// destination socket's queue, which is ordered by delivery time. A
// datagram becomes visible to recv only once `now >= deliver_at` — so on
// the simulated platform in-flight time is virtual, and on the real
// platform it is wall-clock, with no extra threads or timers either way.
//
// Thread safety: sockets and selectors use platform mutexes, so the module
// works identically under SimPlatform (where it is also deterministic:
// jitter and loss draw from a seeded RNG) and RealPlatform.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/net/fault_scheduler.hpp"
#include "src/net/transport.hpp"
#include "src/util/rng.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::net {

class VirtualSocket;
class VirtualSelector;

// The notification half of a Selector, shared (via shared_ptr) with every
// socket it watches. A delivering thread copies the shared_ptr under the
// socket lock and broadcasts after releasing it, so the mutex/condvar stay
// alive even if the selector — or the whole engine that owns it — is torn
// down concurrently (a supervised shard restore destroys a live engine
// while peers are still sending to its ports).
struct SelectorCore {
  std::unique_ptr<vt::Mutex> mu;
  std::unique_ptr<vt::CondVar> cv;
  bool poked = false;  // guarded by mu
};

class VirtualNetwork final : public Transport {
 public:
  struct Config {
    vt::Duration latency = vt::micros(500);  // one-way, LAN-like
    vt::Duration jitter = vt::micros(100);   // stddev around latency
    float loss = 0.0f;                       // drop probability per packet
    // Per-socket receive queue capacity, like a kernel UDP buffer:
    // datagrams arriving at a full socket are dropped. This is what
    // bounds a saturated server's request backlog.
    size_t socket_buffer = 128;
    uint64_t seed = 1;
    // When set, loss and jitter draws come from a stateless hash of
    // (seed, src, dst, per-flow packet counter) instead of the shared
    // network RNG. Traffic on one flow then cannot perturb the draws
    // another flow sees — required for cross-run digest comparisons on a
    // multi-shard network, where one shard's extra packets must not
    // change its neighbors' delivery pattern.
    bool deterministic_flows = false;
  };

  VirtualNetwork(vt::Platform& platform, Config cfg);
  ~VirtualNetwork() override;

  // Opens a socket bound to `port`; null + kPortInUse if it is taken.
  std::unique_ptr<Socket> try_open(uint16_t port,
                                   OpenError* err = nullptr) override;
  std::unique_ptr<Selector> make_selector() override;

  vt::Platform& platform() override { return platform_; }

  // The fault-injection timeline (created on first use). route() consults
  // it for every packet, so scheduled episodes mutate the delivery model
  // over simulated time. Schedule episodes before the run starts or from
  // platform callbacks; see fault_scheduler.hpp for the taxonomy.
  FaultScheduler& faults();
  bool has_faults() const { return faults_ != nullptr; }
  // Read-only view for reporting/metrics; null until faults() is called.
  const FaultScheduler* faults_or_null() const override {
    return faults_.get();
  }

  // Global counters (racy reads are fine for reporting).
  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t packets_overflowed() const { return packets_overflow_; }
  uint64_t packets_to_closed_ports() const { return packets_dead_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

  TransportCounters counters() const override {
    TransportCounters c;
    c.packets_sent = packets_sent_;
    c.packets_dropped = packets_dropped_;
    c.packets_overflowed = packets_overflow_;
    c.packets_to_closed_ports = packets_dead_;
    c.bytes_sent = bytes_sent_;
    return c;
  }

 private:
  friend class VirtualSocket;

  // Routes one datagram; called by VirtualSocket::send with no locks held.
  bool route(uint16_t src, uint16_t dst, std::vector<uint8_t> payload);
  void unregister(uint16_t port);

  vt::Platform& platform_;
  Config cfg_;
  std::unique_ptr<vt::Mutex> mu_;  // guards ports_ map, rng_, counters
  std::map<uint16_t, VirtualSocket*> ports_;
  std::unique_ptr<FaultScheduler> faults_;  // null until faults() is called
  Rng rng_;
  // Per-(src,dst) packet counters for deterministic_flows (guarded by mu_).
  std::map<uint32_t, uint64_t> flow_counters_;
  uint64_t packets_sent_ = 0;
  uint64_t packets_dropped_ = 0;
  std::atomic<uint64_t> packets_overflow_{0};
  uint64_t packets_dead_ = 0;
  uint64_t bytes_sent_ = 0;
};

class VirtualSocket final : public Socket {
 public:
  ~VirtualSocket() override;

  uint16_t port() const override { return port_; }

  // Sends `payload` to `dst`. Returns false if the packet was dropped by
  // the loss model or the destination port is closed (like UDP, the
  // sender normally cannot tell; the return value exists for tests).
  bool send(uint16_t dst, std::vector<uint8_t> payload) override;

  // Non-blocking receive of the next ready datagram (deliver_at <= now).
  bool try_recv(Datagram& out) override;

  // Earliest delivery time among queued datagrams; TimePoint::max() if
  // none. "Ready" means next_ready() <= now.
  vt::TimePoint next_ready() const override;
  bool has_ready() const override;

  // Number of datagrams queued (ready or in flight).
  size_t queued() const override;

  uint64_t received_count() const override { return received_; }

  // send() returning false means loss-model drop or closed port; receive
  // buffer overflow at the destination is invisible to the sender (see
  // VirtualNetwork::packets_overflowed()).

 private:
  friend class VirtualNetwork;
  friend class VirtualSelector;

  VirtualSocket(VirtualNetwork& net, uint16_t port);

  void deliver(Datagram d);  // called by the network's route()

  VirtualNetwork& net_;
  uint16_t port_;
  std::unique_ptr<vt::Mutex> mu_;
  // Ordered by (deliver_at, arrival sequence) so jitter can reorder
  // packets exactly as a real network would.
  std::multimap<std::pair<int64_t, uint64_t>, Datagram> queue_;
  uint64_t arrival_seq_ = 0;
  uint64_t received_ = 0;
  VirtualSelector* selector_ = nullptr;  // at most one watcher (bookkeeping)
  // Kept alongside selector_ (both guarded by mu_): deliver() notifies
  // through this so the wakeup survives concurrent selector teardown.
  std::shared_ptr<SelectorCore> notify_;
};

// select(2) emulation over a fixed set of virtual sockets. One selector
// per waiting thread; a socket belongs to at most one selector.
class VirtualSelector final : public Selector {
 public:
  explicit VirtualSelector(vt::Platform& platform);
  ~VirtualSelector() override;

  void add(Socket& s) override;
  void remove(Socket& s) override;
  bool wait_until(vt::TimePoint deadline) override;
  void poke() override;

 private:
  friend class VirtualSocket;

  vt::Platform& platform_;
  std::shared_ptr<SelectorCore> core_;
  std::vector<VirtualSocket*> sockets_;
};

}  // namespace qserv::net
