#include "src/net/fault_scheduler.hpp"

#include "src/util/check.hpp"

namespace qserv::net {

const char* fault_kind_name(FaultEpisode::Kind k) {
  switch (k) {
    case FaultEpisode::Kind::kLossBurst: return "loss-burst";
    case FaultEpisode::Kind::kLatencySpike: return "latency-spike";
    case FaultEpisode::Kind::kPartition: return "partition";
    case FaultEpisode::Kind::kBlackhole: return "blackhole";
    case FaultEpisode::Kind::kThreadStall: return "thread-stall";
  }
  return "?";
}

void FaultScheduler::add(FaultEpisode e) {
  QSERV_CHECK(e.end.ns >= e.start.ns);
  episodes_.push_back(e);
}

void FaultScheduler::add_loss_burst(vt::TimePoint start, vt::Duration dur,
                                    float loss) {
  QSERV_CHECK(loss >= 0.0f && loss <= 1.0f);
  FaultEpisode e;
  e.kind = FaultEpisode::Kind::kLossBurst;
  e.start = start;
  e.end = start + dur;
  e.loss = loss;
  add(e);
}

void FaultScheduler::add_latency_spike(vt::TimePoint start, vt::Duration dur,
                                       vt::Duration extra) {
  QSERV_CHECK(extra.ns >= 0);
  FaultEpisode e;
  e.kind = FaultEpisode::Kind::kLatencySpike;
  e.start = start;
  e.end = start + dur;
  e.extra_latency = extra;
  add(e);
}

void FaultScheduler::add_partition(vt::TimePoint start, vt::Duration dur,
                                   uint16_t a_lo, uint16_t a_hi, uint16_t b_lo,
                                   uint16_t b_hi) {
  QSERV_CHECK(a_lo <= a_hi && b_lo <= b_hi);
  FaultEpisode e;
  e.kind = FaultEpisode::Kind::kPartition;
  e.start = start;
  e.end = start + dur;
  e.a_lo = a_lo;
  e.a_hi = a_hi;
  e.b_lo = b_lo;
  e.b_hi = b_hi;
  add(e);
}

void FaultScheduler::add_blackhole(vt::TimePoint start, vt::Duration dur,
                                   uint16_t port) {
  FaultEpisode e;
  e.kind = FaultEpisode::Kind::kBlackhole;
  e.start = start;
  e.end = start + dur;
  e.a_lo = port;
  e.a_hi = port;
  add(e);
}

void FaultScheduler::add_thread_stall(vt::TimePoint start, vt::Duration dur,
                                      int thread) {
  add_thread_stall(start, dur, thread, 0, 0);
}

void FaultScheduler::add_thread_stall(vt::TimePoint start, vt::Duration dur,
                                      int thread, uint16_t port_lo,
                                      uint16_t port_hi) {
  QSERV_CHECK(thread >= 0 && thread < 64);
  QSERV_CHECK(port_lo <= port_hi);
  FaultEpisode e;
  e.kind = FaultEpisode::Kind::kThreadStall;
  e.start = start;
  e.end = start + dur;
  e.a_lo = static_cast<uint16_t>(thread);
  e.a_hi = static_cast<uint16_t>(thread);
  e.b_lo = port_lo;  // scope: engines whose base_port is in [b_lo, b_hi]
  e.b_hi = port_hi;  // (0, 0) = every engine on the network
  add(e);
}

vt::Duration FaultScheduler::stall_remaining(vt::TimePoint now, int thread,
                                             uint16_t engine_port) const {
  vt::Duration left{};
  for (const auto& e : episodes_) {
    if (e.kind != FaultEpisode::Kind::kThreadStall) continue;
    if (now < e.start || now >= e.end) continue;
    if (static_cast<int>(e.a_lo) != thread) continue;
    // Scoped episode: only engines whose base_port falls in the range.
    const bool unscoped = e.b_lo == 0 && e.b_hi == 0;
    if (!unscoped && !in_range(engine_port, e.b_lo, e.b_hi)) continue;
    if (e.end - now > left) left = e.end - now;
  }
  return left;
}

FaultScheduler::Verdict FaultScheduler::apply(vt::TimePoint now, uint16_t src,
                                              uint16_t dst) {
  Verdict v;
  for (const auto& e : episodes_) {
    if (now < e.start || now >= e.end) continue;
    switch (e.kind) {
      case FaultEpisode::Kind::kLossBurst:
        if (rng_.chance(e.loss)) {
          ++counters_.burst_drops;
          v.drop = true;
          return v;
        }
        break;
      case FaultEpisode::Kind::kLatencySpike:
        v.extra_latency += e.extra_latency;
        break;
      case FaultEpisode::Kind::kPartition:
        if ((in_range(src, e.a_lo, e.a_hi) && in_range(dst, e.b_lo, e.b_hi)) ||
            (in_range(src, e.b_lo, e.b_hi) && in_range(dst, e.a_lo, e.a_hi))) {
          ++counters_.partition_drops;
          v.drop = true;
          return v;
        }
        break;
      case FaultEpisode::Kind::kBlackhole:
        if (in_range(src, e.a_lo, e.a_hi) || in_range(dst, e.a_lo, e.a_hi)) {
          ++counters_.blackhole_drops;
          v.drop = true;
          return v;
        }
        break;
      case FaultEpisode::Kind::kThreadStall:
        break;  // server-side fault; packets are unaffected
    }
  }
  if (v.extra_latency.ns > 0) ++counters_.delayed_packets;
  return v;
}

int FaultScheduler::active_at(vt::TimePoint now) const {
  int n = 0;
  for (const auto& e : episodes_) n += (now >= e.start && now < e.end) ? 1 : 0;
  return n;
}

}  // namespace qserv::net
