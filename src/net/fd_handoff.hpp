// Zero-downtime restart handoff channel: a unix-domain stream socket over
// which an old server generation passes its bound listener descriptors
// (SCM_RIGHTS) and its final checkpoint blob to the freshly exec'd next
// generation. Envoy-style hot-restart plumbing, scoped to what qserv
// needs.
//
// Wire protocol `qsrv-hand-v1` (all integers little-endian, matching the
// bytestream convention everywhere else in the tree):
//
//   child -> parent   HELLO   "qsrvhand" u32 version  u32 generation
//   parent -> child   PACKAGE u32 n_fds  u16 port[n_fds]   (SCM_RIGHTS
//                     carries the n_fds descriptors on this message)
//                     u64 ckpt_len  u8 ckpt[ckpt_len]
//   child -> parent   READY   u8 0x52 ('R')
//
// Sequencing: the parent creates the listening endpoint *before* exec'ing
// the child, so the child's connect cannot race the bind. The parent
// sends PACKAGE only after draining + quiescing, i.e. the blob is the
// authoritative final state. The child answers READY only after it has
// adopted the descriptors, restored, and started serving — the parent's
// cue that exiting is safe. Every call takes a deadline; timeouts return
// false so both sides can fall back (parent: resume serving from its own
// checkpoint; child: exit and leave the old generation in charge).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qserv::net {

struct HandoffPackage {
  std::vector<std::pair<uint16_t, int>> sockets;  // (port, fd)
  std::vector<uint8_t> checkpoint;                // qserv-ckpt-v1 blob
};

// Old generation's side: owns the unix-socket path.
class HandoffServer {
 public:
  // Binds and listens on `path` (unlinking any stale socket first).
  explicit HandoffServer(const std::string& path);
  ~HandoffServer();

  bool valid() const { return listen_fd_ >= 0; }

  // Accepts the child and validates its HELLO; false on timeout or a
  // protocol mismatch (wrong magic/version).
  bool accept_child(int timeout_ms, uint32_t* generation_out = nullptr);

  // Sends descriptors + checkpoint. accept_child must have succeeded.
  bool send_package(const HandoffPackage& pkg);

  // Blocks for the child's READY byte.
  bool wait_ready(int timeout_ms);

 private:
  std::string path_;
  int listen_fd_ = -1;
  int conn_fd_ = -1;
};

// New generation's side.
class HandoffClient {
 public:
  ~HandoffClient();

  // Connects to `path` (retrying until the deadline — covers the narrow
  // window before the parent's accept loop is up) and sends HELLO.
  bool connect_to(const std::string& path, uint32_t generation,
                  int timeout_ms);

  // Receives the PACKAGE. On success the caller owns the descriptors in
  // pkg.sockets (typically moved straight into
  // RealUdpTransport::Config::adopted_fds).
  bool recv_package(HandoffPackage& pkg, int timeout_ms);

  bool send_ready();

 private:
  int fd_ = -1;
};

}  // namespace qserv::net
