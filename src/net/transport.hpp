// The transport seam: abstract datagram sockets and select(2)-style
// waiting, factored out of the virtual network so the same server,
// client and netchan code runs over either an in-process modelled
// segment (net::VirtualNetwork, virtual_udp.hpp) or real kernel UDP
// sockets (net::RealUdpTransport, real_udp.hpp). The shapes here are
// exactly the ones virtual_udp.hpp always had — Datagram, Socket,
// Selector — so the ~40 existing call sites compile unchanged; only
// socket/selector *construction* goes through the Transport factory.
//
// Addressing model: a peer is identified by its 16-bit UDP port, the
// paper's private-port design (every client sends from its own port and
// every server thread listens on its own port, all on one segment). The
// real transport maps ports onto loopback/LAN sockaddrs it learns from
// received traffic; the virtual transport routes by port directly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/vthread/platform.hpp"

namespace qserv::net {

class FaultScheduler;

struct Datagram {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  std::vector<uint8_t> payload;
  vt::TimePoint sent_at{};
  vt::TimePoint deliver_at{};
};

// Why try_open() refused to bind. Surfaced as a value (not an assert) so
// callers that race for ports — a churning client reopening its socket,
// a test probing collision behavior — can retry on a different port.
enum class OpenError : uint8_t {
  kNone = 0,
  kPortInUse,  // another live socket owns this port
  kSysError,   // real transport only: socket()/bind() failed
};

const char* open_error_name(OpenError e);

// A bound datagram socket. Thread-safe: send and receive may race with
// delivery (virtual) or run on different threads than the opener (real).
class Socket {
 public:
  virtual ~Socket() = default;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  virtual uint16_t port() const = 0;

  // Sends `payload` to the peer on `dst`. Returns false if the packet
  // was dropped on the send side (loss model, closed destination port,
  // EMSGSIZE/EAGAIN on a real socket); like UDP, senders normally cannot
  // tell — the return value exists for tests.
  virtual bool send(uint16_t dst, std::vector<uint8_t> payload) = 0;

  // Span variant of send() for callers whose payload lives in an arena
  // (the reply phase's wire buffers): no owning vector required at the
  // call site. The base implementation materializes one — correct for
  // the virtual transport, which must own the bytes until the modelled
  // delivery time anyway; the real transport overrides it with a direct
  // sendto(2), making the path copy-free end to end. Same return
  // semantics and TransportCounters accounting as send().
  virtual bool send_span(uint16_t dst, const uint8_t* data, size_t len) {
    return send(dst, std::vector<uint8_t>(data, data + len));
  }

  // Non-blocking receive of the next ready datagram.
  virtual bool try_recv(Datagram& out) = 0;

  // Earliest delivery time among queued datagrams; TimePoint::max() if
  // none. "Ready" means next_ready() <= now. The real transport cannot
  // see the future, so for it this is now() or max().
  virtual vt::TimePoint next_ready() const = 0;
  virtual bool has_ready() const = 0;

  // Datagrams queued (ready or in flight). The real transport reports
  // what one kernel-buffer peek can see (0 or 1), not an exact count.
  virtual size_t queued() const = 0;

  virtual uint64_t received_count() const = 0;

 protected:
  Socket() = default;
};

// select(2) emulation over a fixed set of sockets. One selector per
// waiting thread; a socket belongs to at most one selector. Sockets and
// selectors must come from the same Transport.
class Selector {
 public:
  virtual ~Selector() = default;
  Selector(const Selector&) = delete;
  Selector& operator=(const Selector&) = delete;

  // Registers a socket; must happen before any wait.
  virtual void add(Socket& s) = 0;

  // Unregisters a socket so it can be destroyed before the selector —
  // used when a churning client reopens its socket on a fresh port.
  virtual void remove(Socket& s) = 0;

  // Blocks until any registered socket has a ready datagram or the
  // deadline passes. Returns true if a datagram is ready. Also returns
  // (false) when poke() is called, so shutdown can interrupt a wait.
  virtual bool wait_until(vt::TimePoint deadline) = 0;

  // Wakes a blocked wait_until() immediately.
  virtual void poke() = 0;

 protected:
  Selector() = default;
};

// Cumulative transport-level counters, identical across transports so
// the qserv-bench-v1 network block is populated the same way on both.
// Racy reads are fine — reporting only.
struct TransportCounters {
  uint64_t packets_sent = 0;
  // Send-side drops: the virtual loss model / fault episodes, or a real
  // sendto() failing with EMSGSIZE/EAGAIN/ENOBUFS.
  uint64_t packets_dropped = 0;
  // Receive-buffer overflow at the destination: virtual socket_buffer
  // overruns, or the kernel's SO_RXQ_OVFL drop count on a real socket.
  uint64_t packets_overflowed = 0;
  uint64_t packets_to_closed_ports = 0;
  uint64_t bytes_sent = 0;
  // Oversized datagrams clamped at recvfrom (MSG_TRUNC); always 0 on the
  // virtual transport, which never truncates.
  uint64_t packets_truncated = 0;
};

// Factory + counter surface shared by the virtual and real transports.
class Transport {
 public:
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // Opens a socket bound to `port`; null (with *err set when non-null)
  // if the port is taken. Sockets must not outlive the transport.
  virtual std::unique_ptr<Socket> try_open(uint16_t port,
                                           OpenError* err = nullptr) = 0;

  // Legacy hard-checked open: aborts on failure. Convenience for the
  // many callers whose port plan cannot collide (server base ports, the
  // initial client block).
  std::unique_ptr<Socket> open(uint16_t port);

  virtual std::unique_ptr<Selector> make_selector() = 0;

  virtual vt::Platform& platform() = 0;

  // The fault-injection timeline; null unless this transport models
  // faults (only the virtual network does). The parallel server's
  // thread-stall injection consults this each loop.
  virtual const FaultScheduler* faults_or_null() const { return nullptr; }

  virtual TransportCounters counters() const = 0;

 protected:
  Transport() = default;
};

}  // namespace qserv::net
