#include "src/net/transport.hpp"

#include "src/util/check.hpp"

namespace qserv::net {

const char* open_error_name(OpenError e) {
  switch (e) {
    case OpenError::kNone: return "none";
    case OpenError::kPortInUse: return "port-in-use";
    case OpenError::kSysError: return "sys-error";
  }
  return "?";
}

std::unique_ptr<Socket> Transport::open(uint16_t port) {
  OpenError err = OpenError::kNone;
  std::unique_ptr<Socket> s = try_open(port, &err);
  QSERV_CHECK_MSG(s != nullptr, "transport open failed (port collision?)");
  return s;
}

}  // namespace qserv::net
