// Deterministic fault-injection timeline for the virtual network.
//
// A FaultScheduler holds a list of *episodes* — time-bounded network
// pathologies — and is consulted by VirtualNetwork::route() for every
// packet. Episodes mutate the delivery model over (virtual) time, which is
// what lets chaos tests exercise the failure modes a static loss/jitter
// config cannot: loss bursts, latency spikes, partitions between port
// ranges, and per-port blackholes. All randomness (the per-packet draw of
// a loss burst) comes from a seeded Rng, so a chaos run on the simulated
// platform is reproducible bit-for-bit.
//
// Thread safety: apply() is called by the owning VirtualNetwork under its
// own mutex. add_*() must not race with traffic — schedule episodes before
// the run starts or from platform callbacks (which the simulated platform
// serializes with all other execution).
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.hpp"
#include "src/vthread/time.hpp"

namespace qserv::net {

// One scheduled network pathology, active while start <= now < end.
struct FaultEpisode {
  enum class Kind : uint8_t {
    kLossBurst,     // drop packets with probability `loss`
    kLatencySpike,  // add `extra_latency` of one-way delay
    kPartition,     // drop all traffic between port ranges A and B
    kBlackhole,     // drop all traffic to or from port range A
    kThreadStall,   // wedge server worker thread `a_lo` (not a net fault)
  };

  Kind kind = Kind::kLossBurst;
  vt::TimePoint start{};
  vt::TimePoint end{};
  float loss = 1.0f;             // kLossBurst: drop probability
  vt::Duration extra_latency{};  // kLatencySpike: added one-way delay
  // Port range A (kPartition / kBlackhole), inclusive.
  uint16_t a_lo = 0, a_hi = 0;
  // Port range B (kPartition only), inclusive.
  uint16_t b_lo = 0, b_hi = 0;
};

const char* fault_kind_name(FaultEpisode::Kind k);

class FaultScheduler {
 public:
  struct Counters {
    uint64_t burst_drops = 0;      // dropped by an active loss burst
    uint64_t partition_drops = 0;  // dropped crossing an active partition
    uint64_t blackhole_drops = 0;  // dropped at an active blackhole
    uint64_t delayed_packets = 0;  // packets that took extra spike latency
  };

  // What the timeline says should happen to one packet.
  struct Verdict {
    bool drop = false;
    vt::Duration extra_latency{};
  };

  explicit FaultScheduler(uint64_t seed = 1) : rng_(seed) {}

  // --- schedule construction ---
  void add(FaultEpisode e);
  void add_loss_burst(vt::TimePoint start, vt::Duration dur, float loss);
  void add_latency_spike(vt::TimePoint start, vt::Duration dur,
                         vt::Duration extra);
  // Severs [a_lo, a_hi] <-> [b_lo, b_hi] both ways; traffic within one
  // side is unaffected. Heals at start + dur.
  void add_partition(vt::TimePoint start, vt::Duration dur, uint16_t a_lo,
                     uint16_t a_hi, uint16_t b_lo, uint16_t b_hi);
  // Drops everything to or from `port` — a crashed NIC / dead host.
  void add_blackhole(vt::TimePoint start, vt::Duration dur, uint16_t port);
  // Wedges server worker `thread` for `dur`. Not consulted by the network
  // layer at all: the server's worker loop polls stall_remaining() and
  // spins/sleeps that long, simulating a worker stuck in a long syscall or
  // runaway computation. Lives here so chaos timelines can mix thread
  // stalls with network episodes on one schedule. The unscoped form stalls
  // that worker index in EVERY engine sharing the network; the scoped form
  // reuses the B port range to confine the stall to engines whose
  // base_port falls in [port_lo, port_hi] — how a multi-shard chaos
  // timeline wedges one shard's worker without touching its neighbors.
  void add_thread_stall(vt::TimePoint start, vt::Duration dur, int thread);
  void add_thread_stall(vt::TimePoint start, vt::Duration dur, int thread,
                        uint16_t port_lo, uint16_t port_hi);

  // Applies every episode active at `now` to a src->dst packet, updating
  // the counters. Called by VirtualNetwork under its lock.
  Verdict apply(vt::TimePoint now, uint16_t src, uint16_t dst);

  // Time left in a thread-stall episode covering `thread` at `now` (zero
  // if none). `engine_port` is the polling engine's base_port, matched
  // against the episode's scope range (0 = unscoped caller: only
  // unscoped episodes match). Const — polled by worker threads without
  // the net lock, so it must not touch counters_ / rng_; the *server*
  // counts the stalls it actually serves.
  vt::Duration stall_remaining(vt::TimePoint now, int thread,
                               uint16_t engine_port = 0) const;

  const Counters& counters() const { return counters_; }
  size_t episode_count() const { return episodes_.size(); }
  // Episodes active at `now` (diagnostics / tests).
  int active_at(vt::TimePoint now) const;

 private:
  static bool in_range(uint16_t p, uint16_t lo, uint16_t hi) {
    return lo <= p && p <= hi;
  }

  std::vector<FaultEpisode> episodes_;
  Counters counters_;
  Rng rng_;
};

}  // namespace qserv::net
